package rememberr

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSeverities(t *testing.T) {
	db := testDB(t)
	breakdowns := db.Severities()
	if len(breakdowns) != 2 {
		t.Fatalf("breakdowns = %d", len(breakdowns))
	}
	for _, b := range breakdowns {
		if b.Total == 0 {
			t.Fatalf("%s: empty breakdown", b.Vendor)
		}
		sum := 0
		for _, n := range b.Counts {
			sum += n
		}
		if sum != b.Total {
			t.Errorf("%s: counts sum %d != total %d", b.Vendor, sum, b.Total)
		}
		// Every annotated erratum has at least one effect, so Unknown
		// must be empty.
		if b.Counts[SeverityUnknown] != 0 {
			t.Errorf("%s: %d ungraded errata", b.Vendor, b.Counts[SeverityUnknown])
		}
		// The paper's conservative stance: most errata are fatal or
		// corrupting.
		if (b.Counts[SeverityFatal]+b.Counts[SeverityCorrupting])*10 < b.Total*7 {
			t.Errorf("%s: fatal+corrupting below 70%%", b.Vendor)
		}
		if b.GuestReachableFatal == 0 || b.GuestReachableFatal > b.Counts[SeverityFatal] {
			t.Errorf("%s: guest-reachable fatal = %d of %d",
				b.Vendor, b.GuestReachableFatal, b.Counts[SeverityFatal])
		}
	}
	top := db.MostCritical(Intel, 5)
	if len(top) != 5 {
		t.Fatalf("top = %d", len(top))
	}
	for _, e := range top {
		if db.Grade(e) != SeverityFatal {
			t.Errorf("top-5 erratum %s graded %v", e.Key, db.Grade(e))
		}
	}
}

func TestRediscoveries(t *testing.T) {
	db := testDB(t)
	stats := db.Rediscoveries(Intel)
	if len(stats) != 16 {
		t.Fatalf("rediscovery rows = %d, want 16", len(stats))
	}
	// The first document cannot inherit anything.
	if stats[0].Inherited != 0 {
		t.Errorf("first document inherited %d", stats[0].Inherited)
	}
	// Later documents inherit heavily (D/M pairs, gens 6-10 block).
	inheritedTotal := 0
	for _, r := range stats {
		if r.KnownAtRelease > r.Inherited || r.Inherited > r.Keys {
			t.Errorf("%s: inconsistent row %+v", r.DocKey, r)
		}
		inheritedTotal += r.Inherited
	}
	if inheritedTotal < 500 {
		t.Errorf("total inherited = %d, expected substantial heredity", inheritedTotal)
	}
	out := RenderRediscoveries(stats)
	if !strings.Contains(out, "intel-06") || !strings.Contains(out, "known@release") {
		t.Errorf("render:\n%s", out)
	}
}

func TestSaveLoadFacade(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != db.Stats() {
		t.Errorf("stats differ after load: %+v vs %+v", loaded.Stats(), db.Stats())
	}
	if loaded.Report() != nil {
		t.Error("loaded database should have no build report")
	}
	// Experiments needing the report degrade gracefully.
	x := NewExperiments(loaded)
	fig8 := x.Figure8()
	if fig8.Passed() {
		t.Error("figure-8 should report the missing build report")
	}
	// All other experiments still pass on the loaded database.
	for _, ex := range x.All() {
		switch ex.ID {
		case "figure-8", "figure-9", "decision-reduction":
			continue
		}
		for _, c := range ex.Checks {
			if !c.Pass {
				t.Errorf("loaded db: %s check %q failed: %s", ex.ID, c.Name, c.Detail)
			}
		}
	}
	// Observations hold on the loaded database too.
	for _, o := range loaded.Observations() {
		if !o.Holds {
			t.Errorf("loaded db: %s fails: %s", o.ID, o.Evidence)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load of missing file should fail")
	}
}

func TestExportCSVs(t *testing.T) {
	db := testDB(t)
	csvs := NewExperiments(db).ExportCSVs()
	if len(csvs) < 5 {
		t.Errorf("CSV exports = %d, want >= 5", len(csvs))
	}
	for id, csv := range csvs {
		if !strings.Contains(csv, "\n") {
			t.Errorf("%s: degenerate CSV", id)
		}
	}
	if _, ok := csvs["table-3"]; !ok {
		t.Error("table-3 CSV missing")
	}
}

func TestExtensionExperiments(t *testing.T) {
	db := testDB(t)
	x := NewExperiments(db)
	exts := x.Extensions()
	if len(exts) != 3 {
		t.Fatalf("extensions = %d", len(exts))
	}
	for _, ex := range exts {
		if ex.Text == "" {
			t.Errorf("%s: empty rendering", ex.ID)
		}
		for _, c := range ex.Checks {
			if !c.Pass {
				t.Errorf("%s: check %q failed: %s", ex.ID, c.Name, c.Detail)
			}
		}
	}
	if ex, err := x.ExtByID("ext-severity"); err != nil || ex.ID != "ext-severity" {
		t.Errorf("ExtByID(ext-severity): %v", err)
	}
	// Fallback to paper experiments.
	if ex, err := x.ExtByID("figure-10"); err != nil || ex.ID != "figure-10" {
		t.Errorf("ExtByID(figure-10): %v", err)
	}
	if _, err := x.ExtByID("nonsense"); err == nil {
		t.Error("ExtByID accepted unknown id")
	}
}

func TestHTMLReport(t *testing.T) {
	db := testDB(t)
	page := HTMLReport(db)
	for _, want := range []string{
		"<!DOCTYPE html", "figure-10", "ext-casestudy", "O13", "</html>",
		"<svg", "2563",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	if strings.Contains(page, "class=\"fail\"") {
		t.Error("HTML report contains failing checks")
	}
	// Text content must be escaped (no raw description injection).
	if strings.Contains(page, "<Processor") {
		t.Error("unescaped content in report")
	}
}

// Cross-seed robustness: the qualitative results must not depend on the
// corpus seed. Building is expensive, so one extra seed suffices here;
// the bench suite sweeps more.
func TestCrossSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive: builds a second database")
	}
	opts := DefaultBuildOptions()
	opts.Seed = 99
	db, _, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Total != 2563 || st.Unique != 1128 {
		t.Fatalf("seed 99: stats = %+v", st)
	}
	for _, o := range db.Observations() {
		if !o.Holds {
			t.Errorf("seed 99: %s fails: %s", o.ID, o.Evidence)
		}
	}
	for _, ex := range NewExperiments(db).All() {
		for _, c := range ex.Checks {
			if !c.Pass {
				t.Errorf("seed 99: %s check %q failed: %s", ex.ID, c.Name, c.Detail)
			}
		}
	}
}

// TestDeepRoundTrip checks field-by-field fidelity of JSON persistence
// on the full built database.
func TestDeepRoundTrip(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "deep.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Documents()
	got := loaded.Documents()
	if len(want) != len(got) {
		t.Fatalf("document counts differ")
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Key != g.Key || w.Vendor != g.Vendor || w.Label != g.Label ||
			w.Reference != g.Reference || w.Order != g.Order ||
			w.GenIndex != g.GenIndex || !w.Released.Equal(g.Released) {
			t.Fatalf("%s: header differs", w.Key)
		}
		if len(w.Revisions) != len(g.Revisions) || len(w.Errata) != len(g.Errata) ||
			len(w.Withdrawn) != len(g.Withdrawn) {
			t.Fatalf("%s: structure differs", w.Key)
		}
		for j := range w.Revisions {
			wr, gr := w.Revisions[j], g.Revisions[j]
			if wr.Number != gr.Number || !wr.Date.Equal(gr.Date) || len(wr.Added) != len(gr.Added) {
				t.Fatalf("%s rev %d differs", w.Key, wr.Number)
			}
		}
		for j := range w.Errata {
			we, ge := w.Errata[j], g.Errata[j]
			if we.ID != ge.ID || we.Seq != ge.Seq || we.Title != ge.Title ||
				we.Description != ge.Description || we.Implication != ge.Implication ||
				we.Workaround != ge.Workaround || we.Status != ge.Status ||
				we.WorkaroundCat != ge.WorkaroundCat || we.Fix != ge.Fix ||
				we.AddedIn != ge.AddedIn || !we.Disclosed.Equal(ge.Disclosed) ||
				we.Key != ge.Key {
				t.Fatalf("%s/%s: fields differ", w.Key, we.ID)
			}
			wa, ga := we.Ann, ge.Ann
			if len(wa.Triggers) != len(ga.Triggers) || len(wa.Contexts) != len(ga.Contexts) ||
				len(wa.Effects) != len(ga.Effects) || len(wa.MSRs) != len(ga.MSRs) ||
				wa.ComplexConditions != ga.ComplexConditions ||
				wa.TrivialTrigger != ga.TrivialTrigger ||
				wa.SimulationOnly != ga.SimulationOnly {
				t.Fatalf("%s/%s: annotation differs", w.Key, we.ID)
			}
			for k := range wa.Triggers {
				if wa.Triggers[k] != ga.Triggers[k] {
					t.Fatalf("%s/%s: trigger item %d differs", w.Key, we.ID, k)
				}
			}
		}
	}
}
