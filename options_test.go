package rememberr

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFunctionalOptionsEquivalence proves the new With* options select
// exactly the configuration the legacy BuildOptions struct did: the
// same seed built both ways yields the same database.
func TestFunctionalOptionsEquivalence(t *testing.T) {
	legacy := DefaultBuildOptions()
	legacy.Seed = 2
	dbA, _, err := Build(legacy)
	if err != nil {
		t.Fatal(err)
	}
	dbB, _, err := Build(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := dbA.Stats(), dbB.Stats(); a != b {
		t.Fatalf("stats differ between legacy and functional options:\n%+v\n%+v", a, b)
	}
	ea, eb := dbA.Errata(), dbB.Errata()
	if len(ea) != len(eb) {
		t.Fatalf("errata counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].FullID() != eb[i].FullID() || ea[i].Key != eb[i].Key {
			t.Fatalf("entry %d differs: %s/%s vs %s/%s",
				i, ea[i].FullID(), ea[i].Key, eb[i].FullID(), eb[i].Key)
		}
	}
}

// TestOptionOrderAndLegacyReplacement pins the documented composition
// semantics: options apply in order, and a BuildOptions value replaces
// the whole configuration (so trailing With* options refine it).
// Options are applied exactly as Build does, without running a build.
func TestOptionOrderAndLegacyReplacement(t *testing.T) {
	apply := func(options ...Option) BuildOptions {
		opts := DefaultBuildOptions()
		for _, o := range options {
			o.applyOption(&opts)
		}
		return opts
	}

	// Later options win.
	if got := apply(WithSeed(3), WithSeed(9)); got.Seed != 9 {
		t.Errorf("later WithSeed did not win: seed = %d", got.Seed)
	}

	// A legacy struct wipes earlier options; later ones still apply.
	legacy := BuildOptions{Seed: 4}
	got := apply(WithParallelism(8), legacy, WithLSH(true))
	if got.Seed != 4 || got.Parallelism != 0 || !got.UseLSH {
		t.Errorf("legacy replacement semantics broken: %+v", got)
	}
	// The zero-valued legacy fields resolve exactly as the old
	// normalized() contract: threshold 0.6, steps 7, Interpolate off.
	norm := got.normalized()
	if norm.SimilarityThreshold != 0.6 || norm.AnnotationSteps != 7 || norm.Interpolate {
		t.Errorf("normalized legacy config drifted: %+v", norm)
	}

	// The explicit-zero setters keep their semantics through options.
	if n := apply(WithSimilarityThreshold(0)).normalized(); n.SimilarityThreshold != 0 {
		t.Errorf("WithSimilarityThreshold(0) resolved to %v, want explicit 0", n.SimilarityThreshold)
	}
}

// TestBuildTraceAndObservability is the tentpole acceptance test for
// the build side: the span tree accounts for at least 90% of the build
// wall time, and the registry receives stage gauges plus the classify
// and worker-pool counters.
func TestBuildTraceAndObservability(t *testing.T) {
	reg := NewRegistry()
	_, rep, err := Build(WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Trace
	if tr == nil || tr.Name != "build" {
		t.Fatalf("missing build trace: %+v", tr)
	}
	var names []string
	for _, c := range tr.Children {
		names = append(names, c.Name)
		if c.Duration() <= 0 {
			t.Errorf("stage %s has no duration", c.Name)
		}
	}
	want := []string{"corpus", "render", "parse", "dedup", "annotate", "timeline", "validate"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("stages = %v, want %v", names, want)
	}
	if covered := tr.ChildDuration(); float64(covered) < 0.9*float64(tr.Duration()) {
		t.Errorf("stage spans cover %v of %v (<90%%)", covered, tr.Duration())
	}
	// The annotate stage exposes its phases as children.
	for _, c := range tr.Children {
		if c.Name == "annotate" {
			if len(c.Children) != 3 || c.Children[0].Name != "classify" {
				t.Errorf("annotate children = %+v, want classify/protocol/propagate", c.Children)
			}
		}
	}
	// The trace is JSON-serializable for report embedding.
	if _, err := json.Marshal(tr); err != nil {
		t.Errorf("trace does not marshal: %v", err)
	}

	// Registry-side evidence that every instrumented layer recorded.
	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	for _, metric := range []string{
		`rememberr_build_stage_seconds{stage="parse"}`,
		`rememberr_build_stage_items{stage="corpus"}`,
		"rememberr_classify_memo_hits_total",
		"rememberr_classify_memo_misses_total",
		"rememberr_classify_prefilter_candidates_total",
		"rememberr_parallel_tasks_total",
	} {
		if !strings.Contains(out, metric) {
			t.Errorf("exposition missing %s", metric)
		}
	}

	// A default build is untraced in the registry sense but still
	// carries the trace tree.
	_, rep2, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Trace == nil || len(rep2.Trace.Children) != len(want) {
		t.Fatalf("untraced build lost its trace tree: %+v", rep2.Trace)
	}
}
