package rememberr

import (
	"strings"
	"time"

	"repro/internal/taxonomy"
)

// Query is a fluent filter over the database's errata, the programmatic
// counterpart of the paper's "example custom script" for bootstrapping
// analyses on the released database. Filters compose conjunctively.
//
//	hangs := db.Query().Vendor(rememberr.Intel).
//	    WithCategory("Eff_HNG_hng").
//	    WithClass("Trg_POW").
//	    Unique()
type Query struct {
	db      *Database
	filters []func(*Erratum) bool
}

// Query starts a new query over all errata.
func (db *Database) Query() *Query {
	return &Query{db: db}
}

func (q *Query) with(f func(*Erratum) bool) *Query {
	q.filters = append(q.filters, f)
	return q
}

// Vendor keeps errata of one vendor.
func (q *Query) Vendor(v Vendor) *Query {
	return q.with(func(e *Erratum) bool {
		d := q.db.core.Docs[e.DocKey]
		return d != nil && d.Vendor == v
	})
}

// InDocument keeps errata of one document.
func (q *Query) InDocument(key string) *Query {
	return q.with(func(e *Erratum) bool { return e.DocKey == key })
}

// WithCategory keeps errata annotated with the abstract category (any
// dimension).
func (q *Query) WithCategory(categoryID string) *Query {
	return q.with(func(e *Erratum) bool { return e.Ann.Has(categoryID) })
}

// AnyCategory keeps errata annotated with at least one of the given
// abstract categories — the disjunctive counterpart of chaining
// WithCategory calls, matching the paper's semantics for contexts and
// effects ("being in any of its contexts is sufficient").
func (q *Query) AnyCategory(categoryIDs ...string) *Query {
	return q.with(func(e *Erratum) bool {
		for _, c := range categoryIDs {
			if e.Ann.Has(c) {
				return true
			}
		}
		return false
	})
}

// WithClass keeps errata with at least one item of the given class.
func (q *Query) WithClass(classID string) *Query {
	scheme := q.db.Scheme()
	return q.with(func(e *Erratum) bool {
		for _, k := range taxonomy.Kinds {
			for _, cl := range e.Ann.Classes(k, scheme) {
				if cl == classID {
					return true
				}
			}
		}
		return false
	})
}

// WithAllTriggers keeps errata requiring at least all the given
// triggers (triggers are conjunctive).
func (q *Query) WithAllTriggers(categoryIDs ...string) *Query {
	return q.with(func(e *Erratum) bool {
		for _, c := range categoryIDs {
			found := false
			for _, it := range e.Ann.Triggers {
				if it.Category == c {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	})
}

// MinTriggers keeps errata with at least n distinct trigger categories.
func (q *Query) MinTriggers(n int) *Query {
	scheme := q.db.Scheme()
	return q.with(func(e *Erratum) bool {
		return len(e.Ann.Categories(taxonomy.Trigger, scheme)) >= n
	})
}

// Workaround keeps errata with the given workaround category.
func (q *Query) Workaround(w WorkaroundCategory) *Query {
	return q.with(func(e *Erratum) bool { return e.WorkaroundCat == w })
}

// Fix keeps errata with the given fix status.
func (q *Query) Fix(f FixStatus) *Query {
	return q.with(func(e *Erratum) bool { return e.Fix == f })
}

// Complex keeps errata mentioning a complex set of conditions.
func (q *Query) Complex() *Query {
	return q.with(func(e *Erratum) bool { return e.Ann.ComplexConditions })
}

// SimulationOnly keeps errata whose bug has only been observed in
// simulation (the paper found five AMD and one Intel such erratum).
func (q *Query) SimulationOnly() *Query {
	return q.with(func(e *Erratum) bool { return e.Ann.SimulationOnly })
}

// DisclosedBetween keeps errata disclosed in [from, to).
func (q *Query) DisclosedBetween(from, to time.Time) *Query {
	return q.with(func(e *Erratum) bool {
		return !e.Disclosed.IsZero() && !e.Disclosed.Before(from) && e.Disclosed.Before(to)
	})
}

// TitleContains keeps errata whose title contains the substring
// (case-insensitive).
func (q *Query) TitleContains(sub string) *Query {
	lower := strings.ToLower(sub)
	return q.with(func(e *Erratum) bool {
		return strings.Contains(strings.ToLower(e.Title), lower)
	})
}

// ObservableIn keeps errata whose effects are observable in the given
// MSR.
func (q *Query) ObservableIn(msr string) *Query {
	return q.with(func(e *Erratum) bool {
		for _, m := range e.Ann.MSRs {
			if m == msr {
				return true
			}
		}
		return false
	})
}

func (q *Query) match(e *Erratum) bool {
	for _, f := range q.filters {
		if !f(e) {
			return false
		}
	}
	return true
}

// All returns every matching entry (duplicates counted individually).
func (q *Query) All() []*Erratum {
	var out []*Erratum
	for _, e := range q.db.core.Errata() {
		if q.match(e) {
			out = append(out, e)
		}
	}
	return out
}

// Unique returns one representative per matching deduplicated erratum.
func (q *Query) Unique() []*Erratum {
	var out []*Erratum
	for _, e := range q.db.core.Unique() {
		if q.match(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of unique matches.
func (q *Query) Count() int { return len(q.Unique()) }

// Keys returns the cluster keys of the unique matches.
func (q *Query) Keys() []string {
	var out []string
	for _, e := range q.Unique() {
		out = append(out, e.Key)
	}
	return out
}
