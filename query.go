package rememberr

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/taxonomy"
)

// Query is a fluent filter over the database's errata, the programmatic
// counterpart of the paper's "example custom script" for bootstrapping
// analyses on the released database. Filters compose conjunctively.
//
//	hangs := db.Query().Vendor(rememberr.Intel).
//	    WithCategory("Eff_HNG_hng").
//	    WithClass("Trg_POW").
//	    Unique()
//
// # Reuse contract
//
// A Query value is immutable: every filter method returns a new derived
// Query and leaves its receiver untouched, so a partially built query
// can be branched safely:
//
//	base := db.Query().Vendor(rememberr.Intel)
//	hangs := base.WithCategory("Eff_HNG_hng")   // base is unchanged
//	crashes := base.WithCategory("Eff_HNG_crh") // still two filters
//
// Terminal operations (All, Unique, Count, Keys) do not consume the
// query either; they can be repeated and interleaved with further
// filtering. Queries are not safe for concurrent mutation, but distinct
// queries over the same database may run concurrently.
//
// # Execution
//
// By default terminal operations scan all entries and evaluate every
// filter closure per entry. After Database.BuildIndex, the same Query
// compiles transparently to postings-list operations on the inverted
// index (see internal/index); both paths return identical results, a
// contract pinned by the equivalence tests.
type Query struct {
	db      *Database
	filters []filter
}

// filter is one conjunctive condition in both executable forms: a
// closure for the scan path — which deliberately receives the database
// as an argument instead of capturing it, so filters never pin stale
// state — and a compiler onto an index query for the indexed path.
type filter struct {
	pred    func(db *core.Database, e *Erratum) bool
	compile func(iq *index.Query)
}

// Query starts a new query over all errata.
func (db *Database) Query() *Query {
	return &Query{db: db}
}

// with returns a new query extended by one filter. Copy-on-extend is
// the guard behind the reuse contract above: the receiver's filter
// slice is never appended to in place, so no two queries ever share a
// growing backing array.
func (q *Query) with(f filter) *Query {
	filters := make([]filter, len(q.filters)+1)
	copy(filters, q.filters)
	filters[len(q.filters)] = f
	return &Query{db: q.db, filters: filters}
}

// Vendor keeps errata of one vendor.
func (q *Query) Vendor(v Vendor) *Query {
	return q.with(filter{
		pred: func(db *core.Database, e *Erratum) bool {
			d := db.Docs[e.DocKey]
			return d != nil && d.Vendor == v
		},
		compile: func(iq *index.Query) { iq.Vendor(v) },
	})
}

// InDocument keeps errata of one document.
func (q *Query) InDocument(key string) *Query {
	return q.with(filter{
		pred:    func(_ *core.Database, e *Erratum) bool { return e.DocKey == key },
		compile: func(iq *index.Query) { iq.InDocument(key) },
	})
}

// WithCategory keeps errata annotated with the abstract category (any
// dimension).
func (q *Query) WithCategory(categoryID string) *Query {
	return q.with(filter{
		pred:    func(_ *core.Database, e *Erratum) bool { return e.Ann.Has(categoryID) },
		compile: func(iq *index.Query) { iq.WithCategory(categoryID) },
	})
}

// AnyCategory keeps errata annotated with at least one of the given
// abstract categories — the disjunctive counterpart of chaining
// WithCategory calls, matching the paper's semantics for contexts and
// effects ("being in any of its contexts is sufficient").
func (q *Query) AnyCategory(categoryIDs ...string) *Query {
	ids := append([]string(nil), categoryIDs...)
	return q.with(filter{
		pred: func(_ *core.Database, e *Erratum) bool {
			for _, c := range ids {
				if e.Ann.Has(c) {
					return true
				}
			}
			return false
		},
		compile: func(iq *index.Query) { iq.AnyCategory(ids...) },
	})
}

// WithClass keeps errata with at least one item of the given class.
func (q *Query) WithClass(classID string) *Query {
	return q.with(filter{
		pred: func(db *core.Database, e *Erratum) bool {
			for _, k := range taxonomy.Kinds {
				for _, cl := range e.Ann.Classes(k, db.Scheme) {
					if cl == classID {
						return true
					}
				}
			}
			return false
		},
		compile: func(iq *index.Query) { iq.WithClass(classID) },
	})
}

// WithAllTriggers keeps errata requiring at least all the given
// triggers (triggers are conjunctive).
func (q *Query) WithAllTriggers(categoryIDs ...string) *Query {
	ids := append([]string(nil), categoryIDs...)
	return q.with(filter{
		pred: func(_ *core.Database, e *Erratum) bool {
			for _, c := range ids {
				found := false
				for _, it := range e.Ann.Triggers {
					if it.Category == c {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		},
		compile: func(iq *index.Query) { iq.WithAllTriggers(ids...) },
	})
}

// MinTriggers keeps errata with at least n distinct trigger categories.
func (q *Query) MinTriggers(n int) *Query {
	return q.with(filter{
		pred: func(db *core.Database, e *Erratum) bool {
			return len(e.Ann.Categories(taxonomy.Trigger, db.Scheme)) >= n
		},
		compile: func(iq *index.Query) { iq.MinTriggers(n) },
	})
}

// Workaround keeps errata with the given workaround category.
func (q *Query) Workaround(w WorkaroundCategory) *Query {
	return q.with(filter{
		pred:    func(_ *core.Database, e *Erratum) bool { return e.WorkaroundCat == w },
		compile: func(iq *index.Query) { iq.Workaround(w) },
	})
}

// Fix keeps errata with the given fix status.
func (q *Query) Fix(f FixStatus) *Query {
	return q.with(filter{
		pred:    func(_ *core.Database, e *Erratum) bool { return e.Fix == f },
		compile: func(iq *index.Query) { iq.Fix(f) },
	})
}

// Complex keeps errata mentioning a complex set of conditions.
func (q *Query) Complex() *Query {
	return q.with(filter{
		pred:    func(_ *core.Database, e *Erratum) bool { return e.Ann.ComplexConditions },
		compile: func(iq *index.Query) { iq.Complex() },
	})
}

// SimulationOnly keeps errata whose bug has only been observed in
// simulation (the paper found five AMD and one Intel such erratum).
func (q *Query) SimulationOnly() *Query {
	return q.with(filter{
		pred:    func(_ *core.Database, e *Erratum) bool { return e.Ann.SimulationOnly },
		compile: func(iq *index.Query) { iq.SimulationOnly() },
	})
}

// DisclosedBetween keeps errata disclosed in [from, to).
func (q *Query) DisclosedBetween(from, to time.Time) *Query {
	return q.with(filter{
		pred: func(_ *core.Database, e *Erratum) bool {
			return !e.Disclosed.IsZero() && !e.Disclosed.Before(from) && e.Disclosed.Before(to)
		},
		compile: func(iq *index.Query) { iq.DisclosedBetween(from, to) },
	})
}

// TitleContains keeps errata whose title contains the substring
// (case-insensitive).
func (q *Query) TitleContains(sub string) *Query {
	lower := strings.ToLower(sub)
	return q.with(filter{
		pred: func(_ *core.Database, e *Erratum) bool {
			return strings.Contains(strings.ToLower(e.Title), lower)
		},
		compile: func(iq *index.Query) { iq.TitleContains(sub) },
	})
}

// ObservableIn keeps errata whose effects are observable in the given
// MSR.
func (q *Query) ObservableIn(msr string) *Query {
	return q.with(filter{
		pred: func(_ *core.Database, e *Erratum) bool {
			for _, m := range e.Ann.MSRs {
				if m == msr {
					return true
				}
			}
			return false
		},
		compile: func(iq *index.Query) { iq.ObservableIn(msr) },
	})
}

func (q *Query) match(e *Erratum) bool {
	for _, f := range q.filters {
		if !f.pred(q.db.core, e) {
			return false
		}
	}
	return true
}

// compiled returns the query compiled onto the database's inverted
// index, or nil when no index has been built.
func (q *Query) compiled() *index.Query {
	ix := q.db.Index()
	if ix == nil {
		return nil
	}
	iq := ix.Query()
	for _, f := range q.filters {
		f.compile(iq)
	}
	return iq
}

// All returns every matching entry (duplicates counted individually).
func (q *Query) All() []*Erratum {
	if iq := q.compiled(); iq != nil {
		return iq.All()
	}
	return q.allClosure()
}

// allClosure is the scan path: evaluate every filter closure per entry.
func (q *Query) allClosure() []*Erratum {
	var out []*Erratum
	for _, e := range q.db.core.Errata() {
		if q.match(e) {
			out = append(out, e)
		}
	}
	return out
}

// Unique returns one representative per matching deduplicated erratum.
func (q *Query) Unique() []*Erratum {
	if iq := q.compiled(); iq != nil {
		return iq.Unique()
	}
	return q.uniqueClosure()
}

func (q *Query) uniqueClosure() []*Erratum {
	var out []*Erratum
	for _, e := range q.db.core.Unique() {
		if q.match(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of unique matches.
func (q *Query) Count() int { return len(q.Unique()) }

// Keys returns the cluster keys of the unique matches.
func (q *Query) Keys() []string {
	var out []string
	for _, e := range q.Unique() {
		out = append(out, e.Key)
	}
	return out
}
