package rememberr

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dut"
)

// CaseStudyOptions configures the directed-testing case study: a
// simulated design under test hides a population of bugs drawn from the
// database, and two campaigns with identical budgets compete — uniform
// constrained-random verification vs a RemembERR-directed strategy fed
// by PlanCampaign directives.
type CaseStudyOptions struct {
	// Seed drives bug selection and both strategies.
	Seed int64
	// Bugs is the hidden bug population size (default 40).
	Bugs int
	// Tests is the per-strategy test budget (default 600).
	Tests int
	// MinTriggersPerBug filters the hidden population to bugs needing
	// at least this many combined triggers (default 2 — the
	// design-testing gap the paper identifies).
	MinTriggersPerBug int
	// Directives caps the campaign plan length (default 25).
	Directives int
	// ObservationBudget and MaxTriggersPerTest configure the DUT
	// (defaults 4 and 4).
	ObservationBudget  int
	MaxTriggersPerTest int
}

// DefaultCaseStudyOptions returns the standard configuration.
func DefaultCaseStudyOptions() CaseStudyOptions {
	return CaseStudyOptions{
		Seed: 1, Bugs: 40, Tests: 600, Directives: 25,
		MinTriggersPerBug: 2,
		ObservationBudget: 4, MaxTriggersPerTest: 4,
	}
}

// CaseStudyResult compares the two campaigns.
type CaseStudyResult struct {
	// HiddenBugs is the population size.
	HiddenBugs int
	// Directed and Random are the per-strategy outcomes.
	Directed CampaignOutcome
	Random   CampaignOutcome
	// Speedup is the ratio of detected bugs (directed / random);
	// +Inf-avoidance: 0 detections on both sides gives 1.
	Speedup float64
}

// CampaignOutcome is one strategy's result.
type CampaignOutcome struct {
	Strategy       string
	Tests          int
	Detected       int
	Triggered      int
	MedianToDetect int
	DetectionCurve []int
	SampleEvery    int
}

// SimulateDirectedCampaign runs the Section VI case study on this
// database: bugs are sampled from the annotated unique errata, the
// directed strategy consumes PlanCampaign directives, and both
// strategies get the same test and observation budgets.
func (db *Database) SimulateDirectedCampaign(opts CaseStudyOptions) (*CaseStudyResult, error) {
	if opts.Bugs == 0 {
		opts.Bugs = 40
	}
	if opts.Tests == 0 {
		opts.Tests = 600
	}
	if opts.MinTriggersPerBug == 0 {
		opts.MinTriggersPerBug = 2
	}
	if opts.Directives == 0 {
		opts.Directives = 25
	}
	cfg := dut.Config{
		ObservationBudget:  opts.ObservationBudget,
		MaxTriggersPerTest: opts.MaxTriggersPerTest,
	}
	if cfg.ObservationBudget == 0 {
		cfg.ObservationBudget = 4
	}
	if cfg.MaxTriggersPerTest == 0 {
		cfg.MaxTriggersPerTest = 4
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	bugs := dut.BugsFromErrata(db.Unique(), db.Scheme(), opts.Bugs, opts.MinTriggersPerBug, rng)
	if len(bugs) == 0 {
		return nil, fmt.Errorf("rememberr: no annotated errata to seed the DUT")
	}
	design, err := dut.New(bugs, cfg)
	if err != nil {
		return nil, err
	}

	// The directed strategy uses the campaign plan derived from the
	// whole corpus — historical knowledge, not the hidden bug list.
	plan := db.PlanCampaign(CampaignOptions{MaxDirectives: opts.Directives, MinSupport: 2})
	directives := make([]dut.DirectiveInput, 0, len(plan))
	for _, d := range plan {
		monitors := append(append([]string(nil), d.Observations...), d.MSRs...)
		directives = append(directives, dut.DirectiveInput{
			Triggers: d.Triggers,
			Contexts: d.Contexts,
			Monitors: monitors,
		})
	}

	sampleEvery := opts.Tests / 20
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	directed := dut.RunCampaign(design,
		dut.NewDirectedStrategy(directives, db.Scheme(), cfg, opts.Seed), opts.Tests, sampleEvery)
	msrPool := msrVocabulary(db)
	random := dut.RunCampaign(design,
		dut.NewRandomStrategy(db.Scheme(), msrPool, cfg, opts.Seed), opts.Tests, sampleEvery)

	res := &CaseStudyResult{
		HiddenBugs: design.NumBugs(),
		Directed:   outcome(directed),
		Random:     outcome(random),
	}
	switch {
	case random.Detected > 0:
		res.Speedup = float64(directed.Detected) / float64(random.Detected)
	case directed.Detected > 0:
		res.Speedup = float64(directed.Detected)
	default:
		res.Speedup = 1
	}
	return res, nil
}

func outcome(r *dut.CampaignResult) CampaignOutcome {
	return CampaignOutcome{
		Strategy:       r.Strategy,
		Tests:          r.Tests,
		Detected:       r.Detected,
		Triggered:      r.Triggered,
		MedianToDetect: r.MedianTestsToDetect(),
		DetectionCurve: append([]int(nil), r.DetectionCurve...),
		SampleEvery:    r.SampleEvery,
	}
}

// msrVocabulary collects the MSR names appearing in the database, so
// that the random baseline can at least monitor real registers.
func msrVocabulary(db *Database) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range db.Unique() {
		for _, m := range e.Ann.MSRs {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// SweepResult aggregates the case study across several seeds, giving
// the directed-vs-random comparison statistical footing.
type SweepResult struct {
	// Seeds is the number of independent runs.
	Seeds int
	// MeanDirected and MeanRandom are the mean detected-bug counts.
	MeanDirected float64
	MeanRandom   float64
	// MeanSpeedup is the mean of the per-seed detection ratios.
	MeanSpeedup float64
	// DirectedWins counts seeds where the directed strategy detected
	// strictly more bugs.
	DirectedWins int
	// Runs holds the per-seed results.
	Runs []*CaseStudyResult
}

// SweepDirectedCampaign repeats the case study across n seeds (derived
// from opts.Seed) and aggregates the outcomes.
func (db *Database) SweepDirectedCampaign(opts CaseStudyOptions, n int) (*SweepResult, error) {
	if n <= 0 {
		n = 5
	}
	sw := &SweepResult{Seeds: n}
	for i := 0; i < n; i++ {
		o := opts
		o.Seed = opts.Seed + int64(i)*7919
		res, err := db.SimulateDirectedCampaign(o)
		if err != nil {
			return nil, err
		}
		sw.Runs = append(sw.Runs, res)
		sw.MeanDirected += float64(res.Directed.Detected)
		sw.MeanRandom += float64(res.Random.Detected)
		sw.MeanSpeedup += res.Speedup
		if res.Directed.Detected > res.Random.Detected {
			sw.DirectedWins++
		}
	}
	sw.MeanDirected /= float64(n)
	sw.MeanRandom /= float64(n)
	sw.MeanSpeedup /= float64(n)
	return sw, nil
}

// RenderCaseStudy renders the comparison as readable text.
func RenderCaseStudy(r *CaseStudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hidden bugs: %d\n", r.HiddenBugs)
	row := func(o CampaignOutcome) {
		fmt.Fprintf(&b, "%-20s detected %3d  triggered %3d  median-tests-to-detect %d\n",
			o.Strategy, o.Detected, o.Triggered, o.MedianToDetect)
		fmt.Fprintf(&b, "%20s curve (every %d tests): %v\n", "", o.SampleEvery, o.DetectionCurve)
	}
	row(r.Directed)
	row(r.Random)
	fmt.Fprintf(&b, "directed/random detection ratio: %.2fx\n", r.Speedup)
	return b.String()
}
