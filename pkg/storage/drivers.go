package storage

// The two file-format drivers are thin adapters over the internal
// store — this file and mem.go are the architecture's one sanctioned
// bridge between pkg/ and internal/. Both internal reader types
// satisfy the pkg Reader contract directly (internal/core is an alias
// layer over pkg/domain), so the adapters add no wrapping on the read
// path.

import (
	"bytes"

	"repro/internal/store"
)

func init() {
	MustRegister(v1Driver{})
	MustRegister(v2Driver{})
	MustRegister(defaultMem)
}

func isGzip(prefix []byte) bool {
	return len(prefix) >= 2 && prefix[0] == 0x1f && prefix[1] == 0x8b
}

// v1Driver opens FormatVersion 1 JSON databases.
type v1Driver struct{}

func (v1Driver) Name() string { return "v1" }

// Detect claims JSON objects and gzip streams (the gzip payload may be
// either format; WithFormat rejects a wrapped v2 file at open time, and
// OpenAny moves on).
func (v1Driver) Detect(prefix []byte) bool {
	trimmed := bytes.TrimLeft(prefix, " \t\r\n")
	return (len(trimmed) > 0 && trimmed[0] == '{') || isGzip(prefix)
}

func (v1Driver) Open(path string) (Reader, error) {
	return store.Open(path, store.WithFormat("v1"))
}

func (v1Driver) OpenBytes(data []byte) (Reader, error) {
	return store.OpenBytes(data, store.WithFormat("v1"))
}

// v2Driver opens FormatVersion 2 flat databases, mmap-backed where the
// platform supports it.
type v2Driver struct{}

func (v2Driver) Name() string { return "v2" }

func (v2Driver) Detect(prefix []byte) bool {
	return store.IsV2(prefix) || isGzip(prefix)
}

func (v2Driver) Open(path string) (Reader, error) {
	return store.Open(path, store.WithFormat("v2"))
}

func (v2Driver) OpenBytes(data []byte) (Reader, error) {
	return store.OpenBytes(data, store.WithFormat("v2"))
}
