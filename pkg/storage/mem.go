package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/pkg/domain"
)

// defaultMem is the shared instance registered under "mem"; tests that
// want isolation construct their own with NewMem and use it directly.
var defaultMem = NewMem()

// Memory returns the Mem instance registered under "mem", so tests can
// Put fixtures and reach them through Open("mem", path).
func Memory() *Mem { return defaultMem }

// Mem is an in-memory storage backend for tests. Entries are keyed by
// a caller-chosen path and are either encoded blobs in any registered
// serialization (Put) or materialized databases that skip
// serialization entirely (PutDatabase).
type Mem struct {
	mu    sync.Mutex
	blobs map[string][]byte
	dbs   map[string]*domain.Database
}

// NewMem returns an empty in-memory backend. The result is a Backend
// and can be registered under "mem" if no other Mem has been, but is
// fully usable unregistered.
func NewMem() *Mem {
	return &Mem{
		blobs: make(map[string][]byte),
		dbs:   make(map[string]*domain.Database),
	}
}

// Name implements Backend.
func (m *Mem) Name() string { return "mem" }

// Detect always reports false: memory entries carry no on-disk
// serialization to sniff, so a Mem is only reached by name.
func (m *Mem) Detect(prefix []byte) bool { return false }

// Put stores an encoded database blob under path, replacing any prior
// entry there. The blob may be in any registered serialization
// (including gzip-wrapped); Open sniffs it like a file. The caller
// must not mutate data afterwards.
func (m *Mem) Put(path string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[path] = data
	delete(m.dbs, path)
}

// PutDatabase stores a materialized database under path, replacing any
// prior entry there. Readers opened from it share db — the caller must
// not mutate it afterwards.
func (m *Mem) PutDatabase(path string, db *domain.Database) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dbs[path] = db
	delete(m.blobs, path)
}

// Delete removes the entry under path, if any.
func (m *Mem) Delete(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, path)
	delete(m.dbs, path)
}

// Paths returns the stored entry keys, sorted.
func (m *Mem) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	paths := make([]string, 0, len(m.blobs)+len(m.dbs))
	for p := range m.blobs {
		paths = append(paths, p)
	}
	for p := range m.dbs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Open implements Backend: blob entries open through the sniffing
// registry exactly like files, database entries get a decode-free
// reader reporting FormatMemory.
func (m *Mem) Open(path string) (Reader, error) {
	m.mu.Lock()
	blob, isBlob := m.blobs[path]
	db, isDB := m.dbs[path]
	m.mu.Unlock()
	switch {
	case isBlob:
		return OpenAnyBytes(blob)
	case isDB:
		return &memReader{db: db}, nil
	}
	return nil, fmt.Errorf("storage: mem backend has no entry %q", path)
}

// OpenBytes implements Backend by sniffing the registered drivers; a
// Mem adds no serialization of its own.
func (m *Mem) OpenBytes(data []byte) (Reader, error) {
	return OpenAnyBytes(data)
}

// memReader serves a materialized database that was never serialized.
type memReader struct{ db *domain.Database }

func (r *memReader) Database() (*domain.Database, error) { return r.db, nil }
func (r *memReader) Format() int                         { return FormatMemory }
func (r *memReader) Mapped() bool                        { return false }
func (r *memReader) Close() error                        { return nil }
