// Package storage is the storage port of the hexagonal architecture:
// a small, stable contract between hosts that need an errata database
// and the backends that know how to produce one. Consumers program
// against [Reader] and [Backend]; concrete drivers live behind the
// registry and are selected by name ([Open]) or by sniffing the
// leading bytes of the input ([OpenAny]).
//
// Three drivers register themselves by default:
//
//   - "v1": the FormatVersion 1 JSON store
//   - "v2": the FormatVersion 2 flat store (mmap-backed where the
//     platform supports it)
//   - "mem": an in-memory backend for tests ([Mem]), holding encoded
//     blobs or materialized databases keyed by path
//
// This package is the single sanctioned bridge to internal/store; the
// architecture tests forbid every other pkg/ and plugins/ package from
// importing internal/.
package storage

import "repro/pkg/domain"

// FormatMemory is the [Reader.Format] value of a reader serving a
// materialized in-memory database that was never serialized. The
// on-disk formats report their store format version (1 or 2) instead.
const FormatMemory = 0

// Reader is a read handle over one opened database, regardless of the
// backend that produced it. It is the pkg/ mirror of the internal
// store's reader contract, so every internal reader satisfies it.
type Reader interface {
	// Database materializes (and memoizes) the full database.
	Database() (*domain.Database, error)
	// Format reports the serialization format the reader was opened
	// from: 1 (JSON), 2 (flat store) or FormatMemory.
	Format() int
	// Mapped reports whether reads go through a file mapping.
	Mapped() bool
	// Close releases the backing resources; idempotent. Nothing
	// materialized from a mapped reader may be touched after the last
	// reference is closed.
	Close() error
}

// Backend is one storage driver: it names itself for open-by-name,
// recognizes its own serialization in a byte prefix for sniff-based
// dispatch, and opens paths or buffers into Readers.
type Backend interface {
	// Name is the registry key, e.g. "v1", "v2", "mem".
	Name() string
	// Detect reports whether prefix (the first SniffLen bytes of the
	// input, shorter if the input is shorter) plausibly starts this
	// backend's serialization. More than one backend may claim a
	// prefix — gzip wraps both file formats — and OpenAny tries every
	// claimant in registration order.
	Detect(prefix []byte) bool
	// Open opens the database at path.
	Open(path string) (Reader, error)
	// OpenBytes opens an in-memory serialization. The caller must not
	// mutate data while the reader or anything materialized from it is
	// in use.
	OpenBytes(data []byte) (Reader, error)
}
