package storage_test

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/store"
	"repro/pkg/storage"
	_ "repro/plugins/defaults"
)

func gz(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeBoth(t *testing.T, seed int64) (v1, v2 []byte) {
	t.Helper()
	gt, err := corpus.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	v1, err = store.Encode(gt.DB)
	if err != nil {
		t.Fatal(err)
	}
	v2, err = store.EncodeV2(gt.DB, store.V2Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v1, v2
}

func TestRegisteredBackends(t *testing.T) {
	want := []string{"mem", "v1", "v2"}
	if got := storage.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		b, ok := storage.Lookup(name)
		if !ok || b.Name() != name {
			t.Fatalf("Lookup(%q) = %v, %v", name, b, ok)
		}
	}
	if _, err := storage.Open("no-such", "x"); err == nil {
		t.Fatal("Open with unknown backend name succeeded")
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	if err := storage.Register(nil); err == nil {
		t.Error("nil backend accepted")
	}
	if err := storage.Register(storage.NewMem()); err == nil {
		t.Error("duplicate name \"mem\" accepted")
	}
}

// TestOpenByName opens each serialization through its named driver and
// checks the reported format, plus the format-mismatch rejection.
func TestOpenByName(t *testing.T) {
	v1Bytes, v2Bytes := encodeBoth(t, 1)
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "db.json")
	v2Path := filepath.Join(dir, "db.v2")
	if err := os.WriteFile(v1Path, v1Bytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2Path, v2Bytes, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		backend, path string
		format        int
	}{
		{"v1", v1Path, 1},
		{"v2", v2Path, 2},
	} {
		r, err := storage.Open(tc.backend, tc.path)
		if err != nil {
			t.Fatalf("Open(%q, %s): %v", tc.backend, tc.path, err)
		}
		if r.Format() != tc.format {
			t.Errorf("Open(%q): format %d, want %d", tc.backend, r.Format(), tc.format)
		}
		if db, err := r.Database(); err != nil || len(db.Errata()) == 0 {
			t.Errorf("Open(%q): database: %v", tc.backend, err)
		}
		r.Close()
	}

	if _, err := storage.Open("v1", v2Path); err == nil {
		t.Error("v1 driver opened a v2 file")
	}
	if _, err := storage.Open("v2", v1Path); err == nil {
		t.Error("v2 driver opened a v1 file")
	}
}

// TestOpenAnySniffs proves sniff-based dispatch picks the right driver
// for both formats, plain and gzip-wrapped, from paths and buffers.
func TestOpenAnySniffs(t *testing.T) {
	v1Bytes, v2Bytes := encodeBoth(t, 1)
	cases := []struct {
		name   string
		data   []byte
		format int
	}{
		{"v1.json", v1Bytes, 1},
		{"v2.bin", v2Bytes, 2},
		{"v1.json.gz", gz(t, v1Bytes), 1},
		{"v2.bin.gz", gz(t, v2Bytes), 2},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		r, err := storage.OpenAnyBytes(tc.data)
		if err != nil {
			t.Fatalf("OpenAnyBytes(%s): %v", tc.name, err)
		}
		if r.Format() != tc.format {
			t.Errorf("OpenAnyBytes(%s): format %d, want %d", tc.name, r.Format(), tc.format)
		}
		r.Close()

		path := filepath.Join(dir, tc.name)
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err = storage.OpenAny(path)
		if err != nil {
			t.Fatalf("OpenAny(%s): %v", tc.name, err)
		}
		if r.Format() != tc.format {
			t.Errorf("OpenAny(%s): format %d, want %d", tc.name, r.Format(), tc.format)
		}
		r.Close()
	}

	if _, err := storage.OpenAnyBytes([]byte("not a database")); err == nil {
		t.Error("OpenAnyBytes accepted garbage")
	}
}

// TestMemRoundTripSeeds is the store round-trip property suite run
// through the in-memory backend: for each seed, every way of storing
// the corpus in a Mem — v1 blob, v2 blob, materialized database —
// yields a reader whose database re-encodes byte-identically to the
// original v1 encoding.
func TestMemRoundTripSeeds(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := store.Encode(gt.DB)
		if err != nil {
			t.Fatal(err)
		}
		v2Bytes, err := store.EncodeV2(gt.DB, store.V2Options{})
		if err != nil {
			t.Fatal(err)
		}

		mem := storage.NewMem()
		mem.Put("v1", want)
		mem.Put("v2", v2Bytes)
		mem.PutDatabase("db", gt.DB)

		for _, entry := range []struct {
			path   string
			format int
		}{
			{"v1", 1},
			{"v2", 2},
			{"db", storage.FormatMemory},
		} {
			r, err := mem.Open(entry.path)
			if err != nil {
				t.Fatalf("seed %d: mem open %s: %v", seed, entry.path, err)
			}
			if r.Format() != entry.format {
				t.Errorf("seed %d: mem %s: format %d, want %d",
					seed, entry.path, r.Format(), entry.format)
			}
			db, err := r.Database()
			if err != nil {
				t.Fatalf("seed %d: mem %s: database: %v", seed, entry.path, err)
			}
			got, err := store.Encode(db)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: mem %s: re-encoding differs from original (%d vs %d bytes)",
					seed, entry.path, len(got), len(want))
			}
			r.Close()
		}
	}
}

// TestMemEntryLifecycle covers replacement, deletion and listing.
func TestMemEntryLifecycle(t *testing.T) {
	v1Bytes, _ := encodeBoth(t, 1)
	mem := storage.NewMem()
	if _, err := mem.Open("missing"); err == nil {
		t.Fatal("open of missing entry succeeded")
	}
	mem.Put("a", v1Bytes)
	mem.PutDatabase("b", nil)
	if got := mem.Paths(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Paths() = %v", got)
	}
	// Replacing a blob with a database (and vice versa) swaps kinds.
	mem.PutDatabase("a", nil)
	r, err := mem.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if r.Format() != storage.FormatMemory {
		t.Fatalf("replaced entry format = %d, want FormatMemory", r.Format())
	}
	mem.Delete("a")
	mem.Delete("b")
	if got := mem.Paths(); len(got) != 0 {
		t.Fatalf("Paths() after delete = %v", got)
	}
}

// TestMemoryRegisteredInstance proves the shared "mem" instance is
// reachable through the open-by-name path.
func TestMemoryRegisteredInstance(t *testing.T) {
	v1Bytes, _ := encodeBoth(t, 1)
	storage.Memory().Put("registered-test", v1Bytes)
	defer storage.Memory().Delete("registered-test")
	r, err := storage.Open("mem", "registered-test")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Format() != 1 {
		t.Fatalf("format = %d, want 1", r.Format())
	}
}
