package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// SniffLen is the number of leading bytes OpenAny hands to each
// backend's Detect.
const SniffLen = 16

var registry struct {
	mu       sync.Mutex
	backends map[string]Backend
	order    []string // registration order, the OpenAny trial order
}

// Register adds a backend to the registry. It errors on a nil backend,
// an empty name, or a name that is already taken.
func Register(b Backend) error {
	if b == nil {
		return errors.New("storage: Register called with nil backend")
	}
	name := b.Name()
	if name == "" {
		return errors.New("storage: backend has empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.backends == nil {
		registry.backends = make(map[string]Backend)
	}
	if _, dup := registry.backends[name]; dup {
		return fmt.Errorf("storage: backend %q already registered", name)
	}
	registry.backends[name] = b
	registry.order = append(registry.order, name)
	return nil
}

// MustRegister is Register panicking on error, for driver init
// functions.
func MustRegister(b Backend) {
	if err := Register(b); err != nil {
		panic(err)
	}
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	b, ok := registry.backends[name]
	return b, ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.backends))
	for name := range registry.backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// snapshot returns the backends in registration order.
func snapshot() []Backend {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]Backend, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.backends[name])
	}
	return out
}

// Open opens path with the named backend.
func Open(name, path string) (Reader, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("storage: no backend %q (have %v)", name, Names())
	}
	return b.Open(path)
}

// OpenBytes opens an in-memory serialization with the named backend.
func OpenBytes(name string, data []byte) (Reader, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("storage: no backend %q (have %v)", name, Names())
	}
	return b.OpenBytes(data)
}

// OpenAny sniffs the file's leading bytes and opens it with the first
// registered backend that both claims the prefix and opens the file
// successfully. Backends are tried in registration order, so when a
// prefix is ambiguous — gzip wraps either file format — the earliest
// claimant that actually decodes the content wins.
func OpenAny(path string) (Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	prefix := make([]byte, SniffLen)
	n, err := io.ReadFull(f, prefix)
	f.Close()
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return openFirst(prefix[:n], func(b Backend) (Reader, error) { return b.Open(path) })
}

// OpenAnyBytes is OpenAny over an in-memory serialization.
func OpenAnyBytes(data []byte) (Reader, error) {
	prefix := data
	if len(prefix) > SniffLen {
		prefix = prefix[:SniffLen]
	}
	return openFirst(prefix, func(b Backend) (Reader, error) { return b.OpenBytes(data) })
}

func openFirst(prefix []byte, open func(Backend) (Reader, error)) (Reader, error) {
	var errs []error
	for _, b := range snapshot() {
		if !b.Detect(prefix) {
			continue
		}
		r, err := open(b)
		if err == nil {
			return r, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", b.Name(), err))
	}
	if len(errs) == 0 {
		return nil, errors.New("storage: no registered backend recognizes the input")
	}
	return nil, fmt.Errorf("storage: every matching backend failed: %w", errors.Join(errs...))
}
