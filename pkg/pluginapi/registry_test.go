package pluginapi

import (
	"strings"
	"testing"
)

type fakePack struct{ info Info }

func (p fakePack) Info() Info        { return p.info }
func (p fakePack) Rules() []RuleSpec { return nil }

type fakeProfile struct{ info Info }

func (p fakeProfile) Info() Info       { return p.info }
func (p fakeProfile) Spec() CorpusSpec { return CorpusSpec{} }

func TestRegisterRejectsInvalid(t *testing.T) {
	if err := RegisterRulePack(nil); err == nil {
		t.Error("nil rule pack accepted")
	}
	if err := RegisterCorpusProfile(nil); err == nil {
		t.Error("nil corpus profile accepted")
	}
	if err := RegisterRulePack(fakePack{Info{Name: "", APIVersion: APIVersion}}); err == nil {
		t.Error("empty-name rule pack accepted")
	}
	err := RegisterRulePack(fakePack{Info{Name: "future", APIVersion: APIVersion + 1}})
	if err == nil || !strings.Contains(err.Error(), "API version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
	err = RegisterCorpusProfile(fakeProfile{Info{Name: "future", APIVersion: 0}})
	if err == nil || !strings.Contains(err.Error(), "API version") {
		t.Errorf("profile version mismatch not rejected: %v", err)
	}
}

func TestRegisterAndLookup(t *testing.T) {
	p := fakePack{Info{Name: "test-pack-lookup", Version: "1.0.0", APIVersion: APIVersion}}
	if err := RegisterRulePack(p); err != nil {
		t.Fatal(err)
	}
	if err := RegisterRulePack(p); err == nil {
		t.Error("duplicate registration accepted")
	}
	got, ok := LookupRulePack("test-pack-lookup")
	if !ok || got.Info().Version != "1.0.0" {
		t.Errorf("lookup = %v, %v", got, ok)
	}
	found := false
	for _, name := range RulePackNames() {
		if name == "test-pack-lookup" {
			found = true
		}
	}
	if !found {
		t.Errorf("registered pack missing from RulePackNames: %v", RulePackNames())
	}

	cp := fakeProfile{Info{Name: "test-profile-lookup", APIVersion: APIVersion}}
	if err := RegisterCorpusProfile(cp); err != nil {
		t.Fatal(err)
	}
	if err := RegisterCorpusProfile(cp); err == nil {
		t.Error("duplicate profile registration accepted")
	}
	if _, ok := LookupCorpusProfile("test-profile-lookup"); !ok {
		t.Error("profile lookup failed")
	}
}

func TestDefaultsAreSticky(t *testing.T) {
	if err := SetDefaultRulePack("no-such-pack"); err == nil {
		t.Error("defaulting to an unregistered pack accepted")
	}
	if err := SetDefaultCorpusProfile("no-such-profile"); err == nil {
		t.Error("defaulting to an unregistered profile accepted")
	}

	a := fakePack{Info{Name: "test-default-a", APIVersion: APIVersion}}
	b := fakePack{Info{Name: "test-default-b", APIVersion: APIVersion}}
	if err := RegisterRulePack(a); err != nil {
		t.Fatal(err)
	}
	if err := RegisterRulePack(b); err != nil {
		t.Fatal(err)
	}
	if err := SetDefaultRulePack("test-default-a"); err != nil {
		t.Fatal(err)
	}
	// Re-setting the same default is idempotent; switching is not.
	if err := SetDefaultRulePack("test-default-a"); err != nil {
		t.Errorf("idempotent re-set failed: %v", err)
	}
	if err := SetDefaultRulePack("test-default-b"); err == nil {
		t.Error("conflicting default accepted")
	}
	got, err := DefaultRulePack()
	if err != nil || got.Info().Name != "test-default-a" {
		t.Errorf("DefaultRulePack = %v, %v", got, err)
	}
}
