// Package pluginapi is the versioned contract between the RemembERR
// host and its plugins. A plugin is a plain Go package that provides
// data — classifier rule packs (the regex tables of Section V-A) or
// corpus profiles (the document set and calibration statistics of
// Tables III-VI) — and registers it here from an init function.
//
// Plugins depend only on pkg/domain and this package, never on
// internal/; the host resolves registered plugins lazily, never on the
// plugin packages themselves. The plugins/defaults package wires the
// built-in Intel/AMD rule pack and corpus profile as the defaults;
// binaries and tests import it for its side effects:
//
//	import _ "repro/plugins/defaults"
//
// Compatibility is checked at registration time: every plugin states
// the APIVersion it was built against in its Info, and Register
// rejects plugins built against a different version instead of
// failing obscurely later.
package pluginapi

import "repro/pkg/domain"

// APIVersion is the version of the plugin contract this host supports.
// It is incremented whenever the interfaces or the data structures of
// this package change incompatibly; plugins report the version they
// were built against in Info.APIVersion.
const APIVersion = 1

// Info identifies a plugin and the API version it was built against.
type Info struct {
	// Name is the unique registry name of the plugin, e.g. "intel-amd".
	// Rule packs and corpus profiles have separate namespaces.
	Name string
	// Version is the plugin's own version string, e.g. "1.0.0". It is
	// informational; the registry does not interpret it.
	Version string
	// APIVersion is the pluginapi.APIVersion the plugin was built
	// against. Registration fails unless it equals the host's.
	APIVersion int
	// Description is a one-line human-readable summary.
	Description string
}

// RuleSpec is one classifier rule: the regex patterns that decide one
// abstract taxonomy category. Strong patterns are distinctive — a
// match is sufficient to auto-include the category. Weak patterns are
// suggestive — a match surfaces the category for human review but
// never auto-includes it (the conservative-filtering principle of
// Section V-A of the paper).
//
// Patterns are Go regular expressions; the engine compiles them
// case-insensitively. The order of rules within a kind is significant:
// matched categories are reported in rule order.
type RuleSpec struct {
	// Kind is the taxonomy dimension the rule classifies.
	Kind domain.Kind
	// Category is the abstract category identifier, e.g. "Trg_CFG_wrg".
	// It must exist in the scheme the engine is compiled against.
	Category string
	// Strong lists the distinctive patterns.
	Strong []string
	// Weak lists the suggestive patterns.
	Weak []string
}

// RulePack is a named, versioned set of classifier rules.
type RulePack interface {
	// Info identifies the pack.
	Info() Info
	// Rules returns the rule specifications. The slice and its
	// contents must be treated as immutable.
	Rules() []RuleSpec
}

// CorpusProfile is a named, versioned corpus generation profile: the
// documents to generate and the calibrated sampling distributions.
type CorpusProfile interface {
	// Info identifies the profile.
	Info() Info
	// Spec returns the corpus specification. The returned value and
	// everything it references must be treated as immutable.
	Spec() CorpusSpec
}
