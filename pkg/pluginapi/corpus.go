package pluginapi

import "time"

// DocProfile describes one specification-update document to generate.
type DocProfile struct {
	// Key is the document key, e.g. "intel-06".
	Key string
	// Intel is true for Intel Core documents.
	Intel bool
	// Label is the generation/family label of Table III.
	Label string
	// Reference is the vendor document reference of Table III.
	Reference string
	// Prefix is the erratum-ID prefix for Intel documents (e.g. "SKL");
	// empty for AMD, which uses global numeric identifiers.
	Prefix string
	// GenIndex is the Intel generation number (1..12); 0 for AMD.
	GenIndex int
	// Released is the initial release date of the CPU series.
	Released time.Time
	// LastUpdate is the date of the final document revision.
	LastUpdate time.Time
	// Count is the number of erratum entries the document must contain.
	Count int
	// RevisionMonths is the average number of months between revisions.
	RevisionMonths int
}

// Weighted is an identifier with a sampling weight, one row of a
// discrete sampling distribution.
type Weighted struct {
	// ID is the sampled identifier (a category id, an MSR name, or a
	// numeral for count distributions).
	ID string
	// Weight is the unnormalized sampling weight.
	Weight float64
}

// VendorBias multiplies a weight per vendor.
type VendorBias struct {
	Intel float64
	AMD   float64
}

// Calibration holds the corpus-level targets the generator is
// calibrated — and verified — against (Sections IV-A and V-B of the
// paper for the built-in profile).
type Calibration struct {
	// IntelTotal is the number of Intel erratum entries.
	IntelTotal int
	// IntelUnique is the number of unique Intel errata.
	IntelUnique int
	// AMDTotal is the number of AMD erratum entries.
	AMDTotal int
	// AMDUnique is the number of unique AMD errata.
	AMDUnique int

	// SharedGens6To10 is the number of bugs shared by all Intel Core
	// generations 6 to 10 (Figure 4). Zero disables the pinned
	// shared-lineage plan.
	SharedGens6To10 int
	// LineagesCore1To10 is the number of bugs present from Core 1 to
	// Core 10 (Section IV-B2). Zero disables those lineages.
	LineagesCore1To10 int

	// ComplexConditionFractionIntel is the fraction of unique Intel
	// errata mentioning a "complex set of conditions".
	ComplexConditionFractionIntel float64
	// ComplexConditionFractionAMD is the AMD counterpart.
	ComplexConditionFractionAMD float64
	// TrivialTriggerFraction is the fraction of errata with no clear or
	// only trivial triggers, excluded from Figure 11.
	TrivialTriggerFraction float64
	// NoWorkaroundFractionIntel is the fraction of unique Intel errata
	// without any suggested workaround (Figure 6).
	NoWorkaroundFractionIntel float64
	// NoWorkaroundFractionAMD is the AMD counterpart.
	NoWorkaroundFractionAMD float64
}

// CorpusSpec is the full corpus generation profile: the document set
// and every sampling distribution the generator draws from. All slices
// and maps must be treated as immutable after registration.
type CorpusSpec struct {
	// IntelDocs lists the Intel documents in generation order.
	IntelDocs []DocProfile
	// AMDDocs lists the AMD documents in family order.
	AMDDocs []DocProfile
	// Calibration holds the corpus-level targets.
	Calibration Calibration

	// TriggerWeights is the marginal distribution over abstract
	// trigger categories (Figure 10).
	TriggerWeights []Weighted
	// VendorTriggerBias multiplies trigger weights per vendor
	// (Figures 15 and 16).
	VendorTriggerBias map[string]VendorBias
	// TriggerPairBoost boosts the conditional probability of the
	// second trigger given the first (Figure 12).
	TriggerPairBoost map[[2]string]float64
	// TriggerCountWeights is the distribution of the number of
	// non-trivial triggers per erratum (Figure 11).
	TriggerCountWeights []Weighted

	// ContextWeights is the marginal distribution over context
	// categories (Figure 17).
	ContextWeights []Weighted
	// ContextCountWeights is the distribution of contexts per erratum.
	ContextCountWeights []Weighted

	// EffectWeights is the marginal distribution over effect
	// categories (Figure 18).
	EffectWeights []Weighted
	// EffectCountWeights is the distribution of effects per erratum.
	EffectCountWeights []Weighted

	// MSRWeights distributes the observable-effect MSR for Intel
	// errata with register-visible effects (Figure 19).
	MSRWeights []Weighted
	// AMDMSRWeights is the AMD counterpart.
	AMDMSRWeights []Weighted

	// WorkaroundWeightsIntel distributes Intel workaround categories
	// (Figure 6); identifiers are core.WorkaroundCategory labels.
	WorkaroundWeightsIntel []Weighted
	// WorkaroundWeightsAMD is the AMD counterpart.
	WorkaroundWeightsAMD []Weighted
	// FixWeights distributes fix statuses (Figure 7); identifiers are
	// core.FixStatus labels.
	FixWeights []Weighted
}
