package pluginapi

import (
	"fmt"
	"sort"
	"sync"
)

// The registry holds every registered plugin plus the designated
// defaults. Rule packs and corpus profiles live in separate
// namespaces. Registration normally happens from plugin package init
// functions; the registry is safe for concurrent use regardless.
var registry = struct {
	sync.RWMutex
	rulePacks      map[string]RulePack
	corpusProfiles map[string]CorpusProfile
	defaultPack    string
	defaultProfile string
}{
	rulePacks:      make(map[string]RulePack),
	corpusProfiles: make(map[string]CorpusProfile),
}

// checkInfo validates a plugin's Info against the host API version.
func checkInfo(what string, info Info) error {
	if info.Name == "" {
		return fmt.Errorf("pluginapi: %s with empty name", what)
	}
	if info.APIVersion != APIVersion {
		return fmt.Errorf("pluginapi: %s %q built against plugin API version %d, host supports %d",
			what, info.Name, info.APIVersion, APIVersion)
	}
	return nil
}

// RegisterRulePack adds a rule pack to the registry. It fails when the
// pack is nil, its name is empty or already taken, or it was built
// against a different APIVersion.
func RegisterRulePack(p RulePack) error {
	if p == nil {
		return fmt.Errorf("pluginapi: nil rule pack")
	}
	if err := checkInfo("rule pack", p.Info()); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	name := p.Info().Name
	if _, dup := registry.rulePacks[name]; dup {
		return fmt.Errorf("pluginapi: rule pack %q already registered", name)
	}
	registry.rulePacks[name] = p
	return nil
}

// MustRegisterRulePack is RegisterRulePack panicking on error, for use
// in plugin init functions.
func MustRegisterRulePack(p RulePack) {
	if err := RegisterRulePack(p); err != nil {
		panic(err)
	}
}

// RegisterCorpusProfile adds a corpus profile to the registry under
// the same rules as RegisterRulePack.
func RegisterCorpusProfile(p CorpusProfile) error {
	if p == nil {
		return fmt.Errorf("pluginapi: nil corpus profile")
	}
	if err := checkInfo("corpus profile", p.Info()); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	name := p.Info().Name
	if _, dup := registry.corpusProfiles[name]; dup {
		return fmt.Errorf("pluginapi: corpus profile %q already registered", name)
	}
	registry.corpusProfiles[name] = p
	return nil
}

// MustRegisterCorpusProfile is RegisterCorpusProfile panicking on
// error, for use in plugin init functions.
func MustRegisterCorpusProfile(p CorpusProfile) {
	if err := RegisterCorpusProfile(p); err != nil {
		panic(err)
	}
}

// SetDefaultRulePack designates a registered pack as the default the
// host resolves when no pack is named explicitly. Setting a different
// default over an existing one fails: defaults are wired once, by the
// composition root (normally plugins/defaults).
func SetDefaultRulePack(name string) error {
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.rulePacks[name]; !ok {
		return fmt.Errorf("pluginapi: cannot default to unregistered rule pack %q", name)
	}
	if registry.defaultPack != "" && registry.defaultPack != name {
		return fmt.Errorf("pluginapi: default rule pack already set to %q", registry.defaultPack)
	}
	registry.defaultPack = name
	return nil
}

// SetDefaultCorpusProfile designates a registered profile as the
// default, under the same rules as SetDefaultRulePack.
func SetDefaultCorpusProfile(name string) error {
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.corpusProfiles[name]; !ok {
		return fmt.Errorf("pluginapi: cannot default to unregistered corpus profile %q", name)
	}
	if registry.defaultProfile != "" && registry.defaultProfile != name {
		return fmt.Errorf("pluginapi: default corpus profile already set to %q", registry.defaultProfile)
	}
	registry.defaultProfile = name
	return nil
}

// DefaultRulePack returns the designated default rule pack. The error
// explains how to wire one when none is registered.
func DefaultRulePack() (RulePack, error) {
	registry.RLock()
	defer registry.RUnlock()
	if registry.defaultPack == "" {
		return nil, fmt.Errorf("pluginapi: no default rule pack registered (import repro/plugins/defaults for the built-in Intel/AMD rules)")
	}
	return registry.rulePacks[registry.defaultPack], nil
}

// DefaultCorpusProfile returns the designated default corpus profile.
func DefaultCorpusProfile() (CorpusProfile, error) {
	registry.RLock()
	defer registry.RUnlock()
	if registry.defaultProfile == "" {
		return nil, fmt.Errorf("pluginapi: no default corpus profile registered (import repro/plugins/defaults for the built-in Table III profile)")
	}
	return registry.corpusProfiles[registry.defaultProfile], nil
}

// LookupRulePack returns a rule pack by name.
func LookupRulePack(name string) (RulePack, bool) {
	registry.RLock()
	defer registry.RUnlock()
	p, ok := registry.rulePacks[name]
	return p, ok
}

// LookupCorpusProfile returns a corpus profile by name.
func LookupCorpusProfile(name string) (CorpusProfile, bool) {
	registry.RLock()
	defer registry.RUnlock()
	p, ok := registry.corpusProfiles[name]
	return p, ok
}

// RulePackNames lists the registered rule pack names, sorted.
func RulePackNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.rulePacks))
	for name := range registry.rulePacks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CorpusProfileNames lists the registered corpus profile names, sorted.
func CorpusProfileNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.corpusProfiles))
	for name := range registry.corpusProfiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
