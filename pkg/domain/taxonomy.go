// Package domain is the stable public data model of RemembERR: the
// taxonomy contracts (kinds, classes, abstract categories and the
// Scheme view) and the erratum/document/database model that every
// layer — storage backends, classifier rule packs, corpus profiles,
// the serving tier — operates on.
//
// The package is the innermost hexagonal layer: it imports nothing
// from internal/ and nothing from the plugin trees, so third-party
// plugins and external consumers can depend on it without reaching
// into implementation packages. internal/core and internal/taxonomy
// re-export these types under their historical names, so the two
// views are interchangeable (the internal names are type aliases).
//
// The taxonomy is hierarchical with three levels of abstraction:
//
//   - the concrete level: the exact action described in an erratum
//     ("the core resumes from the C6 power state"). Concrete items are
//     free-form strings attached to annotations and are the only
//     potentially ISA-specific level.
//   - the abstract level: a slightly higher abstraction ("a transition
//     between core power states"), identified by descriptors such as
//     Trg_POW_pwc. There are 60 abstract categories in the base scheme:
//     34 triggers, 10 contexts and 16 observable effects.
//   - the class level: the highest abstraction ("power management"),
//     identified by descriptors such as Trg_POW.
//
// Triggers are conjunctive: all triggers of an erratum must be applied
// to provoke the bug. Contexts and effects are disjunctive: being in
// any listed context suffices, and observing any listed effect
// suffices to detect the bug.
package domain

import (
	"fmt"
	"strings"
)

// Kind discriminates the three annotation dimensions of an erratum.
type Kind int

const (
	// Trigger marks conditions that are necessary to provoke a bug.
	Trigger Kind = iota
	// Context marks settings in which a bug can manifest.
	Context
	// Effect marks observable deviations once a bug has been triggered.
	Effect
)

// Kinds lists all kinds in canonical order.
var Kinds = []Kind{Trigger, Context, Effect}

// String returns the kind prefix used in descriptors (Trg, Ctx, Eff).
func (k Kind) String() string {
	switch k {
	case Trigger:
		return "Trg"
	case Context:
		return "Ctx"
	case Effect:
		return "Eff"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Name returns the human-readable name of the kind.
func (k Kind) Name() string {
	switch k {
	case Trigger:
		return "trigger"
	case Context:
		return "context"
	case Effect:
		return "effect"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind converts a descriptor prefix (Trg, Ctx or Eff,
// case-insensitive) into a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "trg", "trigger":
		return Trigger, nil
	case "ctx", "context":
		return Context, nil
	case "eff", "effect":
		return Effect, nil
	default:
		return 0, fmt.Errorf("taxonomy: unknown kind prefix %q", s)
	}
}

// Class is a class-level category, the highest abstraction level.
type Class struct {
	// ID is the full class descriptor, e.g. "Trg_EXT".
	ID string
	// Kind tells whether this is a trigger, context or effect class.
	Kind Kind
	// Suffix is the class part of the descriptor, e.g. "EXT".
	Suffix string
	// Description is the one-sentence description from the paper tables.
	Description string
}

// Category is an abstract-level category.
type Category struct {
	// ID is the full abstract descriptor, e.g. "Trg_EXT_rst".
	ID string
	// Kind tells whether this is a trigger, context or effect category.
	Kind Kind
	// Class is the class descriptor this category belongs to, e.g. "Trg_EXT".
	Class string
	// Suffix is the abstract part of the descriptor, e.g. "rst".
	Suffix string
	// Description is the one-sentence description from the paper tables.
	Description string
}

// Scheme is the read-only contract of a classification scheme: the set
// of classes and abstract categories with deterministic iteration
// order. internal/taxonomy's *Scheme (the paper's base scheme and any
// Registry-extended scheme) satisfies it; plugin taxonomies for new
// fault domains provide their own implementations.
type Scheme interface {
	// Classes returns all classes of kind k in definition order; a
	// negative kind selects every class.
	Classes(k Kind) []Class
	// AllClasses returns every class in definition order.
	AllClasses() []Class
	// Categories returns all abstract categories of kind k in
	// definition order; a negative kind selects every category.
	Categories(k Kind) []Category
	// AllCategories returns every abstract category in definition order.
	AllCategories() []Category
	// CategoriesOf returns the abstract category IDs belonging to the
	// given class descriptor, in definition order.
	CategoriesOf(classID string) []string
	// Class looks up a class by its descriptor.
	Class(id string) (Class, bool)
	// Category looks up an abstract category by its descriptor.
	Category(id string) (Category, bool)
	// ClassOf returns the class descriptor of the abstract category id,
	// or the empty string if id is unknown.
	ClassOf(id string) string
	// NumCategories returns the number of abstract categories of kind k
	// (negative for all kinds).
	NumCategories(k Kind) int
	// NumClasses returns the number of classes of kind k (negative for
	// all).
	NumClasses(k Kind) int
	// Validate checks that id denotes a class or abstract category of
	// the scheme and returns its canonical form.
	Validate(id string) (string, error)
	// CategoryIDs returns the descriptors of all abstract categories of
	// kind k (negative for all kinds), in definition order.
	CategoryIDs(k Kind) []string
	// ClassIDs returns the descriptors of all classes of kind k
	// (negative for all kinds), in definition order.
	ClassIDs(k Kind) []string
	// SortCategoryIDs sorts descriptors in the scheme's definition
	// order; unknown descriptors sort last, alphabetically. It sorts in
	// place and returns its argument for convenience.
	SortCategoryIDs(ids []string) []string
}
