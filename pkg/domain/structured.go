package domain

import (
	"fmt"
	"strings"
)

// StructuredErratum is the machine-readable erratum format the paper
// proposes in Table VII as a replacement for the free-text
// title/description/implications layout. It removes the redundancy of
// the classic fields and makes triggers, contexts and effects explicit.
type StructuredErratum struct {
	// ID is the unique identifier shared with identical errata in other
	// designs (the RemembERR cluster key).
	ID string
	// Title is the erratum title.
	Title string
	// Triggers holds the conjunctive triggers on abstract and concrete
	// levels.
	Triggers []Item
	// Contexts holds the disjunctive contexts.
	Contexts []Item
	// Effects holds the disjunctive observable effects.
	Effects []Item
	// Comments carries restrictions or clarifications that do not fit
	// the three dimensions ("does not apply if ...").
	Comments string
	// RootCause is the root-cause explanation; almost always empty in
	// published errata (Section VII of the paper).
	RootCause string
	// Workaround is the workaround guidance.
	Workaround string
	// Status is the fix status.
	Status FixStatus
}

// Structure converts a classic erratum into the proposed format
// (Table I -> Table VII in the paper).
func Structure(e *Erratum) StructuredErratum {
	id := e.Key
	if id == "" {
		id = e.FullID()
	}
	return StructuredErratum{
		ID:         id,
		Title:      e.Title,
		Triggers:   append([]Item(nil), e.Ann.Triggers...),
		Contexts:   append([]Item(nil), e.Ann.Contexts...),
		Effects:    append([]Item(nil), e.Ann.Effects...),
		Comments:   e.Implication,
		Workaround: e.Workaround,
		Status:     e.Fix,
	}
}

// Render produces the human-readable form of the structured format, in
// the layout of Table VII.
func (s StructuredErratum) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ID: %s\n", s.ID)
	fmt.Fprintf(&b, "Title: %s\n", s.Title)
	renderDim := func(name string, items []Item) {
		fmt.Fprintf(&b, "%s:\n", name)
		if len(items) == 0 {
			fmt.Fprintf(&b, "  (none)\n")
			return
		}
		for _, it := range items {
			fmt.Fprintf(&b, "  Abstract: %s\n", it.Category)
			fmt.Fprintf(&b, "  Concrete: %s\n", it.Concrete)
		}
	}
	renderDim("Triggers", s.Triggers)
	renderDim("Contexts", s.Contexts)
	renderDim("Effects", s.Effects)
	if s.Comments != "" {
		fmt.Fprintf(&b, "Comments: %s\n", s.Comments)
	}
	if s.RootCause != "" {
		fmt.Fprintf(&b, "Root cause: %s\n", s.RootCause)
	}
	fmt.Fprintf(&b, "Workaround: %s\n", orNone(s.Workaround))
	fmt.Fprintf(&b, "Status: %s\n", s.Status)
	return b.String()
}

func orNone(s string) string {
	if strings.TrimSpace(s) == "" {
		return "None identified."
	}
	return s
}

// Validate checks the structured erratum against a taxonomy scheme.
func (s StructuredErratum) Validate(scheme Scheme) error {
	if s.ID == "" {
		return fmt.Errorf("core: structured erratum without ID")
	}
	if s.Title == "" {
		return fmt.Errorf("core: structured erratum %s without title", s.ID)
	}
	ann := Annotation{Triggers: s.Triggers, Contexts: s.Contexts, Effects: s.Effects}
	return ann.Validate(scheme)
}
