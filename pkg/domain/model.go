package domain

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Vendor identifies a microprocessor vendor.
type Vendor int

const (
	// Intel covers the Intel Core generations 1-12 studied in the paper.
	Intel Vendor = iota
	// AMD covers the AMD families 10h-19h studied in the paper.
	AMD
)

// Vendors lists all vendors in canonical order.
var Vendors = []Vendor{Intel, AMD}

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case Intel:
		return "Intel"
	case AMD:
		return "AMD"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// ParseVendor converts a vendor name (case-insensitive) into a Vendor.
func ParseVendor(s string) (Vendor, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "intel":
		return Intel, nil
	case "amd":
		return AMD, nil
	default:
		return 0, fmt.Errorf("core: unknown vendor %q", s)
	}
}

// WorkaroundCategory classifies the suggested workaround of an erratum by
// where it must be applied (Section IV-B3 of the paper).
type WorkaroundCategory int

const (
	// WorkaroundNone means the vendor identified no workaround.
	WorkaroundNone WorkaroundCategory = iota
	// WorkaroundBIOS means the BIOS can contain the workaround.
	WorkaroundBIOS
	// WorkaroundSoftware means system software must apply the workaround.
	WorkaroundSoftware
	// WorkaroundPeripherals means peripherals must behave in a specific way.
	WorkaroundPeripherals
	// WorkaroundAbsent means a workaround exists but the erratum gives no
	// specific information ("contact your representative...").
	WorkaroundAbsent
	// WorkaroundDocFix means the behavior was correct and only the
	// documentation is fixed (<0.5% of errata).
	WorkaroundDocFix
)

// WorkaroundCategories lists all workaround categories in canonical order.
var WorkaroundCategories = []WorkaroundCategory{
	WorkaroundNone, WorkaroundBIOS, WorkaroundSoftware,
	WorkaroundPeripherals, WorkaroundAbsent, WorkaroundDocFix,
}

// String returns the category label used in Figure 6.
func (w WorkaroundCategory) String() string {
	switch w {
	case WorkaroundNone:
		return "None"
	case WorkaroundBIOS:
		return "BIOS"
	case WorkaroundSoftware:
		return "Software"
	case WorkaroundPeripherals:
		return "Peripherals"
	case WorkaroundAbsent:
		return "Absent"
	case WorkaroundDocFix:
		return "DocumentationFix"
	default:
		return fmt.Sprintf("WorkaroundCategory(%d)", int(w))
	}
}

// ParseWorkaroundCategory converts a label into a WorkaroundCategory.
func ParseWorkaroundCategory(s string) (WorkaroundCategory, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return WorkaroundNone, nil
	case "bios":
		return WorkaroundBIOS, nil
	case "software":
		return WorkaroundSoftware, nil
	case "peripherals":
		return WorkaroundPeripherals, nil
	case "absent":
		return WorkaroundAbsent, nil
	case "documentationfix", "docfix":
		return WorkaroundDocFix, nil
	default:
		return 0, fmt.Errorf("core: unknown workaround category %q", s)
	}
}

// FixStatus captures the status field of an erratum.
type FixStatus int

const (
	// FixNone means no fix is planned; the bug remains for the lifetime
	// of the affected parts.
	FixNone FixStatus = iota
	// FixPlanned means the vendor announced a fix for a future stepping.
	FixPlanned
	// FixDone means the root cause was fixed in a later stepping.
	FixDone
)

// FixStatuses lists all fix statuses in canonical order.
var FixStatuses = []FixStatus{FixNone, FixPlanned, FixDone}

// String returns the status label.
func (f FixStatus) String() string {
	switch f {
	case FixNone:
		return "NoFixPlanned"
	case FixPlanned:
		return "FixPlanned"
	case FixDone:
		return "Fixed"
	default:
		return fmt.Sprintf("FixStatus(%d)", int(f))
	}
}

// ParseFixStatus converts a status label into a FixStatus.
func ParseFixStatus(s string) (FixStatus, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "nofixplanned", "nofix", "no fix planned":
		return FixNone, nil
	case "fixplanned", "fix planned":
		return FixPlanned, nil
	case "fixed":
		return FixDone, nil
	default:
		return 0, fmt.Errorf("core: unknown fix status %q", s)
	}
}

// Item is one annotated property of an erratum: an abstract taxonomy
// category together with the concrete, erratum-specific description.
type Item struct {
	// Category is the abstract descriptor, e.g. "Trg_POW_pwc".
	Category string
	// Concrete is the concrete-level description, e.g. "the core
	// resumes from the C6 power state".
	Concrete string
}

// Annotation carries the full RemembERR classification of an erratum.
// Triggers are conjunctive; Contexts and Effects are disjunctive.
type Annotation struct {
	Triggers []Item
	Contexts []Item
	Effects  []Item
	// MSRs lists model-specific registers in which an effect of the
	// erratum is observable (Figure 19), e.g. "MCx_STATUS".
	MSRs []string
	// ComplexConditions is set when the erratum states that a "complex
	// set of conditions" is required (8.7% Intel, 20.8% AMD).
	ComplexConditions bool
	// TrivialTrigger is set when the erratum specifies no clear trigger
	// or only trivial ones (loads/stores, intense workloads); such
	// errata are excluded from Figure 11 (14.4% of the corpus).
	TrivialTrigger bool
	// SimulationOnly is set when the erratum states that the bug has
	// only been observed in simulation (five AMD and one Intel erratum
	// in the paper's corpus).
	SimulationOnly bool
}

// Items returns the items of the given kind.
func (a *Annotation) Items(k Kind) []Item {
	switch k {
	case Trigger:
		return a.Triggers
	case Context:
		return a.Contexts
	case Effect:
		return a.Effects
	default:
		return nil
	}
}

// SetItems replaces the items of the given kind.
func (a *Annotation) SetItems(k Kind, items []Item) {
	switch k {
	case Trigger:
		a.Triggers = items
	case Context:
		a.Contexts = items
	case Effect:
		a.Effects = items
	}
}

// Categories returns the abstract descriptors of the given kind, sorted
// in scheme order and deduplicated.
func (a *Annotation) Categories(k Kind, scheme Scheme) []string {
	items := a.Items(k)
	seen := make(map[string]bool, len(items))
	var out []string
	for _, it := range items {
		if !seen[it.Category] {
			seen[it.Category] = true
			out = append(out, it.Category)
		}
	}
	return scheme.SortCategoryIDs(out)
}

// Classes returns the class descriptors of the given kind, sorted and
// deduplicated.
func (a *Annotation) Classes(k Kind, scheme Scheme) []string {
	seen := make(map[string]bool)
	var out []string
	for _, it := range a.Items(k) {
		cl := scheme.ClassOf(it.Category)
		if cl != "" && !seen[cl] {
			seen[cl] = true
			out = append(out, cl)
		}
	}
	sort.Strings(out)
	return out
}

// Has reports whether the annotation carries the given abstract category
// in any dimension.
func (a *Annotation) Has(categoryID string) bool {
	for _, k := range Kinds {
		for _, it := range a.Items(k) {
			if it.Category == categoryID {
				return true
			}
		}
	}
	return false
}

// Validate checks that every item references a known abstract category
// of the scheme and that kinds are consistent.
func (a *Annotation) Validate(scheme Scheme) error {
	for _, k := range Kinds {
		for _, it := range a.Items(k) {
			cat, ok := scheme.Category(it.Category)
			if !ok {
				return fmt.Errorf("core: unknown category %q in %s items", it.Category, k.Name())
			}
			if cat.Kind != k {
				return fmt.Errorf("core: category %q is a %s but annotated as %s",
					it.Category, cat.Kind.Name(), k.Name())
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the annotation.
func (a *Annotation) Clone() Annotation {
	c := Annotation{
		ComplexConditions: a.ComplexConditions,
		TrivialTrigger:    a.TrivialTrigger,
		SimulationOnly:    a.SimulationOnly,
	}
	c.Triggers = append([]Item(nil), a.Triggers...)
	c.Contexts = append([]Item(nil), a.Contexts...)
	c.Effects = append([]Item(nil), a.Effects...)
	c.MSRs = append([]string(nil), a.MSRs...)
	return c
}

// Erratum is a single erratum entry of a specification-update document,
// together with RemembERR's structured metadata and annotation.
type Erratum struct {
	// DocKey identifies the document this entry belongs to.
	DocKey string
	// ID is the vendor identifier, e.g. "SKL085" (Intel) or "1361" (AMD).
	ID string
	// Seq is the sequential position of the erratum in the document
	// (1-based); vendors number errata sequentially.
	Seq int
	// Title is the erratum title.
	Title string
	// Description is the problem-description field.
	Description string
	// Implication is the implications field.
	Implication string
	// Workaround is the workaround field text.
	Workaround string
	// Status is the raw status field text.
	Status string

	// WorkaroundCat is the workaround classified by where it applies.
	WorkaroundCat WorkaroundCategory
	// Fix captures whether the root cause has been or will be fixed.
	Fix FixStatus

	// AddedIn is the document revision in which this erratum first
	// appeared (0 if the revision summary does not say).
	AddedIn int
	// Disclosed is the inferred disclosure date (zero if not yet
	// inferred); see internal/timeline.
	Disclosed time.Time

	// Key is the unique cluster key shared with identical errata in
	// other documents (empty before deduplication); see internal/dedup.
	Key string

	// Ann is the RemembERR annotation.
	Ann Annotation
}

// FullID returns the globally unique identifier of this entry
// ("docKey/ID").
func (e *Erratum) FullID() string { return e.DocKey + "/" + e.ID }

// Clone returns a deep copy of the erratum.
func (e *Erratum) Clone() *Erratum {
	c := *e
	c.Ann = e.Ann.Clone()
	return &c
}

// DocKeyVendor derives the vendor namespace from the document key prefix
// so that Intel and AMD keys never collide even if the dedup stage
// assigned overlapping key strings.
func (e *Erratum) DocKeyVendor() string {
	if i := strings.IndexByte(e.DocKey, '-'); i > 0 {
		return e.DocKey[:i]
	}
	return e.DocKey
}

// Revision is one revision of a specification-update document.
type Revision struct {
	// Number is the revision number within the document (1-based).
	Number int
	// Date is the release/update date of the revision.
	Date time.Time
	// Added lists the erratum IDs the summary of changes reports as
	// added in this revision. Documents contain errors: IDs can appear
	// in several revisions or in none.
	Added []string
}

// Document is a parsed specification-update document.
type Document struct {
	// Key uniquely identifies the document, e.g. "intel-06" or "amd-17h-00".
	Key string
	// Vendor is the document's vendor.
	Vendor Vendor
	// Label is the human-readable generation or family label from
	// Table III, e.g. "6" or "1 (D)" for Intel, "17h 00-0F" for AMD.
	Label string
	// Reference is the vendor document reference, e.g. "332689-028US".
	Reference string
	// Order is the chronological order index of the document within its
	// vendor (0-based); used by heredity analyses.
	Order int
	// GenIndex is the generation number for Intel documents (1..12); 0
	// for AMD documents, which have no comparable chronological axis.
	GenIndex int
	// Released is the initial release date of the CPU series the
	// document covers.
	Released time.Time
	// Revisions lists the revision history in ascending order.
	Revisions []Revision
	// Errata lists the errata in document order.
	Errata []*Erratum
	// Withdrawn lists erratum IDs that appear in the summary of changes
	// with their details removed (about 2% of errata; typically bugs
	// fixed by a re-spin, see Section VII of the paper).
	Withdrawn []string
}

// AssignOrders normalizes the Order index of every document: per vendor,
// documents are sorted by generation index, release date and key. Both
// the generator and the parsing pipeline use this rule, so order indices
// agree regardless of how the database was obtained.
func AssignOrders(db *Database) {
	for _, v := range Vendors {
		docs := db.VendorDocuments(v)
		sort.Slice(docs, func(i, j int) bool {
			if docs[i].GenIndex != docs[j].GenIndex {
				return docs[i].GenIndex < docs[j].GenIndex
			}
			if !docs[i].Released.Equal(docs[j].Released) {
				return docs[i].Released.Before(docs[j].Released)
			}
			return docs[i].Key < docs[j].Key
		})
		for i, d := range docs {
			d.Order = i
		}
	}
}

// Revision returns the revision with the given number, or nil.
func (d *Document) Revision(n int) *Revision {
	for i := range d.Revisions {
		if d.Revisions[i].Number == n {
			return &d.Revisions[i]
		}
	}
	return nil
}

// LatestRevision returns the highest revision, or nil for an empty history.
func (d *Document) LatestRevision() *Revision {
	if len(d.Revisions) == 0 {
		return nil
	}
	latest := &d.Revisions[0]
	for i := range d.Revisions {
		if d.Revisions[i].Number > latest.Number {
			latest = &d.Revisions[i]
		}
	}
	return latest
}

// Erratum returns the entry with the given vendor ID, or nil. If several
// entries share the ID (an "errata in errata" case), the first is
// returned.
func (d *Document) Erratum(id string) *Erratum {
	for _, e := range d.Errata {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// Database is the RemembERR database: all parsed documents with their
// errata, plus the classification scheme in force.
type Database struct {
	// Docs holds all documents keyed by Document.Key.
	Docs map[string]*Document
	// Scheme is the taxonomy scheme used by all annotations.
	Scheme Scheme
}

// NewDatabase returns an empty database using the given scheme.
// internal/core's NewDatabase wraps this with the paper's base scheme.
func NewDatabase(scheme Scheme) *Database {
	return &Database{
		Docs:   make(map[string]*Document),
		Scheme: scheme,
	}
}

// Add inserts a document. It returns an error on duplicate keys.
func (db *Database) Add(d *Document) error {
	if d.Key == "" {
		return fmt.Errorf("core: document with empty key")
	}
	if _, dup := db.Docs[d.Key]; dup {
		return fmt.Errorf("core: duplicate document key %q", d.Key)
	}
	db.Docs[d.Key] = d
	return nil
}

// Documents returns all documents sorted by vendor then order index.
func (db *Database) Documents() []*Document {
	out := make([]*Document, 0, len(db.Docs))
	for _, d := range db.Docs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Vendor != out[j].Vendor {
			return out[i].Vendor < out[j].Vendor
		}
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// VendorDocuments returns the documents of one vendor in order.
func (db *Database) VendorDocuments(v Vendor) []*Document {
	var out []*Document
	for _, d := range db.Documents() {
		if d.Vendor == v {
			out = append(out, d)
		}
	}
	return out
}

// Errata returns every erratum entry (duplicates counted individually, as
// in the raw corpus), in document order.
func (db *Database) Errata() []*Erratum {
	var out []*Erratum
	for _, d := range db.Documents() {
		out = append(out, d.Errata...)
	}
	return out
}

// VendorErrata returns every entry of one vendor in document order.
func (db *Database) VendorErrata(v Vendor) []*Erratum {
	var out []*Erratum
	for _, d := range db.VendorDocuments(v) {
		out = append(out, d.Errata...)
	}
	return out
}

// Unique returns one representative entry per unique key, preferring the
// earliest occurrence (lowest document order, then lowest Seq). Entries
// without a key (not yet deduplicated) are each their own representative.
func (db *Database) Unique() []*Erratum {
	type slot struct {
		e     *Erratum
		order int
	}
	best := make(map[string]slot)
	var keyless []*Erratum
	for _, d := range db.Documents() {
		for _, e := range d.Errata {
			if e.Key == "" {
				keyless = append(keyless, e)
				continue
			}
			k := string(e.DocKeyVendor()) + "|" + e.Key
			s, ok := best[k]
			if !ok || d.Order < s.order || (d.Order == s.order && e.Seq < s.e.Seq) {
				best[k] = slot{e: e, order: d.Order}
			}
		}
	}
	out := make([]*Erratum, 0, len(best)+len(keyless))
	for _, s := range best {
		out = append(out, s.e)
	}
	out = append(out, keyless...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].DocKey != out[j].DocKey {
			return out[i].DocKey < out[j].DocKey
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// UniqueVendor returns one representative per unique key for one vendor.
func (db *Database) UniqueVendor(v Vendor) []*Erratum {
	var out []*Erratum
	for _, e := range db.Unique() {
		if d := db.Docs[e.DocKey]; d != nil && d.Vendor == v {
			out = append(out, e)
		}
	}
	return out
}

// Occurrences returns, for each unique key of vendor v, all entries
// bearing that key, in document order. The map keys are cluster keys.
func (db *Database) Occurrences(v Vendor) map[string][]*Erratum {
	out := make(map[string][]*Erratum)
	for _, d := range db.VendorDocuments(v) {
		for _, e := range d.Errata {
			if e.Key != "" {
				out[e.Key] = append(out[e.Key], e)
			}
		}
	}
	return out
}

// Stats summarizes corpus-level counts (Section IV-A of the paper).
type Stats struct {
	Total        int // all entries, duplicates counted individually
	IntelTotal   int
	AMDTotal     int
	Unique       int // unique cluster keys across both vendors
	IntelUnique  int
	AMDUnique    int
	Documents    int
	IntelDocs    int
	AMDDocs      int
	Annotated    int // unique errata with a non-empty annotation
	Unclassified int // unique errata with an empty annotation
}

// ComputeStats recomputes corpus statistics from the database.
func (db *Database) ComputeStats() Stats {
	var s Stats
	for _, d := range db.Documents() {
		s.Documents++
		if d.Vendor == Intel {
			s.IntelDocs++
			s.IntelTotal += len(d.Errata)
		} else {
			s.AMDDocs++
			s.AMDTotal += len(d.Errata)
		}
		s.Total += len(d.Errata)
	}
	for _, v := range Vendors {
		u := db.UniqueVendor(v)
		if v == Intel {
			s.IntelUnique = len(u)
		} else {
			s.AMDUnique = len(u)
		}
		s.Unique += len(u)
		for _, e := range u {
			if len(e.Ann.Triggers)+len(e.Ann.Contexts)+len(e.Ann.Effects) > 0 {
				s.Annotated++
			} else {
				s.Unclassified++
			}
		}
	}
	return s
}

// Validate checks referential integrity: document keys on errata match
// their containing document, IDs are non-empty, and annotations are
// valid against the scheme.
func (db *Database) Validate() error {
	for key, d := range db.Docs {
		if d.Key != key {
			return fmt.Errorf("core: document indexed as %q has key %q", key, d.Key)
		}
		for _, e := range d.Errata {
			if e.DocKey != d.Key {
				return fmt.Errorf("core: erratum %s in document %s has DocKey %q", e.ID, d.Key, e.DocKey)
			}
			if e.ID == "" {
				return fmt.Errorf("core: erratum with empty ID in document %s", d.Key)
			}
			if err := e.Ann.Validate(db.Scheme); err != nil {
				return fmt.Errorf("core: erratum %s: %w", e.FullID(), err)
			}
		}
	}
	return nil
}
