// Package defaults wires the built-in plugins as the host defaults:
// the Intel/AMD rule pack and the Table III corpus profile. Binaries,
// examples and tests that classify or generate without naming a pack
// or profile explicitly import it for its side effects:
//
//	import _ "repro/plugins/defaults"
//
// Importing the individual plugin packages only registers them;
// designating defaults is an explicit composition-root decision made
// here, so the selection does not depend on package initialization
// order.
package defaults

import (
	"repro/pkg/pluginapi"
	corpusprofile "repro/plugins/corpusprofile/intelamd"
	rulepack "repro/plugins/rulepack/intelamd"
)

func init() {
	if err := pluginapi.SetDefaultRulePack(rulepack.Name); err != nil {
		panic(err)
	}
	if err := pluginapi.SetDefaultCorpusProfile(corpusprofile.Name); err != nil {
		panic(err)
	}
}
