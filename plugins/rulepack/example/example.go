// Package example is a minimal third-party-style rule pack. It shows
// the full surface a plugin author needs: the pkg/pluginapi contract
// and the pkg/domain taxonomy kinds — and nothing from internal/,
// which the architecture tests forbid plugins to import.
//
// The pack registers itself under the name "example" but is never the
// default; hosts opt in explicitly:
//
//	pack, _ := pluginapi.LookupRulePack(example.Name)
//	engine, err := classify.NewEngineFor(pack, nil, classify.Config{})
package example

import (
	"repro/pkg/domain"
	"repro/pkg/pluginapi"
)

// Name is the registry name of the pack.
const Name = "example"

func init() {
	pluginapi.MustRegisterRulePack(Pack{})
}

// Pack is a tiny demonstration rule pack: one rule per taxonomy kind,
// using categories of the base scheme.
type Pack struct{}

// Info identifies the pack and the plugin API version it was built
// against; registration fails on a version mismatch.
func (Pack) Info() pluginapi.Info {
	return pluginapi.Info{
		Name:        Name,
		Version:     "0.1.0",
		APIVersion:  pluginapi.APIVersion,
		Description: "minimal example rule pack for plugin authors",
	}
}

// Rules returns one strong rule per kind. Strong patterns auto-include
// their category; weak patterns only surface it for review.
func (Pack) Rules() []pluginapi.RuleSpec {
	return []pluginapi.RuleSpec{
		{
			Kind:     domain.Trigger,
			Category: "Trg_EXT_rst",
			Strong:   []string{`\bwarm reset\b`},
			Weak:     []string{`\brestart`},
		},
		{
			Kind:     domain.Context,
			Category: "Ctx_PRV_smm",
			Strong:   []string{`\bsmm\b`},
		},
		{
			Kind:     domain.Effect,
			Category: "Eff_HNG_hng",
			Strong:   []string{`\bhang\b`, `\bdeadlock\b`},
		},
	}
}
