// Package intelamd is the built-in classifier rule pack: the
// transcription of Tables IV-VI of the RemembERR paper into regex
// rules over trigger, context and effect clauses of Intel/AMD errata.
//
// The package registers itself under the name "intel-amd" from init;
// plugins/defaults designates it as the default pack. It depends only
// on the public plugin API, like any third-party pack would.
package intelamd

import (
	"repro/pkg/domain"
	"repro/pkg/pluginapi"
)

// Name is the registry name of the pack.
const Name = "intel-amd"

func init() {
	pluginapi.MustRegisterRulePack(Pack{})
}

// Pack is the built-in Intel/AMD rule pack.
type Pack struct{}

// Info identifies the pack.
func (Pack) Info() pluginapi.Info {
	return pluginapi.Info{
		Name:        Name,
		Version:     "1.0.0",
		APIVersion:  pluginapi.APIVersion,
		Description: "Intel/AMD classifier rules transcribed from Tables IV-VI of the RemembERR paper",
	}
}

// Rules returns the rule specifications: the trigger rules of Table
// IV, then the context rules of Table V, then the effect rules of
// Table VI. Order within a kind is significant and preserved by the
// engine.
func (Pack) Rules() []pluginapi.RuleSpec { return rules }

func spec(kind domain.Kind, category string, strong, weak []string) pluginapi.RuleSpec {
	return pluginapi.RuleSpec{Kind: kind, Category: category, Strong: strong, Weak: weak}
}

var rules = []pluginapi.RuleSpec{
	// Trigger categories of Table IV, over trigger clauses.
	spec(domain.Trigger, "Trg_MBR_cbr",
		[]string{`cache line boundary`},
		[]string{`\bstraddles\b`, `\bunaligned\b`}),
	spec(domain.Trigger, "Trg_MBR_pgb",
		[]string{`page boundary`},
		[]string{`\bstraddles\b`, `two pages`}),
	spec(domain.Trigger, "Trg_MBR_mbr",
		[]string{`\bcanonical\b`, `memory map boundary`},
		[]string{`\bwraps\b`, `memory map`}),
	spec(domain.Trigger, "Trg_MOP_mmp",
		[]string{`memory-mapped`},
		[]string{`\bmapped\b`, `\baccess\b`}),
	spec(domain.Trigger, "Trg_MOP_atp",
		[]string{`\batomic\b`, `\btransactional\b`},
		[]string{`\blocked\b`, `read-modify-write`}),
	spec(domain.Trigger, "Trg_MOP_fen",
		[]string{`memory fence`, `serializing instruction`, `\bmfence\b`},
		[]string{`\bfence\b`}),
	spec(domain.Trigger, "Trg_MOP_seg",
		[]string{`\bsegment\b`},
		nil),
	spec(domain.Trigger, "Trg_MOP_ptw",
		[]string{`table walk`},
		[]string{`\bwalk\b`}),
	spec(domain.Trigger, "Trg_MOP_nst",
		[]string{`\bnested\b`},
		nil),
	spec(domain.Trigger, "Trg_MOP_flc",
		[]string{`flush instruction`, `flushed by an invalidation`},
		[]string{`\bflush`}),
	spec(domain.Trigger, "Trg_MOP_spe",
		[]string{`\bspeculat`},
		nil),
	spec(domain.Trigger, "Trg_FLT_ovf",
		[]string{`\boverflow`},
		nil),
	spec(domain.Trigger, "Trg_FLT_tmr",
		[]string{`\btimer\b`},
		nil),
	spec(domain.Trigger, "Trg_FLT_mca",
		[]string{`machine check exception is being delivered`, `machine check event is logged`},
		[]string{`\bmca\b`, `machine check`}),
	spec(domain.Trigger, "Trg_FLT_ill",
		[]string{`illegal instruction`, `undefined opcode`, `invalid instruction`},
		nil),
	spec(domain.Trigger, "Trg_PRV_ret",
		[]string{`\brsm\b`, `return from smm`},
		[]string{`resumes from`, `\bmanagement\b`}),
	spec(domain.Trigger, "Trg_PRV_vmt",
		[]string{`vm entry`, `vm exit`, `from hypervisor to guest`, `world switch`},
		[]string{`\bguest\b`, `\bhypervisor\b`}),
	spec(domain.Trigger, "Trg_CFG_pag",
		[]string{`paging mode`, `paging structure entry`, `paging mechanism`},
		[]string{`\bcr0\b`, `\bcr4\b`, `\bpaging\b`}),
	spec(domain.Trigger, "Trg_CFG_vmc",
		[]string{`\bvmcs\b`, `virtual machine control structure`, `virtualization control`},
		[]string{`\bvirtual machine\b`}),
	spec(domain.Trigger, "Trg_CFG_wrg",
		[]string{`\bwrmsr\b`, `model specific register with`, `msr write`},
		[]string{`configuration register`, `\bconfiguration\b`}),
	spec(domain.Trigger, "Trg_POW_pwc",
		[]string{`c6 power state`, `package power states`, `c-state`},
		[]string{`power state`, `\bpower\b`}),
	spec(domain.Trigger, "Trg_POW_tht",
		[]string{`\bthrottl`, `power supply conditions`, `thermal event`},
		[]string{`\bthermal\b`, `operating conditions`, `\bpower\b`}),
	spec(domain.Trigger, "Trg_EXT_rst",
		[]string{`\breset\b`},
		nil),
	spec(domain.Trigger, "Trg_EXT_pci",
		[]string{`\bpcie\b`, `pci express`},
		[]string{`peer-to-peer`, `\blink\b`}),
	spec(domain.Trigger, "Trg_EXT_usb",
		[]string{`\busb\b`, `\bxhci\b`},
		nil),
	spec(domain.Trigger, "Trg_EXT_ram",
		[]string{`dram configuration`, `ddr interface operates`},
		[]string{`\bdram\b`, `\bddr\b`, `memory is configured`}),
	spec(domain.Trigger, "Trg_EXT_iom",
		[]string{`\biommu\b`, `dma remapping`},
		[]string{`\bdevice\b`}),
	spec(domain.Trigger, "Trg_EXT_bus",
		[]string{`\bhypertransport\b`, `\bqpi\b`, `system bus`},
		[]string{`\bsnoop\b`}),
	spec(domain.Trigger, "Trg_FEA_fpu",
		[]string{`\bx87\b`, `\bfsave\b`, `floating-point`},
		nil),
	spec(domain.Trigger, "Trg_FEA_dbg",
		[]string{`\bbreakpoint\b`, `single-stepping`, `\bdebug\b`},
		[]string{`trap flag`}),
	spec(domain.Trigger, "Trg_FEA_cid",
		[]string{`\bcpuid\b`, `design identification`},
		nil),
	spec(domain.Trigger, "Trg_FEA_mon",
		[]string{`\bmonitor/mwait\b`, `monitored address`, `\bmwait\b`},
		nil),
	spec(domain.Trigger, "Trg_FEA_tra",
		[]string{`\btrace\b`, `\btracing\b`},
		nil),
	spec(domain.Trigger, "Trg_FEA_cus",
		[]string{`\bsse\b`, `\bmmx\b`},
		[]string{`extension feature`, `custom feature`, `specific feature`, `feature sequence`}),

	// Context categories of Table V, over context clauses.
	spec(domain.Context, "Ctx_PRV_boo",
		[]string{`\bbooting\b`, `\bbios\b`, `\buefi\b`, `\bfirmware\b`},
		nil),
	spec(domain.Context, "Ctx_PRV_vmg",
		[]string{`\bguest\b`},
		nil),
	spec(domain.Context, "Ctx_PRV_rea",
		[]string{`real-address mode`, `real mode`, `real-mode`, `virtual-8086`},
		nil),
	spec(domain.Context, "Ctx_PRV_vmh",
		[]string{`\bhypervisor\b`, `vmx root`, `host mode`},
		[]string{`virtual machine`}),
	spec(domain.Context, "Ctx_PRV_smm",
		[]string{`system management mode`, `\bsmm\b`, `management mode`},
		[]string{`\bmode\b`}),
	spec(domain.Context, "Ctx_FEA_sec",
		[]string{`\bsgx\b`, `\bsvm\b`, `\bsecurity\b`, `secure enclave`},
		nil),
	spec(domain.Context, "Ctx_FEA_sgc",
		[]string{`single-core`, `one core`, `single active core`},
		nil),
	spec(domain.Context, "Ctx_PHY_pkg",
		[]string{`\bpackage\b`, `ball-out`},
		nil),
	spec(domain.Context, "Ctx_PHY_tmp",
		[]string{`\btemperature\b`},
		nil),
	spec(domain.Context, "Ctx_PHY_vol",
		[]string{`\bvoltage\b`},
		nil),

	// Effect categories of Table VI, over effect clauses.
	spec(domain.Effect, "Eff_HNG_unp",
		[]string{`\bunpredictable\b`, `behave unexpectedly`, `results of the operation may be incorrect`},
		[]string{`\bincorrect\b`, `\bunexpected`, `system may`}),
	spec(domain.Effect, "Eff_HNG_hng",
		[]string{`\bhang\b`, `stop responding`},
		nil),
	spec(domain.Effect, "Eff_HNG_crh",
		[]string{`\bcrash\b`, `\bunrecoverable\b`, `go down`},
		[]string{`may fail`}),
	spec(domain.Effect, "Eff_HNG_boo",
		[]string{`\bboot\b`, `\bpost\b`},
		nil),
	spec(domain.Effect, "Eff_FLT_mca",
		[]string{`machine check exception may be signaled`, `mca error may be reported`, `machine check architecture`},
		[]string{`machine check`}),
	spec(domain.Effect, "Eff_FLT_unc",
		[]string{`\buncorrectable\b`, `\buncorrected\b`},
		nil),
	spec(domain.Effect, "Eff_FLT_fsp",
		[]string{`\bspurious\b`, `unexpected exception`},
		[]string{`\bfaults?\b`}),
	spec(domain.Effect, "Eff_FLT_fms",
		[]string{`fault may be missing`, `may not be delivered`, `may be suppressed`},
		[]string{`\bmissing\b`}),
	spec(domain.Effect, "Eff_FLT_fid",
		[]string{`wrong error code`, `fault identifier`, `wrong order`},
		[]string{`\bordering\b`}),
	spec(domain.Effect, "Eff_CRP_prf",
		[]string{`performance counter`, `performance monitoring`},
		[]string{`counter value`}),
	spec(domain.Effect, "Eff_CRP_reg",
		[]string{`msr may contain`, `model specific register may be corrupted`},
		[]string{`register state`, `wrong value`, `\bregister\b`}),
	spec(domain.Effect, "Eff_EXT_pci",
		[]string{`malformed transactions`, `pcie link`, `protocol violations`},
		[]string{`\bpcie\b`}),
	spec(domain.Effect, "Eff_EXT_usb",
		[]string{`\busb\b`},
		nil),
	spec(domain.Effect, "Eff_EXT_mmd",
		[]string{`\baudio\b`, `\bgraphics\b`, `display artifacts`, `\bmultimedia\b`},
		nil),
	spec(domain.Effect, "Eff_EXT_ram",
		[]string{`dram interactions`, `memory training`, `ddr interface may`},
		[]string{`\bdram\b`, `\bddr\b`}),
	spec(domain.Effect, "Eff_EXT_pow",
		[]string{`power consumption`, `excessive power`},
		[]string{`\bpower\b`}),
}
