// Package intelamd is the built-in corpus profile: the 28 Intel/AMD
// specification-update documents of Table III of the RemembERR paper
// with the calibrated sampling distributions of Figures 6-19.
//
// The package registers itself under the name "intel-amd" from init;
// plugins/defaults designates it as the default profile. It depends
// only on the public plugin API, like any third-party profile would.
package intelamd

import (
	"time"

	"repro/pkg/pluginapi"
)

// Name is the registry name of the profile.
const Name = "intel-amd"

func init() {
	pluginapi.MustRegisterCorpusProfile(Profile{})
}

// Profile is the built-in Intel/AMD corpus profile.
type Profile struct{}

// Info identifies the profile.
func (Profile) Info() pluginapi.Info {
	return pluginapi.Info{
		Name:        Name,
		Version:     "1.0.0",
		APIVersion:  pluginapi.APIVersion,
		Description: "Table III Intel/AMD document set with the paper's calibration statistics",
	}
}

// Spec returns the corpus specification.
func (Profile) Spec() pluginapi.CorpusSpec { return baseSpec }

// Calibration targets from the paper (Sections IV-A and V-B), exported
// so tests and experiments can verify generated corpora against them.
const (
	// TargetIntelTotal is the number of Intel erratum entries.
	TargetIntelTotal = 2057
	// TargetIntelUnique is the number of unique Intel errata.
	TargetIntelUnique = 743
	// TargetAMDTotal is the number of AMD erratum entries.
	TargetAMDTotal = 506
	// TargetAMDUnique is the number of unique AMD errata.
	TargetAMDUnique = 385
	// TargetTotal is the total number of erratum entries (2,563).
	TargetTotal = TargetIntelTotal + TargetAMDTotal
	// TargetUnique is the total number of unique errata (1,128).
	TargetUnique = TargetIntelUnique + TargetAMDUnique

	// SharedGens6To10 is the number of bugs shared by all Intel Core
	// generations 6 to 10 (Figure 4).
	SharedGens6To10 = 104
	// LineagesCore1To10 is the number of bugs present from Core 1 to
	// Core 10 (Section IV-B2).
	LineagesCore1To10 = 6

	// ComplexConditionFractionIntel is the fraction of unique Intel
	// errata mentioning a "complex set of conditions".
	ComplexConditionFractionIntel = 0.087
	// ComplexConditionFractionAMD is the AMD counterpart.
	ComplexConditionFractionAMD = 0.208
	// TrivialTriggerFraction is the fraction of errata with no clear or
	// only trivial triggers, excluded from Figure 11.
	TrivialTriggerFraction = 0.144
	// NoWorkaroundFractionIntel is the fraction of unique Intel errata
	// without any suggested workaround (Figure 6).
	NoWorkaroundFractionIntel = 0.359
	// NoWorkaroundFractionAMD is the AMD counterpart.
	NoWorkaroundFractionAMD = 0.289
)

func d(y, m int) time.Time {
	return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC)
}

// IntelDocs lists the 16 Intel Core documents of Table III. The
// per-document entry counts sum to 2,057, the paper's Intel total.
var IntelDocs = []pluginapi.DocProfile{
	{Key: "intel-01d", Intel: true, Label: "1 (D)", Reference: "320836-037US", Prefix: "AAJ", GenIndex: 1, Released: d(2008, 11), LastUpdate: d(2015, 4), Count: 140, RevisionMonths: 2},
	{Key: "intel-01m", Intel: true, Label: "1 (M)", Reference: "322814-024US", Prefix: "AAT", GenIndex: 1, Released: d(2009, 9), LastUpdate: d(2015, 4), Count: 145, RevisionMonths: 3},
	{Key: "intel-02d", Intel: true, Label: "2 (D)", Reference: "324643-037US", Prefix: "BJ", GenIndex: 2, Released: d(2011, 1), LastUpdate: d(2016, 6), Count: 150, RevisionMonths: 2},
	{Key: "intel-02m", Intel: true, Label: "2 (M)", Reference: "324827-034US", Prefix: "BK", GenIndex: 2, Released: d(2011, 2), LastUpdate: d(2016, 6), Count: 152, RevisionMonths: 2},
	{Key: "intel-03d", Intel: true, Label: "3 (D)", Reference: "326766-022US", Prefix: "BV", GenIndex: 3, Released: d(2012, 4), LastUpdate: d(2016, 7), Count: 130, RevisionMonths: 3},
	{Key: "intel-03m", Intel: true, Label: "3 (M)", Reference: "326770-022US", Prefix: "BU", GenIndex: 3, Released: d(2012, 6), LastUpdate: d(2016, 7), Count: 132, RevisionMonths: 3},
	{Key: "intel-04d", Intel: true, Label: "4 (D)", Reference: "328899-039US", Prefix: "HSD", GenIndex: 4, Released: d(2013, 6), LastUpdate: d(2017, 3), Count: 135, RevisionMonths: 2},
	{Key: "intel-04m", Intel: true, Label: "4 (M)", Reference: "328903-038US", Prefix: "HSM", GenIndex: 4, Released: d(2013, 6), LastUpdate: d(2017, 3), Count: 138, RevisionMonths: 2},
	{Key: "intel-05d", Intel: true, Label: "5 (D)", Reference: "332381-023US", Prefix: "BDD", GenIndex: 5, Released: d(2015, 1), LastUpdate: d(2018, 2), Count: 110, RevisionMonths: 3},
	{Key: "intel-05m", Intel: true, Label: "5 (M)", Reference: "330836-031US", Prefix: "BDM", GenIndex: 5, Released: d(2014, 10), LastUpdate: d(2018, 2), Count: 112, RevisionMonths: 3},
	{Key: "intel-06", Intel: true, Label: "6", Reference: "332689-028US", Prefix: "SKL", GenIndex: 6, Released: d(2015, 8), LastUpdate: d(2020, 6), Count: 180, RevisionMonths: 2},
	{Key: "intel-07", Intel: true, Label: "7/8", Reference: "334663-013US", Prefix: "KBL", GenIndex: 7, Released: d(2016, 8), LastUpdate: d(2021, 2), Count: 150, RevisionMonths: 3},
	{Key: "intel-08", Intel: true, Label: "8/9", Reference: "337346-002US", Prefix: "CFL", GenIndex: 8, Released: d(2017, 10), LastUpdate: d(2021, 8), Count: 140, RevisionMonths: 3},
	{Key: "intel-10", Intel: true, Label: "10", Reference: "615213-010US", Prefix: "CML", GenIndex: 10, Released: d(2019, 8), LastUpdate: d(2022, 2), Count: 120, RevisionMonths: 3},
	{Key: "intel-11", Intel: true, Label: "11", Reference: "634808-008US", Prefix: "RKL", GenIndex: 11, Released: d(2021, 3), LastUpdate: d(2022, 4), Count: 70, RevisionMonths: 2},
	{Key: "intel-12", Intel: true, Label: "12", Reference: "682436-004US", Prefix: "ADL", GenIndex: 12, Released: d(2021, 11), LastUpdate: d(2022, 5), Count: 53, RevisionMonths: 2},
}

// AMDDocs lists the 12 AMD family documents of Table III. The
// per-document counts sum to 506, the paper's AMD total.
var AMDDocs = []pluginapi.DocProfile{
	{Key: "amd-10h-00", Label: "10h 00-0F", Reference: "41322-3.84", Released: d(2008, 3), LastUpdate: d(2013, 3), Count: 60, RevisionMonths: 6},
	{Key: "amd-11h-00", Label: "11h 00-0F", Reference: "41788-3.00", Released: d(2008, 6), LastUpdate: d(2011, 8), Count: 25, RevisionMonths: 8},
	{Key: "amd-12h-00", Label: "12h 00-0F", Reference: "44739-3.10", Released: d(2011, 6), LastUpdate: d(2013, 4), Count: 30, RevisionMonths: 7},
	{Key: "amd-14h-00", Label: "14h 00-0F", Reference: "47534-3.18", Released: d(2011, 1), LastUpdate: d(2013, 9), Count: 35, RevisionMonths: 6},
	{Key: "amd-15h-00", Label: "15h 00-0F", Reference: "48063-3.24", Released: d(2011, 10), LastUpdate: d(2014, 10), Count: 55, RevisionMonths: 5},
	{Key: "amd-15h-10", Label: "15h 10-1F", Reference: "48931-3.08", Released: d(2012, 5), LastUpdate: d(2014, 12), Count: 40, RevisionMonths: 6},
	{Key: "amd-15h-30", Label: "15h 30-3F", Reference: "51603-1.06", Released: d(2014, 1), LastUpdate: d(2016, 3), Count: 42, RevisionMonths: 6},
	{Key: "amd-15h-70", Label: "15h 70-7F", Reference: "55370-3.00", Released: d(2015, 6), LastUpdate: d(2017, 5), Count: 25, RevisionMonths: 8},
	{Key: "amd-16h-00", Label: "16h 00-0F", Reference: "51810-3.06", Released: d(2013, 5), LastUpdate: d(2015, 9), Count: 38, RevisionMonths: 6},
	{Key: "amd-17h-00", Label: "17h 00-0F", Reference: "55449-1.12", Released: d(2017, 3), LastUpdate: d(2020, 7), Count: 60, RevisionMonths: 5},
	{Key: "amd-17h-30", Label: "17h 30-3F", Reference: "56323-0.78", Released: d(2019, 7), LastUpdate: d(2021, 9), Count: 48, RevisionMonths: 6},
	{Key: "amd-19h-00", Label: "19h 00-0F", Reference: "56683-1.04", Released: d(2020, 11), LastUpdate: d(2022, 5), Count: 48, RevisionMonths: 5},
}

var baseSpec = pluginapi.CorpusSpec{
	IntelDocs: IntelDocs,
	AMDDocs:   AMDDocs,
	Calibration: pluginapi.Calibration{
		IntelTotal:                    TargetIntelTotal,
		IntelUnique:                   TargetIntelUnique,
		AMDTotal:                      TargetAMDTotal,
		AMDUnique:                     TargetAMDUnique,
		SharedGens6To10:               SharedGens6To10,
		LineagesCore1To10:             LineagesCore1To10,
		ComplexConditionFractionIntel: ComplexConditionFractionIntel,
		ComplexConditionFractionAMD:   ComplexConditionFractionAMD,
		TrivialTriggerFraction:        TrivialTriggerFraction,
		NoWorkaroundFractionIntel:     NoWorkaroundFractionIntel,
		NoWorkaroundFractionAMD:       NoWorkaroundFractionAMD,
	},

	// TriggerWeights is the marginal sampling distribution over
	// abstract trigger categories, shaped after Figure 10:
	// configuration-register interactions, throttling and power-state
	// transitions lead, followed by feature, virtualization and
	// external-input triggers.
	TriggerWeights: []pluginapi.Weighted{
		{ID: "Trg_CFG_wrg", Weight: 13.0},
		{ID: "Trg_POW_tht", Weight: 10.0},
		{ID: "Trg_POW_pwc", Weight: 9.0},
		{ID: "Trg_FEA_cus", Weight: 6.5},
		{ID: "Trg_PRV_vmt", Weight: 6.0},
		{ID: "Trg_CFG_vmc", Weight: 5.0},
		{ID: "Trg_EXT_pci", Weight: 5.0},
		{ID: "Trg_FEA_dbg", Weight: 4.5},
		{ID: "Trg_EXT_rst", Weight: 4.0},
		{ID: "Trg_MOP_mmp", Weight: 3.5},
		{ID: "Trg_EXT_ram", Weight: 3.5},
		{ID: "Trg_FEA_tra", Weight: 3.0},
		{ID: "Trg_FLT_mca", Weight: 3.0},
		{ID: "Trg_CFG_pag", Weight: 3.0},
		{ID: "Trg_MOP_ptw", Weight: 2.5},
		{ID: "Trg_FEA_fpu", Weight: 2.5},
		{ID: "Trg_FEA_mon", Weight: 2.0},
		{ID: "Trg_MOP_atp", Weight: 2.0},
		{ID: "Trg_MOP_flc", Weight: 2.0},
		{ID: "Trg_PRV_ret", Weight: 2.0},
		{ID: "Trg_FLT_ovf", Weight: 1.8},
		{ID: "Trg_EXT_bus", Weight: 1.8},
		{ID: "Trg_MOP_fen", Weight: 1.5},
		{ID: "Trg_FLT_tmr", Weight: 1.5},
		{ID: "Trg_EXT_usb", Weight: 1.5},
		{ID: "Trg_MOP_spe", Weight: 1.2},
		{ID: "Trg_MBR_cbr", Weight: 1.2},
		{ID: "Trg_MOP_seg", Weight: 1.0},
		{ID: "Trg_MBR_pgb", Weight: 1.0},
		{ID: "Trg_EXT_iom", Weight: 1.0},
		{ID: "Trg_FEA_cid", Weight: 0.8},
		{ID: "Trg_FLT_ill", Weight: 0.8},
		{ID: "Trg_MOP_nst", Weight: 0.8},
		{ID: "Trg_MBR_mbr", Weight: 0.6},
	},

	// VendorTriggerBias multiplies trigger weights per vendor to
	// reproduce Figures 15 and 16: Intel over-represents
	// custom-feature and tracing triggers; AMD over-represents bus
	// (HyperTransport) and IOMMU inputs.
	VendorTriggerBias: map[string]pluginapi.VendorBias{
		"Trg_FEA_cus": {Intel: 1.5, AMD: 0.6},
		"Trg_FEA_tra": {Intel: 1.7, AMD: 0.4},
		"Trg_FEA_mon": {Intel: 1.3, AMD: 0.7},
		"Trg_EXT_bus": {Intel: 0.5, AMD: 2.2},
		"Trg_EXT_iom": {Intel: 0.6, AMD: 2.0},
		"Trg_EXT_usb": {Intel: 1.4, AMD: 0.7},
		"Trg_EXT_ram": {Intel: 0.9, AMD: 1.3},
		"Trg_FEA_fpu": {Intel: 0.8, AMD: 1.4},
	},

	// TriggerPairBoost boosts the conditional probability of picking
	// the second trigger once the first is present, reproducing the
	// salient correlations of Figure 12 (debug features with VM
	// transitions; DRAM and PCIe with power-level changes; resets with
	// PCIe).
	TriggerPairBoost: map[[2]string]float64{
		{"Trg_FEA_dbg", "Trg_PRV_vmt"}: 6.0,
		{"Trg_EXT_ram", "Trg_POW_pwc"}: 5.0,
		{"Trg_EXT_pci", "Trg_POW_pwc"}: 5.0,
		{"Trg_EXT_pci", "Trg_EXT_rst"}: 4.5,
		{"Trg_CFG_wrg", "Trg_POW_tht"}: 4.0,
		{"Trg_CFG_wrg", "Trg_POW_pwc"}: 3.5,
		{"Trg_CFG_wrg", "Trg_FEA_cus"}: 3.0,
		{"Trg_CFG_vmc", "Trg_PRV_vmt"}: 4.0,
		{"Trg_MOP_ptw", "Trg_CFG_pag"}: 4.0,
		{"Trg_POW_tht", "Trg_POW_pwc"}: 3.0,
		{"Trg_FLT_mca", "Trg_POW_tht"}: 2.5,
		{"Trg_MOP_mmp", "Trg_EXT_pci"}: 2.5,
	},

	// TriggerCountWeights is the distribution of the number of
	// (non-trivial) triggers per erratum, shaped after Figure 11:
	// mixing both vendors, about half of the errata require at least
	// two combined triggers.
	TriggerCountWeights: []pluginapi.Weighted{
		{ID: "1", Weight: 51}, {ID: "2", Weight: 32}, {ID: "3", Weight: 12},
		{ID: "4", Weight: 4}, {ID: "5", Weight: 1},
	},

	// ContextWeights is the marginal distribution over context
	// categories (Figure 17): virtual-machine guests dominate.
	ContextWeights: []pluginapi.Weighted{
		{ID: "Ctx_PRV_vmg", Weight: 10.0},
		{ID: "Ctx_PRV_smm", Weight: 4.5},
		{ID: "Ctx_PRV_boo", Weight: 4.0},
		{ID: "Ctx_PRV_vmh", Weight: 3.5},
		{ID: "Ctx_PRV_rea", Weight: 2.5},
		{ID: "Ctx_FEA_sec", Weight: 2.5},
		{ID: "Ctx_PHY_pkg", Weight: 1.5},
		{ID: "Ctx_FEA_sgc", Weight: 1.2},
		{ID: "Ctx_PHY_tmp", Weight: 1.0},
		{ID: "Ctx_PHY_vol", Weight: 0.8},
	},

	// ContextCountWeights: most errata list no specific context; some
	// one; few several.
	ContextCountWeights: []pluginapi.Weighted{
		{ID: "0", Weight: 55}, {ID: "1", Weight: 33}, {ID: "2", Weight: 10},
		{ID: "3", Weight: 2},
	},

	// EffectWeights is the marginal distribution over effect
	// categories (Figure 18): corrupted registers, hangs and
	// unpredictable behavior are the most common observable effects.
	EffectWeights: []pluginapi.Weighted{
		{ID: "Eff_CRP_reg", Weight: 12.0},
		{ID: "Eff_HNG_hng", Weight: 10.0},
		{ID: "Eff_HNG_unp", Weight: 9.0},
		{ID: "Eff_FLT_mca", Weight: 5.5},
		{ID: "Eff_FLT_fsp", Weight: 5.0},
		{ID: "Eff_CRP_prf", Weight: 4.5},
		{ID: "Eff_HNG_crh", Weight: 3.5},
		{ID: "Eff_FLT_unc", Weight: 3.0},
		{ID: "Eff_FLT_fms", Weight: 2.5},
		{ID: "Eff_EXT_pci", Weight: 2.5},
		{ID: "Eff_HNG_boo", Weight: 2.0},
		{ID: "Eff_FLT_fid", Weight: 1.8},
		{ID: "Eff_EXT_ram", Weight: 1.5},
		{ID: "Eff_EXT_mmd", Weight: 1.2},
		{ID: "Eff_EXT_usb", Weight: 1.2},
		{ID: "Eff_EXT_pow", Weight: 1.0},
	},

	// EffectCountWeights: every erratum has at least one observable
	// effect.
	EffectCountWeights: []pluginapi.Weighted{
		{ID: "1", Weight: 62}, {ID: "2", Weight: 30}, {ID: "3", Weight: 8},
	},

	// MSRWeights distributes the observable-effect MSR for errata
	// whose effects involve a corrupted register or machine-check
	// report (Figure 19): machine-check status registers lead,
	// followed by instruction-based sampling registers (AMD) and
	// performance counters.
	MSRWeights: []pluginapi.Weighted{
		{ID: "MCx_STATUS", Weight: 5.5},
		{ID: "MCx_ADDR", Weight: 4.0},
		{ID: "IA32_PERF_STATUS", Weight: 3.0},
		{ID: "IA32_PMCx", Weight: 4.5},
		{ID: "IA32_FIXED_CTRx", Weight: 2.5},
		{ID: "IA32_THERM_STATUS", Weight: 2.0},
		{ID: "IA32_APIC_BASE", Weight: 1.5},
		{ID: "IA32_DEBUGCTL", Weight: 1.5},
		{ID: "IA32_MISC_ENABLE", Weight: 1.2},
		{ID: "IA32_TSC", Weight: 1.0},
	},

	// AMDMSRWeights is the AMD counterpart, with IBS registers
	// prominent.
	AMDMSRWeights: []pluginapi.Weighted{
		{ID: "MCx_STATUS", Weight: 5.5},
		{ID: "MCx_ADDR", Weight: 4.2},
		{ID: "IBS_FETCH_CTL", Weight: 4.0},
		{ID: "IBS_OP_DATA", Weight: 3.5},
		{ID: "PERF_CTRx", Weight: 4.0},
		{ID: "HWCR", Weight: 2.0},
		{ID: "APIC_BASE", Weight: 1.5},
		{ID: "TSC", Weight: 1.0},
	},

	// Workaround weights give, per vendor, the distribution over
	// workaround categories (Figure 6). The None fractions match the
	// paper; the remainder is split with BIOS workarounds leading.
	WorkaroundWeightsIntel: []pluginapi.Weighted{
		{ID: "None", Weight: 35.9},
		{ID: "BIOS", Weight: 32.0},
		{ID: "Software", Weight: 17.0},
		{ID: "Absent", Weight: 11.0},
		{ID: "Peripherals", Weight: 3.6},
		{ID: "DocumentationFix", Weight: 0.5},
	},
	WorkaroundWeightsAMD: []pluginapi.Weighted{
		{ID: "None", Weight: 28.9},
		{ID: "BIOS", Weight: 36.0},
		{ID: "Software", Weight: 20.0},
		{ID: "Absent", Weight: 11.0},
		{ID: "Peripherals", Weight: 3.6},
		{ID: "DocumentationFix", Weight: 0.5},
	},

	// FixWeights gives the distribution of fix statuses (Figure 7):
	// the vast majority of bugs are never fixed. For Intel the fixed
	// fraction grows weakly with the generation index (handled in the
	// generator).
	FixWeights: []pluginapi.Weighted{
		{ID: "NoFixPlanned", Weight: 88}, {ID: "FixPlanned", Weight: 5},
		{ID: "Fixed", Weight: 7},
	},
}
