package rememberr

import (
	"fmt"
	"html"
	"strconv"
	"strings"

	"repro/internal/report"
)

// HTMLReport renders the complete reproduction — corpus statistics,
// every experiment with its checks and figure, the extension
// experiments, and the thirteen observations — as one self-contained
// HTML page (SVG figures inline, no external assets). This mirrors the
// paper artifact's workflow, which writes "figures in the directory
// specified in Readme" plus numbers on stdout, collapsed into a single
// reviewable document.
func HTMLReport(db *Database) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>RemembERR reproduction report</title>
<style>
body { font-family: sans-serif; max-width: 1000px; margin: 24px auto; padding: 0 16px; color: #1a1a1a; }
h1 { border-bottom: 2px solid #0072B2; padding-bottom: 6px; }
h2 { margin-top: 40px; border-bottom: 1px solid #ccc; padding-bottom: 4px; }
pre { background: #f6f6f6; padding: 10px; overflow-x: auto; font-size: 12px; line-height: 1.35; }
.claim { color: #555; font-style: italic; margin: 4px 0 12px; }
.pass { color: #007a3d; } .fail { color: #c0392b; font-weight: bold; }
ul.checks { list-style: none; padding-left: 0; }
ul.checks li { margin: 2px 0; }
table { border-collapse: collapse; } td, th { border: 1px solid #ddd; padding: 4px 8px; font-size: 13px; }
figure { margin: 12px 0; }
</style></head><body>
`)
	b.WriteString("<h1>RemembERR — reproduction report</h1>\n")
	b.WriteString(`<p>Go reproduction of <em>RemembERR: Leveraging Microprocessor
Errata for Design Testing and Validation</em> (Solt, Jattke, Razavi; MICRO 2022).</p>
`)

	// Corpus statistics.
	st := db.Stats()
	b.WriteString("<h2>Corpus</h2>\n")
	b.WriteString(report.HTMLTable(
		[]string{"", "Total", "Unique", "Documents"},
		[][]string{
			{"Intel", strconv.Itoa(st.IntelTotal), strconv.Itoa(st.IntelUnique), strconv.Itoa(st.IntelDocs)},
			{"AMD", strconv.Itoa(st.AMDTotal), strconv.Itoa(st.AMDUnique), strconv.Itoa(st.AMDDocs)},
			{"All", strconv.Itoa(st.Total), strconv.Itoa(st.Unique), strconv.Itoa(st.Documents)},
		}))

	// Observations.
	b.WriteString("<h2>Observations O1–O13</h2>\n<ul class=\"checks\">\n")
	for _, o := range db.Observations() {
		cls, mark := "pass", "HOLDS"
		if !o.Holds {
			cls, mark = "fail", "FAILS"
		}
		fmt.Fprintf(&b, `<li><span class="%s">[%s]</span> <b>%s</b> %s<br><small>%s</small></li>`+"\n",
			cls, mark, o.ID, html.EscapeString(o.Statement), html.EscapeString(o.Evidence))
	}
	b.WriteString("</ul>\n")

	// Experiments.
	x := NewExperiments(db)
	writeExperiments := func(title string, exps []*Experiment) {
		fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(title))
		for _, ex := range exps {
			fmt.Fprintf(&b, "<h3 id=\"%s\">%s — %s</h3>\n",
				html.EscapeString(ex.ID), html.EscapeString(ex.ID), html.EscapeString(ex.Title))
			fmt.Fprintf(&b, "<p class=\"claim\">Paper: %s</p>\n", html.EscapeString(ex.PaperClaim))
			if ex.SVG != "" {
				b.WriteString("<figure>\n" + ex.SVG + "</figure>\n")
			}
			if ex.Text != "" {
				fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(ex.Text))
			}
			b.WriteString("<ul class=\"checks\">\n")
			for _, c := range ex.Checks {
				cls, mark := "pass", "PASS"
				if !c.Pass {
					cls, mark = "fail", "FAIL"
				}
				fmt.Fprintf(&b, `<li><span class="%s">[%s]</span> %s — %s</li>`+"\n",
					cls, mark, html.EscapeString(c.Name), html.EscapeString(c.Detail))
			}
			b.WriteString("</ul>\n")
		}
	}
	writeExperiments("Paper experiments", x.All())
	writeExperiments("Extensions", x.Extensions())

	b.WriteString("</body></html>\n")
	return b.String()
}
