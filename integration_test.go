package rememberr

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/serve"
)

// TestSaveLoadServeRoundTrip is the CLI persistence contract as an
// in-process integration test: 'rememberr build -o db.json.gz' followed
// by 'errserve -db db.json.gz' must serve exactly the statistics of the
// freshly built database, without rebuilding.
func TestSaveLoadServeRoundTrip(t *testing.T) {
	built, _, err := Build(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.json.gz")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded databases carry data only: no build report, no index yet.
	if loaded.Report() != nil {
		t.Error("loaded database has a build report")
	}
	if loaded.Index() != nil {
		t.Error("loaded database has an index before BuildIndex")
	}

	s, err := serve.New(serve.WithDatabase(loaded.Core()), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", resp.StatusCode)
	}
	var got struct {
		Documents    int    `json:"documents"`
		IntelDocs    int    `json:"intel_documents"`
		AMDDocs      int    `json:"amd_documents"`
		Total        int    `json:"errata"`
		IntelTotal   int    `json:"intel_errata"`
		AMDTotal     int    `json:"amd_errata"`
		Unique       int    `json:"unique"`
		IntelUnique  int    `json:"intel_unique"`
		AMDUnique    int    `json:"amd_unique"`
		Annotated    int    `json:"annotated"`
		Unclassified int    `json:"unclassified"`
		Generation   uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	want := built.Stats()
	checks := []struct {
		name      string
		got, want int
	}{
		{"documents", got.Documents, want.Documents},
		{"intel_documents", got.IntelDocs, want.IntelDocs},
		{"amd_documents", got.AMDDocs, want.AMDDocs},
		{"errata", got.Total, want.Total},
		{"intel_errata", got.IntelTotal, want.IntelTotal},
		{"amd_errata", got.AMDTotal, want.AMDTotal},
		{"unique", got.Unique, want.Unique},
		{"intel_unique", got.IntelUnique, want.IntelUnique},
		{"amd_unique", got.AMDUnique, want.AMDUnique},
		{"annotated", got.Annotated, want.Annotated},
		{"unclassified", got.Unclassified, want.Unclassified},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("served %s = %d, built database has %d", c.name, c.got, c.want)
		}
	}
	if got.Generation != 1 {
		t.Errorf("fresh server reports generation %d, want 1", got.Generation)
	}
}
