package rememberr

import (
	"strings"
	"testing"
)

func TestSimulateDirectedCampaign(t *testing.T) {
	db := testDB(t)
	res, err := db.SimulateDirectedCampaign(DefaultCaseStudyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.HiddenBugs != 40 {
		t.Errorf("hidden bugs = %d", res.HiddenBugs)
	}
	if res.Directed.Detected == 0 {
		t.Fatal("directed campaign detected nothing")
	}
	// The headline shape of the Section VI case study: with equal
	// budgets on the multi-trigger population, direction wins.
	if res.Directed.Detected <= res.Random.Detected {
		t.Errorf("directed %d vs random %d — direction should win on multi-trigger bugs",
			res.Directed.Detected, res.Random.Detected)
	}
	if res.Speedup <= 1 {
		t.Errorf("speedup = %.2f", res.Speedup)
	}
	// Detection curves are monotone.
	for _, o := range []CampaignOutcome{res.Directed, res.Random} {
		for i := 1; i < len(o.DetectionCurve); i++ {
			if o.DetectionCurve[i] < o.DetectionCurve[i-1] {
				t.Errorf("%s: detection curve not monotone: %v", o.Strategy, o.DetectionCurve)
				break
			}
		}
		if o.Detected > 0 && o.MedianToDetect < 0 {
			t.Errorf("%s: median missing", o.Strategy)
		}
	}
	out := RenderCaseStudy(res)
	for _, want := range []string{"rememberr-directed", "random-crv", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSimulateDirectedCampaignDeterminism(t *testing.T) {
	db := testDB(t)
	a, err := db.SimulateDirectedCampaign(DefaultCaseStudyOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.SimulateDirectedCampaign(DefaultCaseStudyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Directed.Detected != b.Directed.Detected || a.Random.Detected != b.Random.Detected {
		t.Error("case study not deterministic per seed")
	}
}

func TestSweepDirectedCampaign(t *testing.T) {
	db := testDB(t)
	opts := DefaultCaseStudyOptions()
	opts.Tests = 300 // keep the sweep fast
	sw, err := db.SweepDirectedCampaign(opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Seeds != 5 || len(sw.Runs) != 5 {
		t.Fatalf("sweep = %+v", sw)
	}
	// The directed advantage must be consistent, not a single-seed fluke.
	if sw.DirectedWins < 4 {
		t.Errorf("directed wins only %d/5 seeds", sw.DirectedWins)
	}
	if sw.MeanSpeedup <= 1.05 {
		t.Errorf("mean speedup = %.2f", sw.MeanSpeedup)
	}
	if sw.MeanDirected <= sw.MeanRandom {
		t.Errorf("means: directed %.1f vs random %.1f", sw.MeanDirected, sw.MeanRandom)
	}
}

func TestSimulateDirectedCampaignTightObservation(t *testing.T) {
	db := testDB(t)
	opts := DefaultCaseStudyOptions()
	opts.ObservationBudget = 1
	tight, err := db.SimulateDirectedCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Knowing where to look matters most when observation is scarce:
	// the directed advantage must not vanish.
	if tight.Directed.Detected <= tight.Random.Detected {
		t.Errorf("tight observation: directed %d vs random %d",
			tight.Directed.Detected, tight.Random.Detected)
	}
}
