// Package rememberr is a Go reproduction of "RemembERR: Leveraging
// Microprocessor Errata for Design Testing and Validation" (Solt,
// Jattke, Razavi; MICRO 2022).
//
// It builds the RemembERR database — 2,563 errata across all Intel Core
// and AMD microprocessor documents since 2008, annotated with
// conjunctive triggers, and disjunctive contexts and observable effects
// on three abstraction levels — and reproduces every table and figure
// of the paper's evaluation.
//
// Because the original PDF documents are withdrawn or proprietary, the
// corpus substrate is synthetic: a deterministic generator emits
// specification-update documents in a faithful text format, calibrated
// to the statistics the paper reports, and the full pipeline (parsing,
// deduplication, regex-assisted classification, simulated four-eyes
// annotation, disclosure-date inference) genuinely recovers the
// database from that text. See DESIGN.md for the substitution argument.
//
// Quickstart:
//
//	db, rep, err := rememberr.Build()
//	if err != nil { ... }
//	fmt.Println(db.Stats())
//	fmt.Println(rememberr.NewExperiments(db).Figure10().Text)
//
// Build is configured with functional options (WithSeed,
// WithParallelism, WithObservability, ...); the legacy BuildOptions
// struct still satisfies Option, so existing callers keep compiling:
//
//	db, rep, err := rememberr.Build(rememberr.WithSeed(7), rememberr.WithParallelism(4))
//	db, rep, err := rememberr.Build(legacyBuildOptions) // deprecated, still works
package rememberr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dedup"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/specdoc"
	"repro/internal/taxonomy"
	"repro/internal/textsim"
	"repro/internal/timeline"
	"repro/pkg/domain"

	// The root package is a composition root: it wires the built-in
	// rule pack and corpus profile as the plugin-registry defaults.
	_ "repro/plugins/defaults"
)

// Re-exported types so that users of the library can name the values the
// facade returns without importing internal packages.
type (
	// Vendor identifies a microprocessor vendor (Intel or AMD).
	Vendor = core.Vendor
	// Erratum is a single annotated erratum entry.
	Erratum = core.Erratum
	// Document is a parsed specification-update document.
	Document = core.Document
	// Annotation is the trigger/context/effect annotation of an erratum.
	Annotation = core.Annotation
	// Item is one annotated property (abstract category + concrete text).
	Item = core.Item
	// Kind discriminates triggers, contexts and effects.
	Kind = taxonomy.Kind
	// Scheme is the three-level classification scheme.
	Scheme = taxonomy.Scheme
	// WorkaroundCategory classifies where a workaround applies.
	WorkaroundCategory = core.WorkaroundCategory
	// FixStatus captures whether a bug's root cause was fixed.
	FixStatus = core.FixStatus
	// Metric names a title-similarity metric for deduplication.
	Metric = textsim.Metric
	// StructuredErratum is the machine-readable format of Table VII.
	StructuredErratum = core.StructuredErratum
)

// Re-exported constants.
const (
	Intel = core.Intel
	AMD   = core.AMD

	Trigger = taxonomy.Trigger
	Context = taxonomy.Context
	Effect  = taxonomy.Effect
)

// BaseScheme returns the paper's 60-category classification scheme
// (Tables IV-VI).
func BaseScheme() *Scheme { return taxonomy.Base() }

// Registry re-exports the observability registry so callers can wire
// Build and the serving layer onto one metrics namespace without
// importing internal packages.
type Registry = obs.Registry

// NewRegistry returns an empty observability registry (see
// WithObservability).
func NewRegistry() *Registry { return obs.NewRegistry() }

// TraceSpan is one stage of the build trace (see BuildReport.Trace).
type TraceSpan = obs.Span

// Option configures Build. Options are applied in order over the
// paper-faithful defaults. The legacy BuildOptions struct satisfies
// Option by replacing the whole configuration, so pre-options call
// sites — Build(opts) with a BuildOptions value — compile and behave
// unchanged.
type Option interface {
	applyOption(*BuildOptions)
}

// optionFunc adapts a closure to the Option interface.
type optionFunc func(*BuildOptions)

func (f optionFunc) applyOption(o *BuildOptions) { f(o) }

// applyOption makes the legacy options struct usable as an Option: it
// replaces the entire configuration, reproducing the semantics of the
// old Build(BuildOptions) signature (zero fields mean "default or
// zero value" exactly as normalized() always resolved them).
func (o BuildOptions) applyOption(dst *BuildOptions) { *dst = o }

// WithSeed sets the corpus-generator and annotator seed; the same seed
// reproduces the same database bit for bit.
func WithSeed(seed int64) Option {
	return optionFunc(func(o *BuildOptions) { o.Seed = seed })
}

// WithSimilarityMetric selects the title-similarity metric that ranks
// duplicate candidates.
func WithSimilarityMetric(m Metric) Option {
	return optionFunc(func(o *BuildOptions) { o.SimilarityMetric = m })
}

// WithSimilarityThreshold sets the minimum title similarity for a
// candidate pair to be reviewed. Unlike assigning the struct field, an
// explicit 0 means "review every candidate pair" rather than falling
// back to the default 0.6.
func WithSimilarityThreshold(t float64) Option {
	return optionFunc(func(o *BuildOptions) { o.SetSimilarityThreshold(t) })
}

// WithLSH switches duplicate-candidate generation to the MinHash/LSH
// index.
func WithLSH(on bool) Option {
	return optionFunc(func(o *BuildOptions) { o.UseLSH = on })
}

// WithInterpolation enables or disables sequential-number disclosure
// interpolation (the paper's configuration interpolates).
func WithInterpolation(on bool) Option {
	return optionFunc(func(o *BuildOptions) { o.Interpolate = on })
}

// WithAnnotationSteps sets the number of four-eyes discussion batches.
// Unlike assigning the struct field, an explicit 0 is passed to the
// annotation stage — which rejects it — instead of being silently
// replaced by the default 7.
func WithAnnotationSteps(n int) Option {
	return optionFunc(func(o *BuildOptions) { o.SetAnnotationSteps(n) })
}

// WithParallelism bounds the worker goroutines of the parallel
// pipeline stages (0 = GOMAXPROCS, 1 = sequential). The built database
// is byte-identical at every value.
func WithParallelism(n int) Option {
	return optionFunc(func(o *BuildOptions) { o.Parallelism = n })
}

// WithCache enables content-addressed incremental rebuilds: every
// build stage's output artifact is persisted under dir, keyed by a
// digest of the stage's code version, its configuration, and its input
// artifacts' digests. A later Build sharing the directory replays every
// stage whose key is unchanged from disk and re-runs only the affected
// suffix of the stage graph — e.g. toggling only the interpolation knob
// replays corpus through annotate from cache and re-runs just timeline
// and validate. The built database and report are byte-identical to an
// uncached build at every cache state and worker count; cached stages
// appear in BuildReport.Trace with Cached set.
func WithCache(dir string) Option {
	return optionFunc(func(o *BuildOptions) { o.CacheDir = dir })
}

// WithObservability directs the build's metrics into reg: per-stage
// spans (also returned as BuildReport.Trace), classify memo and
// prefilter counters, and worker-pool queue/task counters. Pass the
// same registry to serve.Options.Observability to expose build and
// serving metrics on one /metrics endpoint. A nil registry disables
// instrumentation (the default).
func WithObservability(reg *Registry) Option {
	return optionFunc(func(o *BuildOptions) { o.Observability = reg })
}

// BuildOptions configures the end-to-end database construction.
//
// Deprecated: BuildOptions remains as a compatibility shim — it
// satisfies Option, so Build(opts) keeps working — but new code should
// compose the With* functional options instead, which cannot get the
// zero-value footguns wrong (see SetSimilarityThreshold and
// SetAnnotationSteps).
type BuildOptions struct {
	// Seed drives the corpus generator and the annotator error
	// processes; the same seed reproduces the same database bit for bit.
	Seed int64
	// SimilarityMetric ranks Intel duplicate candidates (default
	// Jaccard; see the ablation benchmarks for alternatives).
	SimilarityMetric Metric
	// SimilarityThreshold is the minimum title similarity for a
	// candidate pair to be reviewed. The zero value selects the default
	// 0.6; use SetSimilarityThreshold to request an explicit threshold
	// of 0 ("review every candidate pair").
	SimilarityThreshold float64
	// UseLSH switches duplicate-candidate generation to the MinHash/LSH
	// index (near-linear instead of the exact O(n^2) scan).
	UseLSH bool
	// Interpolate enables sequential-number disclosure interpolation
	// (default true, as in the paper).
	Interpolate bool
	// AnnotationSteps is the number of four-eyes discussion batches.
	// The zero value selects the default 7 (as in the paper); use
	// SetAnnotationSteps to pass an explicit value, which is validated
	// instead of silently replaced.
	AnnotationSteps int
	// Parallelism bounds the number of worker goroutines used by the
	// parallel pipeline stages: document rendering and parsing,
	// duplicate-candidate scoring, and regex classification. 0 selects
	// runtime.GOMAXPROCS(0); 1 forces the fully sequential path. The
	// built database and report are byte-identical at every value —
	// see the concurrency model in DESIGN.md.
	Parallelism int
	// Observability, when non-nil, receives the build's metrics and
	// stage spans (see WithObservability). Instrumentation never
	// changes the built database.
	Observability *Registry
	// CacheDir, when non-empty, persists stage artifacts under this
	// directory for content-addressed incremental rebuilds (see
	// WithCache). Empty disables caching.
	CacheDir string

	// similarityThresholdSet / annotationStepsSet distinguish explicit
	// zero values (via the setters) from unset fields.
	similarityThresholdSet bool
	annotationStepsSet     bool
}

// SetSimilarityThreshold sets SimilarityThreshold explicitly. Unlike
// assigning the field directly, an explicit zero survives option
// normalization: every candidate pair is surfaced for review instead
// of silently falling back to the default 0.6.
//
// Deprecated: use the WithSimilarityThreshold option, which has the
// explicit-zero semantics built in.
func (o *BuildOptions) SetSimilarityThreshold(t float64) {
	o.SimilarityThreshold = t
	o.similarityThresholdSet = true
}

// SetAnnotationSteps sets AnnotationSteps explicitly. Unlike assigning
// the field directly, an explicit zero is passed through to the
// annotation stage — which rejects it — instead of being silently
// replaced by the default 7.
//
// Deprecated: use the WithAnnotationSteps option, which has the
// explicit-zero semantics built in.
func (o *BuildOptions) SetAnnotationSteps(n int) {
	o.AnnotationSteps = n
	o.annotationStepsSet = true
}

// normalized resolves unset options to their documented defaults
// without disturbing explicitly set values.
func (o BuildOptions) normalized() BuildOptions {
	if o.SimilarityMetric == "" {
		o.SimilarityMetric = textsim.MetricJaccard
	}
	if o.SimilarityThreshold == 0 && !o.similarityThresholdSet {
		o.SimilarityThreshold = 0.6
	}
	if o.AnnotationSteps == 0 && !o.annotationStepsSet {
		o.AnnotationSteps = 7
	}
	return o
}

// DefaultBuildOptions returns the paper-faithful configuration.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		Seed:                1,
		SimilarityMetric:    textsim.MetricJaccard,
		SimilarityThreshold: 0.6,
		Interpolate:         true,
		AnnotationSteps:     7,
	}
}

// BuildReport documents one pipeline run.
type BuildReport struct {
	// Diagnostics lists the document inconsistencies ("errata in
	// errata") the parser surfaced.
	Diagnostics []specdoc.Diagnostic
	// Dedup summarizes duplicate detection (unique counts, reviewed
	// candidate pairs, confirmed pairs).
	Dedup *dedup.Result
	// Annotation summarizes the four-eyes protocol (steps, agreement,
	// decision volumes).
	Annotation *annotate.Result
	// Timeline summarizes disclosure-date inference.
	Timeline timeline.Stats
	// GroundTruth is the generator's hidden truth; it backs the manual
	// review and annotation oracles and lets callers validate recovery.
	GroundTruth *corpus.GroundTruth
	// Trace is the per-stage span tree of this build: wall time and
	// item counts for corpus generation, document rendering, parsing,
	// deduplication, annotation (with classify/protocol/propagate
	// children), disclosure inference and validation. Always present;
	// when the build ran with WithObservability the same stage timings
	// are also published as registry gauges.
	Trace *TraceSpan
}

// Database is the built RemembERR database.
type Database struct {
	core   *core.Database
	report *BuildReport
	idx    atomic.Pointer[index.Index]

	// flightMu/flight coalesce concurrent BuildIndex calls into one
	// index construction (singleflight). flightJoined, when non-nil,
	// is invoked each time a caller joins an existing flight — a test
	// seam that lets the singleflight tests sequence joiners
	// deterministically.
	flightMu     sync.Mutex
	flight       *indexFlight
	flightJoined func()
}

// indexFlight is one in-progress index construction; joiners block on
// done and share the leader's result.
type indexFlight struct {
	done chan struct{}
	ix   *index.Index
}

// Build runs the full pipeline: corpus generation, document rendering,
// parsing, deduplication, classification plus simulated four-eyes
// annotation, and disclosure-date inference. With no options it builds
// the paper-faithful default configuration (DefaultBuildOptions);
// options are applied in order. A legacy BuildOptions value is itself
// an Option (it replaces the whole configuration), so existing
// Build(opts) call sites work unchanged.
func Build(options ...Option) (*Database, *BuildReport, error) {
	opts := DefaultBuildOptions()
	for _, o := range options {
		o.applyOption(&opts)
	}
	opts = opts.normalized()

	reg := opts.Observability
	if reg != nil {
		parallel.Instrument(reg)
	}

	runner := &pipeline.Runner{Obs: reg}
	if opts.CacheDir != "" {
		cache, err := pipeline.NewDiskCache(opts.CacheDir)
		if err != nil {
			return nil, nil, fmt.Errorf("rememberr: open pipeline cache: %w", err)
		}
		runner.Cache = cache
	}
	res, err := runner.Run("build", buildStages(opts))
	if err != nil {
		return nil, nil, err
	}
	return assembleBuild(res)
}

func uniformFractions(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(n)
	}
	return out
}

// Core exposes the underlying database for advanced use.
func (db *Database) Core() *core.Database { return db.core }

// BuildIndex builds the inverted-index query engine over the current
// database contents and returns it. Afterwards, Query terminal
// operations compile to postings-list intersections instead of scanning
// every entry; results are identical on both paths. The index is a
// snapshot: call BuildIndex again after mutating the underlying core
// database. Safe for concurrent use with Query execution, and
// singleflight under contention: concurrent callers coalesce onto one
// construction and all receive the same *index.Index; a call issued
// after that construction finished builds a fresh snapshot.
func (db *Database) BuildIndex() *index.Index {
	return db.buildIndexWith(index.Build)
}

// buildIndexWith is BuildIndex with the index constructor injected, the
// seam the singleflight tests use to hold a flight open deterministically.
func (db *Database) buildIndexWith(build func(*core.Database) *index.Index) *index.Index {
	db.flightMu.Lock()
	if f := db.flight; f != nil {
		joined := db.flightJoined
		db.flightMu.Unlock()
		if joined != nil {
			joined()
		}
		<-f.done
		return f.ix
	}
	f := &indexFlight{done: make(chan struct{})}
	db.flight = f
	db.flightMu.Unlock()

	f.ix = build(db.core)
	db.idx.Store(f.ix)

	db.flightMu.Lock()
	db.flight = nil
	db.flightMu.Unlock()
	close(f.done)
	return f.ix
}

// Index returns the inverted index built by BuildIndex, or nil when
// queries run on the closure-scan path.
func (db *Database) Index() *index.Index { return db.idx.Load() }

// Report returns the build report, or nil for loaded databases.
func (db *Database) Report() *BuildReport { return db.report }

// Scheme returns the classification scheme in force.
func (db *Database) Scheme() domain.Scheme { return db.core.Scheme }

// Stats summarizes corpus-level counts.
type Stats = core.Stats

// Stats recomputes corpus statistics.
func (db *Database) Stats() Stats { return db.core.ComputeStats() }

// Documents returns all documents in vendor/order sequence.
func (db *Database) Documents() []*Document { return db.core.Documents() }

// Errata returns every entry, duplicates counted individually.
func (db *Database) Errata() []*Erratum { return db.core.Errata() }

// Unique returns one representative entry per deduplicated erratum.
func (db *Database) Unique() []*Erratum { return db.core.Unique() }

// UniqueVendor returns the unique errata of one vendor.
func (db *Database) UniqueVendor(v Vendor) []*Erratum { return db.core.UniqueVendor(v) }

// Document returns one document by key, or nil.
func (db *Database) Document(key string) *Document { return db.core.Docs[key] }

// FromCore wraps an existing core database (e.g. one loaded from JSON)
// in the facade. The resulting Database has no build provenance:
// Report returns nil (callers must nil-check before reading build
// artifacts) and Index returns nil until BuildIndex is called; every
// other accessor — Stats, Errata, Unique, Query, the serving layer —
// works identically to a freshly built database.
func FromCore(c *core.Database) *Database { return &Database{core: c} }
