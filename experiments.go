package rememberr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/heredity"
	"repro/internal/report"
	"repro/internal/timeline"
	corpusprofile "repro/plugins/corpusprofile/intelamd"
)

// Check is one qualitative shape assertion of an experiment: does the
// reproduced result agree with what the paper reports?
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Experiment is the result of regenerating one table or figure.
type Experiment struct {
	// ID identifies the experiment ("figure-10", "table-3", ...).
	ID string
	// Title describes the experiment.
	Title string
	// PaperClaim is the headline finding the paper reports.
	PaperClaim string
	// Text is the rendered table/figure.
	Text string
	// CSV is the raw data in CSV form.
	CSV string
	// SVG is a graphical rendering of the figure, where one exists.
	SVG string
	// Checks lists the shape assertions and their outcomes.
	Checks []Check
}

// Passed reports whether all checks hold.
func (e *Experiment) Passed() bool {
	for _, c := range e.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

func check(name string, pass bool, format string, args ...interface{}) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}

// Experiments regenerates the paper's tables and figures from a built
// database.
type Experiments struct {
	db *Database
}

// NewExperiments creates an experiment runner.
func NewExperiments(db *Database) *Experiments { return &Experiments{db: db} }

// All runs every experiment in paper order.
func (x *Experiments) All() []*Experiment {
	return []*Experiment{
		x.Table1(), x.Table3(), x.Table4to6(), x.Table7(),
		x.CorpusTotals(),
		x.Figure2(), x.Figure3(), x.Figure4(), x.Figure5(),
		x.Figure6(), x.Figure7(), x.Figure8(), x.Figure9(),
		x.DecisionReduction(),
		x.Figure10(), x.Figure11(), x.Figure12(), x.Figure13(),
		x.Figure14(), x.Figure15(), x.Figure16(), x.Figure17(),
		x.Figure18(), x.Figure19(),
	}
}

// ByID runs one experiment by identifier.
func (x *Experiments) ByID(id string) (*Experiment, error) {
	for _, e := range x.All() {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("rememberr: unknown experiment %q", id)
}

// IDs lists the experiment identifiers in paper order.
func (x *Experiments) IDs() []string {
	var out []string
	for _, e := range x.All() {
		out = append(out, e.ID)
	}
	return out
}

// ---------------------------------------------------------------------
// Tables

// Table1 renders example errata in the classic format (Tables I and II
// of the paper show the first Intel Core 12th-gen erratum and the most
// recent AMD Zen 3 erratum).
func (x *Experiments) Table1() *Experiment {
	ex := &Experiment{
		ID:         "table-1",
		Title:      "Example errata (classic format)",
		PaperClaim: "Errata carry title, description, implications, workaround and status fields.",
	}
	var b strings.Builder
	intel := x.db.Document("intel-12")
	amd := x.db.Document("amd-19h-00")
	renderClassic := func(d *Document, e *Erratum) {
		fmt.Fprintf(&b, "ID: %s (%s)\nTitle: %s\nDescription: %s\nImplications: %s\nWorkaround: %s\nStatus: %s\n\n",
			e.ID, d.Label, e.Title, e.Description, e.Implication, e.Workaround, e.Status)
	}
	var okIntel, okAMD bool
	if intel != nil && len(intel.Errata) > 0 {
		renderClassic(intel, intel.Errata[0])
		okIntel = true
	}
	if amd != nil && len(amd.Errata) > 0 {
		renderClassic(amd, amd.Errata[len(amd.Errata)-1])
		okAMD = true
	}
	ex.Text = b.String()
	ex.Checks = append(ex.Checks,
		check("intel-12 first erratum present", okIntel, "intel-12 available"),
		check("amd-19h last erratum present", okAMD, "amd-19h available"))
	return ex
}

// Table3 reproduces the inspected-document inventory.
func (x *Experiments) Table3() *Experiment {
	ex := &Experiment{
		ID:         "table-3",
		Title:      "Inspected errata documents",
		PaperClaim: "16 Intel Core documents and 12 AMD family documents.",
	}
	var rows [][]string
	nIntel, nAMD := 0, 0
	for _, d := range x.db.Documents() {
		rows = append(rows, []string{
			d.Vendor.String(), d.Label, d.Reference,
			d.Released.Format("2006-01"), fmt.Sprintf("%d", len(d.Errata)),
			fmt.Sprintf("%d", len(d.Revisions)),
		})
		if d.Vendor == Intel {
			nIntel++
		} else {
			nAMD++
		}
	}
	headers := []string{"Vendor", "Gen/Family", "Reference", "Released", "Errata", "Revisions"}
	ex.Text = report.Table(headers, rows)
	ex.CSV = report.CSV(headers, rows)
	ex.Checks = append(ex.Checks,
		check("16 Intel documents", nIntel == 16, "got %d", nIntel),
		check("12 AMD documents", nAMD == 12, "got %d", nAMD))
	return ex
}

// Table4to6 renders the full classification scheme.
func (x *Experiments) Table4to6() *Experiment {
	ex := &Experiment{
		ID:         "table-4-6",
		Title:      "Classification of triggers, contexts and observable effects",
		PaperClaim: "60 abstract categories: 34 triggers, 10 contexts, 16 effects.",
	}
	scheme := x.db.Scheme()
	var b strings.Builder
	for _, kind := range []Kind{Trigger, Context, Effect} {
		name := kind.Name()
		fmt.Fprintf(&b, "== %ss ==\n", strings.ToUpper(name[:1])+name[1:])
		for _, cl := range scheme.Classes(kind) {
			fmt.Fprintf(&b, "%s: %s\n", cl.ID, cl.Description)
			for _, catID := range scheme.CategoriesOf(cl.ID) {
				cat, _ := scheme.Category(catID)
				fmt.Fprintf(&b, "  %-16s %s\n", "_"+cat.Suffix, cat.Description)
			}
		}
		b.WriteString("\n")
	}
	ex.Text = b.String()
	ex.Checks = append(ex.Checks,
		check("60 categories", scheme.NumCategories(-1) == 60, "got %d", scheme.NumCategories(-1)),
		check("34/10/16 split",
			scheme.NumCategories(Trigger) == 34 && scheme.NumCategories(Context) == 10 && scheme.NumCategories(Effect) == 16,
			"got %d/%d/%d", scheme.NumCategories(Trigger), scheme.NumCategories(Context), scheme.NumCategories(Effect)))
	return ex
}

// Table7 renders an erratum in the proposed machine-readable format.
func (x *Experiments) Table7() *Experiment {
	ex := &Experiment{
		ID:         "table-7",
		Title:      "Proposed erratum format",
		PaperClaim: "Triggers, contexts and effects become explicit, redundancy is ruled out.",
	}
	var target *Erratum
	for _, e := range x.db.Unique() {
		if len(e.Ann.Triggers) >= 1 && len(e.Ann.Contexts) >= 1 && len(e.Ann.Effects) >= 1 {
			target = e
			break
		}
	}
	if target == nil {
		ex.Checks = append(ex.Checks, check("erratum with all three dimensions", false, "none found"))
		return ex
	}
	s := core.Structure(target)
	ex.Text = s.Render()
	ex.Checks = append(ex.Checks,
		check("structured format valid", s.Validate(x.db.Scheme()) == nil, "%s", s.ID),
		check("unique key as ID", s.ID == target.Key, "id=%s", s.ID))
	return ex
}

// CorpusTotals checks the headline corpus numbers of Section IV-A.
func (x *Experiments) CorpusTotals() *Experiment {
	ex := &Experiment{
		ID:         "corpus-totals",
		Title:      "Corpus totals",
		PaperClaim: "2,563 errata: 2,057 Intel (743 unique), 506 AMD (385 unique); 1,128 unique in total.",
	}
	st := x.db.Stats()
	headers := []string{"Metric", "Measured", "Paper"}
	rows := [][]string{
		{"Total errata", fmt.Sprintf("%d", st.Total), "2563"},
		{"Intel errata", fmt.Sprintf("%d", st.IntelTotal), "2057"},
		{"AMD errata", fmt.Sprintf("%d", st.AMDTotal), "506"},
		{"Intel unique", fmt.Sprintf("%d", st.IntelUnique), "743"},
		{"AMD unique", fmt.Sprintf("%d", st.AMDUnique), "385"},
		{"Unique total", fmt.Sprintf("%d", st.Unique), "1128"},
	}
	ex.Text = report.Table(headers, rows)
	ex.CSV = report.CSV(headers, rows)
	ex.Checks = append(ex.Checks,
		check("totals match", st.Total == 2563 && st.IntelTotal == 2057 && st.AMDTotal == 506,
			"total=%d intel=%d amd=%d", st.Total, st.IntelTotal, st.AMDTotal),
		check("uniques match", st.Unique == 1128 && st.IntelUnique == 743 && st.AMDUnique == 385,
			"unique=%d intel=%d amd=%d", st.Unique, st.IntelUnique, st.AMDUnique))
	return ex
}

// DecisionReduction checks the software-assisted classification volume
// (Section V-A).
func (x *Experiments) DecisionReduction() *Experiment {
	ex := &Experiment{
		ID:         "decision-reduction",
		Title:      "Software-assisted classification decision reduction",
		PaperClaim: "1,128 x 60 = 67,680 decisions reduced to 2,064 per human by conservative regex filtering.",
	}
	rep := x.db.Report()
	if rep == nil || rep.Annotation == nil {
		ex.Checks = append(ex.Checks, check("build report available", false, "database was loaded, not built"))
		return ex
	}
	fs := rep.Annotation.FilterStats
	headers := []string{"Metric", "Measured", "Paper"}
	rows := [][]string{
		{"Raw decisions", fmt.Sprintf("%d", fs.RawDecisions), "67680"},
		{"Auto-included", fmt.Sprintf("%d", fs.AutoIncluded), "-"},
		{"Auto-excluded", fmt.Sprintf("%d", fs.AutoExcluded), "-"},
		{"Human decisions", fmt.Sprintf("%d", rep.Annotation.HumanDecisions), "2064"},
		{"Reduction factor", fmt.Sprintf("%.1f", fs.ReductionFactor()), "32.8"},
	}
	ex.Text = report.Table(headers, rows)
	ex.CSV = report.CSV(headers, rows)
	ex.Checks = append(ex.Checks,
		check("raw volume matches", fs.RawDecisions == 67680, "got %d", fs.RawDecisions),
		check("human volume same order as paper",
			rep.Annotation.HumanDecisions >= 800 && rep.Annotation.HumanDecisions <= 4500,
			"got %d (paper: 2064)", rep.Annotation.HumanDecisions),
		check("reduction >= 10x", fs.ReductionFactor() >= 10, "factor %.1f", fs.ReductionFactor()))
	return ex
}

// ---------------------------------------------------------------------
// Figures

// Figure2 reproduces the cumulative disclosure timelines.
func (x *Experiments) Figure2() *Experiment {
	ex := &Experiment{
		ID:         "figure-2",
		Title:      "Disclosure dates of Intel Core and AMD errata",
		PaperClaim: "Cumulative curves are concave; Intel updates far more frequently than AMD; errata keep appearing for new designs (O1, O2).",
	}
	series := timeline.CumulativeByDocument(x.db.core)
	svgSeries := map[string][]report.Point{}
	var b strings.Builder
	concaveDocs, totalDocs := 0, 0
	var intelRevs, amdRevs, intelDocs, amdDocs int
	for _, d := range x.db.Documents() {
		pts := series[d.Key]
		rpts := make([]report.Point, len(pts))
		for i, p := range pts {
			rpts[i] = report.Point{Date: p.Date, Value: p.Cumulative}
		}
		b.WriteString(report.YearlyBreakdown(fmt.Sprintf("%-5s %s", d.Vendor, d.Label), rpts))
		svgSeries[fmt.Sprintf("%s %s", d.Vendor, d.Label)] = rpts
		totalDocs++
		if timeline.Concavity(pts) >= 0.5 {
			concaveDocs++
		}
		if d.Vendor == Intel {
			intelRevs += len(d.Revisions)
			intelDocs++
		} else {
			amdRevs += len(d.Revisions)
			amdDocs++
		}
	}
	ex.Text = b.String()
	ex.SVG = report.SVGSeries("Cumulative errata disclosures per document", svgSeries, 900, 480)
	intelRate := float64(intelRevs) / float64(intelDocs)
	amdRate := float64(amdRevs) / float64(amdDocs)
	ex.Checks = append(ex.Checks,
		check("most curves concave (O2)", concaveDocs*10 >= totalDocs*7,
			"%d/%d concave", concaveDocs, totalDocs),
		check("Intel revises more frequently", intelRate > amdRate,
			"intel %.1f vs amd %.1f revisions/doc", intelRate, amdRate),
		check("every document discloses errata (O1)", totalDocs == 28, "%d documents", totalDocs))
	return ex
}

// Figure3 reproduces the heredity matrix.
func (x *Experiments) Figure3() *Experiment {
	ex := &Experiment{
		ID:         "figure-3",
		Title:      "Bug heredity across Intel generations",
		PaperClaim: "Desktop and mobile pairs share most bugs; 104 bugs shared by gens 6-10; 6 bugs from Core 1 to 10; one bug spans from Core 2 to the latest generation (O3).",
	}
	m := heredity.SharedMatrix(x.db.core, Intel)
	ex.Text = report.Heatmap("Shared unique errata between Intel documents", m.Labels, m.Counts)
	ex.SVG = report.SVGHeatmap("Shared unique errata between Intel documents", m.Labels, m.Counts, 0)

	idx := map[string]int{}
	for i, k := range m.Docs {
		idx[k] = i
	}
	dmShare := true
	for _, g := range []string{"01", "02", "03", "04", "05"} {
		i, j := idx["intel-"+g+"d"], idx["intel-"+g+"m"]
		shared := m.Counts[i][j]
		size := m.Counts[i][i]
		if shared*2 < size {
			dmShare = false
		}
	}
	shared6to10 := len(heredity.SharedKeys(x.db.core, "intel-06", "intel-07", "intel-08", "intel-10"))
	core1to10 := len(heredity.SharedKeys(x.db.core,
		"intel-01d", "intel-01m", "intel-02d", "intel-02m", "intel-03d", "intel-03m",
		"intel-04d", "intel-04m", "intel-05d", "intel-05m",
		"intel-06", "intel-07", "intel-08", "intel-10"))
	lins := heredity.LongestLineages(x.db.core, 1)
	maxSpan := 0
	if len(lins) > 0 {
		maxSpan = lins[0].GenSpan
	}
	// "We find fewer shared errata between AMD families, compared to
	// Intel Core generations": compare the shared fraction of entries.
	intelSharedFrac := sharedFraction(x.db, Intel)
	amdSharedFrac := sharedFraction(x.db, AMD)
	ex.Checks = append(ex.Checks,
		check("D/M pairs share majority", dmShare, "all generation pairs share >= 50%%"),
		check("AMD families share fewer errata than Intel generations",
			amdSharedFrac < intelSharedFrac,
			"shared fraction: AMD %.1f%% vs Intel %.1f%%", 100*amdSharedFrac, 100*intelSharedFrac),
		check("104 bugs shared by gens 6-10", shared6to10 == corpusprofile.SharedGens6To10, "got %d", shared6to10),
		check("6 bugs from Core 1 to Core 10", core1to10 == corpusprofile.LineagesCore1To10, "got %d", core1to10),
		check("longest lineage spans 10 generations", maxSpan >= 10, "span %d", maxSpan))
	return ex
}

// Figure4 reproduces the disclosure dates of the bugs shared by Intel
// generations 6 to 10.
func (x *Experiments) Figure4() *Experiment {
	ex := &Experiment{
		ID:         "figure-4",
		Title:      "Disclosure dates of bugs shared by Intel Core generations 6-10",
		PaperClaim: "Most shared design errors were known before the release of the subsequent generation (O4).",
	}
	docs := []string{"intel-06", "intel-07", "intel-08", "intel-10"}
	keys := heredity.SharedKeys(x.db.core, docs...)
	traces := heredity.DisclosureTraces(x.db.core, keys, docs...)
	series := map[string][]report.Point{}
	var b strings.Builder
	for _, tr := range traces {
		pts := make([]report.Point, len(tr.Dates))
		for i, d := range tr.Dates {
			pts[i] = report.Point{Date: d, Value: i + 1}
		}
		series["gen "+tr.Label] = pts
		b.WriteString(report.YearlyBreakdown("gen "+tr.Label, pts))
	}
	ex.Text = b.String() + report.Series("cumulative disclosures of shared bugs", series, 50)
	ex.SVG = report.SVGSeries("Disclosures of the bugs shared by Intel generations 6-10", series, 0, 0)

	// O4: count shared bugs known in gen 6 before gen 7's release.
	known := heredity.KnownBeforeNextRelease(x.db.core, keys, "intel-06", "intel-07")
	ex.Checks = append(ex.Checks,
		check("shared set has 104 bugs", len(keys) == corpusprofile.SharedGens6To10, "got %d", len(keys)),
		check("most known before next release (O4)", known*2 > len(keys),
			"%d/%d disclosed in gen 6 before gen 7's release", known, len(keys)))
	return ex
}

// Figure5 reproduces the forward-/backward-latent errata curves.
func (x *Experiments) Figure5() *Experiment {
	ex := &Experiment{
		ID:         "figure-5",
		Title:      "Forward-latent and backward-latent errata among Intel Core generations",
		PaperClaim: "Forward-latent errata always increase and dominate; backward-latent errata exist (salient around 2015).",
	}
	res := heredity.ForwardBackwardLatent(x.db.core, Intel)
	fwd := make([]report.Point, len(res.Forward))
	for i, p := range res.Forward {
		fwd[i] = report.Point{Date: p.Date, Value: p.Cumulative}
	}
	bwd := make([]report.Point, len(res.Backward))
	for i, p := range res.Backward {
		bwd[i] = report.Point{Date: p.Date, Value: p.Cumulative}
	}
	ex.Text = report.YearlyBreakdown("forward-latent", fwd) + report.YearlyBreakdown("backward-latent", bwd)
	ex.SVG = report.SVGSeries("Forward- and backward-latent errata",
		map[string][]report.Point{"forward-latent": fwd, "backward-latent": bwd}, 0, 0)
	ex.Checks = append(ex.Checks,
		check("forward-latent errata exist", res.ForwardTotal > 100, "got %d", res.ForwardTotal),
		check("backward-latent errata exist", res.BackwardTotal > 0, "got %d", res.BackwardTotal),
		check("forward dominates backward", res.ForwardTotal > res.BackwardTotal,
			"forward %d vs backward %d", res.ForwardTotal, res.BackwardTotal))
	return ex
}

// Figure6 reproduces the workaround breakdown.
func (x *Experiments) Figure6() *Experiment {
	ex := &Experiment{
		ID:         "figure-6",
		Title:      "Suggested workarounds by category",
		PaperClaim: "35.9% (Intel) and 28.9% (AMD) of unique errata have no suggested workaround (O5).",
	}
	w := analysis.Workarounds(x.db.core)
	var b strings.Builder
	var svgBars []report.Bar
	noneFrac := map[Vendor]float64{}
	for _, v := range core.Vendors {
		var bars []report.Bar
		total := 0
		for _, cat := range core.WorkaroundCategories {
			total += w[v][cat]
		}
		for _, cat := range core.WorkaroundCategories {
			n := w[v][cat]
			bars = append(bars, report.Bar{
				Label: cat.String(), Value: float64(n),
				Note: fmt.Sprintf("(%.1f%%)", 100*float64(n)/float64(total)),
			})
		}
		noneFrac[v] = float64(w[v][core.WorkaroundNone]) / float64(total)
		b.WriteString(report.BarChart(v.String(), bars, 40))
		b.WriteString("\n")
		for _, bar := range bars {
			bar.Label = v.String() + " / " + bar.Label
			svgBars = append(svgBars, bar)
		}
	}
	ex.Text = b.String()
	ex.SVG = report.SVGBarChart("Suggested workarounds by category", svgBars, 0)
	ex.Checks = append(ex.Checks,
		check("Intel None ~35.9%", math.Abs(noneFrac[Intel]-corpusprofile.NoWorkaroundFractionIntel) < 0.06,
			"got %.1f%%", 100*noneFrac[Intel]),
		check("AMD None ~28.9%", math.Abs(noneFrac[AMD]-corpusprofile.NoWorkaroundFractionAMD) < 0.06,
			"got %.1f%%", 100*noneFrac[AMD]))
	return ex
}

// Figure7 reproduces the fixed-vs-unfixed proportions.
func (x *Experiments) Figure7() *Experiment {
	ex := &Experiment{
		ID:         "figure-7",
		Title:      "Proportion of fixed vs unfixed bugs",
		PaperClaim: "The vast majority of bugs are never fixed; Intel shows a weak recent trend toward fixing (O6).",
	}
	fixes := analysis.Fixes(x.db.core)
	headers := []string{"Document", "Fixed", "Planned", "Unfixed", "FixedShare"}
	var rows [][]string
	majorityUnfixed := true
	var earlyShare, lateShare []float64
	for _, f := range fixes {
		share := float64(f.Fixed) / float64(f.Total())
		rows = append(rows, []string{
			f.DocKey, fmt.Sprintf("%d", f.Fixed), fmt.Sprintf("%d", f.Planned),
			fmt.Sprintf("%d", f.Unfixed), fmt.Sprintf("%.1f%%", 100*share),
		})
		if f.Unfixed*2 < f.Total() {
			majorityUnfixed = false
		}
		if f.Vendor == Intel {
			d := x.db.Document(f.DocKey)
			if d.GenIndex <= 5 {
				earlyShare = append(earlyShare, share)
			} else if d.GenIndex >= 9 {
				lateShare = append(lateShare, share)
			}
		}
	}
	ex.Text = report.Table(headers, rows)
	ex.CSV = report.CSV(headers, rows)
	var fixBars []report.Bar
	for _, f := range fixes {
		fixBars = append(fixBars, report.Bar{
			Label: f.DocKey, Value: 100 * float64(f.Fixed) / float64(f.Total()),
		})
	}
	ex.SVG = report.SVGBarChart("Fixed share per document (%)", fixBars, 0)
	trendUp := mean(lateShare) > mean(earlyShare)
	ex.Checks = append(ex.Checks,
		check("majority unfixed everywhere (O6)", majorityUnfixed, "all documents majority-unfixed"),
		check("weak Intel trend toward fixing", trendUp,
			"early gens %.1f%% vs late gens %.1f%%", 100*mean(earlyShare), 100*mean(lateShare)))
	return ex
}

// sharedFraction is the fraction of a vendor's unique errata occurring
// in more than one document.
func sharedFraction(db *Database, v Vendor) float64 {
	occ := db.core.Occurrences(v)
	if len(occ) == 0 {
		return 0
	}
	shared := 0
	for _, entries := range occ {
		docs := map[string]bool{}
		for _, e := range entries {
			docs[e.DocKey] = true
		}
		if len(docs) > 1 {
			shared++
		}
	}
	return float64(shared) / float64(len(occ))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Figure8 reproduces the per-step classification volumes.
func (x *Experiments) Figure8() *Experiment {
	ex := &Experiment{
		ID:         "figure-8",
		Title:      "Number of errata per classification discussion step",
		PaperClaim: "The classification proceeded in seven successive steps, cumulatively covering all unique errata.",
	}
	rep := x.db.Report()
	if rep == nil || rep.Annotation == nil {
		ex.Checks = append(ex.Checks, check("build report available", false, "database was loaded, not built"))
		return ex
	}
	var bars []report.Bar
	cum := 0
	for _, s := range rep.Annotation.Steps {
		cum = s.CumulativeErrata
		bars = append(bars, report.Bar{
			Label: fmt.Sprintf("step %d", s.Step),
			Value: float64(s.CumulativeErrata),
			Note:  fmt.Sprintf("(+%d)", s.Errata),
		})
	}
	ex.Text = report.BarChart("cumulative errata per discussion step", bars, 40)
	ex.SVG = report.SVGBarChart("Errata per classification discussion step", bars, 0)
	ex.Checks = append(ex.Checks,
		check("7 steps", len(rep.Annotation.Steps) == 7, "got %d", len(rep.Annotation.Steps)),
		check("all unique errata covered", cum == x.db.Stats().Unique, "cumulative %d", cum))
	return ex
}

// Figure9 reproduces the inter-annotator agreement curve.
func (x *Experiments) Figure9() *Experiment {
	ex := &Experiment{
		ID:         "figure-9",
		Title:      "Inter-annotator agreement before discussion",
		PaperClaim: "Agreement is generally above 80% and improves across the discussion steps.",
	}
	rep := x.db.Report()
	if rep == nil || rep.Annotation == nil {
		ex.Checks = append(ex.Checks, check("build report available", false, "database was loaded, not built"))
		return ex
	}
	var bars []report.Bar
	minAgr, first, last := 101.0, -1.0, -1.0
	for _, s := range rep.Annotation.Steps {
		bars = append(bars, report.Bar{
			Label: fmt.Sprintf("step %d", s.Step),
			Value: s.AgreementPct,
			Note:  fmt.Sprintf("(%d decisions, kappa %.2f)", s.Decisions, s.Kappa),
		})
		if s.Decisions > 20 {
			if s.AgreementPct < minAgr {
				minAgr = s.AgreementPct
			}
			if first < 0 {
				first = s.AgreementPct
			}
			last = s.AgreementPct
		}
	}
	ex.Text = report.BarChart("agreement percentage per step", bars, 40)
	ex.SVG = report.SVGBarChart("Inter-annotator agreement per step (%)", bars, 0)
	ex.Checks = append(ex.Checks,
		check("agreement generally above 80%", minAgr >= 75, "minimum %.1f%%", minAgr),
		check("agreement improves", last >= first-2, "first %.1f%% -> last %.1f%%", first, last))
	return ex
}

// Figure10 reproduces the most frequent triggers.
func (x *Experiments) Figure10() *Experiment {
	ex := &Experiment{
		ID:         "figure-10",
		Title:      "Most frequent triggers of all errata",
		PaperClaim: "Configuration-register interactions, power throttling and power-state transitions lead (O7).",
	}
	freq := analysis.FrequentCategories(x.db.core, Trigger)
	var b strings.Builder
	var svgBars []report.Bar
	topSets := map[Vendor][]string{}
	for _, v := range core.Vendors {
		var bars []report.Bar
		for i, cc := range freq[v] {
			if i >= 12 {
				break
			}
			bars = append(bars, report.Bar{Label: cc.Category, Value: float64(cc.Count)})
			topSets[v] = append(topSets[v], cc.Category)
		}
		b.WriteString(report.BarChart(v.String(), bars, 40))
		b.WriteString("\n")
		for _, bar := range bars {
			bar.Label = v.String() + " / " + bar.Label
			svgBars = append(svgBars, bar)
		}
	}
	ex.Text = b.String()
	ex.SVG = report.SVGBarChart("Most frequent triggers", svgBars, 0)
	inTop := func(v Vendor, cat string, n int) bool {
		tops := topSets[v]
		if len(tops) > n {
			tops = tops[:n]
		}
		for _, c := range tops {
			if c == cat {
				return true
			}
		}
		return false
	}
	ex.Checks = append(ex.Checks,
		check("Trg_CFG_wrg in top-3 for both vendors",
			inTop(Intel, "Trg_CFG_wrg", 3) && inTop(AMD, "Trg_CFG_wrg", 3),
			"top Intel: %v", topSets[Intel][:3]),
		check("power triggers in top-5 (O7)",
			(inTop(Intel, "Trg_POW_tht", 5) || inTop(Intel, "Trg_POW_pwc", 5)) &&
				(inTop(AMD, "Trg_POW_tht", 5) || inTop(AMD, "Trg_POW_pwc", 5)),
			"power triggers rank high"))
	return ex
}

// Figure11 reproduces the trigger-count histogram.
func (x *Experiments) Figure11() *Experiment {
	ex := &Experiment{
		ID:         "figure-11",
		Title:      "Number of errata by the number of triggers",
		PaperClaim: "14.4% of errata lack clear triggers and are excluded; 49% of the rest require at least two combined triggers.",
	}
	tc := analysis.TriggerCountHistogram(x.db.core)
	var bars []report.Bar
	counts := make([]int, 0, len(tc.PerCount))
	for n := range tc.PerCount {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for _, n := range counts {
		bars = append(bars, report.Bar{Label: fmt.Sprintf("%d triggers", n), Value: float64(tc.PerCount[n])})
	}
	ex.SVG = report.SVGBarChart("Errata by number of required triggers", bars, 0)
	ex.Text = report.BarChart("errata by number of required triggers", bars, 40) +
		fmt.Sprintf("excluded (trivial/no trigger): %d (%.1f%%)\nat least two triggers: %.1f%%\ncomplex-conditions mentions: %d\n",
			tc.Excluded, 100*tc.ExcludedFraction(), 100*tc.AtLeastTwoFraction(), tc.Complex)
	ex.Checks = append(ex.Checks,
		check("~14.4% excluded", math.Abs(tc.ExcludedFraction()-corpusprofile.TrivialTriggerFraction) < 0.04,
			"got %.1f%%", 100*tc.ExcludedFraction()),
		check("~49% need at least two triggers", math.Abs(tc.AtLeastTwoFraction()-0.49) < 0.07,
			"got %.1f%%", 100*tc.AtLeastTwoFraction()))
	return ex
}

// Figure12 reproduces the pairwise trigger correlation.
func (x *Experiments) Figure12() *Experiment {
	ex := &Experiment{
		ID:         "figure-12",
		Title:      "Pairwise cross-correlation between abstract triggers",
		PaperClaim: "Some triggers correlate strongly (debug features with VM transitions; DRAM/PCIe with power changes) while most do not (O8).",
	}
	c := analysis.TriggerCorrelation(x.db.core)
	short := make([]string, len(c.Categories))
	for i, cat := range c.Categories {
		short[i] = strings.TrimPrefix(cat, "Trg_")
	}
	ex.Text = report.Heatmap("errata requiring at least both triggers", short, c.Counts)
	ex.SVG = report.SVGHeatmap("Pairwise trigger cross-correlation", short, c.Counts, 14)
	top := c.TopPairs(10)
	var b strings.Builder
	b.WriteString("\nStrongest interactions:\n")
	dbgVmt := 0
	for _, p := range top {
		fmt.Fprintf(&b, "  %-14s x %-14s %d\n", p.A, p.B, p.Count)
	}
	dbgVmt = c.Pair("Trg_FEA_dbg", "Trg_PRV_vmt")
	ex.Text += b.String()

	// Sparsity: most off-diagonal pairs are (near) zero.
	zeroPairs, totalPairs := 0, 0
	for i := range c.Counts {
		for j := i + 1; j < len(c.Counts); j++ {
			totalPairs++
			if c.Counts[i][j] <= 1 {
				zeroPairs++
			}
		}
	}
	inTop := false
	for _, p := range top[:min(10, len(top))] {
		if (p.A == "Trg_FEA_dbg" && p.B == "Trg_PRV_vmt") || (p.A == "Trg_PRV_vmt" && p.B == "Trg_FEA_dbg") {
			inTop = true
		}
	}
	ex.Checks = append(ex.Checks,
		check("debug x VM-transition salient", inTop && dbgVmt >= 8,
			"count %d, in top-10: %v", dbgVmt, inTop),
		check("most pairs do not interact (O8)", zeroPairs*10 >= totalPairs*6,
			"%d/%d pairs with <= 1 shared erratum", zeroPairs, totalPairs),
		check("power interacts with DRAM/PCIe",
			c.Pair("Trg_EXT_ram", "Trg_POW_pwc") >= 3 && c.Pair("Trg_EXT_pci", "Trg_POW_pwc") >= 3,
			"ram x pwc = %d, pci x pwc = %d",
			c.Pair("Trg_EXT_ram", "Trg_POW_pwc"), c.Pair("Trg_EXT_pci", "Trg_POW_pwc")))
	return ex
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Figure13 reproduces the trigger classes over Intel generations.
func (x *Experiments) Figure13() *Experiment {
	ex := &Experiment{
		ID:         "figure-13",
		Title:      "Trigger classes over Intel Core generations",
		PaperClaim: "Memory-boundary triggers are absent from the two latest generations; feature and external triggers dominate; all classes are needed to cover all known bugs (O9).",
	}
	rows := analysis.ClassesOverGenerations(x.db.core)
	classes := x.db.Scheme().ClassIDs(Trigger)
	headers := append([]string{"Document"}, classes...)
	var tbl [][]string
	mbrLate, mbrEarly := 0, 0
	for _, r := range rows {
		row := []string{r.DocKey}
		for _, cl := range classes {
			row = append(row, fmt.Sprintf("%d", r.Classes[cl]))
		}
		tbl = append(tbl, row)
		if r.GenIndex >= 11 {
			mbrLate += r.Classes["Trg_MBR"]
		} else {
			mbrEarly += r.Classes["Trg_MBR"]
		}
	}
	ex.Text = report.Table(headers, tbl)
	ex.CSV = report.CSV(headers, tbl)

	// O9: before the two latest generations, every class appears.
	allClassesEarly := true
	classTotals := map[string]int{}
	for _, r := range rows {
		if r.GenIndex < 11 {
			for cl, n := range r.Classes {
				classTotals[cl] += n
			}
		}
	}
	for _, cl := range classes {
		if classTotals[cl] == 0 {
			allClassesEarly = false
		}
	}
	ex.Checks = append(ex.Checks,
		check("MBR absent in the two latest generations", mbrLate == 0, "late MBR count %d", mbrLate),
		check("MBR present earlier", mbrEarly > 0, "early MBR count %d", mbrEarly),
		check("all trigger classes necessary (O9)", allClassesEarly, "every class appears before gen 11"))
	return ex
}

// Figure14 reproduces the relative trigger-class representation.
func (x *Experiments) Figure14() *Experiment {
	ex := &Experiment{
		ID:         "figure-14",
		Title:      "Relative representation of trigger classes between Intel and AMD",
		PaperClaim: "Class representation is highly similar across vendors; only external-stimuli and feature classes differ notably (O10).",
	}
	rep := analysis.ClassRepresentation(x.db.core, Trigger)
	headers := []string{"Class", "Intel", "AMD", "Delta"}
	var rows [][]string
	maxOtherDelta := 0.0
	for i, cl := range x.db.Scheme().ClassIDs(Trigger) {
		is := rep[Intel][i].Share
		as := rep[AMD][i].Share
		delta := math.Abs(is - as)
		rows = append(rows, []string{
			cl, fmt.Sprintf("%.1f%%", 100*is), fmt.Sprintf("%.1f%%", 100*as),
			fmt.Sprintf("%.1f", 100*delta),
		})
		if cl != "Trg_EXT" && cl != "Trg_FEA" && delta > maxOtherDelta {
			maxOtherDelta = delta
		}
	}
	ex.Text = report.Table(headers, rows)
	ex.CSV = report.CSV(headers, rows)
	var shareBars []report.Bar
	for i, cl := range x.db.Scheme().ClassIDs(Trigger) {
		shareBars = append(shareBars,
			report.Bar{Label: "Intel / " + cl, Value: 100 * rep[Intel][i].Share},
			report.Bar{Label: "AMD / " + cl, Value: 100 * rep[AMD][i].Share})
	}
	ex.SVG = report.SVGBarChart("Trigger-class representation (share %)", shareBars, 0)
	ex.Checks = append(ex.Checks,
		check("non-EXT/FEA classes similar (O10)", maxOtherDelta < 0.08,
			"max delta %.1f pp", 100*maxOtherDelta))
	return ex
}

// Figure15 reproduces the external-stimuli trigger breakdown.
func (x *Experiments) Figure15() *Experiment {
	ex := &Experiment{
		ID:         "figure-15",
		Title:      "Triggers related to external stimuli between Intel and AMD",
		PaperClaim: "External-stimuli triggers differ per vendor (e.g. AMD HyperTransport/IOMMU vs Intel USB).",
	}
	br := analysis.ClassBreakdown(x.db.core, "Trg_EXT")
	ex.Text = renderBreakdown(br)
	ex.SVG = breakdownSVG("External-stimuli triggers (share %)", br)
	busIntel, busAMD := shareOf(br, Intel, "Trg_EXT_bus"), shareOf(br, AMD, "Trg_EXT_bus")
	iomIntel, iomAMD := shareOf(br, Intel, "Trg_EXT_iom"), shareOf(br, AMD, "Trg_EXT_iom")
	ex.Checks = append(ex.Checks,
		check("AMD over-represents system-bus triggers", busAMD > busIntel,
			"bus: AMD %.1f%% vs Intel %.1f%%", 100*busAMD, 100*busIntel),
		check("AMD over-represents IOMMU triggers", iomAMD > iomIntel,
			"iommu: AMD %.1f%% vs Intel %.1f%%", 100*iomAMD, 100*iomIntel))
	return ex
}

// Figure16 reproduces the feature trigger breakdown.
func (x *Experiments) Figure16() *Experiment {
	ex := &Experiment{
		ID:         "figure-16",
		Title:      "Triggers related to specific features between Intel and AMD",
		PaperClaim: "Intel over-represents custom-feature and tracing triggers compared to AMD.",
	}
	br := analysis.ClassBreakdown(x.db.core, "Trg_FEA")
	ex.Text = renderBreakdown(br)
	ex.SVG = breakdownSVG("Feature triggers (share %)", br)
	cusIntel, cusAMD := shareOf(br, Intel, "Trg_FEA_cus"), shareOf(br, AMD, "Trg_FEA_cus")
	traIntel, traAMD := shareOf(br, Intel, "Trg_FEA_tra"), shareOf(br, AMD, "Trg_FEA_tra")
	ex.Checks = append(ex.Checks,
		check("Intel over-represents custom features", cusIntel > cusAMD,
			"cus: Intel %.1f%% vs AMD %.1f%%", 100*cusIntel, 100*cusAMD),
		check("Intel over-represents tracing features", traIntel > traAMD,
			"tra: Intel %.1f%% vs AMD %.1f%%", 100*traIntel, 100*traAMD))
	return ex
}

func renderBreakdown(br map[Vendor][]analysis.CategoryShare) string {
	var b strings.Builder
	for _, v := range core.Vendors {
		var bars []report.Bar
		for _, s := range br[v] {
			bars = append(bars, report.Bar{
				Label: s.Category, Value: 100 * s.Share,
				Note: fmt.Sprintf("(%d)", s.Count),
			})
		}
		b.WriteString(report.BarChart(v.String()+" (share %)", bars, 40))
		b.WriteString("\n")
	}
	return b.String()
}

func breakdownSVG(title string, br map[Vendor][]analysis.CategoryShare) string {
	var bars []report.Bar
	for _, v := range core.Vendors {
		for _, s := range br[v] {
			bars = append(bars, report.Bar{
				Label: v.String() + " / " + s.Category,
				Value: 100 * s.Share,
				Note:  fmt.Sprintf("(%d)", s.Count),
			})
		}
	}
	return report.SVGBarChart(title, bars, 0)
}

func shareOf(br map[Vendor][]analysis.CategoryShare, v Vendor, cat string) float64 {
	for _, s := range br[v] {
		if s.Category == cat {
			return s.Share
		}
	}
	return 0
}

// Figure17 reproduces the most frequent contexts.
func (x *Experiments) Figure17() *Experiment {
	ex := &Experiment{
		ID:         "figure-17",
		Title:      "Most frequent contexts of all errata",
		PaperClaim: "Running as a virtual machine guest is the most bug-prone context (O11).",
	}
	freq := analysis.FrequentCategories(x.db.core, Context)
	var b strings.Builder
	var svgBars []report.Bar
	topIsVMG := true
	for _, v := range core.Vendors {
		var bars []report.Bar
		for _, cc := range freq[v] {
			bars = append(bars, report.Bar{Label: cc.Category, Value: float64(cc.Count)})
			svgBars = append(svgBars, report.Bar{Label: v.String() + " / " + cc.Category, Value: float64(cc.Count)})
		}
		if len(freq[v]) == 0 || freq[v][0].Category != "Ctx_PRV_vmg" {
			topIsVMG = false
		}
		b.WriteString(report.BarChart(v.String(), bars, 40))
		b.WriteString("\n")
	}
	ex.Text = b.String()
	ex.SVG = report.SVGBarChart("Most frequent contexts", svgBars, 0)
	ex.Checks = append(ex.Checks,
		check("VM guest is the top context (O11)", topIsVMG, "both vendors lead with Ctx_PRV_vmg"))
	return ex
}

// Figure18 reproduces the most frequent effects.
func (x *Experiments) Figure18() *Experiment {
	ex := &Experiment{
		ID:         "figure-18",
		Title:      "Most frequent effects for all errata",
		PaperClaim: "Corrupted registers, hangs and unpredictable behavior are the most common observable effects (O12).",
	}
	freq := analysis.FrequentCategories(x.db.core, Effect)
	var b strings.Builder
	var svgBars []report.Bar
	topOK := true
	for _, v := range core.Vendors {
		var bars []report.Bar
		for i, cc := range freq[v] {
			if i >= 10 {
				break
			}
			bars = append(bars, report.Bar{Label: cc.Category, Value: float64(cc.Count)})
			svgBars = append(svgBars, report.Bar{Label: v.String() + " / " + cc.Category, Value: float64(cc.Count)})
		}
		top3 := map[string]bool{}
		for i, cc := range freq[v] {
			if i < 3 {
				top3[cc.Category] = true
			}
		}
		if !top3["Eff_CRP_reg"] || !top3["Eff_HNG_hng"] || !top3["Eff_HNG_unp"] {
			topOK = false
		}
		b.WriteString(report.BarChart(v.String(), bars, 40))
		b.WriteString("\n")
	}
	ex.Text = b.String()
	ex.SVG = report.SVGBarChart("Most frequent effects", svgBars, 0)
	ex.Checks = append(ex.Checks,
		check("reg/hang/unpredictable lead (O12)", topOK,
			"top-3 effects are CRP_reg, HNG_hng, HNG_unp for both vendors"))
	return ex
}

// Figure19 reproduces the MSR observation-point frequencies.
func (x *Experiments) Figure19() *Experiment {
	ex := &Experiment{
		ID:         "figure-19",
		Title:      "Most frequent MSRs containing observable effects",
		PaperClaim: "Machine-check status registers witness bugs most often (7.1-8.5% of unique errata), followed by IBS registers and performance counters (O13).",
	}
	freq := analysis.MSRFrequency(x.db.core)
	var b strings.Builder
	var svgBars []report.Bar
	mcaTop := true
	var mcaShares []float64
	for _, v := range core.Vendors {
		var bars []report.Bar
		for i, mc := range freq[v] {
			if i >= 8 {
				break
			}
			bars = append(bars, report.Bar{
				Label: mc.MSR, Value: 100 * mc.Share,
				Note: fmt.Sprintf("(%d)", mc.Count),
			})
			svgBars = append(svgBars, report.Bar{
				Label: v.String() + " / " + mc.MSR, Value: 100 * mc.Share,
			})
		}
		if len(freq[v]) == 0 || (freq[v][0].MSR != "MCx_STATUS" && freq[v][0].MSR != "MCx_ADDR") {
			mcaTop = false
		}
		for _, mc := range freq[v] {
			if mc.MSR == "MCx_STATUS" {
				mcaShares = append(mcaShares, mc.Share)
			}
		}
		b.WriteString(report.BarChart(v.String()+" (% of unique errata)", bars, 40))
		b.WriteString("\n")
	}
	ex.Text = b.String()
	ex.SVG = report.SVGBarChart("MSRs witnessing bugs (% of unique errata)", svgBars, 0)
	inRange := len(mcaShares) == 2
	for _, s := range mcaShares {
		if s < 0.04 || s > 0.15 {
			inRange = false
		}
	}
	ex.Checks = append(ex.Checks,
		check("machine-check registers lead (O13)", mcaTop, "MCx_STATUS/MCx_ADDR on top"),
		check("MCx_STATUS share near the paper's 7.1-8.5% band", inRange, "shares %v", mcaShares))
	return ex
}
