package rememberr

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
)

// TestBuildIndexSingleflight holds one index construction open and
// proves deterministically that every concurrent caller joins it: the
// injected builder runs exactly once and all callers get pointer-equal
// results. Run under -race.
func TestBuildIndexSingleflight(t *testing.T) {
	gt, err := corpus.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	db := FromCore(gt.DB)

	entered := make(chan struct{})
	gate := make(chan struct{})
	var builds int
	leaderDone := make(chan *index.Index, 1)
	go func() {
		leaderDone <- db.buildIndexWith(func(c *core.Database) *index.Index {
			builds++
			close(entered)
			<-gate
			return index.Build(c)
		})
	}()
	<-entered

	// While the leader is blocked inside the builder, every other
	// caller must join its flight — their builder must never run. The
	// flightJoined seam reports each join, so the gate opens only
	// after all joiners are provably attached to the leader's flight.
	const joiners = 100
	var joinedWG sync.WaitGroup
	joinedWG.Add(joiners)
	db.flightJoined = func() { joinedWG.Done() }
	results := make([]*index.Index, joiners)
	var wg sync.WaitGroup
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = db.buildIndexWith(func(*core.Database) *index.Index {
				t.Error("joiner executed its own index build")
				return nil
			})
		}(i)
	}
	joinedWG.Wait()
	close(gate)
	wg.Wait()
	leader := <-leaderDone

	if builds != 1 {
		t.Fatalf("builder ran %d times, want 1", builds)
	}
	if leader == nil {
		t.Fatal("leader got nil index")
	}
	for i, ix := range results {
		if ix != leader {
			t.Fatalf("joiner %d got a different index pointer", i)
		}
	}
	if db.Index() != leader {
		t.Fatal("Index() does not expose the singleflight result")
	}

	// After the flight completes, a fresh call builds a new snapshot
	// (BuildIndex stays a rebuild, not a cache).
	if again := db.BuildIndex(); again == leader {
		t.Fatal("post-flight BuildIndex returned the stale index")
	}
}

// TestBuildIndexConcurrentSmoke hammers the real BuildIndex from many
// goroutines under -race; every caller must get a usable index.
func TestBuildIndexConcurrentSmoke(t *testing.T) {
	gt, err := corpus.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	db := FromCore(gt.DB)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ix := db.BuildIndex()
			if ix == nil || ix.Size() == 0 {
				t.Error("BuildIndex returned an unusable index")
			}
		}()
	}
	wg.Wait()
	if db.Index() == nil {
		t.Fatal("no index stored after concurrent builds")
	}
}

// TestFromCoreContract pins the provenance contract of store-loaded
// databases: Report is nil, Index is nil until BuildIndex, and the
// stats/serving accessors work without panicking.
func TestFromCoreContract(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	db := FromCore(gt.DB)
	if db.Report() != nil {
		t.Error("FromCore database has a non-nil Report")
	}
	if db.Index() != nil {
		t.Error("FromCore database has a non-nil Index before BuildIndex")
	}
	if s := db.Stats(); s.Total == 0 || s.Documents == 0 {
		t.Errorf("FromCore stats empty: %+v", s)
	}
	if len(db.Errata()) == 0 || len(db.Unique()) == 0 || len(db.Documents()) == 0 {
		t.Error("FromCore accessors returned empty data")
	}
	if db.Scheme() == nil {
		t.Error("FromCore database has no scheme")
	}
	ix := db.BuildIndex()
	if ix == nil || db.Index() != ix {
		t.Error("BuildIndex did not store the index")
	}
}
