// Testing-campaign planner: the Section VI application of the paper.
//
// A design-test team wants to direct a dynamic testing campaign
// (simulation, emulation or silicon testing). RemembERR tells them which
// input types empirically interact to surface bugs, in which contexts to
// run, and where to look — so the campaign applies conjunctive trigger
// sets and monitors only a minimal set of observation points.
package main

import (
	"fmt"
	"log"

	rememberr "repro"
)

func main() {
	db, _, err := rememberr.Build(rememberr.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}

	// General plan: the ten strongest trigger interactions in the
	// corpus, each with contexts and observation points.
	fmt.Println("=== general campaign plan (top trigger interactions) ===")
	plan := db.PlanCampaign(rememberr.DefaultCampaignOptions())
	fmt.Print(rememberr.RenderPlan(plan))

	// The paper's concrete example: power-management testing. Errata
	// show that DRAM- and PCIe-related bugs "will never be triggered
	// until power levels change", so a power-focused campaign must pair
	// power transitions with peripheral activity.
	fmt.Println("\n=== power-management focus (Trg_POW) ===")
	powPlan := db.PlanCampaign(rememberr.CampaignOptions{
		MaxDirectives: 6,
		MinSupport:    2,
		FocusClass:    "Trg_POW",
	})
	fmt.Print(rememberr.RenderPlan(powPlan))

	// Virtualization focus: O11 says VM guests are the most bug-prone
	// context; plan directives around VM transitions.
	fmt.Println("\n=== virtualization focus (Trg_PRV) ===")
	vmPlan := db.PlanCampaign(rememberr.CampaignOptions{
		MaxDirectives: 6,
		MinSupport:    2,
		FocusClass:    "Trg_PRV",
	})
	fmt.Print(rememberr.RenderPlan(vmPlan))

	// Observation strategy: which registers give the cheapest online
	// bug witness? (Figure 19 / O13.)
	fmt.Println("\n=== low-footprint observation points ===")
	for _, msr := range []string{"MCx_STATUS", "MCx_ADDR", "IA32_PMCx", "IBS_OP_DATA"} {
		n := db.Query().ObservableIn(msr).Count()
		fmt.Printf("  %-16s witnesses %3d unique errata\n", msr, n)
	}

	// Feed a fuzzer: emit the directives as seed descriptors.
	fmt.Println("\n=== fuzzer seed descriptors ===")
	for _, d := range plan[:3] {
		fmt.Printf("seed{triggers: %v, contexts: %v, monitors: %v}\n",
			d.Triggers, d.Contexts, d.MSRs)
	}
}
