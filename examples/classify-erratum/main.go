// Classify a new erratum: the cross-ISA extension use case.
//
// RemembERR's scheme is ISA-agnostic above the concrete level, so a
// team maintaining a RISC-V or ARM design can classify their own errata
// against the same categories. This example feeds a fresh erratum text
// through the regex-assisted classifier, shows the syntax-highlighted
// relevant regions, lists the decisions a human still has to take, and
// extends the taxonomy with a new ISA-specific category.
package main

import (
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/taxonomy"

	// Wire the built-in rule pack and corpus profile as the defaults.
	_ "repro/plugins/defaults"
)

func main() {
	engine := classify.NewEngine()

	// A new erratum, as a test engineer would write it.
	erratum := &core.Erratum{
		DocKey: "riscv-xy", ID: "XY042", Seq: 1,
		Title: "Hart May Hang When Resuming From Deep Sleep During PCIe Traffic",
		Description: "When the core resumes from the C6 power state and ongoing PCIe traffic " +
			"is present on the link, the processor may hang. " +
			"This erratum applies while running as a virtual machine guest. " +
			"The affected state may be observed in the MCx_STATUS register.",
		Implication: "The system may be affected as described. The processor may hang.",
		Workaround:  "It is possible for the BIOS to contain a workaround for this erratum.",
		Status:      "No fix planned.",
	}

	rep := engine.Classify(erratum)

	// The syntax-highlighting tool the paper built for its annotators:
	// '!' marks auto-included regions, '?' marks regions needing review.
	fmt.Println("=== highlighted relevant regions ===")
	fmt.Println(classify.Highlight(erratum, rep))

	scheme := engine.Scheme()
	fmt.Println("auto-included categories:")
	for _, cat := range rep.IncludedCategories(scheme) {
		fmt.Printf("  %-14s  %q\n", cat, rep.Concrete[cat])
	}
	fmt.Println("undecided (needs a human):")
	for _, cat := range rep.UndecidedPairs(scheme) {
		fmt.Printf("  %-14s  %q\n", cat, rep.Concrete[cat])
	}
	fmt.Printf("observable MSRs: %v\n", rep.MSRs)
	fmt.Printf("workaround category: %s; fix status: %s\n\n", rep.WorkaroundCat, rep.Fix)

	// Cross-ISA extension: register a RISC-V-specific trigger category.
	reg := taxonomy.NewRegistry()
	if err := reg.AddCategory("Trg_FEA", "vec", "a RISC-V vector (RVV) instruction interaction"); err != nil {
		log.Fatal(err)
	}
	if err := reg.AddClass(taxonomy.Trigger, "CLIC", "related to the core-local interrupt controller"); err != nil {
		log.Fatal(err)
	}
	if err := reg.AddCategory("Trg_CLIC", "nst", "nested CLIC interrupt preemption"); err != nil {
		log.Fatal(err)
	}
	extended := reg.Scheme()
	fmt.Printf("extended scheme: %d abstract categories (%d triggers)\n",
		extended.NumCategories(-1), extended.NumCategories(taxonomy.Trigger))

	// Annotate the erratum against the extended scheme.
	ann := core.Annotation{
		Triggers: []core.Item{
			{Category: "Trg_POW_pwc", Concrete: "the core resumes from the C6 power state"},
			{Category: "Trg_EXT_pci", Concrete: "ongoing PCIe traffic is present on the link"},
			{Category: "Trg_CLIC_nst", Concrete: "a CLIC interrupt preempts the resume sequence"},
		},
		Effects: []core.Item{{Category: "Eff_HNG_hng", Concrete: "the hart hangs"}},
	}
	if err := ann.Validate(extended); err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotation with the ISA-specific category validates against the extended scheme")
}
