// Heredity audit: the security-team scenario of Section IV-B2.
//
// Long-lived bugs such as Meltdown showed that the same flaw can ship in
// many consecutive designs; an attacker who finds it early can exploit
// it for years. This example audits bug heredity: which bugs persist
// across generations, how long they stayed, whether they were known
// before the next design shipped, and where bugs were discovered first
// (forward- vs backward-latent).
package main

import (
	"fmt"
	"log"

	rememberr "repro"
	"repro/internal/heredity"
	"repro/internal/report"
)

func main() {
	db, _, err := rememberr.Build(rememberr.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	c := db.Core()

	// 1. The heredity matrix (Figure 3): shared bugs between documents.
	m := heredity.SharedMatrix(c, rememberr.Intel)
	fmt.Println(report.Heatmap("shared unique errata between Intel documents", m.Labels, m.Counts))

	// 2. The longest-lived bugs (Observation O3).
	fmt.Println("longest-lived Intel bugs:")
	for _, lin := range heredity.LongestLineages(c, 8) {
		fmt.Printf("  %-8s spans %2d generations across %d documents\n",
			lin.Key, lin.GenSpan, len(lin.Docs))
	}

	// 3. Were the bugs shared by generations 6-10 known before each
	//    subsequent generation shipped? (Figure 4 / Observation O4.)
	docs := []string{"intel-06", "intel-07", "intel-08", "intel-10"}
	shared := heredity.SharedKeys(c, docs...)
	fmt.Printf("\nbugs shared by all Intel generations 6-10: %d\n", len(shared))
	for i := 0; i+1 < len(docs); i++ {
		known := heredity.KnownBeforeNextRelease(c, shared, docs[i], docs[i+1])
		later := db.Document(docs[i+1])
		fmt.Printf("  %3d/%d already disclosed in %s before %s shipped (%s)\n",
			known, len(shared), docs[i], docs[i+1], later.Released.Format("2006-01"))
	}

	// 4. Forward- vs backward-latent errata (Figure 5).
	res := heredity.ForwardBackwardLatent(c, rememberr.Intel)
	fmt.Printf("\nforward-latent errata:  %d (bug found in an old design, later confirmed in a newer one)\n",
		res.ForwardTotal)
	fmt.Printf("backward-latent errata: %d (bug found in a new design, later confirmed in an older one)\n",
		res.BackwardTotal)

	// 5. Security angle: long-lived bugs reachable from a VM guest are
	//    the highest-risk population.
	risky := 0
	sharedSet := map[string]bool{}
	for _, k := range shared {
		sharedSet[k] = true
	}
	for _, e := range db.Query().Vendor(rememberr.Intel).WithCategory("Ctx_PRV_vmg").Unique() {
		if sharedSet[e.Key] {
			risky++
		}
	}
	fmt.Printf("\n%d of the %d long-lived shared bugs are triggerable from a VM guest context\n",
		risky, len(shared))
}
