// Quickstart: build the RemembERR database end to end, print the corpus
// statistics, the most frequent triggers, and one erratum in both the
// classic and the proposed machine-readable format.
package main

import (
	"fmt"
	"log"

	rememberr "repro"
	"repro/internal/core"
)

func main() {
	// Build runs the whole pipeline: corpus acquisition, parsing,
	// deduplication, classification with simulated four-eyes
	// annotation, and disclosure-date inference. The seed makes the
	// database reproducible bit for bit.
	db, rep, err := rememberr.Build(rememberr.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("RemembERR database built:\n")
	fmt.Printf("  %d errata across %d documents; %d unique after deduplication\n",
		st.Total, st.Documents, st.Unique)
	fmt.Printf("  Intel: %d entries, %d unique; AMD: %d entries, %d unique\n",
		st.IntelTotal, st.IntelUnique, st.AMDTotal, st.AMDUnique)
	fmt.Printf("  parser diagnostics (errata in errata): %d\n", len(rep.Diagnostics))
	fmt.Printf("  manually confirmed duplicate pairs: %d\n\n", rep.Dedup.ConfirmedPairs)

	// The paper's key insight: triggers are conjunctive, observations
	// disjunctive. Count the errata needing at least two triggers.
	multi := db.Query().MinTriggers(2).Count()
	classified := db.Query().MinTriggers(1).Count()
	fmt.Printf("%d of %d classified errata (%.0f%%) need at least two combined triggers\n\n",
		multi, classified, 100*float64(multi)/float64(classified))

	// Run one of the paper's experiments directly.
	fig10 := rememberr.NewExperiments(db).Figure10()
	fmt.Println(fig10.Text)

	// Show an erratum in both formats.
	var target *rememberr.Erratum
	for _, e := range db.Unique() {
		if len(e.Ann.Triggers) >= 2 && len(e.Ann.Contexts) >= 1 {
			target = e
			break
		}
	}
	fmt.Println("--- classic format ---")
	fmt.Printf("ID: %s\nTitle: %s\nDescription: %s\nWorkaround: %s\nStatus: %s\n\n",
		target.ID, target.Title, target.Description, target.Workaround, target.Status)
	fmt.Println("--- proposed format (Table VII) ---")
	fmt.Print(core.Structure(target).Render())
}
