// Directed fuzzing case study: does RemembERR-derived knowledge
// actually make a dynamic testing campaign better? (Section VI.)
//
// A simulated design under test hides bugs sampled from the database's
// own annotated errata. Two campaigns compete with identical budgets
// (same number of tests, same per-test trigger budget, same observation
// budget): uniform constrained-random verification, and a strategy
// seeded with PlanCampaign directives — the empirically interacting
// trigger sets, the contexts they need and the cheapest observation
// points. The directed campaign detects a multiple of the baseline's
// bugs, because it (a) pins conjunctive trigger sets that random
// sampling almost never assembles, and (b) looks where the effects
// actually show.
package main

import (
	"fmt"
	"log"

	rememberr "repro"
)

func main() {
	db, _, err := rememberr.Build(rememberr.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== directed vs random campaign, default budgets ===")
	res, err := db.SimulateDirectedCampaign(rememberr.DefaultCaseStudyOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rememberr.RenderCaseStudy(res))

	// Sweep the test budget: the directed advantage is largest when
	// budgets are tight.
	fmt.Println("\n=== budget sweep ===")
	fmt.Printf("%8s  %8s  %8s  %7s\n", "tests", "directed", "random", "ratio")
	for _, tests := range []int{250, 1000, 4000, 16000} {
		opts := rememberr.DefaultCaseStudyOptions()
		opts.Tests = tests
		r, err := db.SimulateDirectedCampaign(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %8d  %8d  %6.2fx\n",
			tests, r.Directed.Detected, r.Random.Detected, r.Speedup)
	}

	// Observation budget matters too: with only two observation points,
	// knowing *where to look* dominates.
	fmt.Println("\n=== observation-budget sweep (2000 tests) ===")
	fmt.Printf("%8s  %8s  %8s  %7s\n", "monitors", "directed", "random", "ratio")
	for _, budget := range []int{1, 2, 4, 8} {
		opts := rememberr.DefaultCaseStudyOptions()
		opts.ObservationBudget = budget
		r, err := db.SimulateDirectedCampaign(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %8d  %8d  %6.2fx\n",
			budget, r.Directed.Detected, r.Random.Detected, r.Speedup)
	}
}
