package rememberr

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/corpus"
)

// queryFilters is the filter vocabulary for the equivalence matrix.
// Every Query method appears at least once, with operands that hit the
// synthetic corpus.
var queryFilters = []struct {
	name  string
	apply func(*Query) *Query
}{
	{"vendor-intel", func(q *Query) *Query { return q.Vendor(Intel) }},
	{"vendor-amd", func(q *Query) *Query { return q.Vendor(AMD) }},
	{"doc-intel-06", func(q *Query) *Query { return q.InDocument("intel-06") }},
	{"cat-pow-pwc", func(q *Query) *Query { return q.WithCategory("Trg_POW_pwc") }},
	{"cat-hng", func(q *Query) *Query { return q.WithCategory("Eff_HNG_hng") }},
	{"cat-unknown", func(q *Query) *Query { return q.WithCategory("Trg_XXX_xxx") }},
	{"any-hng-crh", func(q *Query) *Query { return q.AnyCategory("Eff_HNG_hng", "Eff_HNG_crh") }},
	{"class-trg-pow", func(q *Query) *Query { return q.WithClass("Trg_POW") }},
	{"class-eff-hng", func(q *Query) *Query { return q.WithClass("Eff_HNG") }},
	{"all-triggers", func(q *Query) *Query { return q.WithAllTriggers("Trg_POW_pwc", "Trg_MOP_fen") }},
	{"min-triggers-2", func(q *Query) *Query { return q.MinTriggers(2) }},
	{"workaround-bios", func(q *Query) *Query { return q.Workaround(WorkaroundCategory(1)) }},
	{"fix-none", func(q *Query) *Query { return q.Fix(FixStatus(0)) }},
	{"complex", func(q *Query) *Query { return q.Complex() }},
	{"sim-only", func(q *Query) *Query { return q.SimulationOnly() }},
	{"disclosed-2010s", func(q *Query) *Query {
		return q.DisclosedBetween(
			time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
			time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))
	}},
	{"title-the", func(q *Query) *Query { return q.TitleContains("the") }},
	{"msr-mcx", func(q *Query) *Query { return q.ObservableIn("MCx_STATUS") }},
}

func sameErrata(a, b []*Erratum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkEquivalence runs one filter combination on both execution paths
// and requires identical result slices (same pointers, same order).
func checkEquivalence(t *testing.T, db *Database, label string, combo []int) {
	t.Helper()
	q := db.Query()
	name := label
	for _, fi := range combo {
		q = queryFilters[fi].apply(q)
		name += "+" + queryFilters[fi].name
	}
	iq := q.compiled()
	if iq == nil {
		t.Fatalf("%s: no index built", name)
	}
	if got, want := iq.All(), q.allClosure(); !sameErrata(got, want) {
		t.Errorf("%s: All() indexed %d != closure %d", name, len(got), len(want))
	}
	if got, want := iq.Unique(), q.uniqueClosure(); !sameErrata(got, want) {
		t.Errorf("%s: Unique() indexed %d != closure %d", name, len(got), len(want))
	}
}

// TestQueryIndexClosureEquivalence proves the indexed and closure query
// paths return identical errata sets (and orderings) for a generated
// matrix of filter combinations: every single filter, every pair, and a
// sample of triples, across six corpus seeds plus the fully built
// default database (the only one carrying disclosure dates).
func TestQueryIndexClosureEquivalence(t *testing.T) {
	dbs := map[string]*Database{"built-seed1": FromCore(testDB(t).Core())}
	for seed := int64(1); seed <= 6; seed++ {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		dbs[fmt.Sprintf("corpus-seed%d", seed)] = FromCore(gt.DB)
	}
	for label, db := range dbs {
		if db.BuildIndex() == nil || db.Index() == nil {
			t.Fatalf("%s: BuildIndex failed", label)
		}
		for i := range queryFilters {
			checkEquivalence(t, db, label, []int{i})
		}
		for i := range queryFilters {
			for j := i + 1; j < len(queryFilters); j++ {
				checkEquivalence(t, db, label, []int{i, j})
			}
		}
		// Triples: a rolling sample rather than the full cube.
		for i := range queryFilters {
			j := (i + 5) % len(queryFilters)
			k := (i + 11) % len(queryFilters)
			if i != j && j != k && i != k {
				checkEquivalence(t, db, label, []int{i, j, k})
			}
		}
	}
}

// TestQueryIndexedPinnedCounts re-pins the headline query counts from
// rememberr_test on the indexed path, so semantic drift between the
// engines cannot hide behind the equivalence harness.
func TestQueryIndexedPinnedCounts(t *testing.T) {
	db := FromCore(testDB(t).Core())
	db.BuildIndex()
	if got := db.Query().Count(); got != db.Core().ComputeStats().Unique {
		t.Errorf("unfiltered indexed Count = %d, want %d", got, db.Core().ComputeStats().Unique)
	}
	if got := len(db.Query().Vendor(Intel).All()); got != 2057 {
		t.Errorf("indexed Vendor(Intel).All() = %d, want 2057", got)
	}
	if got := db.Query().SimulationOnly().Vendor(AMD).Count(); got != 5 {
		t.Errorf("indexed SimulationOnly+AMD = %d, want 5", got)
	}
	if got := db.Query().SimulationOnly().Vendor(Intel).Count(); got != 1 {
		t.Errorf("indexed SimulationOnly+Intel = %d, want 1", got)
	}
	if db.Query().InDocument("intel-12").Vendor(AMD).Count() != 0 {
		t.Error("indexed contradictory filters matched")
	}
}

// TestQueryReuseContract pins the documented reuse semantics: queries
// are immutable, terminal operations are repeatable, and branching a
// base query never leaks filters between branches — the guard against
// a Query reused after Unique() accumulating stale filters.
func TestQueryReuseContract(t *testing.T) {
	db := testDB(t)

	base := db.Query().Vendor(Intel)
	before := base.Count()

	// Terminal ops are repeatable and side-effect free.
	if again := base.Count(); again != before {
		t.Fatalf("repeated Count differs: %d then %d", before, again)
	}
	u1 := base.Unique()
	u2 := base.Unique()
	if !sameErrata(u1, u2) {
		t.Fatal("repeated Unique() returned different results")
	}

	// Branching after a terminal op must not mutate the base: the two
	// derived queries see exactly one extra filter each, and the base
	// keeps its original result set.
	hangs := base.WithCategory("Eff_HNG_hng")
	crashes := base.WithCategory("Eff_HNG_crh")
	if len(base.filters) != 1 {
		t.Fatalf("base accumulated %d filters, want 1", len(base.filters))
	}
	if len(hangs.filters) != 2 || len(crashes.filters) != 2 {
		t.Fatalf("branches have %d/%d filters, want 2/2", len(hangs.filters), len(crashes.filters))
	}
	if got := base.Count(); got != before {
		t.Fatalf("base Count changed after branching: %d, want %d", got, before)
	}
	if hangs.Count() >= before || crashes.Count() >= before {
		t.Fatal("branch filters did not apply")
	}

	// Filters added after a terminal op compose on the derived query
	// only (one-shot building is not required).
	narrowed := hangs.MinTriggers(2)
	if narrowed.Count() > hangs.Count() {
		t.Fatal("narrowing increased the result set")
	}
	if len(hangs.filters) != 2 {
		t.Fatal("narrowing mutated its receiver")
	}

	// The same contract holds on the indexed path.
	idb := FromCore(db.Core())
	idb.BuildIndex()
	ibase := idb.Query().Vendor(Intel)
	if got := ibase.Count(); got != before {
		t.Fatalf("indexed base Count = %d, want %d", got, before)
	}
	_ = ibase.WithCategory("Eff_HNG_hng").Unique()
	if got := ibase.Count(); got != before {
		t.Fatalf("indexed base mutated by branch: %d, want %d", got, before)
	}
}
