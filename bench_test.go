package rememberr

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (regenerating it from the built database), plus
// pipeline-stage benchmarks and the ablation benchmarks called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports the cost of recomputing that result
// from the in-memory database; the pipeline benchmarks report the cost
// of building the database itself.

import (
	"runtime"
	"strconv"
	"testing"

	"repro/internal/annotate"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dedup"
	"repro/internal/specdoc"
	"repro/internal/store"
	"repro/internal/textsim"
	"repro/internal/timeline"
	corpusprofile "repro/plugins/corpusprofile/intelamd"
)

// benchDB returns the shared built database (built once per process).
func benchDB(b *testing.B) *Database {
	b.Helper()
	return testDB(b)
}

func benchExperiment(b *testing.B, run func(*Experiments) *Experiment) {
	db := benchDB(b)
	x := NewExperiments(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := run(x)
		if !ex.Passed() {
			b.Fatalf("%s: checks failed", ex.ID)
		}
	}
}

// ----- Tables -----

func BenchmarkTable1ExampleErrata(b *testing.B) {
	benchExperiment(b, (*Experiments).Table1)
}

func BenchmarkTable3DocumentInventory(b *testing.B) {
	benchExperiment(b, (*Experiments).Table3)
}

func BenchmarkTable4to6Taxonomy(b *testing.B) {
	benchExperiment(b, (*Experiments).Table4to6)
}

func BenchmarkTable7ProposedFormat(b *testing.B) {
	benchExperiment(b, (*Experiments).Table7)
}

func BenchmarkCorpusTotals(b *testing.B) {
	benchExperiment(b, (*Experiments).CorpusTotals)
}

func BenchmarkDecisionReduction(b *testing.B) {
	benchExperiment(b, (*Experiments).DecisionReduction)
}

// ----- Figures -----

func BenchmarkFigure2Timeline(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure2)
}

func BenchmarkFigure3Heredity(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure3)
}

func BenchmarkFigure4SharedDisclosure(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure4)
}

func BenchmarkFigure5Latency(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure5)
}

func BenchmarkFigure6Workarounds(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure6)
}

func BenchmarkFigure7Fixes(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure7)
}

func BenchmarkFigure8Steps(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure8)
}

func BenchmarkFigure9Agreement(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure9)
}

func BenchmarkFigure10Triggers(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure10)
}

func BenchmarkFigure11TriggerCounts(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure11)
}

func BenchmarkFigure12Correlation(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure12)
}

func BenchmarkFigure13ClassEvolution(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure13)
}

func BenchmarkFigure14VendorClasses(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure14)
}

func BenchmarkFigure15External(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure15)
}

func BenchmarkFigure16Features(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure16)
}

func BenchmarkFigure17Contexts(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure17)
}

func BenchmarkFigure18Effects(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure18)
}

func BenchmarkFigure19MSRs(b *testing.B) {
	benchExperiment(b, (*Experiments).Figure19)
}

// BenchmarkObservations re-evaluates O1-O13.
func BenchmarkObservations(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := db.Observations()
		for _, o := range obs {
			if !o.Holds {
				b.Fatalf("%s fails", o.ID)
			}
		}
	}
}

// ----- Pipeline stages -----

// BenchmarkPipelineGenerate measures synthetic corpus generation.
func BenchmarkPipelineGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := corpus.Generate(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineRender measures document rendering (28 documents,
// 2,563 errata).
func BenchmarkPipelineRender(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	}
}

// BenchmarkPipelineParse measures parsing the full corpus.
func BenchmarkPipelineParse(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := specdoc.ParseAll(texts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineDedup measures deduplication of the full corpus.
func BenchmarkPipelineDedup(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	truth := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truth[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(x, y *core.Erratum) bool {
		return truth[corpus.EntryRef(x)] != "" && truth[corpus.EntryRef(x)] == truth[corpus.EntryRef(y)]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, _, err := specdoc.ParseAll(texts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := dedup.Deduplicate(db, dedup.Options{Oracle: oracle})
		if err != nil {
			b.Fatal(err)
		}
		if res.UniqueIntel != corpusprofile.TargetIntelUnique {
			b.Fatalf("unique = %d", res.UniqueIntel)
		}
	}
}

// benchWorkerCounts returns the worker counts exercised by the
// parallel pipeline benchmarks: sequential, and the machine's full
// GOMAXPROCS when that differs.
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkPipelineRenderParallel measures document rendering across
// worker counts.
func BenchmarkPipelineRenderParallel(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts() {
		b.Run("workers-"+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				specdoc.WriteAllParallel(gt.DB, specdoc.WriteOptions{}, w)
			}
		})
	}
}

// BenchmarkPipelineParseParallel measures parsing across worker counts.
func BenchmarkPipelineParseParallel(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	for _, w := range benchWorkerCounts() {
		b.Run("workers-"+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := specdoc.ParseAllParallel(texts, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineDedupParallel measures deduplication across worker
// counts (candidate scoring parallelizes; oracle review stays
// sequential).
func BenchmarkPipelineDedupParallel(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	truth := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truth[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(x, y *core.Erratum) bool {
		return truth[corpus.EntryRef(x)] != "" && truth[corpus.EntryRef(x)] == truth[corpus.EntryRef(y)]
	}
	for _, w := range benchWorkerCounts() {
		b.Run("workers-"+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, _, err := specdoc.ParseAll(texts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := dedup.Deduplicate(db, dedup.Options{Oracle: oracle, Parallelism: w})
				if err != nil {
					b.Fatal(err)
				}
				if res.UniqueIntel != corpusprofile.TargetIntelUnique {
					b.Fatalf("unique = %d", res.UniqueIntel)
				}
			}
		})
	}
}

// BenchmarkPipelineBuildParallel measures the end-to-end build across
// worker counts.
func BenchmarkPipelineBuildParallel(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run("workers-"+strconv.Itoa(w), func(b *testing.B) {
			opts := DefaultBuildOptions()
			opts.Parallelism = w
			for i := 0; i < b.N; i++ {
				if _, _, err := Build(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineClassify measures the regex engine on single errata.
func BenchmarkPipelineClassify(b *testing.B) {
	db := benchDB(b)
	engine := classify.NewEngine()
	errata := db.Unique()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Classify(errata[i%len(errata)])
	}
}

// BenchmarkPipelineAnnotate measures the full four-eyes protocol.
func BenchmarkPipelineAnnotate(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	truth := make(map[string]*core.Annotation)
	for _, e := range gt.DB.Errata() {
		ann := e.Ann
		truth[corpus.EntryRef(e)] = &ann
	}
	truthFn := func(e *core.Erratum) *core.Annotation { return truth[corpus.EntryRef(e)] }
	engine := classify.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, _, err := specdoc.ParseAll(texts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dedup.Deduplicate(db, dedup.Options{}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := annotate.Run(db, engine, truthFn, annotate.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineBuild measures the end-to-end build.
func BenchmarkPipelineBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(DefaultBuildOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreEncode measures JSON serialization of the database.
func BenchmarkStoreEncode(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Encode(db.Core()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery measures a composite query over the database.
func BenchmarkQuery(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := db.Query().Vendor(Intel).WithClass("Trg_POW").MinTriggers(2).Count()
		if n == 0 {
			b.Fatal("empty query result")
		}
	}
}

// BenchmarkCampaignPlan measures plan derivation.
func BenchmarkCampaignPlan(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(db.PlanCampaign(DefaultCampaignOptions())) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// ----- Ablations (DESIGN.md section 6) -----

// BenchmarkAblationSimilarityMetrics compares the title-similarity
// metrics available for Intel duplicate ranking: runtime and whether the
// recovered unique count stays exact.
func BenchmarkAblationSimilarityMetrics(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	truth := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truth[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(x, y *core.Erratum) bool {
		return truth[corpus.EntryRef(x)] != "" && truth[corpus.EntryRef(x)] == truth[corpus.EntryRef(y)]
	}
	for _, metric := range []textsim.Metric{
		textsim.MetricJaccard, textsim.MetricDice,
		textsim.MetricLevenshtein, textsim.MetricShingle2,
	} {
		b.Run(string(metric), func(b *testing.B) {
			uniq := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, _, err := specdoc.ParseAll(texts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := dedup.Deduplicate(db, dedup.Options{Metric: metric, Oracle: oracle})
				if err != nil {
					b.Fatal(err)
				}
				uniq = res.UniqueIntel
			}
			b.ReportMetric(float64(uniq), "unique")
		})
	}
}

// BenchmarkAblationDedupLSH compares exact O(n^2) candidate generation
// against the MinHash/LSH index on the full corpus.
func BenchmarkAblationDedupLSH(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	truth := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truth[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(x, y *core.Erratum) bool {
		return truth[corpus.EntryRef(x)] != "" && truth[corpus.EntryRef(x)] == truth[corpus.EntryRef(y)]
	}
	for _, useLSH := range []bool{false, true} {
		name := "exact-scan"
		if useLSH {
			name = "minhash-lsh"
		}
		b.Run(name, func(b *testing.B) {
			uniq := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, _, err := specdoc.ParseAll(texts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := dedup.Deduplicate(db, dedup.Options{Oracle: oracle, UseLSH: useLSH})
				if err != nil {
					b.Fatal(err)
				}
				uniq = res.UniqueIntel
			}
			b.ReportMetric(float64(uniq), "unique")
		})
	}
}

// BenchmarkAblationClassifyKernel ablates the two layers of the
// classify matching kernel — the Aho-Corasick literal prefilter and the
// per-clause memo cache — on the built database's unique errata. All
// four configurations produce bit-identical reports (enforced by the
// classify equivalence tests); this grid measures what each layer buys.
func BenchmarkAblationClassifyKernel(b *testing.B) {
	db := benchDB(b)
	errata := db.Unique()
	grid := []struct {
		name string
		cfg  classify.Config
	}{
		{"naive", classify.Config{}},
		{"prefilter", classify.Config{Prefilter: true}},
		{"memo", classify.Config{Memo: true}},
		{"prefilter-memo", classify.Config{Prefilter: true, Memo: true}},
	}
	for _, g := range grid {
		b.Run("impl="+g.name, func(b *testing.B) {
			engine := classify.NewEngineConfig(g.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Classify(errata[i%len(errata)])
			}
		})
	}
}

// BenchmarkAblationInterpolation compares disclosure inference with and
// without sequential-number interpolation.
func BenchmarkAblationInterpolation(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	db, _, err := specdoc.ParseAll(texts)
	if err != nil {
		b.Fatal(err)
	}
	for _, interp := range []bool{true, false} {
		name := "interpolate"
		if !interp {
			name = "first-revision-fallback"
		}
		b.Run(name, func(b *testing.B) {
			var st timeline.Stats
			for i := 0; i < b.N; i++ {
				st = timeline.InferDisclosures(db, timeline.Options{Interpolate: interp})
			}
			b.ReportMetric(float64(st.Interpolated), "interpolated")
			b.ReportMetric(float64(st.Fallback), "fallback")
		})
	}
}

// BenchmarkAblationAnnotatorError sweeps the annotator error rate and
// reports the first-step agreement, showing how the protocol's
// discussion load scales with annotator quality.
func BenchmarkAblationAnnotatorError(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	truth := make(map[string]*core.Annotation)
	for _, e := range gt.DB.Errata() {
		ann := e.Ann
		truth[corpus.EntryRef(e)] = &ann
	}
	truthFn := func(e *core.Erratum) *core.Annotation { return truth[corpus.EntryRef(e)] }
	engine := classify.NewEngine()
	for _, errRate := range []float64{0.02, 0.08, 0.20} {
		b.Run(fmt2(errRate), func(b *testing.B) {
			agreement := 0.0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, _, err := specdoc.ParseAll(texts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dedup.Deduplicate(db, dedup.Options{}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				opts := annotate.DefaultOptions()
				opts.ErrorA, opts.ErrorB = errRate, errRate
				res, err := annotate.Run(db, engine, truthFn, opts)
				if err != nil {
					b.Fatal(err)
				}
				agreement = res.Steps[0].AgreementPct
			}
			b.ReportMetric(agreement, "step1-agreement-%")
		})
	}
}

func fmt2(f float64) string {
	return "err-" + string([]byte{'0' + byte(int(f*100)/10), '0' + byte(int(f*100)%10)}) + "pct"
}

// BenchmarkCaseStudyDirectedVsRandom runs the Section VI directed-
// testing case study and reports the detection counts of both
// strategies as metrics.
func BenchmarkCaseStudyDirectedVsRandom(b *testing.B) {
	db := benchDB(b)
	var res *CaseStudyResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = db.SimulateDirectedCampaign(DefaultCaseStudyOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Directed.Detected), "directed-bugs")
	b.ReportMetric(float64(res.Random.Detected), "random-bugs")
	b.ReportMetric(res.Speedup, "ratio")
}
