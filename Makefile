GO ?= go

.PHONY: build test race check arch bench bench-classify bench-pipeline bench-serve bench-store check-metrics ingest-smoke fuzz-short cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Architecture guards: hexagonal import rules and the exported pkg/
# API snapshot, plus go vet (mirrors the CI `arch` job).
arch:
	$(GO) test ./internal/archtest/
	$(GO) vet ./...

# The local pre-push gate: build, architecture guards, full tests.
check: build arch test

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Classify matching-kernel benchmarks (naive / prefilter / memo /
# prefilter+memo); emits BENCH_classify.json for the perf trajectory.
bench-classify:
	./scripts/bench_classify.sh

# Stage-graph pipeline benchmarks (cold build vs warm replay vs
# single-knob rebuild); emits BENCH_pipeline.json with speedup ratios.
bench-pipeline:
	./scripts/bench_pipeline.sh

# Serving-tier latency across shard counts (errserve + errload);
# emits BENCH_serve.json with server-side p50/p99 at 1, 4 and 16 shards.
bench-serve:
	./scripts/bench_serve.sh

# Store-format benchmarks: cold open v1 vs v2 and the stitched serve
# hot path; emits BENCH_store.json and enforces the >=10x cold-open
# speedup and <=2 allocs/op gates.
bench-store:
	./scripts/bench_store.sh

# End-to-end /metrics exposition check against a live errserve.
check-metrics:
	./scripts/check_metrics.sh

# End-to-end streaming-ingest check (HTTP endpoint + spool watcher)
# against a live errserve.
ingest-smoke:
	./scripts/ingest_smoke.sh

fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzParseDocument -fuzztime 20s -fuzzminimizetime 1x ./internal/specdoc/
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 20s -fuzzminimizetime 1x ./internal/store/
	$(GO) test -run '^$$' -fuzz FuzzOpenV2 -fuzztime 20s -fuzzminimizetime 1x ./internal/store/
	$(GO) test -run '^$$' -fuzz FuzzClassifyEquivalence -fuzztime 20s -fuzzminimizetime 1x ./internal/classify/
	$(GO) test -run '^$$' -fuzz FuzzDeltaMerge -fuzztime 20s -fuzzminimizetime 1x ./internal/ingest/

cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	$(GO) tool cover -func=cover.out | tail -1
