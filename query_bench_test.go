package rememberr

// Benchmarks contrasting the two query execution paths on the default
// corpus. The workload is a representative mix of narrow and broad
// filter combinations; both benchmarks execute the identical queries,
// one through the closure scan and one through the inverted index, so
// ns/op is directly comparable. Acceptance target: the indexed path
// sustains at least 5x the closure throughput.

import "testing"

// benchQueries builds the shared workload against the given facade.
func benchQueries(db *Database) []*Query {
	return []*Query{
		db.Query().Vendor(Intel).WithClass("Trg_POW").MinTriggers(2),
		db.Query().WithCategory("Eff_HNG_hng"),
		db.Query().Vendor(AMD).SimulationOnly(),
		db.Query().AnyCategory("Eff_HNG_hng", "Eff_HNG_crh").Workaround(WorkaroundCategory(0)),
		db.Query().ObservableIn("MCx_STATUS").Fix(FixStatus(0)),
	}
}

func BenchmarkQueryClosure(b *testing.B) {
	db := benchDB(b)
	queries := benchQueries(FromCore(db.Core()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if len(q.uniqueClosure()) == 0 && len(q.allClosure()) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkQueryIndexed(b *testing.B) {
	db := FromCore(benchDB(b).Core())
	db.BuildIndex()
	queries := benchQueries(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if len(q.Unique()) == 0 && len(q.All()) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromCore(db.Core()).BuildIndex()
	}
}
