package shard

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
)

func testDB(t testing.TB, seed int64) *core.Database {
	t.Helper()
	gt, err := corpus.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	return gt.DB
}

func TestOwner(t *testing.T) {
	if got := Owner("anything", 1); got != 0 {
		t.Fatalf("Owner(_, 1) = %d, want 0", got)
	}
	if got := Owner("anything", 0); got != 0 {
		t.Fatalf("Owner(_, 0) = %d, want 0", got)
	}
	// Deterministic, in range, and spread: 1000 distinct keys over 4
	// shards must populate every shard.
	seen := make(map[int]int)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		o := Owner(key, 4)
		if o < 0 || o >= 4 {
			t.Fatalf("Owner(%q, 4) = %d out of range", key, o)
		}
		if again := Owner(key, 4); again != o {
			t.Fatalf("Owner(%q, 4) unstable: %d then %d", key, o, again)
		}
		seen[o]++
	}
	for sh := 0; sh < 4; sh++ {
		if seen[sh] == 0 {
			t.Errorf("shard %d received no keys out of 1000", sh)
		}
	}
}

// TestPartitionCovers proves the partition is exact: every entry of the
// source database appears in exactly one shard, all occurrences of a
// key co-locate on the owner shard, and the cluster-level counts equal
// the unpartitioned ones.
func TestPartitionCovers(t *testing.T) {
	db := testDB(t, 1)
	full := db.Errata()
	for _, n := range []int{1, 4, 16} {
		c := Partition(db, n)
		if c.Entries() != len(full) {
			t.Fatalf("n=%d: Entries() = %d, want %d", n, c.Entries(), len(full))
		}
		if c.UniqueCount() != len(db.Unique()) {
			t.Fatalf("n=%d: UniqueCount() = %d, want %d", n, c.UniqueCount(), len(db.Unique()))
		}
		placed := make(map[*core.Erratum]int)
		sum, uniqueSum := 0, 0
		for _, sh := range c.Shards {
			sum += sh.IX.Size()
			uniqueSum += sh.IX.UniqueCount()
			for _, e := range sh.DB.Errata() {
				if prev, dup := placed[e]; dup {
					t.Fatalf("n=%d: %s on shards %d and %d", n, e.FullID(), prev, sh.ID)
				}
				placed[e] = sh.ID
				if e.Key != "" && sh.ID != Owner(e.Key, n) {
					t.Fatalf("n=%d: %s (key %s) on shard %d, owner is %d",
						n, e.FullID(), e.Key, sh.ID, Owner(e.Key, n))
				}
			}
		}
		if len(placed) != len(full) || sum != len(full) {
			t.Fatalf("n=%d: placed %d entries (index sum %d), want %d", n, len(placed), sum, len(full))
		}
		if uniqueSum != c.UniqueCount() {
			t.Fatalf("n=%d: per-shard unique sum %d != cluster unique %d", n, uniqueSum, c.UniqueCount())
		}
	}
}

// fanout runs the same filtered query on every shard and returns the
// per-shard result lists.
func fanout(c *Cluster, unique bool, apply func(*index.Query) *index.Query) [][]*core.Erratum {
	lists := make([][]*core.Erratum, len(c.Shards))
	for i, sh := range c.Shards {
		q := apply(sh.IX.Query())
		if unique {
			lists[i] = q.Unique()
		} else {
			lists[i] = q.All()
		}
	}
	return lists
}

func sameErrata(a, b []*core.Erratum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMergeMatchesUnpartitioned is the package-level equivalence
// contract: for a matrix of filters, shard counts and pages, the merged
// scatter-gather result is pointer-identical to the page the
// unpartitioned index produces.
func TestMergeMatchesUnpartitioned(t *testing.T) {
	db := testDB(t, 2)
	single := index.Build(db)
	filters := []struct {
		name  string
		apply func(*index.Query) *index.Query
	}{
		{"all", func(q *index.Query) *index.Query { return q }},
		{"vendor-intel", func(q *index.Query) *index.Query { return q.Vendor(core.Intel) }},
		{"doc", func(q *index.Query) *index.Query { return q.InDocument("intel-06") }},
		{"category", func(q *index.Query) *index.Query { return q.WithCategory("Eff_HNG_hng") }},
		// Unknown category: zero matches on every shard.
		{"category-none", func(q *index.Query) *index.Query { return q.WithCategory("Trg_XXX_xxx") }},
		{"title", func(q *index.Query) *index.Query { return q.TitleContains("the") }},
	}
	pages := []struct{ offset, limit int }{
		{0, 100}, {0, 1}, {3, 7}, {50, 25}, {0, 1 << 30}, {0, 0}, {1 << 30, 10},
	}
	for _, n := range []int{1, 3, 4, 16} {
		c := Partition(db, n)
		for _, f := range filters {
			for _, uniq := range []bool{true, false} {
				var ref []*core.Erratum
				if uniq {
					ref = f.apply(single.Query()).Unique()
				} else {
					ref = f.apply(single.Query()).All()
				}
				lists := fanout(c, uniq, f.apply)
				for _, p := range pages {
					got, total := c.Merge(lists, uniq, p.offset, p.limit)
					if total != len(ref) {
						t.Fatalf("n=%d %s unique=%v: total %d, want %d", n, f.name, uniq, total, len(ref))
					}
					want := ref
					if p.offset < len(want) {
						want = want[p.offset:]
					} else {
						want = nil
					}
					if len(want) > p.limit {
						want = want[:p.limit]
					}
					if !sameErrata(got, want) {
						t.Fatalf("n=%d %s unique=%v offset=%d limit=%d: merged %d rows != reference %d",
							n, f.name, uniq, p.offset, p.limit, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestMergeEdges pins the pagination edges on the merge itself:
// offset past the global total, limit zero, and an offset+limit sum
// that would overflow int.
func TestMergeEdges(t *testing.T) {
	db := testDB(t, 3)
	c := Partition(db, 4)
	lists := fanout(c, true, func(q *index.Query) *index.Query { return q })
	total := 0
	for _, l := range lists {
		total += len(l)
	}

	if page, tot := c.Merge(lists, true, total, 10); len(page) != 0 || tot != total {
		t.Fatalf("offset==total: %d rows, total %d (want 0, %d)", len(page), tot, total)
	}
	if page, tot := c.Merge(lists, true, total+100, 10); len(page) != 0 || tot != total {
		t.Fatalf("offset past total: %d rows, total %d (want 0, %d)", len(page), tot, total)
	}
	if page, tot := c.Merge(lists, true, 0, 0); len(page) != 0 || tot != total {
		t.Fatalf("limit=0: %d rows, total %d (want 0, %d)", len(page), tot, total)
	}
	// Overflow guard: a huge offset with a huge limit must not wrap.
	const big = int(^uint(0) >> 1) // MaxInt
	if page, tot := c.Merge(lists, true, big, big); len(page) != 0 || tot != total {
		t.Fatalf("overflowing page: %d rows, total %d (want 0, %d)", len(page), tot, total)
	}
	if page, _ := c.Merge(lists, true, total-1, big); len(page) != 1 {
		t.Fatalf("final-row page with overflowing end: %d rows, want 1", len(page))
	}
}

// TestByKeyRouting proves point lookups route to the owning shard and
// return the identical occurrence list the unpartitioned index returns,
// including for a key owned by the last shard.
func TestByKeyRouting(t *testing.T) {
	db := testDB(t, 1)
	single := index.Build(db)
	const n = 4
	c := Partition(db, n)

	perOwner := make(map[int]string)
	for _, e := range db.Errata() {
		if e.Key == "" {
			continue
		}
		o := Owner(e.Key, n)
		if _, ok := perOwner[o]; !ok {
			perOwner[o] = e.Key
		}
	}
	if len(perOwner) != n {
		t.Fatalf("corpus keys cover %d/%d shards", len(perOwner), n)
	}
	if _, ok := perOwner[n-1]; !ok {
		t.Fatal("no key owned by the last shard")
	}
	for owner, key := range perOwner {
		got, want := c.ByKey(key), single.ByKey(key)
		if !sameErrata(got, want) {
			t.Fatalf("shard %d key %s: %d occurrences != single %d", owner, key, len(got), len(want))
		}
		// The occurrences live on the owner shard only.
		for sh := 0; sh < n; sh++ {
			if sh != owner && len(c.Shards[sh].IX.ByKey(key)) != 0 {
				t.Fatalf("key %s leaked onto shard %d (owner %d)", key, sh, owner)
			}
		}
	}
	if c.ByKey("") != nil {
		t.Fatal("empty key lookup returned occurrences")
	}
	if got := c.ByKey("no-such-key"); len(got) != 0 {
		t.Fatalf("unknown key returned %d occurrences", len(got))
	}
}
