package shard

import (
	"repro/internal/core"
	"repro/internal/index"
)

// Repartition builds the cluster for db by reusing every shard of prev
// that the latest delta did not touch, rebuilding only the affected
// ones. It is the sharded counterpart of index.MergeDelta and shares
// its sharing contract: db may alias *Erratum (and *Document) values
// with prev's source database only while they are completely unchanged
// — any modification, including a cluster-key relabel, must clone the
// entry so the stale pointer falls out of the comparison.
//
// A shard is reused when its newly computed sub-database is exactly the
// one it was built over: the same document keys, each carrying the same
// chronological Order as the current snapshot, with pointer-identical
// errata sequences. Everything else — a new or revised document's
// entries hashing onto the shard, entries leaving it because a relabel
// moved them, or an out-of-order document insertion shifting Order
// values — forces an index rebuild of just that shard. Appending
// chronologically recent documents (the common feed case) therefore
// rebuilds only the shards owning the new entries' keys.
//
// The global rank maps are always recomputed (they are positions in the
// full db.Errata()/db.Unique() orderings, which any delta shifts).
// Repartition(nil, ...) and a shard-count change degenerate to a full
// Partition. The second return value is the number of shards rebuilt.
func Repartition(prev *Cluster, db *core.Database, n int) (*Cluster, int) {
	if n < 1 {
		n = 1
	}
	if prev == nil || prev.N != n {
		return Partition(db, n), n
	}
	all := db.Errata()
	uniq := db.Unique()
	c := &Cluster{
		N:          n,
		allRank:    make(map[*core.Erratum]int, len(all)),
		uniqueRank: make(map[*core.Erratum]int, len(uniq)),
	}
	for i, e := range all {
		c.allRank[e] = i
	}
	for i, e := range uniq {
		c.uniqueRank[e] = i
	}

	dbs := make([]*core.Database, n)
	for i := range dbs {
		dbs[i] = &core.Database{Docs: make(map[string]*core.Document), Scheme: db.Scheme}
	}
	for _, d := range db.Documents() {
		parts := make([][]*core.Erratum, n)
		for _, e := range d.Errata {
			o := ownerOf(e, n)
			parts[o] = append(parts[o], e)
		}
		for i, p := range parts {
			if len(p) == 0 {
				continue
			}
			dc := *d
			dc.Errata = p
			dbs[i].Docs[d.Key] = &dc
		}
	}

	rebuilt := 0
	c.Shards = make([]*Shard, n)
	for i, sdb := range dbs {
		if sameSubDB(prev.Shards[i].DB, sdb) {
			c.Shards[i] = prev.Shards[i]
			continue
		}
		c.Shards[i] = &Shard{ID: i, DB: sdb, IX: index.Build(sdb)}
		rebuilt++
	}
	return c, rebuilt
}

// sameSubDB reports whether a previously built shard sub-database is
// still valid for the freshly computed one: same document keys, same
// Order values (next's copies carry the current snapshot's Order, so a
// shifted document shows up here), pointer-identical errata sequences.
func sameSubDB(prev, next *core.Database) bool {
	if len(prev.Docs) != len(next.Docs) {
		return false
	}
	for key, nd := range next.Docs {
		pd, ok := prev.Docs[key]
		if !ok || pd.Order != nd.Order || len(pd.Errata) != len(nd.Errata) {
			return false
		}
		for i := range nd.Errata {
			if pd.Errata[i] != nd.Errata[i] {
				return false
			}
		}
	}
	return true
}
