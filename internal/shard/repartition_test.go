package shard

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// clusterDump renders a cluster's full state for structural comparison:
// per-shard index dumps plus the global rank orderings.
func clusterDump(c *Cluster) []byte {
	var b bytes.Buffer
	for _, sh := range c.Shards {
		b.WriteString("shard\n")
		b.Write(sh.IX.DebugDump())
	}
	return b.Bytes()
}

func sameRanks(a, b *Cluster) bool {
	if len(a.allRank) != len(b.allRank) || len(a.uniqueRank) != len(b.uniqueRank) {
		return false
	}
	for e, r := range a.allRank {
		if b.allRank[e] != r {
			return false
		}
	}
	for e, r := range a.uniqueRank {
		if b.uniqueRank[e] != r {
			return false
		}
	}
	return true
}

// deltaOf returns a database sharing every document pointer with db
// except the dropped keys — the shape ingest's copy-on-write Apply
// produces for a pure deletion.
func deltaOf(db *core.Database, drop ...string) *core.Database {
	next := &core.Database{Docs: make(map[string]*core.Document), Scheme: db.Scheme}
	gone := make(map[string]bool, len(drop))
	for _, k := range drop {
		gone[k] = true
	}
	for k, d := range db.Docs {
		if !gone[k] {
			next.Docs[k] = d
		}
	}
	return next
}

// TestRepartitionEqualsPartition pins the correctness half: for
// identity, deletion and nil-prev deltas, Repartition lands on a
// cluster structurally identical to a cold Partition at 1, 4 and 16
// shards.
func TestRepartitionEqualsPartition(t *testing.T) {
	db := testDB(t, 1)
	for _, n := range []int{1, 4, 16} {
		prev := Partition(db, n)

		got, rebuilt := Repartition(nil, db, n)
		if rebuilt != n {
			t.Fatalf("n=%d: nil prev rebuilt %d shards, want %d", n, rebuilt, n)
		}
		if !bytes.Equal(clusterDump(got), clusterDump(prev)) || !sameRanks(got, prev) {
			t.Fatalf("n=%d: Repartition(nil) differs from Partition", n)
		}

		same := deltaOf(db)
		got, rebuilt = Repartition(prev, same, n)
		if rebuilt != 0 {
			t.Fatalf("n=%d: identity delta rebuilt %d shards, want 0", n, rebuilt)
		}
		for i := range got.Shards {
			if got.Shards[i] != prev.Shards[i] {
				t.Fatalf("n=%d: identity delta replaced shard %d", n, i)
			}
		}
		if !sameRanks(got, Partition(same, n)) {
			t.Fatalf("n=%d: identity delta ranks differ from cold Partition", n)
		}

		// Drop one document; the cold and incremental clusters must agree.
		victim := db.Documents()[0].Key
		next := deltaOf(db, victim)
		got, rebuilt = Repartition(prev, next, n)
		cold := Partition(next, n)
		if !bytes.Equal(clusterDump(got), clusterDump(cold)) || !sameRanks(got, cold) {
			t.Fatalf("n=%d: deletion delta differs from cold Partition", n)
		}
		if rebuilt == 0 || rebuilt > n {
			t.Fatalf("n=%d: deletion delta rebuilt %d shards", n, rebuilt)
		}
	}
}

// TestRepartitionReusesUntouchedShards pins the efficiency half: a
// delta confined to one dedup key rebuilds only the shard owning it,
// and every other shard is reused by pointer.
func TestRepartitionReusesUntouchedShards(t *testing.T) {
	db := testDB(t, 2)
	const n = 16
	prev := Partition(db, n)

	// Clone one document with its first entry's annotation-preserving
	// copy (same key, same content — but a fresh pointer, as a revision
	// would produce), leaving all other documents shared.
	var victim *core.Document
	for _, d := range db.Documents() {
		if len(d.Errata) > 0 {
			victim = d
			break
		}
	}
	next := deltaOf(db)
	dc := *victim
	dc.Errata = append([]*core.Erratum(nil), victim.Errata...)
	dc.Errata[0] = victim.Errata[0].Clone()
	next.Docs[victim.Key] = &dc

	got, rebuilt := Repartition(prev, next, n)
	touched := map[int]bool{ownerOf(victim.Errata[0], n): true}
	if rebuilt != len(touched) {
		t.Fatalf("rebuilt %d shards, want %d", rebuilt, len(touched))
	}
	for i := range got.Shards {
		if touched[i] {
			if got.Shards[i] == prev.Shards[i] {
				t.Fatalf("shard %d owns the revised key but was reused", i)
			}
			continue
		}
		if got.Shards[i] != prev.Shards[i] {
			t.Fatalf("shard %d untouched by the delta but rebuilt", i)
		}
	}
	cold := Partition(next, n)
	if !bytes.Equal(clusterDump(got), clusterDump(cold)) || !sameRanks(got, cold) {
		t.Fatalf("revision delta differs from cold Partition")
	}
}

// TestRepartitionShardCountChange pins the degenerate case: changing
// the shard count repartitions from scratch.
func TestRepartitionShardCountChange(t *testing.T) {
	db := testDB(t, 1)
	prev := Partition(db, 4)
	got, rebuilt := Repartition(prev, deltaOf(db), 8)
	if rebuilt != 8 {
		t.Fatalf("count change rebuilt %d shards, want 8", rebuilt)
	}
	cold := Partition(db, 8)
	if !bytes.Equal(clusterDump(got), clusterDump(cold)) || !sameRanks(got, cold) {
		t.Fatalf("count change differs from cold Partition")
	}
}
