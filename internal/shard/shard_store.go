package shard

import (
	"sync"

	"repro/internal/core"
	"repro/internal/index"
)

// V2Store is the slice of the store.StoreV2 surface the lazy partition
// needs: per-record document and erratum decoders plus the ownership
// fields readable without decoding. Declared here so shard does not
// import store (serve hands the concrete *store.StoreV2 in).
type V2Store interface {
	NumDocs() int
	Doc(i int) *core.Document
	DocErrataRange(i int) (off, n int)
	Size() int
	EntryKey(ord int) string
	EntryID(ord int) string
	Erratum(ord int, docKey string) *core.Erratum
}

// ownerOfEntry is ownerOf for an entry that exists only as a record:
// same hash, same namespaces, computed from the ownership fields alone
// so placement never requires decoding the record.
func ownerOfEntry(key, docKey, id string, n int) int {
	if key != "" {
		return Owner(key, n)
	}
	return Owner("\x00"+docKey+"/"+id, n)
}

// PartitionStore builds an n-shard cluster straight from a FormatVersion
// 2 store, decoding each erratum record exactly once — by the one shard
// that owns it, in parallel across shards — instead of materializing the
// full database first and re-walking it (Partition's path). Document
// metadata is decoded once and shallow-copied per shard exactly like
// Partition; erratum placement reads only the key/ID fields off the
// record, so a shard never touches the bytes of entries it does not
// own. The returned database is the full assembly (every shard's
// entries, in record order) and is what the cluster's rank maps are
// computed from; its errata pointers are shared with the shards.
//
// The store's backing bytes must outlive everything returned: all
// strings alias them.
func PartitionStore(sv V2Store, n int) (*core.Database, *Cluster, error) {
	if n < 1 {
		n = 1
	}
	nDocs := sv.NumDocs()
	docs := make([]*core.Document, nDocs)
	for i := 0; i < nDocs; i++ {
		docs[i] = sv.Doc(i)
	}
	// Placement runs over the raw records: one pass, no decoding.
	owner := make([]int32, sv.Size())
	for i := 0; i < nDocs; i++ {
		off, cnt := sv.DocErrataRange(i)
		for j := off; j < off+cnt; j++ {
			owner[j] = int32(ownerOfEntry(sv.EntryKey(j), docs[i].Key, sv.EntryID(j), n))
		}
	}

	// Each shard decodes its owned records into disjoint slots of
	// entries and builds its sub-database and index concurrently. Slot
	// disjointness (every ordinal has exactly one owner) is what makes
	// the parallel writes race-free — and what pins decode-once.
	full := core.NewDatabase()
	entries := make([]*core.Erratum, sv.Size())
	shards := make([]*Shard, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sdb := &core.Database{Docs: make(map[string]*core.Document), Scheme: full.Scheme}
			for i := 0; i < nDocs; i++ {
				off, cnt := sv.DocErrataRange(i)
				var part []*core.Erratum
				for j := off; j < off+cnt; j++ {
					if int(owner[j]) != s {
						continue
					}
					e := sv.Erratum(j, docs[i].Key)
					entries[j] = e
					part = append(part, e)
				}
				if len(part) == 0 {
					continue
				}
				dc := *docs[i]
				dc.Errata = part
				sdb.Docs[dc.Key] = &dc
			}
			shards[s] = &Shard{ID: s, DB: sdb, IX: index.Build(sdb)}
		}(s)
	}
	wg.Wait()

	for i := 0; i < nDocs; i++ {
		off, cnt := sv.DocErrataRange(i)
		docs[i].Errata = entries[off : off+cnt]
		if err := full.Add(docs[i]); err != nil {
			return nil, nil, err
		}
	}
	if err := full.Validate(); err != nil {
		return nil, nil, err
	}

	all := full.Errata()
	uniq := full.Unique()
	c := &Cluster{
		N:          n,
		Shards:     shards,
		allRank:    make(map[*core.Erratum]int, len(all)),
		uniqueRank: make(map[*core.Erratum]int, len(uniq)),
	}
	for i, e := range all {
		c.allRank[e] = i
	}
	for i, e := range uniq {
		c.uniqueRank[e] = i
	}
	return full, c, nil
}
