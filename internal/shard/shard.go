// Package shard partitions one core.Database into N horizontal shards
// and merges per-shard query results back into the global result
// order — the scale-out layer under the serving tier.
//
// The partitioning axis is the deduplicated cluster key: every
// occurrence of one erratum (the entries sharing a dedup key) lands on
// the same shard, chosen by FNV-1a hash of the key modulo the shard
// count. Point lookups by key therefore route to exactly one shard
// (Owner), and per-shard Unique() representative selection agrees with
// the unpartitioned database, because a shard always sees the complete
// occurrence set of every key it owns. Errata that have not been
// deduplicated (empty key) hash on their globally unique FullID under
// a separate namespace, so they spread across shards without ever
// colliding with a real cluster key.
//
// Each shard owns a self-contained sub-database: shallow per-document
// copies whose Errata slices hold only the shard's entries (the
// Erratum values themselves are shared, never copied — the tier is
// read-only by construction, exactly like the single-process serving
// snapshot). Because document metadata (vendor, chronological order)
// is preserved and every database ordering in core sorts on those
// fields, each shard's local result order is a subsequence of the
// global order. Merge exploits that: it k-way-merges the per-shard
// result lists by precomputed global rank and is therefore
// deterministic and byte-identical to the unpartitioned execution,
// which the serving-layer equivalence tests pin across shard counts.
package shard

import (
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/index"
)

// Owner returns the shard (0..n-1) owning the given dedup cluster key.
func Owner(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}

// ownerOf places one erratum: by cluster key when deduplicated, by
// FullID otherwise. The "\x00" prefix keeps the keyless namespace
// disjoint from cluster keys (no FullID can alias a key's shard).
func ownerOf(e *core.Erratum, n int) int {
	if e.Key != "" {
		return Owner(e.Key, n)
	}
	return Owner("\x00"+e.FullID(), n)
}

// Shard is one partition: a sub-database holding the errata it owns
// plus the inverted index built over it.
type Shard struct {
	// ID is the shard's position in the cluster (0-based).
	ID int
	// DB is the shard's sub-database (documents filtered to owned errata).
	DB *core.Database
	// IX is the shard-local inverted index.
	IX *index.Index
}

// Cluster is a full partitioning of one database snapshot. It is
// immutable after Partition and safe for concurrent readers; reloads
// build a fresh Cluster and swap it in atomically (internal/serve).
type Cluster struct {
	// N is the shard count.
	N int
	// Shards lists the partitions; every erratum of the source database
	// appears in exactly one.
	Shards []*Shard

	// allRank and uniqueRank give each entry's position in the global
	// db.Errata() and db.Unique() orderings; Merge restores the global
	// order from per-shard subsequences by comparing these ranks.
	allRank    map[*core.Erratum]int
	uniqueRank map[*core.Erratum]int
}

// Partition splits db into n shards (n < 1 is treated as 1). The
// caller must not mutate db afterwards; the shards alias its documents'
// errata.
func Partition(db *core.Database, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	all := db.Errata()
	uniq := db.Unique()
	c := &Cluster{
		N:          n,
		allRank:    make(map[*core.Erratum]int, len(all)),
		uniqueRank: make(map[*core.Erratum]int, len(uniq)),
	}
	for i, e := range all {
		c.allRank[e] = i
	}
	for i, e := range uniq {
		c.uniqueRank[e] = i
	}

	dbs := make([]*core.Database, n)
	for i := range dbs {
		dbs[i] = &core.Database{Docs: make(map[string]*core.Document), Scheme: db.Scheme}
	}
	for _, d := range db.Documents() {
		parts := make([][]*core.Erratum, n)
		for _, e := range d.Errata {
			o := ownerOf(e, n)
			parts[o] = append(parts[o], e)
		}
		for i, p := range parts {
			if len(p) == 0 {
				continue
			}
			// Shallow document copy: metadata (vendor, order, revisions)
			// is shared, only the errata slice is the shard's subset.
			dc := *d
			dc.Errata = p
			dbs[i].Docs[d.Key] = &dc
		}
	}
	c.Shards = make([]*Shard, n)
	for i, sdb := range dbs {
		c.Shards[i] = &Shard{ID: i, DB: sdb, IX: index.Build(sdb)}
	}
	return c
}

// Entries returns the total number of indexed entries across all
// shards (duplicates counted individually), equal to the source
// database's entry count.
func (c *Cluster) Entries() int { return len(c.allRank) }

// UniqueCount returns the number of unique representatives across all
// shards, equal to the source database's unique count.
func (c *Cluster) UniqueCount() int { return len(c.uniqueRank) }

// ByKey routes a point lookup to the owning shard and returns every
// occurrence of the key, in the same document order as an
// unpartitioned index lookup (the shard holds the full occurrence set).
func (c *Cluster) ByKey(key string) []*core.Erratum {
	if key == "" {
		return nil
	}
	return c.Shards[Owner(key, c.N)].IX.ByKey(key)
}

// Merge gathers per-shard result lists — each already sorted in global
// order, as produced by a shard-local index query — into the global
// page [offset, offset+limit) and the global total. unique selects
// which global ordering applies (db.Unique() vs db.Errata() order).
// The merge stops as soon as the page is full, so deep result sets pay
// only for the rows actually returned. A nil page with the true total
// is returned when offset is past the end or limit is zero, matching
// the single-process pagination contract.
func (c *Cluster) Merge(lists [][]*core.Erratum, unique bool, offset, limit int) ([]*core.Erratum, int) {
	rank := c.allRank
	if unique {
		rank = c.uniqueRank
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if offset >= total || limit <= 0 {
		return nil, total
	}
	end := offset + limit
	if end > total || end < 0 { // end < 0: offset+limit overflowed
		end = total
	}
	heads := make([]int, len(lists))
	out := make([]*core.Erratum, 0, end-offset)
	for produced := 0; produced < end; produced++ {
		best, bestRank := -1, 0
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if r := rank[l[heads[i]]]; best < 0 || r < bestRank {
				best, bestRank = i, r
			}
		}
		if best < 0 {
			break
		}
		e := lists[best][heads[best]]
		heads[best]++
		if produced >= offset {
			out = append(out, e)
		}
	}
	return out, total
}
