package annotate

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dedup"
	"repro/internal/specdoc"
	"repro/internal/taxonomy"
	corpusprofile "repro/plugins/corpusprofile/intelamd"
)

// buildPipelineDB runs generate -> render -> parse -> dedup and returns
// the parsed database plus the ground truth.
func buildPipelineDB(t testing.TB, seed int64) (*core.Database, *corpus.GroundTruth) {
	t.Helper()
	gt, err := corpus.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	texts := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	db, _, err := specdoc.ParseAll(texts)
	if err != nil {
		t.Fatal(err)
	}
	truthKey := make(map[string]string)
	for _, e := range gt.DB.Errata() {
		truthKey[corpus.EntryRef(e)] = e.Key
	}
	oracle := func(a, b *core.Erratum) bool {
		return truthKey[corpus.EntryRef(a)] != "" &&
			truthKey[corpus.EntryRef(a)] == truthKey[corpus.EntryRef(b)]
	}
	if _, err := dedup.Deduplicate(db, dedup.Options{Oracle: oracle}); err != nil {
		t.Fatal(err)
	}
	return db, gt
}

// truthFromGT builds the Truth callback from the ground truth.
func truthFromGT(gt *corpus.GroundTruth) Truth {
	anns := make(map[string]*core.Annotation)
	for _, e := range gt.DB.Errata() {
		ann := e.Ann
		anns[corpus.EntryRef(e)] = &ann
	}
	return func(e *core.Erratum) *core.Annotation {
		return anns[corpus.EntryRef(e)]
	}
}

func TestFullPipelineRecoversGroundTruth(t *testing.T) {
	db, gt := buildPipelineDB(t, 11)
	engine := classify.NewEngine()
	res, err := Run(db, engine, truthFromGT(gt), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Every unique erratum's recovered categories must equal the ground
	// truth exactly on all three dimensions.
	truth := truthFromGT(gt)
	scheme := taxonomy.Base()
	checked := 0
	for _, e := range db.Unique() {
		want := truth(e)
		if want == nil {
			t.Fatalf("no ground truth for %s", e.FullID())
		}
		for _, k := range taxonomy.Kinds {
			got := e.Ann.Categories(k, scheme)
			exp := want.Categories(k, scheme)
			if len(got) != len(exp) {
				t.Fatalf("%s %s: got %v, want %v\ndesc: %s",
					e.FullID(), k.Name(), got, exp, e.Description)
			}
			for i := range exp {
				if got[i] != exp[i] {
					t.Fatalf("%s %s: got %v, want %v", e.FullID(), k.Name(), got, exp)
				}
			}
		}
		if e.Ann.TrivialTrigger != want.TrivialTrigger {
			t.Fatalf("%s: trivial flag %v, want %v", e.FullID(), e.Ann.TrivialTrigger, want.TrivialTrigger)
		}
		if e.Ann.ComplexConditions != want.ComplexConditions {
			t.Fatalf("%s: complex flag mismatch", e.FullID())
		}
		if e.Ann.SimulationOnly != want.SimulationOnly {
			t.Fatalf("%s: simulation-only flag mismatch", e.FullID())
		}
		if len(e.Ann.MSRs) != len(want.MSRs) {
			t.Fatalf("%s: MSRs %v, want %v", e.FullID(), e.Ann.MSRs, want.MSRs)
		}
		checked++
	}
	if checked != corpusprofile.TargetUnique {
		t.Errorf("checked %d unique errata, want %d", checked, corpusprofile.TargetUnique)
	}

	// The paper's simulation-only population: one Intel and five AMD
	// errata.
	simIntel, simAMD := 0, 0
	for _, e := range db.UniqueVendor(core.Intel) {
		if e.Ann.SimulationOnly {
			simIntel++
		}
	}
	for _, e := range db.UniqueVendor(core.AMD) {
		if e.Ann.SimulationOnly {
			simAMD++
		}
	}
	if simIntel != 1 || simAMD != 5 {
		t.Errorf("simulation-only errata = (%d Intel, %d AMD), want (1, 5)", simIntel, simAMD)
	}

	// Decision volume: the filter must achieve a reduction comparable to
	// the paper's (67,680 -> 2,064 per human, a factor ~33). Our corpus
	// is calibrated to land in the same order of magnitude.
	if res.FilterStats.RawDecisions != corpusprofile.TargetUnique*60 {
		t.Errorf("raw decisions = %d, want %d", res.FilterStats.RawDecisions, corpusprofile.TargetUnique*60)
	}
	if res.HumanDecisions < 800 || res.HumanDecisions > 4500 {
		t.Errorf("human decisions = %d, want within [800,4500] (paper: 2,064)", res.HumanDecisions)
	}
	if f := res.FilterStats.ReductionFactor(); f < 10 {
		t.Errorf("reduction factor = %.1f, want >= 10", f)
	}
}

func TestProtocolSteps(t *testing.T) {
	db, gt := buildPipelineDB(t, 12)
	engine := classify.NewEngine()
	res, err := Run(db, engine, truthFromGT(gt), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 7 {
		t.Fatalf("steps = %d, want 7", len(res.Steps))
	}
	cum := 0
	for i, s := range res.Steps {
		cum += s.Errata
		if s.CumulativeErrata != cum {
			t.Errorf("step %d: cumulative %d, want %d", s.Step, s.CumulativeErrata, cum)
		}
		if s.Step != i+1 {
			t.Errorf("step numbering wrong at %d", i)
		}
		// Figure 9: agreement generally above 80%.
		if s.Decisions > 50 && s.AgreementPct < 75 {
			t.Errorf("step %d agreement = %.1f%%, want >= 75%%", s.Step, s.AgreementPct)
		}
	}
	if cum != corpusprofile.TargetUnique {
		t.Errorf("cumulative errata = %d, want %d", cum, corpusprofile.TargetUnique)
	}
	// Agreement improves from the first to the last step.
	first, last := res.Steps[0], res.Steps[len(res.Steps)-1]
	if first.Decisions > 50 && last.Decisions > 50 && last.AgreementPct <= first.AgreementPct-2 {
		t.Errorf("agreement did not improve: %.1f%% -> %.1f%%", first.AgreementPct, last.AgreementPct)
	}
}

func TestDuplicatesInheritAnnotation(t *testing.T) {
	db, gt := buildPipelineDB(t, 13)
	engine := classify.NewEngine()
	if _, err := Run(db, engine, truthFromGT(gt), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	scheme := taxonomy.Base()
	byCluster := map[string][]*core.Erratum{}
	for _, e := range db.Errata() {
		byCluster[e.DocKeyVendor()+"|"+e.Key] = append(byCluster[e.DocKeyVendor()+"|"+e.Key], e)
	}
	for key, entries := range byCluster {
		if len(entries) < 2 {
			continue
		}
		ref := entries[0].Ann.Categories(taxonomy.Trigger, scheme)
		for _, e := range entries[1:] {
			got := e.Ann.Categories(taxonomy.Trigger, scheme)
			if len(got) != len(ref) {
				t.Fatalf("cluster %s: occurrence annotations differ", key)
			}
		}
	}
}

func TestRunWithoutTruthResolvesToExclude(t *testing.T) {
	db, _ := buildPipelineDB(t, 14)
	engine := classify.NewEngine()
	res, err := Run(db, engine, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ResolvedIncludes != 0 {
		t.Errorf("resolved includes = %d without truth", res.ResolvedIncludes)
	}
	// Auto-included categories must still be applied.
	annotated := 0
	for _, e := range db.Unique() {
		if len(e.Ann.Triggers)+len(e.Ann.Effects) > 0 {
			annotated++
		}
	}
	if annotated < corpusprofile.TargetUnique/2 {
		t.Errorf("only %d errata annotated without truth", annotated)
	}
}

func TestOptionValidation(t *testing.T) {
	db := core.NewDatabase()
	engine := classify.NewEngine()
	if _, err := Run(db, engine, nil, Options{Steps: 0}); err == nil {
		t.Error("accepted zero steps")
	}
	if _, err := Run(db, engine, nil, Options{Steps: 3, StepFractions: []float64{1}}); err == nil {
		t.Error("accepted mismatched fractions")
	}
}

func TestStepBounds(t *testing.T) {
	b := stepBounds(100, []float64{0.25, 0.25, 0.5})
	if b[0] != 25 || b[1] != 50 || b[2] != 100 {
		t.Errorf("bounds = %v", b)
	}
	b = stepBounds(0, []float64{0.5, 0.5})
	if b[1] != 0 {
		t.Errorf("empty bounds = %v", b)
	}
}

func TestCohenKappa(t *testing.T) {
	// Perfect agreement with balanced marginals: kappa 1.
	if k := cohenKappa(100, 100, 50, 50); k != 1 {
		t.Errorf("perfect kappa = %v", k)
	}
	// Chance-level agreement: two annotators always saying "exclude"
	// agree 100% but kappa treats it as degenerate (pe = 1 -> 1).
	if k := cohenKappa(100, 100, 0, 0); k != 1 {
		t.Errorf("degenerate kappa = %v", k)
	}
	// Independent coin flips: agreement ~50%, kappa ~0.
	if k := cohenKappa(1000, 500, 500, 500); k > 0.01 || k < -0.01 {
		t.Errorf("chance kappa = %v, want ~0", k)
	}
	// Kappa is lower than raw agreement when the positive class is rare.
	raw := 0.9
	k := cohenKappa(1000, 900, 80, 100)
	if k >= raw {
		t.Errorf("kappa %v not below raw %v for skewed marginals", k, raw)
	}
}

func TestKappaReportedPerStep(t *testing.T) {
	db, gt := buildPipelineDB(t, 15)
	engine := classify.NewEngine()
	res, err := Run(db, engine, truthFromGT(gt), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Steps {
		if s.Decisions > 50 {
			if s.Kappa <= 0 || s.Kappa > 1 {
				t.Errorf("step %d: kappa = %v out of range", s.Step, s.Kappa)
			}
			// Kappa is chance-corrected: it must not exceed raw agreement.
			if s.Kappa > s.AgreementPct/100+1e-9 {
				t.Errorf("step %d: kappa %v above raw agreement %v", s.Step, s.Kappa, s.AgreementPct/100)
			}
		}
	}
}
