// Package annotate simulates RemembERR's four-eyes classification
// protocol (Section V-A of the paper).
//
// The regex filter of the classify package leaves a residue of
// undecided (erratum, category) pairs. In the paper, two researchers
// decided these pairs independently, then discussed and resolved every
// mismatch, iterating in seven successive batches; inter-annotator
// agreement stayed generally above 80% and improved across steps
// (Figures 8 and 9).
//
// Here the two annotators are simulated: each answers with the ground
// truth flipped at an error rate that decays across discussion steps
// (the discussions sharpen the category definitions). Mismatches are
// resolved by "discussion", which recovers the truth — exactly the
// fixed point the paper's protocol converges to, since the published
// database is the post-discussion consensus.
package annotate

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/taxonomy"
	"repro/pkg/domain"
)

// Truth supplies the ground-truth annotation for an erratum — the role
// played by careful human reading in the paper. It returns nil when no
// truth is known, in which case undecided pairs resolve to exclude.
type Truth func(e *core.Erratum) *core.Annotation

// Options configures the protocol simulation.
type Options struct {
	// Seed drives the annotator error processes.
	Seed int64
	// Steps is the number of discussion batches (the paper used 7).
	Steps int
	// ErrorA and ErrorB are the initial per-decision error rates of the
	// two annotators.
	ErrorA, ErrorB float64
	// Decay is the per-step multiplicative decay of the error rates.
	Decay float64
	// StepFractions gives the fraction of errata processed in each
	// step; it must have Steps entries summing to ~1. Nil selects the
	// default batching.
	StepFractions []float64
	// Workers is the number of goroutines classifying errata (the
	// regex stage is embarrassingly parallel; the annotator simulation
	// stays sequential for determinism). 0 selects GOMAXPROCS.
	Workers int
	// Trace, when non-nil, receives child spans for the stage's phases
	// (regex classification, the protocol simulation, annotation
	// propagation). Tracing never affects results.
	Trace *obs.Span
}

// DefaultOptions returns the calibration used for the paper figures.
func DefaultOptions() Options {
	return Options{
		Seed:   1,
		Steps:  7,
		ErrorA: 0.08,
		ErrorB: 0.12,
		Decay:  0.85,
		StepFractions: []float64{
			0.06, 0.10, 0.14, 0.15, 0.18, 0.17, 0.20,
		},
	}
}

// StepResult reports one discussion step (one point of Figures 8 and 9).
type StepResult struct {
	// Step is the 1-based step number.
	Step int
	// Errata is the number of errata classified in this step.
	Errata int
	// CumulativeErrata is the running total (Figure 8).
	CumulativeErrata int
	// Decisions is the number of human decisions taken per annotator.
	Decisions int
	// Agreed counts decisions where both annotators agreed before the
	// discussion.
	Agreed int
	// AgreementPct is Agreed/Decisions in percent (Figure 9).
	AgreementPct float64
	// Kappa is Cohen's kappa, the chance-corrected agreement: raw
	// agreement is inflated because most surfaced pairs resolve to
	// exclude, so two annotators agree by chance alone; kappa removes
	// that baseline.
	Kappa float64
}

// Result summarizes a protocol run.
type Result struct {
	// Steps lists the per-step results in order.
	Steps []StepResult
	// FilterStats is the decision accounting of the auto-filter.
	FilterStats classify.Stats
	// HumanDecisions is the total number of per-annotator decisions
	// (the paper reduced this to 2,064).
	HumanDecisions int
	// ResolvedIncludes counts undecided pairs resolved to include.
	ResolvedIncludes int
	// ResolvedExcludes counts undecided pairs resolved to exclude.
	ResolvedExcludes int
}

// Run classifies every unique erratum of the database with the engine,
// simulates the four-eyes protocol on the undecided pairs, and writes
// the resulting annotations back to the database (propagating each
// unique erratum's annotation to all of its duplicate occurrences).
func Run(db *core.Database, engine *classify.Engine, truth Truth, opts Options) (*Result, error) {
	if opts.Steps <= 0 {
		return nil, fmt.Errorf("annotate: Steps must be positive")
	}
	fractions := opts.StepFractions
	if fractions == nil {
		fractions = DefaultOptions().StepFractions
	}
	if len(fractions) != opts.Steps {
		return nil, fmt.Errorf("annotate: %d step fractions for %d steps", len(fractions), opts.Steps)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	scheme := engine.Scheme()
	res := &Result{}

	// The paper classified Intel errata first, then AMD (Figure 9 is
	// chronological in that order).
	uniques := append(db.UniqueVendor(core.Intel), db.UniqueVendor(core.AMD)...)

	// Classify everything up front. The regex stage dominates the
	// pipeline cost and is embarrassingly parallel; the reports are
	// deterministic per erratum, so parallelism does not affect the
	// result.
	csp := opts.Trace.StartChild("classify")
	csp.SetItems(len(uniques))
	reports := classifyAll(engine, uniques, opts.Workers)
	for _, rep := range reports {
		res.FilterStats.Accumulate(rep)
	}
	csp.End()
	psp := opts.Trace.StartChild("protocol")
	psp.SetItems(len(uniques))

	// Batch boundaries.
	bounds := stepBounds(len(uniques), fractions)

	errA, errB := opts.ErrorA, opts.ErrorB
	start := 0
	for step := 1; step <= opts.Steps; step++ {
		end := bounds[step-1]
		sr := StepResult{Step: step, Errata: end - start}
		var posA, posB, bothPos, bothNeg int
		for i := start; i < end; i++ {
			e, rep := uniques[i], reports[i]
			var truthAnn *core.Annotation
			if truth != nil {
				truthAnn = truth(e)
			}
			for _, cat := range rep.UndecidedPairs(scheme) {
				isTrue := truthHas(truthAnn, cat)
				a := decide(rng, isTrue, errA)
				b := decide(rng, isTrue, errB)
				sr.Decisions++
				if a == b {
					sr.Agreed++
					if a {
						bothPos++
					} else {
						bothNeg++
					}
				}
				if a {
					posA++
				}
				if b {
					posB++
				}
				// The discussion resolves every pair to the truth.
				if isTrue {
					res.ResolvedIncludes++
				} else {
					res.ResolvedExcludes++
				}
			}
			applyAnnotation(e, rep, truthAnn, scheme)
		}
		if sr.Decisions > 0 {
			sr.AgreementPct = 100 * float64(sr.Agreed) / float64(sr.Decisions)
			sr.Kappa = cohenKappa(sr.Decisions, sr.Agreed, posA, posB)
		} else {
			sr.AgreementPct = 100
			sr.Kappa = 1
		}
		sr.CumulativeErrata = end
		res.HumanDecisions += sr.Decisions
		res.Steps = append(res.Steps, sr)
		start = end
		errA *= opts.Decay
		errB *= opts.Decay
	}

	psp.End()
	// Propagate unique annotations to duplicate occurrences, and apply
	// the per-occurrence workaround and status classification.
	prsp := opts.Trace.StartChild("propagate")
	propagate(db, engine)
	prsp.End()
	return res, nil
}

// classifyAll runs the engine over the errata with a worker pool.
func classifyAll(engine *classify.Engine, errata []*core.Erratum, workers int) []*classify.Report {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(errata) {
		workers = len(errata)
	}
	reports := make([]*classify.Report, len(errata))
	if workers <= 1 {
		for i, e := range errata {
			reports[i] = engine.Classify(e)
		}
		return reports
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i] = engine.Classify(errata[i])
			}
		}()
	}
	for i := range errata {
		next <- i
	}
	close(next)
	wg.Wait()
	return reports
}

// cohenKappa computes Cohen's kappa from the decision counts: po is
// the observed agreement, pe the agreement expected by chance from the
// annotators' marginal include rates.
func cohenKappa(n, agreed, posA, posB int) float64 {
	po := float64(agreed) / float64(n)
	pA, pB := float64(posA)/float64(n), float64(posB)/float64(n)
	pe := pA*pB + (1-pA)*(1-pB)
	if pe >= 1 {
		return 1
	}
	return (po - pe) / (1 - pe)
}

func stepBounds(n int, fractions []float64) []int {
	bounds := make([]int, len(fractions))
	acc := 0.0
	for i, f := range fractions {
		acc += f
		b := int(acc * float64(n))
		if b > n {
			b = n
		}
		bounds[i] = b
	}
	bounds[len(bounds)-1] = n
	return bounds
}

func decide(rng *rand.Rand, truth bool, errRate float64) bool {
	if rng.Float64() < errRate {
		return !truth
	}
	return truth
}

func truthHas(ann *core.Annotation, cat string) bool {
	if ann == nil {
		return false
	}
	return ann.Has(cat)
}

// truthConcrete returns the ground-truth concrete text for a category.
func truthConcrete(ann *core.Annotation, cat string) (string, bool) {
	if ann == nil {
		return "", false
	}
	for _, k := range taxonomy.Kinds {
		for _, it := range ann.Items(k) {
			if it.Category == cat {
				return it.Concrete, true
			}
		}
	}
	return "", false
}

// applyAnnotation writes the final (post-discussion) annotation of one
// unique erratum: auto-included categories plus undecided categories
// resolved to the truth.
func applyAnnotation(e *core.Erratum, rep *classify.Report, truthAnn *core.Annotation, scheme domain.Scheme) {
	var ann core.Annotation
	add := func(cat, concrete string) {
		c, ok := scheme.Category(cat)
		if !ok {
			return
		}
		item := core.Item{Category: cat, Concrete: concrete}
		switch c.Kind {
		case taxonomy.Trigger:
			ann.Triggers = append(ann.Triggers, item)
		case taxonomy.Context:
			ann.Contexts = append(ann.Contexts, item)
		case taxonomy.Effect:
			ann.Effects = append(ann.Effects, item)
		}
	}
	for _, cat := range rep.IncludedCategories(scheme) {
		add(cat, rep.Concrete[cat])
	}
	for _, cat := range rep.UndecidedPairs(scheme) {
		if truthHas(truthAnn, cat) {
			// The human annotator writes the concrete description while
			// resolving the pair.
			concrete, _ := truthConcrete(truthAnn, cat)
			if concrete == "" {
				concrete = rep.Concrete[cat]
			}
			add(cat, concrete)
		}
	}
	ann.MSRs = filterKnownMSRs(rep.MSRs)
	ann.ComplexConditions = rep.Complex
	ann.TrivialTrigger = rep.Trivial
	ann.SimulationOnly = rep.SimulationOnly
	e.Ann = ann
	e.WorkaroundCat = rep.WorkaroundCat
	e.Fix = rep.Fix
}

func filterKnownMSRs(msrs []string) []string {
	var out []string
	for _, m := range msrs {
		out = append(out, m)
	}
	return out
}

// propagate copies each unique representative's annotation to all other
// occurrences of its cluster, and classifies the per-occurrence
// workaround and status fields (which can legitimately differ across
// occurrences, e.g. a later stepping fixes the bug).
func propagate(db *core.Database, engine *classify.Engine) {
	repAnn := make(map[string]core.Annotation)
	for _, e := range db.Unique() {
		if e.Key != "" {
			repAnn[vendorKey(e)] = e.Ann
		}
	}
	uniqueSet := make(map[*core.Erratum]bool)
	for _, e := range db.Unique() {
		uniqueSet[e] = true
	}
	keys := make([]string, 0, len(db.Docs))
	for k := range db.Docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, e := range db.Docs[k].Errata {
			if uniqueSet[e] || e.Key == "" {
				continue
			}
			if ann, ok := repAnn[vendorKey(e)]; ok {
				e.Ann = ann.Clone()
			}
			e.WorkaroundCat = classify.ClassifyWorkaround(e.Workaround)
			e.Fix = classify.ClassifyStatus(e.Status)
		}
	}
}

func vendorKey(e *core.Erratum) string { return e.DocKeyVendor() + "|" + e.Key }
