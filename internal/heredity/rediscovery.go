package heredity

import (
	"repro/internal/core"
)

// Rediscovery reports, for one document, how many of its bugs were
// inherited from earlier designs, and how many of those were already
// disclosed somewhere before this design was released — the paper's
// rediscovery question (Section IV-B2): are transmitted bugs
// rediscovered, or carried over knowingly?
type Rediscovery struct {
	DocKey string
	Label  string
	// Keys is the number of distinct bugs in the document.
	Keys int
	// Inherited is the number of its bugs that also occur in an
	// earlier-ordered document of the same vendor.
	Inherited int
	// KnownAtRelease is the number of inherited bugs already disclosed
	// in an earlier document before this document's release date.
	KnownAtRelease int
}

// KnownFraction is KnownAtRelease/Inherited (0 when nothing inherited).
func (r Rediscovery) KnownFraction() float64 {
	if r.Inherited == 0 {
		return 0
	}
	return float64(r.KnownAtRelease) / float64(r.Inherited)
}

// RediscoveryStats computes the rediscovery table for a vendor. It
// requires deduplication and disclosure inference to have run.
func RediscoveryStats(db *core.Database, v core.Vendor) []Rediscovery {
	docs := db.VendorDocuments(v)
	// earliestDisclosure[key][order] = first disclosure of key in the
	// document with that order index.
	type report struct {
		order int
		date  int64
	}
	first := make(map[string][]report)
	for _, d := range docs {
		seen := map[string]bool{}
		for _, e := range d.Errata {
			if e.Key == "" || e.Disclosed.IsZero() || seen[e.Key] {
				continue
			}
			seen[e.Key] = true
			first[e.Key] = append(first[e.Key], report{order: d.Order, date: e.Disclosed.Unix()})
		}
	}

	var out []Rediscovery
	for _, d := range docs {
		r := Rediscovery{DocKey: d.Key, Label: d.Label}
		release := d.Released.Unix()
		seen := map[string]bool{}
		for _, e := range d.Errata {
			if e.Key == "" || seen[e.Key] {
				continue
			}
			seen[e.Key] = true
			r.Keys++
			inherited := false
			known := false
			for _, rep := range first[e.Key] {
				if rep.order < d.Order {
					inherited = true
					if rep.date < release {
						known = true
					}
				}
			}
			if inherited {
				r.Inherited++
			}
			if known {
				r.KnownAtRelease++
			}
		}
		out = append(out, r)
	}
	return out
}
