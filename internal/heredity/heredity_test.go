package heredity

import (
	"testing"
	"time"

	"repro/internal/core"
)

func date(y, m int) time.Time {
	return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC)
}

// buildDB builds three Intel documents with known key overlaps and
// disclosure dates.
func buildDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	mk := func(key, label string, order, gen int, released time.Time, entries ...*core.Erratum) {
		d := &core.Document{
			Key: key, Vendor: core.Intel, Label: label, Order: order,
			GenIndex: gen, Released: released, Errata: entries,
		}
		for i, e := range entries {
			e.DocKey = key
			e.Seq = i + 1
		}
		if err := db.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	mk("intel-06", "6", 0, 6, date(2015, 8),
		&core.Erratum{ID: "S1", Key: "K1", Disclosed: date(2015, 9)},
		&core.Erratum{ID: "S2", Key: "K2", Disclosed: date(2016, 1)},
		&core.Erratum{ID: "S3", Key: "K3", Disclosed: date(2016, 5)},
	)
	mk("intel-07", "7/8", 1, 7, date(2016, 8),
		&core.Erratum{ID: "T1", Key: "K1", Disclosed: date(2016, 9)}, // forward-latent
		&core.Erratum{ID: "T2", Key: "K4", Disclosed: date(2016, 10)},
		&core.Erratum{ID: "T3", Key: "K5", Disclosed: date(2017, 1)},
	)
	mk("intel-08", "8/9", 2, 8, date(2017, 10),
		&core.Erratum{ID: "U1", Key: "K1", Disclosed: date(2017, 11)}, // forward-latent again
		&core.Erratum{ID: "U2", Key: "K5", Disclosed: date(2017, 12)},
	)
	// K6 is reported in intel-08 first, then in intel-06 (backward).
	db.Docs["intel-08"].Errata = append(db.Docs["intel-08"].Errata,
		&core.Erratum{DocKey: "intel-08", ID: "U3", Seq: 3, Key: "K6", Disclosed: date(2018, 1)})
	db.Docs["intel-06"].Errata = append(db.Docs["intel-06"].Errata,
		&core.Erratum{DocKey: "intel-06", ID: "S4", Seq: 4, Key: "K6", Disclosed: date(2018, 6)})
	return db
}

func TestSharedMatrix(t *testing.T) {
	db := buildDB(t)
	m := SharedMatrix(db, core.Intel)
	if len(m.Docs) != 3 {
		t.Fatalf("docs = %v", m.Docs)
	}
	// Diagonal: unique keys per document.
	if m.Counts[0][0] != 4 || m.Counts[1][1] != 3 || m.Counts[2][2] != 3 {
		t.Errorf("diagonal = %d,%d,%d", m.Counts[0][0], m.Counts[1][1], m.Counts[2][2])
	}
	// intel-06 & intel-07 share K1.
	if m.Counts[0][1] != 1 || m.Counts[1][0] != 1 {
		t.Errorf("share(06,07) = %d", m.Counts[0][1])
	}
	// intel-06 & intel-08 share K1 and K6.
	if m.Counts[0][2] != 2 {
		t.Errorf("share(06,08) = %d", m.Counts[0][2])
	}
	// intel-07 & intel-08 share K1 and K5.
	if m.Counts[1][2] != 2 {
		t.Errorf("share(07,08) = %d", m.Counts[1][2])
	}
}

func TestSharedKeys(t *testing.T) {
	db := buildDB(t)
	keys := SharedKeys(db, "intel-06", "intel-07", "intel-08")
	if len(keys) != 1 || keys[0] != "K1" {
		t.Errorf("shared keys = %v", keys)
	}
	keys = SharedKeys(db, "intel-06", "intel-08")
	if len(keys) != 2 {
		t.Errorf("shared(06,08) = %v", keys)
	}
	if SharedKeys(db) != nil {
		t.Error("no docs should give nil")
	}
	if SharedKeys(db, "missing") != nil {
		t.Error("missing doc should give nil")
	}
}

func TestDisclosureTraces(t *testing.T) {
	db := buildDB(t)
	traces := DisclosureTraces(db, []string{"K1"}, "intel-06", "intel-07", "intel-08")
	if len(traces) != 3 {
		t.Fatalf("traces = %d", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Dates) != 1 {
			t.Errorf("%s: dates = %v", tr.DocKey, tr.Dates)
		}
	}
	if !traces[0].Dates[0].Equal(date(2015, 9)) {
		t.Errorf("trace date = %v", traces[0].Dates[0])
	}
}

func TestForwardBackwardLatent(t *testing.T) {
	db := buildDB(t)
	res := ForwardBackwardLatent(db, core.Intel)
	// K1 (06->07->08) and K5 (07->08) are forward-latent; K6 is
	// backward-latent (08 first, then 06).
	if res.ForwardTotal != 2 {
		t.Errorf("forward = %d, want 2", res.ForwardTotal)
	}
	if res.BackwardTotal != 1 {
		t.Errorf("backward = %d, want 1", res.BackwardTotal)
	}
	// K1's forward event is accumulated at the EARLIEST later report.
	if len(res.Forward) == 0 || !res.Forward[0].Date.Equal(date(2016, 9)) {
		t.Errorf("forward series = %+v", res.Forward)
	}
	if len(res.Backward) == 0 || !res.Backward[0].Date.Equal(date(2018, 6)) {
		t.Errorf("backward series = %+v", res.Backward)
	}
}

func TestLongestLineages(t *testing.T) {
	db := buildDB(t)
	lins := LongestLineages(db, 2)
	if len(lins) != 2 {
		t.Fatalf("lineages = %v", lins)
	}
	// K1 spans generations 6..8 (span 2), K6 spans 6..8 (span 2); K1
	// has more documents.
	if lins[0].Key != "K1" || lins[0].GenSpan != 2 || len(lins[0].Docs) != 3 {
		t.Errorf("top lineage = %+v", lins[0])
	}
	if lins[1].Key != "K6" {
		t.Errorf("second lineage = %+v", lins[1])
	}
}

func TestKnownBeforeNextRelease(t *testing.T) {
	db := buildDB(t)
	// K1 was disclosed in intel-06 on 2015-09, before intel-07's
	// release in 2016-08.
	n := KnownBeforeNextRelease(db, []string{"K1"}, "intel-06", "intel-07")
	if n != 1 {
		t.Errorf("known before release = %d, want 1", n)
	}
	// K6 was disclosed in intel-06 only in 2018, after intel-07's
	// release.
	n = KnownBeforeNextRelease(db, []string{"K6"}, "intel-06", "intel-07")
	if n != 0 {
		t.Errorf("known before release = %d, want 0", n)
	}
	if KnownBeforeNextRelease(db, []string{"K1"}, "nope", "intel-07") != 0 {
		t.Error("missing doc should give 0")
	}
}

func TestRediscoveryStats(t *testing.T) {
	db := buildDB(t)
	stats := RediscoveryStats(db, core.Intel)
	if len(stats) != 3 {
		t.Fatalf("stats = %v", stats)
	}
	byDoc := map[string]Rediscovery{}
	for _, r := range stats {
		byDoc[r.DocKey] = r
	}
	// intel-06 is the first document: nothing inherited.
	r6 := byDoc["intel-06"]
	if r6.Keys != 4 || r6.Inherited != 0 || r6.KnownAtRelease != 0 {
		t.Errorf("intel-06 = %+v", r6)
	}
	// intel-07 inherits K1, disclosed in intel-06 (2015-09) before
	// intel-07's release (2016-08).
	r7 := byDoc["intel-07"]
	if r7.Inherited != 1 || r7.KnownAtRelease != 1 {
		t.Errorf("intel-07 = %+v", r7)
	}
	if r7.KnownFraction() != 1 {
		t.Errorf("intel-07 known fraction = %v", r7.KnownFraction())
	}
	// intel-08 shares K1 (known before its 2017-10 release), K5
	// (disclosed in intel-07 in 2017-01, also before) and K6 (shared
	// with intel-06 but only disclosed there in 2018 — a backward-latent
	// bug, so not known at release).
	r8 := byDoc["intel-08"]
	if r8.Inherited != 3 || r8.KnownAtRelease != 2 {
		t.Errorf("intel-08 = %+v", r8)
	}
	// Zero-inherited documents report fraction 0.
	if r6.KnownFraction() != 0 {
		t.Errorf("intel-06 fraction = %v", r6.KnownFraction())
	}
}
