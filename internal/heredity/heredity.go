// Package heredity studies bugs shared across designs (Section IV-B2 of
// the paper): the shared-errata matrix (Figure 3), disclosure traces of
// shared bug sets (Figure 4), and forward-/backward-latent errata
// (Figure 5). Deduplication and disclosure inference must have run.
package heredity

import (
	"sort"
	"time"

	"repro/internal/core"
)

// Matrix is the shared-errata matrix of one vendor: Counts[i][j] is the
// number of unique keys occurring in both documents i and j (diagonal:
// the document's unique key count). Docs gives the document keys in
// order.
type Matrix struct {
	Docs   []string
	Labels []string
	Counts [][]int
}

// SharedMatrix computes the heredity matrix for a vendor (Figure 3).
func SharedMatrix(db *core.Database, v core.Vendor) *Matrix {
	docs := db.VendorDocuments(v)
	m := &Matrix{}
	keySets := make([]map[string]bool, len(docs))
	for i, d := range docs {
		m.Docs = append(m.Docs, d.Key)
		m.Labels = append(m.Labels, d.Label)
		set := make(map[string]bool)
		for _, e := range d.Errata {
			if e.Key != "" {
				set[e.Key] = true
			}
		}
		keySets[i] = set
	}
	m.Counts = make([][]int, len(docs))
	for i := range docs {
		m.Counts[i] = make([]int, len(docs))
		for j := range docs {
			n := 0
			small, large := keySets[i], keySets[j]
			if len(large) < len(small) {
				small, large = large, small
			}
			for k := range small {
				if large[k] {
					n++
				}
			}
			m.Counts[i][j] = n
		}
	}
	return m
}

// SharedKeys returns the unique keys present in every one of the given
// documents, sorted.
func SharedKeys(db *core.Database, docKeys ...string) []string {
	if len(docKeys) == 0 {
		return nil
	}
	count := make(map[string]int)
	for _, dk := range docKeys {
		d := db.Docs[dk]
		if d == nil {
			return nil
		}
		seen := make(map[string]bool)
		for _, e := range d.Errata {
			if e.Key != "" && !seen[e.Key] {
				seen[e.Key] = true
				count[e.Key]++
			}
		}
	}
	var out []string
	for k, c := range count {
		if c == len(docKeys) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Trace is the disclosure trace of a set of shared bugs in one document
// (one curve of Figure 4).
type Trace struct {
	DocKey   string
	Label    string
	Released time.Time
	// Dates lists the disclosure dates of the shared keys in this
	// document, ascending.
	Dates []time.Time
}

// DisclosureTraces returns, per document, when the given shared keys
// were disclosed there (Figure 4: the bugs shared by Intel generations
// 6 to 10).
func DisclosureTraces(db *core.Database, keys []string, docKeys ...string) []Trace {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	var out []Trace
	for _, dk := range docKeys {
		d := db.Docs[dk]
		if d == nil {
			continue
		}
		tr := Trace{DocKey: d.Key, Label: d.Label, Released: d.Released}
		seen := make(map[string]bool)
		for _, e := range d.Errata {
			if want[e.Key] && !seen[e.Key] && !e.Disclosed.IsZero() {
				seen[e.Key] = true
				tr.Dates = append(tr.Dates, e.Disclosed)
			}
		}
		sort.Slice(tr.Dates, func(i, j int) bool { return tr.Dates[i].Before(tr.Dates[j]) })
		out = append(out, tr)
	}
	return out
}

// LatentPoint is one point of the forward-/backward-latent curves.
type LatentPoint struct {
	Date       time.Time
	Cumulative int
}

// LatencyResult holds the Figure 5 series.
type LatencyResult struct {
	// Forward is the cumulative count of forward-latent errata: an
	// erratum reported in one design and strictly later reported in a
	// later design, accumulated at the date of the later report.
	Forward []LatentPoint
	// Backward is the cumulative count of backward-latent errata: an
	// erratum reported in a design strictly before being reported in an
	// earlier design.
	Backward []LatentPoint
	// ForwardTotal and BackwardTotal are the final counts.
	ForwardTotal  int
	BackwardTotal int
}

// firstReport is the earliest disclosure of a key in one document.
type firstReport struct {
	order int
	date  time.Time
}

// ForwardBackwardLatent computes the Figure 5 curves for a vendor
// (the paper evaluates Intel; AMD lacks chronological data).
func ForwardBackwardLatent(db *core.Database, v core.Vendor) *LatencyResult {
	// First report of each key per document.
	reports := make(map[string][]firstReport)
	for _, d := range db.VendorDocuments(v) {
		seen := make(map[string]bool)
		for _, e := range d.Errata {
			if e.Key == "" || e.Disclosed.IsZero() || seen[e.Key] {
				continue
			}
			seen[e.Key] = true
			reports[e.Key] = append(reports[e.Key], firstReport{order: d.Order, date: e.Disclosed})
		}
	}

	var fwdDates, bwdDates []time.Time
	keys := make([]string, 0, len(reports))
	for k := range reports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rs := reports[k]
		if len(rs) < 2 {
			continue
		}
		forward, backward := false, false
		var fwdAt, bwdAt time.Time
		for i := 0; i < len(rs); i++ {
			for j := 0; j < len(rs); j++ {
				if rs[j].order > rs[i].order && rs[j].date.After(rs[i].date) {
					// Reported in design i, later reported in a later design j.
					if !forward || rs[j].date.Before(fwdAt) {
						forward, fwdAt = true, rs[j].date
					}
				}
				if rs[j].order < rs[i].order && rs[j].date.After(rs[i].date) {
					// Reported in design i, later reported in an earlier design j.
					if !backward || rs[j].date.Before(bwdAt) {
						backward, bwdAt = true, rs[j].date
					}
				}
			}
		}
		if forward {
			fwdDates = append(fwdDates, fwdAt)
		}
		if backward {
			bwdDates = append(bwdDates, bwdAt)
		}
	}

	res := &LatencyResult{
		Forward:       cumulate(fwdDates),
		Backward:      cumulate(bwdDates),
		ForwardTotal:  len(fwdDates),
		BackwardTotal: len(bwdDates),
	}
	return res
}

func cumulate(dates []time.Time) []LatentPoint {
	sort.Slice(dates, func(i, j int) bool { return dates[i].Before(dates[j]) })
	var out []LatentPoint
	for i, t := range dates {
		if len(out) > 0 && out[len(out)-1].Date.Equal(t) {
			out[len(out)-1].Cumulative = i + 1
			continue
		}
		out = append(out, LatentPoint{Date: t, Cumulative: i + 1})
	}
	return out
}

// Lineage summarizes the document span of one unique key.
type Lineage struct {
	Key     string
	Docs    []string
	GenSpan int // generation distance between first and last Intel doc
}

// LongestLineages returns the unique keys spanning the most Intel
// generations, longest first (Observation O3: bugs stay for up to 11
// generations).
func LongestLineages(db *core.Database, limit int) []Lineage {
	byKey := make(map[string][]*core.Document)
	for _, d := range db.VendorDocuments(core.Intel) {
		seen := make(map[string]bool)
		for _, e := range d.Errata {
			if e.Key != "" && !seen[e.Key] {
				seen[e.Key] = true
				byKey[e.Key] = append(byKey[e.Key], d)
			}
		}
	}
	var out []Lineage
	for k, docs := range byKey {
		minGen, maxGen := docs[0].GenIndex, docs[0].GenIndex
		var dks []string
		for _, d := range docs {
			if d.GenIndex < minGen {
				minGen = d.GenIndex
			}
			if d.GenIndex > maxGen {
				maxGen = d.GenIndex
			}
			dks = append(dks, d.Key)
		}
		out = append(out, Lineage{Key: k, Docs: dks, GenSpan: maxGen - minGen})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GenSpan != out[j].GenSpan {
			return out[i].GenSpan > out[j].GenSpan
		}
		if len(out[i].Docs) != len(out[j].Docs) {
			return len(out[i].Docs) > len(out[j].Docs)
		}
		return out[i].Key < out[j].Key
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// KnownBeforeNextRelease reports, for a set of shared keys, how many
// were disclosed in an earlier-generation document before the release
// date of the given later document (Observation O4).
func KnownBeforeNextRelease(db *core.Database, keys []string, earlierDoc, laterDoc string) int {
	earlier := db.Docs[earlierDoc]
	later := db.Docs[laterDoc]
	if earlier == nil || later == nil {
		return 0
	}
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	n := 0
	seen := make(map[string]bool)
	for _, e := range earlier.Errata {
		if want[e.Key] && !seen[e.Key] && !e.Disclosed.IsZero() && e.Disclosed.Before(later.Released) {
			seen[e.Key] = true
			n++
		}
	}
	return n
}
