package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// fullV2 encodes db with every optional section enabled.
func fullV2(t *testing.T, db *core.Database) []byte {
	t.Helper()
	data, err := EncodeV2(db, V2Options{Postings: true, Fragments: true})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// fixCRC recomputes the header checksum in place, so targeted
// corruption tests reach the validation layers behind it.
func fixCRC(data []byte) {
	binary.LittleEndian.PutUint64(data[24:], uint64(crc32.Checksum(data[v2HeaderSize:], crcTable)))
}

// sectionRange parses the directory and returns the [off, off+len)
// range of the section with the given id, or fails the test.
func sectionRange(t *testing.T, data []byte, id uint32) (int, int) {
	t.Helper()
	n := int(binary.LittleEndian.Uint32(data[12:]))
	for i := 0; i < n; i++ {
		ent := data[v2HeaderSize+i*v2DirEntSize:]
		if binary.LittleEndian.Uint32(ent) == id {
			off := int(binary.LittleEndian.Uint64(ent[4:]))
			ln := int(binary.LittleEndian.Uint64(ent[12:]))
			return off, off + ln
		}
	}
	t.Fatalf("section %d not found", id)
	return 0, 0
}

// TestV2RoundTripSeeds is the cross-format property test over generated
// corpora: for 20 seeds, a database pushed through the v2 binary layout
// and materialized back re-encodes (v1 canonical form) byte-identically
// to the original, and EncodeV2 itself is deterministic.
func TestV2RoundTripSeeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := Encode(gt.DB)
		if err != nil {
			t.Fatalf("seed %d: v1 encode: %v", seed, err)
		}
		enc, err := EncodeV2(gt.DB, V2Options{Postings: true, Fragments: true})
		if err != nil {
			t.Fatalf("seed %d: v2 encode: %v", seed, err)
		}
		enc2, err := EncodeV2(gt.DB, V2Options{Postings: true, Fragments: true})
		if err != nil {
			t.Fatalf("seed %d: v2 re-encode: %v", seed, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("seed %d: EncodeV2 not deterministic", seed)
		}
		sv, err := OpenV2(enc)
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		if !sv.HasPostings() || !sv.HasFragments() {
			t.Fatalf("seed %d: optional sections missing: postings=%v fragments=%v",
				seed, sv.HasPostings(), sv.HasFragments())
		}
		db2, err := sv.Database()
		if err != nil {
			t.Fatalf("seed %d: materialize: %v", seed, err)
		}
		got, err := Encode(db2)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("seed %d: v2 round trip changed the canonical encoding (%d vs %d bytes)",
				seed, len(want), len(got))
		}
	}
}

// TestV2MinimalOptions proves the optional sections really are
// optional: a bare encoding still materializes the same database.
func TestV2MinimalOptions(t *testing.T) {
	db := sampleDB(t)
	enc, err := EncodeV2(db, V2Options{})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := OpenV2(enc)
	if err != nil {
		t.Fatal(err)
	}
	if sv.HasPostings() || sv.HasFragments() {
		t.Fatal("bare encoding reports optional sections")
	}
	if sv.IndexParts() != nil {
		t.Fatal("IndexParts should be nil without a postings section")
	}
	if fr, err := sv.Fragments(); err != nil || fr != nil {
		t.Fatalf("Fragments = %v, %v; want nil, nil without a fragment section", fr, err)
	}
	got, err := sv.Database()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Encode(db)
	enc1, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, enc1) {
		t.Fatal("minimal v2 round trip changed the canonical encoding")
	}
}

// TestV2ZeroDates proves the MinInt64 date sentinel round-trips zero
// times exactly (IsZero on the way out, not 1970 or year-1 artifacts).
func TestV2ZeroDates(t *testing.T) {
	db := sampleDB(t)
	db.Documents()[0].Released = time.Time{}
	db.Documents()[0].Errata[0].Disclosed = time.Time{}
	sv, err := OpenV2(fullV2(t, db))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.Database()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Documents()[0].Released.IsZero() {
		t.Fatalf("Released = %v, want zero", got.Documents()[0].Released)
	}
	if !got.Documents()[0].Errata[0].Disclosed.IsZero() {
		t.Fatalf("Disclosed = %v, want zero", got.Documents()[0].Errata[0].Disclosed)
	}
}

// TestOpenV2Truncation feeds every prefix of a valid v2 file to OpenV2;
// each one must fail with a clean error, never panic, never succeed.
func TestOpenV2Truncation(t *testing.T) {
	enc := fullV2(t, sampleDB(t))
	for i := 0; i < len(enc); i++ {
		if _, err := OpenV2(enc[:i:i]); err == nil {
			t.Fatalf("OpenV2 accepted a %d/%d-byte truncation", i, len(enc))
		}
	}
}

// TestOpenV2BitFlips flips every bit of a valid v2 file one at a time.
// The header checksum covers everything past the header and the header
// fields are each load-bearing, so every flip must produce an error.
func TestOpenV2BitFlips(t *testing.T) {
	enc := fullV2(t, sampleDB(t))
	buf := make([]byte, len(enc))
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			copy(buf, enc)
			buf[i] ^= 1 << bit
			if _, err := OpenV2(buf); err == nil {
				t.Fatalf("OpenV2 accepted a bit flip at byte %d bit %d", i, bit)
			}
		}
	}
}

// TestOpenV2HostileInputs recomputes the checksum after each targeted
// mutation, so validation must catch the damage on its own — bounds,
// enum and structure checks, not just the CRC.
func TestOpenV2HostileInputs(t *testing.T) {
	base := fullV2(t, sampleDB(t))
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), base...)
		b = f(b)
		if len(b) >= v2HeaderSize {
			fixCRC(b)
		}
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic only", []byte(v2Magic)},
		{"wrong magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"version 1", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 1)
			return b
		})},
		{"version 3", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 3)
			return b
		})},
		{"file size mismatch", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], uint64(len(b)+1))
			return b
		})},
		{"section count overflow", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 1<<30)
			return b
		})},
		{"section out of bounds", mutate(func(b []byte) []byte {
			// First directory entry: push its length past EOF.
			binary.LittleEndian.PutUint64(b[v2HeaderSize+12:], uint64(len(b)))
			return b
		})},
		{"duplicate section id", mutate(func(b []byte) []byte {
			id := binary.LittleEndian.Uint32(b[v2HeaderSize:])
			binary.LittleEndian.PutUint32(b[v2HeaderSize+v2DirEntSize:], id)
			return b
		})},
		{"erratum enum out of range", mutate(func(b []byte) []byte {
			off, _ := sectionRange(t, b, secErrata)
			b[off+60] = 255 // workaround-category byte
			return b
		})},
		{"erratum string ref out of bounds", mutate(func(b []byte) []byte {
			off, _ := sectionRange(t, b, secErrata)
			binary.LittleEndian.PutUint32(b[off:], 1<<31) // ID ref offset
			return b
		})},
		{"fragment index out of bounds", mutate(func(b []byte) []byte {
			off, _ := sectionRange(t, b, secFragIdx)
			binary.LittleEndian.PutUint32(b[off:], 1<<31) // detail frag offset
			return b
		})},
		{"postings ordinal out of range", mutate(func(b []byte) []byte {
			off, _ := sectionRange(t, b, secOrds)
			binary.LittleEndian.PutUint32(b[off:], 1<<31)
			return b
		})},
	}
	for _, tc := range cases {
		if _, err := OpenV2(tc.data); err == nil {
			t.Errorf("%s: OpenV2 accepted corrupted input", tc.name)
		}
	}
}

// The format-sniffing contract (both serializations read through one
// entry point, garbage rejected) is covered by TestOpenBytesSniffs in
// open_test.go; the deprecated DecodeAny shim keeps its one regression
// test in deprecated_test.go.

// TestSaveFormat exercises explicit and filename-driven format
// selection, including gzip composition, and the unknown-format error.
func TestSaveFormat(t *testing.T) {
	db := sampleDB(t)
	dir := t.TempDir()
	want, _ := Encode(db)

	check := func(path string) {
		t.Helper()
		got := openDBFile(t, path)
		re, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, re) {
			t.Fatalf("%s: load changed the canonical encoding", path)
		}
	}

	explicit := filepath.Join(dir, "db.bin")
	if err := SaveFormat(db, explicit, "v2"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !IsV2(raw) {
		t.Fatal("SaveFormat(v2) did not write the v2 magic")
	}
	check(explicit)

	suffixed := filepath.Join(dir, "db.v2")
	if err := Save(db, suffixed); err != nil {
		t.Fatal(err)
	}
	if raw, err = os.ReadFile(suffixed); err != nil || !IsV2(raw) {
		t.Fatalf("Save(*.v2) did not write v2: %v", err)
	}
	check(suffixed)
	if r, err := Open(suffixed); err != nil {
		t.Fatal(err)
	} else if sv := r.(*StoreV2); !sv.HasPostings() || !sv.HasFragments() {
		t.Fatal("Save(*.v2) should embed postings and fragments")
	} else if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	zipped := filepath.Join(dir, "db.v2.gz")
	if err := Save(db, zipped); err != nil {
		t.Fatal(err)
	}
	if raw, err = os.ReadFile(zipped); err != nil || IsV2(raw) {
		t.Fatalf("Save(*.v2.gz) should be gzip on the outside: %v", err)
	}
	check(zipped)
	if _, err := Open(zipped); err != nil {
		t.Fatalf("Open(*.v2.gz): %v", err)
	}

	if err := SaveFormat(db, filepath.Join(dir, "x"), "v7"); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("SaveFormat(v7) = %v, want unknown-format error", err)
	}
}
