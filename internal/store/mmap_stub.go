//go:build !(linux || darwin)

package store

import (
	"errors"
	"os"
)

const mmapSupported = false

var errNoMmap = errors.New("store: mmap is not supported on this platform")

func mmapFile(f *os.File) ([]byte, func([]byte) error, error) {
	return nil, nil, errNoMmap
}

func madviseRandom(b []byte) error   { return nil }
func madviseDontNeed(b []byte) error { return nil }
