package store

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestEncodeRoundTripSeeds is the codec property test over generated
// corpora: for 20 seeds, Encode∘Decode is the identity on encoded
// bytes — Encode(db), Encode(Decode(Encode(db))) and one further round
// are byte-identical, so the canonical form is stable under arbitrarily
// many store/load cycles.
func TestEncodeRoundTripSeeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		enc1, err := Encode(gt.DB)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		db2 := openDBBytes(t, enc1)
		enc2, err := Encode(db2)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("seed %d: Encode(Decode(Encode(db))) differs: %d vs %d bytes",
				seed, len(enc1), len(enc2))
		}
		db3 := openDBBytes(t, enc2)
		enc3, err := Encode(db3)
		if err != nil {
			t.Fatalf("seed %d: third encode: %v", seed, err)
		}
		if !bytes.Equal(enc2, enc3) {
			t.Fatalf("seed %d: third round not byte-identical", seed)
		}
	}
}

// TestSaveLoadGzipAgreement proves the gzip and plain file paths carry
// identical content: saving the same database both ways and loading
// each back yields byte-identical re-encodings, and the gzip file is
// actually compressed.
func TestSaveLoadGzipAgreement(t *testing.T) {
	dir := t.TempDir()
	for _, seed := range []int64{1, 7, 19} {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plain := filepath.Join(dir, "db.json")
		zipped := filepath.Join(dir, "db.json.gz")
		if err := Save(gt.DB, plain); err != nil {
			t.Fatalf("seed %d: save plain: %v", seed, err)
		}
		if err := Save(gt.DB, zipped); err != nil {
			t.Fatalf("seed %d: save gzip: %v", seed, err)
		}
		fromPlain := openDBFile(t, plain)
		fromZip := openDBFile(t, zipped)
		encPlain, err := Encode(fromPlain)
		if err != nil {
			t.Fatal(err)
		}
		encZip, err := Encode(fromZip)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encPlain, encZip) {
			t.Fatalf("seed %d: plain and gzip paths disagree", seed)
		}
		pi, err := os.Stat(plain)
		if err != nil {
			t.Fatal(err)
		}
		zi, err := os.Stat(zipped)
		if err != nil {
			t.Fatal(err)
		}
		if zi.Size() >= pi.Size() {
			t.Fatalf("seed %d: gzip file (%d) not smaller than plain (%d)", seed, zi.Size(), pi.Size())
		}
	}
}

// TestGoldenFormatV1 pins the exact FormatVersion 1 byte layout of a
// handcrafted database. Any change to field names, omitempty behavior,
// ordering or indentation breaks this test: bump FormatVersion and
// regenerate deliberately with -update instead of silently changing the
// released format.
func TestGoldenFormatV1(t *testing.T) {
	golden := filepath.Join("testdata", "golden_v1.json")
	got, err := Encode(fuzzSeedDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded bytes differ from %s (%d vs %d bytes); run with -update only for a deliberate format change",
			golden, len(got), len(want))
	}
	// The golden bytes must stay decodable and canonical.
	db := openDBBytes(t, want)
	re, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, want) {
		t.Fatal("golden file is not in canonical form")
	}
}
