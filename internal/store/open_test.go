package store

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// openTestFiles saves one corpus in every on-disk shape Open must
// sniff: v1 JSON, gzipped v1, v2, gzipped v2. Returns the database and
// the four paths.
func openTestFiles(t *testing.T) (*core.Database, map[string]string) {
	t.Helper()
	gt, err := corpus.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := map[string]string{
		"v1":    filepath.Join(dir, "db.json"),
		"v1.gz": filepath.Join(dir, "db.json.gz"),
		"v2":    filepath.Join(dir, "db.v2"),
		"v2.gz": filepath.Join(dir, "db.v2.gz"),
	}
	for _, p := range paths {
		if err := SaveFormat(gt.DB, p, ""); err != nil {
			t.Fatal(err)
		}
	}
	return gt.DB, paths
}

// mmapExpected reports whether the default Open of an uncompressed v2
// file should produce a mapping on this platform.
func mmapExpected() bool {
	return mmapSupported && (runtime.GOOS == "linux" || runtime.GOOS == "darwin")
}

func TestOpenSniffsEveryShape(t *testing.T) {
	db, paths := openTestFiles(t)
	want := db.ComputeStats()
	for shape, path := range paths {
		t.Run(shape, func(t *testing.T) {
			r, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			wantFormat := FormatVersion
			if strings.HasPrefix(shape, "v2") {
				wantFormat = FormatVersion2
			}
			if r.Format() != wantFormat {
				t.Fatalf("Format() = %d, want %d", r.Format(), wantFormat)
			}
			wantMapped := shape == "v2" && mmapExpected()
			if r.Mapped() != wantMapped {
				t.Errorf("Mapped() = %v, want %v", r.Mapped(), wantMapped)
			}
			if r.Format() == FormatVersion2 {
				if _, ok := r.(*StoreV2); !ok {
					t.Errorf("format-2 reader is %T, want *StoreV2", r)
				}
			}
			got, err := r.Database()
			if err != nil {
				t.Fatal(err)
			}
			if gs := got.ComputeStats(); gs != want {
				t.Errorf("stats mismatch: got %+v want %+v", gs, want)
			}
		})
	}
}

func TestOpenFormatConstraints(t *testing.T) {
	_, paths := openTestFiles(t)
	if _, err := Open(paths["v2"], WithFormat("v1")); err == nil {
		t.Error("Open(v2 file, WithFormat(v1)) succeeded, want error")
	}
	if _, err := Open(paths["v1"], WithFormat("v2")); err == nil {
		t.Error("Open(v1 file, WithFormat(v2)) succeeded, want error")
	}
	if _, err := Open(paths["v1"], WithFormat("v3")); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Errorf("Open(WithFormat(v3)) = %v, want unknown-format error", err)
	}
	for _, shape := range []string{"v1", "v1.gz", "v2", "v2.gz"} {
		want := "v1"
		if strings.HasPrefix(shape, "v2") {
			want = "v2"
		}
		r, err := Open(paths[shape], WithFormat(want), WithMmap(false))
		if err != nil {
			t.Errorf("Open(%s, WithFormat(%s)): %v", shape, want, err)
			continue
		}
		r.Close()
	}
}

func TestOpenMmapForced(t *testing.T) {
	_, paths := openTestFiles(t)
	if _, err := Open(paths["v2.gz"], WithMmap(true)); err == nil {
		t.Error("Open(gz, WithMmap(true)) succeeded, want error")
	}
	if !mmapExpected() {
		t.Skip("no mmap on this platform")
	}
	if _, err := Open(paths["v1"], WithMmap(true)); err == nil {
		t.Error("Open(v1, WithMmap(true)) succeeded, want error")
	}
	r, err := Open(paths["v2"], WithMmap(true))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mapped() || !r.Region().Mapped() {
		t.Error("forced mmap open is not mapped")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMmapOff(t *testing.T) {
	_, paths := openTestFiles(t)
	r, err := Open(paths["v2"], WithMmap(false))
	if err != nil {
		t.Fatal(err)
	}
	if r.Mapped() {
		t.Error("WithMmap(false) reader reports Mapped")
	}
	if reg := r.Region(); reg == nil || reg.Mapped() {
		t.Errorf("heap reader region = %v, want active heap region", reg)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenBytesSniffs(t *testing.T) {
	db, paths := openTestFiles(t)
	want := db.ComputeStats()
	for _, shape := range []string{"v1", "v1.gz", "v2", "v2.gz"} {
		data, err := os.ReadFile(paths[shape])
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenBytes(data)
		if err != nil {
			t.Fatalf("OpenBytes(%s): %v", shape, err)
		}
		got, err := r.Database()
		if err != nil {
			t.Fatal(err)
		}
		if gs := got.ComputeStats(); gs != want {
			t.Errorf("OpenBytes(%s) stats mismatch", shape)
		}
		if r.Mapped() {
			t.Errorf("OpenBytes(%s) reports Mapped", shape)
		}
	}
	if _, err := OpenBytes([]byte("{"), WithFormat("v2")); err == nil {
		t.Error("OpenBytes(junk, WithFormat(v2)) succeeded, want error")
	}
}

func TestRegionLifecycleHeap(t *testing.T) {
	reg := newHeapRegion([]byte("payload"))
	if !reg.Active() || reg.Mapped() {
		t.Fatalf("fresh heap region: Active=%v Mapped=%v", reg.Active(), reg.Mapped())
	}
	if !reg.TryRetain() {
		t.Fatal("TryRetain on live region failed")
	}
	if err := reg.Release(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Release(); err != nil { // opener's reference
		t.Fatal(err)
	}
	if reg.Active() {
		t.Error("region Active after final release")
	}
	if reg.TryRetain() {
		t.Error("TryRetain succeeded on a dead region")
	}
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	reg.Release()
}

func TestRegionLifecycleMapped(t *testing.T) {
	if !mmapExpected() {
		t.Skip("no mmap on this platform")
	}
	_, paths := openTestFiles(t)
	r, err := Open(paths["v2"], WithMmap(true))
	if err != nil {
		t.Fatal(err)
	}
	sv := r.(*StoreV2)
	reg := sv.Region()
	if !reg.TryRetain() {
		t.Fatal("TryRetain on freshly opened mapping failed")
	}
	// Close drops the opener's reference; ours keeps the mapping alive.
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if !reg.Active() {
		t.Fatal("mapping died while a reference was held")
	}
	// The bytes must still be readable through the retained reference.
	if db, err := sv.Database(); err != nil || db == nil {
		t.Fatalf("Database() through retained region: %v", err)
	}
	if err := reg.DropResident(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Release(); err != nil {
		t.Fatal(err)
	}
	if reg.Active() {
		t.Error("mapping Active after last release")
	}
	if reg.TryRetain() {
		t.Error("TryRetain revived an unmapped region")
	}
}
