package store

import (
	"encoding/json"

	"repro/internal/core"
)

// This file defines the canonical per-erratum response representation
// shared by the serving layer and the FormatVersion 2 store. The hot
// read path in internal/serve stitches whole /v1 responses out of these
// precomputed fragments with a pooled buffer instead of running
// encoding/json per request, and the v2 store persists the fragment
// bytes alongside the records so a served file needs no marshaling at
// all. Byte-for-byte equivalence with the reflective json.Marshal path
// is the invariant everything hangs on: both paths marshal the same DTO
// types below, and the serve-layer equivalence matrix pins the result.

// ResponseItem is one annotation item as served by the /v1 API.
type ResponseItem struct {
	Category string `json:"category"`
	Concrete string `json:"concrete,omitempty"`
}

// ErratumSummary is the /v1/errata list-row representation.
type ErratumSummary struct {
	FullID    string `json:"full_id"`
	Key       string `json:"key,omitempty"`
	Doc       string `json:"doc"`
	ID        string `json:"id"`
	Vendor    string `json:"vendor"`
	Title     string `json:"title"`
	Disclosed string `json:"disclosed,omitempty"`
}

// ErratumDetail is the /v1/errata/{key} per-occurrence representation.
type ErratumDetail struct {
	ErratumSummary
	Seq         int            `json:"seq"`
	Description string         `json:"description,omitempty"`
	Implication string         `json:"implication,omitempty"`
	Workaround  string         `json:"workaround,omitempty"`
	Status      string         `json:"status,omitempty"`
	WorkCat     string         `json:"workaround_category"`
	Fix         string         `json:"fix_status"`
	Triggers    []ResponseItem `json:"triggers,omitempty"`
	Contexts    []ResponseItem `json:"contexts,omitempty"`
	Effects     []ResponseItem `json:"effects,omitempty"`
	MSRs        []string       `json:"msrs,omitempty"`
	Complex     bool           `json:"complex_conditions,omitempty"`
	SimOnly     bool           `json:"simulation_only,omitempty"`
}

// Summarize builds the canonical list-row representation of an entry.
func Summarize(db *core.Database, e *core.Erratum) ErratumSummary {
	sum := ErratumSummary{
		FullID: e.FullID(),
		Key:    e.Key,
		Doc:    e.DocKey,
		ID:     e.ID,
		Title:  e.Title,
	}
	if d := db.Docs[e.DocKey]; d != nil {
		sum.Vendor = d.Vendor.String()
	}
	if !e.Disclosed.IsZero() {
		sum.Disclosed = e.Disclosed.Format(dateFmt)
	}
	return sum
}

// DetailOf builds the canonical per-occurrence representation.
func DetailOf(db *core.Database, e *core.Erratum) ErratumDetail {
	return ErratumDetail{
		ErratumSummary: Summarize(db, e),
		Seq:            e.Seq,
		Description:    e.Description,
		Implication:    e.Implication,
		Workaround:     e.Workaround,
		Status:         e.Status,
		WorkCat:        e.WorkaroundCat.String(),
		Fix:            e.Fix.String(),
		Triggers:       toResponseItems(e.Ann.Triggers),
		Contexts:       toResponseItems(e.Ann.Contexts),
		Effects:        toResponseItems(e.Ann.Effects),
		MSRs:           e.Ann.MSRs,
		Complex:        e.Ann.ComplexConditions,
		SimOnly:        e.Ann.SimulationOnly,
	}
}

func toResponseItems(items []core.Item) []ResponseItem {
	out := make([]ResponseItem, 0, len(items))
	for _, it := range items {
		out = append(out, ResponseItem{Category: it.Category, Concrete: it.Concrete})
	}
	return out
}

// Fragments holds the precomputed canonical JSON fragments of one
// database snapshot: per entry the marshaled ErratumDetail and
// ErratumSummary bytes, plus the JSON string literal of every cluster
// key. Lookups are pointer-keyed (entries are immutable while served)
// and allocation-free, so the serving layer can stitch whole responses
// without touching encoding/json. A nil *Fragments is valid and answers
// nil for everything, which the serve layer treats as "fall back to
// json.Marshal".
type Fragments struct {
	details   map[*core.Erratum][]byte
	summaries map[*core.Erratum][]byte
	keys      map[string][]byte
}

// Detail returns the marshaled ErratumDetail bytes of e, or nil when
// unknown. The returned slice is shared and must not be modified.
func (f *Fragments) Detail(e *core.Erratum) []byte {
	if f == nil {
		return nil
	}
	return f.details[e]
}

// Summary returns the marshaled ErratumSummary bytes of e, or nil when
// unknown. The returned slice is shared and must not be modified.
func (f *Fragments) Summary(e *core.Erratum) []byte {
	if f == nil {
		return nil
	}
	return f.summaries[e]
}

// KeyJSON returns the JSON string literal (quotes and escapes included)
// of a cluster key present in the snapshot, or nil for unknown keys.
func (f *Fragments) KeyJSON(key string) []byte {
	if f == nil {
		return nil
	}
	return f.keys[key]
}

// BuildFragments precomputes the canonical response fragments for every
// entry of db. The per-entry cost is one json.Marshal each for the
// detail and summary forms — the same work a single uncached request
// pair used to pay — so a swap amortizes the whole corpus's marshaling
// into one pass and the hot path never marshals again.
func BuildFragments(db *core.Database) (*Fragments, error) {
	f := &Fragments{
		details:   make(map[*core.Erratum][]byte),
		summaries: make(map[*core.Erratum][]byte),
		keys:      make(map[string][]byte),
	}
	for _, e := range db.Errata() {
		if err := f.add(db, e); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// BuildFragmentsDelta precomputes fragments for db, reusing the bytes
// of every entry shared by pointer with prev. It honors the same
// sharing contract as index.MergeDelta: a pointer-shared entry is
// completely unchanged, so its fragments are still canonical. With a
// nil prev it degrades to BuildFragments.
func BuildFragmentsDelta(prev *Fragments, db *core.Database) (*Fragments, error) {
	if prev == nil {
		return BuildFragments(db)
	}
	f := &Fragments{
		details:   make(map[*core.Erratum][]byte),
		summaries: make(map[*core.Erratum][]byte),
		keys:      make(map[string][]byte),
	}
	for _, e := range db.Errata() {
		if d, ok := prev.details[e]; ok {
			f.details[e] = d
			f.summaries[e] = prev.summaries[e]
			if e.Key != "" {
				if kj, ok := prev.keys[e.Key]; ok {
					f.keys[e.Key] = kj
					continue
				}
			} else {
				continue
			}
			kj, err := json.Marshal(e.Key)
			if err != nil {
				return nil, err
			}
			f.keys[e.Key] = kj
			continue
		}
		if err := f.add(db, e); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (f *Fragments) add(db *core.Database, e *core.Erratum) error {
	detail, err := json.Marshal(DetailOf(db, e))
	if err != nil {
		return err
	}
	summary, err := json.Marshal(Summarize(db, e))
	if err != nil {
		return err
	}
	f.details[e] = detail
	f.summaries[e] = summary
	if e.Key != "" {
		if _, ok := f.keys[e.Key]; !ok {
			kj, err := json.Marshal(e.Key)
			if err != nil {
				return err
			}
			f.keys[e.Key] = kj
		}
	}
	return nil
}
