package store

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/index"
)

// benchCorpus returns the seed-1 corpus encoded in both formats. The
// cold-open benchmarks measure everything `errserve -db` does between
// reading the file bytes and having a servable snapshot: database in
// memory, query index ready, response fragments ready.
func benchCorpus(b *testing.B) (v1, v2 []byte) {
	b.Helper()
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	if v1, err = Encode(gt.DB); err != nil {
		b.Fatal(err)
	}
	if v2, err = EncodeV2(gt.DB, V2Options{Postings: true, Fragments: true}); err != nil {
		b.Fatal(err)
	}
	return v1, v2
}

func BenchmarkColdOpenV1(b *testing.B) {
	v1, _ := benchCorpus(b)
	b.SetBytes(int64(len(v1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenBytes(v1)
		if err != nil {
			b.Fatal(err)
		}
		db, err := r.Database()
		if err != nil {
			b.Fatal(err)
		}
		ix := index.Build(db)
		frags, err := BuildFragments(db)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = ix, frags
	}
}

func BenchmarkColdOpenV2(b *testing.B) {
	_, v2 := benchCorpus(b)
	b.SetBytes(int64(len(v2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv, err := OpenV2(v2)
		if err != nil {
			b.Fatal(err)
		}
		db, err := sv.Database()
		if err != nil {
			b.Fatal(err)
		}
		ix, err := index.FromParts(db, sv.IndexParts())
		if err != nil {
			b.Fatal(err)
		}
		frags, err := sv.Fragments()
		if err != nil {
			b.Fatal(err)
		}
		_, _ = ix, frags
	}
}

func BenchmarkEncodeV1(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(gt.DB); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeV2(b *testing.B) {
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeV2(gt.DB, V2Options{Postings: true, Fragments: true}); err != nil {
			b.Fatal(err)
		}
	}
}
