package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

// openDBBytes materializes a database from an encoded buffer through
// the modern OpenBytes entry point.
func openDBBytes(tb testing.TB, data []byte) *core.Database {
	tb.Helper()
	r, err := OpenBytes(data)
	if err != nil {
		tb.Fatal(err)
	}
	db, err := r.Database()
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

// openDBFile materializes a database from a file through Open. Mmap is
// off: the reader is closed on return, and a materialized database
// must not outlive the mapping it aliases.
func openDBFile(tb testing.TB, path string) *core.Database {
	tb.Helper()
	r, err := Open(path, WithMmap(false))
	if err != nil {
		tb.Fatal(err)
	}
	defer r.Close()
	db, err := r.Database()
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

func sampleDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	d := &core.Document{
		Key: "intel-06", Vendor: core.Intel, Label: "6", Reference: "332689-028US",
		Order: 0, GenIndex: 6, Released: date(2015, 8, 1),
		Revisions: []core.Revision{
			{Number: 1, Date: date(2015, 9, 1), Added: []string{"SKL001"}},
		},
		Withdrawn: []string{"SKL900"},
		Errata: []*core.Erratum{
			{
				DocKey: "intel-06", ID: "SKL001", Seq: 1,
				Title:       "Processor May Hang",
				Description: "When thermal throttling engages under load, the processor may hang.",
				Implication: "System may hang.",
				Workaround:  "None identified.",
				Status:      "No fix planned.",
				Fix:         core.FixNone, WorkaroundCat: core.WorkaroundNone,
				AddedIn: 1, Disclosed: date(2015, 9, 1), Key: "I-0001",
				Ann: core.Annotation{
					Triggers:          []core.Item{{Category: "Trg_POW_tht", Concrete: "thermal throttling engages under load"}},
					Effects:           []core.Item{{Category: "Eff_HNG_hng", Concrete: "the processor may hang"}},
					MSRs:              []string{"MCx_STATUS"},
					ComplexConditions: true,
				},
			},
		},
	}
	if err := db.Add(d); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRoundTrip(t *testing.T) {
	db := sampleDB(t)
	data, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	got := openDBBytes(t, data)
	d1 := db.Docs["intel-06"]
	d2 := got.Docs["intel-06"]
	if d2 == nil {
		t.Fatal("document lost")
	}
	if d1.Label != d2.Label || d1.Reference != d2.Reference ||
		!d1.Released.Equal(d2.Released) || d1.GenIndex != d2.GenIndex {
		t.Errorf("document header mismatch: %+v vs %+v", d1, d2)
	}
	if len(d2.Withdrawn) != 1 || d2.Withdrawn[0] != "SKL900" {
		t.Errorf("withdrawn = %v", d2.Withdrawn)
	}
	e1, e2 := d1.Errata[0], d2.Errata[0]
	if e1.Title != e2.Title || e1.Description != e2.Description ||
		e1.Key != e2.Key || e1.AddedIn != e2.AddedIn ||
		!e1.Disclosed.Equal(e2.Disclosed) ||
		e1.Fix != e2.Fix || e1.WorkaroundCat != e2.WorkaroundCat {
		t.Errorf("erratum mismatch:\n%+v\n%+v", e1, e2)
	}
	if len(e2.Ann.Triggers) != 1 || e2.Ann.Triggers[0].Category != "Trg_POW_tht" ||
		e2.Ann.Triggers[0].Concrete != e1.Ann.Triggers[0].Concrete {
		t.Errorf("annotation mismatch: %+v", e2.Ann)
	}
	if !e2.Ann.ComplexConditions || len(e2.Ann.MSRs) != 1 {
		t.Errorf("flags lost: %+v", e2.Ann)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	db := sampleDB(t)
	a, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("encoding not deterministic")
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := OpenBytes([]byte("not json")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := OpenBytes([]byte(`{"version": 99, "documents": []}`)); err == nil {
		t.Error("accepted wrong version")
	}
	bad := `{"version":1,"documents":[{"key":"x","vendor":"VIA","label":"l","released":"2015-01-01"}]}`
	if _, err := OpenBytes([]byte(bad)); err == nil {
		t.Error("accepted unknown vendor")
	}
	badDate := `{"version":1,"documents":[{"key":"x","vendor":"Intel","label":"l","released":"someday"}]}`
	if _, err := OpenBytes([]byte(badDate)); err == nil {
		t.Error("accepted bad date")
	}
	badAnn := `{"version":1,"documents":[{"key":"x","vendor":"Intel","label":"l","released":"2015-01-01",
		"errata":[{"id":"A","seq":1,"title":"t","workaround_category":"None","fix_status":"Fixed",
		"triggers":[{"category":"Trg_NOPE_xxx"}]}]}]}`
	if _, err := OpenBytes([]byte(badAnn)); err == nil {
		t.Error("accepted invalid annotation category")
	}
}

func TestSaveLoad(t *testing.T) {
	db := sampleDB(t)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := Save(db, path); err != nil {
		t.Fatal(err)
	}
	got := openDBFile(t, path)
	if got.ComputeStats().Total != 1 {
		t.Error("load lost errata")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Open of missing file should fail")
	}
}

func TestSaveLoadGzip(t *testing.T) {
	db := sampleDB(t)
	dir := t.TempDir()
	plain := filepath.Join(dir, "db.json")
	zipped := filepath.Join(dir, "db.json.gz")
	if err := Save(db, plain); err != nil {
		t.Fatal(err)
	}
	if err := Save(db, zipped); err != nil {
		t.Fatal(err)
	}
	pi, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	zi, err := os.Stat(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if zi.Size() >= pi.Size() {
		t.Errorf("gzip did not shrink: %d vs %d", zi.Size(), pi.Size())
	}
	got := openDBFile(t, zipped)
	if got.ComputeStats().Total != 1 {
		t.Error("gzip round-trip lost errata")
	}
	// A .gz path with non-gzip content must fail cleanly.
	bad := filepath.Join(dir, "bad.json.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("accepted corrupt gzip")
	}
}

func TestEncodeStructured(t *testing.T) {
	db := sampleDB(t)
	data, err := EncodeStructured(db)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"id": "I-0001"`, `"Trg_POW_tht"`, `"status": "NoFixPlanned"`} {
		if !strings.Contains(s, want) {
			t.Errorf("structured JSON missing %s:\n%s", want, s)
		}
	}
}
