package store

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
)

// fuzzSeedDB is a compact database covering every DTO field: both
// vendors, revisions, withdrawn rows, disclosure dates, annotations
// with concretes, MSRs and all boolean flags.
func fuzzSeedDB(tb testing.TB) *core.Database {
	tb.Helper()
	db := core.NewDatabase()
	docs := []*core.Document{
		{
			Key: "intel-01", Vendor: core.Intel, Label: "1", Reference: "REF-1",
			Order: 0, GenIndex: 1,
			Released:  time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
			Withdrawn: []string{"GONE1"},
			Revisions: []core.Revision{
				{Number: 1, Date: time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC), Added: []string{"AAA001"}},
				{Number: 2, Date: time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)},
			},
			Errata: []*core.Erratum{
				{
					DocKey: "intel-01", ID: "AAA001", Seq: 1, Key: "k1",
					Title:       "Power state hang",
					Description: "The core hangs.", Implication: "System hang.",
					Workaround: "Disable C-states.", Status: "No fix",
					WorkaroundCat: core.WorkaroundBIOS, Fix: core.FixDone,
					AddedIn:   1,
					Disclosed: time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC),
					Ann: core.Annotation{
						Triggers:          []core.Item{{Category: "Trg_POW_pwc", Concrete: "C6 entry"}},
						Contexts:          []core.Item{{Category: "Ctx_PRV_vmg"}},
						Effects:           []core.Item{{Category: "Eff_HNG_hng"}},
						MSRs:              []string{"MCx_STATUS"},
						ComplexConditions: true, TrivialTrigger: true, SimulationOnly: true,
					},
				},
			},
		},
		{
			Key: "amd-10h-00", Vendor: core.AMD, Label: "10h 00", Order: 0,
			Released: time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC),
			Errata: []*core.Erratum{
				{DocKey: "amd-10h-00", ID: "100", Seq: 1, Title: "Fence issue"},
			},
		},
	}
	for _, d := range docs {
		if err := db.Add(d); err != nil {
			tb.Fatal(err)
		}
	}
	if err := db.Validate(); err != nil {
		tb.Fatal(err)
	}
	return db
}

// FuzzDecode fuzzes the JSON decoder through the sniffing OpenBytes
// entry point. Properties:
//
//  1. OpenBytes never panics, whatever the bytes.
//  2. If OpenBytes accepts the bytes, the database re-encodes without
//     error, the re-encoding decodes, and a second encode of that is
//     byte-identical (deterministic canonical form).
func FuzzDecode(f *testing.F) {
	seed, err := Encode(fuzzSeedDB(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"documents":[]}`))
	f.Add([]byte(`{"version":2,"documents":[]}`))
	f.Add([]byte(`{"version":1,"documents":[{"key":"x","vendor":"Intel","released":"2010-01-01"}]}`))
	f.Add([]byte(`{"version":1,"documents":[{"key":"x","vendor":"VIA","released":"2010-01-01"}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenBytes(data)
		if err != nil {
			return // rejected input; only panics are failures
		}
		db, err := r.Database()
		if err != nil {
			t.Fatalf("opened database failed to materialize: %v", err)
		}
		enc1, err := Encode(db)
		if err != nil {
			t.Fatalf("decoded database failed to encode: %v", err)
		}
		db2 := openDBBytes(t, enc1)
		enc2, err := Encode(db2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode not canonical: first %d bytes, second %d bytes", len(enc1), len(enc2))
		}
	})
}

// FuzzOpenV2 fuzzes the FormatVersion 2 binary decoder and the
// sniffing entry point. Properties:
//
//  1. Neither OpenV2 nor OpenBytes panics, whatever the bytes.
//  2. If OpenV2 accepts the bytes, materialization succeeds and the
//     database's canonical v1 encoding round-trips byte-identically
//     through another v2 encode/open/materialize cycle.
func FuzzOpenV2(f *testing.F) {
	db := fuzzSeedDB(f)
	for _, opts := range []V2Options{
		{},
		{Postings: true},
		{Postings: true, Fragments: true},
	} {
		seed, err := EncodeV2(db, opts)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
		// A truncated and a bit-flipped variant steer the fuzzer at the
		// validation paths from the start.
		f.Add(seed[:len(seed)/2])
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte(v2Magic))
	f.Add([]byte("REMBERR2\x02\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sv, err := OpenV2(data)
		if err != nil {
			// Rejected input must also be rejected (or JSON-decoded)
			// by the sniffing entry point without panicking.
			_, _ = OpenBytes(data)
			return
		}
		db, err := sv.Database()
		if err != nil {
			t.Fatalf("opened store failed to materialize: %v", err)
		}
		enc1, err := Encode(db)
		if err != nil {
			t.Fatalf("materialized database failed to encode: %v", err)
		}
		reenc, err := EncodeV2(db, V2Options{Postings: true, Fragments: true})
		if err != nil {
			t.Fatalf("materialized database failed to v2-encode: %v", err)
		}
		sv2, err := OpenV2(reenc)
		if err != nil {
			t.Fatalf("v2 re-encoding rejected: %v", err)
		}
		db2, err := sv2.Database()
		if err != nil {
			t.Fatalf("second materialize failed: %v", err)
		}
		enc2, err := Encode(db2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("v2 cycle not canonical: first %d bytes, second %d bytes", len(enc1), len(enc2))
		}
	})
}
