package store

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
)

// fuzzSeedDB is a compact database covering every DTO field: both
// vendors, revisions, withdrawn rows, disclosure dates, annotations
// with concretes, MSRs and all boolean flags.
func fuzzSeedDB(tb testing.TB) *core.Database {
	tb.Helper()
	db := core.NewDatabase()
	docs := []*core.Document{
		{
			Key: "intel-01", Vendor: core.Intel, Label: "1", Reference: "REF-1",
			Order: 0, GenIndex: 1,
			Released:  time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
			Withdrawn: []string{"GONE1"},
			Revisions: []core.Revision{
				{Number: 1, Date: time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC), Added: []string{"AAA001"}},
				{Number: 2, Date: time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)},
			},
			Errata: []*core.Erratum{
				{
					DocKey: "intel-01", ID: "AAA001", Seq: 1, Key: "k1",
					Title:       "Power state hang",
					Description: "The core hangs.", Implication: "System hang.",
					Workaround: "Disable C-states.", Status: "No fix",
					WorkaroundCat: core.WorkaroundBIOS, Fix: core.FixDone,
					AddedIn:   1,
					Disclosed: time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC),
					Ann: core.Annotation{
						Triggers:          []core.Item{{Category: "Trg_POW_pwc", Concrete: "C6 entry"}},
						Contexts:          []core.Item{{Category: "Ctx_PRV_vmg"}},
						Effects:           []core.Item{{Category: "Eff_HNG_hng"}},
						MSRs:              []string{"MCx_STATUS"},
						ComplexConditions: true, TrivialTrigger: true, SimulationOnly: true,
					},
				},
			},
		},
		{
			Key: "amd-10h-00", Vendor: core.AMD, Label: "10h 00", Order: 0,
			Released: time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC),
			Errata: []*core.Erratum{
				{DocKey: "amd-10h-00", ID: "100", Seq: 1, Title: "Fence issue"},
			},
		},
	}
	for _, d := range docs {
		if err := db.Add(d); err != nil {
			tb.Fatal(err)
		}
	}
	if err := db.Validate(); err != nil {
		tb.Fatal(err)
	}
	return db
}

// FuzzDecode fuzzes the JSON decoder. Properties:
//
//  1. Decode never panics, whatever the bytes.
//  2. If Decode accepts the bytes, the database re-encodes without
//     error, the re-encoding decodes, and a second encode of that is
//     byte-identical (deterministic canonical form).
func FuzzDecode(f *testing.F) {
	seed, err := Encode(fuzzSeedDB(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"documents":[]}`))
	f.Add([]byte(`{"version":2,"documents":[]}`))
	f.Add([]byte(`{"version":1,"documents":[{"key":"x","vendor":"Intel","released":"2010-01-01"}]}`))
	f.Add([]byte(`{"version":1,"documents":[{"key":"x","vendor":"VIA","released":"2010-01-01"}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Decode(data)
		if err != nil {
			return // rejected input; only panics are failures
		}
		enc1, err := Encode(db)
		if err != nil {
			t.Fatalf("decoded database failed to encode: %v", err)
		}
		db2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("re-encoding rejected by decoder: %v\n%s", err, enc1)
		}
		enc2, err := Encode(db2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode not canonical: first %d bytes, second %d bytes", len(enc1), len(enc2))
		}
	})
}
