//go:build linux

package store

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// TestPointLookupRSS is the larger-than-RAM serving gate: a point-
// lookup workload over an mmap-opened corpus must keep its steady-state
// resident set at or below half the file size — the pages it faults in
// are the ones it touches, not the whole corpus. The measurement runs
// in a re-exec'ed child process (a fresh address space, so the parent's
// corpus construction doesn't pollute the number): the child opens the
// file mapped, drops the residency left behind by the open-time
// checksum with DropResident, performs 64 spread-out point lookups, and
// reports VmRSS from /proc/self/status.
//
// The test is opt-in (it builds a multi-megabyte corpus): set
// STORE_RSS=1 to run it, STORE_RSS_MB to size the corpus (default 64),
// and STORE_RSS_GATE=1 to fail on ratio > 0.5 instead of just
// reporting. scripts/bench_store.sh drives it and records the ratio in
// BENCH_store.json.
func TestPointLookupRSS(t *testing.T) {
	if os.Getenv("STORE_RSS_CHILD") == "1" {
		rssChild(t)
		return
	}
	if os.Getenv("STORE_RSS") == "" {
		t.Skip("set STORE_RSS=1 to run the RSS benchmark (see scripts/bench_store.sh)")
	}
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	targetMB := 64
	if s := os.Getenv("STORE_RSS_MB"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad STORE_RSS_MB %q", s)
		}
		targetMB = n
	}

	path := filepath.Join(t.TempDir(), "corpus.v2")
	if err := SaveFormat(buildRSSCorpus(t, targetMB<<20), path, "v2"); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=^TestPointLookupRSS$", "-test.v")
	cmd.Env = append(os.Environ(), "STORE_RSS_CHILD=1", "STORE_RSS_FILE="+path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child failed: %v\n%s", err, out)
	}
	var rss int64 = -1
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if v, ok := strings.CutPrefix(line, "child-rss-bytes="); ok {
			if rss, err = strconv.ParseInt(v, 10, 64); err != nil {
				t.Fatalf("bad child report %q", line)
			}
		}
		if msg, ok := strings.CutPrefix(line, "child-error="); ok {
			t.Fatalf("child: %s", msg)
		}
	}
	if rss < 0 {
		t.Fatalf("child reported no RSS:\n%s", out)
	}

	ratio := float64(rss) / float64(fi.Size())
	// Parsed by scripts/bench_store.sh; keep the format stable.
	t.Logf("rss-result file_bytes=%d rss_bytes=%d ratio=%.4f", fi.Size(), rss, ratio)
	if os.Getenv("STORE_RSS_GATE") != "" && ratio > 0.5 {
		t.Errorf("point-lookup RSS is %.1f%% of the file size, gate is 50%%", ratio*100)
	}
}

// buildRSSCorpus grows the seed corpus to at least targetBytes of
// encoded v2 by replicating every document with per-replica perturbed
// strings (the string table dedups identical strings, so verbatim
// copies would add almost nothing).
func buildRSSCorpus(t *testing.T, targetBytes int) *core.Database {
	t.Helper()
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EncodeV2(gt.DB, V2Options{Postings: true, Fragments: true})
	if err != nil {
		t.Fatal(err)
	}
	replicas := targetBytes/len(base) + 1

	db := core.NewDatabase()
	db.Scheme = gt.DB.Scheme
	docs := gt.DB.Documents()
	for k := 0; k < replicas; k++ {
		for _, d := range docs {
			suffix := fmt.Sprintf(" r%d", k)
			dc := *d
			dc.Key = d.Key + "-r" + strconv.Itoa(k)
			dc.Order = d.Order + k*len(docs)
			dc.Errata = make([]*core.Erratum, len(d.Errata))
			for i, e := range d.Errata {
				ec := *e
				ec.DocKey = dc.Key
				ec.Title = e.Title + suffix
				ec.Description = e.Description + suffix
				ec.Implication = e.Implication + suffix
				ec.Workaround = e.Workaround + suffix
				if e.Key != "" {
					ec.Key = e.Key + "-r" + strconv.Itoa(k)
				}
				dc.Errata[i] = &ec
			}
			if err := db.Add(&dc); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

// rssChild is the measured half of TestPointLookupRSS: it runs in a
// fresh process so the resident set is the workload's, not the
// harness's. Failures are reported on stdout (child-error=...) because
// the parent only reads output.
func rssChild(t *testing.T) {
	path := os.Getenv("STORE_RSS_FILE")
	r, err := Open(path)
	if err != nil {
		fmt.Printf("child-error=open: %v\n", err)
		return
	}
	sv, ok := r.(*StoreV2)
	if !ok || !sv.Mapped() {
		fmt.Println("child-error=corpus did not open mapped")
		return
	}
	defer sv.Close()

	// Ordinal ranges per document, read once (the doc section is tiny
	// compared to the record and string sections).
	type docSpan struct {
		key    string
		off, n int
	}
	spans := make([]docSpan, sv.NumDocs())
	for i := range spans {
		off, n := sv.DocErrataRange(i)
		spans[i] = docSpan{key: sv.Doc(i).Key, off: off, n: n}
	}

	// The open-time checksum touched every page; drop that residency so
	// VmRSS reflects only what the lookups fault back in.
	if err := sv.Region().DropResident(); err != nil {
		fmt.Printf("child-error=madvise: %v\n", err)
		return
	}

	const lookups = 64
	total := sv.Size()
	var sink int
	for i := 0; i < lookups; i++ {
		ord := i * (total - 1) / (lookups - 1)
		for _, s := range spans {
			if ord >= s.off && ord < s.off+s.n {
				e := sv.Erratum(ord, s.key)
				sink += len(e.Description)
				break
			}
		}
	}
	if sink == 0 {
		fmt.Println("child-error=lookups decoded nothing")
		return
	}

	rss, err := readVmRSS()
	if err != nil {
		fmt.Printf("child-error=vmrss: %v\n", err)
		return
	}
	fmt.Printf("child-rss-bytes=%d\n", rss)
}

// readVmRSS parses the current resident set size from
// /proc/self/status ("VmRSS: <n> kB").
func readVmRSS() (int64, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, err
		}
		return kb << 10, nil
	}
	return 0, fmt.Errorf("no VmRSS in /proc/self/status")
}
