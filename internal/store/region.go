package store

import (
	"fmt"
	"sync/atomic"
)

// Region owns the byte range a StoreV2 decodes from and ties its
// lifetime to a reference count. For a heap-resident store the region
// is a plain slice and release is a no-op; for an mmap-backed store the
// region wraps the mapping and the last Release runs munmap — after
// which any read through a retained-too-late pointer would fault, which
// is exactly why the serving layer's snapshot swap retains the region
// before publishing a snapshot and releases it only after the snapshot
// is unreachable. The refcount discipline:
//
//   - the opener holds the initial reference; Close (or Release)
//     drops it
//   - every other holder must pair a successful TryRetain with exactly
//     one Release
//   - TryRetain fails once the count has reached zero — the mapping is
//     gone and can never be revived
type Region struct {
	data   []byte
	munmap func([]byte) error
	refs   atomic.Int64
}

// newHeapRegion wraps heap bytes in a region whose release never
// invalidates anything. The count still runs so lifecycle tests can
// exercise heap and mapped stores identically.
func newHeapRegion(data []byte) *Region {
	r := &Region{data: data}
	r.refs.Store(1)
	return r
}

// newMappedRegion wraps an mmap'ed range; munmap runs exactly once,
// when the last reference is released.
func newMappedRegion(data []byte, munmap func([]byte) error) *Region {
	r := &Region{data: data, munmap: munmap}
	r.refs.Store(1)
	return r
}

// Bytes returns the region's byte range. Callers must hold a reference.
func (r *Region) Bytes() []byte { return r.data }

// Mapped reports whether the region is a file mapping (true) or heap
// bytes (false).
func (r *Region) Mapped() bool { return r != nil && r.munmap != nil }

// Active reports whether the region still holds at least one reference.
func (r *Region) Active() bool { return r != nil && r.refs.Load() > 0 }

// TryRetain acquires an additional reference, failing if the region has
// already been released for the last time. The CAS loop never
// increments from zero: a region at zero is unmapped, permanently.
func (r *Region) TryRetain() bool {
	for {
		n := r.refs.Load()
		if n <= 0 {
			return false
		}
		if r.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops one reference; the last one unmaps. Releasing more
// times than retained is a lifecycle bug and panics rather than
// double-munmapping.
func (r *Region) Release() error {
	n := r.refs.Add(-1)
	if n < 0 {
		panic("store: Region released more times than retained")
	}
	if n > 0 || r.munmap == nil {
		return nil
	}
	data := r.data
	r.data = nil
	if err := r.munmap(data); err != nil {
		return fmt.Errorf("store: munmap: %w", err)
	}
	return nil
}

// DropResident advises the kernel to evict the region's resident pages
// (madvise MADV_DONTNEED on a mapping; no-op on heap bytes). Reads stay
// valid — pages fault back in from the file — so this only resets the
// resident-set accounting; the RSS benchmark uses it to measure the
// true working set of a point-lookup workload.
func (r *Region) DropResident() error {
	if !r.Mapped() || len(r.data) == 0 {
		return nil
	}
	return madviseDontNeed(r.data)
}
