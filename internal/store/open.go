package store

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
)

// Reader is the unified read handle over every serialization backend:
// FormatVersion 1 JSON, FormatVersion 2 in the heap, and FormatVersion
// 2 mmap-backed. Open (paths) and OpenBytes (buffers) are the only
// entry points; they sniff gzip and the format internally, so callers
// never dispatch on file contents themselves.
//
// A Reader whose Format is FormatVersion2 is always a *StoreV2 and may
// be asserted to reach the zero-decode accessors (IndexLists,
// Fragments, the lazy per-record decoders). Close releases the backing
// resources — for an mmap-backed reader the final release unmaps the
// file, after which nothing materialized from it may be touched; the
// serving layer retains the Region across snapshot swaps for exactly
// this reason.
type Reader interface {
	// Database materializes (and memoizes) the full database.
	Database() (*core.Database, error)
	// Format reports the serialization format: FormatVersion (1) or
	// FormatVersion2 (2).
	Format() int
	// Mapped reports whether reads go through a file mapping.
	Mapped() bool
	// Region returns the refcounted byte range backing the reader, nil
	// for format-1 readers (a materialized v1 database owns its memory).
	Region() *Region
	// Close releases the opener's reference; idempotent.
	Close() error
}

type mmapMode int

const (
	mmapAuto mmapMode = iota // map v2 files when the platform supports it
	mmapOn                   // require a mapping, fail otherwise
	mmapOff                  // always read into the heap
)

type openConfig struct {
	mmap         mmapMode
	format       string // "", "v1", "v2": required format, "" accepts any
	randomAccess bool
}

// OpenOption configures Open and OpenBytes.
type OpenOption func(*openConfig)

// WithMmap forces the mapping decision: WithMmap(true) fails rather
// than fall back to a heap copy (gzip input, format-1 files and
// unsupported platforms all fail), WithMmap(false) always reads into
// the heap. The default maps exactly when it can: uncompressed
// FormatVersion 2 files on platforms with mmap.
func WithMmap(on bool) OpenOption {
	return func(c *openConfig) {
		if on {
			c.mmap = mmapOn
		} else {
			c.mmap = mmapOff
		}
	}
}

// WithFormat requires the opened file to carry the given format ("v1"
// or "v2") instead of accepting whatever the sniff finds.
func WithFormat(format string) OpenOption {
	return func(c *openConfig) { c.format = format }
}

// WithRandomAccess controls the madvise(MADV_RANDOM) hint on mapped
// regions. It defaults to on — point lookups hop between sections, so
// readahead drags in pages the workload never touches. Turn it off for
// scan-heavy workloads (full exports) that benefit from readahead.
func WithRandomAccess(on bool) OpenOption {
	return func(c *openConfig) { c.randomAccess = on }
}

func openCfg(opts []OpenOption) openConfig {
	cfg := openConfig{randomAccess: true}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

func (c *openConfig) checkFormat(got int) error {
	switch c.format {
	case "":
		return nil
	case "v1":
		if got != FormatVersion {
			return fmt.Errorf("store: file is format %d, format v1 required", got)
		}
	case "v2":
		if got != FormatVersion2 {
			return fmt.Errorf("store: file is format %d, format v2 required", got)
		}
	default:
		return fmt.Errorf("store: unknown format %q (want v1 or v2)", c.format)
	}
	return nil
}

// Open opens a database file behind the unified Reader interface,
// sniffing gzip compression and the serialization format. Uncompressed
// FormatVersion 2 files are mmap'ed (read-only, shared) where the
// platform supports it, so the page cache — not the Go heap — holds
// the corpus and a file larger than RAM stays serveable; everything
// else is read into the heap. See WithMmap, WithFormat and
// WithRandomAccess for the knobs.
func Open(path string, opts ...OpenOption) (Reader, error) {
	cfg := openCfg(opts)
	switch cfg.format {
	case "", "v1", "v2":
	default:
		return nil, fmt.Errorf("store: unknown format %q (want v1 or v2)", cfg.format)
	}

	if strings.HasSuffix(path, ".gz") {
		if cfg.mmap == mmapOn {
			return nil, fmt.Errorf("store: cannot mmap gzip-compressed %s", path)
		}
		data, err := readMaybeGzip(path)
		if err != nil {
			return nil, err
		}
		return openBytes(data, cfg)
	}
	if cfg.mmap == mmapOff || !mmapSupported {
		if cfg.mmap == mmapOn {
			return nil, fmt.Errorf("store: mmap requested but unsupported on this platform")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return openBytes(data, cfg)
	}

	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping outlives the descriptor

	magic := make([]byte, len(v2Magic))
	n, err := io.ReadFull(f, magic)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	if !IsV2(magic[:n]) {
		// Not a v2 file: there is nothing to map (a v1 database is
		// materialized structs, not served bytes).
		if cfg.mmap == mmapOn {
			return nil, fmt.Errorf("store: %s is not a FormatVersion 2 file, cannot mmap", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return openBytes(data, cfg)
	}

	data, munmap, err := mmapFile(f)
	if err != nil {
		if cfg.mmap == mmapOn {
			return nil, err
		}
		heap, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, rerr
		}
		return openBytes(heap, cfg)
	}
	sv, err := OpenV2(data)
	if err != nil {
		munmap(data)
		return nil, err
	}
	sv.region = newMappedRegion(data, munmap)
	if cfg.randomAccess {
		// Advisory only: a kernel refusing the hint costs readahead, not
		// correctness.
		_ = madviseRandom(data)
	}
	if err := cfg.checkFormat(FormatVersion2); err != nil {
		sv.Close()
		return nil, err
	}
	return sv, nil
}

// OpenBytes opens an in-memory database buffer behind the Reader
// interface, sniffing gzip compression and the serialization format
// exactly like Open. The caller must not mutate data while the reader
// (or anything materialized from it) is in use.
func OpenBytes(data []byte, opts ...OpenOption) (Reader, error) {
	return openBytes(data, openCfg(opts))
}

func openBytes(data []byte, cfg openConfig) (Reader, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if IsV2(data) {
		if err := cfg.checkFormat(FormatVersion2); err != nil {
			return nil, err
		}
		return OpenV2(data)
	}
	if err := cfg.checkFormat(FormatVersion); err != nil {
		return nil, err
	}
	db, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return &v1Reader{db: db}, nil
}

// v1Reader adapts a materialized FormatVersion 1 database to the Reader
// interface. There is no backing byte range to manage: the decoded
// structs own their memory.
type v1Reader struct{ db *core.Database }

func (r *v1Reader) Database() (*core.Database, error) { return r.db, nil }
func (r *v1Reader) Format() int                       { return FormatVersion }
func (r *v1Reader) Mapped() bool                      { return false }
func (r *v1Reader) Region() *Region                   { return nil }
func (r *v1Reader) Close() error                      { return nil }
