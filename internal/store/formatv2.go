package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/index"
)

// FormatVersion 2 is a flat, offset-based binary layout whose on-disk
// representation is the in-memory representation: a deduplicated string
// table, fixed-width little-endian document/revision/erratum/item
// records, the inverted index's postings lists as raw ordinal arrays,
// and the canonical per-erratum JSON response fragments. A reader
// slices one ReadFile (or mmap) buffer — strings materialize as
// zero-copy views over the file bytes, postings load without an
// annotation walk, and the serving layer stitches responses straight
// from the fragment region — so cold `errserve -db` start is dominated
// by the record walk instead of a corpus-sized JSON parse.
//
// File layout (all integers little-endian):
//
//	header   32 B  magic "REMBERR2", u32 version=2, u32 sectionCount,
//	               u64 fileSize, u64 CRC-32C (Castagnoli, in the low
//	               32 bits) over everything after
//	               the header
//	directory      sectionCount × (u32 id, u64 off, u64 len)
//	sections       byte ranges named by the directory
//
// Every access is bounds-checked eagerly by OpenV2: a truncated or
// bit-flipped file fails with a checksum or bounds error before any
// accessor runs. FormatVersion 1 stays readable forever; DecodeAny
// sniffs the magic and routes to the right decoder.

// FormatVersion2 identifies the flat binary serialization layout.
const FormatVersion2 = 2

const v2Magic = "REMBERR2"

// Section identifiers of the v2 directory.
const (
	secStrings  = 1  // deduplicated string bytes; refs are (u32 off, u32 len)
	secDocs     = 2  // document records, 72 B each
	secRevs     = 3  // revision records, 24 B each
	secStrRefs  = 4  // string-reference arrays (withdrawn/added/MSR lists)
	secErrata   = 5  // erratum records, 108 B each
	secItems    = 6  // annotation item records, 16 B each
	secOrds     = 7  // postings ordinals, u32 each
	secPostings = 8  // postings directory + per-entry trigger counts
	secFrags    = 9  // canonical JSON fragment bytes
	secFragIdx  = 10 // per-ordinal fragment index, 16 B each
)

const (
	v2HeaderSize = 32
	v2DirEntSize = 20
	strRefSize   = 8
	docRecSize   = 72
	revRecSize   = 24
	errRecSize   = 108
	itemRecSize  = 16
	fragIdxSize  = 16
)

// v2NoDate is the sentinel for a zero time.Time in i64 unix-seconds
// date fields.
const v2NoDate = math.MinInt64

// crcTable is CRC-32C (Castagnoli): hardware-accelerated on amd64 and
// arm64, so whole-file verification at open stays a small fraction of
// the cold-start budget while still catching every single-bit flip.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// V2Options selects the optional sections of an encoded v2 file.
type V2Options struct {
	// Postings embeds the inverted index's postings lists so a reader
	// reconstructs the query index without re-walking annotations.
	Postings bool
	// Fragments embeds the canonical per-erratum JSON response
	// fragments the serving layer stitches responses from.
	Fragments bool
}

// IsV2 reports whether data carries the FormatVersion 2 magic.
func IsV2(data []byte) bool {
	return len(data) >= len(v2Magic) && string(data[:len(v2Magic)]) == v2Magic
}

// ---------------------------------------------------------------------------
// Encoder

type v2Encoder struct {
	strings []byte
	strMap  map[string]strRef

	docs   []byte
	revs   []byte
	refs   []byte
	errs   []byte
	items  []byte
	nRevs  uint32
	nRefs  uint32
	nErr   uint32
	nItems uint32
}

type strRef struct{ off, ln uint32 }

func (e *v2Encoder) addString(s string) strRef {
	if s == "" {
		return strRef{}
	}
	if r, ok := e.strMap[s]; ok {
		return r
	}
	r := strRef{off: uint32(len(e.strings)), ln: uint32(len(s))}
	e.strings = append(e.strings, s...)
	e.strMap[s] = r
	return r
}

func (e *v2Encoder) addStrList(list []string) (off, n uint32) {
	off = e.nRefs
	for _, s := range list {
		r := e.addString(s)
		e.refs = apU32(e.refs, r.off)
		e.refs = apU32(e.refs, r.ln)
		e.nRefs++
	}
	return off, uint32(len(list))
}

func (e *v2Encoder) addItems(items []core.Item) (off, n uint32) {
	off = e.nItems
	for _, it := range items {
		cat := e.addString(it.Category)
		con := e.addString(it.Concrete)
		e.items = apU32(e.items, cat.off)
		e.items = apU32(e.items, cat.ln)
		e.items = apU32(e.items, con.off)
		e.items = apU32(e.items, con.ln)
		e.nItems++
	}
	return off, uint32(len(items))
}

func apU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func apU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func apRef(b []byte, r strRef) []byte { return apU32(apU32(b, r.off), r.ln) }

func dateUnix(t time.Time) uint64 {
	if t.IsZero() {
		return uint64(uint64(math.MaxUint64>>1) + 1) // two's-complement MinInt64
	}
	return uint64(t.Unix())
}

// EncodeV2 serializes the database in FormatVersion 2 into one heap
// buffer. Encoding is deterministic: documents are emitted in
// Documents() order, strings are deduplicated in first-occurrence
// order, and postings maps are emitted in canonical (sorted) key order,
// so repeated encodings of the same database are byte-identical — and
// identical to what EncodeV2To streams.
func EncodeV2(db *core.Database, opts V2Options) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeV2To(&buf, db, opts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeV2To streams the FormatVersion 2 serialization of db to w
// without ever concatenating the sections into a second corpus-sized
// buffer: the whole-file checksum is computed incrementally over the
// directory and section bytes (CRC over a concatenation is the chained
// CRC over its pieces), then header, directory and sections are written
// in file order. Output is byte-identical to EncodeV2.
func EncodeV2To(w io.Writer, db *core.Database, opts V2Options) error {
	e := &v2Encoder{strings: []byte{0}, strMap: make(map[string]strRef)}

	docs := db.Documents()
	var errata []*core.Erratum
	for _, d := range docs {
		key := e.addString(d.Key)
		label := e.addString(d.Label)
		reference := e.addString(d.Reference)

		revOff := e.nRevs
		for _, r := range d.Revisions {
			aOff, aN := e.addStrList(r.Added)
			e.revs = apU32(e.revs, uint32(int32(r.Number)))
			e.revs = apU32(e.revs, 0)
			e.revs = apU64(e.revs, dateUnix(r.Date))
			e.revs = apU32(e.revs, aOff)
			e.revs = apU32(e.revs, aN)
			e.nRevs++
		}
		wOff, wN := e.addStrList(d.Withdrawn)

		errOff := e.nErr
		for _, er := range d.Errata {
			errata = append(errata, er)
			id := e.addString(er.ID)
			title := e.addString(er.Title)
			desc := e.addString(er.Description)
			impl := e.addString(er.Implication)
			work := e.addString(er.Workaround)
			status := e.addString(er.Status)
			ckey := e.addString(er.Key)
			tOff, tN := e.addItems(er.Ann.Triggers)
			cOff, cN := e.addItems(er.Ann.Contexts)
			fOff, fN := e.addItems(er.Ann.Effects)
			mOff, mN := e.addStrList(er.Ann.MSRs)
			var flags byte
			if er.Ann.ComplexConditions {
				flags |= 1
			}
			if er.Ann.TrivialTrigger {
				flags |= 2
			}
			if er.Ann.SimulationOnly {
				flags |= 4
			}
			b := e.errs
			b = apRef(b, id)
			b = apRef(b, title)
			b = apRef(b, desc)
			b = apRef(b, impl)
			b = apRef(b, work)
			b = apRef(b, status)
			b = apRef(b, ckey)
			b = apU32(b, uint32(int32(er.Seq)))
			b = append(b, byte(er.WorkaroundCat), byte(er.Fix), flags, 0)
			b = apU32(b, uint32(int32(er.AddedIn)))
			b = apU64(b, dateUnix(er.Disclosed))
			b = apU32(b, tOff)
			b = apU32(b, tN)
			b = apU32(b, cOff)
			b = apU32(b, cN)
			b = apU32(b, fOff)
			b = apU32(b, fN)
			b = apU32(b, mOff)
			b = apU32(b, mN)
			e.errs = b
			e.nErr++
		}

		b := e.docs
		b = apRef(b, key)
		b = apRef(b, label)
		b = apRef(b, reference)
		b = apU32(b, uint32(d.Vendor))
		b = apU32(b, uint32(int32(d.Order)))
		b = apU32(b, uint32(int32(d.GenIndex)))
		b = apU32(b, 0)
		b = apU64(b, dateUnix(d.Released))
		b = apU32(b, revOff)
		b = apU32(b, uint32(len(d.Revisions)))
		b = apU32(b, errOff)
		b = apU32(b, e.nErr-errOff)
		b = apU32(b, wOff)
		b = apU32(b, wN)
		e.docs = b
	}

	// The optional encoders run before the section table is assembled:
	// encodePostings interns its map keys (class names, categories) into
	// the shared string table, so e.strings must not be captured yet.
	var ords, post, frags, fragIdx []byte
	var err error
	if opts.Postings {
		if ords, post, err = encodePostings(db, e); err != nil {
			return err
		}
	}
	if opts.Fragments {
		if frags, fragIdx, err = encodeFragments(db, errata); err != nil {
			return err
		}
	}

	sections := []struct {
		id   uint32
		data []byte
	}{
		{secStrings, e.strings},
		{secDocs, e.docs},
		{secRevs, e.revs},
		{secStrRefs, e.refs},
		{secErrata, e.errs},
		{secItems, e.items},
	}
	if opts.Postings {
		sections = append(sections,
			struct {
				id   uint32
				data []byte
			}{secOrds, ords},
			struct {
				id   uint32
				data []byte
			}{secPostings, post})
	}
	if opts.Fragments {
		sections = append(sections,
			struct {
				id   uint32
				data []byte
			}{secFrags, frags},
			struct {
				id   uint32
				data []byte
			}{secFragIdx, fragIdx})
	}

	for _, s := range sections {
		if uint64(len(s.data)) > math.MaxUint32 {
			return fmt.Errorf("store: v2: section %d exceeds 4 GiB", s.id)
		}
	}

	total := v2HeaderSize + v2DirEntSize*len(sections)
	offs := make([]uint64, len(sections))
	for i, s := range sections {
		offs[i] = uint64(total)
		total += len(s.data)
	}

	dir := make([]byte, 0, v2DirEntSize*len(sections))
	for i, s := range sections {
		dir = apU32(dir, s.id)
		dir = apU64(dir, offs[i])
		dir = apU64(dir, uint64(len(s.data)))
	}

	// The header carries the checksum of everything after itself, so it
	// is computed before a single post-header byte is written.
	crc := crc32.Update(0, crcTable, dir)
	for _, s := range sections {
		crc = crc32.Update(crc, crcTable, s.data)
	}

	hdr := make([]byte, 0, v2HeaderSize)
	hdr = append(hdr, v2Magic...)
	hdr = apU32(hdr, FormatVersion2)
	hdr = apU32(hdr, uint32(len(sections)))
	hdr = apU64(hdr, uint64(total))
	hdr = apU64(hdr, uint64(crc))

	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(dir); err != nil {
		return err
	}
	for _, s := range sections {
		if _, err := w.Write(s.data); err != nil {
			return err
		}
	}
	return nil
}

// encodePostings flattens the inverted index over db into the ORDS and
// POSTINGS sections. Postings layout: u32 nErr, u32 reserved; the
// unique/complex/simulation-only lists as (u32 ordOff, u32 ordCount)
// into ORDS; three enum maps (vendor, workaround, fix) as u32 count +
// count × (u32 value, u32 ordOff, u32 ordCount) in canonical value
// order; six string maps (doc, category, trigger-category, class, key,
// MSR) as u32 count + count × (u32 strOff, u32 strLen, u32 ordOff,
// u32 ordCount) in sorted key order; then nErr raw u32 per-entry
// trigger counts.
func encodePostings(db *core.Database, e *v2Encoder) (ords, post []byte, err error) {
	p := index.Build(db).Parts()

	var nOrds uint32
	addList := func(l []int) (uint32, uint32) {
		off := nOrds
		for _, o := range l {
			ords = apU32(ords, uint32(o))
			nOrds++
		}
		return off, uint32(len(l))
	}
	emitList := func(l []int) {
		off, n := addList(l)
		post = apU32(post, off)
		post = apU32(post, n)
	}

	post = apU32(post, e.nErr)
	post = apU32(post, 0)
	emitList(p.UniqueOrds)
	emitList(p.ComplexSet)
	emitList(p.SimOnlySet)

	emitEnumMap := func(vals []uint32, lists [][]int) {
		post = apU32(post, uint32(len(vals)))
		for i, v := range vals {
			post = apU32(post, v)
			emitList(lists[i])
		}
	}
	var vvals []uint32
	var vlists [][]int
	for _, v := range core.Vendors {
		if l, ok := p.ByVendor[v]; ok {
			vvals = append(vvals, uint32(v))
			vlists = append(vlists, l)
		}
	}
	emitEnumMap(vvals, vlists)
	vvals, vlists = nil, nil
	for _, w := range core.WorkaroundCategories {
		if l, ok := p.ByWorkaround[w]; ok {
			vvals = append(vvals, uint32(w))
			vlists = append(vlists, l)
		}
	}
	emitEnumMap(vvals, vlists)
	vvals, vlists = nil, nil
	for _, f := range core.FixStatuses {
		if l, ok := p.ByFix[f]; ok {
			vvals = append(vvals, uint32(f))
			vlists = append(vlists, l)
		}
	}
	emitEnumMap(vvals, vlists)

	emitStrMap := func(m map[string][]int) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		post = apU32(post, uint32(len(keys)))
		for _, k := range keys {
			r := e.addString(k)
			post = apU32(post, r.off)
			post = apU32(post, r.ln)
			emitList(m[k])
		}
	}
	emitStrMap(p.ByDoc)
	emitStrMap(p.ByCategory)
	emitStrMap(p.ByTriggerCat)
	emitStrMap(p.ByClass)
	emitStrMap(p.ByKey)
	emitStrMap(p.ByMSR)

	for _, c := range p.TriggerCount {
		post = apU32(post, uint32(c))
	}
	return ords, post, nil
}

// encodeFragments precomputes the canonical JSON fragments of every
// entry and lays them out as FRAGS (raw bytes) plus FRAGIDX (per
// ordinal: u32 detailOff, u32 detailLen, u32 summaryOff, u32
// summaryLen).
func encodeFragments(db *core.Database, errata []*core.Erratum) (frags, fragIdx []byte, err error) {
	fr, err := BuildFragments(db)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range errata {
		d := fr.details[e]
		s := fr.summaries[e]
		fragIdx = apU32(fragIdx, uint32(len(frags)))
		fragIdx = apU32(fragIdx, uint32(len(d)))
		frags = append(frags, d...)
		fragIdx = apU32(fragIdx, uint32(len(frags)))
		fragIdx = apU32(fragIdx, uint32(len(s)))
		frags = append(frags, s...)
	}
	return frags, fragIdx, nil
}

// ---------------------------------------------------------------------------
// Decoder

// StoreV2 is an opened FormatVersion 2 database. All sections are
// bounds-checked at Open time; accessors afterwards are infallible
// slices into the file buffer — which may be heap bytes (OpenV2) or an
// mmap'ed file (Open with a .v2 path), in which case everything
// materialized from the store aliases the mapping and is only valid
// while the region holds a reference. The caller must not mutate data
// while the store (or anything materialized from it) is in use.
type StoreV2 struct {
	data    []byte
	region  *Region
	closed  atomic.Bool
	decodes atomic.Int64 // erratum records decoded, for lazy-boot tests
	strings []byte
	docRecs []byte
	revRecs []byte
	refRecs []byte
	errRecs []byte
	itRecs  []byte
	nDocs   int
	nRevs   int
	nRefs   int
	nErr    int
	nItems  int

	ords  []byte // u32 ordinal array, nOrds entries
	nOrds int
	post  *v2Postings

	frags   []byte
	fragIdx []byte

	dbOnce sync.Once
	dbDone atomic.Bool
	db     *core.Database
	dbErr  error

	frOnce sync.Once
	fr     *Fragments
	frErr  error
}

type v2list struct{ off, n uint32 }

type v2kv struct {
	key  strRef
	list v2list
}

type v2ev struct {
	val  uint32
	list v2list
}

type v2Postings struct {
	unique, complexSet, simOnlySet v2list
	vendors, workarounds, fixes    []v2ev
	// strMaps holds, in order: byDoc, byCategory, byTriggerCat,
	// byClass, byKey, byMSR.
	strMaps [6][]v2kv
	trigOff int // byte offset of the trigger-count array in the section
	raw     []byte
}

func gu32(b []byte, off int) uint32 { return binary.LittleEndian.Uint32(b[off:]) }
func gu64(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }

// OpenV2 validates a FormatVersion 2 buffer and returns the opened
// store. Validation is exhaustive: magic, version, declared file size,
// whole-file checksum, directory bounds, record-size alignment, every
// string reference, every record range, enum values, document ordering
// and errata coverage, postings bounds/order and fragment index bounds.
// After OpenV2 succeeds no accessor can read out of bounds.
func OpenV2(data []byte) (*StoreV2, error) {
	if len(data) < v2HeaderSize {
		return nil, fmt.Errorf("store: v2: file too short (%d bytes)", len(data))
	}
	if !IsV2(data) {
		return nil, fmt.Errorf("store: v2: bad magic")
	}
	if v := gu32(data, 8); v != FormatVersion2 {
		return nil, fmt.Errorf("store: v2: unsupported format version %d", v)
	}
	nSec := int(gu32(data, 12))
	if size := gu64(data, 16); size != uint64(len(data)) {
		return nil, fmt.Errorf("store: v2: declared size %d, actual %d", size, len(data))
	}
	dirEnd := v2HeaderSize + nSec*v2DirEntSize
	if nSec > 64 || dirEnd > len(data) {
		return nil, fmt.Errorf("store: v2: directory (%d sections) exceeds file", nSec)
	}
	if want, got := gu64(data, 24), uint64(crc32.Checksum(data[v2HeaderSize:], crcTable)); want != got {
		return nil, fmt.Errorf("store: v2: checksum mismatch (file %016x, computed %016x)", want, got)
	}

	// Sections must tile the file exactly: contiguous from the end of
	// the directory through EOF, in directory order. The section count
	// sits outside the checksummed range, so without this a corrupted
	// count could silently drop trailing sections or misread the
	// directory.
	secs := make(map[uint32][]byte, nSec)
	next := uint64(dirEnd)
	for i := 0; i < nSec; i++ {
		base := v2HeaderSize + i*v2DirEntSize
		id := gu32(data, base)
		off := gu64(data, base+4)
		ln := gu64(data, base+12)
		if off != next || off+ln < off || off+ln > uint64(len(data)) {
			return nil, fmt.Errorf("store: v2: section %d range [%d,%d) breaks the file tiling at %d", id, off, off+ln, next)
		}
		next = off + ln
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("store: v2: duplicate section %d", id)
		}
		secs[id] = data[off : off+ln]
	}
	if next != uint64(len(data)) {
		return nil, fmt.Errorf("store: v2: sections end at %d, file has %d bytes", next, len(data))
	}

	s := &StoreV2{data: data, region: newHeapRegion(data)}
	recs := []struct {
		id   uint32
		name string
		size int
		dst  *[]byte
		n    *int
	}{
		{secStrings, "strings", 1, &s.strings, new(int)},
		{secDocs, "documents", docRecSize, &s.docRecs, &s.nDocs},
		{secRevs, "revisions", revRecSize, &s.revRecs, &s.nRevs},
		{secStrRefs, "string refs", strRefSize, &s.refRecs, &s.nRefs},
		{secErrata, "errata", errRecSize, &s.errRecs, &s.nErr},
		{secItems, "items", itemRecSize, &s.itRecs, &s.nItems},
	}
	for _, r := range recs {
		sec, ok := secs[r.id]
		if !ok {
			return nil, fmt.Errorf("store: v2: missing %s section", r.name)
		}
		if len(sec)%r.size != 0 {
			return nil, fmt.Errorf("store: v2: %s section length %d not a multiple of %d", r.name, len(sec), r.size)
		}
		*r.dst = sec
		*r.n = len(sec) / r.size
	}

	if err := s.validateRecords(); err != nil {
		return nil, err
	}

	ords, hasOrds := secs[secOrds]
	post, hasPost := secs[secPostings]
	if hasOrds != hasPost {
		return nil, fmt.Errorf("store: v2: postings sections must appear together")
	}
	if hasOrds {
		if len(ords)%4 != 0 {
			return nil, fmt.Errorf("store: v2: ordinal section length %d not a multiple of 4", len(ords))
		}
		s.ords = ords
		s.nOrds = len(ords) / 4
		for i := 0; i < s.nOrds; i++ {
			if o := gu32(ords, i*4); int(o) >= s.nErr {
				return nil, fmt.Errorf("store: v2: ordinal %d out of range [0,%d)", o, s.nErr)
			}
		}
		p, err := s.parsePostings(post)
		if err != nil {
			return nil, err
		}
		s.post = p
	}

	frags, hasFrags := secs[secFrags]
	fragIdx, hasIdx := secs[secFragIdx]
	if hasFrags != hasIdx {
		return nil, fmt.Errorf("store: v2: fragment sections must appear together")
	}
	if hasFrags {
		if len(fragIdx) != s.nErr*fragIdxSize {
			return nil, fmt.Errorf("store: v2: fragment index holds %d bytes for %d errata", len(fragIdx), s.nErr)
		}
		for i := 0; i < s.nErr; i++ {
			base := i * fragIdxSize
			for _, f := range [2][2]uint32{
				{gu32(fragIdx, base), gu32(fragIdx, base+4)},
				{gu32(fragIdx, base+8), gu32(fragIdx, base+12)},
			} {
				if uint64(f[0])+uint64(f[1]) > uint64(len(frags)) {
					return nil, fmt.Errorf("store: v2: fragment range [%d,%d) exceeds fragment section (%d bytes)",
						f[0], uint64(f[0])+uint64(f[1]), len(frags))
				}
			}
		}
		s.frags = frags
		s.fragIdx = fragIdx
	}
	return s, nil
}

func (s *StoreV2) checkRef(off, ln uint32, what string) error {
	if uint64(off)+uint64(ln) > uint64(len(s.strings)) {
		return fmt.Errorf("store: v2: %s string ref [%d,%d) exceeds string table (%d bytes)",
			what, off, uint64(off)+uint64(ln), len(s.strings))
	}
	return nil
}

func (s *StoreV2) checkRange(off, n uint32, limit int, what string) error {
	if uint64(off)+uint64(n) > uint64(limit) {
		return fmt.Errorf("store: v2: %s range [%d,%d) exceeds %d records",
			what, off, uint64(off)+uint64(n), limit)
	}
	return nil
}

func (s *StoreV2) validateRecords() error {
	for i := 0; i < s.nRefs; i++ {
		if err := s.checkRef(gu32(s.refRecs, i*strRefSize), gu32(s.refRecs, i*strRefSize+4), "list"); err != nil {
			return err
		}
	}
	for i := 0; i < s.nItems; i++ {
		base := i * itemRecSize
		if err := s.checkRef(gu32(s.itRecs, base), gu32(s.itRecs, base+4), "item category"); err != nil {
			return err
		}
		if err := s.checkRef(gu32(s.itRecs, base+8), gu32(s.itRecs, base+12), "item concrete"); err != nil {
			return err
		}
	}
	// The erratum loop runs once per entry per field; error labels are
	// built only on the (cold) failure path so the happy path does no
	// string work.
	errFields := [7]string{"id", "title", "description", "implication", "workaround", "status", "key"}
	for i := 0; i < s.nErr; i++ {
		base := i * errRecSize
		for f := range errFields {
			off, ln := gu32(s.errRecs, base+f*8), gu32(s.errRecs, base+f*8+4)
			if uint64(off)+uint64(ln) > uint64(len(s.strings)) {
				return s.checkRef(off, ln, "erratum "+errFields[f])
			}
		}
		if wc := s.errRecs[base+60]; int(wc) >= len(core.WorkaroundCategories) {
			return fmt.Errorf("store: v2: erratum %d workaround category %d out of range", i, wc)
		}
		if fx := s.errRecs[base+61]; int(fx) >= len(core.FixStatuses) {
			return fmt.Errorf("store: v2: erratum %d fix status %d out of range", i, fx)
		}
		if fl := s.errRecs[base+62]; fl > 7 {
			return fmt.Errorf("store: v2: erratum %d flags %#x out of range", i, fl)
		}
		itemFields := [3]string{"trigger", "context", "effect"}
		for f := range itemFields {
			off, n := gu32(s.errRecs, base+76+f*8), gu32(s.errRecs, base+80+f*8)
			if uint64(off)+uint64(n) > uint64(s.nItems) {
				return s.checkRange(off, n, s.nItems, "erratum "+itemFields[f])
			}
		}
		if err := s.checkRange(gu32(s.errRecs, base+100), gu32(s.errRecs, base+104), s.nRefs, "erratum MSR"); err != nil {
			return err
		}
	}
	for i := 0; i < s.nRevs; i++ {
		base := i * revRecSize
		if err := s.checkRange(gu32(s.revRecs, base+16), gu32(s.revRecs, base+20), s.nRefs, "revision added"); err != nil {
			return err
		}
	}
	// Documents: refs in bounds, sub-ranges in bounds, errata and
	// revision ranges exactly sequential (they define the ordinal
	// space), and records sorted the way Documents() sorts so that
	// materialized ordinals match the stored postings.
	var nextRev, nextErr uint32
	for i := 0; i < s.nDocs; i++ {
		base := i * docRecSize
		for f, what := range [3]string{"key", "label", "reference"} {
			if err := s.checkRef(gu32(s.docRecs, base+f*8), gu32(s.docRecs, base+f*8+4), "document "+what); err != nil {
				return err
			}
		}
		if v := gu32(s.docRecs, base+24); int(v) >= len(core.Vendors) {
			return fmt.Errorf("store: v2: document %d vendor %d out of range", i, v)
		}
		rOff, rN := gu32(s.docRecs, base+48), gu32(s.docRecs, base+52)
		eOff, eN := gu32(s.docRecs, base+56), gu32(s.docRecs, base+60)
		if rOff != nextRev {
			return fmt.Errorf("store: v2: document %d revision range starts at %d, want %d", i, rOff, nextRev)
		}
		if err := s.checkRange(rOff, rN, s.nRevs, "document revision"); err != nil {
			return err
		}
		nextRev = rOff + rN
		if eOff != nextErr {
			return fmt.Errorf("store: v2: document %d errata range starts at %d, want %d", i, eOff, nextErr)
		}
		if err := s.checkRange(eOff, eN, s.nErr, "document errata"); err != nil {
			return err
		}
		nextErr = eOff + eN
		if err := s.checkRange(gu32(s.docRecs, base+64), gu32(s.docRecs, base+68), s.nRefs, "document withdrawn"); err != nil {
			return err
		}
		if i > 0 {
			if c := s.compareDocOrder(i-1, i); c >= 0 {
				return fmt.Errorf("store: v2: documents %d and %d out of canonical order", i-1, i)
			}
		}
	}
	if int(nextRev) != s.nRevs {
		return fmt.Errorf("store: v2: documents cover %d of %d revisions", nextRev, s.nRevs)
	}
	if int(nextErr) != s.nErr {
		return fmt.Errorf("store: v2: documents cover %d of %d errata", nextErr, s.nErr)
	}
	return nil
}

// compareDocOrder compares two document records by the Documents() sort
// key (vendor, order, key) without materializing strings.
func (s *StoreV2) compareDocOrder(i, j int) int {
	bi, bj := i*docRecSize, j*docRecSize
	if vi, vj := gu32(s.docRecs, bi+24), gu32(s.docRecs, bj+24); vi != vj {
		if vi < vj {
			return -1
		}
		return 1
	}
	if oi, oj := int32(gu32(s.docRecs, bi+28)), int32(gu32(s.docRecs, bj+28)); oi != oj {
		if oi < oj {
			return -1
		}
		return 1
	}
	ki := s.strings[gu32(s.docRecs, bi):][:gu32(s.docRecs, bi+4)]
	kj := s.strings[gu32(s.docRecs, bj):][:gu32(s.docRecs, bj+4)]
	return bytes.Compare(ki, kj)
}

type v2cursor struct {
	b   []byte
	off int
	err error
}

func (c *v2cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.err = fmt.Errorf("store: v2: postings section truncated at byte %d", c.off)
		return 0
	}
	v := gu32(c.b, c.off)
	c.off += 4
	return v
}

func (s *StoreV2) parsePostings(sec []byte) (*v2Postings, error) {
	c := &v2cursor{b: sec}
	p := &v2Postings{raw: sec}
	if n := c.u32(); c.err == nil && int(n) != s.nErr {
		return nil, fmt.Errorf("store: v2: postings describe %d errata, records hold %d", n, s.nErr)
	}
	c.u32() // reserved

	list := func(what string, mustSort bool) v2list {
		l := v2list{off: c.u32(), n: c.u32()}
		if c.err != nil {
			return l
		}
		if uint64(l.off)+uint64(l.n) > uint64(s.nOrds) {
			c.err = fmt.Errorf("store: v2: %s postings [%d,%d) exceed %d ordinals", what, l.off, uint64(l.off)+uint64(l.n), s.nOrds)
			return l
		}
		if mustSort {
			for i := uint32(1); i < l.n; i++ {
				a := gu32(s.ords, int(l.off+i-1)*4)
				b := gu32(s.ords, int(l.off+i)*4)
				if a >= b {
					c.err = fmt.Errorf("store: v2: %s postings not strictly ascending at position %d", what, i)
					return l
				}
			}
		}
		return l
	}

	p.unique = list("unique", false)
	p.complexSet = list("complex", true)
	p.simOnlySet = list("simulation-only", true)

	enumMap := func(what string, max int) []v2ev {
		n := c.u32()
		if c.err != nil {
			return nil
		}
		if int(n) > max {
			c.err = fmt.Errorf("store: v2: %s postings map has %d entries, max %d", what, n, max)
			return nil
		}
		out := make([]v2ev, 0, n)
		for i := uint32(0); i < n && c.err == nil; i++ {
			v := c.u32()
			if c.err == nil && int(v) >= max {
				c.err = fmt.Errorf("store: v2: %s postings value %d out of range", what, v)
				return nil
			}
			out = append(out, v2ev{val: v, list: list(what, true)})
		}
		return out
	}
	p.vendors = enumMap("vendor", len(core.Vendors))
	p.workarounds = enumMap("workaround", len(core.WorkaroundCategories))
	p.fixes = enumMap("fix", len(core.FixStatuses))

	strMapNames := [6]string{"document", "category", "trigger-category", "class", "key", "MSR"}
	for m := 0; m < 6 && c.err == nil; m++ {
		n := c.u32()
		if c.err != nil {
			break
		}
		if uint64(n) > uint64(len(sec)) {
			c.err = fmt.Errorf("store: v2: %s postings map count %d implausible", strMapNames[m], n)
			break
		}
		out := make([]v2kv, 0, n)
		for i := uint32(0); i < n && c.err == nil; i++ {
			r := strRef{off: c.u32(), ln: c.u32()}
			if c.err == nil {
				if err := s.checkRef(r.off, r.ln, strMapNames[m]+" postings key"); err != nil {
					c.err = err
					break
				}
			}
			out = append(out, v2kv{key: r, list: list(strMapNames[m], true)})
		}
		p.strMaps[m] = out
	}
	if c.err != nil {
		return nil, c.err
	}
	p.trigOff = c.off
	if len(sec)-c.off != s.nErr*4 {
		return nil, fmt.Errorf("store: v2: postings trailer holds %d bytes of trigger counts, want %d", len(sec)-c.off, s.nErr*4)
	}
	return p, nil
}

// ---------------------------------------------------------------------------
// Accessors

// str materializes a string reference as a zero-copy view over the
// file buffer. References were bounds-checked at Open.
func (s *StoreV2) str(off, ln uint32) string {
	if ln == 0 {
		return ""
	}
	b := s.strings[off : off+ln]
	return unsafe.String(&b[0], len(b))
}

func (s *StoreV2) strList(off, n uint32) []string {
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := uint32(0); i < n; i++ {
		base := int(off+i) * strRefSize
		out[i] = s.str(gu32(s.refRecs, base), gu32(s.refRecs, base+4))
	}
	return out
}

func (s *StoreV2) itemList(off, n uint32) []core.Item {
	if n == 0 {
		return nil
	}
	out := make([]core.Item, n)
	for i := uint32(0); i < n; i++ {
		base := int(off+i) * itemRecSize
		out[i] = core.Item{
			Category: s.str(gu32(s.itRecs, base), gu32(s.itRecs, base+4)),
			Concrete: s.str(gu32(s.itRecs, base+8), gu32(s.itRecs, base+12)),
		}
	}
	return out
}

func v2date(u uint64) time.Time {
	v := int64(u)
	if v == v2NoDate {
		return time.Time{}
	}
	return time.Unix(v, 0).UTC()
}

// Size returns the number of erratum entries in the file without
// materializing anything.
func (s *StoreV2) Size() int { return s.nErr }

// Format returns FormatVersion2; part of the Reader interface.
func (s *StoreV2) Format() int { return FormatVersion2 }

// Mapped reports whether the store reads from a file mapping rather
// than heap bytes.
func (s *StoreV2) Mapped() bool { return s.region.Mapped() }

// Region returns the refcounted byte range backing the store. Holders
// that need the bytes to outlive Close (the serving layer's snapshots)
// must TryRetain it and Release when done.
func (s *StoreV2) Region() *Region { return s.region }

// Close releases the opener's reference on the backing region; for a
// mapped store the last reference dropped runs munmap. Close is
// idempotent. After the final release every accessor — and every
// zero-copy string materialized from the store — is invalid.
func (s *StoreV2) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.region.Release()
}

// DecodeCount returns how many erratum records have been decoded so
// far. The lazy-materialization tests pin that an n-shard boot decodes
// each record exactly once.
func (s *StoreV2) DecodeCount() int64 { return s.decodes.Load() }

// NumDocs returns the number of document records without materializing
// anything.
func (s *StoreV2) NumDocs() int { return s.nDocs }

// Doc decodes document record i — metadata, revisions and withdrawn
// lists, but not its errata (see DocErrataRange and Erratum, which the
// lazy shard boot uses to decode only the entries a shard owns).
// Strings alias the file buffer.
func (s *StoreV2) Doc(i int) *core.Document {
	base := i * docRecSize
	d := &core.Document{
		Key:       s.str(gu32(s.docRecs, base), gu32(s.docRecs, base+4)),
		Label:     s.str(gu32(s.docRecs, base+8), gu32(s.docRecs, base+12)),
		Reference: s.str(gu32(s.docRecs, base+16), gu32(s.docRecs, base+20)),
		Vendor:    core.Vendor(gu32(s.docRecs, base+24)),
		Order:     int(int32(gu32(s.docRecs, base+28))),
		GenIndex:  int(int32(gu32(s.docRecs, base+32))),
		Released:  v2date(gu64(s.docRecs, base+40)),
		Withdrawn: s.strList(gu32(s.docRecs, base+64), gu32(s.docRecs, base+68)),
	}
	rOff, rN := gu32(s.docRecs, base+48), gu32(s.docRecs, base+52)
	if rN > 0 {
		d.Revisions = make([]core.Revision, rN)
		for r := uint32(0); r < rN; r++ {
			rb := int(rOff+r) * revRecSize
			d.Revisions[r] = core.Revision{
				Number: int(int32(gu32(s.revRecs, rb))),
				Date:   v2date(gu64(s.revRecs, rb+8)),
				Added:  s.strList(gu32(s.revRecs, rb+16), gu32(s.revRecs, rb+20)),
			}
		}
	}
	return d
}

// DocErrataRange returns the ordinal range [off, off+n) of document
// record i's errata. Ordinals are sequential across documents in record
// order (validated at open).
func (s *StoreV2) DocErrataRange(i int) (off, n int) {
	base := i * docRecSize
	return int(gu32(s.docRecs, base+56)), int(gu32(s.docRecs, base+60))
}

// Erratum decodes the erratum record at the given ordinal, attributed
// to docKey. Strings alias the file buffer. Each call decodes afresh;
// callers wanting shared identity (pointer-keyed fragments, shard
// ranks) must decode once and share the pointer.
func (s *StoreV2) Erratum(ord int, docKey string) *core.Erratum {
	s.decodes.Add(1)
	eb := ord * errRecSize
	flags := s.errRecs[eb+62]
	return &core.Erratum{
		DocKey:        docKey,
		ID:            s.str(gu32(s.errRecs, eb), gu32(s.errRecs, eb+4)),
		Seq:           int(int32(gu32(s.errRecs, eb+56))),
		Title:         s.str(gu32(s.errRecs, eb+8), gu32(s.errRecs, eb+12)),
		Description:   s.str(gu32(s.errRecs, eb+16), gu32(s.errRecs, eb+20)),
		Implication:   s.str(gu32(s.errRecs, eb+24), gu32(s.errRecs, eb+28)),
		Workaround:    s.str(gu32(s.errRecs, eb+32), gu32(s.errRecs, eb+36)),
		Status:        s.str(gu32(s.errRecs, eb+40), gu32(s.errRecs, eb+44)),
		WorkaroundCat: core.WorkaroundCategory(s.errRecs[eb+60]),
		Fix:           core.FixStatus(s.errRecs[eb+61]),
		AddedIn:       int(int32(gu32(s.errRecs, eb+64))),
		Disclosed:     v2date(gu64(s.errRecs, eb+68)),
		Key:           s.str(gu32(s.errRecs, eb+48), gu32(s.errRecs, eb+52)),
		Ann: core.Annotation{
			Triggers:          s.itemList(gu32(s.errRecs, eb+76), gu32(s.errRecs, eb+80)),
			Contexts:          s.itemList(gu32(s.errRecs, eb+84), gu32(s.errRecs, eb+88)),
			Effects:           s.itemList(gu32(s.errRecs, eb+92), gu32(s.errRecs, eb+96)),
			MSRs:              s.strList(gu32(s.errRecs, eb+100), gu32(s.errRecs, eb+104)),
			ComplexConditions: flags&1 != 0,
			TrivialTrigger:    flags&2 != 0,
			SimulationOnly:    flags&4 != 0,
		},
	}
}

// EntryKey returns the cluster key of the erratum record at ord without
// decoding the record. The string aliases the file buffer.
func (s *StoreV2) EntryKey(ord int) string {
	eb := ord * errRecSize
	return s.str(gu32(s.errRecs, eb+48), gu32(s.errRecs, eb+52))
}

// EntryID returns the vendor-assigned ID of the erratum record at ord
// without decoding the record. The string aliases the file buffer.
func (s *StoreV2) EntryID(ord int) string {
	eb := ord * errRecSize
	return s.str(gu32(s.errRecs, eb), gu32(s.errRecs, eb+4))
}

// HasPostings reports whether the file embeds the inverted index's
// postings lists.
func (s *StoreV2) HasPostings() bool { return s.post != nil }

// HasFragments reports whether the file embeds precomputed response
// fragments.
func (s *StoreV2) HasFragments() bool { return s.frags != nil }

// Database materializes the core database. Strings are zero-copy views
// over the file buffer, so the buffer must outlive the database. The
// result is memoized; concurrent callers share one materialization.
func (s *StoreV2) Database() (*core.Database, error) {
	s.dbOnce.Do(func() {
		s.db, s.dbErr = s.materialize()
		s.dbDone.Store(true)
	})
	return s.db, s.dbErr
}

// Materialized reports whether Database has already run, i.e. the full
// corpus is decoded and memoized. Lazy consumers (the sharded serving
// boot) use it to reuse the existing materialization instead of
// decoding the records a second time.
func (s *StoreV2) Materialized() bool { return s.dbDone.Load() }

func (s *StoreV2) materialize() (*core.Database, error) {
	db := core.NewDatabase()
	for i := 0; i < s.nDocs; i++ {
		d := s.Doc(i)
		eOff, eN := s.DocErrataRange(i)
		if eN > 0 {
			d.Errata = make([]*core.Erratum, eN)
			for j := 0; j < eN; j++ {
				d.Errata[j] = s.Erratum(eOff+j, d.Key)
			}
		}
		if err := db.Add(d); err != nil {
			return nil, fmt.Errorf("store: v2: %w", err)
		}
	}
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("store: v2: %w", err)
	}
	return db, nil
}

// IndexParts reconstructs the inverted index's postings from the ORDS
// and POSTINGS sections, without walking any annotation. It returns nil
// when the file carries no postings (encode with V2Options.Postings).
// Ordinal lists are sub-slices of one shared array; callers must treat
// them as read-only, exactly like index query results.
func (s *StoreV2) IndexParts() *index.Parts {
	if s.post == nil {
		return nil
	}
	all := make([]int, s.nOrds)
	for i := range all {
		all[i] = int(gu32(s.ords, i*4))
	}
	view := func(l v2list) []int {
		if l.n == 0 {
			return nil
		}
		return all[l.off : l.off+l.n]
	}
	p := &index.Parts{
		UniqueOrds:   view(s.post.unique),
		ComplexSet:   view(s.post.complexSet),
		SimOnlySet:   view(s.post.simOnlySet),
		ByVendor:     make(map[core.Vendor][]int, len(s.post.vendors)),
		ByWorkaround: make(map[core.WorkaroundCategory][]int, len(s.post.workarounds)),
		ByFix:        make(map[core.FixStatus][]int, len(s.post.fixes)),
		TriggerCount: make([]int, s.nErr),
	}
	for _, ev := range s.post.vendors {
		p.ByVendor[core.Vendor(ev.val)] = view(ev.list)
	}
	for _, ev := range s.post.workarounds {
		p.ByWorkaround[core.WorkaroundCategory(ev.val)] = view(ev.list)
	}
	for _, ev := range s.post.fixes {
		p.ByFix[core.FixStatus(ev.val)] = view(ev.list)
	}
	strMaps := [6]*map[string][]int{
		&p.ByDoc, &p.ByCategory, &p.ByTriggerCat, &p.ByClass, &p.ByKey, &p.ByMSR,
	}
	for m, dst := range strMaps {
		mm := make(map[string][]int, len(s.post.strMaps[m]))
		for _, kv := range s.post.strMaps[m] {
			mm[s.str(kv.key.off, kv.key.ln)] = view(kv.list)
		}
		*dst = mm
	}
	for i := 0; i < s.nErr; i++ {
		p.TriggerCount[i] = int(gu32(s.post.raw, s.post.trigOff+i*4))
	}
	return p
}

// IndexLists reconstructs the inverted index's postings as spans over
// the ORDS section — the disk-resident postings iterator. Unlike
// IndexParts nothing is copied into the heap: every list reads its u32
// ordinals straight off the file buffer (the mapping, for an
// mmap-backed store), so compound-filter queries walk postings from
// disk pages the kernel faults in on demand. Returns nil when the file
// carries no postings. Lists are only valid while the store's region
// holds a reference.
func (s *StoreV2) IndexLists() *index.ListParts {
	if s.post == nil {
		return nil
	}
	span := func(l v2list) index.List {
		if l.n == 0 {
			return nil
		}
		return index.NewSpan(s.ords[l.off*4 : (l.off+l.n)*4])
	}
	p := &index.ListParts{
		UniqueOrds:   span(s.post.unique),
		ComplexSet:   span(s.post.complexSet),
		SimOnlySet:   span(s.post.simOnlySet),
		ByVendor:     make(map[core.Vendor]index.List, len(s.post.vendors)),
		ByWorkaround: make(map[core.WorkaroundCategory]index.List, len(s.post.workarounds)),
		ByFix:        make(map[core.FixStatus]index.List, len(s.post.fixes)),
		TriggerCount: index.NewSpan(s.post.raw[s.post.trigOff : s.post.trigOff+s.nErr*4]),
	}
	for _, ev := range s.post.vendors {
		p.ByVendor[core.Vendor(ev.val)] = span(ev.list)
	}
	for _, ev := range s.post.workarounds {
		p.ByWorkaround[core.WorkaroundCategory(ev.val)] = span(ev.list)
	}
	for _, ev := range s.post.fixes {
		p.ByFix[core.FixStatus(ev.val)] = span(ev.list)
	}
	strMaps := [6]*map[string]index.List{
		&p.ByDoc, &p.ByCategory, &p.ByTriggerCat, &p.ByClass, &p.ByKey, &p.ByMSR,
	}
	for m, dst := range strMaps {
		mm := make(map[string]index.List, len(s.post.strMaps[m]))
		for _, kv := range s.post.strMaps[m] {
			mm[s.str(kv.key.off, kv.key.ln)] = span(kv.list)
		}
		*dst = mm
	}
	return p
}

// Fragments returns the precomputed response fragments, keyed by the
// materialized errata of Database(). Fragment bytes alias the file
// buffer. Returns nil (a valid, always-missing Fragments) when the file
// carries none; the error reports a failed materialization.
func (s *StoreV2) Fragments() (*Fragments, error) {
	s.frOnce.Do(func() {
		if s.frags == nil {
			return
		}
		db, err := s.Database()
		if err != nil {
			s.frErr = err
			return
		}
		s.fr, s.frErr = s.FragmentsFor(db.Errata())
	})
	return s.fr, s.frErr
}

// FragmentsFor returns the precomputed response fragments keyed by the
// caller's erratum pointers, which must be in ordinal order — errata[i]
// is the decode of record i. The lazy shard boot uses this: it decodes
// each record once into its own pointers (never calling Database()), so
// the pointer-keyed fragment maps must be built against those. Returns
// nil when the file carries no fragments.
func (s *StoreV2) FragmentsFor(errata []*core.Erratum) (*Fragments, error) {
	if s.frags == nil {
		return nil, nil
	}
	if len(errata) != s.nErr {
		return nil, fmt.Errorf("store: v2: fragments keyed by %d errata, file holds %d", len(errata), s.nErr)
	}
	fr := &Fragments{
		details:   make(map[*core.Erratum][]byte, len(errata)),
		summaries: make(map[*core.Erratum][]byte, len(errata)),
		keys:      make(map[string][]byte),
	}
	for i, e := range errata {
		base := i * fragIdxSize
		dOff, dLn := gu32(s.fragIdx, base), gu32(s.fragIdx, base+4)
		sOff, sLn := gu32(s.fragIdx, base+8), gu32(s.fragIdx, base+12)
		fr.details[e] = s.frags[dOff : dOff+dLn]
		fr.summaries[e] = s.frags[sOff : sOff+sLn]
		if e.Key != "" {
			if _, ok := fr.keys[e.Key]; !ok {
				kj, err := json.Marshal(e.Key)
				if err != nil {
					return nil, err
				}
				fr.keys[e.Key] = kj
			}
		}
	}
	return fr, nil
}

// DecodeAny deserializes a database from either format, sniffing the
// FormatVersion 2 magic and falling back to the JSON FormatVersion 1
// decoder.
//
// Deprecated: use OpenBytes (which also sniffs gzip) and call
// Database() on the result.
func DecodeAny(data []byte) (*core.Database, error) {
	r, err := OpenBytes(data)
	if err != nil {
		return nil, err
	}
	return r.Database()
}
