// Package store persists the RemembERR database as JSON — the
// machine-readable distribution format the paper advocates (its own
// release ships the database as structured files). Encoding is
// deterministic: documents, errata and annotation items keep a stable
// order, so repeated encodings of the same database are byte-identical.
package store

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
)

// FormatVersion identifies the serialization layout.
const FormatVersion = 1

type fileDTO struct {
	Version   int      `json:"version"`
	Generated string   `json:"generated,omitempty"`
	Documents []docDTO `json:"documents"`
}

type docDTO struct {
	Key       string   `json:"key"`
	Vendor    string   `json:"vendor"`
	Label     string   `json:"label"`
	Reference string   `json:"reference"`
	Order     int      `json:"order"`
	GenIndex  int      `json:"gen_index,omitempty"`
	Released  string   `json:"released"`
	Revisions []revDTO `json:"revisions"`
	Errata    []errDTO `json:"errata"`
	Withdrawn []string `json:"withdrawn,omitempty"`
}

type revDTO struct {
	Number int      `json:"number"`
	Date   string   `json:"date"`
	Added  []string `json:"added,omitempty"`
}

type errDTO struct {
	ID          string   `json:"id"`
	Seq         int      `json:"seq"`
	Title       string   `json:"title"`
	Description string   `json:"description,omitempty"`
	Implication string   `json:"implication,omitempty"`
	Workaround  string   `json:"workaround,omitempty"`
	Status      string   `json:"status,omitempty"`
	WorkCat     string   `json:"workaround_category"`
	Fix         string   `json:"fix_status"`
	AddedIn     int      `json:"added_in,omitempty"`
	Disclosed   string   `json:"disclosed,omitempty"`
	Key         string   `json:"key,omitempty"`
	Triggers    []itDTO  `json:"triggers,omitempty"`
	Contexts    []itDTO  `json:"contexts,omitempty"`
	Effects     []itDTO  `json:"effects,omitempty"`
	MSRs        []string `json:"msrs,omitempty"`
	Complex     bool     `json:"complex_conditions,omitempty"`
	Trivial     bool     `json:"trivial_trigger,omitempty"`
	SimOnly     bool     `json:"simulation_only,omitempty"`
}

type itDTO struct {
	Category string `json:"category"`
	Concrete string `json:"concrete,omitempty"`
}

const dateFmt = "2006-01-02"

// Encode serializes the database to indented JSON.
func Encode(db *core.Database) ([]byte, error) {
	f := fileDTO{Version: FormatVersion}
	for _, d := range db.Documents() {
		dd := docDTO{
			Key:       d.Key,
			Vendor:    d.Vendor.String(),
			Label:     d.Label,
			Reference: d.Reference,
			Order:     d.Order,
			GenIndex:  d.GenIndex,
			Released:  d.Released.Format(dateFmt),
			Withdrawn: d.Withdrawn,
		}
		for _, r := range d.Revisions {
			dd.Revisions = append(dd.Revisions, revDTO{
				Number: r.Number, Date: r.Date.Format(dateFmt), Added: r.Added,
			})
		}
		for _, e := range d.Errata {
			ed := errDTO{
				ID:          e.ID,
				Seq:         e.Seq,
				Title:       e.Title,
				Description: e.Description,
				Implication: e.Implication,
				Workaround:  e.Workaround,
				Status:      e.Status,
				WorkCat:     e.WorkaroundCat.String(),
				Fix:         e.Fix.String(),
				AddedIn:     e.AddedIn,
				Key:         e.Key,
				Triggers:    toItems(e.Ann.Triggers),
				Contexts:    toItems(e.Ann.Contexts),
				Effects:     toItems(e.Ann.Effects),
				MSRs:        e.Ann.MSRs,
				Complex:     e.Ann.ComplexConditions,
				Trivial:     e.Ann.TrivialTrigger,
				SimOnly:     e.Ann.SimulationOnly,
			}
			if !e.Disclosed.IsZero() {
				ed.Disclosed = e.Disclosed.Format(dateFmt)
			}
			dd.Errata = append(dd.Errata, ed)
		}
		f.Documents = append(f.Documents, dd)
	}
	return json.MarshalIndent(f, "", "  ")
}

func toItems(items []core.Item) []itDTO {
	out := make([]itDTO, 0, len(items))
	for _, it := range items {
		out = append(out, itDTO{Category: it.Category, Concrete: it.Concrete})
	}
	return out
}

// Decode deserializes a FormatVersion 1 JSON database and validates it
// against the base taxonomy scheme.
//
// Deprecated: use OpenBytes, which sniffs the format (and gzip) instead
// of assuming v1 JSON, and call Database() on the result.
func Decode(data []byte) (*core.Database, error) {
	var f fileDTO
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d", f.Version)
	}
	db := core.NewDatabase()
	for _, dd := range f.Documents {
		vendor, err := core.ParseVendor(dd.Vendor)
		if err != nil {
			return nil, fmt.Errorf("store: document %s: %w", dd.Key, err)
		}
		released, err := time.Parse(dateFmt, dd.Released)
		if err != nil {
			return nil, fmt.Errorf("store: document %s: %w", dd.Key, err)
		}
		d := &core.Document{
			Key:       dd.Key,
			Vendor:    vendor,
			Label:     dd.Label,
			Reference: dd.Reference,
			Order:     dd.Order,
			GenIndex:  dd.GenIndex,
			Released:  released,
			Withdrawn: dd.Withdrawn,
		}
		for _, rd := range dd.Revisions {
			rdate, err := time.Parse(dateFmt, rd.Date)
			if err != nil {
				return nil, fmt.Errorf("store: document %s revision %d: %w", dd.Key, rd.Number, err)
			}
			d.Revisions = append(d.Revisions, core.Revision{
				Number: rd.Number, Date: rdate, Added: rd.Added,
			})
		}
		for _, ed := range dd.Errata {
			wc, err := core.ParseWorkaroundCategory(ed.WorkCat)
			if err != nil {
				return nil, fmt.Errorf("store: erratum %s/%s: %w", dd.Key, ed.ID, err)
			}
			fx, err := core.ParseFixStatus(ed.Fix)
			if err != nil {
				return nil, fmt.Errorf("store: erratum %s/%s: %w", dd.Key, ed.ID, err)
			}
			e := &core.Erratum{
				DocKey:        dd.Key,
				ID:            ed.ID,
				Seq:           ed.Seq,
				Title:         ed.Title,
				Description:   ed.Description,
				Implication:   ed.Implication,
				Workaround:    ed.Workaround,
				Status:        ed.Status,
				WorkaroundCat: wc,
				Fix:           fx,
				AddedIn:       ed.AddedIn,
				Key:           ed.Key,
				Ann: core.Annotation{
					Triggers:          fromItems(ed.Triggers),
					Contexts:          fromItems(ed.Contexts),
					Effects:           fromItems(ed.Effects),
					MSRs:              ed.MSRs,
					ComplexConditions: ed.Complex,
					TrivialTrigger:    ed.Trivial,
					SimulationOnly:    ed.SimOnly,
				},
			}
			if ed.Disclosed != "" {
				t, err := time.Parse(dateFmt, ed.Disclosed)
				if err != nil {
					return nil, fmt.Errorf("store: erratum %s/%s: %w", dd.Key, ed.ID, err)
				}
				e.Disclosed = t
			}
			d.Errata = append(d.Errata, e)
		}
		if err := db.Add(d); err != nil {
			return nil, err
		}
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}

func fromItems(items []itDTO) []core.Item {
	if len(items) == 0 {
		return nil
	}
	out := make([]core.Item, 0, len(items))
	for _, it := range items {
		out = append(out, core.Item{Category: it.Category, Concrete: it.Concrete})
	}
	return out
}

// Save writes the database to a file. Paths whose name (before an
// optional ".gz") ends in ".v2" are written in FormatVersion 2 with
// postings and response fragments embedded; everything else stays
// FormatVersion 1 JSON. Paths ending in ".gz" are gzip-compressed (the
// full v1 corpus shrinks roughly tenfold).
func Save(db *core.Database, path string) error {
	return SaveFormat(db, path, "")
}

// SaveFormat writes the database in an explicit serialization format:
// "v1" (JSON), "v2" (the zero-decode binary layout, with postings and
// fragments), or "" to pick by filename — paths whose name ends in
// ".v2" (before any ".gz") get FormatVersion 2, everything else v1.
// ".gz" paths are gzip-compressed regardless of format.
func SaveFormat(db *core.Database, path, format string) error {
	if format == "" {
		if strings.HasSuffix(strings.TrimSuffix(path, ".gz"), ".v2") {
			format = "v2"
		} else {
			format = "v1"
		}
	}
	var encode func(w io.Writer) error
	switch format {
	case "v2":
		// Streamed: the encoder's section buffers are the only full copy
		// in memory; header, directory and sections go straight to the
		// temp file.
		encode = func(w io.Writer) error {
			return EncodeV2To(w, db, V2Options{Postings: true, Fragments: true})
		}
	case "v1":
		// v1 stays buffered — json.MarshalIndent has no streaming mode
		// and the golden files pin its exact bytes.
		encode = func(w io.Writer) error {
			data, err := Encode(db)
			if err != nil {
				return err
			}
			_, err = w.Write(data)
			return err
		}
	default:
		return fmt.Errorf("store: unknown format %q (want v1 or v2)", format)
	}
	return writeAtomicTo(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".gz") {
			zw := gzip.NewWriter(w)
			if err := encode(zw); err != nil {
				return err
			}
			return zw.Close()
		}
		return encode(w)
	})
}

// writeAtomicTo streams fill into a temp file in path's directory and
// renames it over path, so readers — and a serving process re-opening
// on SIGHUP — never observe a partially written database.
func writeAtomicTo(path string, fill func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(name)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Chmod(name, 0o644); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Load reads a database from a file, transparently decompressing ".gz"
// paths and sniffing the serialization format (FormatVersion 2 binary
// or FormatVersion 1 JSON) from the content.
//
// Deprecated: use Open, which adds mmap-backed v2 access behind the
// same sniffing, and call Database() on the result. Load always copies
// the file into the heap (it never maps), so it cannot serve a corpus
// larger than RAM.
func Load(path string) (*core.Database, error) {
	r, err := Open(path, WithMmap(false))
	if err != nil {
		return nil, err
	}
	return r.Database()
}

func readMaybeGzip(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return data, nil
}

// EncodeStructured serializes errata in the paper's proposed
// machine-readable format (Table VII), one record per unique erratum.
func EncodeStructured(db *core.Database) ([]byte, error) {
	type structuredDTO struct {
		ID         string  `json:"id"`
		Title      string  `json:"title"`
		Triggers   []itDTO `json:"triggers"`
		Contexts   []itDTO `json:"contexts"`
		Effects    []itDTO `json:"effects"`
		Comments   string  `json:"comments,omitempty"`
		RootCause  string  `json:"root_cause,omitempty"`
		Workaround string  `json:"workaround,omitempty"`
		Status     string  `json:"status"`
	}
	var out []structuredDTO
	for _, e := range db.Unique() {
		s := core.Structure(e)
		out = append(out, structuredDTO{
			ID:         s.ID,
			Title:      s.Title,
			Triggers:   toItems(s.Triggers),
			Contexts:   toItems(s.Contexts),
			Effects:    toItems(s.Effects),
			Comments:   s.Comments,
			RootCause:  s.RootCause,
			Workaround: s.Workaround,
			Status:     s.Status.String(),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
