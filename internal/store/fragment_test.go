package store

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/corpus"
)

// TestFragmentsMatchMarshal is the byte-identity contract behind the
// zero-allocation serve path: every precomputed fragment must equal
// json.Marshal of the corresponding DTO, for every erratum and key.
func TestFragmentsMatchMarshal(t *testing.T) {
	gt, err := corpus.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	db := gt.DB
	frags, err := BuildFragments(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range db.Errata() {
		wantD, err := json.Marshal(DetailOf(db, e))
		if err != nil {
			t.Fatal(err)
		}
		if got := frags.Detail(e); !bytes.Equal(got, wantD) {
			t.Fatalf("%s#%d: detail fragment differs:\n got %s\nwant %s", e.DocKey, e.Seq, got, wantD)
		}
		wantS, err := json.Marshal(Summarize(db, e))
		if err != nil {
			t.Fatal(err)
		}
		if got := frags.Summary(e); !bytes.Equal(got, wantS) {
			t.Fatalf("%s#%d: summary fragment differs:\n got %s\nwant %s", e.DocKey, e.Seq, got, wantS)
		}
		if e.Key != "" {
			wantK, _ := json.Marshal(e.Key)
			if got := frags.KeyJSON(e.Key); !bytes.Equal(got, wantK) {
				t.Fatalf("key %q: %s != %s", e.Key, got, wantK)
			}
		}
	}
}

// TestFragmentsNilSafety proves a nil *Fragments always answers nil, so
// the serving layer can treat "no fragments" as "fall back to marshal".
func TestFragmentsNilSafety(t *testing.T) {
	var f *Fragments
	db := sampleDB(t)
	e := db.Errata()[0]
	if f.Detail(e) != nil || f.Summary(e) != nil || f.KeyJSON("k") != nil {
		t.Fatal("nil Fragments answered non-nil")
	}
	var empty Fragments
	if empty.Detail(e) != nil || empty.Summary(e) != nil || empty.KeyJSON("k") != nil {
		t.Fatal("empty Fragments answered non-nil")
	}
}

// TestBuildFragmentsDelta proves the incremental path: fragments for
// errata shared (by pointer) with the previous snapshot are reused
// without re-marshaling, new errata get fresh fragments, and the result
// is indistinguishable from a cold build.
func TestBuildFragmentsDelta(t *testing.T) {
	gt, err := corpus.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	db := gt.DB
	prev, err := BuildFragments(db)
	if err != nil {
		t.Fatal(err)
	}

	// Same database: every fragment must be reused, not rebuilt.
	same, err := BuildFragmentsDelta(prev, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range db.Errata() {
		a, b := prev.Detail(e), same.Detail(e)
		if len(a) == 0 || &a[0] != &b[0] {
			t.Fatalf("%s#%d: delta rebuilt an unchanged fragment", e.DocKey, e.Seq)
		}
	}

	// A nil previous snapshot degenerates to a cold build.
	cold, err := BuildFragmentsDelta(nil, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range db.Errata() {
		if !bytes.Equal(cold.Detail(e), prev.Detail(e)) {
			t.Fatalf("%s#%d: nil-prev delta differs from cold build", e.DocKey, e.Seq)
		}
	}
}
