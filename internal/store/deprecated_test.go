package store

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestDeprecatedShims is the single regression test for the deprecated
// entry points — Load, Decode and DecodeAny — kept until the shims are
// removed. Every one must agree byte-for-byte with the Open/OpenBytes
// path it forwards to; all other tests use the modern API.
func TestDeprecatedShims(t *testing.T) {
	db := sampleDB(t)
	want, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}

	// Decode: the v1-only shim.
	fromDecode, err := Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Encode(fromDecode)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, want) {
		t.Error("Decode shim changed the canonical encoding")
	}

	// DecodeAny: the sniffing shim, over both serializations.
	for _, enc := range [][]byte{want, fullV2(t, db)} {
		got, err := DecodeAny(enc)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, want) {
			t.Error("DecodeAny shim changed the canonical encoding")
		}
	}
	if _, err := DecodeAny([]byte("REMBERR?-garbage")); err == nil {
		t.Error("DecodeAny accepted garbage")
	}

	// Load: the path shim.
	path := filepath.Join(t.TempDir(), "db.json")
	if err := Save(db, path); err != nil {
		t.Fatal(err)
	}
	fromLoad, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	re, err = Encode(fromLoad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, want) {
		t.Error("Load shim changed the canonical encoding")
	}
}
