//go:build linux || darwin

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates the Open fast path; on other platforms Open
// silently falls back to reading the file into the heap.
const mmapSupported = true

// mmapFile maps the whole of f read-only and shared (PROT_READ,
// MAP_SHARED: the page cache backs the corpus, not the Go heap) and
// returns the mapping plus the matching unmap function. An empty file
// maps to empty heap bytes — mmap of length 0 is an error on Linux, and
// OpenV2's header check rejects it with a proper message either way.
func mmapFile(f *os.File) ([]byte, func([]byte) error, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, func([]byte) error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("store: file of %d bytes exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap: %w", err)
	}
	return data, syscall.Munmap, nil
}

// madviseRandom tells the kernel the mapping will be accessed at random
// offsets (point lookups hop between sections), disabling readahead
// that would otherwise fault in pages the workload never touches.
func madviseRandom(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Madvise(b, syscall.MADV_RANDOM)
}

// madviseDontNeed evicts the mapping's resident pages; see
// Region.DropResident.
func madviseDontNeed(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Madvise(b, syscall.MADV_DONTNEED)
}
