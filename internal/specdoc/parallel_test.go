package specdoc

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/store"
)

// TestWriteParseParallelEquivalence pins the determinism contract of
// the parallel render and parse paths on the full generated corpus:
// output is identical at every worker count, including diagnostics
// order.
func TestWriteParseParallelEquivalence(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}

	seqTexts := WriteAllParallel(gt.DB, WriteOptions{}, 1)
	for _, workers := range []int{0, 2, 8} {
		if parTexts := WriteAllParallel(gt.DB, WriteOptions{}, workers); !reflect.DeepEqual(seqTexts, parTexts) {
			t.Fatalf("workers=%d: rendered documents differ", workers)
		}
	}

	seqDB, seqDiags, err := ParseAllParallel(seqTexts, 1)
	if err != nil {
		t.Fatal(err)
	}
	seqEnc, err := store.Encode(seqDB)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		parDB, parDiags, err := ParseAllParallel(seqTexts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqDiags, parDiags) {
			t.Fatalf("workers=%d: diagnostics differ", workers)
		}
		parEnc, err := store.Encode(parDB)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqEnc, parEnc) {
			t.Fatalf("workers=%d: parsed database differs", workers)
		}
	}
}

// TestParseAllParallelErrorMatchesSequential pins the error path: with
// a document that fails to parse, the parallel merge reports the same
// error and truncates diagnostics at the same point as the sequential
// loop (documents are merged in sorted key order).
func TestParseAllParallelErrorMatchesSequential(t *testing.T) {
	texts := map[string]string{
		"a-doc": "not a specification update",
		"z-doc": "also not one",
	}
	_, seqDiags, seqErr := ParseAllParallel(texts, 1)
	if seqErr == nil {
		t.Fatal("malformed input parsed successfully")
	}
	for _, workers := range []int{0, 8} {
		_, parDiags, parErr := ParseAllParallel(texts, workers)
		if parErr == nil {
			t.Fatalf("workers=%d: malformed input parsed successfully", workers)
		}
		if parErr.Error() != seqErr.Error() {
			t.Errorf("workers=%d: error %q, sequential %q", workers, parErr, seqErr)
		}
		if !reflect.DeepEqual(seqDiags, parDiags) {
			t.Errorf("workers=%d: diagnostics on error differ", workers)
		}
	}
}
