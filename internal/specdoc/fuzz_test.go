package specdoc

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
)

// FuzzParseDocument fuzzes the tolerant parser with mutated
// specification-update text. Properties:
//
//  1. Parse never panics, whatever the input.
//  2. If Parse accepts the input, the writer's rendering of the result
//     must itself parse ("writer output is always a valid document").
//  3. Parse∘Write is a fixed point after one normalization round:
//     the first round may collapse whitespace and canonicalize the
//     summary table, but a second write/parse round trip must
//     reproduce the document exactly.
func FuzzParseDocument(f *testing.F) {
	// Corpus-derived seeds, truncated to a handful of errata per
	// document: full renderings run ~110KB and starve the mutator.
	gt, err := corpus.Generate(1)
	if err != nil {
		f.Fatal(err)
	}
	for i, d := range gt.DB.Documents() {
		if i >= 3 {
			break
		}
		trimmed := *d
		if len(trimmed.Errata) > 4 {
			trimmed.Errata = trimmed.Errata[:4]
		}
		if len(trimmed.Revisions) > 3 {
			trimmed.Revisions = trimmed.Revisions[:3]
		}
		f.Add(Write(&trimmed, WriteOptions{}))
	}
	f.Add("SPECIFICATION UPDATE\n")
	f.Add("SPECIFICATION UPDATE\nVendor: Intel\nGeneration: 1 (D)\nReleased: 2010-01\n" +
		"REVISION HISTORY\nRevision 1 (2010-01): Added AAA001\n" +
		"SUMMARY TABLE OF CHANGES\nAAA001 | Fixed | A title\n" +
		"ERRATA\n\nID: AAA001\nTitle: A title\nProblem: Something breaks.\n" +
		"Status: Fixed\n\nEND OF DOCUMENT\n")
	// Adversarial structure: pipes in cells, a live "Withdrawn" status,
	// reused IDs, double-added revision notes, unmentioned errata.
	f.Add("SPECIFICATION UPDATE\nVendor: AMD\nFamily: 10h 00-0F\nReleased: 2009-03\n" +
		"REVISION HISTORY\nRevision 1 (2009-03): Added 100, 100\nRevision 2 (2009-04): Added 100\n" +
		"SUMMARY TABLE OF CHANGES\n100 | Withdrawn | gone\nx|y | No fix | pipe | title\n" +
		"ERRATA\n\nID: 100\nTitle: t\nStatus: Withdrawn\n\nID: 100\nTitle: t2\n\n" +
		"ID: x|y\nTitle: pipe | title\n\nEND OF DOCUMENT\n")
	f.Add("SPECIFICATION UPDATE\nVendor: Intel\nGeneration: 7/8\nReleased: 2013-06\n" +
		"Bogus header noise\nREVISION HISTORY\nnot a revision\n" +
		"SUMMARY TABLE OF CHANGES\nmissing pipes here\nERRATA\n\n" +
		"Title: field before erratum\nID: A\nTitle: wrapped line that goes on and on and " +
		"on and on and on and on and on and on and on and on and on past the wrap width\n" +
		"Title: duplicated\n\nEND OF DOCUMENT\n")

	f.Fuzz(func(t *testing.T, input string) {
		doc1, _, err := Parse(input)
		if err != nil {
			return // rejected input; only panics are failures
		}
		text2 := Write(doc1, WriteOptions{})
		doc2, _, err := Parse(text2)
		if err != nil {
			t.Fatalf("writer output rejected by parser: %v\ninput: %q\nrendered: %q", err, input, text2)
		}
		text3 := Write(doc2, WriteOptions{})
		doc3, _, err := Parse(text3)
		if err != nil {
			t.Fatalf("second-round output rejected: %v\nrendered: %q", err, text3)
		}
		if !reflect.DeepEqual(doc2, doc3) {
			t.Fatalf("parse/write not a fixed point after normalization:\nround1: %#v\nround2: %#v\ntext: %q",
				doc2, doc3, text3)
		}
	})
}
