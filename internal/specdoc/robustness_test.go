package specdoc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserRobustness mutates a rendered document in many random ways
// and asserts that the parser never panics and, where it succeeds,
// returns a structurally sane document. This models the noise of real
// PDF extraction beyond the calibrated error injection.
func TestParserRobustness(t *testing.T) {
	base := Write(sampleDoc(), WriteOptions{})
	lines := strings.Split(base, "\n")
	rng := rand.New(rand.NewSource(42))

	mutations := []func([]string) []string{
		// Drop a random line.
		func(ls []string) []string {
			if len(ls) < 2 {
				return ls
			}
			i := rng.Intn(len(ls))
			return append(append([]string{}, ls[:i]...), ls[i+1:]...)
		},
		// Duplicate a random line.
		func(ls []string) []string {
			i := rng.Intn(len(ls))
			out := append([]string{}, ls[:i]...)
			out = append(out, ls[i], ls[i])
			return append(out, ls[i+1:]...)
		},
		// Swap two adjacent lines.
		func(ls []string) []string {
			if len(ls) < 2 {
				return ls
			}
			i := rng.Intn(len(ls) - 1)
			out := append([]string{}, ls...)
			out[i], out[i+1] = out[i+1], out[i]
			return out
		},
		// Truncate the document.
		func(ls []string) []string {
			return ls[:rng.Intn(len(ls))+1]
		},
		// Corrupt random bytes of a line.
		func(ls []string) []string {
			out := append([]string{}, ls...)
			i := rng.Intn(len(out))
			if out[i] == "" {
				return out
			}
			b := []byte(out[i])
			b[rng.Intn(len(b))] = byte('!' + rng.Intn(90))
			out[i] = string(b)
			return out
		},
		// Inject garbage lines.
		func(ls []string) []string {
			i := rng.Intn(len(ls))
			out := append([]string{}, ls[:i]...)
			out = append(out, "~~~ GARBAGE ~~~", ":::")
			return append(out, ls[i:]...)
		},
	}

	for trial := 0; trial < 500; trial++ {
		mutated := append([]string{}, lines...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mutated = mutations[rng.Intn(len(mutations))](mutated)
		}
		text := strings.Join(mutated, "\n")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutated input: %v\n--- input ---\n%s", r, text)
				}
			}()
			doc, _, err := Parse(text)
			if err != nil {
				return // rejecting is fine
			}
			// A successfully parsed document must stay structurally sane.
			if doc.Key == "" {
				t.Fatalf("parsed document without key")
			}
			for _, e := range doc.Errata {
				if e.DocKey != doc.Key {
					t.Fatalf("erratum with foreign DocKey after mutation")
				}
				if e.Seq <= 0 {
					t.Fatalf("erratum with non-positive Seq")
				}
			}
			for i := 1; i < len(doc.Errata); i++ {
				if doc.Errata[i].Seq != doc.Errata[i-1].Seq+1 {
					t.Fatalf("non-sequential Seq after mutation")
				}
			}
		}()
	}
}

// TestParserIgnoresTrailingJunk checks the parser handles content after
// END OF DOCUMENT gracefully.
func TestParserIgnoresTrailingJunk(t *testing.T) {
	text := Write(sampleDoc(), WriteOptions{}) + "\nrandom trailing noise\nmore noise\n"
	doc, _, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Errata) != 3 {
		t.Errorf("errata = %d", len(doc.Errata))
	}
}
