// Package specdoc models the specification-update document format: a
// plain-text rendering faithful to the structure of Intel and AMD errata
// PDFs (title block, revision history, summary table of changes,
// per-erratum fields), plus a tolerant parser that recovers structured
// documents from that text.
//
// The format substitutes for PDF extraction, which is the data gate of
// this reproduction: the parser faces the same classes of noise the
// paper reports ("errata in errata": duplicated entries, reused names,
// missing and duplicated fields, inconsistent revision notes) and emits
// diagnostics for each.
package specdoc

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/parallel"
)

// WriteOptions controls error injection at the text level.
type WriteOptions struct {
	// DuplicateFields maps entry references ("docKey#seq") to the name
	// of a field that must be rendered twice ("Implication",
	// "Workaround", "Status"), reproducing the duplicate-field errors.
	DuplicateFields map[string]string
}

// lineWidth is the wrap width of the rendered text, mimicking the
// fixed-width output of PDF text extraction.
const lineWidth = 92

// Write renders a document to the specification-update text format.
func Write(d *core.Document, opts WriteOptions) string {
	var b strings.Builder

	fmt.Fprintf(&b, "SPECIFICATION UPDATE\n")
	fmt.Fprintf(&b, "Vendor: %s\n", d.Vendor)
	fmt.Fprintf(&b, "Reference: %s\n", d.Reference)
	if d.Vendor == core.Intel {
		fmt.Fprintf(&b, "Generation: %s\n", d.Label)
	} else {
		fmt.Fprintf(&b, "Family: %s\n", d.Label)
	}
	fmt.Fprintf(&b, "Released: %s\n", d.Released.Format("2006-01"))
	b.WriteString("\n")

	b.WriteString("REVISION HISTORY\n")
	for _, r := range d.Revisions {
		line := fmt.Sprintf("Revision %d (%s)", r.Number, r.Date.Format("2006-01"))
		if len(r.Added) > 0 {
			line += ": Added " + strings.Join(r.Added, ", ")
		}
		writeWrapped(&b, line)
	}
	b.WriteString("\n")

	b.WriteString("SUMMARY TABLE OF CHANGES\n")
	for _, e := range d.Errata {
		writeWrapped(&b, fmt.Sprintf("%s | %s | %s",
			sanitizeCell(e.ID), summaryStatus(e.Status), e.Title))
	}
	for _, id := range d.Withdrawn {
		writeWrapped(&b, fmt.Sprintf("%s | Withdrawn | Details removed.", sanitizeCell(id)))
	}
	b.WriteString("\n")

	b.WriteString("ERRATA\n\n")
	for _, e := range d.Errata {
		ref := fmt.Sprintf("%s#%d", e.DocKey, e.Seq)
		dupField := opts.DuplicateFields[ref]
		writeWrapped(&b, "ID: "+e.ID)
		writeWrapped(&b, "Title: "+e.Title)
		writeField(&b, "Problem", e.Description, dupField == "Problem")
		writeField(&b, "Implication", e.Implication, dupField == "Implication")
		writeField(&b, "Workaround", e.Workaround, dupField == "Workaround")
		writeField(&b, "Status", e.Status, dupField == "Status")
		b.WriteString("\n")
	}
	b.WriteString("END OF DOCUMENT\n")
	return b.String()
}

// sanitizeCell makes a value safe for the ID and status columns of the
// summary table, which the parser splits on "|". The title column needs
// no escaping: it is the last column of a 3-way split, so embedded pipes
// survive. Generated corpora never contain "|", so pipeline output is
// unaffected.
func sanitizeCell(s string) string {
	return strings.ReplaceAll(s, "|", "/")
}

// summaryStatus renders the status column of a live entry. The literal
// cell "Withdrawn" is reserved: the parser turns such rows into
// Document.Withdrawn entries instead of live errata, so a live erratum
// whose Status field happens to be "Withdrawn" must render differently
// or the document would gain a phantom withdrawn row on every
// write/parse round trip. The authoritative status remains the
// "Status:" field in the ERRATA section.
func summaryStatus(s string) string {
	s = sanitizeCell(s)
	if strings.Join(strings.Fields(s), " ") == "Withdrawn" {
		return "Withdrawn (live entry)"
	}
	return s
}

// writeField renders one optional field; empty fields are omitted
// entirely (the "missing field" document error), and duplicated fields
// are rendered twice.
func writeField(b *strings.Builder, name, value string, dup bool) {
	if strings.TrimSpace(value) == "" {
		return
	}
	writeWrapped(b, name+": "+value)
	if dup {
		writeWrapped(b, name+": "+value)
	}
}

// writeWrapped writes a logical line wrapped at lineWidth; continuation
// lines are indented with two spaces, as PDF extraction would produce.
func writeWrapped(b *strings.Builder, line string) {
	words := strings.Fields(line)
	cur := ""
	first := true
	flush := func() {
		if cur == "" {
			return
		}
		if !first {
			b.WriteString("  ")
		}
		b.WriteString(cur)
		b.WriteString("\n")
		first = false
		cur = ""
	}
	for _, w := range words {
		if cur == "" {
			cur = w
			continue
		}
		if len(cur)+1+len(w) > lineWidth {
			flush()
			cur = w
			continue
		}
		cur += " " + w
	}
	flush()
	if first {
		b.WriteString("\n")
	}
}

// WriteAll renders every document of a database, keyed by document
// key, using all available CPUs; see WriteAllParallel for the worker
// knob.
func WriteAll(db *core.Database, opts WriteOptions) map[string]string {
	return WriteAllParallel(db, opts, 0)
}

// WriteAllParallel renders every document with a bounded worker pool
// (0 = GOMAXPROCS, 1 = sequential). Rendering is pure per document, so
// the output map is identical at every worker count.
func WriteAllParallel(db *core.Database, opts WriteOptions, workers int) map[string]string {
	docs := db.Documents()
	texts, _ := parallel.Map(len(docs), workers, func(i int) (string, error) {
		return Write(docs[i], opts), nil
	})
	out := make(map[string]string, len(docs))
	for i, d := range docs {
		out[d.Key] = texts[i]
	}
	return out
}
