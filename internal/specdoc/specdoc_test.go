package specdoc

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	corpusprofile "repro/plugins/corpusprofile/intelamd"
)

func date(y, m int) time.Time {
	return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC)
}

func sampleDoc() *core.Document {
	return &core.Document{
		Key:       "intel-06",
		Vendor:    core.Intel,
		Label:     "6",
		Reference: "332689-028US",
		GenIndex:  6,
		Released:  date(2015, 8),
		Revisions: []core.Revision{
			{Number: 1, Date: date(2015, 9), Added: []string{"SKL001", "SKL002"}},
			{Number: 2, Date: date(2015, 11), Added: []string{"SKL003"}},
		},
		Errata: []*core.Erratum{
			{
				DocKey: "intel-06", ID: "SKL001", Seq: 1,
				Title:       "Processor May Hang During Power State Transitions",
				Description: "When the core resumes from the C6 power state, the processor may hang.",
				Implication: "The system may be affected as described.",
				Workaround:  "It is possible for the BIOS to contain a workaround for this erratum.",
				Status:      "No fix planned.",
				AddedIn:     1,
			},
			{
				DocKey: "intel-06", ID: "SKL002", Seq: 2,
				Title:       "Performance Counters May Report Incorrect Values",
				Description: "When a counter overflow occurs, a performance counter may report a wrong value.",
				Implication: "Software relying on counters may misbehave.",
				Workaround:  "None identified.",
				Status:      "No fix planned.",
				AddedIn:     1,
			},
			{
				DocKey: "intel-06", ID: "SKL003", Seq: 3,
				Title:       "A Very Long Titled Erratum That Exercises The Line Wrapping Machinery Of The Specification Update Writer And Parser",
				Description: strings.TrimSpace(strings.Repeat("Under a complex set of conditions the processor may behave unexpectedly. ", 6)),
				Implication: "Unpredictable system behavior may occur.",
				Workaround:  "System software may contain the workaround for this erratum.",
				Status:      "Fixed in stepping B0.",
				AddedIn:     2,
			},
		},
		Withdrawn: []string{"SKL900"},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	d := sampleDoc()
	text := Write(d, WriteOptions{})
	got, diags, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, dg := range diags {
		t.Errorf("unexpected diagnostic: %s", dg)
	}
	if got.Key != d.Key || got.Vendor != d.Vendor || got.Label != d.Label ||
		got.Reference != d.Reference || got.GenIndex != d.GenIndex ||
		!got.Released.Equal(d.Released) {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Revisions) != len(d.Revisions) {
		t.Fatalf("revisions = %d, want %d", len(got.Revisions), len(d.Revisions))
	}
	for i := range d.Revisions {
		w, g := d.Revisions[i], got.Revisions[i]
		if w.Number != g.Number || !w.Date.Equal(g.Date) || strings.Join(w.Added, ",") != strings.Join(g.Added, ",") {
			t.Errorf("revision %d mismatch: %+v vs %+v", i, w, g)
		}
	}
	if len(got.Errata) != len(d.Errata) {
		t.Fatalf("errata = %d, want %d", len(got.Errata), len(d.Errata))
	}
	for i := range d.Errata {
		w, g := d.Errata[i], got.Errata[i]
		if w.ID != g.ID || w.Title != g.Title || w.Description != g.Description ||
			w.Implication != g.Implication || w.Workaround != g.Workaround ||
			w.Status != g.Status || w.AddedIn != g.AddedIn || w.Seq != g.Seq {
			t.Errorf("erratum %s mismatch:\n got %+v\nwant %+v", w.ID, g, w)
		}
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != "SKL900" {
		t.Errorf("withdrawn = %v", got.Withdrawn)
	}
}

func TestParseDuplicateField(t *testing.T) {
	d := sampleDoc()
	text := Write(d, WriteOptions{DuplicateFields: map[string]string{
		"intel-06#2": "Workaround",
	}})
	got, diags, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, dg := range diags {
		if dg.Kind == "duplicate-field" && dg.ID == "SKL002" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing duplicate-field diagnostic; got %v", diags)
	}
	// First occurrence wins.
	if got.Errata[1].Workaround != d.Errata[1].Workaround {
		t.Errorf("duplicated field corrupted value: %q", got.Errata[1].Workaround)
	}
}

func TestParseMissingField(t *testing.T) {
	d := sampleDoc()
	d.Errata[0].Implication = ""
	text := Write(d, WriteOptions{})
	got, _, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Errata[0].Implication != "" {
		t.Errorf("missing field parsed as %q", got.Errata[0].Implication)
	}
}

func TestParseDoubleAdded(t *testing.T) {
	d := sampleDoc()
	// Revision 2 also claims SKL001.
	d.Revisions[1].Added = append(d.Revisions[1].Added, "SKL001")
	text := Write(d, WriteOptions{})
	got, diags, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Errata[0].AddedIn != 1 {
		t.Errorf("double-added erratum AddedIn = %d, want earliest (1)", got.Errata[0].AddedIn)
	}
	found := false
	for _, dg := range diags {
		if dg.Kind == "double-added" && dg.ID == "SKL001" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing double-added diagnostic; got %v", diags)
	}
}

func TestParseUnmentioned(t *testing.T) {
	d := sampleDoc()
	d.Revisions[1].Added = nil // SKL003 vanishes from the notes
	text := Write(d, WriteOptions{})
	got, diags, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Errata[2].AddedIn != 0 {
		t.Errorf("unmentioned erratum AddedIn = %d, want 0", got.Errata[2].AddedIn)
	}
	found := false
	for _, dg := range diags {
		if dg.Kind == "unmentioned-in-notes" && dg.ID == "SKL003" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing unmentioned-in-notes diagnostic; got %v", diags)
	}
}

func TestParseReusedID(t *testing.T) {
	d := sampleDoc()
	d.Errata[2].ID = "SKL001" // name reuse
	// Fix the revision notes to mention SKL001 twice.
	d.Revisions[1].Added = []string{"SKL001"}
	text := Write(d, WriteOptions{})
	got, diags, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	reused := false
	for _, dg := range diags {
		if dg.Kind == "reused-id" && dg.ID == "SKL001" {
			reused = true
		}
	}
	if !reused {
		t.Errorf("missing reused-id diagnostic; got %v", diags)
	}
	// Both entries keep distinct revisions, in document order.
	if got.Errata[0].AddedIn != 1 || got.Errata[2].AddedIn != 2 {
		t.Errorf("reused-name AddedIn = (%d,%d), want (1,2)",
			got.Errata[0].AddedIn, got.Errata[2].AddedIn)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, _, err := Parse("this is not a specification update"); err == nil {
		t.Error("Parse accepted garbage")
	}
	if _, _, err := Parse(""); err == nil {
		t.Error("Parse accepted empty input")
	}
}

func TestLabelToKey(t *testing.T) {
	cases := []struct {
		vendor core.Vendor
		label  string
		key    string
		gen    int
	}{
		{core.Intel, "1 (D)", "intel-01d", 1},
		{core.Intel, "1 (M)", "intel-01m", 1},
		{core.Intel, "7/8", "intel-07", 7},
		{core.Intel, "12", "intel-12", 12},
		{core.AMD, "17h 30-3F", "amd-17h-30", 0},
		{core.AMD, "10h 00-0F", "amd-10h-00", 0},
	}
	for _, c := range cases {
		key, gen, err := LabelToKey(c.vendor, c.label)
		if err != nil || key != c.key || gen != c.gen {
			t.Errorf("LabelToKey(%v,%q) = (%q,%d,%v), want (%q,%d)",
				c.vendor, c.label, key, gen, err, c.key, c.gen)
		}
	}
	if _, _, err := LabelToKey(core.Intel, "abc"); err == nil {
		t.Error("accepted bad Intel label")
	}
	if _, _, err := LabelToKey(core.AMD, "garbage"); err == nil {
		t.Error("accepted bad AMD label")
	}
}

func TestFullCorpusRoundTrip(t *testing.T) {
	gt, err := corpus.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	dup := make(map[string]string)
	for _, fe := range gt.Inventory.FieldErrors {
		if fe.Kind == "duplicate" {
			field := fe.Field
			if field == "Description" {
				field = "Problem"
			}
			dup[fe.Ref] = field
		}
	}
	texts := WriteAll(gt.DB, WriteOptions{DuplicateFields: dup})
	if len(texts) != 28 {
		t.Fatalf("rendered %d documents, want 28", len(texts))
	}
	db, diags, err := ParseAll(texts)
	if err != nil {
		t.Fatal(err)
	}
	stats := db.ComputeStats()
	if stats.Total != corpusprofile.TargetTotal {
		t.Errorf("parsed total = %d, want %d", stats.Total, corpusprofile.TargetTotal)
	}
	if stats.IntelTotal != corpusprofile.TargetIntelTotal || stats.AMDTotal != corpusprofile.TargetAMDTotal {
		t.Errorf("parsed per-vendor totals = (%d,%d)", stats.IntelTotal, stats.AMDTotal)
	}

	// Every ground-truth text field must round-trip.
	reused := map[string]bool{
		gt.Inventory.ReusedName[0]: true,
		gt.Inventory.ReusedName[1]: true,
	}
	for _, want := range gt.DB.Documents() {
		got := db.Docs[want.Key]
		if got == nil {
			t.Fatalf("document %s missing after parse", want.Key)
		}
		if got.Order != want.Order {
			t.Errorf("%s: order %d != %d", want.Key, got.Order, want.Order)
		}
		if len(got.Errata) != len(want.Errata) {
			t.Fatalf("%s: %d errata, want %d", want.Key, len(got.Errata), len(want.Errata))
		}
		for i := range want.Errata {
			w, g := want.Errata[i], got.Errata[i]
			if w.ID != g.ID || w.Title != g.Title || w.Description != g.Description ||
				w.Workaround != g.Workaround || w.Status != g.Status {
				t.Fatalf("%s#%d: text fields differ", want.Key, w.Seq)
			}
			if w.AddedIn != g.AddedIn && !reused[corpus.EntryRef(w)] {
				t.Errorf("%s (%s): AddedIn %d != %d", w.FullID(), w.Title, g.AddedIn, w.AddedIn)
			}
		}
	}

	// Diagnostics must surface the injected errors.
	kinds := map[string]int{}
	for _, dg := range diags {
		kinds[dg.Kind]++
	}
	if kinds["duplicate-field"] < 3 {
		t.Errorf("duplicate-field diagnostics = %d, want >= 3", kinds["duplicate-field"])
	}
	if kinds["double-added"] < 8 {
		t.Errorf("double-added diagnostics = %d, want >= 8", kinds["double-added"])
	}
	if kinds["unmentioned-in-notes"] < 12 {
		t.Errorf("unmentioned diagnostics = %d, want >= 12", kinds["unmentioned-in-notes"])
	}
	if kinds["reused-id"] != 1 {
		t.Errorf("reused-id diagnostics = %d, want 1", kinds["reused-id"])
	}
}

// Property: logical-line reconstruction is the inverse of wrapping for
// arbitrary word content.
func TestPropertyWrapRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if r <= ' ' || r > '~' {
					return -1
				}
				return r
			}, w)
			if w != "" {
				if len(w) > 40 {
					w = w[:40]
				}
				clean = append(clean, w)
			}
		}
		if len(clean) == 0 {
			return true
		}
		line := "Problem: " + strings.Join(clean, " ")
		var b strings.Builder
		writeWrapped(&b, line)
		joined := logicalLines(b.String())
		return len(joined) >= 1 && joined[0] == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
