package specdoc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Diagnostic reports one document inconsistency discovered while
// parsing — the "errata in errata" of Section IV-A.
type Diagnostic struct {
	// DocKey is the document the diagnostic belongs to.
	DocKey string
	// ID is the erratum ID involved, if any.
	ID string
	// Kind classifies the inconsistency: "duplicate-field",
	// "double-added", "unmentioned-in-notes", "reused-id",
	// "title-mismatch", "summary-missing", "bad-date", "bad-line".
	Kind string
	// Message is a human-readable explanation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s[%s] %s: %s", d.DocKey, d.ID, d.Kind, d.Message)
}

// Parse recovers a structured document from specification-update text.
// The parser is tolerant: structural noise produces diagnostics, not
// errors. An error is returned only when the text is not a
// specification-update document at all.
func Parse(text string) (*core.Document, []Diagnostic, error) {
	p := &parser{lines: logicalLines(text)}
	return p.run()
}

type parser struct {
	lines []string
	pos   int
	doc   *core.Document
	diags []Diagnostic

	summaryTitle  map[string]string
	summaryStatus map[string]string
}

func (p *parser) diag(id, kind, msg string) {
	key := ""
	if p.doc != nil {
		key = p.doc.Key
	}
	p.diags = append(p.diags, Diagnostic{DocKey: key, ID: id, Kind: kind, Message: msg})
}

// logicalLines joins wrapped continuation lines (indented by two spaces)
// back into logical lines. Fragments are collected per logical line and
// joined once at the end: appending to a growing string instead is
// quadratic in the run length, which adversarial inputs (thousands of
// consecutive continuation lines) turn into seconds of work.
func logicalLines(text string) []string {
	raw := strings.Split(text, "\n")
	var parts [][]string
	for _, l := range raw {
		trimmedRight := strings.TrimRight(l, " \t")
		if strings.HasPrefix(l, "  ") && len(parts) > 0 && strings.TrimSpace(l) != "" {
			parts[len(parts)-1] = append(parts[len(parts)-1], strings.TrimSpace(trimmedRight))
			continue
		}
		parts = append(parts, []string{trimmedRight})
	}
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.Join(p, " ")
	}
	return out
}

func (p *parser) run() (*core.Document, []Diagnostic, error) {
	if len(p.lines) == 0 || strings.TrimSpace(p.lines[0]) != "SPECIFICATION UPDATE" {
		return nil, nil, fmt.Errorf("specdoc: not a specification update document")
	}
	p.pos = 1
	p.doc = &core.Document{}
	p.summaryTitle = make(map[string]string)
	p.summaryStatus = make(map[string]string)

	if err := p.parseHeader(); err != nil {
		return nil, p.diags, err
	}
	p.parseRevisions()
	p.parseSummary()
	p.parseErrata()
	p.resolveAddedIn()
	p.crossCheckSummary()
	return p.doc, p.diags, nil
}

func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		p.pos++
		return l, true
	}
	return "", false
}

func (p *parser) peek() (string, bool) {
	if p.pos < len(p.lines) {
		return p.lines[p.pos], true
	}
	return "", false
}

func (p *parser) parseHeader() error {
	for {
		l, ok := p.next()
		if !ok {
			return fmt.Errorf("specdoc: unexpected end of document in header")
		}
		if strings.TrimSpace(l) == "" {
			continue
		}
		if strings.TrimSpace(l) == "REVISION HISTORY" {
			return p.finishHeader()
		}
		name, value, found := cutField(l)
		if !found {
			p.diag("", "bad-line", fmt.Sprintf("unparseable header line %q", l))
			continue
		}
		switch name {
		case "Vendor":
			v, err := core.ParseVendor(value)
			if err != nil {
				return fmt.Errorf("specdoc: %w", err)
			}
			p.doc.Vendor = v
		case "Reference":
			p.doc.Reference = value
		case "Generation", "Family":
			p.doc.Label = value
		case "Released":
			t, err := parseMonth(value)
			if err != nil {
				p.diag("", "bad-date", fmt.Sprintf("release date %q", value))
			} else {
				p.doc.Released = t
			}
		default:
			p.diag("", "bad-line", fmt.Sprintf("unknown header field %q", name))
		}
	}
}

func (p *parser) finishHeader() error {
	if p.doc.Label == "" {
		return fmt.Errorf("specdoc: document without generation/family label")
	}
	key, gen, err := LabelToKey(p.doc.Vendor, p.doc.Label)
	if err != nil {
		return err
	}
	p.doc.Key = key
	p.doc.GenIndex = gen
	return nil
}

func (p *parser) parseRevisions() {
	for {
		l, ok := p.next()
		if !ok {
			return
		}
		t := strings.TrimSpace(l)
		if t == "" {
			continue
		}
		if t == "SUMMARY TABLE OF CHANGES" {
			return
		}
		rev, ok := parseRevisionLine(t)
		if !ok {
			p.diag("", "bad-line", fmt.Sprintf("unparseable revision line %q", t))
			continue
		}
		p.doc.Revisions = append(p.doc.Revisions, rev)
	}
}

func parseRevisionLine(l string) (core.Revision, bool) {
	if !strings.HasPrefix(l, "Revision ") {
		return core.Revision{}, false
	}
	rest := strings.TrimPrefix(l, "Revision ")
	open := strings.IndexByte(rest, '(')
	closeP := strings.IndexByte(rest, ')')
	if open < 0 || closeP < open {
		return core.Revision{}, false
	}
	num, err := strconv.Atoi(strings.TrimSpace(rest[:open]))
	if err != nil {
		return core.Revision{}, false
	}
	date, err := parseMonth(rest[open+1 : closeP])
	if err != nil {
		return core.Revision{}, false
	}
	rev := core.Revision{Number: num, Date: date}
	tail := strings.TrimSpace(rest[closeP+1:])
	tail = strings.TrimPrefix(tail, ":")
	tail = strings.TrimSpace(tail)
	if tail != "" {
		tail = strings.TrimPrefix(tail, "Added ")
		for _, id := range strings.Split(tail, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				rev.Added = append(rev.Added, id)
			}
		}
	}
	return rev, true
}

func (p *parser) parseSummary() {
	for {
		l, ok := p.next()
		if !ok {
			return
		}
		t := strings.TrimSpace(l)
		if t == "" {
			continue
		}
		if t == "ERRATA" {
			return
		}
		parts := strings.SplitN(t, "|", 3)
		if len(parts) != 3 {
			p.diag("", "bad-line", fmt.Sprintf("unparseable summary line %q", t))
			continue
		}
		id := strings.TrimSpace(parts[0])
		status := strings.TrimSpace(parts[1])
		title := strings.TrimSpace(parts[2])
		if status == "Withdrawn" {
			p.doc.Withdrawn = append(p.doc.Withdrawn, id)
			continue
		}
		p.summaryStatus[id] = status
		p.summaryTitle[id] = title
	}
}

func (p *parser) parseErrata() {
	var cur *core.Erratum
	seenField := map[string]bool{}
	flush := func() {
		if cur != nil {
			p.doc.Errata = append(p.doc.Errata, cur)
			cur = nil
		}
	}
	for {
		l, ok := p.next()
		if !ok {
			flush()
			return
		}
		t := strings.TrimSpace(l)
		if t == "" {
			continue
		}
		if t == "END OF DOCUMENT" {
			flush()
			return
		}
		name, value, found := cutField(l)
		if !found {
			p.diag("", "bad-line", fmt.Sprintf("unparseable erratum line %q", t))
			continue
		}
		if name == "ID" {
			flush()
			cur = &core.Erratum{
				DocKey: p.doc.Key,
				ID:     value,
				Seq:    len(p.doc.Errata) + 1,
			}
			seenField = map[string]bool{}
			continue
		}
		if cur == nil {
			p.diag("", "bad-line", fmt.Sprintf("field %q before any erratum", name))
			continue
		}
		if seenField[name] {
			p.diag(cur.ID, "duplicate-field", fmt.Sprintf("field %s appears twice", name))
			continue // keep the first occurrence
		}
		seenField[name] = true
		switch name {
		case "Title":
			cur.Title = value
		case "Problem":
			cur.Description = value
		case "Implication":
			cur.Implication = value
		case "Workaround":
			cur.Workaround = value
		case "Status":
			cur.Status = value
		default:
			p.diag(cur.ID, "bad-line", fmt.Sprintf("unknown erratum field %q", name))
		}
	}
}

// resolveAddedIn assigns each entry the revision it was added in, from
// the revision notes. Revision notes contain errors: an ID may be
// claimed by several revisions (keep the earliest, per the paper) or by
// none (AddedIn stays 0; the timeline stage interpolates).
func (p *parser) resolveAddedIn() {
	mentions := make(map[string][]int)
	for _, r := range p.doc.Revisions {
		for _, id := range r.Added {
			mentions[id] = append(mentions[id], r.Number)
		}
	}
	for _, ids := range mentions {
		sort.Ints(ids)
	}
	// Entries sharing an ID (reused names) consume mentions in document
	// order.
	byID := make(map[string][]*core.Erratum)
	for _, e := range p.doc.Errata {
		byID[e.ID] = append(byID[e.ID], e)
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		entries := byID[id]
		if len(entries) > 1 {
			p.diag(id, "reused-id", fmt.Sprintf("name used by %d different errata", len(entries)))
		}
		m := mentions[id]
		switch {
		case len(m) == 0:
			for _, e := range entries {
				p.diag(id, "unmentioned-in-notes", "erratum never mentioned in the revision notes")
				e.AddedIn = 0
			}
		case len(m) >= len(entries):
			for i, e := range entries {
				e.AddedIn = m[i]
			}
			if len(m) > len(entries) {
				p.diag(id, "double-added",
					fmt.Sprintf("%d revisions claim to have added this erratum", len(m)))
			}
		default:
			// Fewer mentions than entries: share the earliest.
			for i, e := range entries {
				if i < len(m) {
					e.AddedIn = m[i]
				} else {
					e.AddedIn = m[0]
				}
			}
			p.diag(id, "double-added", "fewer revision mentions than entries sharing the name")
		}
	}
}

// crossCheckSummary verifies the summary table against the entries.
func (p *parser) crossCheckSummary() {
	// Titles per ID, precomputed: probing this map keeps the mismatch
	// check linear where a rescan of all entries per mismatch would be
	// quadratic on hostile documents.
	titlesByID := map[string]map[string]bool{}
	for _, e := range p.doc.Errata {
		if titlesByID[e.ID] == nil {
			titlesByID[e.ID] = map[string]bool{}
		}
		titlesByID[e.ID][e.Title] = true
	}
	seen := map[string]bool{}
	for _, e := range p.doc.Errata {
		seen[e.ID] = true
		title, ok := p.summaryTitle[e.ID]
		if !ok {
			p.diag(e.ID, "summary-missing", "erratum absent from the summary table")
			continue
		}
		if title != e.Title {
			// Reused names legitimately map one summary row per entry;
			// only flag when no entry matches.
			if !titlesByID[e.ID][title] {
				p.diag(e.ID, "title-mismatch", "summary title differs from erratum title")
			}
		}
	}
	ids := make([]string, 0, len(p.summaryTitle))
	for id := range p.summaryTitle {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !seen[id] {
			p.diag(id, "summary-missing", "summary row without erratum entry")
		}
	}
}

func cutField(l string) (name, value string, found bool) {
	t := strings.TrimSpace(l)
	i := strings.Index(t, ": ")
	if i < 0 {
		if strings.HasSuffix(t, ":") {
			return strings.TrimSuffix(t, ":"), "", true
		}
		return "", "", false
	}
	return t[:i], strings.TrimSpace(t[i+2:]), true
}

func parseMonth(s string) (time.Time, error) {
	return time.Parse("2006-01", strings.TrimSpace(s))
}

// LabelToKey derives the canonical document key and the Intel generation
// index from a vendor and a Table III label. Examples: Intel "1 (D)" ->
// ("intel-01d", 1); Intel "7/8" -> ("intel-07", 7); AMD "17h 30-3F" ->
// ("amd-17h-30", 0).
func LabelToKey(v core.Vendor, label string) (string, int, error) {
	label = strings.TrimSpace(label)
	if v == core.Intel {
		gen := label
		suffix := ""
		if i := strings.IndexByte(label, '('); i >= 0 {
			gen = strings.TrimSpace(label[:i])
			letter := strings.Trim(label[i:], "() ")
			suffix = strings.ToLower(letter)
		}
		if i := strings.IndexByte(gen, '/'); i >= 0 {
			gen = gen[:i]
		}
		n, err := strconv.Atoi(strings.TrimSpace(gen))
		if err != nil {
			return "", 0, fmt.Errorf("specdoc: bad Intel generation label %q", label)
		}
		return fmt.Sprintf("intel-%02d%s", n, suffix), n, nil
	}
	// AMD: "<family>h <model range>".
	parts := strings.Fields(label)
	if len(parts) != 2 || !strings.HasSuffix(parts[0], "h") {
		return "", 0, fmt.Errorf("specdoc: bad AMD family label %q", label)
	}
	models := parts[1]
	if i := strings.IndexByte(models, '-'); i >= 0 {
		models = models[:i]
	}
	return fmt.Sprintf("amd-%s-%s", parts[0], strings.ToLower(models)), 0, nil
}

// ParseAll parses a set of rendered documents into a database using
// all available CPUs; see ParseAllParallel for the worker knob. Order
// indices are normalized with core.AssignOrders. Diagnostics from all
// documents are concatenated.
func ParseAll(texts map[string]string) (*core.Database, []Diagnostic, error) {
	return ParseAllParallel(texts, 0)
}

// ParseAllParallel parses the documents with a bounded worker pool (0
// = GOMAXPROCS, 1 = sequential). Each document parses independently;
// the results are merged in sorted key order, so the database, the
// diagnostic sequence, and error behavior (diagnostics up to and
// including the first failing document) are identical to the
// sequential loop at every worker count.
func ParseAllParallel(texts map[string]string, workers int) (*core.Database, []Diagnostic, error) {
	keys := make([]string, 0, len(texts))
	for k := range texts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	type parsed struct {
		doc   *core.Document
		diags []Diagnostic
		err   error
	}
	results, _ := parallel.Map(len(keys), workers, func(i int) (parsed, error) {
		doc, ds, err := Parse(texts[keys[i]])
		return parsed{doc: doc, diags: ds, err: err}, nil
	})

	db := core.NewDatabase()
	var diags []Diagnostic
	for i, k := range keys {
		r := results[i]
		diags = append(diags, r.diags...)
		if r.err != nil {
			return nil, diags, fmt.Errorf("specdoc: document %s: %w", k, r.err)
		}
		if err := db.Add(r.doc); err != nil {
			return nil, diags, err
		}
	}
	core.AssignOrders(db)
	return db, diags, nil
}
