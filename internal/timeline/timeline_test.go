package timeline

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func date(y, m int) time.Time {
	return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC)
}

func docWith(addedIn ...int) *core.Document {
	d := &core.Document{
		Key: "intel-06", Vendor: core.Intel, Label: "6", GenIndex: 6,
		Released: date(2015, 8),
		Revisions: []core.Revision{
			{Number: 1, Date: date(2015, 9)},
			{Number: 2, Date: date(2015, 11)},
			{Number: 3, Date: date(2016, 2)},
		},
	}
	for i, rev := range addedIn {
		d.Errata = append(d.Errata, &core.Erratum{
			DocKey: d.Key, ID: string(rune('A' + i)), Seq: i + 1, AddedIn: rev,
		})
	}
	return d
}

func TestDirectDating(t *testing.T) {
	db := core.NewDatabase()
	d := docWith(1, 2, 3)
	if err := db.Add(d); err != nil {
		t.Fatal(err)
	}
	st := InferDisclosures(db, DefaultOptions())
	if st.Dated != 3 || st.Interpolated != 0 || st.Fallback != 0 {
		t.Errorf("stats = %+v", st)
	}
	if !d.Errata[0].Disclosed.Equal(date(2015, 9)) ||
		!d.Errata[1].Disclosed.Equal(date(2015, 11)) ||
		!d.Errata[2].Disclosed.Equal(date(2016, 2)) {
		t.Error("direct dates wrong")
	}
}

func TestInterpolationUsesSubsequentErratum(t *testing.T) {
	// The middle erratum is missing from the notes; its date must come
	// from the subsequent erratum (the paper's rule).
	db := core.NewDatabase()
	d := docWith(1, 0, 3)
	if err := db.Add(d); err != nil {
		t.Fatal(err)
	}
	st := InferDisclosures(db, DefaultOptions())
	if st.Interpolated != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !d.Errata[1].Disclosed.Equal(date(2016, 2)) {
		t.Errorf("interpolated date = %v, want 2016-02", d.Errata[1].Disclosed)
	}
}

func TestInterpolationFallsBackToPrevious(t *testing.T) {
	// The last erratum is unmentioned: no subsequent known erratum, so
	// the previous one's date applies.
	db := core.NewDatabase()
	d := docWith(1, 2, 0)
	if err := db.Add(d); err != nil {
		t.Fatal(err)
	}
	InferDisclosures(db, DefaultOptions())
	if !d.Errata[2].Disclosed.Equal(date(2015, 11)) {
		t.Errorf("fallback date = %v, want 2015-11", d.Errata[2].Disclosed)
	}
}

func TestNoInterpolationUsesFirstRevision(t *testing.T) {
	db := core.NewDatabase()
	d := docWith(1, 0, 3)
	if err := db.Add(d); err != nil {
		t.Fatal(err)
	}
	st := InferDisclosures(db, Options{Interpolate: false})
	if st.Fallback != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !d.Errata[1].Disclosed.Equal(date(2015, 9)) {
		t.Errorf("fallback date = %v, want first revision", d.Errata[1].Disclosed)
	}
}

func TestAllUnknown(t *testing.T) {
	db := core.NewDatabase()
	d := docWith(0, 0)
	if err := db.Add(d); err != nil {
		t.Fatal(err)
	}
	st := InferDisclosures(db, DefaultOptions())
	if st.Fallback != 2 {
		t.Errorf("stats = %+v", st)
	}
	for _, e := range d.Errata {
		if !e.Disclosed.Equal(date(2015, 9)) {
			t.Errorf("date = %v", e.Disclosed)
		}
	}
}

func TestCumulative(t *testing.T) {
	db := core.NewDatabase()
	d := docWith(1, 1, 2, 3)
	if err := db.Add(d); err != nil {
		t.Fatal(err)
	}
	InferDisclosures(db, DefaultOptions())
	series := CumulativeByDocument(db)["intel-06"]
	if len(series) != 3 {
		t.Fatalf("series = %v", series)
	}
	if series[0].Cumulative != 2 || series[1].Cumulative != 3 || series[2].Cumulative != 4 {
		t.Errorf("cumulative = %v", series)
	}
	for i := 1; i < len(series); i++ {
		if !series[i].Date.After(series[i-1].Date) {
			t.Error("series dates not ascending")
		}
	}
}

func TestConcavity(t *testing.T) {
	// A concave curve: most disclosures early.
	concave := []SeriesPoint{
		{date(2015, 1), 50}, {date(2015, 6), 80}, {date(2017, 1), 100},
	}
	if c := Concavity(concave); c <= 0.5 {
		t.Errorf("concave curve concavity = %v, want > 0.5", c)
	}
	convex := []SeriesPoint{
		{date(2015, 1), 5}, {date(2016, 10), 20}, {date(2017, 1), 100},
	}
	if c := Concavity(convex); c > 0.5 {
		t.Errorf("convex curve concavity = %v, want <= 0.5", c)
	}
	if Concavity(nil) != 1 || Concavity(concave[:1]) != 1 {
		t.Error("degenerate concavity should be 1")
	}
}

// Property: inference always assigns a non-zero date to every erratum
// with at least one revision present, and dated+interpolated+fallback
// partitions the errata.
func TestPropertyInferenceTotal(t *testing.T) {
	f := func(revs []uint8) bool {
		if len(revs) == 0 {
			revs = []uint8{1}
		}
		if len(revs) > 40 {
			revs = revs[:40]
		}
		added := make([]int, len(revs))
		for i, r := range revs {
			added[i] = int(r % 4) // 0..3; 0 = unmentioned
		}
		db := core.NewDatabase()
		d := docWith(added...)
		if err := db.Add(d); err != nil {
			return false
		}
		st := InferDisclosures(db, DefaultOptions())
		if st.Dated+st.Interpolated+st.Fallback != len(added) {
			return false
		}
		for _, e := range d.Errata {
			if e.Disclosed.IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
