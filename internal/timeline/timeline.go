// Package timeline infers erratum disclosure dates (Section IV-B1 of
// the paper). Bug discoveries are not timestamped, so each erratum's
// disclosure is approximated by the date of the document revision that
// first added it. When the revision summary does not say (a document
// error the paper found on 12 errata), the sequential numbering of
// errata is exploited: the erratum is assumed to have been added
// together with the subsequent erratum whose revision is known.
package timeline

import (
	"sort"
	"time"

	"repro/internal/core"
)

// Options configures the inference.
type Options struct {
	// Interpolate enables sequential-number interpolation for errata
	// missing from the revision notes. When disabled, such errata get
	// the document's first revision date (the conservative fallback).
	// The ablation benchmarks compare both settings.
	Interpolate bool
}

// DefaultOptions enables interpolation, as in the paper.
func DefaultOptions() Options { return Options{Interpolate: true} }

// Stats reports an inference run.
type Stats struct {
	// Dated is the number of errata dated directly from revision notes.
	Dated int
	// Interpolated is the number dated via sequential-number
	// interpolation.
	Interpolated int
	// Fallback is the number dated with the first-revision fallback.
	Fallback int
}

// InferDisclosures sets Erratum.Disclosed for every entry of the
// database and returns inference statistics.
func InferDisclosures(db *core.Database, opts Options) Stats {
	var st Stats
	for _, d := range db.Documents() {
		inferDocument(d, opts, &st)
	}
	return st
}

func inferDocument(d *core.Document, opts Options, st *Stats) {
	if len(d.Errata) == 0 {
		return
	}
	revDate := make(map[int]time.Time, len(d.Revisions))
	var first time.Time
	for i, r := range d.Revisions {
		revDate[r.Number] = r.Date
		if i == 0 || r.Date.Before(first) {
			first = r.Date
		}
	}

	// First pass: direct dates.
	known := make([]bool, len(d.Errata))
	for i, e := range d.Errata {
		if t, ok := revDate[e.AddedIn]; ok && e.AddedIn > 0 {
			e.Disclosed = t
			known[i] = true
			st.Dated++
		}
	}

	// Second pass: interpolation. Errata are sequentially numbered, so
	// an erratum missing from the notes was added no later than the next
	// erratum with a known revision.
	for i, e := range d.Errata {
		if known[i] {
			continue
		}
		if opts.Interpolate {
			if t, ok := nextKnown(d, known, i); ok {
				e.Disclosed = t
				st.Interpolated++
				continue
			}
			if t, ok := prevKnown(d, known, i); ok {
				e.Disclosed = t
				st.Interpolated++
				continue
			}
		}
		e.Disclosed = first
		st.Fallback++
	}
}

func nextKnown(d *core.Document, known []bool, i int) (time.Time, bool) {
	for j := i + 1; j < len(d.Errata); j++ {
		if known[j] {
			return d.Errata[j].Disclosed, true
		}
	}
	return time.Time{}, false
}

func prevKnown(d *core.Document, known []bool, i int) (time.Time, bool) {
	for j := i - 1; j >= 0; j-- {
		if known[j] {
			return d.Errata[j].Disclosed, true
		}
	}
	return time.Time{}, false
}

// SeriesPoint is one point of a cumulative disclosure curve.
type SeriesPoint struct {
	Date       time.Time
	Cumulative int
}

// CumulativeByDocument computes, per document, the cumulative number of
// disclosed errata over time (Figure 2). Duplicate entries are counted
// individually, as in the paper. InferDisclosures must have run.
func CumulativeByDocument(db *core.Database) map[string][]SeriesPoint {
	out := make(map[string][]SeriesPoint, len(db.Docs))
	for _, d := range db.Documents() {
		out[d.Key] = cumulative(d.Errata)
	}
	return out
}

// cumulative builds a step series from entries' disclosure dates.
func cumulative(errata []*core.Erratum) []SeriesPoint {
	dates := make([]time.Time, 0, len(errata))
	for _, e := range errata {
		if !e.Disclosed.IsZero() {
			dates = append(dates, e.Disclosed)
		}
	}
	sort.Slice(dates, func(i, j int) bool { return dates[i].Before(dates[j]) })
	var out []SeriesPoint
	for i, t := range dates {
		if len(out) > 0 && out[len(out)-1].Date.Equal(t) {
			out[len(out)-1].Cumulative = i + 1
			continue
		}
		out = append(out, SeriesPoint{Date: t, Cumulative: i + 1})
	}
	return out
}

// Concavity measures how concave a cumulative curve is (Observation
// O2): it returns the fraction of the total count disclosed in the
// first half of the curve's time span. Values above 0.5 indicate a
// concave (decelerating) curve.
func Concavity(series []SeriesPoint) float64 {
	if len(series) < 2 {
		return 1
	}
	start := series[0].Date
	end := series[len(series)-1].Date
	if !end.After(start) {
		return 1
	}
	mid := start.Add(end.Sub(start) / 2)
	total := series[len(series)-1].Cumulative
	atMid := 0
	for _, p := range series {
		if p.Date.After(mid) {
			break
		}
		atMid = p.Cumulative
	}
	return float64(atMid) / float64(total)
}
