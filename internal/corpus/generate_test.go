package corpus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/taxonomy"
	intelamd "repro/plugins/corpusprofile/intelamd"
)

// The generator is deterministic and calibrated; generate once per test
// binary run.
var testGT = mustGenerate()

func mustGenerate() *GroundTruth {
	gt, err := Generate(1)
	if err != nil {
		panic(err)
	}
	return gt
}

func TestProfileSums(t *testing.T) {
	sum := 0
	for _, p := range IntelProfiles {
		sum += p.Count
	}
	if sum != TargetIntelTotal {
		t.Errorf("Intel profile counts sum to %d, want %d", sum, TargetIntelTotal)
	}
	sum = 0
	for _, p := range AMDProfiles {
		sum += p.Count
	}
	if sum != TargetAMDTotal {
		t.Errorf("AMD profile counts sum to %d, want %d", sum, TargetAMDTotal)
	}
	if len(IntelProfiles) != 16 || len(AMDProfiles) != 12 {
		t.Errorf("document counts = (%d,%d), want (16,12) as in Table III",
			len(IntelProfiles), len(AMDProfiles))
	}
}

func TestPlanIntel(t *testing.T) {
	lins, err := planIntel(intelamd.Profile{}.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lins) != TargetIntelUnique {
		t.Fatalf("Intel lineages = %d, want %d", len(lins), TargetIntelUnique)
	}
	appearances := 0
	specials := map[string]int{}
	shared6to10 := 0
	for i := range lins {
		appearances += lins[i].Span()
		specials[lins[i].Special]++
		if lins[i].Contains("intel-06") && lins[i].Contains("intel-07") &&
			lins[i].Contains("intel-08") && lins[i].Contains("intel-10") {
			shared6to10++
		}
	}
	if appearances != TargetIntelTotal {
		t.Errorf("Intel appearances = %d, want %d", appearances, TargetIntelTotal)
	}
	if specials["longest"] != 1 || specials["core1to10"] != LineagesCore1To10 {
		t.Errorf("special lineage counts = %v", specials)
	}
	if shared6to10 != SharedGens6To10 {
		t.Errorf("lineages shared by gens 6-10 = %d, want %d", shared6to10, SharedGens6To10)
	}
}

func TestPlanAMD(t *testing.T) {
	lins, err := planAMD(intelamd.Profile{}.Spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lins) != TargetAMDUnique {
		t.Fatalf("AMD lineages = %d, want %d", len(lins), TargetAMDUnique)
	}
	appearances := 0
	for i := range lins {
		appearances += lins[i].Span()
	}
	if appearances != TargetAMDTotal {
		t.Errorf("AMD appearances = %d, want %d", appearances, TargetAMDTotal)
	}
}

func TestGeneratedTotals(t *testing.T) {
	stats := testGT.DB.ComputeStats()
	if stats.IntelTotal != TargetIntelTotal {
		t.Errorf("Intel total = %d, want %d", stats.IntelTotal, TargetIntelTotal)
	}
	if stats.AMDTotal != TargetAMDTotal {
		t.Errorf("AMD total = %d, want %d", stats.AMDTotal, TargetAMDTotal)
	}
	if stats.Total != TargetTotal {
		t.Errorf("total = %d, want %d", stats.Total, TargetTotal)
	}
	if stats.IntelUnique != TargetIntelUnique {
		t.Errorf("Intel unique = %d, want %d", stats.IntelUnique, TargetIntelUnique)
	}
	if stats.AMDUnique != TargetAMDUnique {
		t.Errorf("AMD unique = %d, want %d", stats.AMDUnique, TargetAMDUnique)
	}
	if stats.Documents != 28 {
		t.Errorf("documents = %d, want 28", stats.Documents)
	}
}

func TestGeneratedDeterminism(t *testing.T) {
	gt2, err := Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	docs1, docs2 := testGT.DB.Documents(), gt2.DB.Documents()
	if len(docs1) != len(docs2) {
		t.Fatal("document count differs across runs")
	}
	for i := range docs1 {
		d1, d2 := docs1[i], docs2[i]
		if d1.Key != d2.Key || len(d1.Errata) != len(d2.Errata) {
			t.Fatalf("document %s differs structurally", d1.Key)
		}
		for j := range d1.Errata {
			e1, e2 := d1.Errata[j], d2.Errata[j]
			if e1.ID != e2.ID || e1.Title != e2.Title || e1.Description != e2.Description ||
				e1.Key != e2.Key || e1.AddedIn != e2.AddedIn {
				t.Fatalf("erratum %s differs across runs", e1.FullID())
			}
		}
	}
	// A different seed must give a different corpus.
	gt3, err := Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	d1, d3 := testGT.DB.Documents()[0], gt3.DB.Documents()[0]
	for j := range d1.Errata {
		if d1.Errata[j].Title != d3.Errata[j].Title {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGeneratedAnnotationsValid(t *testing.T) {
	if err := testGT.DB.Validate(); err != nil {
		t.Fatal(err)
	}
	scheme := taxonomy.Base()
	classesSeen := map[string]bool{}
	for _, e := range testGT.DB.Errata() {
		for _, it := range e.Ann.Triggers {
			classesSeen[scheme.ClassOf(it.Category)] = true
		}
		if len(e.Ann.Effects) == 0 {
			t.Fatalf("erratum %s has no effects", e.FullID())
		}
		if e.Ann.TrivialTrigger && len(e.Ann.Triggers) > 0 {
			t.Fatalf("erratum %s is trivial but has triggers", e.FullID())
		}
	}
	// Observation O9: all trigger classes are necessary.
	for _, cl := range scheme.ClassIDs(taxonomy.Trigger) {
		if !classesSeen[cl] {
			t.Errorf("trigger class %s never used", cl)
		}
	}
}

func TestMBRAbsentInLatestGenerations(t *testing.T) {
	// Figure 13: memory-boundary triggers are absent from Intel
	// generations 11 and 12.
	for _, dk := range []string{"intel-11", "intel-12"} {
		doc := testGT.DB.Docs[dk]
		for _, e := range doc.Errata {
			for _, it := range e.Ann.Triggers {
				if strings.HasPrefix(it.Category, "Trg_MBR") {
					t.Errorf("%s: MBR trigger %s in latest generation", e.FullID(), it.Category)
				}
			}
		}
	}
}

func TestInjectedErrorInventory(t *testing.T) {
	inv := testGT.Inventory
	if got := len(inv.DoubleAddedRevisions); got != 8 {
		t.Errorf("double-added revisions = %d, want 8", got)
	}
	if got := len(inv.MissingFromNotes); got != 12 {
		t.Errorf("missing-from-notes = %d, want 12", got)
	}
	if inv.ReusedName[0] == "" || inv.ReusedName[1] == "" {
		t.Error("reused-name error not injected")
	}
	if got := len(inv.FieldErrors); got != 7 {
		t.Errorf("field errors = %d, want 7", got)
	}
	if got := len(inv.WrongMSRNumbers); got != 3 {
		t.Errorf("wrong MSR numbers = %d, want 3", got)
	}
	if got := len(inv.IntraDocDuplicates); got != 11 {
		t.Errorf("intra-document duplicate pairs = %d, want 11", got)
	}
	// The reused name must make two entries share an ID in one document.
	doc := testGT.DB.Docs["intel-01d"]
	count := map[string]int{}
	for _, e := range doc.Errata {
		count[e.ID]++
	}
	dupIDs := 0
	for _, c := range count {
		if c > 1 {
			dupIDs++
		}
	}
	if dupIDs != 1 {
		t.Errorf("intel-01d has %d reused IDs, want exactly 1", dupIDs)
	}
}

func TestTitleVariants(t *testing.T) {
	if got := len(testGT.ConfirmedPairs); got != 29 {
		t.Fatalf("confirmed variant pairs = %d, want 29", got)
	}
	// Each pair's lineage must have at least one occurrence whose title
	// differs from the others.
	for _, pair := range testGT.ConfirmedPairs {
		linKey := pair[0]
		titles := map[string]bool{}
		for _, e := range testGT.DB.Errata() {
			if e.Key == linKey {
				titles[e.Title] = true
			}
		}
		if len(titles) < 2 {
			t.Errorf("lineage %s has no title variation", linKey)
		}
	}
}

func TestTitleUniquenessAcrossLineages(t *testing.T) {
	// Distinct lineages must never share a normalized title; otherwise
	// title-based deduplication would merge them.
	seen := map[string]string{} // normalized title -> lineage key
	for _, e := range testGT.DB.Errata() {
		norm := normTitle(e.Title)
		if prev, ok := seen[norm]; ok && prev != e.Key {
			t.Fatalf("lineages %s and %s share title %q", prev, e.Key, e.Title)
		}
		seen[norm] = e.Key
	}
}

func normTitle(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

func TestSharedLineagesIdenticalText(t *testing.T) {
	// All occurrences of a lineage share description and implication;
	// titles are identical except for the 29 variant entries, and
	// injected document errors (wrong MSR numbers, field errors) may
	// perturb individual occurrences.
	perturbed := map[string]bool{}
	for _, ref := range testGT.Inventory.WrongMSRNumbers {
		perturbed[ref] = true
	}
	for _, fe := range testGT.Inventory.FieldErrors {
		perturbed[fe.Ref] = true
	}
	byKey := map[string]*core.Erratum{}
	for _, e := range testGT.DB.Errata() {
		if perturbed[EntryRef(e)] {
			continue
		}
		if first, ok := byKey[e.Key]; ok {
			if first.Description != e.Description {
				t.Fatalf("lineage %s: descriptions differ", e.Key)
			}
		} else {
			byKey[e.Key] = e
		}
	}
}

func TestDisclosureDatesOrdered(t *testing.T) {
	// Every erratum's revision must exist and revision dates ascend.
	for _, d := range testGT.DB.Documents() {
		for i := 1; i < len(d.Revisions); i++ {
			if d.Revisions[i].Date.Before(d.Revisions[i-1].Date) {
				t.Fatalf("%s: revision dates not ascending", d.Key)
			}
		}
		for _, e := range d.Errata {
			if e.AddedIn != 0 && d.Revision(e.AddedIn) == nil {
				t.Fatalf("%s: erratum %s references missing revision %d", d.Key, e.ID, e.AddedIn)
			}
		}
	}
}

func TestFractionCalibrations(t *testing.T) {
	// Check that the trivial-trigger and complex-condition fractions are
	// near their targets on unique errata (within 3 percentage points).
	for _, v := range core.Vendors {
		unique := testGT.DB.UniqueVendor(v)
		trivial, complex := 0, 0
		for _, e := range unique {
			if e.Ann.TrivialTrigger {
				trivial++
			}
			if e.Ann.ComplexConditions {
				complex++
			}
		}
		trivFrac := float64(trivial) / float64(len(unique))
		if trivFrac < TrivialTriggerFraction-0.04 || trivFrac > TrivialTriggerFraction+0.04 {
			t.Errorf("%s trivial fraction = %.3f, want ~%.3f", v, trivFrac, TrivialTriggerFraction)
		}
		complexTarget := ComplexConditionFractionIntel
		if v == core.AMD {
			complexTarget = ComplexConditionFractionAMD
		}
		cfrac := float64(complex) / float64(len(unique))
		if cfrac < complexTarget-0.05 || cfrac > complexTarget+0.05 {
			t.Errorf("%s complex fraction = %.3f, want ~%.3f", v, cfrac, complexTarget)
		}
	}
}

func TestWorkaroundNoneFractions(t *testing.T) {
	for _, v := range core.Vendors {
		unique := testGT.DB.UniqueVendor(v)
		none := 0
		for _, e := range unique {
			if e.WorkaroundCat == core.WorkaroundNone {
				none++
			}
		}
		frac := float64(none) / float64(len(unique))
		target := NoWorkaroundFractionIntel
		if v == core.AMD {
			target = NoWorkaroundFractionAMD
		}
		if frac < target-0.06 || frac > target+0.06 {
			t.Errorf("%s no-workaround fraction = %.3f, want ~%.3f", v, frac, target)
		}
	}
}

func TestAMDSharedIDs(t *testing.T) {
	// Two AMD families affected by the same lineage must use the same
	// numeric identifier, and IDs must be unique per document.
	idByKey := map[string]string{}
	for _, d := range testGT.DB.VendorDocuments(core.AMD) {
		seen := map[string]bool{}
		for _, e := range d.Errata {
			if seen[e.ID] {
				t.Fatalf("%s: duplicate AMD ID %s within document", d.Key, e.ID)
			}
			seen[e.ID] = true
			if prev, ok := idByKey[e.Key]; ok && prev != e.ID {
				t.Fatalf("lineage %s has IDs %s and %s", e.Key, prev, e.ID)
			}
			idByKey[e.Key] = e.ID
		}
	}
	// And distinct lineages must never share an ID.
	keyByID := map[string]string{}
	for k, id := range idByKey {
		if prev, ok := keyByID[id]; ok {
			t.Fatalf("AMD ID %s used by lineages %s and %s", id, prev, k)
		}
		keyByID[id] = k
	}
}

func TestLineageDocsMatchDatabase(t *testing.T) {
	occ := map[string]map[string]bool{}
	for _, e := range testGT.DB.Errata() {
		if occ[e.Key] == nil {
			occ[e.Key] = map[string]bool{}
		}
		occ[e.Key][e.DocKey] = true
	}
	for key, lin := range testGT.Lineages {
		docs := occ[key]
		if len(docs) != len(lin.Docs) {
			t.Fatalf("lineage %s: %d docs in DB, %d planned", key, len(docs), len(lin.Docs))
		}
		for _, dk := range lin.Docs {
			if !docs[dk] {
				t.Fatalf("lineage %s: missing planned doc %s", key, dk)
			}
		}
	}
}
