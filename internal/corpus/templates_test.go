package corpus

import (
	"strings"
	"testing"

	"repro/internal/taxonomy"
)

// The description format joins trigger clauses with " and " and splits
// the trigger part from the effect part at the first ", ". Template
// phrases must therefore be free of those separators, or the classifier
// could not segment descriptions.
func TestTriggerPhrasesAreSeparatorFree(t *testing.T) {
	for cat, bank := range triggerPhrases {
		for _, p := range bank {
			if strings.Contains(p, ", ") {
				t.Errorf("%s phrase contains a comma separator: %q", cat, p)
			}
			if strings.Contains(p, " and ") {
				t.Errorf("%s phrase contains an 'and' separator: %q", cat, p)
			}
		}
	}
}

func TestContextPhrasesAreSeparatorFree(t *testing.T) {
	for cat, bank := range contextPhrases {
		for _, p := range bank {
			if strings.Contains(p, " or while ") {
				t.Errorf("%s phrase contains an 'or while' separator: %q", cat, p)
			}
			if strings.Contains(p, ", ") {
				t.Errorf("%s phrase contains a comma: %q", cat, p)
			}
		}
	}
}

func TestEffectPhrasesAreSeparatorFree(t *testing.T) {
	for cat, bank := range effectPhrases {
		for _, p := range bank {
			if strings.Contains(p, ", ") || strings.Contains(p, "; ") {
				t.Errorf("%s phrase contains a separator: %q", cat, p)
			}
		}
	}
}

// Every abstract category of the base scheme must have a phrase bank and
// a non-trivial number of phrasings, and vice versa.
func TestBanksCoverScheme(t *testing.T) {
	scheme := taxonomy.Base()
	banks := PhraseBanks()
	for _, kind := range taxonomy.Kinds {
		bank := banks[kind]
		for _, cat := range scheme.Categories(kind) {
			phrases, ok := bank[cat.ID]
			if !ok {
				t.Errorf("no phrase bank for %s", cat.ID)
				continue
			}
			if len(phrases) < 2 {
				t.Errorf("%s has only %d phrasings", cat.ID, len(phrases))
			}
			for _, p := range phrases {
				if strings.TrimSpace(p) == "" {
					t.Errorf("%s has an empty phrasing", cat.ID)
				}
			}
		}
		for id := range bank {
			if _, ok := scheme.Category(id); !ok {
				t.Errorf("phrase bank for unknown category %s", id)
			}
		}
	}
}

// Phrases must be unique across categories within a kind; otherwise the
// ground truth would be ambiguous even for a perfect classifier.
func TestPhrasesUniqueWithinKind(t *testing.T) {
	for kind, bank := range PhraseBanks() {
		seen := map[string]string{}
		for cat, phrases := range bank {
			for _, p := range phrases {
				if prev, ok := seen[p]; ok {
					t.Errorf("%v phrase %q shared by %s and %s", kind, p, prev, cat)
				}
				seen[p] = cat
			}
		}
	}
}

func TestTitleFragmentsCoverEffects(t *testing.T) {
	scheme := taxonomy.Base()
	for _, cat := range scheme.Categories(taxonomy.Effect) {
		if len(titleFragments[cat.ID]) == 0 {
			t.Errorf("no title fragment for effect %s", cat.ID)
		}
	}
	for _, cl := range scheme.Classes(taxonomy.Trigger) {
		if len(titleSubjects[cl.ID]) == 0 {
			t.Errorf("no title subject for trigger class %s", cl.ID)
		}
	}
}

func TestWorkaroundAndStatusBanksComplete(t *testing.T) {
	for _, cat := range []string{"None", "BIOS", "Software", "Peripherals", "Absent", "DocumentationFix"} {
		if len(workaroundTexts[cat]) == 0 {
			t.Errorf("no workaround text for %s", cat)
		}
	}
	for _, st := range []string{"NoFixPlanned", "FixPlanned", "Fixed"} {
		if len(statusTexts[st]) == 0 {
			t.Errorf("no status text for %s", st)
		}
	}
}
