// Package corpus generates the synthetic errata corpus that substitutes
// for the withdrawn and proprietary Intel/AMD specification-update PDFs.
//
// The generator emits, deterministically from a seed, the 28 documents of
// Table III with errata whose counts, duplicate structure, annotation
// distributions, disclosure timelines and injected document errors are
// calibrated to the statistics the paper reports. Every erratum carries a
// hidden ground-truth annotation; the downstream pipeline (parse, dedup,
// classify, annotate) must recover the statistics from the rendered text
// alone, which is what the test suite verifies.
package corpus

import "time"

// DocProfile describes one specification-update document to generate.
type DocProfile struct {
	// Key is the document key, e.g. "intel-06".
	Key string
	// Intel is true for Intel Core documents.
	Intel bool
	// Label is the generation/family label of Table III.
	Label string
	// Reference is the vendor document reference of Table III.
	Reference string
	// Prefix is the erratum-ID prefix for Intel documents (e.g. "SKL");
	// empty for AMD, which uses global numeric identifiers.
	Prefix string
	// GenIndex is the Intel generation number (1..12); 0 for AMD.
	GenIndex int
	// Released is the initial release date of the CPU series.
	Released time.Time
	// LastUpdate is the date of the final document revision.
	LastUpdate time.Time
	// Count is the number of erratum entries the document must contain.
	Count int
	// RevisionMonths is the average number of months between revisions.
	RevisionMonths int
}

func d(y, m int) time.Time {
	return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC)
}

// IntelProfiles lists the 16 Intel Core documents of Table III. The
// per-document entry counts sum to 2,057, the paper's Intel total.
var IntelProfiles = []DocProfile{
	{Key: "intel-01d", Intel: true, Label: "1 (D)", Reference: "320836-037US", Prefix: "AAJ", GenIndex: 1, Released: d(2008, 11), LastUpdate: d(2015, 4), Count: 140, RevisionMonths: 2},
	{Key: "intel-01m", Intel: true, Label: "1 (M)", Reference: "322814-024US", Prefix: "AAT", GenIndex: 1, Released: d(2009, 9), LastUpdate: d(2015, 4), Count: 145, RevisionMonths: 3},
	{Key: "intel-02d", Intel: true, Label: "2 (D)", Reference: "324643-037US", Prefix: "BJ", GenIndex: 2, Released: d(2011, 1), LastUpdate: d(2016, 6), Count: 150, RevisionMonths: 2},
	{Key: "intel-02m", Intel: true, Label: "2 (M)", Reference: "324827-034US", Prefix: "BK", GenIndex: 2, Released: d(2011, 2), LastUpdate: d(2016, 6), Count: 152, RevisionMonths: 2},
	{Key: "intel-03d", Intel: true, Label: "3 (D)", Reference: "326766-022US", Prefix: "BV", GenIndex: 3, Released: d(2012, 4), LastUpdate: d(2016, 7), Count: 130, RevisionMonths: 3},
	{Key: "intel-03m", Intel: true, Label: "3 (M)", Reference: "326770-022US", Prefix: "BU", GenIndex: 3, Released: d(2012, 6), LastUpdate: d(2016, 7), Count: 132, RevisionMonths: 3},
	{Key: "intel-04d", Intel: true, Label: "4 (D)", Reference: "328899-039US", Prefix: "HSD", GenIndex: 4, Released: d(2013, 6), LastUpdate: d(2017, 3), Count: 135, RevisionMonths: 2},
	{Key: "intel-04m", Intel: true, Label: "4 (M)", Reference: "328903-038US", Prefix: "HSM", GenIndex: 4, Released: d(2013, 6), LastUpdate: d(2017, 3), Count: 138, RevisionMonths: 2},
	{Key: "intel-05d", Intel: true, Label: "5 (D)", Reference: "332381-023US", Prefix: "BDD", GenIndex: 5, Released: d(2015, 1), LastUpdate: d(2018, 2), Count: 110, RevisionMonths: 3},
	{Key: "intel-05m", Intel: true, Label: "5 (M)", Reference: "330836-031US", Prefix: "BDM", GenIndex: 5, Released: d(2014, 10), LastUpdate: d(2018, 2), Count: 112, RevisionMonths: 3},
	{Key: "intel-06", Intel: true, Label: "6", Reference: "332689-028US", Prefix: "SKL", GenIndex: 6, Released: d(2015, 8), LastUpdate: d(2020, 6), Count: 180, RevisionMonths: 2},
	{Key: "intel-07", Intel: true, Label: "7/8", Reference: "334663-013US", Prefix: "KBL", GenIndex: 7, Released: d(2016, 8), LastUpdate: d(2021, 2), Count: 150, RevisionMonths: 3},
	{Key: "intel-08", Intel: true, Label: "8/9", Reference: "337346-002US", Prefix: "CFL", GenIndex: 8, Released: d(2017, 10), LastUpdate: d(2021, 8), Count: 140, RevisionMonths: 3},
	{Key: "intel-10", Intel: true, Label: "10", Reference: "615213-010US", Prefix: "CML", GenIndex: 10, Released: d(2019, 8), LastUpdate: d(2022, 2), Count: 120, RevisionMonths: 3},
	{Key: "intel-11", Intel: true, Label: "11", Reference: "634808-008US", Prefix: "RKL", GenIndex: 11, Released: d(2021, 3), LastUpdate: d(2022, 4), Count: 70, RevisionMonths: 2},
	{Key: "intel-12", Intel: true, Label: "12", Reference: "682436-004US", Prefix: "ADL", GenIndex: 12, Released: d(2021, 11), LastUpdate: d(2022, 5), Count: 53, RevisionMonths: 2},
}

// AMDProfiles lists the 12 AMD family documents of Table III. The
// per-document counts sum to 506, the paper's AMD total.
var AMDProfiles = []DocProfile{
	{Key: "amd-10h-00", Label: "10h 00-0F", Reference: "41322-3.84", Released: d(2008, 3), LastUpdate: d(2013, 3), Count: 60, RevisionMonths: 6},
	{Key: "amd-11h-00", Label: "11h 00-0F", Reference: "41788-3.00", Released: d(2008, 6), LastUpdate: d(2011, 8), Count: 25, RevisionMonths: 8},
	{Key: "amd-12h-00", Label: "12h 00-0F", Reference: "44739-3.10", Released: d(2011, 6), LastUpdate: d(2013, 4), Count: 30, RevisionMonths: 7},
	{Key: "amd-14h-00", Label: "14h 00-0F", Reference: "47534-3.18", Released: d(2011, 1), LastUpdate: d(2013, 9), Count: 35, RevisionMonths: 6},
	{Key: "amd-15h-00", Label: "15h 00-0F", Reference: "48063-3.24", Released: d(2011, 10), LastUpdate: d(2014, 10), Count: 55, RevisionMonths: 5},
	{Key: "amd-15h-10", Label: "15h 10-1F", Reference: "48931-3.08", Released: d(2012, 5), LastUpdate: d(2014, 12), Count: 40, RevisionMonths: 6},
	{Key: "amd-15h-30", Label: "15h 30-3F", Reference: "51603-1.06", Released: d(2014, 1), LastUpdate: d(2016, 3), Count: 42, RevisionMonths: 6},
	{Key: "amd-15h-70", Label: "15h 70-7F", Reference: "55370-3.00", Released: d(2015, 6), LastUpdate: d(2017, 5), Count: 25, RevisionMonths: 8},
	{Key: "amd-16h-00", Label: "16h 00-0F", Reference: "51810-3.06", Released: d(2013, 5), LastUpdate: d(2015, 9), Count: 38, RevisionMonths: 6},
	{Key: "amd-17h-00", Label: "17h 00-0F", Reference: "55449-1.12", Released: d(2017, 3), LastUpdate: d(2020, 7), Count: 60, RevisionMonths: 5},
	{Key: "amd-17h-30", Label: "17h 30-3F", Reference: "56323-0.78", Released: d(2019, 7), LastUpdate: d(2021, 9), Count: 48, RevisionMonths: 6},
	{Key: "amd-19h-00", Label: "19h 00-0F", Reference: "56683-1.04", Released: d(2020, 11), LastUpdate: d(2022, 5), Count: 48, RevisionMonths: 5},
}

// Calibration targets from the paper (Section IV-A and V-B). The
// generator is verified against these in its tests.
const (
	// TargetIntelTotal is the number of Intel erratum entries.
	TargetIntelTotal = 2057
	// TargetIntelUnique is the number of unique Intel errata.
	TargetIntelUnique = 743
	// TargetAMDTotal is the number of AMD erratum entries.
	TargetAMDTotal = 506
	// TargetAMDUnique is the number of unique AMD errata.
	TargetAMDUnique = 385
	// TargetTotal is the total number of erratum entries (2,563).
	TargetTotal = TargetIntelTotal + TargetAMDTotal
	// TargetUnique is the total number of unique errata (1,128).
	TargetUnique = TargetIntelUnique + TargetAMDUnique

	// SharedGens6To10 is the number of bugs shared by all Intel Core
	// generations 6 to 10 (Figure 4).
	SharedGens6To10 = 104
	// LineagesCore1To10 is the number of bugs present from Core 1 to
	// Core 10 (Section IV-B2).
	LineagesCore1To10 = 6

	// ComplexConditionFractionIntel is the fraction of unique Intel
	// errata mentioning a "complex set of conditions".
	ComplexConditionFractionIntel = 0.087
	// ComplexConditionFractionAMD is the AMD counterpart.
	ComplexConditionFractionAMD = 0.208
	// TrivialTriggerFraction is the fraction of errata with no clear or
	// only trivial triggers, excluded from Figure 11.
	TrivialTriggerFraction = 0.144
	// NoWorkaroundFractionIntel is the fraction of unique Intel errata
	// without any suggested workaround (Figure 6).
	NoWorkaroundFractionIntel = 0.359
	// NoWorkaroundFractionAMD is the AMD counterpart.
	NoWorkaroundFractionAMD = 0.289
)

// weighted is a category identifier with a sampling weight.
type weighted struct {
	id string
	w  float64
}

// triggerWeights is the marginal sampling distribution over abstract
// trigger categories, shaped after Figure 10: configuration-register
// interactions, throttling and power-state transitions lead, followed by
// feature, virtualization and external-input triggers.
var triggerWeights = []weighted{
	{"Trg_CFG_wrg", 13.0},
	{"Trg_POW_tht", 10.0},
	{"Trg_POW_pwc", 9.0},
	{"Trg_FEA_cus", 6.5},
	{"Trg_PRV_vmt", 6.0},
	{"Trg_CFG_vmc", 5.0},
	{"Trg_EXT_pci", 5.0},
	{"Trg_FEA_dbg", 4.5},
	{"Trg_EXT_rst", 4.0},
	{"Trg_MOP_mmp", 3.5},
	{"Trg_EXT_ram", 3.5},
	{"Trg_FEA_tra", 3.0},
	{"Trg_FLT_mca", 3.0},
	{"Trg_CFG_pag", 3.0},
	{"Trg_MOP_ptw", 2.5},
	{"Trg_FEA_fpu", 2.5},
	{"Trg_FEA_mon", 2.0},
	{"Trg_MOP_atp", 2.0},
	{"Trg_MOP_flc", 2.0},
	{"Trg_PRV_ret", 2.0},
	{"Trg_FLT_ovf", 1.8},
	{"Trg_EXT_bus", 1.8},
	{"Trg_MOP_fen", 1.5},
	{"Trg_FLT_tmr", 1.5},
	{"Trg_EXT_usb", 1.5},
	{"Trg_MOP_spe", 1.2},
	{"Trg_MBR_cbr", 1.2},
	{"Trg_MOP_seg", 1.0},
	{"Trg_MBR_pgb", 1.0},
	{"Trg_EXT_iom", 1.0},
	{"Trg_FEA_cid", 0.8},
	{"Trg_FLT_ill", 0.8},
	{"Trg_MOP_nst", 0.8},
	{"Trg_MBR_mbr", 0.6},
}

// vendorTriggerBias multiplies trigger weights per vendor to reproduce
// Figures 15 and 16: Intel over-represents custom-feature and tracing
// triggers; AMD over-represents bus (HyperTransport) and IOMMU inputs.
var vendorTriggerBias = map[string]struct{ intel, amd float64 }{
	"Trg_FEA_cus": {1.5, 0.6},
	"Trg_FEA_tra": {1.7, 0.4},
	"Trg_FEA_mon": {1.3, 0.7},
	"Trg_EXT_bus": {0.5, 2.2},
	"Trg_EXT_iom": {0.6, 2.0},
	"Trg_EXT_usb": {1.4, 0.7},
	"Trg_EXT_ram": {0.9, 1.3},
	"Trg_FEA_fpu": {0.8, 1.4},
}

// triggerPairBoost boosts the conditional probability of picking the
// second trigger once the first is present, reproducing the salient
// correlations of Figure 12 (debug features with VM transitions; DRAM
// and PCIe with power-level changes; resets with PCIe).
var triggerPairBoost = map[[2]string]float64{
	{"Trg_FEA_dbg", "Trg_PRV_vmt"}: 6.0,
	{"Trg_EXT_ram", "Trg_POW_pwc"}: 5.0,
	{"Trg_EXT_pci", "Trg_POW_pwc"}: 5.0,
	{"Trg_EXT_pci", "Trg_EXT_rst"}: 4.5,
	{"Trg_CFG_wrg", "Trg_POW_tht"}: 4.0,
	{"Trg_CFG_wrg", "Trg_POW_pwc"}: 3.5,
	{"Trg_CFG_wrg", "Trg_FEA_cus"}: 3.0,
	{"Trg_CFG_vmc", "Trg_PRV_vmt"}: 4.0,
	{"Trg_MOP_ptw", "Trg_CFG_pag"}: 4.0,
	{"Trg_POW_tht", "Trg_POW_pwc"}: 3.0,
	{"Trg_FLT_mca", "Trg_POW_tht"}: 2.5,
	{"Trg_MOP_mmp", "Trg_EXT_pci"}: 2.5,
}

// triggerCountWeights is the distribution of the number of (non-trivial)
// triggers per erratum, shaped after Figure 11: mixing both vendors,
// about half of the errata require at least two combined triggers.
var triggerCountWeights = []weighted{
	{"1", 51}, {"2", 32}, {"3", 12}, {"4", 4}, {"5", 1},
}

// contextWeights is the marginal distribution over context categories
// (Figure 17): virtual-machine guests dominate.
var contextWeights = []weighted{
	{"Ctx_PRV_vmg", 10.0},
	{"Ctx_PRV_smm", 4.5},
	{"Ctx_PRV_boo", 4.0},
	{"Ctx_PRV_vmh", 3.5},
	{"Ctx_PRV_rea", 2.5},
	{"Ctx_FEA_sec", 2.5},
	{"Ctx_PHY_pkg", 1.5},
	{"Ctx_FEA_sgc", 1.2},
	{"Ctx_PHY_tmp", 1.0},
	{"Ctx_PHY_vol", 0.8},
}

// contextCountWeights: most errata list no specific context; some one;
// few several.
var contextCountWeights = []weighted{
	{"0", 55}, {"1", 33}, {"2", 10}, {"3", 2},
}

// effectWeights is the marginal distribution over effect categories
// (Figure 18): corrupted registers, hangs and unpredictable behavior
// are the most common observable effects.
var effectWeights = []weighted{
	{"Eff_CRP_reg", 12.0},
	{"Eff_HNG_hng", 10.0},
	{"Eff_HNG_unp", 9.0},
	{"Eff_FLT_mca", 5.5},
	{"Eff_FLT_fsp", 5.0},
	{"Eff_CRP_prf", 4.5},
	{"Eff_HNG_crh", 3.5},
	{"Eff_FLT_unc", 3.0},
	{"Eff_FLT_fms", 2.5},
	{"Eff_EXT_pci", 2.5},
	{"Eff_HNG_boo", 2.0},
	{"Eff_FLT_fid", 1.8},
	{"Eff_EXT_ram", 1.5},
	{"Eff_EXT_mmd", 1.2},
	{"Eff_EXT_usb", 1.2},
	{"Eff_EXT_pow", 1.0},
}

// effectCountWeights: every erratum has at least one observable effect.
var effectCountWeights = []weighted{
	{"1", 62}, {"2", 30}, {"3", 8},
}

// msrWeights distributes the observable-effect MSR for errata whose
// effects involve a corrupted register or machine-check report
// (Figure 19): machine-check status registers lead, followed by
// instruction-based sampling registers (AMD) and performance counters.
var msrWeights = []weighted{
	{"MCx_STATUS", 5.5},
	{"MCx_ADDR", 4.0},
	{"IA32_PERF_STATUS", 3.0},
	{"IA32_PMCx", 4.5},
	{"IA32_FIXED_CTRx", 2.5},
	{"IA32_THERM_STATUS", 2.0},
	{"IA32_APIC_BASE", 1.5},
	{"IA32_DEBUGCTL", 1.5},
	{"IA32_MISC_ENABLE", 1.2},
	{"IA32_TSC", 1.0},
}

// amdMSRWeights is the AMD counterpart, with IBS registers prominent.
var amdMSRWeights = []weighted{
	{"MCx_STATUS", 5.5},
	{"MCx_ADDR", 4.2},
	{"IBS_FETCH_CTL", 4.0},
	{"IBS_OP_DATA", 3.5},
	{"PERF_CTRx", 4.0},
	{"HWCR", 2.0},
	{"APIC_BASE", 1.5},
	{"TSC", 1.0},
}

// workaroundWeights gives, per vendor, the distribution over workaround
// categories (Figure 6). The None fractions match the paper; the
// remainder is split with BIOS workarounds leading.
var workaroundWeightsIntel = []weighted{
	{"None", 35.9},
	{"BIOS", 32.0},
	{"Software", 17.0},
	{"Absent", 11.0},
	{"Peripherals", 3.6},
	{"DocumentationFix", 0.5},
}

var workaroundWeightsAMD = []weighted{
	{"None", 28.9},
	{"BIOS", 36.0},
	{"Software", 20.0},
	{"Absent", 11.0},
	{"Peripherals", 3.6},
	{"DocumentationFix", 0.5},
}

// fixWeights gives the distribution of fix statuses (Figure 7): the vast
// majority of bugs are never fixed. For Intel the fixed fraction grows
// weakly with the generation index (handled in the generator).
var fixWeights = []weighted{
	{"NoFixPlanned", 88}, {"FixPlanned", 5}, {"Fixed", 7},
}
