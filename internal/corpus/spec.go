// Package corpus generates the synthetic errata corpus that substitutes
// for the withdrawn and proprietary Intel/AMD specification-update PDFs.
//
// The generator emits, deterministically from a seed, the documents of a
// corpus profile with errata whose counts, duplicate structure,
// annotation distributions, disclosure timelines and injected document
// errors are calibrated to the statistics the profile specifies. The
// built-in profile (plugins/corpusprofile/intelamd, wired as the default
// by plugins/defaults) reproduces the 28 documents of Table III and the
// statistics the paper reports. Every erratum carries a hidden
// ground-truth annotation; the downstream pipeline (parse, dedup,
// classify, annotate) must recover the statistics from the rendered text
// alone, which is what the test suite verifies.
package corpus

import (
	"fmt"

	"repro/pkg/pluginapi"
)

// DocProfile describes one specification-update document to generate.
// It is the plugin-API type: document sets come from registered corpus
// profile plugins.
type DocProfile = pluginapi.DocProfile

// defaultSpec resolves the spec of the default corpus profile from the
// plugin registry.
func defaultSpec() (pluginapi.CorpusSpec, error) {
	p, err := pluginapi.DefaultCorpusProfile()
	if err != nil {
		return pluginapi.CorpusSpec{}, fmt.Errorf("corpus: %w", err)
	}
	return p.Spec(), nil
}
