package corpus

import (
	"fmt"
	"sort"

	"repro/pkg/pluginapi"
)

// Lineage is one unique bug: the set of documents whose errata report it.
// A lineage is the ground-truth counterpart of a dedup cluster key.
type Lineage struct {
	// Key is the ground-truth unique key, e.g. "GT-I-0012".
	Key string
	// Docs lists the affected document keys in vendor document order.
	Docs []string
	// Special tags the constrained lineages: "longest" (the Core 2 bug
	// still identified many generations later), "core1to10" (the six
	// bugs spanning Core 1 to Core 10), "gens6to10" (the bugs shared by
	// all generations 6 to 10), or "" for ordinary lineages.
	Special string
}

// Span reports the number of affected documents.
func (l *Lineage) Span() int { return len(l.Docs) }

// Contains reports whether the lineage affects the given document.
func (l *Lineage) Contains(docKey string) bool {
	for _, d := range l.Docs {
		if d == docKey {
			return true
		}
	}
	return false
}

// planError reports an infeasible lineage plan; it indicates the
// calibration constants are inconsistent, not a runtime condition.
type planError struct{ msg string }

func (e planError) Error() string { return "corpus: " + e.msg }

// docKeys returns the document keys in profile order.
func docKeys(profiles []DocProfile) []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Key
	}
	return out
}

// planIntel builds the Intel lineage plan. reserve maps document keys to
// the number of entry slots reserved for injected intra-document
// duplicates; those slots are excluded from the lineage budget.
func planIntel(spec pluginapi.CorpusSpec, reserve map[string]int) ([]Lineage, error) {
	cal := spec.Calibration
	quota := make(map[string]int, len(spec.IntelDocs))
	for _, p := range spec.IntelDocs {
		quota[p.Key] = p.Count - reserve[p.Key]
		if quota[p.Key] < 0 {
			return nil, planError{fmt.Sprintf("reservation exceeds count for %s", p.Key)}
		}
	}

	var lineages []Lineage
	take := func(l Lineage) error {
		for _, dk := range l.Docs {
			if quota[dk] <= 0 {
				return planError{fmt.Sprintf("quota exhausted for %s while placing %s lineage", dk, l.Special)}
			}
			quota[dk]--
		}
		lineages = append(lineages, l)
		return nil
	}

	// The pinned shared lineages span hard-coded Table III document
	// keys; a profile that does not want them (or does not include
	// those documents) sets SharedGens6To10 to zero.
	if cal.SharedGens6To10 > 0 {
		// Special lineage 1: the Core 2 erratum still identified many
		// generations later (Section IV-B2) — present in every document
		// from generation 2 on.
		longest := Lineage{Special: "longest", Docs: []string{
			"intel-02d", "intel-02m", "intel-03d", "intel-03m", "intel-04d",
			"intel-04m", "intel-05d", "intel-05m", "intel-06", "intel-07",
			"intel-08", "intel-10", "intel-11", "intel-12",
		}}
		if err := take(longest); err != nil {
			return nil, err
		}

		// Special lineages 2..7: the six bugs that stayed from Core 1 to
		// Core 10.
		core1to10 := []string{
			"intel-01d", "intel-01m", "intel-02d", "intel-02m", "intel-03d",
			"intel-03m", "intel-04d", "intel-04m", "intel-05d", "intel-05m",
			"intel-06", "intel-07", "intel-08", "intel-10",
		}
		for i := 0; i < cal.LineagesCore1To10; i++ {
			if err := take(Lineage{Special: "core1to10", Docs: append([]string(nil), core1to10...)}); err != nil {
				return nil, err
			}
		}

		// The remaining bugs shared by all generations 6 to 10. The
		// longest and core1to10 lineages also cover generations 6-10, so
		// together they amount to SharedGens6To10 lineages.
		gens6to10 := []string{"intel-06", "intel-07", "intel-08", "intel-10"}
		for i := 0; i < cal.SharedGens6To10-cal.LineagesCore1To10-1; i++ {
			if err := take(Lineage{Special: "gens6to10", Docs: append([]string(nil), gens6to10...)}); err != nil {
				return nil, err
			}
		}
	}

	// Remaining budget.
	appearances := 0
	for _, q := range quota {
		appearances += q
	}
	remainingLineages := cal.IntelUnique - len(lineages)
	extras := appearances - remainingLineages
	if extras < 0 {
		return nil, planError{"negative extras: appearance quota too small for unique target"}
	}

	// Groups consume one appearance per member document and contribute
	// size-1 "extras". Desktop/mobile pairs dominate (the paper: D and M
	// processors share the vast majority of bugs); quads across adjacent
	// generations reproduce the off-diagonal mass of Figure 3.
	candidates := [][]string{
		{"intel-01d", "intel-01m", "intel-02d", "intel-02m"},
		{"intel-02d", "intel-02m", "intel-03d", "intel-03m"},
		{"intel-03d", "intel-03m", "intel-04d", "intel-04m"},
		{"intel-04d", "intel-04m", "intel-05d", "intel-05m"},
		{"intel-05d", "intel-05m", "intel-06", "intel-07"},
		// Note: no {06,07,08,10} quad — the number of lineages covering
		// all of generations 6-10 is pinned to SharedGens6To10 above.
		{"intel-08", "intel-10", "intel-11", "intel-12"},
		{"intel-01d", "intel-01m"},
		{"intel-02d", "intel-02m"},
		{"intel-03d", "intel-03m"},
		{"intel-04d", "intel-04m"},
		{"intel-05d", "intel-05m"},
		{"intel-06", "intel-07"},
		{"intel-07", "intel-08"},
		{"intel-08", "intel-10"},
		{"intel-10", "intel-11"},
		{"intel-11", "intel-12"},
	}
	groups, err := planGroups(quota, candidates, extras)
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		lineages = append(lineages, Lineage{Docs: g})
	}

	// Singletons absorb the remaining quota.
	for _, dk := range docKeys(spec.IntelDocs) {
		for i := 0; i < quota[dk]; i++ {
			lineages = append(lineages, Lineage{Docs: []string{dk}})
		}
		quota[dk] = 0
	}

	if len(lineages) != cal.IntelUnique {
		return nil, planError{fmt.Sprintf("planned %d Intel lineages, want %d", len(lineages), cal.IntelUnique)}
	}
	assignKeys(lineages, "GT-I")
	return lineages, nil
}

// planAMD builds the AMD lineage plan. AMD families share fewer errata
// than Intel generations; sharing happens between related families.
func planAMD(spec pluginapi.CorpusSpec, reserve map[string]int) ([]Lineage, error) {
	cal := spec.Calibration
	quota := make(map[string]int, len(spec.AMDDocs))
	for _, p := range spec.AMDDocs {
		quota[p.Key] = p.Count - reserve[p.Key]
		if quota[p.Key] < 0 {
			return nil, planError{fmt.Sprintf("reservation exceeds count for %s", p.Key)}
		}
	}
	appearances := 0
	for _, q := range quota {
		appearances += q
	}
	extras := appearances - cal.AMDUnique
	if extras < 0 {
		return nil, planError{"negative AMD extras"}
	}

	candidates := [][]string{
		{"amd-15h-00", "amd-15h-10", "amd-15h-30"},
		{"amd-17h-00", "amd-17h-30", "amd-19h-00"},
		{"amd-10h-00", "amd-11h-00"},
		{"amd-12h-00", "amd-14h-00"},
		{"amd-14h-00", "amd-16h-00"},
		{"amd-15h-00", "amd-15h-10"},
		{"amd-15h-10", "amd-15h-30"},
		{"amd-15h-30", "amd-15h-70"},
		{"amd-16h-00", "amd-17h-00"},
		{"amd-17h-00", "amd-17h-30"},
		{"amd-17h-30", "amd-19h-00"},
	}
	groups, err := planGroups(quota, candidates, extras)
	if err != nil {
		return nil, err
	}
	var lineages []Lineage
	for _, g := range groups {
		lineages = append(lineages, Lineage{Docs: g})
	}
	for _, dk := range docKeys(spec.AMDDocs) {
		for i := 0; i < quota[dk]; i++ {
			lineages = append(lineages, Lineage{Docs: []string{dk}})
		}
		quota[dk] = 0
	}
	if len(lineages) != cal.AMDUnique {
		return nil, planError{fmt.Sprintf("planned %d AMD lineages, want %d", len(lineages), cal.AMDUnique)}
	}
	assignKeys(lineages, "GT-A")
	return lineages, nil
}

// planGroups greedily consumes `extras` by instantiating candidate
// groups round-robin. A group of size k consumes one appearance per
// member document and contributes k-1 extras. The function mutates
// quota and returns the instantiated groups.
func planGroups(quota map[string]int, candidates [][]string, extras int) ([][]string, error) {
	var groups [][]string
	idx := 0
	stuckSince := 0
	for extras > 0 {
		cand := candidates[idx%len(candidates)]
		idx++
		feasible := len(cand)-1 <= extras
		if feasible {
			for _, dk := range cand {
				if quota[dk] <= 0 {
					feasible = false
					break
				}
			}
		}
		if !feasible {
			stuckSince++
			if stuckSince > len(candidates) {
				return nil, planError{fmt.Sprintf("cannot place remaining %d extras", extras)}
			}
			continue
		}
		stuckSince = 0
		g := append([]string(nil), cand...)
		for _, dk := range g {
			quota[dk]--
		}
		groups = append(groups, g)
		extras -= len(g) - 1
	}
	return groups, nil
}

// assignKeys gives lineages deterministic ground-truth keys in a stable
// order (specials first, then by span descending, then by doc set).
func assignKeys(lineages []Lineage, prefix string) {
	sort.SliceStable(lineages, func(i, j int) bool {
		si, sj := specialRank(lineages[i].Special), specialRank(lineages[j].Special)
		if si != sj {
			return si < sj
		}
		if len(lineages[i].Docs) != len(lineages[j].Docs) {
			return len(lineages[i].Docs) > len(lineages[j].Docs)
		}
		return joinDocs(lineages[i].Docs) < joinDocs(lineages[j].Docs)
	})
	for i := range lineages {
		lineages[i].Key = fmt.Sprintf("%s-%04d", prefix, i+1)
	}
}

func specialRank(s string) int {
	switch s {
	case "longest":
		return 0
	case "core1to10":
		return 1
	case "gens6to10":
		return 2
	default:
		return 3
	}
}

func joinDocs(docs []string) string {
	out := ""
	for _, d := range docs {
		out += d + "|"
	}
	return out
}
