package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/taxonomy"
	"repro/internal/textsim"
	"repro/pkg/pluginapi"
)

// EntryRef identifies one erratum entry unambiguously even when a
// document reuses an erratum name (the AAJ143-style error): "docKey#seq".
func EntryRef(e *core.Erratum) string { return fmt.Sprintf("%s#%d", e.DocKey, e.Seq) }

// FieldError records an injected missing or duplicated erratum field.
type FieldError struct {
	// Ref is the entry reference ("docKey#seq").
	Ref string
	// Field is the affected field name ("Implication", "Workaround", ...).
	Field string
	// Kind is "missing" or "duplicate".
	Kind string
}

// ErrorInventory records every injected "errata in errata" document
// error, matching the inventory of Section IV-A of the paper.
type ErrorInventory struct {
	// DoubleAddedRevisions lists entries whose ID two revisions both
	// claim to have added (8 errata across 3 documents).
	DoubleAddedRevisions []string
	// MissingFromNotes lists entries never mentioned in the revision
	// notes (12 errata across 2 documents).
	MissingFromNotes []string
	// ReusedName holds the two entries sharing the same erratum name
	// within one document (the AAJ143 case).
	ReusedName [2]string
	// FieldErrors lists missing or duplicate fields (7 errata across 4
	// documents).
	FieldErrors []FieldError
	// WrongMSRNumbers lists entries whose description carries an
	// erroneous MSR number (3 errata across 3 documents).
	WrongMSRNumbers []string
	// IntraDocDuplicates lists pairs of entries repeating the same
	// erratum inside one document (11 pairs across 6 documents).
	IntraDocDuplicates [][2]string
}

// GroundTruth is the output of the generator: the fully annotated and
// keyed database, plus everything the pipeline is expected to recover.
type GroundTruth struct {
	// DB is the ground-truth database (annotations and cluster keys set).
	DB *core.Database
	// Lineages maps ground-truth keys to lineages.
	Lineages map[string]*Lineage
	// ConfirmedPairs lists entry-reference pairs whose titles were
	// deliberately varied; the paper's humans confirmed 29 such pairs
	// manually. The dedup stage consults these through an oracle.
	ConfirmedPairs [][2]string
	// Inventory records the injected document errors.
	Inventory ErrorInventory
	// Seed is the generator seed.
	Seed int64
}

// lineageText is the rendered erratum text shared by all occurrences of
// a lineage.
type lineageText struct {
	title       string
	description string
	implication string
	workaround  string
	status      string
	variant     string // alternative title used by at most one occurrence
}

type generator struct {
	rng      *rand.Rand
	spec     pluginapi.CorpusSpec
	profiles map[string]DocProfile
	seen     map[string]bool // normalized titles, for global uniqueness
}

// Generate produces the synthetic corpus for the given seed using the
// default corpus profile of the plugin registry. It fails when no
// default profile is registered (import repro/plugins/defaults). The
// result is deterministic per seed.
func Generate(seed int64) (*GroundTruth, error) {
	spec, err := defaultSpec()
	if err != nil {
		return nil, err
	}
	return GenerateWith(spec, seed)
}

// GenerateWith produces the synthetic corpus for an explicit profile
// spec. Custom profiles with Calibration.SharedGens6To10 > 0 must
// include the Intel Table III document keys the pinned shared lineages
// span; setting it (and LineagesCore1To10) to zero disables those
// lineages. The result is deterministic per (spec, seed).
func GenerateWith(spec pluginapi.CorpusSpec, seed int64) (*GroundTruth, error) {
	g := &generator{
		rng:      rand.New(rand.NewSource(seed)),
		spec:     spec,
		profiles: make(map[string]DocProfile),
		seen:     make(map[string]bool),
	}
	for _, p := range spec.IntelDocs {
		g.profiles[p.Key] = p
	}
	for _, p := range spec.AMDDocs {
		g.profiles[p.Key] = p
	}

	// Intra-document duplicate reservations (11 pairs across 6 Intel
	// documents; AMD's shared numbering rules intra-document duplicates
	// out, as the paper notes).
	intraDup := map[string]int{
		"intel-01d": 2, "intel-02d": 2, "intel-03m": 2,
		"intel-04m": 2, "intel-06": 2, "intel-08": 1,
	}
	linI, err := planIntel(spec, intraDup)
	if err != nil {
		return nil, err
	}
	linA, err := planAMD(spec, nil)
	if err != nil {
		return nil, err
	}

	gt := &GroundTruth{
		DB:       core.NewDatabase(),
		Lineages: make(map[string]*Lineage),
		Seed:     seed,
	}
	for i := range linI {
		gt.Lineages[linI[i].Key] = &linI[i]
	}
	for i := range linA {
		gt.Lineages[linA[i].Key] = &linA[i]
	}

	// Per-document revision histories, built in a deterministic order.
	profileKeys := make([]string, 0, len(g.profiles))
	for key := range g.profiles {
		profileKeys = append(profileKeys, key)
	}
	sort.Strings(profileKeys)
	revs := make(map[string][]core.Revision)
	for _, key := range profileKeys {
		revs[key] = g.buildRevisions(g.profiles[key])
	}

	// Per-lineage discovery dates, annotations and texts.
	disc := make(map[string]time.Time)
	anns := make(map[string]core.Annotation)
	texts := make(map[string]*lineageText)
	for _, lin := range [][]Lineage{linI, linA} {
		for i := range lin {
			l := &lin[i]
			intel := strings.HasPrefix(l.Docs[0], "intel")
			disc[l.Key] = g.discoveryDate(l)
			ann := g.sampleAnnotation(intel, l)
			anns[l.Key] = ann
			texts[l.Key] = g.buildText(intel, ann)
		}
	}

	// AMD global numeric identifiers, assigned in discovery order.
	amdID := make(map[string]string)
	amdKeys := make([]string, 0, len(linA))
	for i := range linA {
		amdKeys = append(amdKeys, linA[i].Key)
	}
	sort.Slice(amdKeys, func(i, j int) bool {
		di, dj := disc[amdKeys[i]], disc[amdKeys[j]]
		if !di.Equal(dj) {
			return di.Before(dj)
		}
		return amdKeys[i] < amdKeys[j]
	})
	for i, k := range amdKeys {
		amdID[k] = fmt.Sprintf("%d", 57+i)
	}

	// Choose the 29 Intel lineages that get a title variant in their
	// latest occurrence.
	variantSet := g.chooseVariantLineages(linI, 29)
	variantKeys := make([]string, 0, len(variantSet))
	for key := range variantSet {
		variantKeys = append(variantKeys, key)
	}
	sort.Strings(variantKeys)
	for _, key := range variantKeys {
		t := texts[key]
		t.variant = g.makeTitleVariant(t.title)
	}

	// Assemble the documents.
	for _, vendorLins := range [][]Lineage{linI, linA} {
		byDoc := make(map[string][]*Lineage)
		for i := range vendorLins {
			l := &vendorLins[i]
			for _, dk := range l.Docs {
				byDoc[dk] = append(byDoc[dk], l)
			}
		}
		docKeys := make([]string, 0, len(byDoc))
		for dk := range byDoc {
			docKeys = append(docKeys, dk)
		}
		sort.Strings(docKeys)
		for _, dk := range docKeys {
			p := g.profiles[dk]
			doc := g.assembleDocument(p, revs[dk], byDoc[dk], disc, anns, texts, amdID, variantSet, gt)
			if err := gt.DB.Add(doc); err != nil {
				return nil, err
			}
		}
	}

	// Inject intra-document duplicate entries.
	g.injectIntraDocDuplicates(gt, intraDup, anns)

	// Inject the remaining document errors.
	g.injectRevisionErrors(gt)
	g.injectReusedName(gt)
	g.injectFieldErrors(gt)
	g.injectWrongMSRs(gt)

	// Simulation-only errata: one Intel and five AMD errata mention
	// that the bug has only been observed in simulation (Section V-B).
	g.markSimulationOnly(gt)

	// Withdrawn errata: about 2% of entries are listed in the summary of
	// changes with their details removed (Section VII). Intel only.
	for _, p := range spec.IntelDocs {
		doc := gt.DB.Docs[p.Key]
		if doc == nil {
			continue
		}
		n := p.Count / 50
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			doc.Withdrawn = append(doc.Withdrawn,
				fmt.Sprintf("%s%03d", p.Prefix, len(doc.Errata)+1+i))
		}
	}

	core.AssignOrders(gt.DB)
	if err := gt.DB.Validate(); err != nil {
		return nil, fmt.Errorf("corpus: generated database invalid: %w", err)
	}
	return gt, nil
}

// buildRevisions creates a revision history from the document's release
// to its last update, stepping RevisionMonths with +-1 month of jitter.
func (g *generator) buildRevisions(p DocProfile) []core.Revision {
	var out []core.Revision
	date := p.Released.AddDate(0, 1, 0)
	n := 1
	for !date.After(p.LastUpdate) {
		out = append(out, core.Revision{Number: n, Date: date})
		step := p.RevisionMonths + g.rng.Intn(3) - 1
		if step < 1 {
			step = 1
		}
		date = date.AddDate(0, step, 0)
		n++
	}
	if len(out) == 0 {
		out = append(out, core.Revision{Number: 1, Date: p.Released.AddDate(0, 1, 0)})
	}
	return out
}

// discoveryDate samples when the bug of a lineage was first discovered.
// Discovery density is concave over the base document's lifetime
// (Observation O2); lineages spanning four or more documents are
// discovered early, so that shared bugs are mostly known before the
// subsequent generation's release (Observation O4).
func (g *generator) discoveryDate(l *Lineage) time.Time {
	base := g.profiles[l.Docs[0]]
	window := monthsBetween(base.Released, base.LastUpdate)
	if window < 1 {
		window = 1
	}
	u := g.rng.Float64()
	frac := u * u // concave cumulative growth
	if l.Span() >= 4 {
		frac = u * u * 0.2 // early discovery for widely shared bugs
	}
	m := int(frac * float64(window))
	return base.Released.AddDate(0, m, 0)
}

func monthsBetween(a, b time.Time) int {
	if b.Before(a) {
		return 0
	}
	return (b.Year()-a.Year())*12 + int(b.Month()) - int(a.Month())
}

// pickWeighted samples an identifier from a weighted table, with
// optional per-identifier multipliers.
func (g *generator) pickWeighted(table []pluginapi.Weighted, mult func(string) float64) string {
	total := 0.0
	for _, w := range table {
		f := w.Weight
		if mult != nil {
			f *= mult(w.ID)
		}
		total += f
	}
	x := g.rng.Float64() * total
	for _, w := range table {
		f := w.Weight
		if mult != nil {
			f *= mult(w.ID)
		}
		x -= f
		if x < 0 {
			return w.ID
		}
	}
	return table[len(table)-1].ID
}

func (g *generator) pickInt(table []pluginapi.Weighted) int {
	id := g.pickWeighted(table, nil)
	n := 0
	fmt.Sscanf(id, "%d", &n)
	return n
}

func (g *generator) pickString(bank []string) string {
	return bank[g.rng.Intn(len(bank))]
}

// sampleAnnotation draws a ground-truth annotation for a lineage.
func (g *generator) sampleAnnotation(intel bool, l *Lineage) core.Annotation {
	var ann core.Annotation

	// Trigger-class gating per generation: memory-boundary triggers are
	// absent from the two latest Intel generations (Figure 13).
	banMBR := false
	maxGen := 0
	for _, dk := range l.Docs {
		if gi := g.profiles[dk].GenIndex; gi > maxGen {
			maxGen = gi
		}
	}
	if intel && maxGen >= 11 {
		banMBR = true
	}

	vendorMult := func(id string) float64 {
		f := 1.0
		if b, ok := g.spec.VendorTriggerBias[id]; ok {
			if intel {
				f *= b.Intel
			} else {
				f *= b.AMD
			}
		}
		if banMBR && strings.HasPrefix(id, "Trg_MBR") {
			f = 0
		}
		// Feature triggers gain importance over Intel generations,
		// except in the two most recent ones (Figure 13).
		if intel && strings.HasPrefix(id, "Trg_FEA") && maxGen >= 3 && maxGen <= 10 {
			f *= 1.0 + float64(maxGen)*0.06
		}
		return f
	}

	if g.rng.Float64() < g.spec.Calibration.TrivialTriggerFraction {
		ann.TrivialTrigger = true
	} else {
		n := g.pickInt(g.spec.TriggerCountWeights)
		chosen := make(map[string]bool)
		var first string
		for len(ann.Triggers) < n {
			mult := func(id string) float64 {
				if chosen[id] {
					return 0
				}
				f := vendorMult(id)
				if first != "" {
					if b, ok := g.spec.TriggerPairBoost[[2]string{first, id}]; ok {
						f *= b
					}
					if b, ok := g.spec.TriggerPairBoost[[2]string{id, first}]; ok {
						f *= b
					}
				}
				return f
			}
			id := g.pickWeighted(g.spec.TriggerWeights, mult)
			if chosen[id] {
				continue // all remaining weights may be zero; retry caps below
			}
			chosen[id] = true
			if first == "" {
				first = id
			}
			phraseIdx := g.phraseIndex(len(triggerPhrases[id]))
			ann.Triggers = append(ann.Triggers, core.Item{
				Category: id,
				Concrete: triggerPhrases[id][phraseIdx],
			})
		}
	}

	nCtx := g.pickInt(g.spec.ContextCountWeights)
	chosenCtx := make(map[string]bool)
	for len(ann.Contexts) < nCtx {
		id := g.pickWeighted(g.spec.ContextWeights, func(id string) float64 {
			if chosenCtx[id] {
				return 0
			}
			return 1
		})
		if chosenCtx[id] {
			continue
		}
		chosenCtx[id] = true
		ann.Contexts = append(ann.Contexts, core.Item{
			Category: id,
			Concrete: contextPhrases[id][g.phraseIndex(len(contextPhrases[id]))],
		})
	}

	nEff := g.pickInt(g.spec.EffectCountWeights)
	chosenEff := make(map[string]bool)
	for len(ann.Effects) < nEff {
		id := g.pickWeighted(g.spec.EffectWeights, func(id string) float64 {
			if chosenEff[id] {
				return 0
			}
			return 1
		})
		if chosenEff[id] {
			continue
		}
		chosenEff[id] = true
		ann.Effects = append(ann.Effects, core.Item{
			Category: id,
			Concrete: effectPhrases[id][g.phraseIndex(len(effectPhrases[id]))],
		})
	}

	// Complex-set-of-conditions marker (8.7% Intel, 20.8% AMD).
	p := g.spec.Calibration.ComplexConditionFractionIntel
	if !intel {
		p = g.spec.Calibration.ComplexConditionFractionAMD
	}
	if g.rng.Float64() < p {
		ann.ComplexConditions = true
	}

	// Observable MSRs for register-visible effects (Figure 19).
	if annHasAny(&ann, "Eff_CRP_reg", "Eff_CRP_prf", "Eff_FLT_mca", "Eff_FLT_unc") {
		table := g.spec.MSRWeights
		if !intel {
			table = g.spec.AMDMSRWeights
		}
		msr := g.pickWeighted(table, nil)
		ann.MSRs = append(ann.MSRs, msr)
		if msr == "MCx_STATUS" && g.rng.Float64() < 0.5 {
			ann.MSRs = append(ann.MSRs, "MCx_ADDR")
		}
	}
	return ann
}

// phraseIndex biases towards the keyword-bearing phrasings (the last
// phrasing of every bank is deliberately vague and requires the
// simulated human annotators).
func (g *generator) phraseIndex(n int) int {
	if n <= 1 {
		return 0
	}
	if g.rng.Float64() < 0.72 {
		return g.rng.Intn(n - 1)
	}
	return n - 1
}

func annHasAny(a *core.Annotation, ids ...string) bool {
	for _, id := range ids {
		if a.Has(id) {
			return true
		}
	}
	return false
}

// buildText renders the erratum fields from a ground-truth annotation.
func (g *generator) buildText(intel bool, ann core.Annotation) *lineageText {
	t := &lineageText{}
	t.title = g.uniqueTitle(ann)

	var desc []string
	if ann.ComplexConditions {
		desc = append(desc, g.pickString(complexConditionSentences))
	}
	mainEffect := "the described behavior may occur"
	if len(ann.Effects) > 0 {
		mainEffect = ann.Effects[0].Concrete
	}
	if ann.TrivialTrigger {
		desc = append(desc, g.pickString(trivialTriggerSentences))
	} else if len(ann.Triggers) > 0 {
		var clauses []string
		for _, it := range ann.Triggers {
			clauses = append(clauses, it.Concrete)
		}
		desc = append(desc, "When "+strings.Join(clauses, " and ")+", "+mainEffect+".")
	} else {
		desc = append(desc, upperFirst(mainEffect)+".")
	}
	if len(ann.Contexts) > 0 {
		var clauses []string
		for _, it := range ann.Contexts {
			clauses = append(clauses, it.Concrete)
		}
		desc = append(desc, "This erratum applies while "+strings.Join(clauses, " or while ")+".")
	}
	for _, it := range ann.Effects[boolToInt(len(ann.Effects) > 0):] {
		desc = append(desc, "In addition, "+it.Concrete+".")
	}
	for _, msr := range ann.MSRs {
		desc = append(desc, fmt.Sprintf("The affected state may be observed in the %s register.", msr))
	}
	t.description = strings.Join(desc, " ")

	var impl []string
	impl = append(impl, g.pickString(implicationLeads))
	var effs []string
	for _, it := range ann.Effects {
		effs = append(effs, it.Concrete)
	}
	if len(effs) > 0 {
		impl = append(impl, upperFirst(strings.Join(effs, "; "))+".")
	}
	if g.rng.Float64() < 0.3 {
		impl = append(impl, notObservedSentence)
	}
	t.implication = strings.Join(impl, " ")
	return t
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// uniqueTitle composes a title that is globally unique (normalized)
// across all lineages so that title-based deduplication never merges
// distinct bugs.
func (g *generator) uniqueTitle(ann core.Annotation) string {
	for attempt := 0; ; attempt++ {
		title := g.composeTitle(ann)
		if attempt >= 24 {
			title = fmt.Sprintf("%s Under Condition Set %d", title, g.rng.Intn(100000))
		}
		norm := textsim.Normalize(title)
		if !g.seen[norm] {
			g.seen[norm] = true
			return title
		}
	}
}

func (g *generator) composeTitle(ann core.Annotation) string {
	subject := "Processor"
	if len(ann.Triggers) > 0 {
		cls := taxonomy.Base().ClassOf(ann.Triggers[0].Category)
		if bank, ok := titleSubjects[cls]; ok {
			subject = g.pickString(bank)
		}
	}
	fragment := "Behave Unexpectedly"
	if len(ann.Effects) > 0 {
		if bank, ok := titleFragments[ann.Effects[0].Category]; ok {
			fragment = g.pickString(bank)
		}
	}
	title := subject + " May " + fragment
	// Qualify with a secondary trigger or a context for diversity.
	switch {
	case len(ann.Triggers) > 1:
		title += " When " + upperTitleWords(shortClause(ann.Triggers[1].Concrete))
	case len(ann.Contexts) > 0:
		title += " While " + upperTitleWords(shortClause(ann.Contexts[0].Concrete))
	case len(ann.Triggers) == 1 && g.rng.Float64() < 0.5:
		title += " When " + upperTitleWords(shortClause(ann.Triggers[0].Concrete))
	}
	return title
}

// shortClause trims a concrete phrase to at most six words.
func shortClause(s string) string {
	words := strings.Fields(s)
	if len(words) > 6 {
		words = words[:6]
	}
	return strings.Join(words, " ")
}

func upperTitleWords(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if len(w) > 3 || i == 0 {
			words[i] = strings.ToUpper(w[:1]) + w[1:]
		}
	}
	return strings.Join(words, " ")
}

// chooseVariantLineages picks n multi-document Intel lineages whose
// latest occurrence will bear a slightly different title.
func (g *generator) chooseVariantLineages(lins []Lineage, n int) map[string]bool {
	var candidates []string
	for i := range lins {
		if lins[i].Span() >= 2 && lins[i].Special == "" {
			candidates = append(candidates, lins[i].Key)
		}
	}
	sort.Strings(candidates)
	g.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	out := make(map[string]bool)
	for i := 0; i < n && i < len(candidates); i++ {
		out[candidates[i]] = true
	}
	return out
}

// makeTitleVariant produces a near-identical title (minor phrasing
// variation) that breaks exact normalized equality but stays above the
// similarity threshold of the manual-review ranking, so that the
// variant pair is surfaced to the reviewers (as the paper's 29
// candidate pairs were).
func (g *generator) makeTitleVariant(title string) string {
	variants := []func(string) string{
		func(s string) string { return strings.Replace(s, " May ", " May Incorrectly ", 1) },
		func(s string) string { return strings.Replace(s, "Processor", "The Processor", 1) },
		func(s string) string { return strings.Replace(s, " May ", " Might ", 1) },
		func(s string) string { return s + " in Some Cases" },
	}
	start := g.rng.Intn(len(variants))
	for i := 0; i < len(variants); i++ {
		v := variants[(start+i)%len(variants)](title)
		norm := textsim.Normalize(v)
		if v != title && !g.seen[norm] && textsim.Jaccard(title, v) >= 0.65 {
			g.seen[norm] = true
			return v
		}
	}
	// Guaranteed-high-similarity fallback: a one-word insertion keeps
	// Jaccard at n/(n+1).
	v := strings.Replace(title, " May ", " May Then ", 1)
	if v == title || g.seen[textsim.Normalize(v)] {
		v = "The " + title
	}
	g.seen[textsim.Normalize(v)] = true
	return v
}

// occurrence is a lineage appearing in one document, before entry
// assignment.
type occurrence struct {
	lin    *Lineage
	report time.Time
	rev    int
}

// assembleDocument builds one core.Document from the lineages that
// affect it.
func (g *generator) assembleDocument(
	p DocProfile,
	revisions []core.Revision,
	lins []*Lineage,
	disc map[string]time.Time,
	anns map[string]core.Annotation,
	texts map[string]*lineageText,
	amdID map[string]string,
	variantSet map[string]bool,
	gt *GroundTruth,
) *core.Document {
	doc := &core.Document{
		Key:       p.Key,
		Vendor:    vendorOf(p),
		Label:     p.Label,
		Reference: p.Reference,
		Order:     g.orderOf(p),
		GenIndex:  p.GenIndex,
		Released:  p.Released,
		Revisions: append([]core.Revision(nil), revisions...),
	}

	// Compute report dates and revisions.
	occs := make([]occurrence, 0, len(lins))
	for _, l := range lins {
		report := disc[l.Key]
		if first := revisions[0].Date; report.Before(first) {
			report = first
		}
		// Reporting lag: usually short, occasionally long (this yields
		// the backward-latent errata of Figure 5).
		lagMonths := g.rng.Intn(6)
		if g.rng.Float64() < 0.10 {
			lagMonths += 6 + g.rng.Intn(30)
		}
		report = report.AddDate(0, lagMonths, 0)
		if last := revisions[len(revisions)-1].Date; report.After(last) {
			report = last
		}
		occs = append(occs, occurrence{lin: l, report: report, rev: revisionFor(revisions, report)})
	}
	sort.SliceStable(occs, func(i, j int) bool {
		if occs[i].rev != occs[j].rev {
			return occs[i].rev < occs[j].rev
		}
		if !occs[i].report.Equal(occs[j].report) {
			return occs[i].report.Before(occs[j].report)
		}
		return occs[i].lin.Key < occs[j].lin.Key
	})

	// AMD entries are ordered by their global numeric identifier, which
	// correlates with (but does not equal) addition order.
	if doc.Vendor == core.AMD {
		sort.SliceStable(occs, func(i, j int) bool {
			return numLess(amdID[occs[i].lin.Key], amdID[occs[j].lin.Key])
		})
	}

	for i, oc := range occs {
		seq := i + 1
		id := amdID[oc.lin.Key]
		if doc.Vendor == core.Intel {
			id = fmt.Sprintf("%s%03d", p.Prefix, seq)
		}
		text := texts[oc.lin.Key]
		title := text.title
		// The title variant goes to the chronologically last occurrence
		// of the lineage.
		if variantSet[oc.lin.Key] && p.Key == oc.lin.Docs[len(oc.lin.Docs)-1] && text.variant != "" {
			title = text.variant
		}
		ann := anns[oc.lin.Key]
		e := &core.Erratum{
			DocKey:        p.Key,
			ID:            id,
			Seq:           seq,
			Title:         title,
			Description:   text.description,
			Implication:   text.implication,
			AddedIn:       oc.rev,
			Key:           oc.lin.Key,
			Ann:           ann.Clone(),
			WorkaroundCat: g.sampleWorkaroundCat(doc.Vendor),
			Fix:           g.sampleFix(doc.Vendor, p.GenIndex),
		}
		// Workaround and status text follow the sampled categories.
		e.Workaround = g.pickString(workaroundTexts[e.WorkaroundCat.String()])
		e.Status = g.pickString(statusTexts[e.Fix.String()])
		doc.Errata = append(doc.Errata, e)
		if rev := doc.Revision(oc.rev); rev != nil {
			rev.Added = append(rev.Added, id)
		}
		if variantSet[oc.lin.Key] && title != text.title {
			// Record the confirmed pair: first occurrence vs variant.
			gt.ConfirmedPairs = append(gt.ConfirmedPairs, [2]string{
				oc.lin.Key, EntryRef(e),
			})
		}
	}
	return doc
}

func vendorOf(p DocProfile) core.Vendor {
	if p.Intel {
		return core.Intel
	}
	return core.AMD
}

func (g *generator) orderOf(p DocProfile) int {
	list := g.spec.AMDDocs
	if p.Intel {
		list = g.spec.IntelDocs
	}
	for i := range list {
		if list[i].Key == p.Key {
			return i
		}
	}
	return -1
}

func numLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// revisionFor returns the number of the first revision whose date is not
// before the given date (clamped to the last revision).
func revisionFor(revisions []core.Revision, date time.Time) int {
	for _, r := range revisions {
		if !r.Date.Before(date) {
			return r.Number
		}
	}
	return revisions[len(revisions)-1].Number
}

// sampleWorkaroundCat draws a workaround category per Figure 6.
func (g *generator) sampleWorkaroundCat(v core.Vendor) core.WorkaroundCategory {
	table := g.spec.WorkaroundWeightsIntel
	if v == core.AMD {
		table = g.spec.WorkaroundWeightsAMD
	}
	id := g.pickWeighted(table, nil)
	cat, err := core.ParseWorkaroundCategory(id)
	if err != nil {
		return core.WorkaroundNone
	}
	return cat
}

// sampleFix draws a fix status per Figure 7; the Intel fixed fraction
// grows weakly with the generation index.
func (g *generator) sampleFix(v core.Vendor, genIndex int) core.FixStatus {
	mult := func(id string) float64 {
		if v == core.Intel && id == "Fixed" {
			return 1.0 + float64(genIndex)*0.12
		}
		if v == core.AMD && id == "Fixed" {
			return 0.7
		}
		return 1
	}
	id := g.pickWeighted(g.spec.FixWeights, mult)
	st, err := core.ParseFixStatus(id)
	if err != nil {
		return core.FixNone
	}
	return st
}

// injectIntraDocDuplicates duplicates reserved entries inside the chosen
// documents (11 pairs across 6 documents).
func (g *generator) injectIntraDocDuplicates(gt *GroundTruth, reserve map[string]int, anns map[string]core.Annotation) {
	keys := make([]string, 0, len(reserve))
	for k := range reserve {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, dk := range keys {
		doc := gt.DB.Docs[dk]
		if doc == nil || len(doc.Errata) == 0 {
			continue
		}
		for i := 0; i < reserve[dk]; i++ {
			// Duplicate a mid-document entry; repeated entries in real
			// documents are typically far apart.
			src := doc.Errata[g.rng.Intn(len(doc.Errata)/2+1)]
			dup := src.Clone()
			dup.Seq = len(doc.Errata) + 1
			dup.ID = fmt.Sprintf("%s%03d", g.profiles[dk].Prefix, dup.Seq)
			dup.AddedIn = doc.Revisions[len(doc.Revisions)-1].Number
			if rev := doc.Revision(dup.AddedIn); rev != nil {
				rev.Added = append(rev.Added, dup.ID)
			}
			doc.Errata = append(doc.Errata, dup)
			gt.Inventory.IntraDocDuplicates = append(gt.Inventory.IntraDocDuplicates,
				[2]string{EntryRef(src), EntryRef(dup)})
		}
	}
}

// injectRevisionErrors plants the revision-note inconsistencies: 8
// errata across 3 documents are claimed by two revisions, and 12 errata
// across 2 documents vanish from the notes entirely.
func (g *generator) injectRevisionErrors(gt *GroundTruth) {
	doubleDocs := []string{"intel-02d", "intel-05m", "intel-07"}
	counts := []int{3, 3, 2}
	for i, dk := range doubleDocs {
		doc := gt.DB.Docs[dk]
		if doc == nil || len(doc.Errata) == 0 {
			continue
		}
		for j := 0; j < counts[i]; j++ {
			e := doc.Errata[g.rng.Intn(len(doc.Errata))]
			if e.AddedIn >= len(doc.Revisions) {
				e = doc.Errata[0]
			}
			// Claim the same erratum again in a later revision.
			later := doc.Revision(e.AddedIn + 1)
			if later == nil {
				later = doc.LatestRevision()
			}
			later.Added = append(later.Added, e.ID)
			gt.Inventory.DoubleAddedRevisions = append(gt.Inventory.DoubleAddedRevisions, EntryRef(e))
		}
	}

	missingDocs := []string{"intel-03d", "amd-15h-00"}
	counts = []int{7, 5}
	for i, dk := range missingDocs {
		doc := gt.DB.Docs[dk]
		if doc == nil || len(doc.Errata) == 0 {
			continue
		}
		for j := 0; j < counts[i]; j++ {
			e := doc.Errata[g.rng.Intn(len(doc.Errata))]
			removed := false
			for r := range doc.Revisions {
				added := doc.Revisions[r].Added[:0]
				for _, id := range doc.Revisions[r].Added {
					if id == e.ID {
						removed = true
						continue
					}
					added = append(added, id)
				}
				doc.Revisions[r].Added = added
			}
			if removed {
				e.AddedIn = 0
				gt.Inventory.MissingFromNotes = append(gt.Inventory.MissingFromNotes, EntryRef(e))
			} else {
				j-- // already stripped by a previous iteration; retry
			}
		}
	}
}

// injectReusedName makes one document reuse an erratum name for two
// different errata (the AAJ143 case).
func (g *generator) injectReusedName(gt *GroundTruth) {
	doc := gt.DB.Docs["intel-01d"]
	if doc == nil || len(doc.Errata) < 2 {
		return
	}
	a := doc.Errata[g.rng.Intn(len(doc.Errata)-1)]
	var b *core.Erratum
	for _, e := range doc.Errata {
		if e.Key != a.Key {
			b = e
			break
		}
	}
	if b == nil {
		return
	}
	oldID := b.ID
	b.ID = a.ID
	// The revision notes now also refer to the reused name.
	for r := range doc.Revisions {
		for i, id := range doc.Revisions[r].Added {
			if id == oldID {
				doc.Revisions[r].Added[i] = a.ID
			}
		}
	}
	gt.Inventory.ReusedName = [2]string{EntryRef(a), EntryRef(b)}
}

// injectFieldErrors removes or duplicates fields on 7 errata across 4
// documents.
func (g *generator) injectFieldErrors(gt *GroundTruth) {
	plan := []struct {
		doc   string
		field string
		kind  string
	}{
		{"intel-04d", "Implication", "missing"},
		{"intel-04d", "Workaround", "missing"},
		{"intel-06", "Status", "missing"},
		{"intel-06", "Workaround", "duplicate"},
		{"amd-16h-00", "Implication", "duplicate"},
		{"amd-16h-00", "Implication", "missing"},
		{"intel-10", "Status", "duplicate"},
	}
	for _, p := range plan {
		doc := gt.DB.Docs[p.doc]
		if doc == nil || len(doc.Errata) == 0 {
			continue
		}
		e := doc.Errata[g.rng.Intn(len(doc.Errata))]
		if p.kind == "missing" {
			switch p.field {
			case "Implication":
				e.Implication = ""
			case "Workaround":
				e.Workaround = ""
				e.WorkaroundCat = core.WorkaroundNone
			case "Status":
				e.Status = ""
				e.Fix = core.FixNone
			}
		}
		gt.Inventory.FieldErrors = append(gt.Inventory.FieldErrors, FieldError{
			Ref: EntryRef(e), Field: p.field, Kind: p.kind,
		})
	}
}

// markSimulationOnly flags one Intel and five AMD lineages as only
// observable in simulation, appending the corresponding sentence to
// every occurrence.
func (g *generator) markSimulationOnly(gt *GroundTruth) {
	plan := []struct {
		doc string
		n   int
	}{
		{"intel-06", 1},
		{"amd-15h-00", 2}, {"amd-17h-00", 2}, {"amd-19h-00", 1},
	}
	marked := map[string]bool{}
	for _, p := range plan {
		doc := gt.DB.Docs[p.doc]
		if doc == nil || len(doc.Errata) == 0 {
			continue
		}
		placed := 0
		for attempts := 0; placed < p.n && attempts < 200; attempts++ {
			e := doc.Errata[g.rng.Intn(len(doc.Errata))]
			if marked[e.Key] {
				continue
			}
			marked[e.Key] = true
			placed++
			// Flag every occurrence of the lineage consistently.
			for _, other := range gt.DB.Errata() {
				if other.Key == e.Key {
					other.Ann.SimulationOnly = true
					other.Description += " " + simulationOnlySentence
				}
			}
		}
	}
}

// injectWrongMSRs plants erroneous MSR numbers in the descriptions of 3
// errata across 3 documents.
func (g *generator) injectWrongMSRs(gt *GroundTruth) {
	for _, dk := range []string{"intel-02m", "intel-08", "amd-17h-00"} {
		doc := gt.DB.Docs[dk]
		if doc == nil || len(doc.Errata) == 0 {
			continue
		}
		e := doc.Errata[g.rng.Intn(len(doc.Errata))]
		e.Description += " The erroneous value is latched in MSR 0xFFFF_FFFF."
		gt.Inventory.WrongMSRNumbers = append(gt.Inventory.WrongMSRNumbers, EntryRef(e))
	}
}
