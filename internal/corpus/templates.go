package corpus

// Phrase banks used to synthesize the human-language erratum text from a
// ground-truth annotation. Each abstract category has several concrete
// phrasings; the first phrasings carry distinctive keywords that the
// regex-based auto-classifier can match, while the last one in each bank
// is deliberately vaguer so that a share of the corpus requires human
// (simulated-annotator) decisions, as in the paper.

// triggerPhrases maps an abstract trigger category to concrete-level
// phrasings. Placeholders: none; phrases are complete clauses that fit
// the pattern "When <clause>, ...".
var triggerPhrases = map[string][]string{
	"Trg_MBR_cbr": {
		"a locked data access spans a cache line boundary",
		"a data operation crosses a cache line boundary",
		"an unaligned store straddles two cache lines",
	},
	"Trg_MBR_pgb": {
		"a load operation crosses a page boundary",
		"a data access spans a 4-KByte page boundary",
		"an operand straddles two pages",
	},
	"Trg_MBR_mbr": {
		"an access reaches the canonical address boundary",
		"a data operation crosses a memory map boundary",
		"an address wraps at the memory map limit",
	},
	"Trg_MOP_mmp": {
		"software accesses a memory-mapped I/O range",
		"a write targets a memory-mapped register of the device",
		"an access to the memory-mapped element occurs",
	},
	"Trg_MOP_atp": {
		"a locked atomic operation is executed",
		"a transactional memory region aborts",
		"an atomic read-modify-write is in flight",
	},
	"Trg_MOP_fen": {
		"a memory fence instruction is executed",
		"a serializing instruction retires between the two operations",
		"an MFENCE separates the two stores",
	},
	"Trg_MOP_seg": {
		"a segment with a non-zero base is used",
		"the segment mode changes between accesses",
		"a segment limit condition is met",
	},
	"Trg_MOP_ptw": {
		"the core performs a page table walk",
		"a page table walk is in progress",
		"the translation requires a table walk",
	},
	"Trg_MOP_nst": {
		"an address is translated through nested page tables",
		"a nested translation is performed for the guest",
		"the nested paging structures are traversed",
	},
	"Trg_MOP_flc": {
		"a cache line flush instruction is executed",
		"the TLB entry is flushed by an invalidation",
		"software flushes the affected line",
	},
	"Trg_MOP_spe": {
		"a speculative memory operation is issued",
		"a load executes speculatively past the branch",
		"the access happens under speculation",
	},
	"Trg_FLT_ovf": {
		"a performance counter overflow occurs",
		"the counter overflows while raising an interrupt",
		"an overflow condition is signaled",
	},
	"Trg_FLT_tmr": {
		"an APIC timer event expires",
		"a timer interrupt arrives at the boundary",
		"the periodic timer fires",
	},
	"Trg_FLT_mca": {
		"a machine check exception is being delivered",
		"a machine check event is logged concurrently",
		"an MCA error is signaled",
	},
	"Trg_FLT_ill": {
		"an illegal instruction is decoded",
		"an undefined opcode raises #UD",
		"an invalid instruction encoding is fetched",
	},
	"Trg_PRV_ret": {
		"the processor resumes from System Management Mode via RSM",
		"a return from SMM occurs",
		"execution resumes from the management handler",
	},
	"Trg_PRV_vmt": {
		"a VM entry or VM exit transition occurs",
		"the processor transitions from hypervisor to guest",
		"a world switch to the guest is performed",
	},
	"Trg_CFG_pag": {
		"the paging mode is changed by writing CR0 or CR4",
		"a paging structure entry is modified",
		"software toggles a paging mechanism control",
	},
	"Trg_CFG_vmc": {
		"a VMCS field is written with an inconsistent value",
		"the virtual machine control structure is reconfigured",
		"a virtualization control setting is updated",
	},
	"Trg_CFG_wrg": {
		"software writes a model specific register with a reserved encoding",
		"a configuration register interaction occurs through WRMSR",
		"an MSR write changes the configuration",
		"the configuration register is programmed",
	},
	"Trg_POW_pwc": {
		"the core resumes from the C6 power state",
		"a transition between package power states occurs",
		"the processor enters or exits a low-power C-state",
		"a power state change is requested",
	},
	"Trg_POW_tht": {
		"thermal throttling engages under load",
		"the power supply conditions change abruptly",
		"a thermal event causes frequency throttling",
		"operating conditions cross the throttle point",
	},
	"Trg_EXT_rst": {
		"a warm reset is applied to the processor",
		"a cold reset occurs during the operation",
		"the reset signal is asserted",
	},
	"Trg_EXT_pci": {
		"ongoing PCIe traffic is present on the link",
		"a PCIe device issues a peer-to-peer transaction",
		"the PCI Express link retrains",
	},
	"Trg_EXT_usb": {
		"a USB device is attached during the transfer",
		"the xHCI controller processes a USB transaction",
		"USB traffic is active on the port",
	},
	"Trg_EXT_ram": {
		"a specific DRAM configuration with mixed ranks is populated",
		"the DDR interface operates at the boundary frequency",
		"the memory is configured in the affected mode",
	},
	"Trg_EXT_iom": {
		"a device access is translated through the IOMMU",
		"an IOMMU page table lookup is performed",
		"DMA remapping is active for the device",
	},
	"Trg_EXT_bus": {
		"a HyperTransport link transaction is pending",
		"the QPI system bus carries a snoop",
		"a system bus interaction is outstanding",
	},
	"Trg_FEA_fpu": {
		"an x87 floating-point instruction executes",
		"an FSAVE or FNSTENV instruction stores the x87 environment",
		"a floating-point operation with an unmasked exception retires",
	},
	"Trg_FEA_dbg": {
		"a hardware breakpoint on the debug registers is armed",
		"single-stepping with the trap flag is enabled",
		"a debug feature intercepts the instruction",
	},
	"Trg_FEA_cid": {
		"the CPUID instruction reports the feature leaf",
		"software queries the design identification",
		"a CPUID report is consumed by the sequence",
	},
	"Trg_FEA_mon": {
		"a MONITOR/MWAIT pair is armed",
		"the monitored address range is written",
		"an MWAIT wakes the logical processor",
	},
	"Trg_FEA_tra": {
		"processor trace packet generation is enabled",
		"a tracing feature records the branch",
		"the trace buffer is being written",
	},
	"Trg_FEA_cus": {
		"an SSE or MMX instruction with a specific operand pattern executes",
		"the specific extension feature is operated",
		"a custom feature sequence is performed",
	},
}

// contextPhrases maps abstract context categories to concrete phrasings
// that fit "while <clause>".
var contextPhrases = map[string][]string{
	"Ctx_PRV_boo": {
		"the platform is booting and executing BIOS code",
		"the system is in the UEFI initialization phase",
		"early firmware initialization is in progress",
	},
	"Ctx_PRV_vmg": {
		"running as a virtual machine guest",
		"executing inside a hardware virtualized guest",
		"the code operates in guest mode",
	},
	"Ctx_PRV_rea": {
		"operating in real-address mode or virtual-8086 mode",
		"the processor runs in real mode",
		"legacy real-mode execution is active",
	},
	"Ctx_PRV_vmh": {
		"operating as the hypervisor",
		"executing in VMX root operation",
		"host mode is active",
	},
	"Ctx_PRV_smm": {
		"executing in System Management Mode",
		"the SMM handler is running",
		"management mode is active",
	},
	"Ctx_FEA_sec": {
		"a security feature such as SGX or SVM is enabled",
		"the secure enclave mode is in use",
		"the security extension is active",
	},
	"Ctx_FEA_sgc": {
		"running in a single-core configuration",
		"only one core is enabled on the die",
		"the part operates with a single active core",
	},
	"Ctx_PHY_pkg": {
		"using the affected package variant",
		"on packages with the specific ball-out",
		"with the affected package option",
	},
	"Ctx_PHY_tmp": {
		"operating at a low ambient temperature",
		"under the specific temperature condition",
		"when the die temperature is in the affected range",
	},
	"Ctx_PHY_vol": {
		"at the minimum operating voltage",
		"under the specific voltage condition",
		"when the supply voltage is marginal",
	},
}

// effectPhrases maps abstract effect categories to concrete phrasings
// that fit "the processor may <clause>" or standalone sentences.
var effectPhrases = map[string][]string{
	"Eff_HNG_unp": {
		"unpredictable system behavior may occur",
		"the results of the operation may be incorrect",
		"the system may behave unexpectedly",
	},
	"Eff_HNG_hng": {
		"the processor may hang",
		"a system hang may be observed",
		"the part may stop responding",
	},
	"Eff_HNG_crh": {
		"the processor may crash",
		"an unrecoverable crash may result",
		"the system may go down",
	},
	"Eff_HNG_boo": {
		"the system may fail to boot",
		"a boot failure may be observed",
		"the platform may not complete POST",
	},
	"Eff_FLT_mca": {
		"a machine check exception may be signaled",
		"an MCA error may be reported",
		"the machine check architecture may log an event",
	},
	"Eff_FLT_unc": {
		"an uncorrectable error may be reported",
		"an uncorrected error may be logged",
		"data with an uncorrectable fault may be consumed",
	},
	"Eff_FLT_fsp": {
		"a spurious page fault may be reported",
		"one or multiple spurious faults may be delivered",
		"an unexpected exception may be raised",
	},
	"Eff_FLT_fms": {
		"an expected fault may be missing",
		"the fault may not be delivered",
		"a required exception may be suppressed",
	},
	"Eff_FLT_fid": {
		"a fault with a wrong error code may be delivered",
		"the fault identifier or ordering may be incorrect",
		"exceptions may be reported in the wrong order",
	},
	"Eff_CRP_prf": {
		"a performance counter may report a wrong value",
		"performance monitoring counters may be inaccurate",
		"the counter value may be corrupted",
	},
	"Eff_CRP_reg": {
		"the MSR may contain a wrong value",
		"a model specific register may be corrupted",
		"the register state may be incorrect after the sequence",
	},
	"Eff_EXT_pci": {
		"malformed transactions may be observed on the PCIe side",
		"the PCIe link may enter an erroneous state",
		"devices may observe protocol violations",
	},
	"Eff_EXT_usb": {
		"USB transfers may be dropped",
		"issues may be observable on the USB side",
		"the USB port may misbehave",
	},
	"Eff_EXT_mmd": {
		"audio or graphics corruption may be visible",
		"multimedia issues may be observed",
		"display artifacts may appear",
	},
	"Eff_EXT_ram": {
		"abnormal DRAM interactions may be observed",
		"memory training may fail",
		"the DDR interface may violate timing",
	},
	"Eff_EXT_pow": {
		"abnormal power consumption may be measured",
		"the package may draw excessive power",
		"power consumption may exceed specification",
	},
}

// titleFragments provides, per effect category, a title-style fragment
// used to compose erratum titles ("<Subject> May <Fragment>").
var titleFragments = map[string][]string{
	"Eff_HNG_unp": {"Lead to Unpredictable System Behavior", "Produce Incorrect Results"},
	"Eff_HNG_hng": {"Cause a System Hang", "Hang"},
	"Eff_HNG_crh": {"Crash", "Cause an Unrecoverable Failure"},
	"Eff_HNG_boo": {"Prevent the System From Booting", "Cause a Boot Failure"},
	"Eff_FLT_mca": {"Signal a Machine Check Exception", "Log an Erroneous Machine Check"},
	"Eff_FLT_unc": {"Report an Uncorrectable Error"},
	"Eff_FLT_fsp": {"Report a Spurious Fault", "Deliver an Unexpected Exception"},
	"Eff_FLT_fms": {"Fail to Deliver an Expected Fault", "Suppress a Required Exception"},
	"Eff_FLT_fid": {"Deliver a Fault With a Wrong Error Code", "Report Exceptions in the Wrong Order"},
	"Eff_CRP_prf": {"Report Incorrect Performance Counter Values", "Corrupt Performance Monitoring Counters"},
	"Eff_CRP_reg": {"Be Saved Incorrectly", "Contain a Wrong Value", "Be Corrupted"},
	"Eff_EXT_pci": {"Produce Malformed PCIe Transactions", "Violate the PCIe Protocol"},
	"Eff_EXT_usb": {"Drop USB Transfers", "Cause USB Port Issues"},
	"Eff_EXT_mmd": {"Cause Display Artifacts", "Corrupt Audio Output"},
	"Eff_EXT_ram": {"Cause Abnormal DRAM Interactions", "Fail Memory Training"},
	"Eff_EXT_pow": {"Draw Excessive Power", "Exceed Power Specifications"},
}

// titleSubjects provides, per trigger class, a subject for erratum
// titles.
var titleSubjects = map[string][]string{
	"Trg_MBR": {"Boundary-Crossing Accesses", "Unaligned Operations"},
	"Trg_MOP": {"Certain Memory Operations", "Memory Accesses Under Specific Conditions"},
	"Trg_FLT": {"Concurrent Exception Conditions", "Certain Fault Sequences"},
	"Trg_PRV": {"Privilege Transitions", "Mode Switches"},
	"Trg_CFG": {"Specific Configuration Sequences", "Certain MSR Writes"},
	"Trg_POW": {"Power State Transitions", "Thermal Conditions"},
	"Trg_EXT": {"External Device Interactions", "Platform-Level Events"},
	"Trg_FEA": {"Use of Specific Features", "Certain Instruction Sequences"},
}

// workaroundTexts gives the workaround field text per category. The
// classifier for Figure 6 keys on these formulations.
var workaroundTexts = map[string][]string{
	"None": {
		"None identified.",
		"None identified. Software should not rely on the affected behavior.",
	},
	"BIOS": {
		"It is possible for the BIOS to contain a workaround for this erratum.",
		"A BIOS code change has been identified and may be implemented as a workaround for this erratum.",
	},
	"Software": {
		"System software may contain the workaround for this erratum.",
		"Software should avoid the described sequence to work around this erratum.",
	},
	"Peripherals": {
		"The attached device must tolerate the described behavior as a workaround.",
		"Peripheral firmware may contain the workaround for this erratum.",
	},
	"Absent": {
		"Contact your Intel representative for information on a BIOS update.",
		"Contact your AMD representative for available workaround information.",
	},
	"DocumentationFix": {
		"The documentation will be updated to reflect the intended behavior; this is a documentation fix.",
	},
}

// statusTexts gives the status field text per fix status.
var statusTexts = map[string][]string{
	"NoFixPlanned": {
		"No fix planned.",
		"For the steppings affected, refer to the Summary Table of Changes. No fix.",
	},
	"FixPlanned": {
		"A fix is planned for a future stepping.",
		"Planned to be fixed in a subsequent revision.",
	},
	"Fixed": {
		"Fixed in stepping B0.",
		"This erratum is fixed in the latest stepping.",
	},
}

// complexConditionSentences flag the "complex set of conditions" errata.
var complexConditionSentences = []string{
	"Under a highly specific and detailed set of internal timing conditions, this erratum may occur.",
	"Due to a complex set of internal conditions, the described behavior may be observed.",
	"This erratum occurs under a complex set of conditions.",
}

// trivialTriggerSentences describe errata without a clear trigger.
var trivialTriggerSentences = []string{
	"During normal operation with ordinary load and store activity, the described behavior may occur.",
	"Under intense workloads, the described behavior may be observed.",
	"In the course of routine execution, this erratum may occur.",
}

// implicationLeads introduce the implication field.
var implicationLeads = []string{
	"Software that depends on the affected behavior may not operate properly.",
	"The system may be affected as described.",
	"Due to this erratum, the platform may be impacted.",
}

// notObservedSentence mirrors the common vendor statement.
const notObservedSentence = "The vendor has not observed this erratum with any commercially available software."

// simulationOnlySentence marks bugs only reproduced in design
// simulation (five AMD and one Intel erratum in the paper).
const simulationOnlySentence = "This erratum has only been observed in simulation."
