package corpus

// The test binary is its own composition root: generating requires the
// default corpus profile. The calibration targets and document lists of
// the built-in profile are re-bound under their historical in-package
// names so the calibration tests read naturally.
import (
	intelamd "repro/plugins/corpusprofile/intelamd"
	_ "repro/plugins/defaults"
)

const (
	TargetIntelTotal  = intelamd.TargetIntelTotal
	TargetIntelUnique = intelamd.TargetIntelUnique
	TargetAMDTotal    = intelamd.TargetAMDTotal
	TargetAMDUnique   = intelamd.TargetAMDUnique
	TargetTotal       = intelamd.TargetTotal
	TargetUnique      = intelamd.TargetUnique

	SharedGens6To10   = intelamd.SharedGens6To10
	LineagesCore1To10 = intelamd.LineagesCore1To10

	ComplexConditionFractionIntel = intelamd.ComplexConditionFractionIntel
	ComplexConditionFractionAMD   = intelamd.ComplexConditionFractionAMD
	TrivialTriggerFraction        = intelamd.TrivialTriggerFraction
	NoWorkaroundFractionIntel     = intelamd.NoWorkaroundFractionIntel
	NoWorkaroundFractionAMD       = intelamd.NoWorkaroundFractionAMD
)

var (
	IntelProfiles = intelamd.IntelDocs
	AMDProfiles   = intelamd.AMDDocs
)
