package corpus

import "repro/internal/taxonomy"

// PhraseBanks exposes the concrete-level phrase banks per kind and
// abstract category. The classify package's rule tests verify coverage
// (every phrase is matched by its category's rules) and exclusivity (no
// strong rule of a sibling category matches) against these banks.
func PhraseBanks() map[taxonomy.Kind]map[string][]string {
	copyBank := func(src map[string][]string) map[string][]string {
		out := make(map[string][]string, len(src))
		for k, v := range src {
			out[k] = append([]string(nil), v...)
		}
		return out
	}
	return map[taxonomy.Kind]map[string][]string{
		taxonomy.Trigger: copyBank(triggerPhrases),
		taxonomy.Context: copyBank(contextPhrases),
		taxonomy.Effect:  copyBank(effectPhrases),
	}
}

// WorkaroundTextBank exposes the workaround formulations per category.
func WorkaroundTextBank() map[string][]string {
	out := make(map[string][]string, len(workaroundTexts))
	for k, v := range workaroundTexts {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// StatusTextBank exposes the status formulations per fix status.
func StatusTextBank() map[string][]string {
	out := make(map[string][]string, len(statusTexts))
	for k, v := range statusTexts {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// TrivialTriggerSentences exposes the trivial-trigger formulations.
func TrivialTriggerSentences() []string {
	return append([]string(nil), trivialTriggerSentences...)
}

// ComplexConditionSentences exposes the complex-condition formulations.
func ComplexConditionSentences() []string {
	return append([]string(nil), complexConditionSentences...)
}
