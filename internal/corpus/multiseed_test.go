package corpus

import (
	"testing"

	"repro/internal/core"
)

// TestMultiSeedInvariants generates the corpus under several seeds and
// checks the invariants every downstream stage relies on: exact totals,
// heredity constraints, per-lineage ID sharing, and well-formed
// annotations. The default seed is covered extensively elsewhere; this
// test guards against seed-dependent generator bugs.
func TestMultiSeedInvariants(t *testing.T) {
	for _, seed := range []int64{2, 5, 123, 9999} {
		gt, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := gt.DB.ComputeStats()
		if st.Total != TargetTotal || st.Unique != TargetUnique {
			t.Errorf("seed %d: totals %d/%d", seed, st.Total, st.Unique)
		}
		if st.IntelUnique != TargetIntelUnique || st.AMDUnique != TargetAMDUnique {
			t.Errorf("seed %d: uniques %d/%d", seed, st.IntelUnique, st.AMDUnique)
		}
		if got := len(gt.ConfirmedPairs); got != 29 {
			t.Errorf("seed %d: variant pairs = %d", seed, got)
		}
		if got := len(gt.Inventory.IntraDocDuplicates); got != 11 {
			t.Errorf("seed %d: intra-doc duplicates = %d", seed, got)
		}

		// Titles never collide across lineages.
		seen := map[string]string{}
		for _, e := range gt.DB.Errata() {
			n := normTitle(e.Title)
			if prev, ok := seen[n]; ok && prev != e.Key {
				t.Fatalf("seed %d: lineages %s/%s share title %q", seed, prev, e.Key, e.Title)
			}
			seen[n] = e.Key
		}

		// AMD IDs are shared per lineage and unique across lineages.
		idByKey := map[string]string{}
		for _, d := range gt.DB.VendorDocuments(core.AMD) {
			for _, e := range d.Errata {
				if prev, ok := idByKey[e.Key]; ok && prev != e.ID {
					t.Fatalf("seed %d: AMD lineage %s has two IDs", seed, e.Key)
				}
				idByKey[e.Key] = e.ID
			}
		}

		// The heredity pins hold under every seed.
		shared := sharedBy(gt, "intel-06", "intel-07", "intel-08", "intel-10")
		if shared != SharedGens6To10 {
			t.Errorf("seed %d: gens 6-10 shared = %d", seed, shared)
		}

		if err := gt.DB.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func sharedBy(gt *GroundTruth, docs ...string) int {
	count := map[string]int{}
	for _, dk := range docs {
		seen := map[string]bool{}
		for _, e := range gt.DB.Docs[dk].Errata {
			if !seen[e.Key] {
				seen[e.Key] = true
				count[e.Key]++
			}
		}
	}
	n := 0
	for _, c := range count {
		if c == len(docs) {
			n++
		}
	}
	return n
}
