package index

import (
	"fmt"

	"repro/internal/core"
)

// Parts is the complete structural state of an Index in exported form:
// every postings family, the precomputed flag sets and trigger counts,
// and the unique-representative ordinals. It exists so the index can be
// persisted alongside the database (the FormatVersion 2 store embeds it
// as flat arrays) and reconstructed by FromParts without re-walking any
// annotation — the postings-level half of a zero-decode cold open.
//
// Ordinals are positions in db.Errata() order, exactly as Build
// produces them. A Parts value extracted from an index built over db is
// only meaningful for a database whose Errata() order is identical.
type Parts struct {
	UniqueOrds   []int
	ByVendor     map[core.Vendor][]int
	ByDoc        map[string][]int
	ByCategory   map[string][]int
	ByTriggerCat map[string][]int
	ByClass      map[string][]int
	ByKey        map[string][]int
	ByWorkaround map[core.WorkaroundCategory][]int
	ByFix        map[core.FixStatus][]int
	ByMSR        map[string][]int
	ComplexSet   []int
	SimOnlySet   []int
	TriggerCount []int
}

// Parts extracts the index's structural state as flat slices. For a
// heap-built index (Build, MergeDelta, FromParts) the slices and map
// values alias the index's internals and the caller must treat them as
// read-only, exactly like query results; for a span-backed index
// (FromLists over a mapped store) each list is materialized into the
// heap, since Parts is the persistence carrier and must outlive any
// mapping.
func (ix *Index) Parts() *Parts {
	return &Parts{
		UniqueOrds:   toInts(ix.uniqueOrds),
		ByVendor:     partsMap(ix.byVendor),
		ByDoc:        partsMap(ix.byDoc),
		ByCategory:   partsMap(ix.byCategory),
		ByTriggerCat: partsMap(ix.byTriggerCat),
		ByClass:      partsMap(ix.byClass),
		ByKey:        partsMap(ix.byKey),
		ByWorkaround: partsMap(ix.byWorkaround),
		ByFix:        partsMap(ix.byFix),
		ByMSR:        partsMap(ix.byMSR),
		ComplexSet:   toInts(ix.complexSet),
		SimOnlySet:   toInts(ix.simOnlySet),
		TriggerCount: toInts(ix.triggerCount),
	}
}

func partsMap[K comparable](m map[K]List) map[K][]int {
	out := make(map[K][]int, len(m))
	for k, l := range m {
		out[k] = toInts(l)
	}
	return out
}

func listsMap[K comparable](m map[K][]int) map[K]List {
	out := make(map[K]List, len(m))
	for k, l := range m {
		out[k] = Ords(l)
	}
	return out
}

// FromParts reconstructs an Index over db from previously extracted
// parts, skipping the per-entry annotation walk Build performs. The
// parts must describe an index over a database with the same Errata()
// order (the store's v2 decoder guarantees this by checksumming the
// records and postings together); only the cheap structural invariant —
// one trigger count per entry, every ordinal in range — is re-checked
// here. db must not be mutated while the index is in use.
func FromParts(db *core.Database, p *Parts) (*Index, error) {
	errata := db.Errata()
	if len(p.TriggerCount) != len(errata) {
		return nil, fmt.Errorf("index: parts carry %d trigger counts for %d entries",
			len(p.TriggerCount), len(errata))
	}
	for _, ord := range p.UniqueOrds {
		if ord < 0 || ord >= len(errata) {
			return nil, fmt.Errorf("index: parts unique ordinal %d out of range [0,%d)", ord, len(errata))
		}
	}
	ix := &Index{
		db:           db,
		scheme:       db.Scheme,
		errata:       errata,
		uniqueOrds:   Ords(p.UniqueOrds),
		byVendor:     listsMap(p.ByVendor),
		byDoc:        listsMap(p.ByDoc),
		byCategory:   listsMap(p.ByCategory),
		byTriggerCat: listsMap(p.ByTriggerCat),
		byClass:      listsMap(p.ByClass),
		byKey:        listsMap(p.ByKey),
		byWorkaround: listsMap(p.ByWorkaround),
		byFix:        listsMap(p.ByFix),
		byMSR:        listsMap(p.ByMSR),
		complexSet:   Ords(p.ComplexSet),
		simOnlySet:   Ords(p.SimOnlySet),
		triggerCount: Ords(p.TriggerCount),
	}
	return ix, nil
}

// KeyList returns the postings list of ordinals bearing the given
// cluster key, absent keys yielding a nil List. The list is shared with
// the index and must be treated as read-only; unlike ByKey it performs
// no allocation, which the serving layer's fragment-stitched point
// lookup relies on.
func (ix *Index) KeyList(key string) List { return ix.byKey[key] }

// KeyOrds returns KeyList materialized as a heap slice.
//
// / Deprecated: use KeyList, which stays allocation-free for span-backed
// indexes too.
func (ix *Index) KeyOrds(key string) []int { return toInts(ix.byKey[key]) }

// Entry returns the entry at the given ordinal. The ordinal must come
// from this index's postings (KeyOrds or query results).
func (ix *Index) Entry(ord int) *core.Erratum { return ix.errata[ord] }
