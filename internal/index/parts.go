package index

import (
	"fmt"

	"repro/internal/core"
)

// Parts is the complete structural state of an Index in exported form:
// every postings family, the precomputed flag sets and trigger counts,
// and the unique-representative ordinals. It exists so the index can be
// persisted alongside the database (the FormatVersion 2 store embeds it
// as flat arrays) and reconstructed by FromParts without re-walking any
// annotation — the postings-level half of a zero-decode cold open.
//
// Ordinals are positions in db.Errata() order, exactly as Build
// produces them. A Parts value extracted from an index built over db is
// only meaningful for a database whose Errata() order is identical.
type Parts struct {
	UniqueOrds   []int
	ByVendor     map[core.Vendor][]int
	ByDoc        map[string][]int
	ByCategory   map[string][]int
	ByTriggerCat map[string][]int
	ByClass      map[string][]int
	ByKey        map[string][]int
	ByWorkaround map[core.WorkaroundCategory][]int
	ByFix        map[core.FixStatus][]int
	ByMSR        map[string][]int
	ComplexSet   []int
	SimOnlySet   []int
	TriggerCount []int
}

// Parts extracts the index's structural state. The returned maps and
// slices alias the index's internals: the caller must treat them as
// read-only, exactly like query results.
func (ix *Index) Parts() *Parts {
	return &Parts{
		UniqueOrds:   ix.uniqueOrds,
		ByVendor:     ix.byVendor,
		ByDoc:        ix.byDoc,
		ByCategory:   ix.byCategory,
		ByTriggerCat: ix.byTriggerCat,
		ByClass:      ix.byClass,
		ByKey:        ix.byKey,
		ByWorkaround: ix.byWorkaround,
		ByFix:        ix.byFix,
		ByMSR:        ix.byMSR,
		ComplexSet:   ix.complexSet,
		SimOnlySet:   ix.simOnlySet,
		TriggerCount: ix.triggerCount,
	}
}

// FromParts reconstructs an Index over db from previously extracted
// parts, skipping the per-entry annotation walk Build performs. The
// parts must describe an index over a database with the same Errata()
// order (the store's v2 decoder guarantees this by checksumming the
// records and postings together); only the cheap structural invariant —
// one trigger count per entry, every ordinal in range — is re-checked
// here. db must not be mutated while the index is in use.
func FromParts(db *core.Database, p *Parts) (*Index, error) {
	errata := db.Errata()
	if len(p.TriggerCount) != len(errata) {
		return nil, fmt.Errorf("index: parts carry %d trigger counts for %d entries",
			len(p.TriggerCount), len(errata))
	}
	for _, ord := range p.UniqueOrds {
		if ord < 0 || ord >= len(errata) {
			return nil, fmt.Errorf("index: parts unique ordinal %d out of range [0,%d)", ord, len(errata))
		}
	}
	ix := &Index{
		db:           db,
		scheme:       db.Scheme,
		errata:       errata,
		uniqueOrds:   p.UniqueOrds,
		byVendor:     p.ByVendor,
		byDoc:        p.ByDoc,
		byCategory:   p.ByCategory,
		byTriggerCat: p.ByTriggerCat,
		byClass:      p.ByClass,
		byKey:        p.ByKey,
		byWorkaround: p.ByWorkaround,
		byFix:        p.ByFix,
		byMSR:        p.ByMSR,
		complexSet:   p.ComplexSet,
		simOnlySet:   p.SimOnlySet,
		triggerCount: p.TriggerCount,
	}
	return ix, nil
}

// KeyOrds returns the postings list of ordinals bearing the given
// cluster key. The returned slice is shared with the index and must be
// treated as read-only; unlike ByKey it performs no allocation, which
// the serving layer's fragment-stitched point lookup relies on.
func (ix *Index) KeyOrds(key string) []int { return ix.byKey[key] }

// Entry returns the entry at the given ordinal. The ordinal must come
// from this index's postings (KeyOrds or query results).
func (ix *Index) Entry(ord int) *core.Erratum { return ix.errata[ord] }
