package index

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/obs"
)

// TestInstrumentedQueries checks that intersections and residual
// fallbacks are attributed to the registry and that instrumentation
// does not change query results.
func TestInstrumentedQueries(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	plain := Build(gt.DB)
	ix := Build(gt.DB)
	reg := obs.NewRegistry()
	ix.Instrument(reg)

	inters := reg.Counter("rememberr_index_intersections_total", "")
	resid := reg.Counter("rememberr_index_residual_filters_total", "")

	// Single postings list: no intersection, no residual.
	if got, want := ix.Query().Vendor(0).Count(), plain.Query().Vendor(0).Count(); got != want {
		t.Fatalf("instrumented count %d != plain %d", got, want)
	}
	if inters.Value() != 0 || resid.Value() != 0 {
		t.Fatalf("single-list query counted %d intersections, %d residuals", inters.Value(), resid.Value())
	}

	// Two postings lists intersect exactly once.
	ix.Query().Vendor(0).WithCategory("Eff_HNG_hng").Count()
	if inters.Value() != 1 {
		t.Fatalf("intersections = %d, want 1", inters.Value())
	}

	// A title filter is a residual predicate over every candidate.
	n := ix.Size()
	ix.Query().TitleContains("the").Count()
	if resid.Value() != int64(n) {
		t.Fatalf("residuals = %d, want %d (every entry scanned)", resid.Value(), n)
	}
}
