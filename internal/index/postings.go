package index

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// List is a read-only sorted postings list of erratum ordinals. Two
// implementations exist: Ords, a plain heap slice produced by
// Build/MergeDelta, and Span, a view over little-endian u32 bytes —
// typically a sub-slice of a FormatVersion 2 file mapping, so a
// span-backed index answers compound-filter queries by walking postings
// straight off the mapped file without ever copying them into the heap.
//
// Lists are immutable once published; every accessor is safe for
// concurrent readers.
type List interface {
	Len() int
	At(i int) int
}

// Ords is the heap-resident List: a sorted slice of ordinals.
type Ords []int

func (o Ords) Len() int     { return len(o) }
func (o Ords) At(i int) int { return o[i] }

// Span is a disk-resident List: little-endian u32 ordinals viewed in
// place, with no per-element heap state. Reading an element after the
// backing region is unmapped is undefined; the serving layer's region
// refcount (internal/store.Region) guarantees that never happens to an
// in-flight request.
type Span struct{ b []byte }

// NewSpan wraps raw little-endian u32 bytes as a postings list. The
// byte length must be a multiple of 4; the caller (the store's bounds
// validation) guarantees every element is a valid ordinal.
func NewSpan(b []byte) Span {
	if len(b)%4 != 0 {
		panic(fmt.Sprintf("index: span of %d bytes is not u32-aligned", len(b)))
	}
	return Span{b: b}
}

func (s Span) Len() int     { return len(s.b) / 4 }
func (s Span) At(i int) int { return int(binary.LittleEndian.Uint32(s.b[i*4:])) }

// toInts materializes a List as []int, aliasing the underlying slice
// when the list already lives in the heap.
func toInts(l List) []int {
	switch v := l.(type) {
	case nil:
		return nil
	case Ords:
		return v
	default:
		out := make([]int, l.Len())
		for i := range out {
			out[i] = l.At(i)
		}
		return out
	}
}

// apOrd appends one ordinal to a heap-resident list. Builders (Build,
// MergeDelta) only ever grow Ords; appending to a Span would mean
// mutating a file mapping and panics via the type assertion.
func apOrd(l List, ord int) List {
	o, _ := l.(Ords)
	return append(o, ord)
}

// pushOrd appends one ordinal to a postings map entry, creating it on
// first use.
func pushOrd[K comparable](m map[K]List, k K, ord int) {
	o, _ := m[k].(Ords)
	m[k] = append(o, ord)
}

// listLen is Len with a nil guard (map lookups of absent keys return a
// nil List).
func listLen(l List) int {
	if l == nil {
		return 0
	}
	return l.Len()
}

// intersectInto merges the sorted []int candidates with a sorted List
// into their intersection. The common Ords case degenerates to the
// two-slice walk; a Span is walked element-wise off its bytes.
func intersectInto(a []int, b List) []int {
	if o, ok := b.(Ords); ok {
		return intersect(a, o)
	}
	nb := b.Len()
	n := len(a)
	if nb < n {
		n = nb
	}
	out := make([]int, 0, n)
	i, j := 0, 0
	for i < len(a) && j < nb {
		bv := b.At(j)
		switch {
		case a[i] < bv:
			i++
		case a[i] > bv:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ListParts is the List-typed sibling of Parts: the complete structural
// state of an index with every postings family behind the List
// interface, so a FormatVersion 2 store can hand the index spans over
// its mapped ords section instead of materializing []int copies.
// FromLists is the only consumer; Parts stays the exported flat-slice
// carrier the encoder persists.
type ListParts struct {
	UniqueOrds   List
	ByVendor     map[core.Vendor]List
	ByDoc        map[string]List
	ByCategory   map[string]List
	ByTriggerCat map[string]List
	ByClass      map[string]List
	ByKey        map[string]List
	ByWorkaround map[core.WorkaroundCategory]List
	ByFix        map[core.FixStatus]List
	ByMSR        map[string]List
	ComplexSet   List
	SimOnlySet   List
	// TriggerCount holds per-ordinal trigger-category counts (values,
	// not ordinals), indexed positionally.
	TriggerCount List
}

// FromLists reconstructs an Index over db from List-typed parts —
// typically spans over a mapped FormatVersion 2 file — skipping both
// the annotation walk and the postings materialization. The same
// structural invariant FromParts checks is re-checked here; the store's
// open-time validation already bounds-checked every ordinal and sorted
// every list.
func FromLists(db *core.Database, p *ListParts) (*Index, error) {
	errata := db.Errata()
	if n := listLen(p.TriggerCount); n != len(errata) {
		return nil, fmt.Errorf("index: parts carry %d trigger counts for %d entries", n, len(errata))
	}
	for i, n := 0, listLen(p.UniqueOrds); i < n; i++ {
		if ord := p.UniqueOrds.At(i); ord < 0 || ord >= len(errata) {
			return nil, fmt.Errorf("index: parts unique ordinal %d out of range [0,%d)", ord, len(errata))
		}
	}
	ix := &Index{
		db:           db,
		scheme:       db.Scheme,
		errata:       errata,
		uniqueOrds:   p.UniqueOrds,
		byVendor:     p.ByVendor,
		byDoc:        p.ByDoc,
		byCategory:   p.ByCategory,
		byTriggerCat: p.ByTriggerCat,
		byClass:      p.ByClass,
		byKey:        p.ByKey,
		byWorkaround: p.ByWorkaround,
		byFix:        p.ByFix,
		byMSR:        p.ByMSR,
		complexSet:   p.ComplexSet,
		simOnlySet:   p.SimOnlySet,
		triggerCount: p.TriggerCount,
	}
	return ix, nil
}
