package index

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
)

// mustEqual fails unless the two indexes dump identically — the
// structural-equality oracle MergeDelta is specified against.
func mustEqual(t *testing.T, got, want *Index, what string) {
	t.Helper()
	g, w := got.DebugDump(), want.DebugDump()
	if !bytes.Equal(g, w) {
		gl, wl := bytes.Split(g, []byte("\n")), bytes.Split(w, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("%s: dump line %d:\n got %s\nwant %s", what, i, gl[i], wl[i])
			}
		}
		t.Fatalf("%s: dumps differ in length (%d vs %d lines)", what, len(gl), len(wl))
	}
}

// shareDB returns a database holding the same document pointers as db,
// minus the listed keys — the deletion shape of a delta.
func shareDB(t *testing.T, db *core.Database, drop ...string) *core.Database {
	t.Helper()
	next := core.NewDatabase()
	next.Scheme = db.Scheme
	gone := make(map[string]bool, len(drop))
	for _, k := range drop {
		gone[k] = true
	}
	for k, d := range db.Docs {
		if !gone[k] {
			next.Docs[k] = d
		}
	}
	return next
}

func TestMergeDeltaNilPrevEqualsBuild(t *testing.T) {
	db := smallDB(t)
	mustEqual(t, MergeDelta(nil, db), Build(db), "nil prev")
}

func TestMergeDeltaNoChange(t *testing.T) {
	db := smallDB(t)
	prev := Build(db)
	mustEqual(t, MergeDelta(prev, shareDB(t, db)), Build(db), "identity delta")
}

func TestMergeDeltaAddDocument(t *testing.T) {
	db := smallDB(t)
	prev := Build(db)
	next := shareDB(t, db)
	if err := next.Add(&core.Document{
		Key: "intel-03", Vendor: core.Intel, Label: "3", Order: 2,
		Released: time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC),
		Errata: []*core.Erratum{
			{
				DocKey: "intel-03", ID: "CCC001", Seq: 1, Key: "k3",
				Title: "New cache coherency issue",
				Fix:   core.FixDone,
				Ann: core.Annotation{
					Triggers:          []core.Item{{Category: "Trg_MOP_fen"}},
					Effects:           []core.Item{{Category: "Eff_HNG_hng"}},
					MSRs:              []string{"MCx_STATUS"},
					ComplexConditions: true,
				},
			},
			// A new occurrence of an existing cluster: postings for k1
			// must union the remapped and the fresh ordinals.
			{
				DocKey: "intel-03", ID: "CCC002", Seq: 2, Key: "k1",
				Title: "Power state hang",
				Ann: core.Annotation{
					Triggers: []core.Item{{Category: "Trg_POW_pwc"}},
					Effects:  []core.Item{{Category: "Eff_HNG_hng"}},
				},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	mustEqual(t, MergeDelta(prev, next), Build(next), "add document")
}

func TestMergeDeltaRemoveDocument(t *testing.T) {
	db := smallDB(t)
	prev := Build(db)
	next := shareDB(t, db, "intel-01")
	mustEqual(t, MergeDelta(prev, next), Build(next), "remove document")
}

// TestMergeDeltaRelabelClone exercises the clone-on-change half of the
// sharing contract: an entry whose cluster key must change is cloned
// (document shallow-copied), the stale pointer drops out of the remap,
// and the clone is indexed as a new entry.
func TestMergeDeltaRelabelClone(t *testing.T) {
	db := smallDB(t)
	prev := Build(db)
	next := shareDB(t, db)
	old := next.Docs["intel-02"]
	renamed := old.Errata[0].Clone()
	renamed.Key = "k9"
	dc := *old
	dc.Errata = []*core.Erratum{renamed}
	next.Docs["intel-02"] = &dc
	got := MergeDelta(prev, next)
	mustEqual(t, got, Build(next), "relabel clone")
	if hits := got.ByKey("k9"); len(hits) != 1 || hits[0] != renamed {
		t.Fatalf("ByKey(k9) = %v, want the renamed clone", hits)
	}
}

// TestMergeDeltaForeignPrev pins the degenerate case: merging against
// an index whose database shares nothing with db must still equal a
// cold Build (everything is indexed fresh, nothing remaps).
func TestMergeDeltaForeignPrev(t *testing.T) {
	db := smallDB(t)
	foreign := core.NewDatabase()
	foreign.Scheme = db.Scheme
	if err := foreign.Add(&core.Document{
		Key: "other-01", Vendor: core.AMD, Label: "x", Order: 0,
		Errata: []*core.Erratum{{
			DocKey: "other-01", ID: "999", Seq: 1, Key: "a9",
			Title: "Unrelated issue",
		}},
	}); err != nil {
		t.Fatal(err)
	}
	mustEqual(t, MergeDelta(Build(foreign), db), Build(db), "foreign prev")
}
