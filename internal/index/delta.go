package index

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/taxonomy"
)

// MergeDelta builds the index for db incrementally from a previously
// built index instead of walking every entry's annotation again. It is
// the postings-level half of the streaming-ingest path (internal/ingest):
// entries shared by pointer between prev's database and db keep their
// postings (remapped to the new ordinals), entries that disappeared are
// dropped, and only entries absent from prev pay the full per-entry
// annotation walk.
//
// Contract: an *Erratum shared between the two databases must be
// completely unchanged — annotation, flags, disclosure, and cluster key
// included. A delta producer that changes anything about an entry (for
// example a dedup-key relabel after new documents shifted the cluster
// numbering) must clone the entry (and shallow-copy its document)
// instead of mutating it in place; the stale pointer then simply drops
// out of the remap and the clone is indexed as a new entry. Document
// metadata may change between snapshots (insertions shift Order), but
// the relative order of surviving documents — and hence of surviving
// entries — must be preserved, which core.AssignOrders guarantees: the
// ordinal remap is then monotonic and every remapped postings list stays
// sorted. The byKey map is rebuilt from scratch (cluster keys are the
// one axis that legitimately changes identity across snapshots), and the
// unique-representative list is recomputed from db.Unique().
//
// MergeDelta(nil, db) and a merge against an unrelated previous index
// both degenerate to Build(db) semantics: with no shared entries nothing
// remaps and everything is indexed fresh. The differential fuzz target
// FuzzDeltaMerge (internal/ingest) pins MergeDelta == Build on the union
// for arbitrary ingest sequences.
func MergeDelta(prev *Index, db *core.Database) *Index {
	if prev == nil {
		return Build(db)
	}
	errata := db.Errata()
	newOrd := make(map[*core.Erratum]int, len(errata))
	for ord, e := range errata {
		newOrd[e] = ord
	}
	// remap[oldOrd] is the entry's ordinal in the new index, -1 when the
	// entry is gone. Surviving entries keep their relative order, so the
	// defined values are strictly increasing.
	remap := make([]int, len(prev.errata))
	surviving := make(map[*core.Erratum]bool, len(prev.errata))
	for old, e := range prev.errata {
		if n, ok := newOrd[e]; ok {
			remap[old] = n
			surviving[e] = true
		} else {
			remap[old] = -1
		}
	}

	// Positional trigger counts are written through this heap slice by
	// both the remap below and the scratch index's addEntry walk; prev's
	// counts are read through List so a span-backed previous index works.
	trig := make(Ords, len(errata))
	ix := &Index{
		db:           db,
		scheme:       db.Scheme,
		errata:       errata,
		byVendor:     remapPostings(prev.byVendor, remap),
		byDoc:        remapPostings(prev.byDoc, remap),
		byCategory:   remapPostings(prev.byCategory, remap),
		byTriggerCat: remapPostings(prev.byTriggerCat, remap),
		byClass:      remapPostings(prev.byClass, remap),
		byKey:        make(map[string]List),
		byWorkaround: remapPostings(prev.byWorkaround, remap),
		byFix:        remapPostings(prev.byFix, remap),
		byMSR:        remapPostings(prev.byMSR, remap),
		complexSet:   remapList(prev.complexSet, remap),
		simOnlySet:   remapList(prev.simOnlySet, remap),
		triggerCount: trig,
	}
	for old, n := range remap {
		if n >= 0 {
			trig[n] = prev.triggerCount.At(old)
		}
	}

	// Index the new entries into a scratch index, then union its sorted
	// postings into the remapped ones. Both sides are sorted (remap is
	// monotonic; the scratch walk appends in ascending ordinal order), so
	// the result is identical to what a full Build appends.
	vendorOf := make(map[string]core.Vendor, len(db.Docs))
	for key, d := range db.Docs {
		vendorOf[key] = d.Vendor
	}
	add := &Index{
		scheme:       db.Scheme,
		byVendor:     make(map[core.Vendor]List),
		byDoc:        make(map[string]List),
		byCategory:   make(map[string]List),
		byTriggerCat: make(map[string]List),
		byClass:      make(map[string]List),
		byWorkaround: make(map[core.WorkaroundCategory]List),
		byFix:        make(map[core.FixStatus]List),
		byMSR:        make(map[string]List),
		triggerCount: trig, // written positionally, no union needed
	}
	for ord, e := range errata {
		if e.Key != "" { // keys can relabel across snapshots: rebuilt, never remapped
			pushOrd(ix.byKey, e.Key, ord)
		}
		if surviving[e] {
			continue
		}
		add.addEntry(ord, e, vendorOf)
	}
	unionPostings(ix.byVendor, add.byVendor)
	unionPostings(ix.byDoc, add.byDoc)
	unionPostings(ix.byCategory, add.byCategory)
	unionPostings(ix.byTriggerCat, add.byTriggerCat)
	unionPostings(ix.byClass, add.byClass)
	unionPostings(ix.byWorkaround, add.byWorkaround)
	unionPostings(ix.byFix, add.byFix)
	unionPostings(ix.byMSR, add.byMSR)
	ix.complexSet = Ords(union(toInts(ix.complexSet), toInts(add.complexSet)))
	ix.simOnlySet = Ords(union(toInts(ix.simOnlySet), toInts(add.simOnlySet)))

	for _, e := range db.Unique() {
		if ord, ok := newOrd[e]; ok {
			ix.uniqueOrds = apOrd(ix.uniqueOrds, ord)
		}
	}
	return ix
}

// addEntry walks one entry's indexable attributes, appending its ordinal
// to every postings list except byKey (which Build and MergeDelta manage
// themselves). Callers append in ascending ordinal order so every list
// stays sorted.
func (ix *Index) addEntry(ord int, e *core.Erratum, vendorOf map[string]core.Vendor) {
	if v, ok := vendorOf[e.DocKey]; ok {
		pushOrd(ix.byVendor, v, ord)
	}
	pushOrd(ix.byDoc, e.DocKey, ord)
	pushOrd(ix.byWorkaround, e.WorkaroundCat, ord)
	pushOrd(ix.byFix, e.Fix, ord)
	for _, m := range e.Ann.MSRs {
		appendOnce(ix.byMSR, m, ord)
	}
	if e.Ann.ComplexConditions {
		ix.complexSet = apOrd(ix.complexSet, ord)
	}
	if e.Ann.SimulationOnly {
		ix.simOnlySet = apOrd(ix.simOnlySet, ord)
	}
	classes := make(map[string]bool)
	for _, k := range taxonomy.Kinds {
		for _, it := range e.Ann.Items(k) {
			appendOnce(ix.byCategory, it.Category, ord)
			if k == taxonomy.Trigger {
				appendOnce(ix.byTriggerCat, it.Category, ord)
			}
			if cl := ix.scheme.ClassOf(it.Category); cl != "" && !classes[cl] {
				classes[cl] = true
				pushOrd(ix.byClass, cl, ord)
			}
		}
	}
	ix.triggerCount.(Ords)[ord] = len(e.Ann.Categories(taxonomy.Trigger, ix.scheme))
}

// remapPostings rewrites every list of a postings map through remap,
// dropping removed ordinals and empty lists (Build never stores empty
// lists, and equality with Build is the whole point). The input lists
// may be spans over a mapped file; the output is always heap-resident.
func remapPostings[K comparable](m map[K]List, remap []int) map[K]List {
	out := make(map[K]List, len(m))
	for k, l := range m {
		if r := remapList(l, remap); len(r) > 0 {
			out[k] = r
		}
	}
	return out
}

func remapList(l List, remap []int) Ords {
	var out Ords
	for i, n := 0, listLen(l); i < n; i++ {
		if v := remap[l.At(i)]; v >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// unionPostings merges the sorted add lists into dst in place. Both
// sides are heap-resident here (remapPostings materializes), so the
// Ords round-trips are alias-only.
func unionPostings[K comparable](dst, add map[K]List) {
	for k, l := range add {
		dst[k] = Ords(union(toInts(dst[k]), toInts(l)))
	}
}

// DebugDump renders the complete index state — entry identities, every
// postings family in sorted key order, flags, trigger counts and the
// unique-representative ordinals — as deterministic text. Two indexes
// over equal databases dump identically iff they are structurally equal,
// which is what the delta-merge differential tests and the
// FuzzDeltaMerge target compare.
func (ix *Index) DebugDump() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "entries %d\n", len(ix.errata))
	for ord, e := range ix.errata {
		fmt.Fprintf(&b, "e %d %s key=%q trig=%d\n", ord, e.FullID(), e.Key, ix.triggerCount.At(ord))
	}
	fmt.Fprintf(&b, "unique %v\n", toInts(ix.uniqueOrds))
	dumpPostings(&b, "vendor", ix.byVendor)
	dumpPostings(&b, "doc", ix.byDoc)
	dumpPostings(&b, "category", ix.byCategory)
	dumpPostings(&b, "trigger", ix.byTriggerCat)
	dumpPostings(&b, "class", ix.byClass)
	dumpPostings(&b, "key", ix.byKey)
	dumpPostings(&b, "workaround", ix.byWorkaround)
	dumpPostings(&b, "fix", ix.byFix)
	dumpPostings(&b, "msr", ix.byMSR)
	fmt.Fprintf(&b, "complex %v\n", toInts(ix.complexSet))
	fmt.Fprintf(&b, "simonly %v\n", toInts(ix.simOnlySet))
	return b.Bytes()
}

func dumpPostings[K comparable](b *bytes.Buffer, family string, m map[K]List) {
	keys := make([]string, 0, len(m))
	byLabel := make(map[string][]int, len(m))
	for k, l := range m {
		label := fmt.Sprint(k)
		keys = append(keys, label)
		byLabel[label] = toInts(l) // %v of a materialized slice: span- and heap-backed dump identically
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s %q %v\n", family, k, byLabel[k])
	}
}
