package index

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// spanOf encodes a heap list as little-endian u32 bytes and wraps it as
// a Span — the same representation the FormatVersion 2 ords section
// uses, without needing a store file.
func spanOf(t *testing.T, l List) List {
	t.Helper()
	if l == nil {
		return nil
	}
	b := make([]byte, 4*l.Len())
	for i := 0; i < l.Len(); i++ {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(l.At(i)))
	}
	return NewSpan(b)
}

func spanMap[K comparable](t *testing.T, m map[K]List) map[K]List {
	t.Helper()
	out := make(map[K]List, len(m))
	for k, l := range m {
		out[k] = spanOf(t, l)
	}
	return out
}

// TestSpanIndexEquivalence proves the disk-resident postings iterator:
// an index whose every postings list is a Span over u32 bytes answers
// all query shapes and dumps identically to the heap-built index. This
// is the in-package oracle for the mmap-backed store handing the index
// spans over its mapped ords section.
func TestSpanIndexEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 19} {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		built := Build(gt.DB)
		lp := &ListParts{
			UniqueOrds:   spanOf(t, built.uniqueOrds),
			ByVendor:     spanMap(t, built.byVendor),
			ByDoc:        spanMap(t, built.byDoc),
			ByCategory:   spanMap(t, built.byCategory),
			ByTriggerCat: spanMap(t, built.byTriggerCat),
			ByClass:      spanMap(t, built.byClass),
			ByKey:        spanMap(t, built.byKey),
			ByWorkaround: spanMap(t, built.byWorkaround),
			ByFix:        spanMap(t, built.byFix),
			ByMSR:        spanMap(t, built.byMSR),
			ComplexSet:   spanOf(t, built.complexSet),
			SimOnlySet:   spanOf(t, built.simOnlySet),
			TriggerCount: spanOf(t, built.triggerCount),
		}
		spanned, err := FromLists(gt.DB, lp)
		if err != nil {
			t.Fatalf("seed %d: FromLists: %v", seed, err)
		}
		if !bytes.Equal(built.DebugDump(), spanned.DebugDump()) {
			t.Fatalf("seed %d: span-backed index dumps differently from heap-built", seed)
		}
		for _, q := range []struct {
			name string
			run  func(ix *Index) []*core.Erratum
		}{
			{"all", func(ix *Index) []*core.Erratum { return ix.Query().All() }},
			{"unique", func(ix *Index) []*core.Erratum { return ix.Query().Unique() }},
			{"complex", func(ix *Index) []*core.Erratum { return ix.Query().Complex().All() }},
			{"vendor", func(ix *Index) []*core.Erratum { return ix.Query().Vendor(core.Intel).All() }},
			{"min-triggers", func(ix *Index) []*core.Erratum { return ix.Query().MinTriggers(2).All() }},
			{"compound", func(ix *Index) []*core.Erratum {
				return ix.Query().Vendor(core.Intel).Complex().MinTriggers(1).Unique()
			}},
		} {
			a, b := q.run(built), q.run(spanned)
			if len(a) != len(b) {
				t.Fatalf("seed %d: query %s: heap %d entries, span %d", seed, q.name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: query %s: entry %d differs (%s vs %s)",
						seed, q.name, i, a[i].FullID(), b[i].FullID())
				}
			}
		}
		// A delta merge from a span-backed previous index must equal one
		// from the heap-built index (and both equal a fresh Build).
		if !bytes.Equal(MergeDelta(spanned, gt.DB).DebugDump(), MergeDelta(built, gt.DB).DebugDump()) {
			t.Fatalf("seed %d: MergeDelta from span-backed prev diverges", seed)
		}
	}
}
