package index

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
)

// TestFromPartsEquivalence proves the persisted-postings path: an index
// reassembled from Parts answers every query identically to one built
// by walking annotations, and re-extracting Parts is a fixed point.
func TestFromPartsEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 19} {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		built := Build(gt.DB)
		parts := built.Parts()
		loaded, err := FromParts(gt.DB, parts)
		if err != nil {
			t.Fatalf("seed %d: FromParts: %v", seed, err)
		}
		if !reflect.DeepEqual(loaded.Parts(), parts) {
			t.Fatalf("seed %d: Parts(FromParts(Parts())) is not a fixed point", seed)
		}
		if built.Size() != loaded.Size() || built.UniqueCount() != loaded.UniqueCount() {
			t.Fatalf("seed %d: size %d/%d vs %d/%d", seed,
				built.Size(), built.UniqueCount(), loaded.Size(), loaded.UniqueCount())
		}
		for ord := 0; ord < built.Size(); ord++ {
			if built.Entry(ord) != loaded.Entry(ord) {
				t.Fatalf("seed %d: ordinal %d resolves to different entries", seed, ord)
			}
		}
		// Cross-check a few query shapes end to end.
		for _, q := range []struct {
			name string
			run  func(ix *Index) int
		}{
			{"complex", func(ix *Index) int { return ix.Query().Complex().Count() }},
			{"min-triggers", func(ix *Index) int { return ix.Query().MinTriggers(2).Count() }},
			{"all", func(ix *Index) int { return len(ix.Query().All()) }},
		} {
			if a, b := q.run(built), q.run(loaded); a != b {
				t.Fatalf("seed %d: query %s: built %d, loaded %d", seed, q.name, a, b)
			}
		}
	}
}

// TestFromPartsRejects proves the validation on untrusted parts.
func TestFromPartsRejects(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	good := Build(gt.DB).Parts()

	bad := *good
	bad.TriggerCount = good.TriggerCount[:len(good.TriggerCount)-1]
	if _, err := FromParts(gt.DB, &bad); err == nil {
		t.Fatal("FromParts accepted a short TriggerCount")
	}

	bad = *good
	bad.UniqueOrds = append(append([]int(nil), good.UniqueOrds...), len(gt.DB.Errata()))
	if _, err := FromParts(gt.DB, &bad); err == nil {
		t.Fatal("FromParts accepted an out-of-range ordinal")
	}
}

// TestKeyListNoAlloc pins the zero-allocation contract of the hot-path
// accessors the serving layer stitches responses with.
func TestKeyListNoAlloc(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(gt.DB)
	key := gt.DB.Unique()[0].Key
	if got := testing.AllocsPerRun(100, func() {
		ords := ix.KeyList(key)
		for i, n := 0, ords.Len(); i < n; i++ {
			_ = ix.Entry(ords.At(i))
		}
	}); got != 0 {
		t.Fatalf("KeyList/Entry allocate %v per run, want 0", got)
	}
}
