package index

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// smallDB builds a two-vendor database exercising every postings
// dimension: categories across kinds, classes, MSRs, flags, duplicate
// cluster keys and fix/workaround variety.
func smallDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	docs := []*core.Document{
		{
			Key: "intel-01", Vendor: core.Intel, Label: "1", Order: 0,
			Released: time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
			Errata: []*core.Erratum{
				{
					DocKey: "intel-01", ID: "AAA001", Seq: 1, Key: "k1",
					Title:         "Power state hang",
					WorkaroundCat: core.WorkaroundBIOS,
					Fix:           core.FixDone,
					Disclosed:     time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC),
					Ann: core.Annotation{
						Triggers: []core.Item{{Category: "Trg_POW_pwc"}, {Category: "Trg_MOP_fen"}},
						Effects:  []core.Item{{Category: "Eff_HNG_hng"}},
						MSRs:     []string{"MCx_STATUS"},
					},
				},
				{
					DocKey: "intel-01", ID: "AAA002", Seq: 2, Key: "k2",
					Title: "Counter overflow corrupts register",
					Ann: core.Annotation{
						Triggers:          []core.Item{{Category: "Trg_FLT_ovf"}},
						Effects:           []core.Item{{Category: "Eff_CRP_reg"}},
						ComplexConditions: true,
					},
				},
			},
		},
		{
			Key: "intel-02", Vendor: core.Intel, Label: "2", Order: 1,
			Released: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
			Errata: []*core.Erratum{
				// Same cluster key as AAA001: a duplicate occurrence.
				{
					DocKey: "intel-02", ID: "BBB001", Seq: 1, Key: "k1",
					Title: "Power state hang",
					Ann: core.Annotation{
						Triggers: []core.Item{{Category: "Trg_POW_pwc"}},
						Effects:  []core.Item{{Category: "Eff_HNG_hng"}},
					},
				},
			},
		},
		{
			Key: "amd-10h-00", Vendor: core.AMD, Label: "10h 00", Order: 0,
			Released: time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC),
			Errata: []*core.Erratum{
				{
					DocKey: "amd-10h-00", ID: "100", Seq: 1, Key: "a1",
					Title: "Simulation-only fence issue",
					Ann: core.Annotation{
						Triggers:       []core.Item{{Category: "Trg_MOP_fen"}},
						Contexts:       []core.Item{{Category: "Ctx_PRV_vmg"}},
						SimulationOnly: true,
					},
				},
			},
		},
	}
	for _, d := range docs {
		if err := db.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func ids(errata []*core.Erratum) []string {
	var out []string
	for _, e := range errata {
		out = append(out, e.FullID())
	}
	return out
}

func TestPostingsSortedAndComplete(t *testing.T) {
	db := smallDB(t)
	ix := Build(db)
	if ix.Size() != 4 {
		t.Fatalf("Size = %d, want 4", ix.Size())
	}
	if ix.UniqueCount() != 3 {
		t.Fatalf("UniqueCount = %d, want 3", ix.UniqueCount())
	}
	for name, m := range map[string]map[string]List{
		"byDoc":        ix.byDoc,
		"byCategory":   ix.byCategory,
		"byTriggerCat": ix.byTriggerCat,
		"byClass":      ix.byClass,
		"byKey":        ix.byKey,
		"byMSR":        ix.byMSR,
	} {
		for key, l := range m {
			for i := 1; i < l.Len(); i++ {
				if l.At(i-1) >= l.At(i) {
					t.Errorf("%s[%q] not strictly sorted: %v", name, key, toInts(l))
				}
			}
		}
	}
	if got := listLen(ix.byCategory["Trg_POW_pwc"]); got != 2 {
		t.Errorf("Trg_POW_pwc postings = %d, want 2", got)
	}
	if got := listLen(ix.byClass["Eff_HNG"]); got != 2 {
		t.Errorf("Eff_HNG class postings = %d, want 2", got)
	}
}

func TestQueryOperations(t *testing.T) {
	db := smallDB(t)
	ix := Build(db)

	if got := ids(ix.Query().Vendor(core.Intel).All()); !reflect.DeepEqual(got,
		[]string{"intel-01/AAA001", "intel-01/AAA002", "intel-02/BBB001"}) {
		t.Errorf("Vendor(Intel).All() = %v", got)
	}
	// Unique collapses the k1 cluster to its earliest occurrence.
	if got := ids(ix.Query().WithCategory("Eff_HNG_hng").Unique()); !reflect.DeepEqual(got,
		[]string{"intel-01/AAA001"}) {
		t.Errorf("WithCategory(Eff_HNG_hng).Unique() = %v", got)
	}
	if got := ix.Query().WithClass("Trg_MOP").Count(); got != 2 {
		t.Errorf("WithClass(Trg_MOP).Count() = %d, want 2", got)
	}
	if got := ix.Query().WithAllTriggers("Trg_POW_pwc", "Trg_MOP_fen").Count(); got != 1 {
		t.Errorf("WithAllTriggers = %d, want 1", got)
	}
	if got := ix.Query().MinTriggers(2).Count(); got != 1 {
		t.Errorf("MinTriggers(2) = %d, want 1", got)
	}
	if got := ix.Query().AnyCategory("Eff_CRP_reg", "Ctx_PRV_vmg").Count(); got != 2 {
		t.Errorf("AnyCategory = %d, want 2", got)
	}
	if got := ix.Query().AnyCategory().Count(); got != 0 {
		t.Errorf("AnyCategory() with no ids = %d, want 0", got)
	}
	if got := ix.Query().WithAllTriggers().Count(); got != ix.UniqueCount() {
		t.Errorf("WithAllTriggers() with no ids = %d, want %d (no-op)", got, ix.UniqueCount())
	}
	if got := ix.Query().WithCategory("No_Such_cat").All(); got != nil {
		t.Errorf("unknown category matched %v", ids(got))
	}
	if got := ix.Query().Complex().Count(); got != 1 {
		t.Errorf("Complex = %d, want 1", got)
	}
	if got := ix.Query().SimulationOnly().Count(); got != 1 {
		t.Errorf("SimulationOnly = %d, want 1", got)
	}
	if got := ix.Query().ObservableIn("MCx_STATUS").Count(); got != 1 {
		t.Errorf("ObservableIn = %d, want 1", got)
	}
	if got := ix.Query().Workaround(core.WorkaroundBIOS).Count(); got != 1 {
		t.Errorf("Workaround(BIOS) = %d, want 1", got)
	}
	if got := ix.Query().Fix(core.FixDone).Count(); got != 1 {
		t.Errorf("Fix(Done) = %d, want 1", got)
	}
	from := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	if got := ix.Query().DisclosedBetween(from, to).Count(); got != 1 {
		t.Errorf("DisclosedBetween = %d, want 1", got)
	}
	if got := ix.Query().TitleContains("POWER STATE").Count(); got != 1 {
		t.Errorf("TitleContains = %d, want 1", got)
	}
}

func TestQueryMatchesCoreScan(t *testing.T) {
	db := smallDB(t)
	ix := Build(db)
	// All() with no filters must be db.Errata() verbatim; Unique()
	// likewise — the ordering contract the facade relies on.
	if got, want := ix.Query().All(), db.Errata(); !reflect.DeepEqual(got, want) {
		t.Errorf("All() = %v, want %v", ids(got), ids(want))
	}
	if got, want := ix.Query().Unique(), db.Unique(); !reflect.DeepEqual(got, want) {
		t.Errorf("Unique() = %v, want %v", ids(got), ids(want))
	}
}

func TestByKey(t *testing.T) {
	ix := Build(smallDB(t))
	if got := ids(ix.ByKey("k1")); !reflect.DeepEqual(got, []string{"intel-01/AAA001", "intel-02/BBB001"}) {
		t.Errorf("ByKey(k1) = %v", got)
	}
	if got := ix.ByKey("nope"); len(got) != 0 {
		t.Errorf("ByKey(nope) = %v", ids(got))
	}
}

func TestIntersectUnion(t *testing.T) {
	cases := []struct{ a, b, inter, uni []int }{
		{[]int{1, 3, 5}, []int{2, 3, 4, 5}, []int{3, 5}, []int{1, 2, 3, 4, 5}},
		{[]int{}, []int{1, 2}, []int{}, []int{1, 2}},
		{[]int{7}, []int{7}, []int{7}, []int{7}},
		{[]int{1, 2}, []int{3, 4}, []int{}, []int{1, 2, 3, 4}},
	}
	for _, c := range cases {
		if got := intersect(c.a, c.b); !sameInts(got, c.inter) {
			t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.inter)
		}
		if got := union(c.a, c.b); !sameInts(got, c.uni) {
			t.Errorf("union(%v,%v) = %v, want %v", c.a, c.b, got, c.uni)
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
