// Package index provides an inverted-index query engine over a
// core.Database. It precomputes postings lists — sorted slices of
// erratum ordinals — per vendor, document, abstract category, class,
// workaround category, fix status, observable MSR and boolean flag,
// and answers conjunctive filter queries by sorted-slice intersection
// (with per-filter union for disjunctive category sets) instead of the
// O(N·filters) closure scan the fluent Query otherwise performs.
//
// An Index is an immutable snapshot: it is built once from a database
// and is safe for concurrent readers, which is what the serving layer
// (internal/serve) relies on. Mutating the underlying database after
// Build leaves the index stale; rebuild it instead.
//
// Ordinals are positions in db.Errata() order, so intersection results
// are naturally in the same order the closure-based scan produces, and
// the unique-representative list is precomputed in db.Unique() order.
// This makes the indexed and closure query paths return identical
// slices, which the equivalence tests in the root package pin.
package index

import (
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/pkg/domain"
)

// Index is an inverted index over one database snapshot.
type Index struct {
	db     *core.Database
	scheme domain.Scheme

	// errata maps ordinal -> entry, in db.Errata() order.
	errata []*core.Erratum
	// uniqueOrds lists the ordinals of the unique representatives, in
	// db.Unique() order (DocKey, then Seq).
	uniqueOrds List

	// Postings lists are held behind the List interface: Build and
	// MergeDelta produce heap-resident Ords, while FromLists installs
	// Spans viewed straight over a FormatVersion 2 file mapping, so a
	// disk-resident index never copies its postings into the heap.
	byVendor     map[core.Vendor]List
	byDoc        map[string]List
	byCategory   map[string]List // any annotation dimension
	byTriggerCat map[string]List // trigger dimension only
	byClass      map[string]List
	byKey        map[string]List // cluster key -> all occurrences
	byWorkaround map[core.WorkaroundCategory]List
	byFix        map[core.FixStatus]List
	byMSR        map[string]List
	complexSet   List
	simOnlySet   List

	// triggerCount holds, per ordinal, the number of distinct trigger
	// categories (the quantity MinTriggers filters on).
	triggerCount List

	// Instruments (nil until Instrument is called; obs instruments are
	// no-ops on nil receivers, so uninstrumented queries pay one branch).
	intersections *obs.Counter
	residuals     *obs.Counter
}

// Instrument registers the index's query counters in reg: the number
// of pairwise postings-list intersections performed and the number of
// residual-predicate evaluations (candidates that could not be answered
// from postings lists alone and fell back to per-entry predicates).
// Call it once, before the index serves concurrent queries.
func (ix *Index) Instrument(reg *obs.Registry) {
	ix.intersections = reg.Counter("rememberr_index_intersections_total",
		"Pairwise postings-list intersections performed by queries.")
	ix.residuals = reg.Counter("rememberr_index_residual_filters_total",
		"Candidate ordinals filtered through residual predicates (non-indexable filters).")
}

// Build constructs the index for a database. The database must not be
// mutated afterwards while the index is in use.
func Build(db *core.Database) *Index {
	errata := db.Errata()
	ix := &Index{
		db:           db,
		scheme:       db.Scheme,
		errata:       errata,
		byVendor:     make(map[core.Vendor]List),
		byDoc:        make(map[string]List),
		byCategory:   make(map[string]List),
		byTriggerCat: make(map[string]List),
		byClass:      make(map[string]List),
		byKey:        make(map[string]List),
		byWorkaround: make(map[core.WorkaroundCategory]List),
		byFix:        make(map[core.FixStatus]List),
		byMSR:        make(map[string]List),
		triggerCount: make(Ords, len(errata)),
	}
	vendorOf := make(map[string]core.Vendor, len(db.Docs))
	for key, d := range db.Docs {
		vendorOf[key] = d.Vendor
	}
	for ord, e := range errata {
		// Postings are appended in ascending ordinal order, so every
		// list is sorted by construction.
		if e.Key != "" {
			pushOrd(ix.byKey, e.Key, ord)
		}
		ix.addEntry(ord, e, vendorOf)
	}
	ordOf := make(map[*core.Erratum]int, len(errata))
	for ord, e := range errata {
		ordOf[e] = ord
	}
	for _, e := range db.Unique() {
		if ord, ok := ordOf[e]; ok {
			ix.uniqueOrds = apOrd(ix.uniqueOrds, ord)
		}
	}
	return ix
}

// appendOnce appends ord to m[key] unless it is already the last
// element (the same erratum can carry a category or MSR several times).
func appendOnce(m map[string]List, key string, ord int) {
	l, _ := m[key].(Ords)
	if n := len(l); n > 0 && l[n-1] == ord {
		return
	}
	m[key] = append(l, ord)
}

// Database returns the indexed database snapshot.
func (ix *Index) Database() *core.Database { return ix.db }

// Size returns the number of indexed entries (duplicates counted
// individually).
func (ix *Index) Size() int { return len(ix.errata) }

// UniqueCount returns the number of unique representatives.
func (ix *Index) UniqueCount() int { return listLen(ix.uniqueOrds) }

// ByKey returns every entry bearing the given cluster key, in document
// order.
func (ix *Index) ByKey(key string) []*core.Erratum {
	ords := ix.byKey[key]
	out := make([]*core.Erratum, listLen(ords))
	for i := range out {
		out[i] = ix.errata[ords.At(i)]
	}
	return out
}

// Query is one conjunctive filter query under compilation: a set of
// postings lists that must all match, plus residual predicates for the
// non-indexable filters (title substrings, disclosure windows, trigger
// count thresholds). Build one with Index.Query, chain filters, then
// call All or Unique. A Query is single-use per goroutine; the Index
// behind it is safe to share.
type Query struct {
	ix    *Index
	lists []List
	preds []func(ord int) bool
}

// Query starts a new query over the index.
func (ix *Index) Query() *Query { return &Query{ix: ix} }

// none is a shared empty postings list marking a filter that matches
// nothing (e.g. an unknown category).
var none = Ords{}

func (q *Query) list(l List) *Query {
	if l == nil {
		l = none
	}
	q.lists = append(q.lists, l)
	return q
}

func (q *Query) pred(f func(ord int) bool) *Query {
	q.preds = append(q.preds, f)
	return q
}

// Vendor keeps errata of one vendor.
func (q *Query) Vendor(v core.Vendor) *Query { return q.list(q.ix.byVendor[v]) }

// InDocument keeps errata of one document.
func (q *Query) InDocument(key string) *Query { return q.list(q.ix.byDoc[key]) }

// WithCategory keeps errata annotated with the abstract category in any
// dimension.
func (q *Query) WithCategory(categoryID string) *Query {
	return q.list(q.ix.byCategory[categoryID])
}

// AnyCategory keeps errata annotated with at least one of the given
// categories (disjunctive): the postings lists are unioned into one.
// With no categories the query matches nothing, mirroring the closure
// semantics.
func (q *Query) AnyCategory(categoryIDs ...string) *Query {
	var u []int
	for _, c := range categoryIDs {
		u = union(u, toInts(q.ix.byCategory[c]))
	}
	return q.list(Ords(u))
}

// WithClass keeps errata with at least one item of the given class.
func (q *Query) WithClass(classID string) *Query { return q.list(q.ix.byClass[classID]) }

// WithAllTriggers keeps errata requiring at least all the given
// triggers (conjunctive): one postings list per category. With no
// categories the filter is a no-op, mirroring the closure semantics.
func (q *Query) WithAllTriggers(categoryIDs ...string) *Query {
	for _, c := range categoryIDs {
		q.list(q.ix.byTriggerCat[c])
	}
	return q
}

// MinTriggers keeps errata with at least n distinct trigger categories,
// using the precomputed per-entry counts.
func (q *Query) MinTriggers(n int) *Query {
	return q.pred(func(ord int) bool { return q.ix.triggerCount.At(ord) >= n })
}

// Workaround keeps errata with the given workaround category.
func (q *Query) Workaround(w core.WorkaroundCategory) *Query {
	return q.list(q.ix.byWorkaround[w])
}

// Fix keeps errata with the given fix status.
func (q *Query) Fix(f core.FixStatus) *Query { return q.list(q.ix.byFix[f]) }

// Complex keeps errata mentioning a complex set of conditions.
func (q *Query) Complex() *Query { return q.list(q.ix.complexSet) }

// SimulationOnly keeps errata observed only in simulation.
func (q *Query) SimulationOnly() *Query { return q.list(q.ix.simOnlySet) }

// ObservableIn keeps errata whose effects are observable in the MSR.
func (q *Query) ObservableIn(msr string) *Query { return q.list(q.ix.byMSR[msr]) }

// DisclosedBetween keeps errata disclosed in [from, to). Disclosure
// dates are a continuous axis, so this stays a residual predicate.
func (q *Query) DisclosedBetween(from, to time.Time) *Query {
	return q.pred(func(ord int) bool {
		d := q.ix.errata[ord].Disclosed
		return !d.IsZero() && !d.Before(from) && d.Before(to)
	})
}

// TitleContains keeps errata whose title contains the substring
// (case-insensitive). Full-text search stays a residual predicate.
func (q *Query) TitleContains(sub string) *Query {
	lower := strings.ToLower(sub)
	return q.pred(func(ord int) bool {
		return strings.Contains(strings.ToLower(q.ix.errata[ord].Title), lower)
	})
}

// matchOrdinals evaluates the query to a sorted ordinal slice.
func (q *Query) matchOrdinals() []int {
	var cand []int
	if len(q.lists) == 0 {
		// No indexable filter: every entry is a candidate.
		cand = make([]int, len(q.ix.errata))
		for i := range cand {
			cand[i] = i
		}
	} else {
		lists := make([]List, len(q.lists))
		copy(lists, q.lists)
		sort.Slice(lists, func(i, j int) bool { return lists[i].Len() < lists[j].Len() })
		cand = toInts(lists[0])
		merged := int64(0)
		for _, l := range lists[1:] {
			if len(cand) == 0 {
				break
			}
			cand = intersectInto(cand, l)
			merged++
		}
		q.ix.intersections.Add(merged)
	}
	if len(q.preds) == 0 || len(cand) == 0 {
		return cand
	}
	q.ix.residuals.Add(int64(len(cand)))
	out := make([]int, 0, len(cand))
	for _, ord := range cand {
		ok := true
		for _, p := range q.preds {
			if !p(ord) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, ord)
		}
	}
	return out
}

// All returns every matching entry (duplicates counted individually),
// in db.Errata() order — identical to the closure scan.
func (q *Query) All() []*core.Erratum {
	ords := q.matchOrdinals()
	var out []*core.Erratum
	for _, ord := range ords {
		out = append(out, q.ix.errata[ord])
	}
	return out
}

// Unique returns one representative per matching deduplicated erratum,
// in db.Unique() order — identical to the closure scan.
func (q *Query) Unique() []*core.Erratum {
	ords := q.matchOrdinals()
	if len(ords) == 0 {
		return nil
	}
	matched := make([]bool, len(q.ix.errata))
	for _, ord := range ords {
		matched[ord] = true
	}
	var out []*core.Erratum
	for i, n := 0, listLen(q.ix.uniqueOrds); i < n; i++ {
		if ord := q.ix.uniqueOrds.At(i); matched[ord] {
			out = append(out, q.ix.errata[ord])
		}
	}
	return out
}

// Count returns the number of unique matches.
func (q *Query) Count() int { return len(q.Unique()) }

// intersect merges two sorted ordinal slices into their intersection.
func intersect(a, b []int) []int {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]int, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// union merges two sorted ordinal slices into their sorted union.
func union(a, b []int) []int {
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
