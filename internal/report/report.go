// Package report renders analysis results as aligned ASCII tables,
// horizontal bar charts, heatmaps and time series, plus CSV export —
// the stdlib-only stand-in for the paper's matplotlib figures. Each
// renderer corresponds to a figure style used in the paper.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Table renders an aligned ASCII table with a header row.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
	// Note is an optional annotation rendered after the value.
	Note string
}

// BarChart renders a horizontal bar chart scaled to width characters.
func BarChart(title string, bars []Bar, width int) string {
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	maxLabel := 0
	for _, b := range bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	for _, bar := range bars {
		n := 0
		if maxVal > 0 {
			n = int(bar.Value / maxVal * float64(width))
		}
		if bar.Value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%s |%s %.6g", pad(bar.Label, maxLabel), strings.Repeat("#", n), bar.Value)
		if bar.Note != "" {
			b.WriteString(" " + bar.Note)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// heatRunes maps intensity deciles to characters.
var heatRunes = []rune(" .:-=+*#%@")

// Heatmap renders a matrix with row/column labels; cell intensity is
// scaled to the matrix maximum (used for Figures 3 and 12).
func Heatmap(title string, labels []string, matrix [][]int) string {
	maxVal := 0
	for _, row := range matrix {
		for _, v := range row {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	// Column header: index numbers.
	b.WriteString(strings.Repeat(" ", maxLabel+1))
	for j := range labels {
		fmt.Fprintf(&b, "%3d", j)
	}
	b.WriteString("\n")
	for i, row := range matrix {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		b.WriteString(pad(label, maxLabel) + " ")
		for _, v := range row {
			r := heatRunes[0]
			if maxVal > 0 && v > 0 {
				idx := v * (len(heatRunes) - 1) / maxVal
				if idx == 0 {
					idx = 1
				}
				r = heatRunes[idx]
			}
			fmt.Fprintf(&b, "  %c", r)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "scale: max=%d\n", maxVal)
	return b.String()
}

// Point is one (date, value) sample of a time series.
type Point struct {
	Date  time.Time
	Value int
}

// Series renders one or more named cumulative series as a year-binned
// text plot (used for Figures 2, 4 and 5).
func Series(title string, series map[string][]Point, width int) string {
	if width <= 0 {
		width = 60
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	maxVal := 0
	for _, pts := range series {
		for _, p := range pts {
			if p.Value > maxVal {
				maxVal = p.Value
			}
		}
	}
	for _, name := range names {
		pts := series[name]
		if len(pts) == 0 {
			fmt.Fprintf(&b, "%s: (empty)\n", name)
			continue
		}
		final := pts[len(pts)-1]
		n := 0
		if maxVal > 0 {
			n = final.Value * width / maxVal
		}
		fmt.Fprintf(&b, "%-28s %s-%s |%s %d\n",
			name,
			pts[0].Date.Format("2006-01"),
			final.Date.Format("2006-01"),
			strings.Repeat("#", n), final.Value)
	}
	return b.String()
}

// YearlyBreakdown renders a per-year value table for a series, which
// preserves the curve's shape in text form.
func YearlyBreakdown(name string, pts []Point) string {
	if len(pts) == 0 {
		return name + ": (empty)\n"
	}
	byYear := map[int]int{}
	for _, p := range pts {
		y := p.Date.Year()
		if p.Value > byYear[y] {
			byYear[y] = p.Value
		}
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	var b strings.Builder
	b.WriteString(name + ":")
	for _, y := range years {
		fmt.Fprintf(&b, " %d:%d", y, byYear[y])
	}
	b.WriteString("\n")
	return b.String()
}

// CSV renders rows as an RFC-4180-ish CSV string (quoting cells that
// contain commas, quotes or newlines).
func CSV(headers []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func csvCell(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
