package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenFixtures renders every exported renderer — text, CSV, HTML and
// SVG — on fixed inputs. One golden file per renderer under testdata/;
// regenerate with 'go test ./internal/report -update' after a
// deliberate output change and review the diff.
func goldenFixtures() map[string]string {
	headers := []string{"Class", "Intel", "AMD"}
	rows := [][]string{
		{"Trg_POW", "120", "38"},
		{"Eff_HNG", "85", "41"},
		{"quoted \"cell\", with comma", "1", "<2>"},
	}
	bars := []Bar{
		{Label: "Trg_POW", Value: 120},
		{Label: "Eff_HNG", Value: 85.5, Note: "(hangs)"},
		{Label: "empty", Value: 0},
	}
	labels := []string{"POW", "MOP", "FLT"}
	matrix := [][]int{{9, 2, 0}, {2, 5, 1}, {0, 1, 3}}
	mk := func(y int) time.Time { return time.Date(y, 6, 1, 0, 0, 0, 0, time.UTC) }
	series := map[string][]Point{
		"Intel": {{Date: mk(2010), Value: 10}, {Date: mk(2011), Value: 35}, {Date: mk(2013), Value: 80}},
		"AMD":   {{Date: mk(2009), Value: 5}, {Date: mk(2012), Value: 40}},
		"none":  {},
	}
	return map[string]string{
		"table.txt":    Table(headers, rows),
		"barchart.txt": BarChart("errata per class", bars, 30),
		"heatmap.txt":  Heatmap("co-occurrence", labels, matrix),
		"series.txt":   Series("cumulative errata", series, 40),
		"yearly.txt":   YearlyBreakdown("Intel", series["Intel"]),
		"csv.csv":      CSV(headers, rows),
		"table.html":   HTMLTable(headers, rows),
		"barchart.svg": SVGBarChart("errata per class", bars, 400),
		"series.svg":   SVGSeries("cumulative errata", series, 400, 200),
		"heatmap.svg":  SVGHeatmap("co-occurrence", labels, matrix, 16),
	}
}

func TestGoldenRenderers(t *testing.T) {
	for name, got := range goldenFixtures() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("%s output changed (got %d bytes, want %d); diff against %s and rerun with -update if intended:\n%s",
					name, len(got), len(want), path, got)
			}
		})
	}
}
