package report

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SVG rendering of the figure styles used by the paper: bar charts,
// cumulative time series and heatmaps. Pure stdlib: SVG is plain XML
// text. The palette is colorblind-safe (Okabe-Ito).
var svgPalette = []string{
	"#0072B2", "#E69F00", "#009E73", "#D55E00",
	"#CC79A7", "#56B4E9", "#F0E442", "#000000",
}

func svgHeader(w, h int, title string) string {
	return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">
<title>%s</title>
<rect width="%d" height="%d" fill="white"/>
<text x="12" y="20" font-size="14" font-weight="bold">%s</text>
`, w, h, w, h, escape(title), w, h, escape(title))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVGBarChart renders a horizontal bar chart.
func SVGBarChart(title string, bars []Bar, width int) string {
	if width <= 0 {
		width = 640
	}
	const rowH, top, labelW = 22, 36, 180
	height := top + rowH*len(bars) + 16
	maxVal := 0.0
	for _, b := range bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
	}
	var sb strings.Builder
	sb.WriteString(svgHeader(width, height, title))
	plotW := width - labelW - 90
	for i, b := range bars {
		y := top + i*rowH
		barW := 0
		if maxVal > 0 {
			barW = int(b.Value / maxVal * float64(plotW))
		}
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" text-anchor="end">%s</text>`+"\n",
			labelW-6, y+14, escape(b.Label))
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
			labelW, y+3, barW, rowH-8, svgPalette[0])
		note := fmt.Sprintf("%.6g", b.Value)
		if b.Note != "" {
			note += " " + b.Note
		}
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n",
			labelW+barW+4, y+14, escape(note))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// SVGSeries renders named cumulative time series as step lines.
func SVGSeries(title string, series map[string][]Point, width, height int) string {
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 360
	}
	const left, right, top, bottom = 56, 160, 36, 36
	plotW, plotH := width-left-right, height-top-bottom

	names := make([]string, 0, len(series))
	for n := range series {
		if len(series[n]) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var minT, maxT time.Time
	maxV := 0
	first := true
	for _, n := range names {
		for _, p := range series[n] {
			if first || p.Date.Before(minT) {
				minT = p.Date
			}
			if first || p.Date.After(maxT) {
				maxT = p.Date
			}
			if p.Value > maxV {
				maxV = p.Value
			}
			first = false
		}
	}
	var sb strings.Builder
	sb.WriteString(svgHeader(width, height, title))
	if first || maxV == 0 || !maxT.After(minT) {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	span := maxT.Sub(minT).Seconds()
	xOf := func(t time.Time) float64 {
		return float64(left) + t.Sub(minT).Seconds()/span*float64(plotW)
	}
	yOf := func(v int) float64 {
		return float64(top+plotH) - float64(v)/float64(maxV)*float64(plotH)
	}
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, top+plotH, left+plotW, top+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, top, left, top+plotH)
	// Year ticks.
	for y := minT.Year(); y <= maxT.Year(); y++ {
		t := time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC)
		if t.Before(minT) || t.After(maxT) {
			continue
		}
		x := xOf(t)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ccc"/>`+"\n",
			x, top, x, top+plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="9" text-anchor="middle">%d</text>`+"\n",
			x, top+plotH+14, y)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="9" text-anchor="end">%d</text>`+"\n",
		left-4, top+8, maxV)

	for i, n := range names {
		color := svgPalette[i%len(svgPalette)]
		pts := series[n]
		var path strings.Builder
		prevY := yOf(0)
		for j, p := range pts {
			x, y := xOf(p.Date), yOf(p.Value)
			if j == 0 {
				fmt.Fprintf(&path, "M%.1f,%.1f", x, prevY)
			}
			fmt.Fprintf(&path, " L%.1f,%.1f L%.1f,%.1f", x, prevY, x, y)
			prevY = y
		}
		fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			path.String(), color)
		// Legend.
		ly := top + 14*i
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			left+plotW+10, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="9">%s</text>`+"\n",
			left+plotW+24, ly+9, escape(n))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// SVGHeatmap renders a matrix heatmap with labels.
func SVGHeatmap(title string, labels []string, matrix [][]int, cell int) string {
	if cell <= 0 {
		cell = 18
	}
	const left, top = 120, 48
	n := len(matrix)
	width := left + n*cell + 60
	height := top + n*cell + 24
	maxVal := 0
	for _, row := range matrix {
		for _, v := range row {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(svgHeader(width, height, title))
	for i, row := range matrix {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="9" text-anchor="end">%s</text>`+"\n",
			left-4, top+i*cell+cell/2+3, escape(label))
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="9" text-anchor="middle">%d</text>`+"\n",
			left+i*cell+cell/2, top-6, i)
		for j, v := range row {
			intensity := 0.0
			if maxVal > 0 {
				intensity = float64(v) / float64(maxVal)
			}
			// White -> blue ramp.
			r := int(255 - intensity*(255-0x00))
			g := int(255 - intensity*(255-0x72))
			b := int(255 - intensity*(255-0xB2))
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)" stroke="#eee"/>`+"\n",
				left+j*cell, top+i*cell, cell, cell, r, g, b)
		}
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="9">max=%d</text>`+"\n",
		left, top+n*cell+14, maxVal)
	sb.WriteString("</svg>\n")
	return sb.String()
}
