package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"ID", "Name"}, [][]string{
		{"1", "short"},
		{"22", "a much longer name"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "ID ") || !strings.Contains(lines[0], "Name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "--") {
		t.Errorf("separator = %q", lines[1])
	}
	// All rows align the second column at the same offset.
	off := strings.Index(lines[0], "Name")
	if strings.Index(lines[2], "short") != off || strings.Index(lines[3], "a much") != off {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("title", []Bar{
		{Label: "a", Value: 10},
		{Label: "bb", Value: 5, Note: "(half)"},
		{Label: "c", Value: 0},
	}, 10)
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines:\n%s", out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#####") || !strings.Contains(lines[2], "(half)") {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar should have no fill: %q", lines[3])
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("hm", []string{"r1", "r2"}, [][]int{{4, 0}, {2, 4}})
	if !strings.Contains(out, "hm\n") || !strings.Contains(out, "max=4") {
		t.Errorf("heatmap:\n%s", out)
	}
	// The maximum cell uses the densest rune, zero uses space.
	if !strings.Contains(out, "@") {
		t.Errorf("max rune missing:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	d := func(y int) time.Time { return time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC) }
	out := Series("fig", map[string][]Point{
		"intel-06": {{d(2015), 1}, {d(2017), 100}},
		"empty":    nil,
	}, 20)
	if !strings.Contains(out, "intel-06") || !strings.Contains(out, "2015-01") ||
		!strings.Contains(out, "100") {
		t.Errorf("series:\n%s", out)
	}
	if !strings.Contains(out, "empty: (empty)") {
		t.Errorf("empty series:\n%s", out)
	}
}

func TestYearlyBreakdown(t *testing.T) {
	d := func(y, m int) time.Time { return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC) }
	out := YearlyBreakdown("doc", []Point{
		{d(2015, 3), 5}, {d(2015, 9), 12}, {d(2016, 1), 20},
	})
	if !strings.Contains(out, "2015:12") || !strings.Contains(out, "2016:20") {
		t.Errorf("breakdown: %q", out)
	}
	if YearlyBreakdown("x", nil) != "x: (empty)\n" {
		t.Error("empty breakdown wrong")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{
		{"1", `say "hi", ok`},
		{"2", "plain"},
	})
	want := "a,b\n1,\"say \"\"hi\"\", ok\"\n2,plain\n"
	if out != want {
		t.Errorf("csv = %q, want %q", out, want)
	}
}
