package report

import (
	"html"
	"strings"
)

// HTMLTable renders an HTML table with a header row. Cells are
// HTML-escaped; layout (borders, fonts) is left to the embedding
// page's stylesheet. The first header cell may be empty for row-label
// tables.
func HTMLTable(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("<table><tr>")
	for _, h := range headers {
		b.WriteString("<th>")
		b.WriteString(html.EscapeString(h))
		b.WriteString("</th>")
	}
	b.WriteString("</tr>\n")
	for _, row := range rows {
		b.WriteString("<tr>")
		for _, c := range row {
			b.WriteString("<td>")
			b.WriteString(html.EscapeString(c))
			b.WriteString("</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	return b.String()
}
