package report

import (
	"strings"
	"testing"
	"time"
)

func TestSVGBarChart(t *testing.T) {
	out := SVGBarChart("Figure X", []Bar{
		{Label: "a", Value: 10, Note: "(x)"},
		{Label: "b & c", Value: 5},
	}, 0)
	for _, want := range []string{"<svg", "</svg>", "Figure X", "b &amp; c", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
	if strings.Count(out, "<rect") < 3 { // background + 2 bars
		t.Error("missing bar rects")
	}
}

func TestSVGSeries(t *testing.T) {
	d := func(y, m int) time.Time { return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC) }
	out := SVGSeries("Cumulative", map[string][]Point{
		"intel-06": {{d(2015, 9), 1}, {d(2016, 3), 40}, {d(2018, 1), 120}},
		"amd-17h":  {{d(2017, 5), 2}, {d(2019, 1), 30}},
	}, 0, 0)
	for _, want := range []string{"<svg", "<path", "intel-06", "amd-17h", "2016"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG series", want)
		}
	}
	// Degenerate input renders an empty but valid SVG.
	empty := SVGSeries("empty", map[string][]Point{}, 100, 100)
	if !strings.Contains(empty, "</svg>") {
		t.Error("empty series SVG invalid")
	}
	single := SVGSeries("one", map[string][]Point{"x": {{d(2015, 1), 5}}}, 100, 100)
	if !strings.Contains(single, "</svg>") {
		t.Error("single-point series SVG invalid")
	}
}

func TestSVGHeatmap(t *testing.T) {
	out := SVGHeatmap("Heredity", []string{"1 (D)", "1 (M)"}, [][]int{{10, 4}, {4, 12}}, 0)
	for _, want := range []string{"<svg", "1 (D)", "max=12"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG heatmap", want)
		}
	}
	if strings.Count(out, "<rect") < 5 { // background + 4 cells
		t.Error("missing heatmap cells")
	}
}

func TestSVGEscaping(t *testing.T) {
	out := SVGBarChart(`<&"`, []Bar{{Label: "<x>", Value: 1}}, 100)
	if strings.Contains(out, "<&\"</title>") || strings.Contains(out, "><x><") {
		t.Error("unescaped content in SVG")
	}
	if !strings.Contains(out, "&lt;x&gt;") {
		t.Error("label not escaped")
	}
}
