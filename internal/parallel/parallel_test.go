package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		counts := make([]int32, n)
		err := Do(n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	if err := Do(0, 4, func(int) error { t.Fatal("fn called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := Do(1, 8, func(i int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("n=1: ran=%v err=%v", ran, err)
	}
}

func TestDoFirstErrorIsLowestIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := Do(20, workers, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 17:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

func TestDoSequentialStopsAtFirstError(t *testing.T) {
	calls := 0
	err := Do(10, 1, func(i int) error {
		calls++
		if i == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || calls != 3 {
		t.Errorf("calls = %d, err = %v; want 3 calls and an error", calls, err)
	}
}

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := Map(16, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	want := errors.New("map error")
	out, err := Map(8, 4, func(i int) (int, error) {
		if i == 5 {
			return 0, want
		}
		return i, nil
	})
	if err != want || out != nil {
		t.Errorf("Map = (%v, %v), want (nil, %v)", out, err, want)
	}
}

// TestGatherMatchesSequentialOrder is the determinism contract of the
// row-sharded candidate loops: the merged slice must equal the
// sequential row-major concatenation at every worker count.
func TestGatherMatchesSequentialOrder(t *testing.T) {
	rows := func(i int) []string {
		var out []string
		for j := 0; j < i%4; j++ {
			out = append(out, fmt.Sprintf("%d/%d", i, j))
		}
		return out
	}
	want := Gather(33, 1, rows)
	for _, workers := range []int{2, 7, 32} {
		got := Gather(33, workers, rows)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len = %d, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: [%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}
