// Package parallel provides the bounded fan-out primitive shared by
// the build pipeline's hot paths (document rendering and parsing,
// duplicate-candidate scoring, TF-IDF vectorization, regex
// classification).
//
// The contract is strict determinism: work is identified by index,
// results are collected by index, and error propagation prefers the
// lowest failing index — so for a fixed input the outcome is
// byte-identical no matter how many workers run, and identical to the
// sequential execution. Stages whose state is order-dependent (the
// corpus generator's single RNG stream, the dedup oracle loop over
// mutable DSU state, the annotator error processes) must NOT be run
// through this package; see DESIGN.md for the stage-by-stage contract.
package parallel

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// instruments is the immutable instrument set swapped in by Instrument.
type instruments struct {
	reg        *obs.Registry
	queueDepth *obs.Gauge   // tasks submitted but not yet finished
	tasksTotal *obs.Counter // tasks completed across all batches
}

var instr atomic.Pointer[instruments]

// Instrument wires the package's instruments into reg: the
// rememberr_parallel_queue_depth gauge (tasks in flight across every
// concurrent Do), the rememberr_parallel_tasks_total counter, and the
// per-worker rememberr_parallel_worker_tasks_total counters (created
// lazily per worker slot, so the label set reflects the widest pool
// actually run). Passing nil turns instrumentation off again.
//
// The instrument set is swapped atomically, but counts recorded under
// the previous registry stay there: call Instrument once at process
// start, before pipelines run.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&instruments{
		reg: reg,
		queueDepth: reg.Gauge("rememberr_parallel_queue_depth",
			"Tasks submitted to the worker pool and not yet completed."),
		tasksTotal: reg.Counter("rememberr_parallel_tasks_total",
			"Tasks completed by the worker pool."),
	})
}

// workerCounter resolves the per-worker task counter for worker slot w.
func (in *instruments) workerCounter(w int) *obs.Counter {
	if in == nil {
		return nil
	}
	return in.reg.Counter("rememberr_parallel_worker_tasks_total",
		"Tasks completed per worker slot.", obs.L("worker", strconv.Itoa(w)))
}

// Workers resolves a Parallelism knob into a concrete worker count:
// values <= 0 select runtime.GOMAXPROCS(0), anything else is returned
// unchanged. 1 means sequential execution on the calling goroutine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(i) for every i in [0, n) on at most workers goroutines
// (resolved by Workers and clamped to n). Callers communicate results
// by writing to the i-th slot of a pre-sized slice, which keeps
// collection deterministic and race-free without locks.
//
// With one worker, Do degenerates to the plain sequential loop and
// stops at the first error, exactly like the code it replaces. With
// several workers every index runs regardless of failures, and the
// error of the lowest failing index is returned — the same error the
// sequential loop would have surfaced first.
func Do(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	in := instr.Load()
	var depth *obs.Gauge
	var tasks *obs.Counter
	if in != nil {
		depth, tasks = in.queueDepth, in.tasksTotal
	}
	depth.Add(float64(n))
	if workers == 1 {
		done := 0
		defer func() {
			// The sequential path stops at the first error; account
			// only for tasks actually run, and drain the rest from the
			// queue-depth gauge.
			tasks.Add(int64(done))
			in.workerCounter(0).Add(int64(done))
			depth.Add(-float64(n))
		}()
		for i := 0; i < n; i++ {
			err := fn(i)
			done++
			if err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			done := int64(0)
			for i := range next {
				errs[i] = fn(i)
				done++
				depth.Add(-1)
			}
			tasks.Add(done)
			in.workerCounter(w).Add(done)
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) under Do and returns the
// results in index order: out[i] = fn(i). On error the first (lowest
// index) error is returned and the results are discarded.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Gather runs fn(i) for every i in [0, n) under Do, where each fn
// returns a slice of items, and concatenates the per-index slices in
// index order. This is the row-sharding primitive of the O(n^2)
// candidate-scoring loops: each row produces its matches
// independently, and the merged order equals the sequential scan's.
func Gather[T any](n, workers int, fn func(i int) []T) []T {
	rows := make([][]T, n)
	_ = Do(n, workers, func(i int) error {
		rows[i] = fn(i)
		return nil
	})
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	out := make([]T, 0, total)
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}
