// Package parallel provides the bounded fan-out primitive shared by
// the build pipeline's hot paths (document rendering and parsing,
// duplicate-candidate scoring, TF-IDF vectorization, regex
// classification).
//
// The contract is strict determinism: work is identified by index,
// results are collected by index, and error propagation prefers the
// lowest failing index — so for a fixed input the outcome is
// byte-identical no matter how many workers run, and identical to the
// sequential execution. Stages whose state is order-dependent (the
// corpus generator's single RNG stream, the dedup oracle loop over
// mutable DSU state, the annotator error processes) must NOT be run
// through this package; see DESIGN.md for the stage-by-stage contract.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a Parallelism knob into a concrete worker count:
// values <= 0 select runtime.GOMAXPROCS(0), anything else is returned
// unchanged. 1 means sequential execution on the calling goroutine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(i) for every i in [0, n) on at most workers goroutines
// (resolved by Workers and clamped to n). Callers communicate results
// by writing to the i-th slot of a pre-sized slice, which keeps
// collection deterministic and race-free without locks.
//
// With one worker, Do degenerates to the plain sequential loop and
// stops at the first error, exactly like the code it replaces. With
// several workers every index runs regardless of failures, and the
// error of the lowest failing index is returned — the same error the
// sequential loop would have surfaced first.
func Do(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) under Do and returns the
// results in index order: out[i] = fn(i). On error the first (lowest
// index) error is returned and the results are discarded.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Gather runs fn(i) for every i in [0, n) under Do, where each fn
// returns a slice of items, and concatenates the per-index slices in
// index order. This is the row-sharding primitive of the O(n^2)
// candidate-scoring loops: each row produces its matches
// independently, and the merged order equals the sequential scan's.
func Gather[T any](n, workers int, fn func(i int) []T) []T {
	rows := make([][]T, n)
	_ = Do(n, workers, func(i int) error {
		rows[i] = fn(i)
		return nil
	})
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	out := make([]T, 0, total)
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}
