package parallel

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestInstrumentedCounts pins the instrument bookkeeping: completed
// tasks are counted exactly, per-worker counts sum to the total, and
// the queue-depth gauge returns to zero after every batch — on both
// the sequential and the parallel path.
func TestInstrumentedCounts(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		if err := Do(100, workers, func(i int) error { ran.Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	tasks := reg.Counter("rememberr_parallel_tasks_total", "")
	if got := tasks.Value(); got != 200 || ran.Load() != 200 {
		t.Fatalf("tasks_total = %d (ran %d), want 200", got, ran.Load())
	}
	var perWorker int64
	for w := 0; w < 4; w++ {
		perWorker += reg.Counter("rememberr_parallel_worker_tasks_total", "",
			obs.L("worker", string(rune('0'+w)))).Value()
	}
	if perWorker != 200 {
		t.Fatalf("per-worker counts sum to %d, want 200", perWorker)
	}
	if depth := reg.Gauge("rememberr_parallel_queue_depth", "").Value(); depth != 0 {
		t.Fatalf("queue depth = %v after batches drained, want 0", depth)
	}

	// The sequential path stops at the first error and accounts only
	// for the tasks it actually ran.
	boom := errors.New("boom")
	if err := Do(10, 1, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := tasks.Value(); got != 204 {
		t.Fatalf("tasks_total after failing batch = %d, want 204", got)
	}
	if depth := reg.Gauge("rememberr_parallel_queue_depth", "").Value(); depth != 0 {
		t.Fatalf("queue depth = %v after failing batch, want 0", depth)
	}
}

// TestUninstrumentedIsNoop proves Do works identically with
// instrumentation off (the default).
func TestUninstrumentedIsNoop(t *testing.T) {
	Instrument(nil)
	var ran atomic.Int64
	if err := Do(50, 8, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
}
