// Package core re-exports the data model of the RemembERR database:
// vendors, specification-update documents, revisions, errata, their
// annotations on the three taxonomy levels, and the database container
// that the rest of the system operates on.
//
// The model itself lives in the public pkg/domain package (the stable
// hexagonal contract that plugins and external consumers depend on);
// every name here is a type alias or thin wrapper, so internal code and
// pkg/domain consumers interoperate without conversions.
package core

import (
	"repro/internal/taxonomy"
	"repro/pkg/domain"
)

// Aliases to the public data model. An internal/core value IS the
// corresponding pkg/domain value; the serialized forms (store DTOs,
// FormatVersion 2 records) are unchanged by the aliasing.
type (
	// Vendor identifies a microprocessor vendor.
	Vendor = domain.Vendor
	// WorkaroundCategory classifies where a workaround must be applied.
	WorkaroundCategory = domain.WorkaroundCategory
	// FixStatus captures the status field of an erratum.
	FixStatus = domain.FixStatus
	// Item is one annotated property of an erratum.
	Item = domain.Item
	// Annotation carries the full RemembERR classification of an erratum.
	Annotation = domain.Annotation
	// Erratum is a single erratum entry of a specification-update document.
	Erratum = domain.Erratum
	// Revision is one revision of a specification-update document.
	Revision = domain.Revision
	// Document is a parsed specification-update document.
	Document = domain.Document
	// Database is the RemembERR database container.
	Database = domain.Database
	// Stats summarizes corpus-level counts (Section IV-A of the paper).
	Stats = domain.Stats
	// StructuredErratum is the machine-readable format of Table VII.
	StructuredErratum = domain.StructuredErratum
)

// Vendor values and helpers.
const (
	// Intel covers the Intel Core generations 1-12 studied in the paper.
	Intel = domain.Intel
	// AMD covers the AMD families 10h-19h studied in the paper.
	AMD = domain.AMD
)

// Vendors lists all vendors in canonical order.
var Vendors = domain.Vendors

// ParseVendor converts a vendor name (case-insensitive) into a Vendor.
func ParseVendor(s string) (Vendor, error) { return domain.ParseVendor(s) }

// Workaround categories (Section IV-B3 of the paper).
const (
	WorkaroundNone        = domain.WorkaroundNone
	WorkaroundBIOS        = domain.WorkaroundBIOS
	WorkaroundSoftware    = domain.WorkaroundSoftware
	WorkaroundPeripherals = domain.WorkaroundPeripherals
	WorkaroundAbsent      = domain.WorkaroundAbsent
	WorkaroundDocFix      = domain.WorkaroundDocFix
)

// WorkaroundCategories lists all workaround categories in canonical order.
var WorkaroundCategories = domain.WorkaroundCategories

// ParseWorkaroundCategory converts a label into a WorkaroundCategory.
func ParseWorkaroundCategory(s string) (WorkaroundCategory, error) {
	return domain.ParseWorkaroundCategory(s)
}

// Fix statuses.
const (
	FixNone    = domain.FixNone
	FixPlanned = domain.FixPlanned
	FixDone    = domain.FixDone
)

// FixStatuses lists all fix statuses in canonical order.
var FixStatuses = domain.FixStatuses

// ParseFixStatus converts a status label into a FixStatus.
func ParseFixStatus(s string) (FixStatus, error) { return domain.ParseFixStatus(s) }

// NewDatabase returns an empty database using the base scheme.
func NewDatabase() *Database {
	return domain.NewDatabase(taxonomy.Base())
}

// AssignOrders normalizes the Order index of every document: per vendor,
// documents are sorted by generation index, release date and key. Both
// the generator and the parsing pipeline use this rule, so order indices
// agree regardless of how the database was obtained.
func AssignOrders(db *Database) { domain.AssignOrders(db) }

// Structure converts a classic erratum into the proposed machine-readable
// format (Table I -> Table VII in the paper).
func Structure(e *Erratum) StructuredErratum { return domain.Structure(e) }
