package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/taxonomy"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func sampleDoc() *Document {
	return &Document{
		Key:       "intel-06",
		Vendor:    Intel,
		Label:     "6",
		Reference: "332689-028US",
		Order:     10,
		GenIndex:  6,
		Released:  date(2015, 8, 1),
		Revisions: []Revision{
			{Number: 1, Date: date(2015, 9, 1), Added: []string{"SKL001", "SKL002"}},
			{Number: 2, Date: date(2015, 11, 1), Added: []string{"SKL003"}},
		},
		Errata: []*Erratum{
			{
				DocKey: "intel-06", ID: "SKL001", Seq: 1,
				Title:       "Processor May Hang During Power State Transition",
				Description: "Under complex conditions the processor may hang.",
				Key:         "K0001",
				AddedIn:     1,
				Ann: Annotation{
					Triggers: []Item{{Category: "Trg_POW_pwc", Concrete: "resume from package C6"}},
					Contexts: []Item{{Category: "Ctx_PRV_vmg", Concrete: "in a VM guest"}},
					Effects:  []Item{{Category: "Eff_HNG_hng", Concrete: "the processor hangs"}},
				},
			},
			{
				DocKey: "intel-06", ID: "SKL002", Seq: 2,
				Title:   "Performance Counter May Be Incorrect",
				Key:     "K0002",
				AddedIn: 1,
				Ann: Annotation{
					Effects: []Item{{Category: "Eff_CRP_prf", Concrete: "wrong IA32_PMC0 value"}},
					MSRs:    []string{"IA32_PMC0"},
				},
			},
			{DocKey: "intel-06", ID: "SKL003", Seq: 3, Title: "Spurious Fault", Key: "K0003", AddedIn: 2},
		},
	}
}

func TestVendorRoundTrip(t *testing.T) {
	for _, v := range Vendors {
		got, err := ParseVendor(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVendor(%q) = (%v,%v)", v.String(), got, err)
		}
	}
	if _, err := ParseVendor("via"); err == nil {
		t.Error("ParseVendor accepted unknown vendor")
	}
}

func TestWorkaroundCategoryRoundTrip(t *testing.T) {
	for _, w := range WorkaroundCategories {
		got, err := ParseWorkaroundCategory(w.String())
		if err != nil || got != w {
			t.Errorf("ParseWorkaroundCategory(%q) = (%v,%v)", w.String(), got, err)
		}
	}
	if _, err := ParseWorkaroundCategory("magic"); err == nil {
		t.Error("accepted unknown workaround category")
	}
}

func TestFixStatusRoundTrip(t *testing.T) {
	for _, f := range FixStatuses {
		got, err := ParseFixStatus(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFixStatus(%q) = (%v,%v)", f.String(), got, err)
		}
	}
	if _, err := ParseFixStatus("maybe"); err == nil {
		t.Error("accepted unknown fix status")
	}
}

func TestAnnotationAccessors(t *testing.T) {
	scheme := taxonomy.Base()
	ann := Annotation{
		Triggers: []Item{
			{Category: "Trg_POW_pwc"}, {Category: "Trg_CFG_wrg"}, {Category: "Trg_POW_pwc"},
		},
		Effects: []Item{{Category: "Eff_HNG_hng"}},
	}
	cats := ann.Categories(taxonomy.Trigger, scheme)
	if len(cats) != 2 {
		t.Fatalf("Categories dedup failed: %v", cats)
	}
	// Scheme order: CFG before POW.
	if cats[0] != "Trg_CFG_wrg" || cats[1] != "Trg_POW_pwc" {
		t.Errorf("Categories order = %v", cats)
	}
	cls := ann.Classes(taxonomy.Trigger, scheme)
	if len(cls) != 2 || cls[0] != "Trg_CFG" || cls[1] != "Trg_POW" {
		t.Errorf("Classes = %v", cls)
	}
	if !ann.Has("Eff_HNG_hng") || ann.Has("Eff_HNG_unp") {
		t.Error("Has() wrong")
	}
	if err := ann.Validate(scheme); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAnnotationValidateRejects(t *testing.T) {
	scheme := taxonomy.Base()
	bad := Annotation{Triggers: []Item{{Category: "Trg_NOPE_xxx"}}}
	if err := bad.Validate(scheme); err == nil {
		t.Error("Validate accepted unknown category")
	}
	wrongKind := Annotation{Triggers: []Item{{Category: "Eff_HNG_hng"}}}
	if err := wrongKind.Validate(scheme); err == nil {
		t.Error("Validate accepted effect category as trigger")
	}
}

func TestAnnotationClone(t *testing.T) {
	a := Annotation{
		Triggers: []Item{{Category: "Trg_POW_pwc", Concrete: "x"}},
		MSRs:     []string{"MC0_STATUS"},
	}
	c := a.Clone()
	c.Triggers[0].Concrete = "mutated"
	c.MSRs[0] = "mutated"
	if a.Triggers[0].Concrete != "x" || a.MSRs[0] != "MC0_STATUS" {
		t.Error("Clone shares backing arrays")
	}
}

func TestDocumentLookups(t *testing.T) {
	d := sampleDoc()
	if r := d.Revision(2); r == nil || r.Date != date(2015, 11, 1) {
		t.Error("Revision(2) lookup failed")
	}
	if d.Revision(99) != nil {
		t.Error("Revision(99) should be nil")
	}
	if lr := d.LatestRevision(); lr == nil || lr.Number != 2 {
		t.Error("LatestRevision failed")
	}
	if e := d.Erratum("SKL002"); e == nil || e.Seq != 2 {
		t.Error("Erratum lookup failed")
	}
	if d.Erratum("nope") != nil {
		t.Error("Erratum(nope) should be nil")
	}
	empty := &Document{}
	if empty.LatestRevision() != nil {
		t.Error("LatestRevision of empty doc should be nil")
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(sampleDoc()); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(sampleDoc()); err == nil {
		t.Error("Add accepted duplicate key")
	}
	if err := db.Add(&Document{}); err == nil {
		t.Error("Add accepted empty key")
	}

	amdDoc := &Document{
		Key: "amd-19h-00", Vendor: AMD, Label: "19h 00-0F", Order: 11,
		Errata: []*Erratum{
			{DocKey: "amd-19h-00", ID: "1361", Seq: 1, Title: "Hang", Key: "1361"},
			{DocKey: "amd-19h-00", ID: "1362", Seq: 2, Title: "Other", Key: "1362"},
		},
	}
	if err := db.Add(amdDoc); err != nil {
		t.Fatal(err)
	}

	docs := db.Documents()
	if len(docs) != 2 || docs[0].Vendor != Intel || docs[1].Vendor != AMD {
		t.Fatalf("Documents order wrong: %v", docs)
	}
	if len(db.VendorDocuments(Intel)) != 1 || len(db.VendorDocuments(AMD)) != 1 {
		t.Error("VendorDocuments wrong")
	}
	if got := len(db.Errata()); got != 5 {
		t.Errorf("Errata() = %d entries, want 5", got)
	}
	if got := len(db.VendorErrata(Intel)); got != 3 {
		t.Errorf("VendorErrata(Intel) = %d, want 3", got)
	}
	if err := db.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestUniqueRepresentatives(t *testing.T) {
	db := NewDatabase()
	d1 := sampleDoc()
	if err := db.Add(d1); err != nil {
		t.Fatal(err)
	}
	// A later generation sharing key K0001.
	d2 := &Document{
		Key: "intel-07", Vendor: Intel, Label: "7/8", Order: 11, GenIndex: 7,
		Errata: []*Erratum{
			{DocKey: "intel-07", ID: "KBL001", Seq: 1, Title: "Processor May Hang During Power State Transition", Key: "K0001"},
			{DocKey: "intel-07", ID: "KBL002", Seq: 2, Title: "Fresh Bug", Key: "K0100"},
		},
	}
	if err := db.Add(d2); err != nil {
		t.Fatal(err)
	}
	u := db.Unique()
	if len(u) != 4 {
		t.Fatalf("Unique() = %d entries, want 4", len(u))
	}
	// The K0001 representative must come from the earlier document.
	for _, e := range u {
		if e.Key == "K0001" && e.DocKey != "intel-06" {
			t.Errorf("representative for K0001 from %s, want intel-06", e.DocKey)
		}
	}
	stats := db.ComputeStats()
	if stats.Total != 5 || stats.IntelTotal != 5 || stats.IntelUnique != 4 || stats.Unique != 4 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Annotated != 2 || stats.Unclassified != 2 {
		t.Errorf("annotation stats = %+v", stats)
	}
}

func TestOccurrences(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(sampleDoc()); err != nil {
		t.Fatal(err)
	}
	occ := db.Occurrences(Intel)
	if len(occ) != 3 || len(occ["K0001"]) != 1 {
		t.Errorf("Occurrences = %v", occ)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	db := NewDatabase()
	d := sampleDoc()
	if err := db.Add(d); err != nil {
		t.Fatal(err)
	}
	d.Errata[0].DocKey = "wrong"
	if err := db.Validate(); err == nil {
		t.Error("Validate missed DocKey mismatch")
	}
	d.Errata[0].DocKey = d.Key
	d.Errata[1].ID = ""
	if err := db.Validate(); err == nil {
		t.Error("Validate missed empty ID")
	}
	d.Errata[1].ID = "SKL002"
	d.Errata[2].Ann.Triggers = []Item{{Category: "garbage"}}
	if err := db.Validate(); err == nil {
		t.Error("Validate missed bad annotation")
	}
}

func TestStructuredErratum(t *testing.T) {
	d := sampleDoc()
	e := d.Errata[0]
	e.Implication = "System may hang."
	e.Workaround = ""
	s := Structure(e)
	if s.ID != "K0001" || s.Title != e.Title {
		t.Errorf("Structure header wrong: %+v", s)
	}
	if len(s.Triggers) != 1 || s.Triggers[0].Category != "Trg_POW_pwc" {
		t.Errorf("Structure triggers wrong: %+v", s.Triggers)
	}
	if err := s.Validate(taxonomy.Base()); err != nil {
		t.Errorf("Validate: %v", err)
	}
	out := s.Render()
	for _, want := range []string{"ID: K0001", "Abstract: Trg_POW_pwc",
		"Concrete: resume from package C6", "Workaround: None identified.",
		"Comments: System may hang."} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	// Keyless errata fall back to the full ID.
	e2 := d.Errata[1].Clone()
	e2.Key = ""
	if got := Structure(e2).ID; got != "intel-06/SKL002" {
		t.Errorf("fallback ID = %q", got)
	}
}

func TestStructuredValidateRejects(t *testing.T) {
	scheme := taxonomy.Base()
	if err := (StructuredErratum{Title: "t"}).Validate(scheme); err == nil {
		t.Error("accepted empty ID")
	}
	if err := (StructuredErratum{ID: "x"}).Validate(scheme); err == nil {
		t.Error("accepted empty title")
	}
	bad := StructuredErratum{ID: "x", Title: "t",
		Effects: []Item{{Category: "Trg_POW_pwc"}}}
	if err := bad.Validate(scheme); err == nil {
		t.Error("accepted trigger category as effect")
	}
}

func TestErratumClone(t *testing.T) {
	e := sampleDoc().Errata[0]
	c := e.Clone()
	c.Ann.Triggers[0].Concrete = "mutated"
	if e.Ann.Triggers[0].Concrete == "mutated" {
		t.Error("Erratum.Clone shares annotation")
	}
	if e.FullID() != "intel-06/SKL001" {
		t.Errorf("FullID = %q", e.FullID())
	}
}

func TestSetItems(t *testing.T) {
	var a Annotation
	a.SetItems(taxonomy.Context, []Item{{Category: "Ctx_PRV_smm"}})
	if len(a.Contexts) != 1 {
		t.Error("SetItems(Context) failed")
	}
	a.SetItems(taxonomy.Trigger, []Item{{Category: "Trg_FLT_tmr"}})
	a.SetItems(taxonomy.Effect, []Item{{Category: "Eff_FLT_mca"}})
	for _, k := range taxonomy.Kinds {
		if len(a.Items(k)) != 1 {
			t.Errorf("Items(%v) = %d, want 1", k, len(a.Items(k)))
		}
	}
}
