package dut

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/taxonomy"
)

func twoBugDUT(t *testing.T) *DUT {
	t.Helper()
	bugs := []Bug{
		{
			ID:       "B1",
			Triggers: []string{"Trg_POW_pwc", "Trg_EXT_pci"},
			Contexts: []string{"Ctx_PRV_vmg"},
			Effects:  []string{"Eff_HNG_hng"},
			MSRs:     []string{"MCx_STATUS"},
		},
		{
			ID:       "B2",
			Triggers: []string{"Trg_CFG_wrg"},
			Effects:  []string{"Eff_CRP_reg"},
		},
	}
	d, err := New(bugs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExecuteConjunctiveTriggers(t *testing.T) {
	d := twoBugDUT(t)
	// Only one of B1's two triggers: nothing happens.
	r := d.Execute(Stimulus{
		Triggers: []string{"Trg_POW_pwc"},
		Context:  "Ctx_PRV_vmg",
		Monitors: []string{"Eff_HNG_hng"},
	})
	if len(r.Triggered) != 0 {
		t.Errorf("partial trigger set triggered %v", r.Triggered)
	}
	// Both triggers, right context, monitored effect: detected.
	r = d.Execute(Stimulus{
		Triggers: []string{"Trg_POW_pwc", "Trg_EXT_pci"},
		Context:  "Ctx_PRV_vmg",
		Monitors: []string{"Eff_HNG_hng"},
	})
	if len(r.Triggered) != 1 || len(r.Detected) != 1 || r.Detected[0] != "B1" {
		t.Errorf("result = %+v", r)
	}
}

func TestExecuteContextDisjunctive(t *testing.T) {
	d := twoBugDUT(t)
	// Wrong context: B1 does not trigger.
	r := d.Execute(Stimulus{
		Triggers: []string{"Trg_POW_pwc", "Trg_EXT_pci"},
		Context:  "Ctx_PRV_smm",
		Monitors: []string{"Eff_HNG_hng"},
	})
	if len(r.Triggered) != 0 {
		t.Errorf("wrong context triggered %v", r.Triggered)
	}
	// B2 has no context constraint: any context works.
	r = d.Execute(Stimulus{
		Triggers: []string{"Trg_CFG_wrg"},
		Context:  "Ctx_PRV_smm",
		Monitors: []string{"Eff_CRP_reg"},
	})
	if len(r.Detected) != 1 || r.Detected[0] != "B2" {
		t.Errorf("context-free bug not detected: %+v", r)
	}
}

func TestObservationRequired(t *testing.T) {
	d := twoBugDUT(t)
	// Triggered but no monitored effect: missed detection.
	r := d.Execute(Stimulus{
		Triggers: []string{"Trg_POW_pwc", "Trg_EXT_pci"},
		Context:  "Ctx_PRV_vmg",
		Monitors: []string{"Eff_FLT_mca"},
	})
	if len(r.Triggered) != 1 || len(r.Detected) != 0 {
		t.Errorf("result = %+v, want triggered-but-undetected", r)
	}
	// MSR witness suffices for detection.
	r = d.Execute(Stimulus{
		Triggers: []string{"Trg_POW_pwc", "Trg_EXT_pci"},
		Context:  "Ctx_PRV_vmg",
		Monitors: []string{"MCx_STATUS"},
	})
	if len(r.Detected) != 1 {
		t.Errorf("MSR monitor missed: %+v", r)
	}
}

func TestBudgetsEnforced(t *testing.T) {
	bugs := []Bug{{
		ID:       "B",
		Triggers: []string{"T1", "T2", "T3", "T4", "T5"},
		Effects:  []string{"E1"},
	}}
	d, err := New(bugs, Config{ObservationBudget: 1, MaxTriggersPerTest: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Five triggers needed, budget is four: impossible to trigger.
	r := d.Execute(Stimulus{
		Triggers: []string{"T1", "T2", "T3", "T4", "T5"},
		Monitors: []string{"E1"},
	})
	if len(r.Triggered) != 0 {
		t.Error("trigger budget not enforced")
	}
	// The second monitor must be ignored.
	bugs2 := []Bug{{ID: "C", Triggers: []string{"T1"}, Effects: []string{"E2"}}}
	d2, err := New(bugs2, Config{ObservationBudget: 1, MaxTriggersPerTest: 4})
	if err != nil {
		t.Fatal(err)
	}
	r = d2.Execute(Stimulus{Triggers: []string{"T1"}, Monitors: []string{"E1", "E2"}})
	if len(r.Detected) != 0 {
		t.Error("observation budget not enforced")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Bug{{ID: "A", Triggers: []string{"T"}, Effects: []string{"E"}}},
		Config{ObservationBudget: 0, MaxTriggersPerTest: 1}); err == nil {
		t.Error("accepted zero budget")
	}
	if _, err := New([]Bug{{Triggers: []string{"T"}, Effects: []string{"E"}}}, DefaultConfig()); err == nil {
		t.Error("accepted bug without ID")
	}
	if _, err := New([]Bug{{ID: "A", Effects: []string{"E"}}}, DefaultConfig()); err == nil {
		t.Error("accepted bug without triggers")
	}
	if _, err := New([]Bug{{ID: "A", Triggers: []string{"T"}}}, DefaultConfig()); err == nil {
		t.Error("accepted unobservable bug")
	}
	if _, err := New([]Bug{
		{ID: "A", Triggers: []string{"T"}, Effects: []string{"E"}},
		{ID: "A", Triggers: []string{"T"}, Effects: []string{"E"}},
	}, DefaultConfig()); err == nil {
		t.Error("accepted duplicate bug IDs")
	}
}

func TestBugsFromErrata(t *testing.T) {
	scheme := taxonomy.Base()
	errata := []*core.Erratum{
		{
			DocKey: "intel-06", ID: "S1", Seq: 1,
			Ann: core.Annotation{
				Triggers: []core.Item{{Category: "Trg_POW_pwc"}},
				Effects:  []core.Item{{Category: "Eff_HNG_hng"}},
				MSRs:     []string{"MCx_STATUS"},
			},
		},
		// No triggers: skipped.
		{DocKey: "intel-06", ID: "S2", Seq: 2,
			Ann: core.Annotation{Effects: []core.Item{{Category: "Eff_HNG_unp"}}}},
	}
	bugs := BugsFromErrata(errata, scheme, 0, 1, nil)
	if len(bugs) != 1 || bugs[0].ID != "intel-06/S1" {
		t.Fatalf("bugs = %+v", bugs)
	}
	if len(bugs[0].Triggers) != 1 || bugs[0].MSRs[0] != "MCx_STATUS" {
		t.Errorf("bug fields = %+v", bugs[0])
	}
	// Limit and shuffle determinism.
	many := make([]*core.Erratum, 20)
	for i := range many {
		many[i] = &core.Erratum{
			DocKey: "intel-06", ID: string(rune('A' + i)), Seq: i + 1,
			Ann: core.Annotation{
				Triggers: []core.Item{{Category: "Trg_CFG_wrg"}},
				Effects:  []core.Item{{Category: "Eff_CRP_reg"}},
			},
		}
	}
	b1 := BugsFromErrata(many, scheme, 5, 1, rand.New(rand.NewSource(7)))
	b2 := BugsFromErrata(many, scheme, 5, 1, rand.New(rand.NewSource(7)))
	if len(b1) != 5 || len(b2) != 5 {
		t.Fatal("limit not applied")
	}
	for i := range b1 {
		if b1[i].ID != b2[i].ID {
			t.Error("shuffle not deterministic per seed")
		}
	}
}

func TestCampaignStrategies(t *testing.T) {
	scheme := taxonomy.Base()
	bugs := []Bug{
		{ID: "B1", Triggers: []string{"Trg_CFG_wrg", "Trg_POW_tht"},
			Effects: []string{"Eff_CRP_reg"}, MSRs: []string{"MCx_STATUS"}},
		{ID: "B2", Triggers: []string{"Trg_FEA_dbg", "Trg_PRV_vmt"},
			Contexts: []string{"Ctx_PRV_vmg"}, Effects: []string{"Eff_HNG_hng"}},
	}
	d, err := New(bugs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	directives := []DirectiveInput{
		{Triggers: []string{"Trg_CFG_wrg", "Trg_POW_tht"},
			Monitors: []string{"Eff_CRP_reg", "MCx_STATUS"}},
		{Triggers: []string{"Trg_FEA_dbg", "Trg_PRV_vmt"},
			Contexts: []string{"Ctx_PRV_vmg"},
			Monitors: []string{"Eff_HNG_hng"}},
	}
	directed := NewDirectedStrategy(directives, scheme, DefaultConfig(), 1)
	dres := RunCampaign(d, directed, 10, 5)
	if dres.Detected != 2 {
		t.Errorf("directed detected %d/2 in 10 tests", dres.Detected)
	}
	if dres.Strategy != "rememberr-directed" {
		t.Errorf("strategy name %q", dres.Strategy)
	}
	if len(dres.DetectionCurve) != 2 {
		t.Errorf("curve = %v", dres.DetectionCurve)
	}
	if dres.MedianTestsToDetect() < 0 {
		t.Error("median should exist")
	}

	random := NewRandomStrategy(scheme, []string{"MCx_STATUS"}, DefaultConfig(), 1)
	rres := RunCampaign(d, random, 10, 5)
	if rres.Detected > dres.Detected {
		t.Errorf("random (%d) beat directed (%d) on its own directives", rres.Detected, dres.Detected)
	}
	// Empty campaign edge cases.
	empty := RunCampaign(d, NewDirectedStrategy(nil, scheme, DefaultConfig(), 1), 3, 1)
	if empty.Detected != 0 || empty.MedianTestsToDetect() != -1 {
		t.Errorf("empty-strategy campaign = %+v", empty)
	}
}

// The headline claim of the directed-testing case study: with equal
// budgets, the RemembERR-directed strategy detects many more bugs than
// uniform CRV on a realistic bug population.
func TestDirectedBeatsRandom(t *testing.T) {
	scheme := taxonomy.Base()
	rng := rand.New(rand.NewSource(3))
	// A synthetic population of 30 bugs with 2-3 conjunctive triggers
	// drawn from a realistic skew.
	pool := []string{"Trg_CFG_wrg", "Trg_POW_tht", "Trg_POW_pwc", "Trg_FEA_dbg",
		"Trg_PRV_vmt", "Trg_EXT_pci", "Trg_EXT_ram", "Trg_CFG_vmc"}
	effects := []string{"Eff_CRP_reg", "Eff_HNG_hng", "Eff_HNG_unp", "Eff_FLT_mca"}
	var bugs []Bug
	var directives []DirectiveInput
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(2)
		trgs := sampleDistinct(rng, pool, n)
		eff := effects[rng.Intn(len(effects))]
		bugs = append(bugs, Bug{
			ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Triggers: trgs, Effects: []string{eff},
		})
		if i%2 == 0 { // the campaign knows only half the interactions
			directives = append(directives, DirectiveInput{
				Triggers: trgs[:2],
				Monitors: []string{eff, "Eff_CRP_reg", "Eff_HNG_hng", "Eff_HNG_unp"},
			})
		}
	}
	d, err := New(bugs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const tests = 400
	dres := RunCampaign(d, NewDirectedStrategy(directives, scheme, DefaultConfig(), 1), tests, 100)
	rres := RunCampaign(d, NewRandomStrategy(scheme, nil, DefaultConfig(), 1), tests, 100)
	if dres.Detected <= rres.Detected {
		t.Errorf("directed %d vs random %d detected bugs in %d tests",
			dres.Detected, rres.Detected, tests)
	}
}
