package dut

import (
	"math/rand"
	"sort"

	"repro/internal/taxonomy"
	"repro/pkg/domain"
)

// Strategy produces the next stimulus of a testing campaign.
type Strategy interface {
	// Name identifies the strategy in results.
	Name() string
	// Next returns the stimulus for test number i.
	Next(i int) Stimulus
}

// RandomStrategy is the Constrained-Random-Verification baseline: it
// samples trigger sets, contexts and observation points uniformly from
// the scheme, without any errata-derived knowledge.
type RandomStrategy struct {
	rng       *rand.Rand
	triggers  []string
	contexts  []string
	monitors  []string
	nTriggers int
	nMonitors int
}

// NewRandomStrategy builds the CRV baseline over the full scheme.
func NewRandomStrategy(scheme domain.Scheme, msrs []string, cfg Config, seed int64) *RandomStrategy {
	monitors := append([]string(nil), scheme.CategoryIDs(taxonomy.Effect)...)
	monitors = append(monitors, msrs...)
	return &RandomStrategy{
		rng:       rand.New(rand.NewSource(seed)),
		triggers:  scheme.CategoryIDs(taxonomy.Trigger),
		contexts:  append([]string{""}, scheme.CategoryIDs(taxonomy.Context)...),
		monitors:  monitors,
		nTriggers: cfg.MaxTriggersPerTest,
		nMonitors: cfg.ObservationBudget,
	}
}

// Name implements Strategy.
func (s *RandomStrategy) Name() string { return "random-crv" }

// Next implements Strategy.
func (s *RandomStrategy) Next(int) Stimulus {
	return Stimulus{
		Triggers: sampleDistinct(s.rng, s.triggers, s.nTriggers),
		Context:  s.contexts[s.rng.Intn(len(s.contexts))],
		Monitors: sampleDistinct(s.rng, s.monitors, s.nMonitors),
	}
}

func sampleDistinct(rng *rand.Rand, pool []string, n int) []string {
	if n > len(pool) {
		n = len(pool)
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// DirectiveInput is one campaign directive consumed by the directed
// strategy: the trigger set to apply together, the contexts to cover
// and the observation points to monitor. It mirrors the facade's
// Directive type without importing it (internal packages cannot import
// the root package).
type DirectiveInput struct {
	Triggers []string
	Contexts []string
	Monitors []string
}

// DirectedStrategy drives the campaign with RemembERR-derived
// directives: it cycles through them, padding trigger sets and
// observation points with directive-local knowledge, and rotating
// through the directive's contexts.
type DirectedStrategy struct {
	rng        *rand.Rand
	directives []DirectiveInput
	triggers   []string
	nTriggers  int
	nMonitors  int
}

// NewDirectedStrategy builds the RemembERR-directed strategy.
func NewDirectedStrategy(directives []DirectiveInput, scheme domain.Scheme, cfg Config, seed int64) *DirectedStrategy {
	return &DirectedStrategy{
		rng:        rand.New(rand.NewSource(seed)),
		directives: append([]DirectiveInput(nil), directives...),
		triggers:   scheme.CategoryIDs(taxonomy.Trigger),
		nTriggers:  cfg.MaxTriggersPerTest,
		nMonitors:  cfg.ObservationBudget,
	}
}

// Name implements Strategy.
func (s *DirectedStrategy) Name() string { return "rememberr-directed" }

// Next implements Strategy.
func (s *DirectedStrategy) Next(i int) Stimulus {
	if len(s.directives) == 0 {
		return Stimulus{}
	}
	d := s.directives[i%len(s.directives)]
	stim := Stimulus{
		Triggers: append([]string(nil), d.Triggers...),
		Monitors: append([]string(nil), d.Monitors...),
	}
	// Rotate through the directive's contexts (disjunctive: any one
	// suffices for the bugs behind the directive).
	if len(d.Contexts) > 0 {
		stim.Context = d.Contexts[(i/len(s.directives))%len(d.Contexts)]
	}
	// Pad the trigger set with random extra triggers up to the budget:
	// the directive pins the necessary conjunction, the padding explores
	// around it.
	for len(stim.Triggers) < s.nTriggers {
		t := s.triggers[s.rng.Intn(len(s.triggers))]
		if !contains(stim.Triggers, t) {
			stim.Triggers = append(stim.Triggers, t)
		}
	}
	if len(stim.Monitors) > s.nMonitors {
		stim.Monitors = stim.Monitors[:s.nMonitors]
	}
	return stim
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// CampaignResult summarizes one campaign run.
type CampaignResult struct {
	// Strategy is the strategy name.
	Strategy string
	// Tests is the number of executed stimuli.
	Tests int
	// Detected is the number of distinct bugs detected.
	Detected int
	// Triggered is the number of distinct bugs triggered (detected or
	// not — triggering without observing is a missed detection).
	Triggered int
	// FirstDetection maps bug IDs to the test index of their first
	// detection.
	FirstDetection map[string]int
	// DetectionCurve[i] is the number of distinct bugs detected after
	// i+1 tests, sampled every SampleEvery tests.
	DetectionCurve []int
	// SampleEvery is the curve sampling interval.
	SampleEvery int
}

// RunCampaign executes a strategy against the DUT for the given number
// of tests.
func RunCampaign(d *DUT, s Strategy, tests, sampleEvery int) *CampaignResult {
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	res := &CampaignResult{
		Strategy:       s.Name(),
		Tests:          tests,
		FirstDetection: make(map[string]int),
		SampleEvery:    sampleEvery,
	}
	triggered := map[string]bool{}
	for i := 0; i < tests; i++ {
		r := d.Execute(s.Next(i))
		for _, id := range r.Triggered {
			triggered[id] = true
		}
		for _, id := range r.Detected {
			if _, ok := res.FirstDetection[id]; !ok {
				res.FirstDetection[id] = i
			}
		}
		if (i+1)%sampleEvery == 0 {
			res.DetectionCurve = append(res.DetectionCurve, len(res.FirstDetection))
		}
	}
	res.Detected = len(res.FirstDetection)
	res.Triggered = len(triggered)
	return res
}

// MedianTestsToDetect returns the median first-detection index over the
// detected bugs, or -1 when nothing was detected.
func (r *CampaignResult) MedianTestsToDetect() int {
	if len(r.FirstDetection) == 0 {
		return -1
	}
	var idxs []int
	for _, i := range r.FirstDetection {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs[len(idxs)/2]
}
