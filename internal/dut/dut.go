// Package dut simulates a design under test for directed testing
// campaigns — the application Section VI of the paper argues for but
// does not implement.
//
// A DUT hides a set of bugs, each defined exactly as RemembERR models
// errata: a conjunctive set of required triggers, a disjunctive set of
// admissible contexts, and a disjunctive set of observable effects
// (including MSR witnesses). A test stimulus applies a set of trigger
// types in one context and monitors a bounded set of observation
// points; a bug is *triggered* when all of its triggers are applied in
// an admissible context, and *detected* only when at least one of its
// effects or witness registers is among the monitored points — the
// paper's input-space and observation-space challenges in miniature.
package dut

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/taxonomy"
	"repro/pkg/domain"
)

// Bug is one hidden design flaw.
type Bug struct {
	// ID names the bug.
	ID string
	// Triggers is the conjunctive set of abstract trigger categories
	// that must all be applied in one stimulus.
	Triggers []string
	// Contexts is the disjunctive set of admissible contexts; empty
	// means the bug manifests in any context.
	Contexts []string
	// Effects is the disjunctive set of observable effect categories.
	Effects []string
	// MSRs lists registers witnessing the bug (observation points of
	// the cheap online kind).
	MSRs []string
}

// Stimulus is one test input.
type Stimulus struct {
	// Triggers is the set of abstract trigger categories exercised.
	Triggers []string
	// Context is the context the test runs in ("" = default/user mode).
	Context string
	// Monitors is the set of observation points read after the test:
	// effect categories and/or MSR names. Its size is limited by the
	// DUT's observation budget.
	Monitors []string
}

// Result reports one stimulus execution.
type Result struct {
	// Triggered lists bugs whose trigger/context condition was met.
	Triggered []string
	// Detected lists triggered bugs whose effect or MSR was monitored.
	Detected []string
}

// DUT is the simulated design.
type DUT struct {
	bugs []Bug
	// ObservationBudget caps len(Stimulus.Monitors); extra monitors are
	// ignored (excessive observation is not free, Section VI).
	ObservationBudget int
	// MaxTriggersPerTest caps the number of triggers a single stimulus
	// can apply (driving everything at once is not a realistic test).
	MaxTriggersPerTest int
}

// Config controls DUT construction.
type Config struct {
	ObservationBudget  int
	MaxTriggersPerTest int
}

// DefaultConfig mirrors a constrained post-silicon setup: four
// observation points and four simultaneously exercised trigger types.
func DefaultConfig() Config {
	return Config{ObservationBudget: 4, MaxTriggersPerTest: 4}
}

// New creates a DUT hiding the given bugs.
func New(bugs []Bug, cfg Config) (*DUT, error) {
	if cfg.ObservationBudget <= 0 || cfg.MaxTriggersPerTest <= 0 {
		return nil, fmt.Errorf("dut: budgets must be positive")
	}
	seen := map[string]bool{}
	for _, b := range bugs {
		if b.ID == "" {
			return nil, fmt.Errorf("dut: bug without ID")
		}
		if seen[b.ID] {
			return nil, fmt.Errorf("dut: duplicate bug ID %s", b.ID)
		}
		seen[b.ID] = true
		if len(b.Triggers) == 0 {
			return nil, fmt.Errorf("dut: bug %s without triggers", b.ID)
		}
		if len(b.Effects) == 0 && len(b.MSRs) == 0 {
			return nil, fmt.Errorf("dut: bug %s without observable effects", b.ID)
		}
	}
	return &DUT{
		bugs:               append([]Bug(nil), bugs...),
		ObservationBudget:  cfg.ObservationBudget,
		MaxTriggersPerTest: cfg.MaxTriggersPerTest,
	}, nil
}

// NumBugs returns the number of hidden bugs.
func (d *DUT) NumBugs() int { return len(d.bugs) }

// BugIDs returns the hidden bug identifiers (for evaluation only — a
// real campaign would not see them).
func (d *DUT) BugIDs() []string {
	out := make([]string, len(d.bugs))
	for i, b := range d.bugs {
		out[i] = b.ID
	}
	return out
}

// Execute runs one stimulus and reports triggered and detected bugs.
func (d *DUT) Execute(s Stimulus) Result {
	applied := map[string]bool{}
	for i, t := range s.Triggers {
		if i >= d.MaxTriggersPerTest {
			break
		}
		applied[t] = true
	}
	monitored := map[string]bool{}
	for i, m := range s.Monitors {
		if i >= d.ObservationBudget {
			break
		}
		monitored[m] = true
	}

	var res Result
	for _, b := range d.bugs {
		if !triggered(b, applied, s.Context) {
			continue
		}
		res.Triggered = append(res.Triggered, b.ID)
		if observed(b, monitored) {
			res.Detected = append(res.Detected, b.ID)
		}
	}
	return res
}

func triggered(b Bug, applied map[string]bool, ctx string) bool {
	for _, t := range b.Triggers {
		if !applied[t] {
			return false
		}
	}
	if len(b.Contexts) == 0 {
		return true
	}
	for _, c := range b.Contexts {
		if c == ctx {
			return true
		}
	}
	return false
}

func observed(b Bug, monitored map[string]bool) bool {
	for _, e := range b.Effects {
		if monitored[e] {
			return true
		}
	}
	for _, m := range b.MSRs {
		if monitored[m] {
			return true
		}
	}
	return false
}

// BugsFromErrata converts annotated errata into hidden DUT bugs: each
// erratum's conjunctive triggers, disjunctive contexts and effects
// become one bug. Errata with fewer than minTriggers triggers are
// skipped (minTriggers <= 1 keeps every triggered erratum) — campaigns
// about design-testing gaps care about the combined-trigger population
// the paper highlights (49% of errata need at least two triggers).
func BugsFromErrata(errata []*core.Erratum, scheme domain.Scheme, limit, minTriggers int, rng *rand.Rand) []Bug {
	if minTriggers < 1 {
		minTriggers = 1
	}
	var candidates []*core.Erratum
	for _, e := range errata {
		if len(e.Ann.Categories(taxonomy.Trigger, scheme)) >= minTriggers &&
			(len(e.Ann.Effects) > 0 || len(e.Ann.MSRs) > 0) {
			candidates = append(candidates, e)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].FullID() < candidates[j].FullID()
	})
	if rng != nil {
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
	}
	if limit > 0 && len(candidates) > limit {
		candidates = candidates[:limit]
	}
	var out []Bug
	for _, e := range candidates {
		b := Bug{
			ID:       e.FullID(),
			Triggers: e.Ann.Categories(taxonomy.Trigger, scheme),
			Contexts: e.Ann.Categories(taxonomy.Context, scheme),
			Effects:  e.Ann.Categories(taxonomy.Effect, scheme),
			MSRs:     append([]string(nil), e.Ann.MSRs...),
		}
		out = append(out, b)
	}
	return out
}
