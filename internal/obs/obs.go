// Package obs is the dependency-free observability layer shared by the
// build pipeline and the serving layer: a registry of named counters,
// gauges and fixed-bucket histograms, plus lightweight build-stage
// spans (span.go).
//
// Design constraints, in order:
//
//   - Lock-free hot path. Instruments are resolved from the registry
//     once, at wiring time; every subsequent Inc/Add/Observe is one or
//     two atomic operations on a leaf value. The registry mutex guards
//     registration only, never recording.
//   - Nil is off. Every instrument method is a no-op on a nil receiver,
//     and a nil *Registry hands out nil instruments, so instrumented
//     code paths carry a single predictable branch when observability
//     is disabled instead of an interface call or a feature flag.
//   - Snapshot-consistent reads. Value() and Snapshot() see a state
//     that some serialization of the concurrent updates passed through;
//     histogram snapshots double-read the observation count and retry
//     so that a quiesced histogram always reports exact totals.
//   - Stable exposition. WritePrometheus emits families sorted by
//     metric name and series sorted by label signature, so the output
//     for a fixed set of values is byte-stable (goldens can pin it).
//
// The registry intentionally implements the subset of the Prometheus
// data model the project needs (counter, gauge, histogram; constant
// label sets fixed at registration) rather than depending on
// client_golang.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to an instrument at
// registration time.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing integer. The zero value is
// ready to use; a nil counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by n (n must be >= 0; negative deltas are
// discarded to preserve monotonicity).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The zero value is ready
// to use; a nil gauge discards all updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency/size histogram. Buckets are
// defined by their inclusive upper bounds (Prometheus "le" semantics);
// an implicit +Inf bucket catches the overflow. A nil histogram
// discards all observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64   // incremented last in Observe
}

// LatencyBuckets is the default request-latency bucket layout in
// seconds: the classic Prometheus DefBuckets extended downward with
// sub-millisecond buckets (100 µs to 2.5 ms). Indexed point lookups
// and fragment-stitched responses complete in tens of microseconds,
// so a layout bottoming out at 5 ms reported the same p50 for every
// serving configuration; the sub-ms decades make those differences
// measurable without changing the upper decades existing dashboards
// key on.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025,
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; the +Inf bucket is
	// implicit.
	Bounds []float64
	// Counts are the per-bucket (non-cumulative) observation counts;
	// len(Bounds)+1 entries, the last being the +Inf bucket.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum float64
}

// Snapshot reads a consistent view: the total count is read before and
// after the buckets, and the read retries while a concurrent Observe
// lands in between. On a quiesced histogram the snapshot is exact; under
// sustained concurrent writes the final attempt is returned as a
// best-effort view (bucket counts may lead the total by in-flight
// observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for attempt := 0; ; attempt++ {
		before := h.count.Load()
		for i := range h.counts {
			snap.Counts[i] = h.counts[i].Load()
		}
		snap.Sum = math.Float64frombits(h.sum.Load())
		after := h.count.Load()
		if before == after || attempt >= 3 {
			snap.Count = after
			return snap
		}
	}
}

// metricKind discriminates the instrument types of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labeled instrument inside a family. Exactly one of the
// value fields is set, matching the family kind (gaugeFn, when set,
// takes precedence over the gauge value and is sampled at write time).
type series struct {
	labels  []Label // sorted by name
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // by label signature
}

// Registry is a set of named instruments. Registration (the Counter /
// Gauge / Histogram methods) is mutex-guarded and idempotent: asking
// for an existing name+label combination returns the existing
// instrument, so independent components can share one process-wide
// registry without coordination. Recording on the returned instruments
// is lock-free. A nil *Registry is valid and hands out nil (no-op)
// instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// validName matches the Prometheus metric-name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName matches the Prometheus label-name grammar.
func validLabelName(s string) bool {
	return validName(s) && !strings.Contains(s, ":")
}

// signature canonicalizes a label set: sorted by name, joined. The
// input slice is sorted in place.
func signature(labels []Label) string {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

// register resolves or creates the series for (name, labels) with the
// given kind. Mismatched kinds for an existing name panic: that is a
// wiring bug, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *series {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic("obs: invalid label name " + strconv.Quote(l.Name) + " on metric " + name)
		}
	}
	labels = append([]Label(nil), labels...)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: labels}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			// bounds are attached by the caller
		}
		f.series[sig] = s
	}
	return s
}

// Counter returns the counter registered under name with the given
// constant labels, creating it on first use. On a nil registry it
// returns nil (a valid no-op counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, labels).counter
}

// Gauge returns the gauge registered under name with the given constant
// labels, creating it on first use. On a nil registry it returns nil (a
// valid no-op gauge).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, labels).gauge
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// exposition time — for values that already live elsewhere (cache
// entry counts, queue lengths). fn must be safe for concurrent calls.
// Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	s.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the fixed-bucket histogram registered under name
// with the given constant labels, creating it on first use with the
// given inclusive upper bounds (which must be sorted ascending; an
// +Inf overflow bucket is implicit). On a nil registry it returns nil
// (a valid no-op histogram).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i-1] < bounds[i]) {
			panic("obs: histogram bounds not strictly ascending for " + name)
		}
	}
	s := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	if s.hist == nil {
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	h := s.hist
	r.mu.Unlock()
	return h
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// labelString renders a label set (plus an optional extra label, used
// for histogram "le") as {a="1",b="2"}; empty sets render as "".
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes every registered instrument in the Prometheus
// text exposition format (version 0.0.4). Families are sorted by
// metric name and series by label signature, so the output is stable
// for a fixed set of values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type flatSeries struct {
		sig string
		s   *series
	}
	fams := make([]*family, 0, len(names))
	flat := make(map[string][]flatSeries, len(names))
	for _, name := range names {
		f := r.families[name]
		fams = append(fams, f)
		rows := make([]flatSeries, 0, len(f.series))
		for sig, s := range f.series {
			rows = append(rows, flatSeries{sig, s})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].sig < rows[j].sig })
		flat[name] = rows
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, row := range flat[f.name] {
			s := row.s
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(s.labels), s.counter.Value())
			case kindGauge:
				v := s.gauge.Value()
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(v))
			case kindHistogram:
				snap := s.hist.Snapshot()
				cum := uint64(0)
				for i, c := range snap.Counts {
					cum += c
					le := "+Inf"
					if i < len(snap.Bounds) {
						le = formatFloat(snap.Bounds[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(s.labels, L("le", le)), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(s.labels), formatFloat(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(s.labels), snap.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
