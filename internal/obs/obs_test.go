package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent is the -race acceptance test: concurrent
// increments through instruments resolved from one registry must be
// exact, not approximate.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perGoroutine = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolving inside the goroutine exercises concurrent
			// registration returning the same instrument.
			c := reg.Counter("test_ops_total", "ops", L("kind", "x"))
			gauge := reg.Gauge("test_level", "level")
			h := reg.Histogram("test_lat", "lat", []float64{1, 10})
			for i := 0; i < perGoroutine; i++ {
				c.Inc()
				gauge.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	want := int64(goroutines * perGoroutine)
	if got := reg.Counter("test_ops_total", "ops", L("kind", "x")).Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("test_level", "level").Value(); got != float64(want) {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	snap := reg.Histogram("test_lat", "lat", []float64{1, 10}).Snapshot()
	if snap.Count != uint64(want) || snap.Counts[0] != uint64(want) {
		t.Errorf("histogram count = %d (bucket0 %d), want %d", snap.Count, snap.Counts[0], want)
	}
	if snap.Sum != 0.5*float64(want) {
		t.Errorf("histogram sum = %v, want %v", snap.Sum, 0.5*float64(want))
	}
}

// TestHistogramBuckets pins the le ("less than or equal") boundary
// semantics: a value equal to an upper bound lands in that bucket, the
// first value above the last bound lands in +Inf.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("b", "", []float64{1, 2, 5})
	for _, v := range []float64{0, 0.5, 1, 1.0001, 2, 2.5, 5, 5.0001, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// Buckets: (-inf,1]=3  (1,2]=2  (2,5]=2  (5,+inf)=2
	want := []uint64{3, 2, 2, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
	if snap.Count != 9 {
		t.Errorf("count = %d, want 9", snap.Count)
	}
	if snap.Sum != 0+0.5+1+1.0001+2+2.5+5+5.0001+100 {
		t.Errorf("sum = %v", snap.Sum)
	}
}

// TestNilSafety proves the "nil is off" contract: a nil registry hands
// out nil instruments and every operation on them is a no-op.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", LatencyBuckets)
	reg.GaugeFunc("x_fn", "", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments recorded values")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var sp *Span
	sp.SetItems(3)
	sp.End()
	if sp.StartChild("x") != nil {
		t.Fatal("nil span produced a child")
	}
	if sp.Duration() != 0 || sp.ChildDuration() != 0 {
		t.Fatal("nil span reported durations")
	}
}

// TestPrometheusGolden pins the exposition byte for byte: families
// sorted by name, series sorted by label signature, histogram buckets
// cumulative with the implicit +Inf, label values escaped.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	// Register deliberately out of name order and label order.
	reg.Counter("zz_total", "Last family.").Add(7)
	reg.Counter("aa_requests_total", "Requests.", L("endpoint", "stats")).Add(2)
	reg.Counter("aa_requests_total", "Requests.", L("endpoint", "errata")).Add(40)
	reg.Gauge("mm_level", "A gauge.").Set(1.5)
	reg.GaugeFunc("mm_fn", "Sampled.", func() float64 { return 42 })
	h := reg.Histogram("hh_seconds", "A histogram.", []float64{0.1, 0.5}, L("op", `quo"te`))
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_requests_total Requests.
# TYPE aa_requests_total counter
aa_requests_total{endpoint="errata"} 40
aa_requests_total{endpoint="stats"} 2
# HELP hh_seconds A histogram.
# TYPE hh_seconds histogram
hh_seconds_bucket{op="quo\"te",le="0.1"} 2
hh_seconds_bucket{op="quo\"te",le="0.5"} 3
hh_seconds_bucket{op="quo\"te",le="+Inf"} 4
hh_seconds_sum{op="quo\"te"} 2.4
hh_seconds_count{op="quo\"te"} 4
# HELP mm_fn Sampled.
# TYPE mm_fn gauge
mm_fn 42
# HELP mm_level A gauge.
# TYPE mm_level gauge
mm_level 1.5
# HELP zz_total Last family.
# TYPE zz_total counter
zz_total 7
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	// Stability: a second write is byte-identical.
	var b2 strings.Builder
	reg.WritePrometheus(&b2)
	if b.String() != b2.String() {
		t.Error("two writes of an unchanged registry differ")
	}
}

// TestRegistryIdempotent proves registration returns the same
// instrument for the same identity and panics on kind conflicts.
func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "", L("a", "1"), L("b", "2"))
	b := reg.Counter("c_total", "", L("b", "2"), L("a", "1")) // label order irrelevant
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	c := reg.Counter("c_total", "", L("a", "2"), L("b", "2"))
	if a == c {
		t.Fatal("distinct label values shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	reg.Gauge("c_total", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	reg := NewRegistry()
	for _, fn := range []func(){
		func() { reg.Counter("bad-name", "") },
		func() { reg.Counter("1leading", "") },
		func() { reg.Counter("ok_total", "", L("bad-label", "v")) },
		func() { reg.Histogram("h", "", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestSpanTree exercises the span lifecycle: tree shape, durations,
// item counts, and the stage gauges published on End.
func TestSpanTree(t *testing.T) {
	reg := NewRegistry()
	root := StartSpan(reg, "build")
	a := root.StartChild("parse")
	a.SetItems(10)
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := root.StartChild("dedup")
	inner := b.StartChild("score")
	time.Sleep(time.Millisecond)
	inner.End()
	b.End()
	root.End()

	if len(root.Children) != 2 || root.Children[0] != a || root.Children[1] != b {
		t.Fatalf("tree shape wrong: %+v", root.Children)
	}
	if a.Duration() <= 0 || b.Duration() <= 0 || root.Duration() < a.Duration()+b.Duration() {
		t.Errorf("durations inconsistent: root %v, a %v, b %v", root.Duration(), a.Duration(), b.Duration())
	}
	if root.ChildDuration() != a.Duration()+b.Duration() {
		t.Errorf("ChildDuration = %v, want %v", root.ChildDuration(), a.Duration()+b.Duration())
	}
	if got := reg.Gauge("rememberr_build_stage_seconds", "", L("stage", "parse")).Value(); got <= 0 {
		t.Errorf("stage seconds gauge = %v, want > 0", got)
	}
	if got := reg.Gauge("rememberr_build_stage_items", "", L("stage", "parse")).Value(); got != 10 {
		t.Errorf("stage items gauge = %v, want 10", got)
	}

	// End is idempotent.
	d := a.DurationNS
	a.End()
	if a.DurationNS != d {
		t.Error("second End changed the duration")
	}
}
