package obs

import "time"

// Span measures one stage of a larger operation: wall time, an optional
// item count, and child stages. Spans form a tree that the build
// pipeline exports as BuildReport.Trace, and on End each span also
// records its duration and item count into the registry it was started
// against (as the rememberr_build_stage_seconds and
// rememberr_build_stage_items gauges, labeled by stage name), so the
// last build's stage profile is visible on /metrics alongside the
// serving counters.
//
// Spans are deliberately minimal: single-goroutine stages measured with
// the monotonic clock, no context propagation, no sampling. A span tree
// must be built and ended from one goroutine; the exported fields are
// safe to read once the root span has ended. All methods are no-ops on
// a nil *Span, so optional tracing threads through call chains as a
// possibly-nil pointer without branching at every call site.
type Span struct {
	// Name identifies the stage ("parse", "dedup", ...).
	Name string `json:"name"`
	// DurationNS is the wall time between StartSpan/StartChild and End,
	// in nanoseconds. Zero until End is called.
	DurationNS int64 `json:"duration_ns"`
	// Items counts the units the stage processed (documents, errata,
	// candidate pairs), when the stage reports one.
	Items int `json:"items,omitempty"`
	// Children are the nested stages, in start order.
	Children []*Span `json:"children,omitempty"`
	// Cached marks a stage that was replayed from the pipeline's
	// content-addressed cache instead of running; its duration is the
	// cache-probe time, and Items comes from the cached metadata.
	Cached bool `json:"cached,omitempty"`

	start time.Time
	reg   *Registry
}

// StartSpan starts a root span. reg may be nil, in which case the span
// tree is still built but nothing is recorded into a registry.
func StartSpan(reg *Registry, name string) *Span {
	return &Span{Name: name, start: time.Now(), reg: reg}
}

// StartChild starts a nested stage under s and returns it. On a nil
// span it returns nil, which is itself safe to use.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, start: time.Now(), reg: s.reg}
	s.Children = append(s.Children, c)
	return c
}

// SetItems records the number of items the stage processed.
func (s *Span) SetItems(n int) {
	if s == nil {
		return
	}
	s.Items = n
}

// SetCached marks the stage as satisfied from cache.
func (s *Span) SetCached(cached bool) {
	if s == nil {
		return
	}
	s.Cached = cached
}

// End stops the span, fixing its duration and publishing the stage
// gauges. End is idempotent: the first call wins.
func (s *Span) End() {
	if s == nil || s.DurationNS != 0 {
		return
	}
	d := time.Since(s.start).Nanoseconds()
	if d <= 0 {
		// The monotonic clock can report zero for sub-resolution
		// stages; clamp so "ended" stays distinguishable from "open".
		d = 1
	}
	s.DurationNS = d
	if s.reg != nil {
		s.reg.Gauge("rememberr_build_stage_seconds",
			"Wall time of each stage of the most recent database build.",
			L("stage", s.Name)).Set(float64(d) / 1e9)
		if s.Items > 0 {
			s.reg.Gauge("rememberr_build_stage_items",
				"Items processed by each stage of the most recent database build.",
				L("stage", s.Name)).Set(float64(s.Items))
		}
	}
}

// Duration returns the measured wall time (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurationNS)
}

// ChildDuration sums the durations of the direct children — the
// portion of s accounted for by named stages.
func (s *Span) ChildDuration() time.Duration {
	if s == nil {
		return 0
	}
	var sum time.Duration
	for _, c := range s.Children {
		sum += c.Duration()
	}
	return sum
}
