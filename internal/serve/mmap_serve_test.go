package serve

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/shard"
	"repro/internal/store"
)

// openMapped opens path through store.Open's default (mmap) path and
// skips the test on platforms without a mapping to exercise.
func openMapped(t *testing.T, path string) *store.StoreV2 {
	t.Helper()
	r, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mapped() {
		r.Close()
		t.Skip("mmap unsupported on this platform")
	}
	return r.(*store.StoreV2)
}

// TestMmapEquivalence is the mmap serving contract: a server whose
// snapshot reads straight off the file mapping answers every /v1
// response byte-identically to one reading the same file through
// ReadFile — across the six equivalence-matrix seeds and at 0, 1, 4
// and 16 shards. Fresh readers per shard count keep the sharded boots
// on the lazy PartitionStore path.
func TestMmapEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range gt.DB.Errata() {
			e.Disclosed = time.Date(2008+i%10, time.Month(1+i%12), 1+i%28, 0, 0, 0, 0, time.UTC)
		}
		path := filepath.Join(t.TempDir(), "db.v2")
		if err := store.SaveFormat(gt.DB, path, "v2"); err != nil {
			t.Fatal(err)
		}

		urls := []string{"/v1/stats", "/healthz"}
		for _, q := range serveFilterMatrix {
			u := "/v1/errata"
			if q != "" {
				u += "?" + q
			}
			urls = append(urls, u)
		}
		keys := map[int]string{}
		for _, e := range gt.DB.Errata() {
			if e.Key == "" {
				continue
			}
			if o := shard.Owner(e.Key, 16); keys[o] == "" {
				keys[o] = e.Key
			}
		}
		urls = append(urls, "/v1/errata/no-such-key")
		for _, key := range keys {
			urls = append(urls, "/v1/errata/"+key)
		}

		for _, n := range []int{0, 1, 4, 16} {
			heapReader, err := store.Open(path, store.WithMmap(false))
			if err != nil {
				t.Fatal(err)
			}
			heapSrv, err := New(WithStore(heapReader), Options{CacheSize: -1, Shards: n})
			if err != nil {
				t.Fatal(err)
			}
			heapReader.Close()

			mapped := openMapped(t, path)
			mmapSrv, err := New(WithStore(mapped), Options{CacheSize: -1, Shards: n})
			if err != nil {
				t.Fatal(err)
			}
			mapped.Close()

			want, got := heapSrv.Handler(), mmapSrv.Handler()
			for _, url := range urls {
				wantCode, wantBody := get(t, want, url)
				gotCode, gotBody := get(t, got, url)
				if gotCode != wantCode || !bytes.Equal(gotBody, wantBody) {
					t.Fatalf("seed %d shards=%d %s: mmap %d %q != heap %d %q",
						seed, n, url, gotCode, truncate(gotBody), wantCode, truncate(wantBody))
				}
			}
		}
	}
}

// TestMmapSwapUnderLoad swaps mmap-backed snapshots while readers
// hammer the hot endpoints. Displacing a snapshot releases its region
// and the last release unmaps, so any request still reading the old
// mapping after its release would fault — the refcount (retained per
// request by acquireSnap) is what this test proves, under -race in CI.
// Afterwards every displaced region must be unmapped and only the
// serving one alive.
func TestMmapSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 2)
	keys := make([]string, 2)
	for i, seed := range []int64{1, 2} {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, "db"+strconv.Itoa(i)+".v2")
		if err := store.SaveFormat(gt.DB, paths[i], "v2"); err != nil {
			t.Fatal(err)
		}
		keys[i] = gt.DB.Unique()[0].Key
	}

	first := openMapped(t, paths[0])
	srv, err := New(WithStore(first), Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	regions := []*store.Region{first.Region()}
	first.Close()

	h := srv.Handler()
	urls := []string{
		"/v1/errata?vendor=Intel&unique=false",
		"/v1/errata/" + keys[0],
		"/v1/errata/" + keys[1],
		"/v1/stats",
		"/healthz",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, u := range urls {
					req := httptest.NewRequest("GET", u, nil)
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					// Point lookups 404 on the corpus not currently
					// served; anything else means a torn snapshot.
					if w.Code != 200 && w.Code != 404 {
						t.Errorf("%s: status %d: %s", u, w.Code, w.Body.String())
						return
					}
					if w.Code == 200 && w.Body.Len() == 0 {
						t.Errorf("%s: empty 200 body", u)
						return
					}
				}
			}
		}()
	}

	for i := 0; i < 24; i++ {
		r := openMapped(t, paths[(i+1)%2])
		if _, err := srv.SwapReader(r); err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r.Region())
		r.Close()
	}
	close(stop)
	wg.Wait()

	for i, reg := range regions[:len(regions)-1] {
		if reg.Active() {
			t.Errorf("displaced region %d still active (leaked mapping)", i)
		}
	}
	if last := regions[len(regions)-1]; !last.Active() {
		t.Error("serving snapshot's region was released")
	}
}

// TestSwapDeltaInheritsRegion pins the delta-swap lifecycle: a delta
// snapshot shares entries (and so mapped strings) with its predecessor,
// so it must retain the predecessor's region; a later full Swap to a
// heap database is what finally unmaps it.
func TestSwapDeltaInheritsRegion(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.v2")
	if err := store.SaveFormat(gt.DB, path, "v2"); err != nil {
		t.Fatal(err)
	}
	sv := openMapped(t, path)
	srv, err := New(WithStore(sv), Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	region := sv.Region()
	sv.Close()

	// An unchanged corpus is a valid delta (every entry shared).
	srv.SwapDelta(srv.snap.Load().db)
	if !region.Active() {
		t.Fatal("delta swap released the region its entries alias")
	}

	gt2, err := corpus.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	srv.Swap(gt2.DB)
	if region.Active() {
		t.Error("region still active after a full swap to a heap database")
	}
}

// TestLazyShardBootDecodesOnce pins the lazy materialization contract:
// booting a 16-shard server straight from a store decodes each erratum
// record exactly once (by its owning shard) and never materializes the
// full database on the side.
func TestLazyShardBootDecodesOnce(t *testing.T) {
	gt, err := corpus.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := store.EncodeV2(gt.DB, store.V2Options{Postings: true, Fragments: true})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := store.OpenV2(enc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(WithStore(sv), Options{CacheSize: -1, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sv.Materialized() {
		t.Error("sharded boot materialized the full database")
	}
	n := int64(len(gt.DB.Errata()))
	if got := sv.DecodeCount(); got != n {
		t.Errorf("boot decoded %d records, want exactly %d", got, n)
	}
	if got := srv.snap.Load().size(); got != int(n) {
		t.Errorf("cluster serves %d entries, want %d", got, n)
	}

	// The single-index boot decodes once per record too (materialize).
	sv2, err := store.OpenV2(enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithStore(sv2), Options{CacheSize: -1}); err != nil {
		t.Fatal(err)
	}
	if got := sv2.DecodeCount(); got != n {
		t.Errorf("single-index boot decoded %d records, want exactly %d", got, n)
	}
}
