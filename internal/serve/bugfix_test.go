package serve

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/corpus"
)

// mustQuery parses a raw "?a=b" query string into url.Values.
func mustQuery(t *testing.T, rawQuery string) url.Values {
	t.Helper()
	u, err := url.Parse("/v1/errata" + rawQuery)
	if err != nil {
		t.Fatal(err)
	}
	return u.Query()
}

// datedServer builds a server over the synthetic corpus with
// deterministic disclosure dates spread over 2008-2017 (the raw corpus
// carries none, which would make every date range legitimately empty).
func datedServer(t *testing.T, opts Options) *Server {
	t.Helper()
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range gt.DB.Errata() {
		e.Disclosed = time.Date(2008+i%10, time.Month(1+i%12), 1+i%28, 0, 0, 0, 0, time.UTC)
	}
	return newDBServer(gt.DB, opts)
}

// TestDisclosedRangeCacheKeys is the regression test for the
// response-cache key collision on swapped date ranges: canonicalizing
// disclosed_from/disclosed_to by sorting their values collapsed
// "from=2020,to=2010" (an empty range) and "from=2010,to=2020" (a
// populated range) onto one LRU entry, so whichever query ran first
// served its cached body for the other.
func TestDisclosedRangeCacheKeys(t *testing.T) {
	for _, order := range [][2]string{
		{"?disclosed_from=2020-01-01&disclosed_to=2010-01-01",
			"?disclosed_from=2010-01-01&disclosed_to=2020-01-01"},
		{"?disclosed_from=2010-01-01&disclosed_to=2020-01-01",
			"?disclosed_from=2020-01-01&disclosed_to=2010-01-01"},
	} {
		reqA, err := parseFilters(mustQuery(t, order[0]))
		if err != nil {
			t.Fatal(err)
		}
		reqB, err := parseFilters(mustQuery(t, order[1]))
		if err != nil {
			t.Fatal(err)
		}
		if reqA.key == reqB.key {
			t.Fatalf("swapped disclosed ranges share cache key %q", reqA.key)
		}
	}

	// End to end: issue the inverted (empty) range first so its cached
	// body is resident, then the real range — a collision would serve
	// the cached empty result.
	s := datedServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var inverted, real errataResp
	getJSON(t, c, ts.URL+"/v1/errata?disclosed_from=2020-01-01&disclosed_to=2010-01-01", &inverted)
	getJSON(t, c, ts.URL+"/v1/errata?disclosed_from=2010-01-01&disclosed_to=2020-01-01", &real)
	if inverted.Total != 0 {
		t.Fatalf("inverted range total = %d, want 0", inverted.Total)
	}
	if real.Total == inverted.Total {
		t.Fatalf("real range total %d equals inverted range total %d — cache key collision",
			real.Total, inverted.Total)
	}
	m := s.Metrics()
	if m.Cache.Entries != 2 {
		t.Fatalf("cache entries = %d, want 2 distinct entries for the two ranges", m.Cache.Entries)
	}

	// One-sided ranges stay distinct from each other and from the
	// two-sided range too.
	from, err := parseFilters(mustQuery(t, "?disclosed_from=2010-01-01"))
	if err != nil {
		t.Fatal(err)
	}
	to, err := parseFilters(mustQuery(t, "?disclosed_to=2010-01-01"))
	if err != nil {
		t.Fatal(err)
	}
	if from.key == to.key {
		t.Fatalf("one-sided from/to ranges share cache key %q", from.key)
	}
}

// TestTimeoutCountsAsError is the regression test for timeouts being
// invisible to the error metrics: http.TimeoutHandler wrote its 503 on
// the real writer, but instrumentation only saw the buffered inner
// status, so rememberr_http_errors_total never moved. The route chain
// now instruments outside the timeout wrapper.
func TestTimeoutCountsAsError(t *testing.T) {
	s := testServer(t, Options{RequestTimeout: 20 * time.Millisecond})

	release := make(chan struct{})
	slow := func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte(`{"status":"too late"}`))
	}
	// The same chain Handler() builds for every endpoint, with a
	// deliberately slow handler in place of the real one.
	h := s.route("errata", slow)
	defer close(release)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/errata", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request = %d, want 503", rec.Code)
	}
	m := s.Metrics()
	if got := m.Endpoints["errata"].Errors; got != 1 {
		t.Fatalf("errata errors after timeout = %d, want 1", got)
	}
	if got := m.Endpoints["errata"].Requests; got != 1 {
		t.Fatalf("errata requests after timeout = %d, want 1", got)
	}

	// A fast request through the same chain stays error-free.
	fast := s.route("stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	rec = httptest.NewRecorder()
	fast.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("fast request = %d, want 200", rec.Code)
	}
	if got := s.Metrics().Endpoints["stats"].Errors; got != 0 {
		t.Fatalf("stats errors after fast request = %d, want 0", got)
	}
}

// TestDuplicateSingleValuedParams is the regression test for repeated
// single-valued parameters being silently dropped: ?vendor=Intel&
// vendor=AMD used only vals[0] and quietly returned Intel-only results
// despite the handler's strict unknown-parameter 400 policy. Duplicates
// are now a 400; multi-valued parameters keep composing.
func TestDuplicateSingleValuedParams(t *testing.T) {
	s := testServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	rejected := []string{
		"?vendor=Intel&vendor=AMD",
		"?vendor=Intel&vendor=Intel", // even repeated-but-equal
		"?doc=intel-06&doc=intel-07",
		"?title=the&title=a",
		"?min_triggers=1&min_triggers=2",
		"?complex=true&complex=false",
		"?sim_only=true&sim_only=true",
		"?workaround=BIOS&workaround=Software",
		"?fix=Fixed&fix=FixPlanned",
		"?unique=true&unique=false",
		"?limit=5&limit=10",
		"?offset=0&offset=5",
		"?disclosed_from=2010-01-01&disclosed_from=2012-01-01",
		"?disclosed_to=2010-01-01&disclosed_to=2012-01-01",
	}
	for _, q := range rejected {
		if code := getJSON(t, c, ts.URL+"/v1/errata"+q, nil); code != http.StatusBadRequest {
			t.Errorf("/v1/errata%s = %d, want 400", q, code)
		}
	}

	accepted := []string{
		"?category=Eff_HNG_hng&category=Trg_POW_pwc",
		"?any_category=Eff_HNG_hng&any_category=Eff_HNG_crh",
		"?class=Trg_POW&class=Eff_HNG",
		"?trigger=Trg_POW_pwc&trigger=Trg_MOP_fen",
		"?msr=MCx_STATUS&msr=MCx_ADDR",
		"?vendor=Intel&category=Eff_HNG_hng", // distinct params untouched
	}
	for _, q := range accepted {
		if code := getJSON(t, c, ts.URL+"/v1/errata"+q, nil); code != http.StatusOK {
			t.Errorf("/v1/errata%s = %d, want 200", q, code)
		}
	}
}
