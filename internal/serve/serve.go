// Package serve exposes a loaded RemembERR database over an HTTP JSON
// API — the serving layer for the paper's released-database use case.
// The API is versioned under /v1; operational endpoints stay at the
// root:
//
//	GET /v1/errata        filtered query (see parseFilters for parameters)
//	GET /v1/errata/{key}  every occurrence of one deduplicated erratum
//	GET /v1/stats         corpus statistics
//	GET /v1/metrics.json  JSON snapshot of the server's instruments
//	GET /healthz          liveness probe
//	GET /metrics          Prometheus text exposition (whole registry)
//
// The legacy unversioned paths (/errata, /errata/{key}, /stats) answer
// with 308 Permanent Redirect to their /v1 equivalents, preserving the
// query string, so pre-v1 clients keep working.
//
// Queries execute on the inverted index (internal/index), results are
// memoized in an LRU cache keyed by the canonicalized filter set, and
// every endpoint records request/error counters plus a latency
// histogram into a single obs registry (rememberr_http_*). Passing a
// shared registry via Options.Observability folds build-pipeline and
// index metrics into the same /metrics page.
//
// With Options.Shards > 0 the server runs as a sharded scatter-gather
// tier (internal/shard): the errata space is partitioned by dedup-key
// hash into N shards, each owning its own sub-database and index;
// /v1/errata fans out to every shard concurrently and merges the
// shard-local results back into global order (per-shard latency lands
// in rememberr_shard_fanout_duration_seconds), while /v1/errata/{key}
// routes to the single shard owning the key. Responses are
// byte-identical to the single-index server at every shard count —
// pinned by the equivalence tests — and the whole cluster swaps
// atomically on reload, exactly like the single-index snapshot.
//
// The server holds its data behind an atomically swappable snapshot —
// an immutable (database, index, generation) triple. Swap installs a
// new snapshot with zero downtime: each request loads the pointer once
// and works against that generation for its whole lifetime, so no
// request ever observes a torn state, and in-flight requests on the old
// generation finish unperturbed. Response-cache entries are keyed by
// generation, so a swap implicitly invalidates the cache without a
// stop-the-world flush and a stale entry is never served for a newer
// generation. When Options.Reloader is set, POST /v1/admin/reload
// rebuilds (or re-loads) the database and swaps it in. The server is
// safe for arbitrary concurrency: snapshots are immutable, the cache is
// mutex-guarded, and the instruments are lock-free.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/taxonomy"
)

// Options configures the server.
type Options struct {
	// CacheSize is the LRU capacity in cached responses. 0 selects the
	// default 256; negative disables caching.
	CacheSize int
	// RequestTimeout bounds handler execution per request. 0 selects
	// the default 10s.
	RequestTimeout time.Duration
	// ShutdownGrace bounds how long Serve waits for in-flight requests
	// on shutdown. 0 selects the default 5s.
	ShutdownGrace time.Duration
	// Observability is the registry receiving the server's instruments.
	// nil selects a fresh private registry, so /metrics always works;
	// pass the registry used for the build to expose its metrics too.
	Observability *obs.Registry
	// EnableProfiling mounts net/http/pprof under /debug/pprof/,
	// outside the request-timeout wrapper (profiles legitimately run
	// longer than API requests).
	EnableProfiling bool
	// Reloader, when non-nil, produces a fresh database for
	// POST /v1/admin/reload (and Server.Reload): typically a warm
	// pipeline rebuild or a store-file load. The returned database is
	// swapped in atomically; the reloader must not mutate it afterwards.
	// When nil, the reload endpoint answers 501 Not Implemented.
	Reloader func(ctx context.Context) (*core.Database, error)
	// ReloadSource, when non-nil, produces a fresh store.Reader for
	// POST /v1/admin/reload (and Server.Reload) — the store-backed
	// sibling of Reloader, so a reload of an mmap-backed corpus reopens
	// the file instead of materializing a database first. The server
	// swaps the reader in via SwapReader and closes it afterwards
	// (snapshots hold their own region reference), so the callback must
	// hand over ownership. Takes precedence over Reloader when both are
	// set.
	ReloadSource func(ctx context.Context) (store.Reader, error)
	// Shards selects the sharded scatter-gather tier: the errata space
	// is partitioned by dedup-key hash into this many shards, each with
	// its own sub-database and index; /v1/errata fans out to all shards
	// concurrently and merges into global order, /v1/errata/{key}
	// routes to the owning shard. 0 (the default) serves from a single
	// index; 1 runs the full scatter-gather machinery on one shard
	// (useful for equivalence testing). Results are byte-identical to
	// the single-index server at every shard count.
	Shards int
	// Ingest, when non-nil, applies one specification-update document
	// text to the live corpus for POST /v1/admin/ingest: typically a
	// closure over an ingest.Ingester whose Apply feeds Server.SwapDelta.
	// The callback owns the ordering discipline — it must serialize
	// apply+swap pairs so concurrent ingests cannot install snapshots
	// out of order. When nil, the ingest endpoint answers 501 Not
	// Implemented.
	Ingest func(ctx context.Context, text string) (IngestSummary, error)
}

// IngestSummary reports what one POST /v1/admin/ingest changed.
type IngestSummary struct {
	// Generation is the snapshot generation now serving the document.
	Generation uint64 `json:"generation"`
	// Documents is the number of documents added or replaced.
	Documents int `json:"documents"`
	// Errata is the entry count of the documents ingested.
	Errata int `json:"errata"`
	// Skipped is the number of documents dropped as byte-identical to
	// the already-served version.
	Skipped int `json:"skipped"`
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.ShutdownGrace == 0 {
		o.ShutdownGrace = 5 * time.Second
	}
	return o
}

// endpointInstruments holds one route's registry-backed instruments,
// resolved once at construction so the per-request path is lock-free.
type endpointInstruments struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// endpointNames lists every instrumented route; "redirect" aggregates
// the legacy unversioned paths.
var endpointNames = []string{
	"errata", "erratum", "stats", "healthz", "metrics", "metrics_json", "redirect",
	"admin_reload", "admin_ingest",
}

// snapshot is one immutable serving state: a database, its inverted
// index (or sharded cluster), the precomputed stats, and a
// monotonically increasing generation id. Handlers load the current
// snapshot exactly once per request, so every response is internally
// consistent with a single generation even while Swap installs a new
// one mid-flight.
type snapshot struct {
	db      *core.Database
	ix      *index.Index   // single-index mode; nil when sharded
	cluster *shard.Cluster // sharded mode; nil when single-index
	stats   core.Stats
	gen     uint64
	// frags holds the precomputed canonical JSON response fragments of
	// this snapshot's entries; the hot read path stitches responses
	// from them instead of marshaling. nil disables stitching (the
	// handlers fall back to encoding/json), never correctness.
	frags *store.Fragments
	// region is the mapped store region this snapshot's strings alias,
	// nil for heap-backed snapshots. The snapshot owns one reference;
	// handlers retain it for the request's lifetime (acquire/release)
	// so a swap-triggered release can never munmap under an in-flight
	// read.
	region *store.Region
}

// release drops the caller's retained region reference (no-op for
// heap-backed snapshots). Pairs with Server.acquireSnap.
func (sn *snapshot) release() {
	if sn != nil && sn.region != nil {
		sn.region.Release()
	}
}

// size and uniqueCount answer the entry counts regardless of mode.
func (sn *snapshot) size() int {
	if sn.cluster != nil {
		return sn.cluster.Entries()
	}
	return sn.ix.Size()
}

func (sn *snapshot) uniqueCount() int {
	if sn.cluster != nil {
		return sn.cluster.UniqueCount()
	}
	return sn.ix.UniqueCount()
}

// Server serves atomically swappable database snapshots.
type Server struct {
	snap  atomic.Pointer[snapshot]
	gen   atomic.Uint64
	opts  Options
	cache *lruCache
	reg   *obs.Registry

	// swapMu serializes snapshot installation so generation ids are
	// stored in increasing order; reloadMu additionally serializes
	// whole reloads (build + swap) so concurrent reload requests don't
	// run redundant rebuilds.
	swapMu     sync.Mutex
	reloadMu   sync.Mutex
	swaps      *obs.Counter
	deltaSwaps *obs.Counter
	swapLag    *obs.Histogram

	endpoints map[string]*endpointInstruments

	// Sharded-tier instruments (nil slices/instruments in single mode).
	shardLat      []*obs.Histogram // per-shard fan-out latency, indexed by shard id
	merges        *obs.Counter
	mergeRows     *obs.Counter
	shardRebuilds *obs.Counter
}

// Option configures New. Exactly one data source must be supplied —
// WithDatabase or WithStore — plus any number of tuning options. A
// whole Options struct is itself an Option (it replaces the full
// configuration, mirroring pipeline.Build), so existing Options
// literals migrate by appending a source:
//
//	srv, err := serve.New(serve.WithDatabase(db), serve.Options{Shards: 4})
type Option interface {
	applyOption(*config)
}

// config is the resolved New configuration: tuning options plus the
// single data source.
type config struct {
	opts Options
	db   *core.Database
	st   store.Reader
}

// applyOption replaces the whole tuning configuration, making Options
// usable directly as an Option. Sources set by WithDatabase/WithStore
// are untouched.
func (o Options) applyOption(c *config) { c.opts = o }

// optionFunc adapts a closure to the Option interface.
type optionFunc func(*config)

func (f optionFunc) applyOption(c *config) { f(c) }

// WithDatabase serves the given in-memory database: the index is built
// over it and fragments are precomputed. The caller must not mutate db
// afterwards.
func WithDatabase(db *core.Database) Option {
	return optionFunc(func(c *config) { c.db = db })
}

// WithStore serves from an opened store reader. For a FormatVersion 2
// reader the database materializes from the file's records, index
// postings and response fragments load from the file where present,
// and — when the reader is mmap-backed — the serving snapshot retains
// the mapped region so the strings it aliases stay valid for as long
// as any snapshot or in-flight request uses them. The server takes its
// own region reference during New; the caller keeps ownership of r and
// should Close it when done handing it to servers (the mapping stays
// alive until the last snapshot referencing it is replaced).
func WithStore(r store.Reader) Option {
	return optionFunc(func(c *config) { c.st = r })
}

// WithCacheSize sets Options.CacheSize.
func WithCacheSize(n int) Option {
	return optionFunc(func(c *config) { c.opts.CacheSize = n })
}

// WithShards sets Options.Shards.
func WithShards(n int) Option {
	return optionFunc(func(c *config) { c.opts.Shards = n })
}

// WithObservability sets Options.Observability.
func WithObservability(reg *obs.Registry) Option {
	return optionFunc(func(c *config) { c.opts.Observability = reg })
}

// WithReloadSource sets Options.ReloadSource.
func WithReloadSource(f func(ctx context.Context) (store.Reader, error)) Option {
	return optionFunc(func(c *config) { c.opts.ReloadSource = f })
}

// New returns a ready server serving generation 1 from the configured
// source. It errors when no source option was given, when both were
// given, or when a store source fails to materialize.
func New(opts ...Option) (*Server, error) {
	var c config
	for _, o := range opts {
		o.applyOption(&c)
	}
	switch {
	case c.db == nil && c.st == nil:
		return nil, errors.New("serve: New needs a data source (WithDatabase or WithStore)")
	case c.db != nil && c.st != nil:
		return nil, errors.New("serve: WithDatabase and WithStore are mutually exclusive")
	}
	s := newServer(c.opts)
	if c.st != nil {
		if _, err := s.SwapReader(c.st); err != nil {
			return nil, err
		}
		return s, nil
	}
	s.Swap(c.db)
	return s, nil
}

// NewFromDatabase builds the index over db and returns a ready server
// serving generation 1. The caller must not mutate db afterwards.
//
// Deprecated: use New(WithDatabase(db), opts).
func NewFromDatabase(db *core.Database, opts Options) *Server {
	s := newServer(opts)
	s.Swap(db)
	return s
}

// NewFromStore returns a ready server backed by an opened
// FormatVersion 2 store.
//
// Deprecated: use New(WithStore(sv), opts).
func NewFromStore(sv *store.StoreV2, opts Options) (*Server, error) {
	s := newServer(opts)
	if _, err := s.SwapReader(sv); err != nil {
		return nil, err
	}
	return s, nil
}

func newServer(opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Observability
	if reg == nil {
		reg = obs.NewRegistry()
	}
	endpoints := make(map[string]*endpointInstruments, len(endpointNames))
	for _, name := range endpointNames {
		endpoints[name] = &endpointInstruments{
			requests: reg.Counter("rememberr_http_requests_total",
				"HTTP requests served, by endpoint.", obs.L("endpoint", name)),
			errors: reg.Counter("rememberr_http_errors_total",
				"HTTP responses with status >= 400, by endpoint.", obs.L("endpoint", name)),
			latency: reg.Histogram("rememberr_http_request_duration_seconds",
				"HTTP request latency, by endpoint.", obs.LatencyBuckets, obs.L("endpoint", name)),
		}
	}
	cache := newLRUCache(opts.CacheSize,
		reg.Counter("rememberr_cache_hits_total", "Query-cache hits."),
		reg.Counter("rememberr_cache_misses_total", "Query-cache misses."),
		reg.Counter("rememberr_cache_evictions_total", "Query-cache capacity evictions."))
	reg.GaugeFunc("rememberr_cache_entries", "Query-cache resident entries.",
		func() float64 { return float64(cache.entries()) })
	reg.Gauge("rememberr_cache_capacity", "Query-cache capacity.").Set(float64(opts.CacheSize))
	s := &Server{
		opts:      opts,
		cache:     cache,
		reg:       reg,
		endpoints: endpoints,
	}
	s.swaps = reg.Counter("rememberr_snapshot_swaps_total",
		"Database snapshot installations (including the initial one).")
	s.deltaSwaps = reg.Counter("rememberr_snapshot_delta_swaps_total",
		"Snapshot installations that went through the delta-merge path.")
	s.swapLag = reg.Histogram("rememberr_ingest_swap_lag_seconds",
		"Latency from delta-swap start (index merge / repartition) to snapshot visibility.",
		obs.LatencyBuckets)
	if opts.Shards > 0 {
		s.shardLat = make([]*obs.Histogram, opts.Shards)
		for i := range s.shardLat {
			s.shardLat[i] = reg.Histogram("rememberr_shard_fanout_duration_seconds",
				"Per-shard query execution latency during scatter-gather fan-out.",
				obs.LatencyBuckets, obs.L("shard", strconv.Itoa(i)))
		}
		s.merges = reg.Counter("rememberr_shard_merges_total",
			"Scatter-gather merges performed by the sharded tier.")
		s.mergeRows = reg.Counter("rememberr_shard_merge_rows_total",
			"Result rows emitted by scatter-gather merges.")
		s.shardRebuilds = reg.Counter("rememberr_shard_rebuilds_total",
			"Shard indexes rebuilt by delta swaps (reused shards not counted).")
		reg.Gauge("rememberr_shards", "Shard count of the serving tier.").
			Set(float64(opts.Shards))
	}
	reg.GaugeFunc("rememberr_snapshot_generation", "Currently served snapshot generation.",
		func() float64 {
			if snap := s.snap.Load(); snap != nil {
				return float64(snap.gen)
			}
			return 0
		})
	return s
}

// Swap atomically installs db as the served snapshot and returns its
// generation id. The index (or, in sharded mode, the whole partitioned
// cluster) is built and the stats computed before the pointer flips, so
// requests only ever see complete snapshots; in-flight requests on the
// previous generation finish against it undisturbed, and response-cache
// entries of older generations are never served again (keys are
// generation-scoped). The caller must not mutate db after Swap.
func (s *Server) Swap(db *core.Database) uint64 {
	snap := &snapshot{db: db, stats: db.ComputeStats()}
	if s.opts.Shards > 0 {
		snap.cluster = shard.Partition(db, s.opts.Shards)
		for _, sh := range snap.cluster.Shards {
			sh.IX.Instrument(s.reg)
		}
	} else {
		snap.ix = index.Build(db)
		snap.ix.Instrument(s.reg)
	}
	// Fragments are an optimization: on a (never-observed) marshal
	// failure the snapshot serves through the encoding/json fallback.
	if frags, err := store.BuildFragments(db); err == nil {
		snap.frags = frags
	}
	s.install(snap)
	return snap.gen
}

// install assigns snap the next generation and makes it the served
// snapshot, then drops the server's reference on the displaced
// snapshot's region. The release happens outside swapMu and after the
// pointer flip, so a last-reference munmap never runs while readers
// could still load the old snapshot without having retained it.
func (s *Server) install(snap *snapshot) {
	s.swapMu.Lock()
	snap.gen = s.gen.Add(1)
	prev := s.snap.Load()
	s.snap.Store(snap)
	s.swapMu.Unlock()
	prev.release()
	s.swaps.Inc()
}

// SwapReader installs the contents of an opened store reader as the
// served snapshot. A FormatVersion 2 reader serves off its own bytes:
// index postings and response fragments load from the file where
// present, and in sharded mode the cluster materializes lazily —
// shard.PartitionStore decodes each erratum exactly once, by the shard
// that owns it. When the reader is mmap-backed the new snapshot
// retains the mapped region (the caller's reference stays the
// caller's; Close remains its job), so the mapping outlives every
// snapshot and in-flight request that aliases it. Readers of other
// formats materialize their database and take the plain Swap path.
func (s *Server) SwapReader(r store.Reader) (uint64, error) {
	sv, ok := r.(*store.StoreV2)
	if !ok {
		db, err := r.Database()
		if err != nil {
			return 0, err
		}
		return s.Swap(db), nil
	}
	region := sv.Region()
	if region != nil && !region.TryRetain() {
		return 0, errors.New("serve: store is closed")
	}
	snap, err := s.buildStoreSnapshot(sv)
	if err != nil {
		if region != nil {
			region.Release()
		}
		return 0, err
	}
	snap.region = region
	s.install(snap)
	return snap.gen, nil
}

// buildStoreSnapshot assembles the (un-installed, generation-less)
// snapshot for a FormatVersion 2 store.
func (s *Server) buildStoreSnapshot(sv *store.StoreV2) (*snapshot, error) {
	snap := &snapshot{}
	switch {
	case s.opts.Shards > 0 && !sv.Materialized():
		// Lazy partition: placement reads only each record's key fields,
		// then every shard decodes just the errata it owns.
		db, cluster, err := shard.PartitionStore(sv, s.opts.Shards)
		if err != nil {
			return nil, err
		}
		snap.db, snap.cluster = db, cluster
		for _, sh := range cluster.Shards {
			sh.IX.Instrument(s.reg)
		}
		frags, err := sv.FragmentsFor(db.Errata())
		if err != nil {
			return nil, err
		}
		if frags == nil {
			frags, _ = store.BuildFragments(db)
		}
		snap.frags = frags
	case s.opts.Shards > 0:
		// The corpus is already decoded and memoized (e.g. the caller
		// built an ingester over it): partition the shared pointers
		// rather than decoding every record a second time.
		db, err := sv.Database()
		if err != nil {
			return nil, err
		}
		snap.db = db
		snap.cluster = shard.Partition(db, s.opts.Shards)
		for _, sh := range snap.cluster.Shards {
			sh.IX.Instrument(s.reg)
		}
		frags, err := sv.Fragments()
		if err != nil {
			return nil, err
		}
		if frags == nil {
			frags, _ = store.BuildFragments(db)
		}
		snap.frags = frags
	default:
		db, err := sv.Database()
		if err != nil {
			return nil, err
		}
		snap.db = db
		if l := sv.IndexLists(); l != nil {
			// Postings stay disk-resident: the index walks the file's
			// arrays (or the mapping) directly via index.List spans.
			snap.ix, err = index.FromLists(db, l)
			if err != nil {
				return nil, err
			}
		} else {
			snap.ix = index.Build(db)
		}
		snap.ix.Instrument(s.reg)
		frags, err := sv.Fragments()
		if err != nil {
			return nil, err
		}
		if frags == nil {
			frags, _ = store.BuildFragments(db)
		}
		snap.frags = frags
	}
	snap.stats = snap.db.ComputeStats()
	return snap, nil
}

// SwapStore installs the database of an opened FormatVersion 2 store.
//
// Deprecated: use SwapReader.
func (s *Server) SwapStore(sv *store.StoreV2) (uint64, error) {
	return s.SwapReader(sv)
}

// SwapDelta installs db as the served snapshot by merging against the
// currently served one instead of rebuilding from scratch: single-index
// mode runs index.MergeDelta from the previous snapshot's index,
// sharded mode repartitions via shard.Repartition and rebuilds only the
// affected shards. db must honor the delta sharing contract with the
// currently served database (see index.MergeDelta): any *Erratum shared
// by pointer is completely unchanged, surviving entries keep their
// relative order. internal/ingest's copy-on-write Apply produces
// exactly such databases.
//
// Unlike Swap, the merge runs under swapMu: the previous snapshot must
// still be the installed one when the merged successor lands, otherwise
// two concurrent delta swaps could each merge against the same
// predecessor and the loser would silently drop the winner's documents.
// The merge is index-only (annotation walks happen per new entry), so
// the critical section stays far below a cold Build. The caller must
// not mutate db after SwapDelta.
func (s *Server) SwapDelta(db *core.Database) uint64 {
	start := time.Now()
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	prev := s.snap.Load()
	snap := &snapshot{db: db, stats: db.ComputeStats()}
	if prev != nil && prev.region != nil {
		// The delta database shares surviving entries by pointer with the
		// previous snapshot, so its strings may alias the mapping: the
		// successor must keep the region alive. prev is the installed
		// snapshot and owns a reference, so the retain cannot race a
		// final release.
		prev.region.TryRetain()
		snap.region = prev.region
	}
	if s.opts.Shards > 0 {
		var pc *shard.Cluster
		if prev != nil {
			pc = prev.cluster
		}
		cluster, rebuilt := shard.Repartition(pc, db, s.opts.Shards)
		snap.cluster = cluster
		s.shardRebuilds.Add(int64(rebuilt))
		// Instrument only freshly built shards: a reused shard's index is
		// concurrently serving reads, and Instrument writes into it.
		for i, sh := range cluster.Shards {
			if pc == nil || i >= len(pc.Shards) || pc.Shards[i] != sh {
				sh.IX.Instrument(s.reg)
			}
		}
	} else {
		var pix *index.Index
		if prev != nil {
			pix = prev.ix
		}
		snap.ix = index.MergeDelta(pix, db)
		snap.ix.Instrument(s.reg)
	}
	// Delta fragment build: entries shared by pointer with the previous
	// snapshot reuse its fragment bytes, so the cost scales with the
	// delta like the index merge does.
	var prevFrags *store.Fragments
	if prev != nil {
		prevFrags = prev.frags
	}
	if frags, err := store.BuildFragmentsDelta(prevFrags, db); err == nil {
		snap.frags = frags
	}
	snap.gen = s.gen.Add(1)
	s.snap.Store(snap)
	// Drop the displaced snapshot's own region reference; the successor
	// holds the one retained above, so the mapping cannot reach zero
	// here.
	prev.release()
	s.swaps.Inc()
	s.deltaSwaps.Inc()
	s.swapLag.Observe(time.Since(start).Seconds())
	return snap.gen
}

// Generation returns the generation id of the currently served
// snapshot.
func (s *Server) Generation() uint64 { return s.snap.Load().gen }

// Stats returns the precomputed corpus statistics of the currently
// served snapshot — the same numbers /v1/stats reports, without a
// request (and, for store-backed servers, without decoding anything).
func (s *Server) Stats() core.Stats { return s.snap.Load().stats }

// acquireSnap loads the current snapshot and, when it is backed by a
// mapped region, retains the region for the caller. The retry loop
// closes the race where a swap displaces the loaded snapshot and
// releases its region (possibly unmapping it) between the Load and the
// retain: a failed TryRetain means the snapshot is already dead, so
// the caller simply loads the successor. Callers must release() the
// returned snapshot when done.
func (s *Server) acquireSnap() *snapshot {
	for {
		sn := s.snap.Load()
		if sn == nil || sn.region == nil || sn.region.TryRetain() {
			return sn
		}
	}
}

// Reload produces a fresh snapshot via Options.ReloadSource (preferred)
// or Options.Reloader and swaps it in, returning the new generation.
// Reloads are serialized: concurrent calls run one at a time. Returns
// an error when neither callback is configured or the callback fails
// (the served snapshot is untouched).
func (s *Server) Reload(ctx context.Context) (uint64, error) {
	if s.opts.Reloader == nil && s.opts.ReloadSource == nil {
		return 0, errors.New("serve: no reloader configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.opts.ReloadSource != nil {
		r, err := s.opts.ReloadSource(ctx)
		if err != nil {
			return 0, fmt.Errorf("serve: reload: %w", err)
		}
		gen, err := s.SwapReader(r)
		// The snapshot holds its own region reference; dropping the
		// opener's here means the mapping lives exactly as long as
		// snapshots using it do.
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return 0, fmt.Errorf("serve: reload: %w", err)
		}
		return gen, nil
	}
	db, err := s.opts.Reloader(ctx)
	if err != nil {
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	return s.Swap(db), nil
}

// Registry returns the registry backing the server's instruments (the
// one passed in Options.Observability, or the private default).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the routed HTTP handler with request timeouts
// applied. Profiling routes, when enabled, bypass the timeout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/errata", s.route("errata", s.handleErrata))
	mux.Handle("GET /v1/errata/{key}", s.route("erratum", s.handleErratum))
	mux.Handle("GET /v1/stats", s.route("stats", s.handleStats))
	mux.Handle("GET /v1/metrics.json", s.route("metrics_json", s.handleMetricsJSON))
	mux.Handle("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.route("metrics", s.handleMetrics))
	mux.Handle("POST /v1/admin/reload", s.route("admin_reload", s.handleReload))
	mux.Handle("POST /v1/admin/ingest", s.route("admin_ingest", s.handleIngest))
	mux.Handle("GET /errata", s.route("redirect", s.handleRedirect))
	mux.Handle("GET /errata/{key}", s.route("redirect", s.handleRedirect))
	mux.Handle("GET /stats", s.route("redirect", s.handleRedirect))
	h := http.Handler(mux)
	if s.opts.EnableProfiling {
		outer := http.NewServeMux()
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		outer.Handle("/", h)
		h = outer
	}
	return h
}

// handleRedirect answers a legacy unversioned path with a permanent
// redirect to its /v1 equivalent, query string included.
func (s *Server) handleRedirect(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
}

// Serve listens on addr until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests within the shutdown grace.
func (s *Server) Serve(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownGrace)
		defer cancel()
		done <- srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// statusRecorder captures the response status for error counting while
// forwarding optional ResponseWriter capabilities to the wrapped
// writer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers keep
// working behind the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := s.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		m.requests.Inc()
		m.latency.Observe(time.Since(start).Seconds())
		if rec.status >= 400 {
			m.errors.Inc()
		}
	}
}

// route wraps one endpoint in the per-request timeout and then the
// instrumentation, in that order. The timeout must sit inside the
// instrumentation: http.TimeoutHandler writes its 503 on the real
// writer while the wrapped handler only ever sees a buffered one, so a
// single TimeoutHandler around the whole mux (outside instrument) left
// timeouts invisible to rememberr_http_errors_total — the recorder saw
// only the inner handler's doomed 200.
func (s *Server) route(name string, h http.HandlerFunc) http.Handler {
	inner := http.TimeoutHandler(h, s.opts.RequestTimeout, `{"error":"request timed out"}`)
	return s.instrument(name, inner.ServeHTTP)
}

// marshalJSON is the marshal function behind every handler response. It
// is a seam for tests only: production always points at json.Marshal.
var marshalJSON = json.Marshal

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeMarshalError answers a failed response marshal: a 500 carrying a
// static body, so the failure lands in the error metrics instead of a
// silently empty 200.
func writeMarshalError(w http.ResponseWriter, err error) {
	_ = err
	writeJSON(w, http.StatusInternalServerError, []byte(`{"error":"response encoding failed"}`))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, err := marshalJSON(map[string]string{"error": msg})
	if err != nil {
		writeMarshalError(w, err)
		return
	}
	writeJSON(w, status, body)
}

// filterParams lists every /errata query parameter in canonical order;
// the cache key is built by walking this list, so two requests with
// reordered parameters (or reordered values of a multi-valued
// parameter) share one cache entry.
var filterParams = []string{
	"vendor", "doc", "category", "any_category", "class", "trigger",
	"min_triggers", "msr", "title", "complex", "sim_only", "workaround",
	"fix", "disclosed_from", "disclosed_to", "unique", "limit", "offset",
}

// multiValued marks the parameters where each occurrence adds another
// filter. Every other parameter is single-valued, and repeating one is
// a 400: silently using only the first value turned
// ?vendor=Intel&vendor=AMD into an Intel-only result.
var multiValued = map[string]bool{
	"category": true, "any_category": true, "class": true,
	"trigger": true, "msr": true,
}

// errataRequest is one compiled /v1/errata query: a list of filters to
// apply to an index-backed query plus pagination, decoupled from any
// particular index so the same request can run against the single
// snapshot index or fan out across every shard's index.
type errataRequest struct {
	filters []func(*index.Query)
	unique  bool
	limit   int
	offset  int
	key     string // canonicalized filter set
}

// run executes the request's filters against one index and returns the
// full (unpaginated) match list.
func (req *errataRequest) run(ix *index.Index) []*core.Erratum {
	q := ix.Query()
	for _, f := range req.filters {
		f(q)
	}
	if req.unique {
		return q.Unique()
	}
	return q.All()
}

func parseBool(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "1", "true", "yes":
		return true, nil
	case "0", "false", "no":
		return false, nil
	default:
		return false, fmt.Errorf("bad boolean %q", s)
	}
}

const dateFmt = "2006-01-02"

// parseFilters compiles URL query parameters into an index-independent
// filter request plus a canonical cache key. Unknown parameters are
// rejected so that typos surface as 400s instead of silently matching
// everything, and repeating a single-valued parameter is a 400 instead
// of a silent first-value win.
func parseFilters(values url.Values) (*errataRequest, error) {
	for p := range values {
		known := false
		for _, k := range filterParams {
			if p == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown parameter %q", p)
		}
	}

	req := &errataRequest{unique: true, limit: 100}
	var keyParts []string
	// canon appends one cache-key part; multi-valued parameters are
	// sorted (on a copy — filters may alias vals) so value order never
	// fragments the cache. Positionally distinct parameters must go in
	// under distinct param names: collapsing disclosed_from/_to into one
	// sorted "disclosed" part made swapped date ranges collide onto a
	// single cache entry.
	canon := func(param string, vals ...string) {
		vs := append([]string(nil), vals...)
		sort.Strings(vs)
		keyParts = append(keyParts, param+"="+strings.Join(vs, ","))
	}

	for _, param := range filterParams {
		vals, ok := values[param]
		if !ok || len(vals) == 0 {
			continue
		}
		if !multiValued[param] && len(vals) > 1 {
			return nil, fmt.Errorf("parameter %q is single-valued but was given %d times", param, len(vals))
		}
		switch param {
		case "vendor":
			v, err := core.ParseVendor(vals[0])
			if err != nil {
				return nil, err
			}
			req.filters = append(req.filters, func(q *index.Query) { q.Vendor(v) })
			canon(param, v.String())
		case "doc":
			doc := vals[0]
			req.filters = append(req.filters, func(q *index.Query) { q.InDocument(doc) })
			canon(param, doc)
		case "category":
			for _, c := range vals {
				req.filters = append(req.filters, func(q *index.Query) { q.WithCategory(c) })
			}
			canon(param, vals...)
		case "any_category":
			// Each occurrence is one disjunctive group of
			// comma-separated categories; groups compose conjunctively.
			groups := make([]string, 0, len(vals))
			for _, group := range vals {
				ids := splitList(group)
				req.filters = append(req.filters, func(q *index.Query) { q.AnyCategory(ids...) })
				sorted := append([]string(nil), ids...)
				sort.Strings(sorted)
				groups = append(groups, strings.Join(sorted, ","))
			}
			canon(param, groups...)
		case "class":
			for _, c := range vals {
				req.filters = append(req.filters, func(q *index.Query) { q.WithClass(c) })
			}
			canon(param, vals...)
		case "trigger":
			triggers := vals
			req.filters = append(req.filters, func(q *index.Query) { q.WithAllTriggers(triggers...) })
			canon(param, vals...)
		case "min_triggers":
			n, err := strconv.Atoi(vals[0])
			if err != nil {
				return nil, fmt.Errorf("bad min_triggers %q", vals[0])
			}
			req.filters = append(req.filters, func(q *index.Query) { q.MinTriggers(n) })
			canon(param, strconv.Itoa(n))
		case "msr":
			for _, m := range vals {
				req.filters = append(req.filters, func(q *index.Query) { q.ObservableIn(m) })
			}
			canon(param, vals...)
		case "title":
			title := vals[0]
			req.filters = append(req.filters, func(q *index.Query) { q.TitleContains(title) })
			canon(param, strings.ToLower(title))
		case "complex":
			b, err := parseBool(vals[0])
			if err != nil {
				return nil, err
			}
			if b {
				req.filters = append(req.filters, func(q *index.Query) { q.Complex() })
			}
			canon(param, strconv.FormatBool(b))
		case "sim_only":
			b, err := parseBool(vals[0])
			if err != nil {
				return nil, err
			}
			if b {
				req.filters = append(req.filters, func(q *index.Query) { q.SimulationOnly() })
			}
			canon(param, strconv.FormatBool(b))
		case "workaround":
			wc, err := core.ParseWorkaroundCategory(vals[0])
			if err != nil {
				return nil, err
			}
			req.filters = append(req.filters, func(q *index.Query) { q.Workaround(wc) })
			canon(param, wc.String())
		case "fix":
			fx, err := core.ParseFixStatus(vals[0])
			if err != nil {
				return nil, err
			}
			req.filters = append(req.filters, func(q *index.Query) { q.Fix(fx) })
			canon(param, fx.String())
		case "disclosed_from", "disclosed_to":
			// Handled together below; canonicalized there.
		case "unique":
			b, err := parseBool(vals[0])
			if err != nil {
				return nil, err
			}
			req.unique = b
			canon(param, strconv.FormatBool(b))
		case "limit":
			n, err := strconv.Atoi(vals[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad limit %q", vals[0])
			}
			if n > 1000 {
				n = 1000
			}
			req.limit = n
			canon(param, strconv.Itoa(n))
		case "offset":
			n, err := strconv.Atoi(vals[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad offset %q", vals[0])
			}
			req.offset = n
			canon(param, strconv.Itoa(n))
		}
	}

	fromS, toS := values.Get("disclosed_from"), values.Get("disclosed_to")
	if fromS != "" || toS != "" {
		from := time.Time{}
		to := time.Date(9999, 12, 31, 0, 0, 0, 0, time.UTC)
		var err error
		if fromS != "" {
			if from, err = time.Parse(dateFmt, fromS); err != nil {
				return nil, fmt.Errorf("bad disclosed_from %q", fromS)
			}
		}
		if toS != "" {
			if to, err = time.Parse(dateFmt, toS); err != nil {
				return nil, fmt.Errorf("bad disclosed_to %q", toS)
			}
		}
		req.filters = append(req.filters, func(q *index.Query) { q.DisclosedBetween(from, to) })
		// from and to stay under separate key parts: they are positional,
		// and a combined sorted part served one range's cached body for
		// the swapped (empty) range.
		canon("disclosed_from", from.Format(dateFmt))
		canon("disclosed_to", to.Format(dateFmt))
	}

	sort.Strings(keyParts)
	req.key = strings.Join(keyParts, "&")
	return req, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// The canonical response representations (summary rows, per-occurrence
// details) live in internal/store: the same DTOs back this package's
// json.Marshal fallback path, the precomputed fragments stitched on the
// hot path, and the fragment region of FormatVersion 2 files — one
// definition, so the paths cannot drift apart byte-wise.

// cacheKey scopes a canonical filter key to one snapshot generation.
// Entries written by older generations can never match a newer
// snapshot's lookups, so a swap invalidates the response cache without
// flushing it — while requests already executing against the old
// snapshot still hit their own generation's entries.
func cacheKey(gen uint64, filterKey string) string {
	return "g" + strconv.FormatUint(gen, 10) + "|" + filterKey
}

// scatterGather fans the compiled request out to every shard
// concurrently, records per-shard fan-out latency, and merges the
// shard-local results into the globally ordered page plus the global
// total.
func (s *Server) scatterGather(c *shard.Cluster, req *errataRequest) ([]*core.Erratum, int) {
	lists := make([][]*core.Erratum, len(c.Shards))
	var wg sync.WaitGroup
	for i, sh := range c.Shards {
		wg.Add(1)
		go func(i int, sh *shard.Shard) {
			defer wg.Done()
			start := time.Now()
			lists[i] = req.run(sh.IX)
			s.shardLat[sh.ID].Observe(time.Since(start).Seconds())
		}(i, sh)
	}
	wg.Wait()
	page, total := c.Merge(lists, req.unique, req.offset, req.limit)
	s.merges.Inc()
	s.mergeRows.Add(int64(len(page)))
	return page, total
}

func (s *Server) handleErrata(w http.ResponseWriter, r *http.Request) {
	snap := s.acquireSnap()
	defer snap.release()
	req, err := parseFilters(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := cacheKey(snap.gen, req.key)
	if body, ok := s.cache.get(key); ok {
		writeJSON(w, http.StatusOK, body)
		return
	}
	var page []*core.Erratum
	var total int
	if snap.cluster != nil {
		page, total = s.scatterGather(snap.cluster, req)
	} else {
		matches := req.run(snap.ix)
		total = len(matches)
		page = matches
		if req.offset < len(page) {
			page = page[req.offset:]
		} else {
			page = nil
		}
		if len(page) > req.limit {
			page = page[:req.limit]
		}
	}
	if body, ok := stitchErrataPage(snap, req, page, total); ok {
		s.cache.put(key, body)
		writeJSON(w, http.StatusOK, body)
		return
	}
	summaries := make([]store.ErratumSummary, 0, len(page))
	for _, e := range page {
		summaries = append(summaries, store.Summarize(snap.db, e))
	}
	body, err := marshalJSON(struct {
		Total      int                    `json:"total"`
		Offset     int                    `json:"offset"`
		Count      int                    `json:"count"`
		Unique     bool                   `json:"unique"`
		Generation uint64                 `json:"generation"`
		Errata     []store.ErratumSummary `json:"errata"`
	}{total, req.offset, len(summaries), req.unique, snap.gen, summaries})
	if err != nil {
		writeMarshalError(w, err)
		return
	}
	s.cache.put(key, body)
	writeJSON(w, http.StatusOK, body)
}

// bufPool holds reusable response-stitching buffers. Buffers grow to
// the largest response they ever carry and are recycled, so the steady
// state stitches without allocating.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// stitchErrataPage assembles the /v1/errata response from precomputed
// summary fragments, byte-identical to the json.Marshal fallback. The
// returned body is an exact-size copy (it outlives the request in the
// response cache); the working buffer is pooled. ok is false when any
// fragment is missing — the caller falls back to marshaling.
func stitchErrataPage(snap *snapshot, req *errataRequest, page []*core.Erratum, total int) (body []byte, ok bool) {
	if snap.frags == nil {
		return nil, false
	}
	for _, e := range page {
		if snap.frags.Summary(e) == nil {
			return nil, false
		}
	}
	bp := bufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, `{"total":`...)
	buf = strconv.AppendInt(buf, int64(total), 10)
	buf = append(buf, `,"offset":`...)
	buf = strconv.AppendInt(buf, int64(req.offset), 10)
	buf = append(buf, `,"count":`...)
	buf = strconv.AppendInt(buf, int64(len(page)), 10)
	buf = append(buf, `,"unique":`...)
	buf = strconv.AppendBool(buf, req.unique)
	buf = append(buf, `,"generation":`...)
	buf = strconv.AppendUint(buf, snap.gen, 10)
	buf = append(buf, `,"errata":[`...)
	for i, e := range page {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, snap.frags.Summary(e)...)
	}
	buf = append(buf, "]}"...)
	body = make([]byte, len(buf))
	copy(body, buf)
	*bp = buf
	bufPool.Put(bp)
	return body, true
}

func (s *Server) handleErratum(w http.ResponseWriter, r *http.Request) {
	snap := s.acquireSnap()
	defer snap.release()
	key := r.PathValue("key")
	if s.stitchErratum(w, snap, key) {
		return
	}
	var occurrences []*core.Erratum
	if snap.cluster != nil {
		// Point lookups route to the single shard owning the key.
		occurrences = snap.cluster.ByKey(key)
	} else {
		occurrences = snap.ix.ByKey(key)
	}
	if len(occurrences) == 0 {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no erratum with key %q", key))
		return
	}
	details := make([]store.ErratumDetail, 0, len(occurrences))
	for _, e := range occurrences {
		details = append(details, store.DetailOf(snap.db, e))
	}
	body, err := marshalJSON(struct {
		Key         string                `json:"key"`
		Occurrences int                   `json:"occurrences"`
		Generation  uint64                `json:"generation"`
		Entries     []store.ErratumDetail `json:"entries"`
	}{key, len(details), snap.gen, details})
	if err != nil {
		writeMarshalError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// stitchErratum is the zero-allocation point-lookup path: it assembles
// the /v1/errata/{key} response from the snapshot's precomputed detail
// fragments into a pooled buffer, byte-identical to the json.Marshal
// fallback, and reports whether it handled the request. It declines
// (returning false, writing nothing) when fragments are unavailable or
// the key is unknown, leaving the fallback to marshal or 404.
func (s *Server) stitchErratum(w http.ResponseWriter, snap *snapshot, key string) bool {
	if snap.frags == nil {
		return false
	}
	keyJSON := snap.frags.KeyJSON(key)
	if keyJSON == nil {
		return false
	}
	// Resolve occurrences without allocating: ordinal postings in
	// single-index mode, the owning shard's postings when sharded.
	var ix *index.Index
	if snap.cluster != nil {
		sh := snap.cluster.Shards[shard.Owner(key, snap.cluster.N)]
		ix = sh.IX
	} else {
		ix = snap.ix
	}
	ords := ix.KeyList(key)
	if ords == nil || ords.Len() == 0 {
		return false
	}
	n := ords.Len()
	for i := 0; i < n; i++ {
		if snap.frags.Detail(ix.Entry(ords.At(i))) == nil {
			return false
		}
	}
	bp := bufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, `{"key":`...)
	buf = append(buf, keyJSON...)
	buf = append(buf, `,"occurrences":`...)
	buf = strconv.AppendInt(buf, int64(n), 10)
	buf = append(buf, `,"generation":`...)
	buf = strconv.AppendUint(buf, snap.gen, 10)
	buf = append(buf, `,"entries":[`...)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, snap.frags.Detail(ix.Entry(ords.At(i)))...)
	}
	buf = append(buf, "]}"...)
	writeJSON(w, http.StatusOK, buf)
	*bp = buf
	bufPool.Put(bp)
	return true
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.acquireSnap()
	defer snap.release()
	st := snap.stats
	body, err := marshalJSON(struct {
		Documents    int    `json:"documents"`
		IntelDocs    int    `json:"intel_documents"`
		AMDDocs      int    `json:"amd_documents"`
		Total        int    `json:"errata"`
		IntelTotal   int    `json:"intel_errata"`
		AMDTotal     int    `json:"amd_errata"`
		Unique       int    `json:"unique"`
		IntelUnique  int    `json:"intel_unique"`
		AMDUnique    int    `json:"amd_unique"`
		Annotated    int    `json:"annotated"`
		Unclassified int    `json:"unclassified"`
		Categories   int    `json:"categories"`
		Generation   uint64 `json:"generation"`
	}{
		st.Documents, st.IntelDocs, st.AMDDocs,
		st.Total, st.IntelTotal, st.AMDTotal,
		st.Unique, st.IntelUnique, st.AMDUnique,
		st.Annotated, st.Unclassified,
		snap.db.Scheme.NumCategories(taxonomy.Kind(-1)),
		snap.gen,
	})
	if err != nil {
		writeMarshalError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.acquireSnap()
	defer snap.release()
	body, err := marshalJSON(struct {
		Status     string `json:"status"`
		Errata     int    `json:"errata"`
		Unique     int    `json:"unique"`
		Generation uint64 `json:"generation"`
	}{"ok", snap.size(), snap.uniqueCount(), snap.gen})
	if err != nil {
		writeMarshalError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReload swaps in a freshly produced database with zero downtime.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.opts.Reloader == nil && s.opts.ReloadSource == nil {
		writeError(w, http.StatusNotImplemented, "reload is not configured on this server")
		return
	}
	gen, err := s.Reload(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body, err := marshalJSON(struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}{"ok", gen})
	if err != nil {
		writeMarshalError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// maxIngestBytes bounds one POST /v1/admin/ingest body; the largest
// real specification updates render to a few hundred kilobytes, so
// 16 MiB is generous without letting a runaway client exhaust memory.
const maxIngestBytes = 16 << 20

// handleIngest feeds one specification-update document into the live
// corpus via Options.Ingest and reports the resulting generation.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.opts.Ingest == nil {
		writeError(w, http.StatusNotImplemented, "ingest is not configured on this server")
		return
	}
	text, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	sum, err := s.opts.Ingest(r.Context(), string(text))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := marshalJSON(struct {
		Status string `json:"status"`
		IngestSummary
	}{"ok", sum})
	if err != nil {
		writeMarshalError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// EndpointSnapshot is one endpoint's counters at a point in time.
type EndpointSnapshot struct {
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	LatencyNS int64 `json:"latency_ns"`
}

// CacheSnapshot is the cache counters at a point in time.
type CacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// MetricsSnapshot is the full /v1/metrics.json payload.
type MetricsSnapshot struct {
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	Cache     CacheSnapshot               `json:"cache"`
}

// Metrics returns a snapshot of the server's instruments, read back
// from the obs registry; the same data backs /v1/metrics.json, and the
// raw instruments are exposed in Prometheus form at /metrics.
func (s *Server) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{Endpoints: make(map[string]EndpointSnapshot, len(s.endpoints))}
	for name, m := range s.endpoints {
		snap.Endpoints[name] = EndpointSnapshot{
			Requests:  m.requests.Value(),
			Errors:    m.errors.Value(),
			LatencyNS: int64(m.latency.Snapshot().Sum * 1e9),
		}
	}
	hits, misses, evictions, entries := s.cache.stats()
	snap.Cache = CacheSnapshot{
		Hits: hits, Misses: misses, Evictions: evictions,
		Entries: entries, Capacity: s.cache.max,
	}
	return snap
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	body, err := marshalJSON(s.Metrics())
	if err != nil {
		writeMarshalError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.reg.WritePrometheus(w)
}
