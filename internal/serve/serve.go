// Package serve exposes a loaded RemembERR database over an HTTP JSON
// API — the serving layer for the paper's released-database use case.
// Endpoints:
//
//	GET /errata        filtered query (see parseFilters for parameters)
//	GET /errata/{key}  every occurrence of one deduplicated erratum
//	GET /stats         corpus statistics
//	GET /healthz       liveness probe
//	GET /metrics       per-endpoint counters and cache statistics
//
// Queries execute on the inverted index (internal/index), results are
// memoized in an LRU cache keyed by the canonicalized filter set, and
// every endpoint records request/error/latency counters exported at
// /metrics in expvar style (plain JSON, no dependencies). The server
// is safe for arbitrary concurrency: the database and index are
// immutable snapshots, the cache is mutex-guarded, and the counters are
// atomics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/taxonomy"
)

// Options configures the server.
type Options struct {
	// CacheSize is the LRU capacity in cached responses. 0 selects the
	// default 256; negative disables caching.
	CacheSize int
	// RequestTimeout bounds handler execution per request. 0 selects
	// the default 10s.
	RequestTimeout time.Duration
	// ShutdownGrace bounds how long Serve waits for in-flight requests
	// on shutdown. 0 selects the default 5s.
	ShutdownGrace time.Duration
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.ShutdownGrace == 0 {
		o.ShutdownGrace = 5 * time.Second
	}
	return o
}

// endpointMetrics counts one route's traffic.
type endpointMetrics struct {
	requests  atomic.Int64
	errors    atomic.Int64
	latencyNS atomic.Int64
}

// Server serves one immutable database snapshot.
type Server struct {
	db    *core.Database
	ix    *index.Index
	opts  Options
	cache *lruCache
	stats core.Stats

	metrics map[string]*endpointMetrics
}

// New builds the index over db and returns a ready server. The caller
// must not mutate db afterwards.
func New(db *core.Database, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		db:    db,
		ix:    index.Build(db),
		opts:  opts,
		cache: newLRUCache(opts.CacheSize),
		stats: db.ComputeStats(),
		metrics: map[string]*endpointMetrics{
			"errata":  {},
			"erratum": {},
			"stats":   {},
			"healthz": {},
			"metrics": {},
		},
	}
}

// Handler returns the routed HTTP handler with request timeouts
// applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /errata", s.instrument("errata", s.handleErrata))
	mux.HandleFunc("GET /errata/{key}", s.instrument("erratum", s.handleErratum))
	mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return http.TimeoutHandler(mux, s.opts.RequestTimeout, `{"error":"request timed out"}`)
}

// Serve listens on addr until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests within the shutdown grace.
func (s *Server) Serve(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownGrace)
		defer cancel()
		done <- srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		m.requests.Add(1)
		m.latencyNS.Add(time.Since(start).Nanoseconds())
		if rec.status >= 400 {
			m.errors.Add(1)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(map[string]string{"error": msg})
	writeJSON(w, status, body)
}

// filterParams lists every /errata query parameter in canonical order;
// the cache key is built by walking this list, so two requests with
// reordered or repeated-but-equal parameters share one cache entry.
var filterParams = []string{
	"vendor", "doc", "category", "any_category", "class", "trigger",
	"min_triggers", "msr", "title", "complex", "sim_only", "workaround",
	"fix", "disclosed_from", "disclosed_to", "unique", "limit", "offset",
}

type errataRequest struct {
	query  *index.Query
	unique bool
	limit  int
	offset int
	key    string // canonicalized filter set
}

func parseBool(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "1", "true", "yes":
		return true, nil
	case "0", "false", "no":
		return false, nil
	default:
		return false, fmt.Errorf("bad boolean %q", s)
	}
}

const dateFmt = "2006-01-02"

// parseFilters compiles URL query parameters into an index query plus a
// canonical cache key. Unknown parameters are rejected so that typos
// surface as 400s instead of silently matching everything.
func (s *Server) parseFilters(values url.Values) (*errataRequest, error) {
	for p := range values {
		known := false
		for _, k := range filterParams {
			if p == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown parameter %q", p)
		}
	}

	req := &errataRequest{query: s.ix.Query(), unique: true, limit: 100}
	var keyParts []string
	canon := func(param string, vals ...string) {
		sort.Strings(vals)
		keyParts = append(keyParts, param+"="+strings.Join(vals, ","))
	}

	for _, param := range filterParams {
		vals, ok := values[param]
		if !ok || len(vals) == 0 {
			continue
		}
		switch param {
		case "vendor":
			v, err := core.ParseVendor(vals[0])
			if err != nil {
				return nil, err
			}
			req.query.Vendor(v)
			canon(param, v.String())
		case "doc":
			req.query.InDocument(vals[0])
			canon(param, vals[0])
		case "category":
			for _, c := range vals {
				req.query.WithCategory(c)
			}
			canon(param, vals...)
		case "any_category":
			// Each occurrence is one disjunctive group of
			// comma-separated categories; groups compose conjunctively.
			groups := make([]string, 0, len(vals))
			for _, group := range vals {
				ids := splitList(group)
				req.query.AnyCategory(ids...)
				sort.Strings(ids)
				groups = append(groups, strings.Join(ids, ","))
			}
			canon(param, groups...)
		case "class":
			for _, c := range vals {
				req.query.WithClass(c)
			}
			canon(param, vals...)
		case "trigger":
			req.query.WithAllTriggers(vals...)
			canon(param, vals...)
		case "min_triggers":
			n, err := strconv.Atoi(vals[0])
			if err != nil {
				return nil, fmt.Errorf("bad min_triggers %q", vals[0])
			}
			req.query.MinTriggers(n)
			canon(param, strconv.Itoa(n))
		case "msr":
			for _, m := range vals {
				req.query.ObservableIn(m)
			}
			canon(param, vals...)
		case "title":
			req.query.TitleContains(vals[0])
			canon(param, strings.ToLower(vals[0]))
		case "complex":
			b, err := parseBool(vals[0])
			if err != nil {
				return nil, err
			}
			if b {
				req.query.Complex()
			}
			canon(param, strconv.FormatBool(b))
		case "sim_only":
			b, err := parseBool(vals[0])
			if err != nil {
				return nil, err
			}
			if b {
				req.query.SimulationOnly()
			}
			canon(param, strconv.FormatBool(b))
		case "workaround":
			wc, err := core.ParseWorkaroundCategory(vals[0])
			if err != nil {
				return nil, err
			}
			req.query.Workaround(wc)
			canon(param, wc.String())
		case "fix":
			fx, err := core.ParseFixStatus(vals[0])
			if err != nil {
				return nil, err
			}
			req.query.Fix(fx)
			canon(param, fx.String())
		case "disclosed_from", "disclosed_to":
			// Handled together below; canonicalized there.
		case "unique":
			b, err := parseBool(vals[0])
			if err != nil {
				return nil, err
			}
			req.unique = b
			canon(param, strconv.FormatBool(b))
		case "limit":
			n, err := strconv.Atoi(vals[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad limit %q", vals[0])
			}
			if n > 1000 {
				n = 1000
			}
			req.limit = n
			canon(param, strconv.Itoa(n))
		case "offset":
			n, err := strconv.Atoi(vals[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad offset %q", vals[0])
			}
			req.offset = n
			canon(param, strconv.Itoa(n))
		}
	}

	fromS, toS := values.Get("disclosed_from"), values.Get("disclosed_to")
	if fromS != "" || toS != "" {
		from := time.Time{}
		to := time.Date(9999, 12, 31, 0, 0, 0, 0, time.UTC)
		var err error
		if fromS != "" {
			if from, err = time.Parse(dateFmt, fromS); err != nil {
				return nil, fmt.Errorf("bad disclosed_from %q", fromS)
			}
		}
		if toS != "" {
			if to, err = time.Parse(dateFmt, toS); err != nil {
				return nil, fmt.Errorf("bad disclosed_to %q", toS)
			}
		}
		req.query.DisclosedBetween(from, to)
		canon("disclosed", from.Format(dateFmt), to.Format(dateFmt))
	}

	sort.Strings(keyParts)
	req.key = strings.Join(keyParts, "&")
	return req, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

type erratumSummary struct {
	FullID    string `json:"full_id"`
	Key       string `json:"key,omitempty"`
	Doc       string `json:"doc"`
	ID        string `json:"id"`
	Vendor    string `json:"vendor"`
	Title     string `json:"title"`
	Disclosed string `json:"disclosed,omitempty"`
}

func (s *Server) summarize(e *core.Erratum) erratumSummary {
	sum := erratumSummary{
		FullID: e.FullID(),
		Key:    e.Key,
		Doc:    e.DocKey,
		ID:     e.ID,
		Title:  e.Title,
	}
	if d := s.db.Docs[e.DocKey]; d != nil {
		sum.Vendor = d.Vendor.String()
	}
	if !e.Disclosed.IsZero() {
		sum.Disclosed = e.Disclosed.Format(dateFmt)
	}
	return sum
}

func (s *Server) handleErrata(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseFilters(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if body, ok := s.cache.get(req.key); ok {
		writeJSON(w, http.StatusOK, body)
		return
	}
	var matches []*core.Erratum
	if req.unique {
		matches = req.query.Unique()
	} else {
		matches = req.query.All()
	}
	page := matches
	if req.offset < len(page) {
		page = page[req.offset:]
	} else {
		page = nil
	}
	if len(page) > req.limit {
		page = page[:req.limit]
	}
	summaries := make([]erratumSummary, 0, len(page))
	for _, e := range page {
		summaries = append(summaries, s.summarize(e))
	}
	body, err := json.Marshal(struct {
		Total  int              `json:"total"`
		Offset int              `json:"offset"`
		Count  int              `json:"count"`
		Unique bool             `json:"unique"`
		Errata []erratumSummary `json:"errata"`
	}{len(matches), req.offset, len(summaries), req.unique, summaries})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.cache.put(req.key, body)
	writeJSON(w, http.StatusOK, body)
}

type itemJSON struct {
	Category string `json:"category"`
	Concrete string `json:"concrete,omitempty"`
}

func itemsJSON(items []core.Item) []itemJSON {
	out := make([]itemJSON, 0, len(items))
	for _, it := range items {
		out = append(out, itemJSON{Category: it.Category, Concrete: it.Concrete})
	}
	return out
}

type erratumDetail struct {
	erratumSummary
	Seq         int        `json:"seq"`
	Description string     `json:"description,omitempty"`
	Implication string     `json:"implication,omitempty"`
	Workaround  string     `json:"workaround,omitempty"`
	Status      string     `json:"status,omitempty"`
	WorkCat     string     `json:"workaround_category"`
	Fix         string     `json:"fix_status"`
	Triggers    []itemJSON `json:"triggers,omitempty"`
	Contexts    []itemJSON `json:"contexts,omitempty"`
	Effects     []itemJSON `json:"effects,omitempty"`
	MSRs        []string   `json:"msrs,omitempty"`
	Complex     bool       `json:"complex_conditions,omitempty"`
	SimOnly     bool       `json:"simulation_only,omitempty"`
}

func (s *Server) handleErratum(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	occurrences := s.ix.ByKey(key)
	if len(occurrences) == 0 {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no erratum with key %q", key))
		return
	}
	details := make([]erratumDetail, 0, len(occurrences))
	for _, e := range occurrences {
		details = append(details, erratumDetail{
			erratumSummary: s.summarize(e),
			Seq:            e.Seq,
			Description:    e.Description,
			Implication:    e.Implication,
			Workaround:     e.Workaround,
			Status:         e.Status,
			WorkCat:        e.WorkaroundCat.String(),
			Fix:            e.Fix.String(),
			Triggers:       itemsJSON(e.Ann.Triggers),
			Contexts:       itemsJSON(e.Ann.Contexts),
			Effects:        itemsJSON(e.Ann.Effects),
			MSRs:           e.Ann.MSRs,
			Complex:        e.Ann.ComplexConditions,
			SimOnly:        e.Ann.SimulationOnly,
		})
	}
	body, _ := json.Marshal(struct {
		Key         string          `json:"key"`
		Occurrences int             `json:"occurrences"`
		Entries     []erratumDetail `json:"entries"`
	}{key, len(details), details})
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.stats
	body, _ := json.Marshal(struct {
		Documents    int `json:"documents"`
		IntelDocs    int `json:"intel_documents"`
		AMDDocs      int `json:"amd_documents"`
		Total        int `json:"errata"`
		IntelTotal   int `json:"intel_errata"`
		AMDTotal     int `json:"amd_errata"`
		Unique       int `json:"unique"`
		IntelUnique  int `json:"intel_unique"`
		AMDUnique    int `json:"amd_unique"`
		Annotated    int `json:"annotated"`
		Unclassified int `json:"unclassified"`
		Categories   int `json:"categories"`
	}{
		st.Documents, st.IntelDocs, st.AMDDocs,
		st.Total, st.IntelTotal, st.AMDTotal,
		st.Unique, st.IntelUnique, st.AMDUnique,
		st.Annotated, st.Unclassified,
		s.db.Scheme.NumCategories(taxonomy.Kind(-1)),
	})
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body, _ := json.Marshal(struct {
		Status string `json:"status"`
		Errata int    `json:"errata"`
		Unique int    `json:"unique"`
	}{"ok", s.ix.Size(), s.ix.UniqueCount()})
	writeJSON(w, http.StatusOK, body)
}

// EndpointSnapshot is one endpoint's counters at a point in time.
type EndpointSnapshot struct {
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	LatencyNS int64 `json:"latency_ns"`
}

// CacheSnapshot is the cache counters at a point in time.
type CacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// MetricsSnapshot is the full /metrics payload.
type MetricsSnapshot struct {
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	Cache     CacheSnapshot               `json:"cache"`
}

// Metrics returns a snapshot of all counters; the same data backs the
// /metrics endpoint.
func (s *Server) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{Endpoints: make(map[string]EndpointSnapshot, len(s.metrics))}
	for name, m := range s.metrics {
		snap.Endpoints[name] = EndpointSnapshot{
			Requests:  m.requests.Load(),
			Errors:    m.errors.Load(),
			LatencyNS: m.latencyNS.Load(),
		}
	}
	hits, misses, evictions, entries := s.cache.stats()
	snap.Cache = CacheSnapshot{
		Hits: hits, Misses: misses, Evictions: evictions,
		Entries: entries, Capacity: s.cache.max,
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	body, _ := json.Marshal(s.Metrics())
	writeJSON(w, http.StatusOK, body)
}
