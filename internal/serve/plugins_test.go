package serve

// The test binary is its own composition root: generating corpora and
// compiling classifier engines requires the default plugins.
import _ "repro/plugins/defaults"
