package serve

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU cache from canonicalized query keys
// to serialized JSON responses. The database behind the server is
// immutable, so entries never expire; capacity eviction is the only
// invalidation. Hit/miss/eviction counts feed /metrics.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	val []byte
}

// newLRUCache returns a cache holding up to max entries; max <= 0
// disables caching (every lookup misses, nothing is stored).
func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

func (c *lruCache) put(key string, val []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns a consistent snapshot of the counters and size.
func (c *lruCache) stats() (hits, misses, evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}
