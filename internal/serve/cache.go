package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// lruCache is a mutex-guarded LRU cache from canonicalized query keys
// to serialized JSON responses. The database behind the server is
// immutable, so entries never expire; capacity eviction is the only
// invalidation. Hit/miss/eviction counts are recorded straight into
// the server's obs registry (rememberr_cache_*_total), so /metrics and
// /v1/metrics.json read from the same instruments.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheEntry struct {
	key string
	val []byte
}

// newLRUCache returns a cache holding up to max entries; max <= 0
// disables caching (every lookup misses, nothing is stored). The
// counters may be nil (no-op) when instrumentation is off.
func newLRUCache(max int, hits, misses, evictions *obs.Counter) *lruCache {
	return &lruCache{
		max:       max,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      hits,
		misses:    misses,
		evictions: evictions,
	}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*cacheEntry).val, true
	}
	c.misses.Inc()
	return nil, false
}

func (c *lruCache) put(key string, val []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// entries returns the current cache size; it backs the
// rememberr_cache_entries gauge.
func (c *lruCache) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// stats returns a snapshot of the counters and size.
func (c *lruCache) stats() (hits, misses, evictions int64, entries int) {
	return c.hits.Value(), c.misses.Value(), c.evictions.Value(), c.entries()
}
