package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// swapTestDBs returns two databases with provably different statistics:
// the same generated corpus, with one document removed from the second.
func swapTestDBs(t *testing.T) (*core.Database, *core.Database) {
	t.Helper()
	gtA, err := corpus.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	gtB, err := corpus.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	dbB := gtB.DB
	delete(dbB.Docs, dbB.Documents()[0].Key)
	a, b := gtA.DB.ComputeStats(), dbB.ComputeStats()
	if a.Total == b.Total || a.Unique == b.Unique {
		t.Fatalf("test databases do not differ: %+v vs %+v", a, b)
	}
	return gtA.DB, dbB
}

// TestSnapshotSwapUnderLoad hammers the API across 100 goroutines while
// the main goroutine swaps snapshots mid-flight. Run under -race. Every
// response must be internally consistent with the generation id it
// reports — a torn snapshot, or a response-cache entry leaking across
// generations, shows up as a total that contradicts the generation.
func TestSnapshotSwapUnderLoad(t *testing.T) {
	dbA, dbB := swapTestDBs(t)
	statsA, statsB := dbA.ComputeStats(), dbB.ComputeStats()

	s := newDBServer(dbA, Options{CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Generation parity determines the database: New installs dbA as
	// generation 1 and the swapper below alternates dbB, dbA, dbB, ...
	expect := func(gen uint64) core.Stats {
		if gen%2 == 1 {
			return statsA
		}
		return statsB
	}

	// Sanity: the initial snapshot serves generation 1 with dbA stats.
	var first struct {
		Errata     int    `json:"errata"`
		Generation uint64 `json:"generation"`
	}
	resp, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if first.Generation != 1 || first.Errata != statsA.Total {
		t.Fatalf("initial response: %+v, want gen 1 with %d errata", first, statsA.Total)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					// The identical filter key every iteration makes
					// this a response-cache torture test: a stale entry
					// served for a newer generation mismatches below.
					var body struct {
						Total      int    `json:"total"`
						Generation uint64 `json:"generation"`
					}
					if !getInto(t, client, ts.URL+"/v1/errata?limit=1", &body) {
						return
					}
					if want := expect(body.Generation).Unique; body.Total != want {
						t.Errorf("errata: generation %d reported total %d, want %d",
							body.Generation, body.Total, want)
						return
					}
				case 1:
					var body struct {
						Errata     int    `json:"errata"`
						Unique     int    `json:"unique"`
						Generation uint64 `json:"generation"`
					}
					if !getInto(t, client, ts.URL+"/v1/stats", &body) {
						return
					}
					want := expect(body.Generation)
					if body.Errata != want.Total || body.Unique != want.Unique {
						t.Errorf("stats: generation %d reported %d/%d, want %d/%d",
							body.Generation, body.Errata, body.Unique, want.Total, want.Unique)
						return
					}
				case 2:
					var body struct {
						Errata     int    `json:"errata"`
						Unique     int    `json:"unique"`
						Generation uint64 `json:"generation"`
					}
					if !getInto(t, client, ts.URL+"/healthz", &body) {
						return
					}
					want := expect(body.Generation)
					if body.Errata != want.Total || body.Unique != want.Unique {
						t.Errorf("healthz: generation %d reported %d/%d, want %d/%d",
							body.Generation, body.Errata, body.Unique, want.Total, want.Unique)
						return
					}
				}
			}
		}(i)
	}

	lastGen := uint64(1)
	for i := 0; i < 25; i++ {
		db := dbB
		if i%2 == 1 {
			db = dbA
		}
		gen := s.Swap(db)
		if gen != lastGen+1 {
			t.Fatalf("swap %d installed generation %d, want %d", i, gen, lastGen+1)
		}
		lastGen = gen
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Post-swap steady state: new requests see the final generation.
	if got := s.Generation(); got != lastGen {
		t.Fatalf("Generation() = %d, want %d", got, lastGen)
	}
	var final struct {
		Errata     int    `json:"errata"`
		Generation uint64 `json:"generation"`
	}
	if !getInto(t, client, ts.URL+"/v1/stats", &final) {
		t.Fatal("final stats request failed")
	}
	if final.Generation != lastGen || final.Errata != expect(lastGen).Total {
		t.Fatalf("final response %+v, want generation %d with %d errata",
			final, lastGen, expect(lastGen).Total)
	}
}

// getInto fetches a URL and decodes the JSON body; it reports false
// (after t.Error) on any failure so load goroutines can bail out.
func getInto(t *testing.T, c *http.Client, url string, into any) bool {
	resp, err := c.Get(url)
	if err != nil {
		t.Errorf("GET %s: %v", url, err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET %s: status %d", url, resp.StatusCode)
		return false
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Errorf("GET %s: decode: %v", url, err)
		return false
	}
	return true
}

// TestAdminReload covers the reload endpoint: 501 without a reloader,
// zero-downtime swap with one, and an untouched snapshot on reloader
// failure.
func TestAdminReload(t *testing.T) {
	dbA, dbB := swapTestDBs(t)
	statsB := dbB.ComputeStats()

	// No reloader configured: 501.
	s := newDBServer(dbA, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without reloader = %d, want 501", resp.StatusCode)
	}
	if _, err := s.Reload(context.Background()); err == nil {
		t.Fatal("Reload without reloader did not error")
	}

	// With a reloader: swap to dbB, generation advances, stats follow.
	var fail bool
	s2 := newDBServer(dbA, Options{Reloader: func(context.Context) (*core.Database, error) {
		if fail {
			return nil, errors.New("synthetic reload failure")
		}
		return dbB, nil
	}})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = ts2.Client().Post(ts2.URL+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Status != "ok" || rr.Generation != 2 {
		t.Fatalf("reload response: %d %+v, want 200 ok generation 2", resp.StatusCode, rr)
	}
	var st struct {
		Errata     int    `json:"errata"`
		Generation uint64 `json:"generation"`
	}
	if !getInto(t, ts2.Client(), ts2.URL+"/v1/stats", &st) {
		t.Fatal("stats after reload failed")
	}
	if st.Generation != 2 || st.Errata != statsB.Total {
		t.Fatalf("post-reload stats %+v, want generation 2 with %d errata", st, statsB.Total)
	}

	// GET on the reload path is not routed (admin reloads are POST-only).
	getResp, err := ts2.Client().Get(ts2.URL + "/v1/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode == http.StatusOK {
		t.Fatal("GET /v1/admin/reload unexpectedly succeeded")
	}

	// Failing reloader: 500, generation and data unchanged.
	fail = true
	resp, err = ts2.Client().Post(ts2.URL+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	bodyBytes := make([]byte, 256)
	n, _ := resp.Body.Read(bodyBytes)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing reload = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(bodyBytes[:n]), "synthetic reload failure") {
		t.Fatalf("failing reload body %q does not surface the cause", bodyBytes[:n])
	}
	if got := s2.Generation(); got != 2 {
		t.Fatalf("generation after failed reload = %d, want 2", got)
	}
}

// TestSwapInvalidatesCache pins the generation-scoped cache behavior
// directly: the same logical query served before and after a swap must
// produce fresh results, while repeat queries within one generation
// still hit the cache.
func TestSwapInvalidatesCache(t *testing.T) {
	dbA, dbB := swapTestDBs(t)
	statsA, statsB := dbA.ComputeStats(), dbB.ComputeStats()
	s := newDBServer(dbA, Options{CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (int, uint64) {
		var body struct {
			Total      int    `json:"total"`
			Generation uint64 `json:"generation"`
		}
		if !getInto(t, ts.Client(), ts.URL+"/v1/errata?limit=1", &body) {
			t.FailNow()
		}
		return body.Total, body.Generation
	}

	tot, gen := get()
	if gen != 1 || tot != statsA.Unique {
		t.Fatalf("gen1 query: total %d gen %d, want %d gen 1", tot, gen, statsA.Unique)
	}
	// Second identical query hits the cache (hit counter increments).
	hitsBefore := s.cache.hits.Value()
	if tot2, _ := get(); tot2 != tot {
		t.Fatalf("repeat query changed total: %d vs %d", tot2, tot)
	}
	if s.cache.hits.Value() != hitsBefore+1 {
		t.Fatal("repeat query within one generation missed the cache")
	}

	s.Swap(dbB)
	tot, gen = get()
	if gen != 2 || tot != statsB.Unique {
		t.Fatalf("post-swap query: total %d gen %d, want %d gen 2 (stale cache entry served?)",
			tot, gen, statsB.Unique)
	}
}
