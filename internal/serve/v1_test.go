package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// noRedirectClient stops at the first response so redirects can be
// asserted rather than followed.
func noRedirectClient(ts *httptest.Server) *http.Client {
	c := *ts.Client()
	c.CheckRedirect = func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}
	return &c
}

// TestLegacyRedirects pins the compatibility contract: every
// unversioned path answers 308 with a Location pointing at the /v1
// equivalent, query string preserved, and the redirect traffic is
// accounted under its own endpoint.
func TestLegacyRedirects(t *testing.T) {
	s := testServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := noRedirectClient(ts)

	cases := []struct{ path, location string }{
		{"/errata", "/v1/errata"},
		{"/errata?vendor=Intel&limit=5", "/v1/errata?vendor=Intel&limit=5"},
		{"/errata/some-key", "/v1/errata/some-key"},
		{"/stats", "/v1/stats"},
	}
	for _, tc := range cases {
		resp, err := c.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s = %d, want 308", tc.path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != tc.location {
			t.Errorf("%s Location = %q, want %q", tc.path, loc, tc.location)
		}
	}
	m := s.Metrics()
	if got := m.Endpoints["redirect"].Requests; got != int64(len(cases)) {
		t.Errorf("redirect requests = %d, want %d", got, len(cases))
	}
	if got := m.Endpoints["errata"].Requests; got != 0 {
		t.Errorf("errata requests = %d after unfollowed redirects, want 0", got)
	}
	// Following the redirect lands on the same payload as direct /v1.
	var viaLegacy, direct errataResp
	getJSON(t, ts.Client(), ts.URL+"/errata?limit=3", &viaLegacy)
	getJSON(t, ts.Client(), ts.URL+"/v1/errata?limit=3", &direct)
	if viaLegacy.Total != direct.Total || len(viaLegacy.Errata) != len(direct.Errata) {
		t.Errorf("legacy-followed %+v != direct %+v", viaLegacy, direct)
	}
}

// TestPaginationEdges covers the limit/offset boundary contract on the
// v1 listing: limit=0 returns an empty page with the true total, and an
// offset past the end is a 200 with zero rows, not an error.
func TestPaginationEdges(t *testing.T) {
	s := testServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var zero errataResp
	if code := getJSON(t, c, ts.URL+"/v1/errata?limit=0", &zero); code != 200 {
		t.Fatalf("limit=0 = %d, want 200", code)
	}
	if zero.Count != 0 || len(zero.Errata) != 0 || zero.Total == 0 {
		t.Fatalf("limit=0 page = %+v, want empty page with real total", zero)
	}

	var past errataResp
	if code := getJSON(t, c, ts.URL+"/v1/errata?offset="+"1000000", &past); code != 200 {
		t.Fatalf("offset past end = %d, want 200", code)
	}
	if past.Count != 0 || past.Total != zero.Total || past.Offset != 1000000 {
		t.Fatalf("past-the-end page = %+v", past)
	}

	// Exact final page: offset = total-1 yields one row.
	var last errataResp
	getJSON(t, c, ts.URL+"/v1/errata?offset="+strconv.Itoa(zero.Total-1), &last)
	if last.Count != 1 {
		t.Fatalf("final-row page count = %d, want 1", last.Count)
	}
}

// TestPrometheusEndpoint checks that /metrics serves the whole registry
// in exposition format: per-endpoint latency histograms, cache
// counters, and index instruments all present in one page.
func TestPrometheusEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	s := testServer(t, Options{Observability: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// Generate traffic that touches the cache and the index.
	getJSON(t, c, ts.URL+"/v1/errata?vendor=Intel&category=Eff_HNG_hng", nil)
	getJSON(t, c, ts.URL+"/v1/errata?vendor=Intel&category=Eff_HNG_hng", nil)
	getJSON(t, c, ts.URL+"/v1/stats", nil)

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE rememberr_http_request_duration_seconds histogram",
		`rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="+Inf"}`,
		`rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.0001"}`,
		`rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.00025"}`,
		`rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.0005"}`,
		`rememberr_http_request_duration_seconds_bucket{endpoint="errata",le="0.001"}`,
		`rememberr_http_requests_total{endpoint="errata"} 2`,
		`rememberr_http_requests_total{endpoint="stats"} 1`,
		"rememberr_cache_hits_total 1",
		"rememberr_cache_misses_total 1",
		"rememberr_cache_entries 1",
		"rememberr_cache_capacity 256",
		"# TYPE rememberr_index_intersections_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The JSON snapshot stays available under /v1/metrics.json and
	// agrees with the registry-backed Metrics().
	var snap MetricsSnapshot
	if code := getJSON(t, c, ts.URL+"/v1/metrics.json", &snap); code != 200 {
		t.Fatalf("/v1/metrics.json = %d", code)
	}
	if snap.Endpoints["errata"].Requests != 2 || snap.Cache.Hits != 1 {
		t.Fatalf("metrics.json snapshot = %+v", snap)
	}
	if snap.Endpoints["errata"].LatencyNS <= 0 {
		t.Fatalf("latency NS = %d, want > 0", snap.Endpoints["errata"].LatencyNS)
	}
}

// TestSharedRegistry proves Options.Observability folds the server's
// instruments into a caller-owned registry (the build/serve unification
// the obs layer exists for).
func TestSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	external := reg.Counter("external_component_total", "")
	external.Add(7)
	s := testServer(t, Options{Observability: reg})
	if s.Registry() != reg {
		t.Fatal("server did not adopt the provided registry")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	getJSON(t, ts.Client(), ts.URL+"/healthz", nil)

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	if !strings.Contains(out, "external_component_total 7") {
		t.Error("caller's own instrument missing from shared registry")
	}
	if !strings.Contains(out, `rememberr_http_requests_total{endpoint="healthz"} 1`) {
		t.Error("server instrument missing from shared registry")
	}
}

// TestStatusRecorderFlush verifies the instrumentation wrapper
// propagates http.Flusher to streaming handlers instead of masking it.
func TestStatusRecorderFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: rec, status: http.StatusOK}
	f, ok := http.ResponseWriter(sr).(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not implement http.Flusher")
	}
	sr.Write([]byte("chunk"))
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if sr.Unwrap() != http.ResponseWriter(rec) {
		t.Error("Unwrap does not expose the underlying writer")
	}

	// End to end: a handler type-asserting Flusher succeeds behind
	// instrument().
	s := testServer(t, Options{})
	h := s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("handler cannot see Flusher through instrumentation")
		}
		w.Write([]byte("ok"))
	})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
}

// TestProfilingGate checks /debug/pprof/ is absent by default and
// served (outside the timeout wrapper) when enabled.
func TestProfilingGate(t *testing.T) {
	off := testServer(t, Options{})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, err := tsOff.Client().Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnableProfiling = %d, want 404", resp.StatusCode)
	}

	on := testServer(t, Options{EnableProfiling: true})
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	resp, err = tsOn.Client().Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index = %d: %.80s", resp.StatusCode, body)
	}
	// API routes still work (and still time out) with profiling on.
	if code := getJSON(t, tsOn.Client(), tsOn.URL+"/v1/stats", nil); code != 200 {
		t.Fatalf("/v1/stats with profiling = %d", code)
	}
}
