package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// TestMarshalFailuresAre500s is the regression test for the former
// `body, _ := json.Marshal(...)` sites: when response marshaling fails,
// every handler must answer the static 500 marshal-error body — not a
// silently empty 200 — and the failure must land in the per-endpoint
// error counter.
func TestMarshalFailuresAre500s(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	srv := newDBServer(gt.DB, Options{
		CacheSize: -1,
		Reloader: func(context.Context) (*core.Database, error) {
			g, err := corpus.Generate(1)
			if err != nil {
				return nil, err
			}
			return g.DB, nil
		},
		Ingest: func(context.Context, string) (IngestSummary, error) {
			return IngestSummary{}, nil
		},
	})
	h := srv.Handler()
	key := gt.DB.Unique()[0].Key

	// The stitched paths never touch encoding/json, so they must keep
	// answering even while marshaling is broken. Force the fallback by
	// dropping the fragments from the live snapshot.
	snap := *srv.snap.Load()
	snap.frags = nil
	srv.snap.Store(&snap)

	prev := marshalJSON
	marshalJSON = func(any) ([]byte, error) { return nil, errors.New("forced marshal failure") }
	defer func() { marshalJSON = prev }()

	const wantBody = `{"error":"response encoding failed"}`
	cases := []struct {
		endpoint string
		method   string
		url      string
		body     string
	}{
		{"errata", "GET", "/v1/errata", ""},
		{"erratum", "GET", "/v1/errata/" + key, ""},
		{"stats", "GET", "/v1/stats", ""},
		{"healthz", "GET", "/healthz", ""},
		{"metrics_json", "GET", "/v1/metrics.json", ""},
		{"admin_reload", "POST", "/v1/admin/reload", ""},
		{"admin_ingest", "POST", "/v1/admin/ingest", "ERRATA DOCUMENT\nEND OF DOCUMENT\n"},
	}
	for _, tc := range cases {
		before := srv.endpoints[tc.endpoint].errors.Value()
		rec := httptest.NewRecorder()
		var body *strings.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		} else {
			body = strings.NewReader("")
		}
		h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.url, body))
		if rec.Code != http.StatusInternalServerError {
			t.Errorf("%s %s: status %d, want 500", tc.method, tc.url, rec.Code)
		}
		if got := strings.TrimSpace(rec.Body.String()); got != wantBody {
			t.Errorf("%s %s: body %q, want %q", tc.method, tc.url, got, wantBody)
		}
		if after := srv.endpoints[tc.endpoint].errors.Value(); after != before+1 {
			t.Errorf("%s: error counter %v -> %v, want +1", tc.endpoint, before, after)
		}
	}
}

// TestStitchedSurvivesMarshalFailure proves the hot path's independence
// from encoding/json: with fragments intact, point lookups and page
// queries still answer 200 while json.Marshal is broken.
func TestStitchedSurvivesMarshalFailure(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	srv := newDBServer(gt.DB, Options{CacheSize: -1})
	h := srv.Handler()
	key := gt.DB.Unique()[0].Key

	prev := marshalJSON
	marshalJSON = func(any) ([]byte, error) { return nil, errors.New("forced marshal failure") }
	defer func() { marshalJSON = prev }()

	for _, url := range []string{"/v1/errata/" + key, "/v1/errata?limit=5"} {
		if code, body := get(t, h, url); code != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: %d %q while marshal broken; stitched path should not need json.Marshal", url, code, body)
		}
	}
}
