package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/shard"
)

// serveFilterMatrix is the /v1/errata query vocabulary for the
// sharded-vs-single equivalence matrix: every filter parameter at least
// once, compound filters, and the pagination edges.
var serveFilterMatrix = []string{
	"",
	"vendor=Intel",
	"vendor=AMD",
	"doc=intel-06",
	"category=Trg_POW_pwc",
	"category=Eff_HNG_hng",
	"category=Trg_XXX_xxx", // unknown: zero matches on every shard
	"category=Eff_HNG_hng&category=Trg_POW_pwc",
	"any_category=Eff_HNG_hng,Eff_HNG_crh",
	"class=Trg_POW",
	"class=Eff_HNG",
	"trigger=Trg_POW_pwc&trigger=Trg_MOP_fen",
	"min_triggers=2",
	"workaround=BIOS",
	"fix=NoFixPlanned",
	"complex=true",
	"sim_only=true",
	"title=the",
	"msr=MCx_STATUS",
	"unique=false",
	"unique=false&limit=1000",
	"vendor=Intel&category=Eff_HNG_hng",
	"vendor=AMD&class=Trg_POW&min_triggers=1",
	"vendor=Intel&class=Trg_POW&min_triggers=1&limit=7&offset=3",
	"limit=0",
	"limit=1000",
	"offset=50&limit=25",
	"offset=999999", // past the global total
	"disclosed_from=2010-01-01&disclosed_to=2016-01-01",
	"disclosed_from=2016-01-01&disclosed_to=2010-01-01", // inverted: empty
}

// get issues one request straight through a server's handler chain and
// returns status and body.
func get(t *testing.T, h http.Handler, url string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec.Code, rec.Body.Bytes()
}

// TestShardedEquivalence is the tier's core contract: across the six
// corpus seeds of the equivalence matrix, every filtered query and
// point lookup answered by the sharded scatter-gather server is
// byte-identical to the single-process server's response, at 1, 4 and
// 16 shards. Caching is disabled so every request exercises the full
// query path.
func TestShardedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic disclosure dates so the date-range filters bite.
		for i, e := range gt.DB.Errata() {
			e.Disclosed = time.Date(2008+i%10, time.Month(1+i%12), 1+i%28, 0, 0, 0, 0, time.UTC)
		}
		single := newDBServer(gt.DB, Options{CacheSize: -1}).Handler()
		sharded := map[string]http.Handler{}
		for _, n := range []int{1, 4, 16} {
			sharded[strconv.Itoa(n)] = newDBServer(gt.DB, Options{CacheSize: -1, Shards: n}).Handler()
		}

		for _, q := range serveFilterMatrix {
			url := "/v1/errata"
			if q != "" {
				url += "?" + q
			}
			wantCode, want := get(t, single, url)
			for n, h := range sharded {
				gotCode, got := get(t, h, url)
				if gotCode != wantCode || !bytes.Equal(got, want) {
					t.Fatalf("seed %d shards=%s %s: %d %q != single %d %q",
						seed, n, url, gotCode, truncate(got), wantCode, truncate(want))
				}
			}
		}

		// Point lookups: a sample of keys covering every shard of the
		// 16-way partition, plus a missing key.
		keys := map[int]string{}
		for _, e := range gt.DB.Errata() {
			if e.Key == "" {
				continue
			}
			o := shard.Owner(e.Key, 16)
			if _, ok := keys[o]; !ok {
				keys[o] = e.Key
			}
		}
		if len(keys) != 16 {
			t.Fatalf("seed %d: keys cover %d/16 shards", seed, len(keys))
		}
		lookups := []string{"/v1/errata/no-such-key"}
		for _, key := range keys {
			lookups = append(lookups, "/v1/errata/"+key)
		}
		for _, url := range lookups {
			wantCode, want := get(t, single, url)
			for n, h := range sharded {
				gotCode, got := get(t, h, url)
				if gotCode != wantCode || !bytes.Equal(got, want) {
					t.Fatalf("seed %d shards=%s %s: %d != single %d", seed, n, url, gotCode, wantCode)
				}
			}
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 120 {
		return b[:120]
	}
	return b
}

// TestShardedEdgeCases pins the scatter-gather edge cases end to end on
// a 4-shard server: pagination past the global total, an empty page
// with the true total, queries where some or all shards contribute
// nothing, point lookup of a key owned by the last shard, and the
// tier-level health counts.
func TestShardedEdgeCases(t *testing.T) {
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	stats := gt.DB.ComputeStats()
	s := newDBServer(gt.DB, Options{Shards: 4})
	h := s.Handler()

	var health struct {
		Errata int `json:"errata"`
		Unique int `json:"unique"`
	}
	if code := decode(t, h, "/healthz", &health); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if health.Errata != stats.Total || health.Unique != stats.Unique {
		t.Fatalf("sharded healthz %+v, want %d/%d", health, stats.Total, stats.Unique)
	}

	var past errataResp
	decode(t, h, "/v1/errata?offset=999999", &past)
	if past.Count != 0 || past.Total != stats.Unique || past.Offset != 999999 {
		t.Fatalf("past-the-end page = %+v, want 0 rows with total %d", past, stats.Unique)
	}

	var zero errataResp
	decode(t, h, "/v1/errata?limit=0", &zero)
	if zero.Count != 0 || len(zero.Errata) != 0 || zero.Total != stats.Unique {
		t.Fatalf("limit=0 page = %+v, want empty page with total %d", zero, stats.Unique)
	}

	// Unknown category: every shard returns zero matches.
	var none errataResp
	decode(t, h, "/v1/errata?category=Trg_XXX_xxx", &none)
	if none.Total != 0 || none.Count != 0 {
		t.Fatalf("zero-match query = %+v", none)
	}

	// A key owned by the last shard answers identically to a dedicated
	// single-process server.
	var lastKey string
	for _, e := range gt.DB.Errata() {
		if e.Key != "" && shard.Owner(e.Key, 4) == 3 {
			lastKey = e.Key
			break
		}
	}
	if lastKey == "" {
		t.Fatal("no key owned by the last shard")
	}
	single := newDBServer(gt.DB, Options{CacheSize: -1}).Handler()
	wantCode, want := get(t, single, "/v1/errata/"+lastKey)
	gotCode, got := get(t, h, "/v1/errata/"+lastKey)
	if gotCode != wantCode || !bytes.Equal(got, want) {
		t.Fatalf("last-shard key lookup: %d %q != %d %q", gotCode, truncate(got), wantCode, truncate(want))
	}

	// Fan-out instrumentation: every shard observed the errata queries,
	// and each query merged exactly once.
	if v := s.merges.Value(); v == 0 {
		t.Fatal("no merges recorded")
	}
	for i, lat := range s.shardLat {
		if snap := lat.Snapshot(); snap.Count == 0 {
			t.Errorf("shard %d recorded no fan-out latency observations", i)
		}
	}
}

// decode issues one request through the handler chain and decodes JSON.
func decode(t *testing.T, h http.Handler, url string, into any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, rec.Body.Bytes())
		}
	}
	return rec.Code
}

// TestShardedSwapUnderLoad combines concurrent sharded scatter-gather
// queries and point lookups with snapshot reloads, under -race: every
// response must be internally consistent with the generation it
// reports, across whole-cluster swaps.
func TestShardedSwapUnderLoad(t *testing.T) {
	dbA, dbB := swapTestDBs(t)
	statsA, statsB := dbA.ComputeStats(), dbB.ComputeStats()

	// A key present in both databases, for point-lookup traffic.
	var key string
	for _, e := range dbB.Errata() {
		if e.Key != "" {
			key = e.Key
			break
		}
	}
	if key == "" {
		t.Fatal("no dedup key in the test database")
	}

	s := newDBServer(dbA, Options{CacheSize: 64, Shards: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	expect := func(gen uint64) int {
		if gen%2 == 1 {
			return statsA.Unique
		}
		return statsB.Unique
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					// Identical filter key every iteration: cache
					// torture across cluster swaps.
					var body struct {
						Total      int    `json:"total"`
						Generation uint64 `json:"generation"`
					}
					if !getInto(t, client, ts.URL+"/v1/errata?limit=1", &body) {
						return
					}
					if want := expect(body.Generation); body.Total != want {
						t.Errorf("sharded errata: generation %d total %d, want %d",
							body.Generation, body.Total, want)
						return
					}
				case 1:
					var body struct {
						Total      int    `json:"total"`
						Count      int    `json:"count"`
						Generation uint64 `json:"generation"`
					}
					if !getInto(t, client, ts.URL+"/v1/errata?vendor=Intel&limit=5&offset=2", &body) {
						return
					}
					if body.Count > 5 || body.Total > expect(body.Generation) {
						t.Errorf("sharded page: %+v inconsistent", body)
						return
					}
				case 2:
					// Point lookup routed to the owning shard; the key
					// exists in both generations.
					resp, err := client.Get(ts.URL + "/v1/errata/" + key)
					if err != nil {
						t.Errorf("point lookup: %v", err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("point lookup = %d", resp.StatusCode)
						return
					}
				}
			}
		}(i)
	}

	lastGen := uint64(1)
	for i := 0; i < 12; i++ {
		db := dbB
		if i%2 == 1 {
			db = dbA
		}
		gen := s.Swap(db)
		if gen != lastGen+1 {
			t.Fatalf("swap %d installed generation %d, want %d", i, gen, lastGen+1)
		}
		lastGen = gen
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	var final struct {
		Total      int    `json:"total"`
		Generation uint64 `json:"generation"`
	}
	if !getInto(t, client, ts.URL+"/v1/errata?limit=1", &final) {
		t.Fatal("final query failed")
	}
	if final.Generation != lastGen || final.Total != expect(lastGen) {
		t.Fatalf("final response %+v, want generation %d with total %d",
			final, lastGen, expect(lastGen))
	}
}
