package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/corpus"
	"repro/internal/store"
)

// benchWriter is a no-op ResponseWriter with a preallocated header, so
// the benchmarks measure the handler, not the recorder.
type benchWriter struct {
	header http.Header
	n      int
}

func (w *benchWriter) Header() http.Header         { return w.header }
func (w *benchWriter) WriteHeader(int)             {}
func (w *benchWriter) Write(b []byte) (int, error) { w.n += len(b); return len(b), nil }

func benchV2Server(b *testing.B, shards int) (*Server, string) {
	b.Helper()
	gt, err := corpus.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := store.EncodeV2(gt.DB, store.V2Options{Postings: true, Fragments: true})
	if err != nil {
		b.Fatal(err)
	}
	sv, err := store.OpenV2(enc)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(WithStore(sv), Options{CacheSize: -1, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	db, err := sv.Database()
	if err != nil {
		b.Fatal(err)
	}
	return srv, db.Unique()[0].Key
}

// BenchmarkServeErratumByKey measures the /v1/errata/{key} handler
// body. The stitched variant is the v2 fragment path (the acceptance
// gate: at most 2 allocs/op); the marshal variant is the encoding/json
// fallback on the same corpus, for the before/after delta.
func BenchmarkServeErratumByKey(b *testing.B) {
	run := func(b *testing.B, srv *Server, key string) {
		b.Helper()
		req := httptest.NewRequest("GET", "/v1/errata/"+key, nil)
		req.SetPathValue("key", key)
		w := &benchWriter{header: make(http.Header, 4)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.handleErratum(w, req)
		}
	}
	b.Run("stitched", func(b *testing.B) {
		srv, key := benchV2Server(b, 0)
		run(b, srv, key)
	})
	b.Run("stitched-sharded", func(b *testing.B) {
		srv, key := benchV2Server(b, 4)
		run(b, srv, key)
	})
	b.Run("marshal", func(b *testing.B) {
		srv, key := benchV2Server(b, 0)
		snap := *srv.snap.Load()
		snap.frags = nil
		srv.snap.Store(&snap)
		run(b, srv, key)
	})
}

// BenchmarkServeErrataPage measures the /v1/errata page handler with
// the cache disabled: stitched summary fragments vs the marshal
// fallback.
func BenchmarkServeErrataPage(b *testing.B) {
	run := func(b *testing.B, srv *Server) {
		b.Helper()
		req := httptest.NewRequest("GET", "/v1/errata?limit=25", nil)
		w := &benchWriter{header: make(http.Header, 4)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.handleErrata(w, req)
		}
	}
	b.Run("stitched", func(b *testing.B) {
		srv, _ := benchV2Server(b, 0)
		run(b, srv)
	})
	b.Run("marshal", func(b *testing.B) {
		srv, _ := benchV2Server(b, 0)
		snap := *srv.snap.Load()
		snap.frags = nil
		srv.snap.Store(&snap)
		run(b, srv)
	})
}
