package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ingest"
	"repro/internal/specdoc"
)

// ingestTexts renders one corpus seed into document texts in
// deterministic order.
func ingestTexts(t testing.TB, seed int64) []string {
	t.Helper()
	gt, err := corpus.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	rendered := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	keys := make([]string, 0, len(rendered))
	for k := range rendered {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	texts := make([]string, 0, len(keys))
	for _, k := range keys {
		texts = append(texts, rendered[k])
	}
	return texts
}

// ingestingServer wires an Ingester to a Server the way errserve does:
// one mutex serializes each Apply with its SwapDelta so snapshots
// install in application order.
func ingestingServer(initial *core.Database, shards int) (*Server, *ingest.Ingester) {
	ing := ingest.NewFrom(initial, ingest.Options{Parallelism: 1})
	var mu sync.Mutex
	var srv *Server
	srv = newDBServer(initial, Options{CacheSize: -1, Shards: shards, Ingest: func(_ context.Context, text string) (IngestSummary, error) {
		mu.Lock()
		defer mu.Unlock()
		res, err := ing.Apply([]string{text})
		if err != nil {
			return IngestSummary{}, err
		}
		sum := IngestSummary{Documents: res.Docs, Errata: res.Errata, Skipped: res.Skipped}
		if res.Changed {
			sum.Generation = srv.SwapDelta(res.DB)
		} else {
			sum.Generation = srv.Generation()
		}
		return sum, nil
	}})
	return srv, ing
}

// postIngest pushes one document through POST /v1/admin/ingest.
func postIngest(t *testing.T, srv *Server, text string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/admin/ingest", strings.NewReader(text))
	srv.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// stripGen removes the generation field from a JSON body so responses
// from servers at different generations can be compared for content.
func stripGen(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %q: %v", truncate(body), err)
	}
	delete(m, "generation")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestIngestEndpointNotConfigured pins the 501 contract.
func TestIngestEndpointNotConfigured(t *testing.T) {
	db := core.NewDatabase()
	srv := newDBServer(db, Options{})
	code, body := postIngest(t, srv, "anything")
	if code != 501 {
		t.Fatalf("POST /v1/admin/ingest without Ingest: %d %s, want 501", code, truncate(body))
	}
}

// TestIngestEndpointRejectsBadDocument pins the 400 contract: an
// unparseable body leaves the served snapshot untouched.
func TestIngestEndpointRejectsBadDocument(t *testing.T) {
	srv, _ := ingestingServer(core.NewDatabase(), 0)
	gen := srv.Generation()
	code, body := postIngest(t, srv, "not a specification update\n")
	if code != 400 {
		t.Fatalf("bad document: %d %s, want 400", code, truncate(body))
	}
	if srv.Generation() != gen {
		t.Fatalf("bad document advanced the generation")
	}
}

// TestIngestEndpointEquivalence is the serving half of the convergence
// contract: a server fed document-by-document through POST
// /v1/admin/ingest (delta merges, repartitions, generation bumps all
// the way) answers every matrix query identically to a server cold-built
// over the union corpus — in single-index mode and at 1, 4 and 16
// shards.
func TestIngestEndpointEquivalence(t *testing.T) {
	texts := ingestTexts(t, 1)
	unionDB, _, err := ingest.Build(nil, texts, ingest.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 4, 16} {
		cold := newDBServer(unionDB, Options{CacheSize: -1, Shards: shards})
		srv, _ := ingestingServer(core.NewDatabase(), shards)
		for i, text := range texts {
			code, body := postIngest(t, srv, text)
			if code != 200 {
				t.Fatalf("shards=%d: ingest %d: %d %s", shards, i, code, truncate(body))
			}
			var sum struct {
				Status string `json:"status"`
				IngestSummary
			}
			if err := json.Unmarshal(body, &sum); err != nil {
				t.Fatalf("shards=%d: ingest %d: %v", shards, i, err)
			}
			if sum.Status != "ok" || sum.Documents != 1 || sum.Generation != uint64(i+2) {
				t.Fatalf("shards=%d: ingest %d: %+v, want ok/1 docs/gen %d", shards, i, sum, i+2)
			}
		}
		// Re-ingesting the first document is an idempotent no-op.
		gen := srv.Generation()
		code, body := postIngest(t, srv, texts[0])
		var sum struct {
			IngestSummary
		}
		if code != 200 || json.Unmarshal(body, &sum) != nil || sum.Skipped != 1 || sum.Generation != gen {
			t.Fatalf("shards=%d: re-ingest: %d %s", shards, code, truncate(body))
		}

		coldH, gotH := cold.Handler(), srv.Handler()
		queries := []string{
			"/v1/errata",
			"/v1/errata?unique=false&limit=1000",
			"/v1/errata?vendor=Intel",
			"/v1/errata?vendor=AMD&unique=false",
			"/v1/errata?min_triggers=1&limit=7&offset=3",
			"/v1/stats",
		}
		// Point lookups for a sample of keys from the union database.
		n := 0
		for _, e := range unionDB.Errata() {
			if e.Key != "" && n < 8 {
				queries = append(queries, "/v1/errata/"+e.Key)
				n++
			}
		}
		for _, url := range queries {
			wantCode, want := get(t, coldH, url)
			gotCode, got := get(t, gotH, url)
			if gotCode != wantCode || stripGen(t, got) != stripGen(t, want) {
				t.Fatalf("shards=%d %s: ingested %d %s != cold %d %s",
					shards, url, gotCode, truncate(got), wantCode, truncate(want))
			}
		}
	}
}

// TestIngestUnderSwapLoad is the soak of the streaming-ingest tier: a
// writer streams documents through the ingest path (Apply + SwapDelta
// on a 4-shard cluster) while reader goroutines hammer queries and
// point lookups across the swaps. Run under -race in CI. Readers assert
// generation consistency two ways: a response pair observed at one
// generation must agree on the entry count, and any generation's count
// must match what the writer recorded when installing it.
func TestIngestUnderSwapLoad(t *testing.T) {
	texts := ingestTexts(t, 3)
	half := len(texts) / 2
	initial, _, err := ingest.Build(nil, texts[:half], ingest.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	ing := ingest.NewFrom(initial, ingest.Options{Parallelism: 2})
	srv := newDBServer(initial, Options{CacheSize: 64, Shards: 4})
	// entriesAt records gen -> total entry count, written by the writer.
	// A reader can observe a generation before the writer records it
	// (the snapshot pointer flips inside SwapDelta, the record happens
	// after it returns), so lookups tolerate a miss — but a present
	// entry must match exactly.
	var entriesAt sync.Map
	entriesAt.Store(srv.Generation(), len(initial.Errata()))

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: one document per swap
		defer wg.Done()
		defer close(done)
		for _, text := range texts[half:] {
			res, err := ing.Apply([]string{text})
			if err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
			gen := srv.SwapDelta(res.DB)
			entriesAt.Store(gen, len(res.DB.Errata()))
		}
	}()

	h := srv.Handler()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			urls := []string{
				"/healthz",
				"/v1/errata?unique=false&limit=1",
				"/v1/errata?vendor=Intel&unique=false&limit=1",
				"/v1/errata?vendor=AMD&unique=false&limit=1",
			}
			for i := 0; ; i++ {
				select {
				case <-done:
					if i > 0 {
						return
					}
				default:
				}
				var hz struct {
					Errata     int    `json:"errata"`
					Generation uint64 `json:"generation"`
				}
				code, body := get(t, h, "/healthz")
				if code != 200 || json.Unmarshal(body, &hz) != nil {
					t.Errorf("healthz: %d %s", code, truncate(body))
					return
				}
				if want, ok := entriesAt.Load(hz.Generation); ok && want.(int) != hz.Errata {
					t.Errorf("gen %d: healthz reports %d entries, writer installed %d",
						hz.Generation, hz.Errata, want.(int))
					return
				}
				var q struct {
					Total      int    `json:"total"`
					Generation uint64 `json:"generation"`
				}
				code, body = get(t, h, urls[1+i%3])
				if code != 200 || json.Unmarshal(body, &q) != nil {
					t.Errorf("query: %d %s", code, truncate(body))
					return
				}
				if q.Generation == hz.Generation && strings.Contains(urls[1+i%3], "unique=false&limit=1") &&
					!strings.Contains(urls[1+i%3], "vendor") && q.Total != hz.Errata {
					t.Errorf("gen %d: query total %d != healthz %d", q.Generation, q.Total, hz.Errata)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// The soak must end converged: the final snapshot equals a cold
	// build over the whole corpus.
	unionDB, _, err := ingest.Build(nil, texts, ingest.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	cold := newDBServer(unionDB, Options{CacheSize: -1, Shards: 4}).Handler()
	for _, url := range []string{"/v1/errata?unique=false&limit=1000", "/v1/stats"} {
		wantCode, want := get(t, cold, url)
		gotCode, got := get(t, h, url)
		if gotCode != wantCode || stripGen(t, got) != stripGen(t, want) {
			t.Fatalf("post-soak %s: %d %s != cold %d %s", url, gotCode, truncate(got), wantCode, truncate(want))
		}
	}
	if got, want := srv.Generation(), uint64(1+len(texts)-half); got != want {
		t.Fatalf("final generation %d, want %d", got, want)
	}
}
