package serve

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/store"
	"repro/pkg/storage"
)

// TestStorageBackendEquivalence extends the cross-format serving
// contract to the pkg/storage backend registry: servers whose database
// arrives through the in-memory backend — as a v1 blob, a v2 blob, or
// a materialized database that was never serialized — answer every /v1
// response byte-identically to servers fed by the v1 and v2 drivers
// directly. Caching is disabled so every request exercises the full
// path.
func TestStorageBackendEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic disclosure dates (set before encoding, so every
		// source carries them) so the date-range filters bite.
		for i, e := range gt.DB.Errata() {
			e.Disclosed = time.Date(2008+i%10, time.Month(1+i%12), 1+i%28, 0, 0, 0, 0, time.UTC)
		}
		v1Bytes, err := store.Encode(gt.DB)
		if err != nil {
			t.Fatal(err)
		}
		v2Bytes, err := store.EncodeV2(gt.DB, store.V2Options{Postings: true, Fragments: true})
		if err != nil {
			t.Fatal(err)
		}

		mem := storage.NewMem()
		mem.Put("corpus.json", v1Bytes)
		mem.Put("corpus.v2", v2Bytes)
		mem.PutDatabase("corpus", gt.DB)

		// The reference server reads the v1 driver's materialization.
		ref, err := storage.OpenBytes("v1", v1Bytes)
		if err != nil {
			t.Fatal(err)
		}
		refDB, err := ref.Database()
		if err != nil {
			t.Fatal(err)
		}
		reference := newDBServer(refDB, Options{CacheSize: -1}).Handler()

		// Candidate servers, one per source route. Readers backed by a
		// serialization are store readers underneath and feed WithStore;
		// the never-serialized mem entry feeds WithDatabase.
		candidates := map[string]http.Handler{}
		addStore := func(name string, r storage.Reader) {
			sr, ok := r.(store.Reader)
			if !ok {
				t.Fatalf("%s: reader %T is not a store.Reader", name, r)
			}
			srv, err := New(WithStore(sr), Options{CacheSize: -1})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			candidates[name] = srv.Handler()
		}
		v2Direct, err := storage.OpenBytes("v2", v2Bytes)
		if err != nil {
			t.Fatal(err)
		}
		addStore("driver-v2", v2Direct)
		memV1, err := mem.Open("corpus.json")
		if err != nil {
			t.Fatal(err)
		}
		addStore("mem-v1", memV1)
		memV2, err := mem.Open("corpus.v2")
		if err != nil {
			t.Fatal(err)
		}
		addStore("mem-v2", memV2)
		memDB, err := mem.Open("corpus")
		if err != nil {
			t.Fatal(err)
		}
		db, err := memDB.Database()
		if err != nil {
			t.Fatal(err)
		}
		candidates["mem-db"] = newDBServer(db, Options{CacheSize: -1}).Handler()

		urls := []string{"/v1/stats", "/v1/errata/no-such-key"}
		for _, q := range serveFilterMatrix {
			u := "/v1/errata"
			if q != "" {
				u += "?" + q
			}
			urls = append(urls, u)
		}
		for _, e := range gt.DB.Unique()[:5] {
			urls = append(urls, "/v1/errata/"+e.Key)
		}

		for _, url := range urls {
			wantCode, want := get(t, reference, url)
			for name, h := range candidates {
				gotCode, got := get(t, h, url)
				if gotCode != wantCode || !bytes.Equal(got, want) {
					t.Fatalf("seed %d %s %s: %d %q != reference %d %q",
						seed, name, url, gotCode, truncate(got), wantCode, truncate(want))
				}
			}
		}
	}
}
