package serve

import (
	"bytes"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/shard"
	"repro/internal/store"
)

// TestFormatEquivalence is the cross-format serving contract: a server
// loaded from a FormatVersion 2 file (zero-decode store, persisted
// postings, precomputed fragments) answers every /v1 response
// byte-identically to a server loaded from the FormatVersion 1 JSON of
// the same corpus — across the six equivalence-matrix seeds and at 0,
// 1, 4 and 16 shards. Caching is disabled so every request exercises
// the full path.
func TestFormatEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		gt, err := corpus.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic disclosure dates (set before encoding, so both
		// formats carry them) so the date-range filters bite.
		for i, e := range gt.DB.Errata() {
			e.Disclosed = time.Date(2008+i%10, time.Month(1+i%12), 1+i%28, 0, 0, 0, 0, time.UTC)
		}
		v1Bytes, err := store.Encode(gt.DB)
		if err != nil {
			t.Fatal(err)
		}
		v2Bytes, err := store.EncodeV2(gt.DB, store.V2Options{Postings: true, Fragments: true})
		if err != nil {
			t.Fatal(err)
		}

		v1Reader, err := store.OpenBytes(v1Bytes)
		if err != nil {
			t.Fatal(err)
		}
		v1DB, err := v1Reader.Database()
		if err != nil {
			t.Fatal(err)
		}
		reference := newDBServer(v1DB, Options{CacheSize: -1}).Handler()

		sv, err := store.OpenV2(v2Bytes)
		if err != nil {
			t.Fatal(err)
		}
		v2Servers := map[string]http.Handler{}
		for _, n := range []int{0, 1, 4, 16} {
			srv, err := New(WithStore(sv), Options{CacheSize: -1, Shards: n})
			if err != nil {
				t.Fatalf("seed %d shards=%d: %v", seed, n, err)
			}
			v2Servers[strconv.Itoa(n)] = srv.Handler()
		}

		urls := []string{"/v1/stats"}
		for _, q := range serveFilterMatrix {
			u := "/v1/errata"
			if q != "" {
				u += "?" + q
			}
			urls = append(urls, u)
		}
		// Point lookups covering every shard of the 16-way partition,
		// plus a missing key.
		keys := map[int]string{}
		for _, e := range gt.DB.Errata() {
			if e.Key == "" {
				continue
			}
			if o := shard.Owner(e.Key, 16); keys[o] == "" {
				keys[o] = e.Key
			}
		}
		urls = append(urls, "/v1/errata/no-such-key")
		for _, key := range keys {
			urls = append(urls, "/v1/errata/"+key)
		}

		for _, url := range urls {
			wantCode, want := get(t, reference, url)
			for n, h := range v2Servers {
				gotCode, got := get(t, h, url)
				if gotCode != wantCode || !bytes.Equal(got, want) {
					t.Fatalf("seed %d shards=%s %s: v2 %d %q != v1 %d %q",
						seed, n, url, gotCode, truncate(got), wantCode, truncate(want))
				}
			}
		}
	}
}

// TestStitchedMatchesMarshal pins the stitched hot path against the
// json.Marshal fallback on the same server: disabling fragments on a
// snapshot must not change a single response byte.
func TestStitchedMatchesMarshal(t *testing.T) {
	gt, err := corpus.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	srv := newDBServer(gt.DB, Options{CacheSize: -1})
	h := srv.Handler()
	if srv.snap.Load().frags == nil {
		t.Fatal("server built without fragments; stitched path untested")
	}

	urls := []string{"/v1/errata", "/v1/errata?vendor=Intel&limit=13&offset=2", "/v1/errata?unique=false"}
	for _, e := range gt.DB.Unique()[:10] {
		urls = append(urls, "/v1/errata/"+e.Key)
	}
	stitched := map[string][]byte{}
	for _, url := range urls {
		code, body := get(t, h, url)
		if code != http.StatusOK {
			t.Fatalf("%s: %d", url, code)
		}
		stitched[url] = body
	}

	// Drop the fragments from the live snapshot: every handler falls
	// back to encoding/json.
	snap := *srv.snap.Load()
	snap.frags = nil
	srv.snap.Store(&snap)

	for _, url := range urls {
		code, body := get(t, h, url)
		if code != http.StatusOK {
			t.Fatalf("fallback %s: %d", url, code)
		}
		if !bytes.Equal(body, stitched[url]) {
			t.Fatalf("%s: stitched %q != marshaled %q", url, truncate(stitched[url]), truncate(body))
		}
	}
}
