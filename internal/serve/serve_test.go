package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
)

// newDBServer is the test-side shorthand for the database-backed
// constructor; New only errors when no source is configured, which a
// non-nil db rules out.
func newDBServer(db *core.Database, opts Options) *Server {
	s, err := New(WithDatabase(db), opts)
	if err != nil {
		panic(err)
	}
	return s
}

// testServer builds a server over the synthetic corpus (seed 1).
func testServer(t testing.TB, opts Options) *Server {
	t.Helper()
	gt, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	return newDBServer(gt.DB, opts)
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

type errataResp struct {
	Total  int  `json:"total"`
	Offset int  `json:"offset"`
	Count  int  `json:"count"`
	Unique bool `json:"unique"`
	Errata []struct {
		FullID string `json:"full_id"`
		Key    string `json:"key"`
		Vendor string `json:"vendor"`
	} `json:"errata"`
}

func TestEndpoints(t *testing.T) {
	s := testServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var health struct {
		Status string `json:"status"`
		Errata int    `json:"errata"`
		Unique int    `json:"unique"`
	}
	if code := getJSON(t, c, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if health.Status != "ok" || health.Errata == 0 || health.Unique == 0 {
		t.Fatalf("/healthz = %+v", health)
	}

	var stats struct {
		Errata     int `json:"errata"`
		Unique     int `json:"unique"`
		Documents  int `json:"documents"`
		Categories int `json:"categories"`
	}
	if code := getJSON(t, c, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	if stats.Errata != health.Errata || stats.Unique != health.Unique {
		t.Fatalf("/stats %+v disagrees with /healthz %+v", stats, health)
	}
	if stats.Documents == 0 || stats.Categories == 0 {
		t.Fatalf("/stats = %+v", stats)
	}

	// Unfiltered query, default pagination.
	var all errataResp
	getJSON(t, c, ts.URL+"/errata", &all)
	if all.Total != health.Unique || !all.Unique {
		t.Fatalf("unfiltered total = %d unique=%v, want %d/true", all.Total, all.Unique, health.Unique)
	}
	if all.Count != 100 || len(all.Errata) != 100 {
		t.Fatalf("default page count = %d/%d, want 100", all.Count, len(all.Errata))
	}

	// unique=false surfaces every occurrence.
	var dup errataResp
	getJSON(t, c, ts.URL+"/errata?unique=false", &dup)
	if dup.Total != health.Errata || dup.Unique {
		t.Fatalf("unique=false total = %d, want %d", dup.Total, health.Errata)
	}

	// Vendor filter: results all carry the vendor, and Intel+AMD
	// partition the corpus.
	var intel, amd errataResp
	getJSON(t, c, ts.URL+"/errata?vendor=Intel&limit=1000", &intel)
	getJSON(t, c, ts.URL+"/errata?vendor=AMD&limit=1000", &amd)
	if intel.Total+amd.Total != all.Total {
		t.Fatalf("Intel %d + AMD %d != %d", intel.Total, amd.Total, all.Total)
	}
	for _, e := range intel.Errata {
		if e.Vendor != "Intel" {
			t.Fatalf("Intel query returned %q vendor %q", e.FullID, e.Vendor)
		}
	}

	// Pagination walks without overlap.
	var p1, p2 errataResp
	getJSON(t, c, ts.URL+"/errata?limit=5&offset=0", &p1)
	getJSON(t, c, ts.URL+"/errata?limit=5&offset=5", &p2)
	if len(p1.Errata) != 5 || len(p2.Errata) != 5 || p1.Errata[0].FullID == p2.Errata[0].FullID {
		t.Fatalf("pagination broken: %+v / %+v", p1.Errata[0], p2.Errata[0])
	}
	var tail errataResp
	getJSON(t, c, ts.URL+"/errata?offset=999999", &tail)
	if tail.Count != 0 {
		t.Fatalf("past-the-end offset returned %d rows", tail.Count)
	}

	// Detail endpoint round-trip via a key from the listing.
	key := all.Errata[0].Key
	var detail struct {
		Key         string `json:"key"`
		Occurrences int    `json:"occurrences"`
		Entries     []struct {
			FullID string `json:"full_id"`
			Title  string `json:"title"`
		} `json:"entries"`
	}
	if code := getJSON(t, c, ts.URL+"/errata/"+key, &detail); code != 200 {
		t.Fatalf("/errata/%s = %d", key, code)
	}
	if detail.Key != key || detail.Occurrences != len(detail.Entries) || len(detail.Entries) == 0 {
		t.Fatalf("detail = %+v", detail)
	}
	if code := getJSON(t, c, ts.URL+"/errata/no-such-key", nil); code != 404 {
		t.Fatalf("missing key = %d, want 404", code)
	}

	// Bad requests are 400s, not empty 200s.
	for _, q := range []string{
		"?nope=1", "?vendor=VIA", "?min_triggers=many", "?limit=-1",
		"?offset=x", "?unique=maybe", "?disclosed_from=yesterday",
		"?workaround=magic", "?fix=eventually", "?complex=perhaps",
	} {
		if code := getJSON(t, c, ts.URL+"/errata"+q, nil); code != 400 {
			t.Errorf("/errata%s = %d, want 400", q, code)
		}
	}

	// Compound filter agrees with the direct index query.
	var hangs errataResp
	getJSON(t, c, ts.URL+"/errata?vendor=Intel&category=Eff_HNG_hng&limit=1000", &hangs)
	want := s.snap.Load().ix.Query().Vendor(core.Intel).WithCategory("Eff_HNG_hng").Count()
	if hangs.Total != want {
		t.Fatalf("compound filter total = %d, want %d", hangs.Total, want)
	}
}

// TestCacheCanonicalization proves that parameter order and repeated
// equal values do not fragment the cache: the same logical query always
// lands on one entry.
func TestCacheCanonicalization(t *testing.T) {
	s := testServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	variants := []string{
		"/errata?vendor=Intel&category=Eff_HNG_hng&category=Trg_POW_pwc",
		"/errata?category=Trg_POW_pwc&category=Eff_HNG_hng&vendor=Intel",
	}
	var bodies []errataResp
	for _, v := range variants {
		var r errataResp
		getJSON(t, c, ts.URL+v, &r)
		bodies = append(bodies, r)
	}
	if bodies[0].Total != bodies[1].Total {
		t.Fatalf("reordered params changed results: %d vs %d", bodies[0].Total, bodies[1].Total)
	}
	m := s.Metrics()
	if m.Cache.Misses != 1 || m.Cache.Hits != 1 {
		t.Fatalf("cache hits=%d misses=%d, want 1/1 (canonical key collapse)", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Cache.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", m.Cache.Entries)
	}
}

// TestConcurrentClients is the -race acceptance test: 100 goroutines
// mixing /errata queries, /stats and /metrics against one server, then
// a consistency check that the cache and endpoint counters add up to
// exactly the traffic issued.
func TestConcurrentClients(t *testing.T) {
	s := testServer(t, Options{CacheSize: 8, RequestTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	queries := []string{
		"/errata",
		"/errata?vendor=Intel",
		"/errata?vendor=AMD",
		"/errata?category=Eff_HNG_hng",
		"/errata?vendor=Intel&class=Trg_POW",
		"/errata?min_triggers=2&limit=10",
		"/errata?unique=false&limit=1000",
		"/errata?sim_only=true",
		"/errata?trigger=Trg_POW_pwc&trigger=Trg_MOP_fen",
		"/errata?any_category=Eff_HNG_hng,Eff_HNG_crh",
		"/errata?title=the",
		"/errata?msr=MCx_STATUS",
	}

	const goroutines = 100
	const perGoroutine = 20
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				var url string
				var wantTotal bool
				switch {
				case i%5 == 3:
					url = "/stats"
				case i%7 == 6:
					url = "/metrics"
				default:
					url = queries[(g+i)%len(queries)]
					wantTotal = true
				}
				resp, err := c.Get(ts.URL + url)
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("%s = %d: %s", url, resp.StatusCode, body)
					return
				}
				if wantTotal {
					var r errataResp
					if err := json.Unmarshal(body, &r); err != nil {
						errCh <- fmt.Errorf("%s: %v", url, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Counter consistency: every /errata request performs exactly one
	// cache lookup, so hits+misses must equal the errata request count,
	// and the per-endpoint counters must account for all traffic.
	m := s.Metrics()
	var issued, errataReqs, statsReqs, metricsReqs int64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perGoroutine; i++ {
			issued++
			switch {
			case i%5 == 3:
				statsReqs++
			case i%7 == 6:
				metricsReqs++
			default:
				errataReqs++
			}
		}
	}
	if got := m.Endpoints["errata"].Requests; got != errataReqs {
		t.Errorf("errata requests = %d, want %d", got, errataReqs)
	}
	if got := m.Endpoints["stats"].Requests; got != statsReqs {
		t.Errorf("stats requests = %d, want %d", got, statsReqs)
	}
	if got := m.Endpoints["metrics"].Requests; got != metricsReqs {
		t.Errorf("metrics requests = %d, want %d", got, metricsReqs)
	}
	if total := m.Cache.Hits + m.Cache.Misses; total != errataReqs {
		t.Errorf("cache hits(%d)+misses(%d) = %d, want %d (one lookup per /errata)",
			m.Cache.Hits, m.Cache.Misses, total, errataReqs)
	}
	if m.Cache.Hits == 0 {
		t.Error("no cache hits under repeated identical queries")
	}
	if m.Cache.Entries > 8 {
		t.Errorf("cache entries = %d, exceeds capacity 8", m.Cache.Entries)
	}
	// 12 distinct queries through an 8-entry cache must evict.
	if m.Cache.Evictions == 0 {
		t.Error("no evictions with more distinct queries than capacity")
	}
	for name, ep := range m.Endpoints {
		if ep.Errors != 0 {
			t.Errorf("%s errors = %d, want 0", name, ep.Errors)
		}
		if ep.Requests > 0 && ep.LatencyNS <= 0 {
			t.Errorf("%s latency = %d with %d requests", name, ep.LatencyNS, ep.Requests)
		}
	}
}

func newTestCache(max int) *lruCache {
	reg := obs.NewRegistry()
	return newLRUCache(max,
		reg.Counter("test_cache_hits_total", ""),
		reg.Counter("test_cache_misses_total", ""),
		reg.Counter("test_cache_evictions_total", ""))
}

func TestLRUCache(t *testing.T) {
	c := newTestCache(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if v, ok := c.get("a"); !ok || string(v) != "1" {
		t.Fatalf("get(a) = %q %v", v, ok)
	}
	// "b" is now LRU; inserting "c" evicts it.
	c.put("c", []byte("3"))
	if _, ok := c.get("b"); ok {
		t.Fatal("evicted entry still present")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	// Updating in place must not grow the cache.
	c.put("a", []byte("1x"))
	if v, _ := c.get("a"); string(v) != "1x" {
		t.Fatalf("update in place failed: %q", v)
	}
	hits, misses, evictions, entries := c.stats()
	if hits != 3 || misses != 2 || evictions != 1 || entries != 2 {
		t.Fatalf("stats = %d/%d/%d/%d, want 3/2/1/2", hits, misses, evictions, entries)
	}

	// Disabled cache never stores.
	off := newTestCache(-1)
	off.put("a", []byte("1"))
	if _, ok := off.get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestServeShutdown exercises the graceful shutdown path end to end on
// a real listener.
func TestServeShutdown(t *testing.T) {
	s := testServer(t, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, addr) }()

	// Wait for the server to come up, then probe it.
	var up bool
	for i := 0; i < 50; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == 200
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !up {
		t.Fatal("server never became healthy")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
