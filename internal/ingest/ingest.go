// Package ingest turns the one-shot build pipeline into a continuous
// document feed: new or revised specification-update documents are
// parsed, deduplicated against the live database, auto-classified, and
// merged into the inverted index as deltas — never by rebuilding from
// scratch.
//
// # Convergence contract
//
// Ingestion is anchored on one invariant, enforced by the property and
// fuzz battery in this package: after any sequence of ingests — any
// arrival order, any batch split, any worker count — the resulting
// database is byte-identical (store.Encode) to a cold Build over the
// union document set, and the incrementally merged index is structurally
// identical to a full index.Build over it. Every global quantity is
// therefore computed as a pure function of the union state rather than
// of the arrival history:
//
//   - Per-document work (parse, classification, disclosure inference) is
//     a function of the document text alone, and is memoized in the
//     content-addressed artifact cache keyed by the text's sha256.
//   - Chronological Order indices are recomputed from the union exactly
//     as core.AssignOrders would assign them.
//   - Dedup keys: AMD entries key by shared ID ("A-<ID>"); Intel entries
//     join the cluster of any initial-database entry with the same
//     normalized title (frozen keys — the live database's oracle-reviewed
//     clusters are never re-split), and remaining entries cluster by
//     exact normalized title with labels numbered from the union's
//     (minOrder, minSeq) cluster ordering, continuing the initial
//     database's "I-%04d" sequence. Relabels caused by later arrivals
//     are applied to clones, never in place.
//
// # Snapshot discipline
//
// Every Apply publishes a fresh *core.Database that shares all unchanged
// documents and entries with the previous snapshot by pointer and clones
// anything it must touch (a document whose Order shifted, an entry whose
// cluster key was renumbered). Old snapshots — including ones currently
// being served — are never mutated, which is exactly the sharing
// contract index.MergeDelta and shard.Repartition verify against.
package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/specdoc"
	"repro/internal/store"
	"repro/internal/taxonomy"
	"repro/internal/textsim"
	"repro/internal/timeline"
	"repro/pkg/domain"
)

// docArtifactVersion versions the cached per-document artifact (parsed
// document + auto-classification). Bump it when the parser, the
// classifier rules, or the artifact encoding change semantics.
const docArtifactVersion = "ingest-doc@v1"

// Options configures an Ingester.
type Options struct {
	// Cache, when non-nil, memoizes the per-document parse+classify
	// artifact content-addressed by the document text's sha256 —
	// typically the same pipeline.DiskCache directory the build uses, so
	// re-ingesting a document (or replaying a spool after a restart)
	// skips the expensive per-document work.
	Cache pipeline.Cache
	// Parallelism bounds the per-batch parse+classify worker pool
	// (0 = GOMAXPROCS, 1 = sequential). The result is byte-identical at
	// every worker count.
	Parallelism int
	// Observability receives the ingest instruments; nil selects a
	// private registry.
	Observability *obs.Registry
}

// Result summarizes one Apply batch.
type Result struct {
	// DB and Index are the new immutable snapshot. When Changed is
	// false the batch was a no-op (every document unchanged) and they
	// are the previous snapshot.
	DB      *core.Database
	Index   *index.Index
	Changed bool

	// Docs counts documents applied from this batch (Replaced of them
	// replacing an existing document key), Errata their entries.
	// Skipped counts documents whose text digest matched the live
	// database and were dropped as idempotent re-ingests.
	Docs     int
	Replaced int
	Skipped  int
	Errata   int
	// Relabeled counts pre-existing entries cloned because the union
	// dedup renumbered their cluster key; Reordered counts pre-existing
	// documents cloned because an insertion shifted their Order.
	Relabeled int
	Reordered int

	// MergeDuration is the time spent in the delta index merge.
	MergeDuration time.Duration
	// Diags carries the parse diagnostics of the batch's documents.
	Diags []specdoc.Diagnostic
}

// Ingester maintains a live database snapshot fed by Apply batches.
// All methods are safe for concurrent use; Apply batches are serialized
// internally.
type Ingester struct {
	mu     sync.Mutex
	opts   Options
	scheme domain.Scheme
	engine *classify.Engine

	// frozenKey maps normalized Intel titles of the initial database to
	// their cluster keys: the live clusters newly arriving entries join.
	// nextLabel is the first free "I-%04d" label after the initial ones.
	frozenKey map[string]string
	nextLabel int

	docs    map[string]*core.Document // current union, published objects
	digests map[string]string         // doc key -> source text sha256 ("" for initial docs)
	db      *core.Database
	ix      *index.Index

	docsTotal   *obs.Counter
	errataTotal *obs.Counter
	batches     *obs.Counter
	skipped     *obs.Counter
	errorsTotal *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	mergeLat    *obs.Histogram
	applyLat    *obs.Histogram
}

// New returns an Ingester over an empty database.
func New(opts Options) *Ingester { return NewFrom(nil, opts) }

// NewFrom returns an Ingester seeded with an existing database (for
// example the one errserve built or loaded at startup). The initial
// documents are taken as-is — annotations, disclosure dates and cluster
// keys included — and their Intel clusters are frozen: arriving entries
// with a matching normalized title join them instead of forming new
// clusters. The caller must not mutate initial afterwards.
func NewFrom(initial *core.Database, opts Options) *Ingester {
	reg := opts.Observability
	if reg == nil {
		reg = obs.NewRegistry()
	}
	in := &Ingester{
		opts:      opts,
		scheme:    taxonomy.Base(),
		frozenKey: make(map[string]string),
		docs:      make(map[string]*core.Document),
		digests:   make(map[string]string),
	}
	in.engine = classify.NewEngineConfig(classify.Config{Prefilter: true, Memo: true, Obs: reg})
	if initial != nil {
		if initial.Scheme != nil {
			in.scheme = initial.Scheme
		}
		for k, d := range initial.Docs {
			in.docs[k] = d
			in.digests[k] = ""
		}
		// First occurrence in database order wins, so a (contract-
		// violating) initial database with conflicting keys for one
		// normalized title still freezes deterministically.
		for _, e := range initial.VendorErrata(core.Intel) {
			if e.Key == "" {
				continue
			}
			n := textsim.Normalize(e.Title)
			if _, ok := in.frozenKey[n]; !ok {
				in.frozenKey[n] = e.Key
			}
			if l, ok := parseIntelLabel(e.Key); ok && l > in.nextLabel-1 {
				in.nextLabel = l
			}
		}
	}
	in.nextLabel++
	in.db = &core.Database{Docs: copyDocs(in.docs), Scheme: in.scheme}
	in.ix = index.Build(in.db)

	in.docsTotal = reg.Counter("rememberr_ingest_documents_total",
		"Documents ingested (new or revised; idempotent re-ingests excluded).")
	in.errataTotal = reg.Counter("rememberr_ingest_errata_total",
		"Errata entries carried by ingested documents.")
	in.batches = reg.Counter("rememberr_ingest_batches_total",
		"Ingest batches applied (including no-op batches).")
	in.skipped = reg.Counter("rememberr_ingest_skipped_total",
		"Documents skipped as unchanged re-ingests.")
	in.errorsTotal = reg.Counter("rememberr_ingest_errors_total",
		"Ingest batches rejected (parse failures leave the snapshot untouched).")
	in.cacheHits = reg.Counter("rememberr_ingest_cache_hits_total",
		"Per-document artifact cache hits.")
	in.cacheMisses = reg.Counter("rememberr_ingest_cache_misses_total",
		"Per-document artifact cache misses.")
	in.mergeLat = reg.Histogram("rememberr_ingest_merge_duration_seconds",
		"Delta index merge latency per ingest batch.", obs.LatencyBuckets)
	in.applyLat = reg.Histogram("rememberr_ingest_apply_duration_seconds",
		"End-to-end Apply latency per ingest batch.", obs.LatencyBuckets)
	return in
}

// Snapshot returns the current database and its incrementally merged
// index. Both are immutable.
func (in *Ingester) Snapshot() (*core.Database, *index.Index) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.db, in.ix
}

// Build is the cold baseline of the convergence contract: it runs the
// whole ingest pipeline over the union of initial and texts in one
// batch and builds the index from scratch with index.Build. Every
// incremental ingest sequence over the same union must produce a
// byte-identical database and a structurally identical index.
func Build(initial *core.Database, texts []string, opts Options) (*core.Database, *index.Index, error) {
	in := NewFrom(initial, opts)
	res, err := in.Apply(texts)
	if err != nil {
		return nil, nil, err
	}
	return res.DB, index.Build(res.DB), nil
}

// Apply ingests a batch of specification-update document texts and
// publishes a new snapshot. The batch is atomic: any parse failure
// rejects the whole batch and leaves the snapshot untouched. Within a
// batch the last text for a document key wins; a text whose sha256
// matches the live document is skipped as an idempotent re-ingest.
func (in *Ingester) Apply(texts []string) (*Result, error) {
	start := time.Now()
	in.mu.Lock()
	defer in.mu.Unlock()
	in.batches.Inc()

	parsed, err := in.parseBatch(texts)
	if err != nil {
		in.errorsTotal.Inc()
		return nil, err
	}

	res := &Result{}
	batch := make(map[string]*parsedDoc, len(parsed))
	for _, p := range parsed { // last occurrence of a key wins
		res.Diags = append(res.Diags, p.diags...)
		batch[p.doc.Key] = p
	}
	for key, p := range batch {
		if prev, ok := in.digests[key]; ok && prev != "" && prev == p.digest {
			delete(batch, key)
			res.Skipped++
		}
	}
	in.skipped.Add(int64(res.Skipped))
	if len(batch) == 0 {
		res.DB, res.Index = in.db, in.ix
		in.applyLat.Observe(time.Since(start).Seconds())
		return res, nil
	}

	union := make(map[string]*core.Document, len(in.docs)+len(batch))
	for k, d := range in.docs {
		union[k] = d
	}
	for k, p := range batch {
		if _, ok := union[k]; ok {
			res.Replaced++
		}
		union[k] = p.doc
		res.Docs++
		res.Errata += len(p.doc.Errata)
	}

	orders := computeOrders(union)
	keys := in.computeKeys(union, orders)

	// Materialize the new snapshot copy-on-write: batch documents are
	// still private and are finalized in place; pre-existing documents
	// are shared untouched unless the union shifted their Order or
	// renumbered one of their entries' keys, in which case the document
	// (and only the affected entries) are cloned.
	final := make(map[string]*core.Document, len(union))
	for k, d := range union {
		if _, isNew := batch[k]; isNew {
			d.Order = orders[k]
			for _, e := range d.Errata {
				e.Key = keys[e]
			}
			final[k] = d
			continue
		}
		needs := d.Order != orders[k]
		if !needs {
			for _, e := range d.Errata {
				if keys[e] != e.Key {
					needs = true
					break
				}
			}
		}
		if !needs {
			final[k] = d
			continue
		}
		if d.Order != orders[k] {
			res.Reordered++
		}
		dc := *d
		dc.Order = orders[k]
		dc.Errata = make([]*core.Erratum, len(d.Errata))
		for i, e := range d.Errata {
			if keys[e] != e.Key {
				ne := e.Clone()
				ne.Key = keys[e]
				dc.Errata[i] = ne
				res.Relabeled++
			} else {
				dc.Errata[i] = e
			}
		}
		final[k] = &dc
	}

	// Disclosure inference is strictly per-document; run it on the
	// batch's fresh documents only (clones keep their inferred dates).
	tdb := &core.Database{Docs: make(map[string]*core.Document, len(batch)), Scheme: in.scheme}
	for k := range batch {
		tdb.Docs[k] = final[k]
	}
	timeline.InferDisclosures(tdb, timeline.Options{Interpolate: true})

	db := &core.Database{Docs: final, Scheme: in.scheme}
	t0 := time.Now()
	ix := index.MergeDelta(in.ix, db)
	res.MergeDuration = time.Since(t0)
	in.mergeLat.Observe(res.MergeDuration.Seconds())

	in.docs, in.db, in.ix = final, db, ix
	for k, p := range batch {
		in.digests[k] = p.digest
	}
	in.docsTotal.Add(int64(res.Docs))
	in.errataTotal.Add(int64(res.Errata))
	res.DB, res.Index, res.Changed = db, ix, true
	in.applyLat.Observe(time.Since(start).Seconds())
	return res, nil
}

type parsedDoc struct {
	doc    *core.Document
	digest string
	diags  []specdoc.Diagnostic
}

// parseBatch parses and auto-classifies every text with a bounded
// worker pool, going through the content-addressed artifact cache.
func (in *Ingester) parseBatch(texts []string) ([]*parsedDoc, error) {
	out, err := parallel.Map(len(texts), in.opts.Parallelism, func(i int) (*parsedDoc, error) {
		return in.parseOne(texts[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parseOne produces the per-document artifact for one text: the parsed
// document with every entry auto-classified, before any union-dependent
// work (Order, dedup keys and disclosure dates are assigned at Apply
// time). The artifact is memoized content-addressed by the text's
// sha256; a corrupt cached artifact degrades to a miss.
func (in *Ingester) parseOne(text string) (*parsedDoc, error) {
	digest := sha256hex([]byte(text))
	cacheKey := docArtifactVersion + "-" + digest
	if in.opts.Cache != nil {
		if raw, _, ok := in.opts.Cache.Get(cacheKey); ok {
			if p, err := decodeArtifact(raw); err == nil {
				in.cacheHits.Inc()
				p.digest = digest
				return p, nil
			}
		}
		in.cacheMisses.Inc()
	}
	doc, diags, err := specdoc.Parse(text)
	if err != nil {
		return nil, err
	}
	for _, e := range doc.Errata {
		applyAutoAnnotation(in.scheme, in.engine.Classify(e), e)
	}
	p := &parsedDoc{doc: doc, digest: digest, diags: diags}
	if in.opts.Cache != nil {
		if raw, err := encodeArtifact(p); err == nil {
			in.opts.Cache.Put(cacheKey, raw, pipeline.Meta{
				Digest: sha256hex(raw), Items: len(doc.Errata), Bytes: len(raw),
			})
		}
	}
	return p, nil
}

// applyAutoAnnotation writes the classifier's auto-included categories,
// flags and per-entry workaround/fix classifications onto the erratum —
// the oracle-free half of annotate.Run's applyAnnotation (a live feed
// has no ground truth to resolve undecided pairs against).
func applyAutoAnnotation(scheme domain.Scheme, rep *classify.Report, e *core.Erratum) {
	var ann core.Annotation
	for _, cat := range rep.IncludedCategories(scheme) {
		c, ok := scheme.Category(cat)
		if !ok {
			continue
		}
		item := core.Item{Category: cat, Concrete: rep.Concrete[cat]}
		switch c.Kind {
		case taxonomy.Trigger:
			ann.Triggers = append(ann.Triggers, item)
		case taxonomy.Context:
			ann.Contexts = append(ann.Contexts, item)
		case taxonomy.Effect:
			ann.Effects = append(ann.Effects, item)
		}
	}
	ann.MSRs = append([]string(nil), rep.MSRs...)
	ann.ComplexConditions = rep.Complex
	ann.TrivialTrigger = rep.Trivial
	ann.SimulationOnly = rep.SimulationOnly
	e.Ann = ann
	e.WorkaroundCat = rep.WorkaroundCat
	e.Fix = rep.Fix
}

// computeOrders assigns chronological Order indices for the union
// exactly as core.AssignOrders would — per vendor, sorted by (GenIndex,
// Released, Key) — but functionally, without mutating shared documents.
func computeOrders(union map[string]*core.Document) map[string]int {
	byVendor := make(map[core.Vendor][]*core.Document)
	for _, d := range union {
		byVendor[d.Vendor] = append(byVendor[d.Vendor], d)
	}
	orders := make(map[string]int, len(union))
	for _, docs := range byVendor {
		sort.Slice(docs, func(i, j int) bool {
			if docs[i].GenIndex != docs[j].GenIndex {
				return docs[i].GenIndex < docs[j].GenIndex
			}
			if !docs[i].Released.Equal(docs[j].Released) {
				return docs[i].Released.Before(docs[j].Released)
			}
			return docs[i].Key < docs[j].Key
		})
		for i, d := range docs {
			orders[d.Key] = i
		}
	}
	return orders
}

// computeKeys assigns the dedup cluster key of every entry in the union
// as a pure function of the union document set and the frozen initial
// clusters, so any ingest order converges to the same keys. AMD entries
// key by shared ID; Intel entries adopt a frozen cluster's key when
// their normalized title matches one, and otherwise cluster by exact
// normalized title with "I-%04d" labels numbered in the union's
// (minOrder, minSeq) cluster order, continuing after the frozen labels
// (mirroring dedup.assignIntelKeys; with no frozen clusters the result
// is exactly dedup.Deduplicate with a nil oracle).
func (in *Ingester) computeKeys(union map[string]*core.Document, orders map[string]int) map[*core.Erratum]string {
	keys := make(map[*core.Erratum]string)
	type cluster struct {
		minOrder, minSeq int
		members          []*core.Erratum
	}
	fresh := make(map[string]*cluster)
	for _, d := range union {
		for _, e := range d.Errata {
			switch d.Vendor {
			case core.AMD:
				if e.ID != "" {
					keys[e] = "A-" + e.ID
				} else {
					keys[e] = ""
				}
			case core.Intel:
				n := textsim.Normalize(e.Title)
				if k, ok := in.frozenKey[n]; ok {
					keys[e] = k
					continue
				}
				o := orders[d.Key]
				c, ok := fresh[n]
				if !ok {
					c = &cluster{minOrder: o, minSeq: e.Seq}
					fresh[n] = c
				} else if o < c.minOrder || (o == c.minOrder && e.Seq < c.minSeq) {
					c.minOrder, c.minSeq = o, e.Seq
				}
				c.members = append(c.members, e)
			default:
				keys[e] = ""
			}
		}
	}
	clusters := make([]*cluster, 0, len(fresh))
	titles := make(map[*cluster]string, len(fresh))
	for n, c := range fresh {
		clusters = append(clusters, c)
		titles[c] = n
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].minOrder != clusters[j].minOrder {
			return clusters[i].minOrder < clusters[j].minOrder
		}
		if clusters[i].minSeq != clusters[j].minSeq {
			return clusters[i].minSeq < clusters[j].minSeq
		}
		return titles[clusters[i]] < titles[clusters[j]]
	})
	for i, c := range clusters {
		k := fmt.Sprintf("I-%04d", in.nextLabel+i)
		for _, e := range c.members {
			keys[e] = k
		}
	}
	return keys
}

// parseIntelLabel extracts the numeric part of an "I-%04d" cluster key.
func parseIntelLabel(key string) (int, bool) {
	rest, ok := strings.CutPrefix(key, "I-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func copyDocs(docs map[string]*core.Document) map[string]*core.Document {
	out := make(map[string]*core.Document, len(docs))
	for k, d := range docs {
		out[k] = d
	}
	return out
}

func sha256hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// artifactDTO is the cached per-document artifact: the parsed,
// classified document encoded as a single-document store database, plus
// its parse diagnostics.
type artifactDTO struct {
	Doc   json.RawMessage      `json:"doc"`
	Diags []specdoc.Diagnostic `json:"diags,omitempty"`
}

func encodeArtifact(p *parsedDoc) ([]byte, error) {
	one := core.NewDatabase()
	if err := one.Add(p.doc); err != nil {
		return nil, err
	}
	raw, err := store.Encode(one)
	if err != nil {
		return nil, err
	}
	return json.Marshal(artifactDTO{Doc: raw, Diags: p.diags})
}

func decodeArtifact(raw []byte) (*parsedDoc, error) {
	var dto artifactDTO
	if err := json.Unmarshal(raw, &dto); err != nil {
		return nil, err
	}
	r, err := store.OpenBytes(dto.Doc, store.WithFormat("v1"))
	if err != nil {
		return nil, err
	}
	one, err := r.Database()
	if err != nil {
		return nil, err
	}
	if len(one.Docs) != 1 {
		return nil, fmt.Errorf("ingest: artifact holds %d documents", len(one.Docs))
	}
	for _, d := range one.Docs {
		return &parsedDoc{doc: d, diags: dto.Diags}, nil
	}
	return nil, fmt.Errorf("ingest: empty artifact")
}
