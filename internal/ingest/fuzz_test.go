package ingest

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/pipeline"
	"repro/internal/specdoc"
	"repro/internal/store"
)

// fuzzPool holds a small pool of ingestible document texts, including
// a revised (last-erratum-dropped) variant of each multi-entry document
// so the fuzzer can exercise replacement, relabeling and Order shifts,
// not just appends.
var fuzzPool struct {
	once  sync.Once
	texts []string
	cache *pipeline.MemCache
}

func fuzzTexts(tb testing.TB) []string {
	fuzzPool.once.Do(func() {
		gt, err := corpus.Generate(1)
		if err != nil {
			tb.Fatalf("corpus.Generate: %v", err)
		}
		docs := gt.DB.Documents()
		if len(docs) > 10 {
			docs = docs[:10]
		}
		for _, d := range docs {
			fuzzPool.texts = append(fuzzPool.texts, specdoc.Write(d, specdoc.WriteOptions{}))
			if len(d.Errata) > 1 {
				trimmed := *d
				trimmed.Errata = d.Errata[:len(d.Errata)-1]
				fuzzPool.texts = append(fuzzPool.texts, specdoc.Write(&trimmed, specdoc.WriteOptions{}))
			}
		}
		fuzzPool.cache = pipeline.NewMemCache()
	})
	return fuzzPool.texts
}

// FuzzDeltaMerge is the differential fuzz target of the streaming-ingest
// path. The input bytes drive an arbitrary ingest schedule over a pool
// of real rendered documents and their revised variants: each byte
// either appends one pool document to the pending batch or flushes the
// batch through Ingester.Apply. After every flush the incrementally
// merged index (a chain of index.MergeDelta calls) must dump identically
// to a cold index.Build over the same database, and after the last flush
// the database must be byte-identical to a cold Build over the union
// arrival sequence. Any divergence — a stale postings list, a missed
// relabel clone, an Order shift the merge didn't see — fails here.
func FuzzDeltaMerge(f *testing.F) {
	f.Add([]byte{0, 1, 0x80, 2, 3, 0x80})
	f.Add([]byte{5, 0x80, 5, 0x80})                   // idempotent re-ingest
	f.Add([]byte{0, 0x80, 1, 0x80, 2, 0x80, 3, 0x80}) // one doc per batch
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0x80}) // reverse arrival
	f.Add([]byte{1, 2, 0x80, 1, 0x80})                // revise after ingest

	f.Fuzz(func(t *testing.T, ops []byte) {
		texts := fuzzTexts(t)
		if len(ops) > 24 {
			ops = ops[:24]
		}
		in := New(Options{Parallelism: 1, Cache: fuzzPool.cache})
		var batch, arrived []string
		flush := func() {
			if len(batch) == 0 {
				return
			}
			res, err := in.Apply(batch)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			arrived = append(arrived, batch...)
			batch = nil
			if !res.Changed {
				return
			}
			cold := index.Build(res.DB)
			if got, want := res.Index.DebugDump(), cold.DebugDump(); !bytes.Equal(got, want) {
				t.Fatalf("merged index diverged from cold Build:\n%s", firstDiff(got, want))
			}
		}
		for _, op := range ops {
			if op&0x80 != 0 {
				flush()
				continue
			}
			batch = append(batch, texts[int(op)%len(texts)])
		}
		flush()
		if len(arrived) == 0 {
			return
		}
		wantDB, _, err := Build(nil, arrived, Options{Parallelism: 1, Cache: fuzzPool.cache})
		if err != nil {
			t.Fatalf("cold Build: %v", err)
		}
		db, _ := in.Snapshot()
		got, err := store.Encode(db)
		if err != nil {
			t.Fatalf("store.Encode: %v", err)
		}
		want, err := store.Encode(wantDB)
		if err != nil {
			t.Fatalf("store.Encode: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("converged database diverged from cold Build over the union")
		}
	})
}
