package ingest

import (
	"testing"

	"repro/internal/index"
	"repro/internal/specdoc"
)

// BenchmarkIngestApply measures the steady-state cost of ingesting one
// arriving document into a warm corpus via the delta path: Apply
// (parse + classify + union dedup + copy-on-write materialization +
// index.MergeDelta), alternating a document between its full and
// revised rendering so every iteration really changes the corpus.
func BenchmarkIngestApply(b *testing.B) {
	texts := seedTexts(b, 1)
	in := New(Options{Parallelism: 1})
	if _, err := in.Apply(texts); err != nil {
		b.Fatal(err)
	}
	db, _ := in.Snapshot()
	docs := db.Documents()
	var victim = docs[0]
	for _, d := range docs {
		if len(d.Errata) > 1 {
			victim = d
			break
		}
	}
	trimmed := *victim
	trimmed.Errata = victim.Errata[:len(victim.Errata)-1]
	variants := []string{
		specdoc.Write(victim, specdoc.WriteOptions{}),
		specdoc.Write(&trimmed, specdoc.WriteOptions{}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Apply([]string{variants[i%2]}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdRebuild is the baseline BenchmarkIngestApply replaces:
// reacting to one changed document by re-ingesting the whole corpus
// from scratch and rebuilding the full index.
func BenchmarkColdRebuild(b *testing.B) {
	texts := seedTexts(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, _, err := Build(nil, texts, Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = db
	}
}

// BenchmarkMergeDelta isolates the index half: merging one changed
// document into a warm index versus index.Build from scratch.
func BenchmarkMergeDelta(b *testing.B) {
	texts := seedTexts(b, 1)
	in := New(Options{Parallelism: 1})
	res, err := in.Apply(texts)
	if err != nil {
		b.Fatal(err)
	}
	prev, db := res.Index, res.DB
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			index.MergeDelta(prev, db)
		}
	})
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			index.Build(db)
		}
	})
}
