package ingest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/specdoc"
	"repro/internal/store"
)

// seedTexts renders the corpus for one seed into ingestible document
// texts, in deterministic (document-key) order.
func seedTexts(t testing.TB, seed int64) []string {
	t.Helper()
	gt, err := corpus.Generate(seed)
	if err != nil {
		t.Fatalf("corpus.Generate(%d): %v", seed, err)
	}
	rendered := specdoc.WriteAll(gt.DB, specdoc.WriteOptions{})
	keys := make([]string, 0, len(rendered))
	for k := range rendered {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	texts := make([]string, 0, len(keys))
	for _, k := range keys {
		texts = append(texts, rendered[k])
	}
	return texts
}

// mustEncode returns the canonical byte form of a database, the
// comparison primitive of the convergence contract.
func mustEncode(t testing.TB, db *core.Database) []byte {
	t.Helper()
	b, err := store.Encode(db)
	if err != nil {
		t.Fatalf("store.Encode: %v", err)
	}
	return b
}

// splitBatches cuts texts into 1..len batches at random boundaries.
func splitBatches(rng *rand.Rand, texts []string) [][]string {
	if len(texts) == 0 {
		return nil
	}
	var batches [][]string
	for start := 0; start < len(texts); {
		n := 1 + rng.Intn(len(texts)-start)
		batches = append(batches, texts[start:start+n])
		start += n
	}
	return batches
}

// TestApplyMatchesColdBuild pins the trivial end of the convergence
// contract: one Apply over everything equals Build over everything.
func TestApplyMatchesColdBuild(t *testing.T) {
	texts := seedTexts(t, 1)
	wantDB, wantIX, err := Build(nil, texts, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	in := New(Options{Parallelism: 4})
	res, err := in.Apply(texts)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Changed || res.Docs != len(texts) {
		t.Fatalf("Apply: Changed=%v Docs=%d, want true/%d", res.Changed, res.Docs, len(texts))
	}
	if got, want := mustEncode(t, res.DB), mustEncode(t, wantDB); !bytes.Equal(got, want) {
		t.Fatalf("single-batch Apply database differs from cold Build (%d vs %d bytes)", len(got), len(want))
	}
	if got, want := res.Index.DebugDump(), wantIX.DebugDump(); !bytes.Equal(got, want) {
		t.Fatalf("single-batch Apply index differs from cold Build:\n%s", firstDiff(got, want))
	}
}

// TestConvergenceAcrossArrivalOrders is the convergence contract
// proper: for every corpus seed of the equivalence matrix, any document
// arrival order and any batch split — ingested incrementally with delta
// index merges — lands on a database byte-identical to the cold Build
// over the union, with a structurally identical index, at every worker
// count.
func TestConvergenceAcrossArrivalOrders(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence matrix is slow; run without -short")
	}
	for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
		texts := seedTexts(t, seed)
		// One shared artifact cache per seed: trials after the first
		// re-parse nothing, and the cache path itself is exercised.
		cache := pipeline.NewMemCache()
		wantDB, wantIX, err := Build(nil, texts, Options{Parallelism: 4, Cache: cache})
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		want := mustEncode(t, wantDB)
		wantDump := wantIX.DebugDump()
		for _, par := range []int{1, 4} {
			rng := rand.New(rand.NewSource(seed * 101))
			for trial := 0; trial < 3; trial++ {
				perm := append([]string(nil), texts...)
				rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
				in := New(Options{Parallelism: par, Cache: cache})
				var last *Result
				for _, batch := range splitBatches(rng, perm) {
					if last, err = in.Apply(batch); err != nil {
						t.Fatalf("seed %d par %d trial %d: Apply: %v", seed, par, trial, err)
					}
				}
				got := mustEncode(t, last.DB)
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d par %d trial %d: converged database differs from cold Build", seed, par, trial)
				}
				// last.Index was produced by the chain of MergeDelta calls;
				// comparing it against the cold index.Build pins the delta
				// merge itself, not just the database.
				if dump := last.Index.DebugDump(); !bytes.Equal(dump, wantDump) {
					t.Fatalf("seed %d par %d trial %d: merged index differs from cold Build:\n%s",
						seed, par, trial, firstDiff(dump, wantDump))
				}
			}
		}
	}
}

// TestConvergenceFromSeededDatabase covers the NewFrom path: an
// ingester seeded with a live database (whose Intel clusters freeze)
// must converge to Build over the same initial database and the same
// arriving texts, regardless of arrival order.
func TestConvergenceFromSeededDatabase(t *testing.T) {
	texts := seedTexts(t, 2)
	half := len(texts) / 2
	initialDB, _, err := Build(nil, texts[:half], Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("Build(initial): %v", err)
	}
	arriving := texts[half:]
	wantDB, wantIX, err := Build(initialDB, arriving, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("Build(union): %v", err)
	}
	want := mustEncode(t, wantDB)
	wantDump := wantIX.DebugDump()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		perm := append([]string(nil), arriving...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		in := NewFrom(initialDB, Options{Parallelism: 4})
		var last *Result
		for _, batch := range splitBatches(rng, perm) {
			if last, err = in.Apply(batch); err != nil {
				t.Fatalf("trial %d: Apply: %v", trial, err)
			}
		}
		if got := mustEncode(t, last.DB); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: seeded ingest database differs from cold Build", trial)
		}
		if dump := last.Index.DebugDump(); !bytes.Equal(dump, wantDump) {
			t.Fatalf("trial %d: seeded ingest index differs from cold Build:\n%s",
				trial, firstDiff(dump, wantDump))
		}
	}
}

// TestApplyIdempotentAndRevision covers re-ingest semantics: a
// byte-identical document is skipped without publishing a snapshot, a
// revised document replaces its predecessor, and the post-revision
// state equals a cold Build where the revised text stands for the key.
func TestApplyIdempotentAndRevision(t *testing.T) {
	texts := seedTexts(t, 3)
	in := New(Options{Parallelism: 4})
	if _, err := in.Apply(texts); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	db0, ix0 := in.Snapshot()

	// Idempotent re-ingest: same bytes, no new snapshot.
	res, err := in.Apply([]string{texts[0]})
	if err != nil {
		t.Fatalf("re-Apply: %v", err)
	}
	if res.Changed || res.Skipped != 1 || res.Docs != 0 {
		t.Fatalf("re-Apply: Changed=%v Skipped=%d Docs=%d, want false/1/0", res.Changed, res.Skipped, res.Docs)
	}
	if gotDB, gotIX := in.Snapshot(); gotDB != db0 || gotIX != ix0 {
		t.Fatalf("idempotent re-ingest replaced the snapshot")
	}

	// Revision: re-render the first document with its last erratum
	// dropped and ingest the new text; the revised text wins its key.
	docs := db0.Documents()
	victim := docs[0]
	if len(victim.Errata) < 2 {
		t.Fatalf("victim document %s has %d errata, need >= 2", victim.Key, len(victim.Errata))
	}
	trimmed := *victim
	trimmed.Errata = victim.Errata[:len(victim.Errata)-1]
	revised := specdoc.Write(&trimmed, specdoc.WriteOptions{})

	res, err = in.Apply([]string{revised})
	if err != nil {
		t.Fatalf("Apply(revised): %v", err)
	}
	if !res.Changed || res.Replaced != 1 {
		t.Fatalf("Apply(revised): Changed=%v Replaced=%d, want true/1", res.Changed, res.Replaced)
	}
	gotDB, gotIX := in.Snapshot()
	if got := len(gotDB.Docs[victim.Key].Errata); got != len(victim.Errata)-1 {
		t.Fatalf("revised document has %d errata, want %d", got, len(victim.Errata)-1)
	}
	// The old snapshot is untouched (copy-on-write).
	if got := len(db0.Docs[victim.Key].Errata); got != len(victim.Errata) {
		t.Fatalf("revision mutated the previous snapshot (%d errata)", got)
	}

	// Cold baseline over the union with last-wins revision.
	union := append(append([]string(nil), texts...), revised)
	wantDB, wantIX, err := Build(nil, union, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("Build(union): %v", err)
	}
	if got, want := mustEncode(t, gotDB), mustEncode(t, wantDB); !bytes.Equal(got, want) {
		t.Fatalf("post-revision database differs from cold Build")
	}
	if got, want := gotIX.DebugDump(), wantIX.DebugDump(); !bytes.Equal(got, want) {
		t.Fatalf("post-revision index differs from cold Build:\n%s", firstDiff(got, want))
	}
}

// TestArtifactCacheHits pins the per-document artifact cache: a second
// ingester over the same cache re-parses nothing and still converges.
func TestArtifactCacheHits(t *testing.T) {
	texts := seedTexts(t, 4)
	cache := pipeline.NewMemCache()
	in1 := New(Options{Parallelism: 4, Cache: cache})
	res1, err := in1.Apply(texts)
	if err != nil {
		t.Fatalf("Apply 1: %v", err)
	}
	misses := in1.cacheMisses.Value()
	if misses != int64(len(texts)) {
		t.Fatalf("first pass: %d cache misses, want %d", misses, len(texts))
	}
	in2 := New(Options{Parallelism: 4, Cache: cache})
	res2, err := in2.Apply(texts)
	if err != nil {
		t.Fatalf("Apply 2: %v", err)
	}
	if hits := in2.cacheHits.Value(); hits != int64(len(texts)) {
		t.Fatalf("second pass: %d cache hits, want %d", hits, len(texts))
	}
	if got, want := mustEncode(t, res2.DB), mustEncode(t, res1.DB); !bytes.Equal(got, want) {
		t.Fatalf("cached parse converged to a different database")
	}
}

// TestApplyRejectsBadBatch pins batch atomicity: a batch containing an
// unparseable text leaves the snapshot untouched.
func TestApplyRejectsBadBatch(t *testing.T) {
	texts := seedTexts(t, 5)
	in := New(Options{})
	if _, err := in.Apply(texts[:1]); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	db0, ix0 := in.Snapshot()
	if _, err := in.Apply([]string{texts[1], "not a specification update\n"}); err == nil {
		t.Fatalf("Apply accepted an unparseable document")
	}
	if db, ix := in.Snapshot(); db != db0 || ix != ix0 {
		t.Fatalf("failed batch replaced the snapshot")
	}
}

// firstDiff renders the first differing line of two debug dumps.
func firstDiff(got, want []byte) string {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("line %d:\n got %s\nwant %s", i, g[i], w[i])
		}
	}
	return fmt.Sprintf("dumps differ in length: got %d lines, want %d", len(g), len(w))
}
