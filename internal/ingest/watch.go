package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
)

// doneDir and failedDir are the spool subdirectories processed files
// move to; subdirectories are never scanned as spool candidates.
const (
	doneDir   = "done"
	failedDir = "failed"
)

// docTerminator ends every well-formed specification-update document
// (specdoc.Write emits it; specdoc.Parse tolerates its absence, which
// is exactly why the watcher must not: a truncated file parses
// "successfully" as a shorter document).
const docTerminator = "END OF DOCUMENT"

// Watcher polls a spool directory and feeds arriving specification-
// update documents to an ingest callback.
//
// # Partially written files
//
// The watcher must never ingest a file mid-write. The contract has two
// layers:
//
//  1. Temp+rename: producers write the document somewhere else (or
//     under a name the watcher ignores — a "." prefix, or a ".tmp",
//     ".part" or "~" suffix) and rename(2) it into the spool, which is
//     atomic on POSIX filesystems. This is the same discipline
//     pipeline.DiskCache uses for artifact writes.
//  2. Defense in depth for producers that violate (1): a spool file is
//     only ingested once its content ends with the "END OF DOCUMENT"
//     terminator every well-formed document carries. A half-written
//     file is silently skipped (and counted on
//     rememberr_ingest_spool_files_total{result="incomplete"}) until a
//     later poll sees it completed. Without this check a truncated
//     document would parse successfully — the parser flushes trailing
//     errata at EOF — and ingest a silently shortened document.
//
// Processed files move to the spool's done/ subdirectory; files whose
// ingest failed (parse errors, typically) move to failed/ so they stop
// occupying the poll loop but stay inspectable.
type Watcher struct {
	// Dir is the spool directory.
	Dir string
	// Interval is the poll period; 0 selects one second.
	Interval time.Duration
	// Apply ingests one complete document text; name is the spool file
	// name (for logging — the document key comes from the text itself).
	// A non-nil error moves the file to failed/ instead of done/.
	Apply func(ctx context.Context, name, text string) error
	// Observability receives the spool instruments; nil selects a
	// private registry.
	Observability *obs.Registry
	// Log, when non-nil, receives one line per processed file.
	Log func(format string, args ...any)

	ingested   *obs.Counter
	failed     *obs.Counter
	incomplete *obs.Counter
}

// Run polls until ctx is cancelled. The spool directory and its done/
// and failed/ subdirectories are created if missing.
func (w *Watcher) Run(ctx context.Context) error {
	if err := w.init(); err != nil {
		return err
	}
	interval := w.Interval
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if err := w.pollOnce(ctx); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

func (w *Watcher) init() error {
	if w.Apply == nil {
		return fmt.Errorf("ingest: watcher needs an Apply callback")
	}
	for _, sub := range []string{"", doneDir, failedDir} {
		if err := os.MkdirAll(filepath.Join(w.Dir, sub), 0o755); err != nil {
			return fmt.Errorf("ingest: spool: %w", err)
		}
	}
	reg := w.Observability
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w.ingested = reg.Counter("rememberr_ingest_spool_files_total",
		"Spool files processed, by result.", obs.L("result", "ingested"))
	w.failed = reg.Counter("rememberr_ingest_spool_files_total",
		"Spool files processed, by result.", obs.L("result", "failed"))
	w.incomplete = reg.Counter("rememberr_ingest_spool_files_total",
		"Spool files processed, by result.", obs.L("result", "incomplete"))
	return nil
}

// pollOnce scans the spool directory once, ingesting every complete
// candidate file in name order (deterministic across polls).
func (w *Watcher) pollOnce(ctx context.Context) error {
	entries, err := os.ReadDir(w.Dir)
	if err != nil {
		return fmt.Errorf("ingest: spool: %w", err)
	}
	for _, ent := range entries {
		if ctx.Err() != nil {
			return nil
		}
		name := ent.Name()
		if ent.IsDir() || !spoolCandidate(name) {
			continue
		}
		path := filepath.Join(w.Dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			continue // renamed or removed between ReadDir and ReadFile
		}
		if !complete(b) {
			w.incomplete.Inc()
			w.logf("spool: %s incomplete (no %q terminator), waiting", name, docTerminator)
			continue
		}
		if err := w.Apply(ctx, name, string(b)); err != nil {
			w.failed.Inc()
			w.logf("spool: %s failed: %v", name, err)
			w.move(path, failedDir, name)
			continue
		}
		w.ingested.Inc()
		w.logf("spool: %s ingested", name)
		w.move(path, doneDir, name)
	}
	return nil
}

func (w *Watcher) move(path, sub, name string) {
	if err := os.Rename(path, filepath.Join(w.Dir, sub, name)); err != nil {
		w.logf("spool: move %s to %s/: %v", name, sub, err)
	}
}

func (w *Watcher) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

// spoolCandidate reports whether a spool file name is eligible for
// ingestion: hidden files and conventional in-progress suffixes are
// reserved for producers staging writes (the temp half of the
// temp+rename contract).
func spoolCandidate(name string) bool {
	if strings.HasPrefix(name, ".") {
		return false
	}
	for _, suffix := range []string{".tmp", ".part", "~"} {
		if strings.HasSuffix(name, suffix) {
			return false
		}
	}
	return true
}

// complete reports whether the file content is a finished document:
// everything up to trailing whitespace must end with the terminator.
func complete(b []byte) bool {
	return strings.HasSuffix(strings.TrimRight(string(b), " \t\r\n"), docTerminator)
}
