package ingest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// newTestWatcher returns an initialized watcher over a fresh temp spool
// whose Apply records the texts it was handed.
func newTestWatcher(t *testing.T) (*Watcher, *[]string) {
	t.Helper()
	var got []string
	w := &Watcher{
		Dir: t.TempDir(),
		Apply: func(_ context.Context, _ string, text string) error {
			if strings.Contains(text, "poison") {
				return errors.New("poisoned document")
			}
			got = append(got, text)
			return nil
		},
		Observability: obs.NewRegistry(),
	}
	if err := w.init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	return w, &got
}

func spoolWrite(t *testing.T, w *Watcher, name, content string) string {
	t.Helper()
	path := filepath.Join(w.Dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return path
}

const completeDoc = "SPECIFICATION UPDATE\nsome body\nEND OF DOCUMENT\n"

// TestWatcherSkipsPartiallyWrittenFile is the regression test for the
// partial-write contract: a document missing its trailing
// "END OF DOCUMENT" terminator — exactly what a producer that writes
// in place (instead of temp+rename) exposes mid-write — must not be
// ingested, must stay in the spool untouched, and must be picked up by
// a later poll once the write completes.
func TestWatcherSkipsPartiallyWrittenFile(t *testing.T) {
	w, got := newTestWatcher(t)
	half := "SPECIFICATION UPDATE\nsome body, writer still going"
	path := spoolWrite(t, w, "update.txt", half)

	if err := w.pollOnce(context.Background()); err != nil {
		t.Fatalf("pollOnce: %v", err)
	}
	if len(*got) != 0 {
		t.Fatalf("half-written file was ingested: %q", *got)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != half {
		t.Fatalf("half-written file was moved or modified: %v %q", err, b)
	}
	if v := w.incomplete.Value(); v != 1 {
		t.Fatalf("incomplete counter = %d, want 1", v)
	}

	// The writer finishes; the next poll ingests and moves the file.
	spoolWrite(t, w, "update.txt", completeDoc)
	if err := w.pollOnce(context.Background()); err != nil {
		t.Fatalf("pollOnce: %v", err)
	}
	if len(*got) != 1 || (*got)[0] != completeDoc {
		t.Fatalf("completed file not ingested: %q", *got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("ingested file still in spool")
	}
	if _, err := os.Stat(filepath.Join(w.Dir, doneDir, "update.txt")); err != nil {
		t.Fatalf("ingested file not in done/: %v", err)
	}
}

// TestWatcherIgnoresStagingNames pins the temp half of the temp+rename
// contract: dotfiles and in-progress suffixes are never candidates,
// and renaming one into a clean name makes it eligible.
func TestWatcherIgnoresStagingNames(t *testing.T) {
	w, got := newTestWatcher(t)
	for _, name := range []string{".hidden", "doc.txt.tmp", "doc.part", "doc.txt~"} {
		spoolWrite(t, w, name, completeDoc)
	}
	if err := w.pollOnce(context.Background()); err != nil {
		t.Fatalf("pollOnce: %v", err)
	}
	if len(*got) != 0 {
		t.Fatalf("staging-named files were ingested: %d", len(*got))
	}

	// rename(2) into the spool — the atomic publish.
	if err := os.Rename(filepath.Join(w.Dir, "doc.txt.tmp"), filepath.Join(w.Dir, "doc.txt")); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := w.pollOnce(context.Background()); err != nil {
		t.Fatalf("pollOnce: %v", err)
	}
	if len(*got) != 1 {
		t.Fatalf("renamed file not ingested")
	}
}

// TestWatcherMovesFailedFiles pins that a document the ingest callback
// rejects lands in failed/ and is not retried.
func TestWatcherMovesFailedFiles(t *testing.T) {
	w, got := newTestWatcher(t)
	spoolWrite(t, w, "bad.txt", "poison\nEND OF DOCUMENT\n")
	for i := 0; i < 2; i++ {
		if err := w.pollOnce(context.Background()); err != nil {
			t.Fatalf("pollOnce: %v", err)
		}
	}
	if len(*got) != 0 {
		t.Fatalf("failing document was recorded as ingested")
	}
	if v := w.failed.Value(); v != 1 {
		t.Fatalf("failed counter = %d, want 1 (no retry)", v)
	}
	if _, err := os.Stat(filepath.Join(w.Dir, failedDir, "bad.txt")); err != nil {
		t.Fatalf("failed file not in failed/: %v", err)
	}
}
