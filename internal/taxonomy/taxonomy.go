// Package taxonomy defines the RemembERR classification scheme for
// microprocessor errata.
//
// The scheme is hierarchical with three levels of abstraction:
//
//   - the concrete level: the exact action described in an erratum
//     ("the core resumes from the C6 power state"). Concrete items are
//     free-form strings attached to annotations and are the only
//     potentially ISA-specific level.
//   - the abstract level: a slightly higher abstraction ("a transition
//     between core power states"), identified by descriptors such as
//     Trg_POW_pwc. There are 60 abstract categories in the base scheme:
//     34 triggers, 10 contexts and 16 observable effects.
//   - the class level: the highest abstraction ("power management"),
//     identified by descriptors such as Trg_POW.
//
// Category identifiers follow the paper's notation: a class descriptor is
// the concatenation of a kind prefix (Trg, Ctx, Eff) and a class suffix
// (e.g. Trg_EXT); an abstract descriptor appends a three-letter category
// suffix (e.g. Trg_EXT_rst).
//
// Triggers are conjunctive: all triggers of an erratum must be applied to
// provoke the bug. Contexts and effects are disjunctive: being in any
// listed context suffices, and observing any listed effect suffices to
// detect the bug.
package taxonomy

import (
	"fmt"
	"sort"
	"strings"

	"repro/pkg/domain"
)

// The kind/class/category vocabulary lives in the public pkg/domain
// package; these aliases keep the historical internal names working.
type (
	// Kind discriminates the three annotation dimensions of an erratum.
	Kind = domain.Kind
	// Class is a class-level category, the highest abstraction level.
	Class = domain.Class
	// Category is an abstract-level category.
	Category = domain.Category
)

const (
	// Trigger marks conditions that are necessary to provoke a bug.
	Trigger = domain.Trigger
	// Context marks settings in which a bug can manifest.
	Context = domain.Context
	// Effect marks observable deviations once a bug has been triggered.
	Effect = domain.Effect
)

// Kinds lists all kinds in canonical order.
var Kinds = domain.Kinds

// ParseKind converts a descriptor prefix (Trg, Ctx or Eff, case-insensitive)
// into a Kind.
func ParseKind(s string) (Kind, error) { return domain.ParseKind(s) }

// The concrete *Scheme must satisfy the public scheme contract.
var _ domain.Scheme = (*Scheme)(nil)

// classSpec is the static definition of one class and its abstract
// categories, used to build the base scheme.
type classSpec struct {
	kind    Kind
	suffix  string
	desc    string
	entries []entrySpec
}

type entrySpec struct {
	suffix string
	desc   string
}

// baseScheme transcribes Tables IV, V and VI of the paper.
var baseScheme = []classSpec{
	// ----- Table IV: triggers -----
	{Trigger, "MBR", "a data operation on a memory boundary", []entrySpec{
		{"cbr", "a data operation on a cache line boundary"},
		{"pgb", "a data operation on a page boundary"},
		{"mbr", "a data operation on a memory map boundary such as canonical"},
	}},
	{Trigger, "MOP", "a memory operation", []entrySpec{
		{"mmp", "a memory operation involving an interaction with a memory-mapped element"},
		{"atp", "an atomic or transactional memory operation"},
		{"fen", "a memory fence or a serializing instruction"},
		{"seg", "a condition on segment modes"},
		{"ptw", "a core page table walk"},
		{"nst", "translation on nested page tables"},
		{"flc", "flushing some cache line or TLB"},
		{"spe", "a speculative memory operation"},
	}},
	{Trigger, "FLT", "related to exceptions and faults", []entrySpec{
		{"ovf", "a counter overflow"},
		{"tmr", "a timer event"},
		{"mca", "a machine check exception"},
		{"ill", "an illegal instruction"},
	}},
	{Trigger, "PRV", "related to privilege transitions", []entrySpec{
		{"ret", "a resume from System Management or OS mode"},
		{"vmt", "a transition between hypervisor and guest"},
	}},
	{Trigger, "CFG", "related to dynamic configuration", []entrySpec{
		{"pag", "a paging mechanism interaction"},
		{"vmc", "a virtual machine configuration interaction"},
		{"wrg", "a configuration register interaction"},
	}},
	{Trigger, "POW", "related to power states", []entrySpec{
		{"pwc", "a transition between power states"},
		{"tht", "a change in thermal or power supply conditions, or throttling"},
	}},
	{Trigger, "EXT", "related to external inputs", []entrySpec{
		{"rst", "a cold or warm reset"},
		{"pci", "an interaction with PCIe"},
		{"usb", "an interaction with USB"},
		{"ram", "a specific DRAM configuration"},
		{"iom", "an access through the IOMMU"},
		{"bus", "a system bus interaction (HyperTransport, QPI, etc.)"},
	}},
	{Trigger, "FEA", "related to features", []entrySpec{
		{"fpu", "floating-point instructions"},
		{"dbg", "debug features such as breakpoints"},
		{"cid", "design identification (CPUID reports)"},
		{"mon", "monitoring (MONITOR and MWAIT)"},
		{"tra", "tracing features"},
		{"cus", "other specific features (SSE, MMX, etc.)"},
	}},

	// ----- Table V: contexts -----
	{Context, "PRV", "related to privileges", []entrySpec{
		{"boo", "booting or being in the BIOS"},
		{"vmg", "being a virtual machine guest"},
		{"rea", "operating in real mode"},
		{"vmh", "being a hypervisor"},
		{"smm", "being in SMM"},
	}},
	{Context, "FEA", "related to features", []entrySpec{
		{"sec", "a security feature enabled (SGX, SVM, etc.)"},
		{"sgc", "running in a single-core configuration"},
	}},
	{Context, "PHY", "non-digital conditions", []entrySpec{
		{"pkg", "package-specific"},
		{"tmp", "temperature-specific"},
		{"vol", "voltage-specific"},
	}},

	// ----- Table VI: observable effects -----
	{Effect, "HNG", "related to hangs", []entrySpec{
		{"unp", "an unpredictable behavior"},
		{"hng", "a hang of the processor"},
		{"crh", "a crash of the processor"},
		{"boo", "a boot failure"},
	}},
	{Effect, "FLT", "related to faults", []entrySpec{
		{"mca", "a machine check exception"},
		{"unc", "an uncorrectable error"},
		{"fsp", "one or multiple spurious faults"},
		{"fms", "one or multiple missing faults"},
		{"fid", "a wrong fault identifier or order"},
	}},
	{Effect, "CRP", "related to corruptions", []entrySpec{
		{"prf", "a wrong performance counter value"},
		{"reg", "a wrong MSR value"},
	}},
	{Effect, "EXT", "related to physical outputs", []entrySpec{
		{"pci", "issues observable on the PCIe side"},
		{"usb", "issues observable on the USB side"},
		{"mmd", "multimedia issues (e.g., audio, graphics)"},
		{"ram", "abnormal interaction with DRAM"},
		{"pow", "abnormal power consumption"},
	}},
}

// Scheme is an immutable view of a classification scheme: the set of
// classes and abstract categories, with deterministic iteration order.
//
// The zero value is not usable; obtain a Scheme from Base or from a
// Registry snapshot.
type Scheme struct {
	classes    []Class
	categories []Category
	classByID  map[string]int
	catByID    map[string]int
	catByClass map[string][]string
}

var base = buildScheme(baseScheme)

// Base returns the paper's scheme: the 60 abstract categories of
// Tables IV-VI grouped in 15 classes.
func Base() *Scheme { return base }

func buildScheme(specs []classSpec) *Scheme {
	s := &Scheme{
		classByID:  make(map[string]int),
		catByID:    make(map[string]int),
		catByClass: make(map[string][]string),
	}
	for _, cs := range specs {
		classID := cs.kind.String() + "_" + cs.suffix
		if _, dup := s.classByID[classID]; dup {
			panic("taxonomy: duplicate class " + classID)
		}
		s.classByID[classID] = len(s.classes)
		s.classes = append(s.classes, Class{
			ID:          classID,
			Kind:        cs.kind,
			Suffix:      cs.suffix,
			Description: cs.desc,
		})
		for _, e := range cs.entries {
			catID := classID + "_" + e.suffix
			if _, dup := s.catByID[catID]; dup {
				panic("taxonomy: duplicate category " + catID)
			}
			s.catByID[catID] = len(s.categories)
			s.categories = append(s.categories, Category{
				ID:          catID,
				Kind:        cs.kind,
				Class:       classID,
				Suffix:      e.suffix,
				Description: e.desc,
			})
			s.catByClass[classID] = append(s.catByClass[classID], catID)
		}
	}
	return s
}

// Classes returns all classes of kind k in definition order. With a
// negative kind it returns every class.
func (s *Scheme) Classes(k Kind) []Class {
	var out []Class
	for _, c := range s.classes {
		if k < 0 || c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// AllClasses returns every class in definition order.
func (s *Scheme) AllClasses() []Class { return s.Classes(-1) }

// Categories returns all abstract categories of kind k in definition
// order. With a negative kind it returns every category.
func (s *Scheme) Categories(k Kind) []Category {
	var out []Category
	for _, c := range s.categories {
		if k < 0 || c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// AllCategories returns every abstract category in definition order.
func (s *Scheme) AllCategories() []Category { return s.Categories(-1) }

// CategoriesOf returns the abstract category IDs belonging to the given
// class descriptor, in definition order.
func (s *Scheme) CategoriesOf(classID string) []string {
	ids := s.catByClass[classID]
	out := make([]string, len(ids))
	copy(out, ids)
	return out
}

// Class looks up a class by its descriptor.
func (s *Scheme) Class(id string) (Class, bool) {
	i, ok := s.classByID[id]
	if !ok {
		return Class{}, false
	}
	return s.classes[i], true
}

// Category looks up an abstract category by its descriptor.
func (s *Scheme) Category(id string) (Category, bool) {
	i, ok := s.catByID[id]
	if !ok {
		return Category{}, false
	}
	return s.categories[i], true
}

// ClassOf returns the class descriptor of the abstract category id, or
// the empty string if id is unknown.
func (s *Scheme) ClassOf(id string) string {
	if c, ok := s.Category(id); ok {
		return c.Class
	}
	return ""
}

// NumCategories returns the number of abstract categories of kind k
// (negative for all kinds).
func (s *Scheme) NumCategories(k Kind) int {
	if k < 0 {
		return len(s.categories)
	}
	n := 0
	for _, c := range s.categories {
		if c.Kind == k {
			n++
		}
	}
	return n
}

// NumClasses returns the number of classes of kind k (negative for all).
func (s *Scheme) NumClasses(k Kind) int {
	if k < 0 {
		return len(s.classes)
	}
	n := 0
	for _, c := range s.classes {
		if c.Kind == k {
			n++
		}
	}
	return n
}

// Parse parses a descriptor of the form Kind_CLASS or Kind_CLASS_abs
// (e.g. "Trg_EXT" or "Trg_EXT_rst") and reports the kind, class
// descriptor and, if present, the abstract descriptor. The parse is
// purely syntactic; use Validate to also check membership in the scheme.
func Parse(id string) (kind Kind, classID, categoryID string, err error) {
	parts := strings.Split(id, "_")
	if len(parts) != 2 && len(parts) != 3 {
		return 0, "", "", fmt.Errorf("taxonomy: malformed descriptor %q", id)
	}
	kind, err = ParseKind(parts[0])
	if err != nil {
		return 0, "", "", err
	}
	if parts[1] == "" {
		return 0, "", "", fmt.Errorf("taxonomy: empty class suffix in %q", id)
	}
	classID = kind.String() + "_" + strings.ToUpper(parts[1])
	if len(parts) == 3 {
		if parts[2] == "" {
			return 0, "", "", fmt.Errorf("taxonomy: empty category suffix in %q", id)
		}
		categoryID = classID + "_" + strings.ToLower(parts[2])
	}
	return kind, classID, categoryID, nil
}

// Validate checks that id denotes a class or abstract category of the
// scheme and returns its canonical form.
func (s *Scheme) Validate(id string) (string, error) {
	_, classID, categoryID, err := Parse(id)
	if err != nil {
		return "", err
	}
	if categoryID != "" {
		if _, ok := s.Category(categoryID); !ok {
			return "", fmt.Errorf("taxonomy: unknown abstract category %q", id)
		}
		return categoryID, nil
	}
	if _, ok := s.Class(classID); !ok {
		return "", fmt.Errorf("taxonomy: unknown class %q", id)
	}
	return classID, nil
}

// CategoryIDs returns the descriptors of all abstract categories of
// kind k (negative for all kinds), in definition order.
func (s *Scheme) CategoryIDs(k Kind) []string {
	cats := s.Categories(k)
	out := make([]string, len(cats))
	for i, c := range cats {
		out[i] = c.ID
	}
	return out
}

// ClassIDs returns the descriptors of all classes of kind k (negative
// for all kinds), in definition order.
func (s *Scheme) ClassIDs(k Kind) []string {
	cls := s.Classes(k)
	out := make([]string, len(cls))
	for i, c := range cls {
		out[i] = c.ID
	}
	return out
}

// Registry is a mutable classification scheme. It starts from a copy of
// an existing scheme and accepts new classes and abstract categories,
// supporting the paper's "cross-ISA extension" use case where errata of
// other ISAs introduce new categories.
type Registry struct {
	specs map[string]*classSpec // keyed by class ID
	order []string
}

// NewRegistry returns a Registry pre-populated with the base scheme.
func NewRegistry() *Registry {
	r := &Registry{specs: make(map[string]*classSpec)}
	for _, cs := range baseScheme {
		copyCS := cs
		copyCS.entries = append([]entrySpec(nil), cs.entries...)
		id := cs.kind.String() + "_" + cs.suffix
		r.specs[id] = &copyCS
		r.order = append(r.order, id)
	}
	return r
}

// AddClass registers a new class. The suffix must be non-empty,
// upper-case alphanumeric and unused for the kind.
func (r *Registry) AddClass(k Kind, suffix, description string) error {
	if err := checkClassSuffix(suffix); err != nil {
		return err
	}
	id := k.String() + "_" + suffix
	if _, dup := r.specs[id]; dup {
		return fmt.Errorf("taxonomy: class %s already registered", id)
	}
	r.specs[id] = &classSpec{kind: k, suffix: suffix, desc: description}
	r.order = append(r.order, id)
	return nil
}

// AddCategory registers a new abstract category under an existing class
// descriptor (e.g. "Trg_EXT").
func (r *Registry) AddCategory(classID, suffix, description string) error {
	if err := checkCategorySuffix(suffix); err != nil {
		return err
	}
	cs, ok := r.specs[classID]
	if !ok {
		return fmt.Errorf("taxonomy: unknown class %q", classID)
	}
	for _, e := range cs.entries {
		if e.suffix == suffix {
			return fmt.Errorf("taxonomy: category %s_%s already registered", classID, suffix)
		}
	}
	cs.entries = append(cs.entries, entrySpec{suffix: suffix, desc: description})
	return nil
}

// Scheme returns an immutable snapshot of the registry.
func (r *Registry) Scheme() *Scheme {
	specs := make([]classSpec, 0, len(r.order))
	for _, id := range r.order {
		cs := *r.specs[id]
		cs.entries = append([]entrySpec(nil), r.specs[id].entries...)
		specs = append(specs, cs)
	}
	return buildScheme(specs)
}

func checkClassSuffix(s string) error {
	if len(s) < 2 || len(s) > 8 {
		return fmt.Errorf("taxonomy: class suffix %q must have 2..8 characters", s)
	}
	for _, r := range s {
		if (r < 'A' || r > 'Z') && (r < '0' || r > '9') {
			return fmt.Errorf("taxonomy: class suffix %q must be upper-case alphanumeric", s)
		}
	}
	return nil
}

func checkCategorySuffix(s string) error {
	if len(s) < 2 || len(s) > 8 {
		return fmt.Errorf("taxonomy: category suffix %q must have 2..8 characters", s)
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
			return fmt.Errorf("taxonomy: category suffix %q must be lower-case alphanumeric", s)
		}
	}
	return nil
}

// SortCategoryIDs sorts descriptors in the scheme's definition order;
// unknown descriptors sort last, alphabetically. It sorts in place and
// returns its argument for convenience.
func (s *Scheme) SortCategoryIDs(ids []string) []string {
	sort.SliceStable(ids, func(i, j int) bool {
		pi, iok := s.catByID[ids[i]]
		pj, jok := s.catByID[ids[j]]
		switch {
		case iok && jok:
			return pi < pj
		case iok:
			return true
		case jok:
			return false
		default:
			return ids[i] < ids[j]
		}
	})
	return ids
}
