package taxonomy

import (
	"fmt"
	"strings"
)

// Markdown renders the scheme's classes and abstract categories of one
// kind as a Markdown table in the layout of the paper's Tables IV-VI.
// With a negative kind it renders all three tables.
func (s *Scheme) Markdown(k Kind) string {
	var b strings.Builder
	kinds := []Kind{k}
	if k < 0 {
		kinds = Kinds
	}
	for _, kind := range kinds {
		fmt.Fprintf(&b, "## %s classification\n\n", titleWord(kind.Name()))
		b.WriteString("| Descriptor | Description |\n|---|---|\n")
		for _, cl := range s.Classes(kind) {
			fmt.Fprintf(&b, "| **%s** | *%s* |\n", cl.ID, cl.Description)
			for _, catID := range s.CategoriesOf(cl.ID) {
				cat, _ := s.Category(catID)
				fmt.Fprintf(&b, "| &nbsp;&nbsp;`_%s` | %s |\n", cat.Suffix, cat.Description)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func titleWord(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
