package taxonomy

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBaseCounts(t *testing.T) {
	s := Base()
	// The paper defines 60 abstract categories in total.
	if got := s.NumCategories(-1); got != 60 {
		t.Fatalf("total abstract categories = %d, want 60", got)
	}
	cases := []struct {
		kind       Kind
		classes    int
		categories int
	}{
		{Trigger, 8, 34},
		{Context, 3, 10},
		{Effect, 4, 16},
	}
	for _, c := range cases {
		if got := s.NumClasses(c.kind); got != c.classes {
			t.Errorf("%s classes = %d, want %d", c.kind.Name(), got, c.classes)
		}
		if got := s.NumCategories(c.kind); got != c.categories {
			t.Errorf("%s categories = %d, want %d", c.kind.Name(), got, c.categories)
		}
	}
}

func TestBaseWellFormed(t *testing.T) {
	s := Base()
	for _, c := range s.AllClasses() {
		if !strings.HasPrefix(c.ID, c.Kind.String()+"_") {
			t.Errorf("class %s: prefix does not match kind %s", c.ID, c.Kind)
		}
		if c.Description == "" {
			t.Errorf("class %s: empty description", c.ID)
		}
		if len(s.CategoriesOf(c.ID)) == 0 {
			t.Errorf("class %s: no abstract categories", c.ID)
		}
	}
	for _, cat := range s.AllCategories() {
		cl, ok := s.Class(cat.Class)
		if !ok {
			t.Errorf("category %s: unknown class %s", cat.ID, cat.Class)
			continue
		}
		if cl.Kind != cat.Kind {
			t.Errorf("category %s: kind %v differs from class kind %v", cat.ID, cat.Kind, cl.Kind)
		}
		if cat.ID != cat.Class+"_"+cat.Suffix {
			t.Errorf("category %s: ID is not class+suffix", cat.ID)
		}
		if cat.Description == "" {
			t.Errorf("category %s: empty description", cat.ID)
		}
	}
}

func TestKnownDescriptors(t *testing.T) {
	s := Base()
	// Spot-check descriptors used throughout the paper.
	known := []string{
		"Trg_CFG_wrg", "Trg_POW_tht", "Trg_POW_pwc", "Trg_EXT_rst",
		"Trg_EXT_pci", "Trg_FEA_dbg", "Trg_PRV_vmt", "Trg_FEA_fpu",
		"Ctx_PRV_vmg", "Ctx_PRV_rea", "Ctx_PHY_tmp",
		"Eff_CRP_reg", "Eff_HNG_hng", "Eff_HNG_unp", "Eff_FLT_fsp",
		"Eff_CRP_prf", "Eff_FLT_mca",
	}
	for _, id := range known {
		if _, ok := s.Category(id); !ok {
			t.Errorf("missing abstract category %s", id)
		}
	}
	for _, id := range []string{"Trg_MBR", "Trg_MOP", "Trg_FLT", "Trg_PRV",
		"Trg_CFG", "Trg_POW", "Trg_EXT", "Trg_FEA",
		"Ctx_PRV", "Ctx_FEA", "Ctx_PHY",
		"Eff_HNG", "Eff_FLT", "Eff_CRP", "Eff_EXT"} {
		if _, ok := s.Class(id); !ok {
			t.Errorf("missing class %s", id)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in        string
		kind      Kind
		classID   string
		catID     string
		shouldErr bool
	}{
		{"Trg_EXT_rst", Trigger, "Trg_EXT", "Trg_EXT_rst", false},
		{"trg_ext_RST", Trigger, "Trg_EXT", "Trg_EXT_rst", false},
		{"Eff_CRP", Effect, "Eff_CRP", "", false},
		{"Ctx_PRV_vmg", Context, "Ctx_PRV", "Ctx_PRV_vmg", false},
		{"bogus", 0, "", "", true},
		{"Xyz_ABC_def", 0, "", "", true},
		{"Trg", 0, "", "", true},
		{"Trg_", 0, "", "", true},
		{"Trg_EXT_", 0, "", "", true},
		{"Trg_EXT_rst_extra", 0, "", "", true},
	}
	for _, c := range cases {
		kind, classID, catID, err := Parse(c.in)
		if c.shouldErr {
			if err == nil {
				t.Errorf("Parse(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if kind != c.kind || classID != c.classID || catID != c.catID {
			t.Errorf("Parse(%q) = (%v,%q,%q), want (%v,%q,%q)",
				c.in, kind, classID, catID, c.kind, c.classID, c.catID)
		}
	}
}

func TestValidate(t *testing.T) {
	s := Base()
	if got, err := s.Validate("trg_pow_PWC"); err != nil || got != "Trg_POW_pwc" {
		t.Errorf("Validate canonicalization = (%q,%v), want (Trg_POW_pwc,nil)", got, err)
	}
	if got, err := s.Validate("eff_hng"); err != nil || got != "Eff_HNG" {
		t.Errorf("Validate class = (%q,%v), want (Eff_HNG,nil)", got, err)
	}
	if _, err := s.Validate("Trg_POW_xxx"); err == nil {
		t.Error("Validate accepted unknown category")
	}
	if _, err := s.Validate("Trg_XXX"); err == nil {
		t.Error("Validate accepted unknown class")
	}
}

func TestClassOf(t *testing.T) {
	s := Base()
	if got := s.ClassOf("Trg_MOP_spe"); got != "Trg_MOP" {
		t.Errorf("ClassOf(Trg_MOP_spe) = %q", got)
	}
	if got := s.ClassOf("nonsense"); got != "" {
		t.Errorf("ClassOf(nonsense) = %q, want empty", got)
	}
}

func TestCategoriesOfIsCopy(t *testing.T) {
	s := Base()
	a := s.CategoriesOf("Trg_EXT")
	if len(a) != 6 {
		t.Fatalf("Trg_EXT has %d categories, want 6", len(a))
	}
	a[0] = "mutated"
	b := s.CategoriesOf("Trg_EXT")
	if b[0] == "mutated" {
		t.Error("CategoriesOf returned shared backing array")
	}
}

func TestRegistryExtension(t *testing.T) {
	r := NewRegistry()
	if err := r.AddClass(Trigger, "VEC", "related to vector extensions"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddCategory("Trg_VEC", "sve", "an SVE instruction interaction"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddCategory("Trg_EXT", "cxl", "an interaction with CXL"); err != nil {
		t.Fatal(err)
	}
	s := r.Scheme()
	if _, ok := s.Category("Trg_VEC_sve"); !ok {
		t.Error("extended category Trg_VEC_sve missing")
	}
	if _, ok := s.Category("Trg_EXT_cxl"); !ok {
		t.Error("extended category Trg_EXT_cxl missing")
	}
	if got := s.NumCategories(-1); got != 62 {
		t.Errorf("extended scheme has %d categories, want 62", got)
	}
	// Base scheme must be unaffected by extension.
	if _, ok := Base().Category("Trg_VEC_sve"); ok {
		t.Error("registry extension leaked into Base scheme")
	}
}

func TestRegistryRejections(t *testing.T) {
	r := NewRegistry()
	if err := r.AddClass(Trigger, "EXT", "dup"); err == nil {
		t.Error("AddClass accepted duplicate class")
	}
	if err := r.AddClass(Trigger, "bad", "lower-case"); err == nil {
		t.Error("AddClass accepted lower-case suffix")
	}
	if err := r.AddClass(Trigger, "X", "too short"); err == nil {
		t.Error("AddClass accepted 1-char suffix")
	}
	if err := r.AddCategory("Trg_EXT", "rst", "dup"); err == nil {
		t.Error("AddCategory accepted duplicate category")
	}
	if err := r.AddCategory("Trg_NOPE", "abc", "missing class"); err == nil {
		t.Error("AddCategory accepted unknown class")
	}
	if err := r.AddCategory("Trg_EXT", "BAD", "upper-case"); err == nil {
		t.Error("AddCategory accepted upper-case suffix")
	}
}

func TestSortCategoryIDs(t *testing.T) {
	s := Base()
	ids := []string{"Eff_CRP_reg", "Trg_MBR_cbr", "zzz_unknown", "Ctx_PRV_boo", "aaa_unknown"}
	s.SortCategoryIDs(ids)
	want := []string{"Trg_MBR_cbr", "Ctx_PRV_boo", "Eff_CRP_reg", "aaa_unknown", "zzz_unknown"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted[%d] = %q, want %q (full: %v)", i, ids[i], want[i], ids)
		}
	}
}

// Property: every valid descriptor round-trips through Parse and Validate.
func TestPropertyDescriptorRoundTrip(t *testing.T) {
	s := Base()
	cats := s.AllCategories()
	f := func(idx uint) bool {
		cat := cats[idx%uint(len(cats))]
		got, err := s.Validate(cat.ID)
		if err != nil || got != cat.ID {
			return false
		}
		// Lower-casing the whole descriptor must still canonicalize.
		got, err = s.Validate(strings.ToLower(cat.ID))
		return err == nil && got == cat.ID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SortCategoryIDs is idempotent and a permutation.
func TestPropertySortIdempotent(t *testing.T) {
	s := Base()
	all := s.CategoryIDs(-1)
	f := func(perm []uint8) bool {
		// Build an arbitrary multiset of category IDs from the seed bytes.
		ids := make([]string, 0, len(perm))
		for _, p := range perm {
			ids = append(ids, all[int(p)%len(all)])
		}
		once := append([]string(nil), ids...)
		s.SortCategoryIDs(once)
		twice := append([]string(nil), once...)
		s.SortCategoryIDs(twice)
		if len(once) != len(ids) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		// Permutation check via counting.
		count := map[string]int{}
		for _, id := range ids {
			count[id]++
		}
		for _, id := range once {
			count[id]--
		}
		for _, v := range count {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarkdownRendering(t *testing.T) {
	s := Base()
	md := s.Markdown(Trigger)
	for _, want := range []string{"## Trigger classification", "**Trg_EXT**", "`_rst`", "cold or warm reset"} {
		if !strings.Contains(md, want) {
			t.Errorf("trigger markdown missing %q", want)
		}
	}
	if strings.Contains(md, "Ctx_") {
		t.Error("trigger markdown contains contexts")
	}
	all := s.Markdown(-1)
	for _, want := range []string{"## Trigger classification", "## Context classification", "## Effect classification"} {
		if !strings.Contains(all, want) {
			t.Errorf("full markdown missing %q", want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Trigger.String() != "Trg" || Context.String() != "Ctx" || Effect.String() != "Eff" {
		t.Error("kind prefixes wrong")
	}
	if Trigger.Name() != "trigger" || Context.Name() != "context" || Effect.Name() != "effect" {
		t.Error("kind names wrong")
	}
	if k, err := ParseKind("TRG"); err != nil || k != Trigger {
		t.Error("ParseKind(TRG) failed")
	}
	if _, err := ParseKind("zzz"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}
