// Package match implements a multi-pattern matching kernel: given a set
// of regular expressions, it extracts a required literal from each
// pattern at build time, compiles all literals into one Aho-Corasick
// automaton, and answers "which patterns may match this text?" with a
// single scan. Candidates are then confirmed by the real regex engine,
// so the kernel's confirmed-match set is always identical to running
// every pattern — the automaton only prunes patterns that provably
// cannot match. Patterns with no extractable literal stay on an
// always-confirm slow path.
//
// The kernel exists for the classify package's rule engine (Section V-A
// of the RemembERR paper), where ~200 case-insensitive patterns are
// evaluated against every clause of every erratum: most clauses match
// nothing, and the automaton proves that without running a single
// regex.
package match

import (
	"strings"
	"unicode"
)

// foldRune maps a rune to the canonical representative of its simple
// case-folding orbit — the same orbit Go's regexp engine uses for (?i)
// matching. Two runes are (?i)-equivalent exactly when they fold to the
// same representative, so a case-insensitive literal occurs in a text
// iff the folded literal occurs in the folded text. We pick the
// lowercase ASCII member of the orbit when there is one (so folding is
// the identity on typical lowercase English text and Fold usually
// avoids allocating), and the numerically smallest member otherwise.
func foldRune(r rune) rune {
	// Fast path: ASCII without an exotic fold orbit. 'k' and 's' fold
	// with U+212A (Kelvin sign) and U+017F (long s), but both orbits
	// still canonicalize to the ASCII lowercase letter, so plain ASCII
	// lowering is correct for all ASCII input.
	if r < 0x80 {
		if 'A' <= r && r <= 'Z' {
			return r + ('a' - 'A')
		}
		return r
	}
	min := r
	for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
		if f < min {
			min = f
		}
	}
	if 'A' <= min && min <= 'Z' {
		return min + ('a' - 'A')
	}
	return min
}

// Fold canonicalizes a string under simple case folding. It returns the
// input string unchanged (no allocation) when no rune needs folding,
// which is the common case for the lowercase clause text the classify
// engine scans.
func Fold(s string) string {
	return strings.Map(foldRune, s)
}
