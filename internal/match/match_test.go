package match

import (
	"math/rand"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

func TestFoldASCII(t *testing.T) {
	if got := Fold("Cache Line BOUNDARY"); got != "cache line boundary" {
		t.Errorf("Fold = %q", got)
	}
	// Unchanged input must come back without modification.
	s := "already folded text 0x1f"
	if got := Fold(s); got != s {
		t.Errorf("Fold(%q) = %q", s, got)
	}
}

// TestFoldMatchesRegexpSemantics is the load-bearing property: two
// strings fold equal iff Go's (?i) regex treats them as equal literals.
// The Kelvin sign and long s are the classic traps — both match ASCII
// letters under (?i) but survive strings.ToLower unchanged or map
// differently.
func TestFoldMatchesRegexpSemantics(t *testing.T) {
	cases := []struct{ pattern, text string }{
		{"kelvin", "Kelvin"},       // U+212A KELVIN SIGN folds with k
		{"straddles", "ſtraddles"}, // U+017F LONG S folds with s
		{"hang", "HANG"},
		{"schedule", "ſchedule"},
	}
	for _, c := range cases {
		re := regexp.MustCompile(`(?i)` + c.pattern)
		if !re.MatchString(c.text) {
			t.Fatalf("(?i)%s should match %q", c.pattern, c.text)
		}
		if !strings.Contains(Fold(c.text), Fold(c.pattern)) {
			t.Errorf("Fold(%q)=%q does not contain Fold(%q)=%q, but the regex matches",
				c.text, Fold(c.text), c.pattern, Fold(c.pattern))
		}
	}
}

func TestRequiredLiterals(t *testing.T) {
	cases := []struct {
		pattern string
		want    []string
		ok      bool
	}{
		{`(?i)cache line boundary`, []string{"cache line boundary"}, true},
		{`(?i)\bstraddles\b`, []string{"straddles"}, true},
		{`(?i)\bfaults?\b`, []string{"fault"}, true},
		{`(?i)\bspeculat`, []string{"speculat"}, true},
		{`(?i)complex set of .*conditions|highly specific`, []string{"complex set of ", "highly specific"}, true},
		{`(?i)\bx\b`, nil, false}, // literal too short
		{`(?i)[0-9]+ errors`, []string{" errors"}, true},
		{`(?i)(abc)+`, []string{"abc"}, true},
		{`(?i)(abc)*def`, []string{"def"}, true},
		{`(?i)(abc)?`, nil, false}, // nothing required
		{`[A-Za-z0-9_]+`, nil, false},
	}
	for _, c := range cases {
		got, ok := requiredLiterals(c.pattern, DefaultMinLiteral)
		if ok != c.ok {
			t.Errorf("requiredLiterals(%q) ok = %v, want %v", c.pattern, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("requiredLiterals(%q) = %q, want %q", c.pattern, got, c.want)
		}
	}
}

// requiredLiterals alternation wider than maxAlternatives falls back to
// the slow path instead of failing.
func TestAlternationFanoutCap(t *testing.T) {
	// Branches share no prefix, so the parser cannot factor them into a
	// single required literal.
	var branches []string
	for i := 0; i < maxAlternatives+1; i++ {
		branches = append(branches, strings.Repeat(string(rune('a'+i)), 4))
	}
	if _, ok := requiredLiterals("(?i)"+strings.Join(branches, "|"), DefaultMinLiteral); ok {
		t.Error("fanout above the cap should reject literal extraction")
	}
}

func TestAutomatonSuffixOutputs(t *testing.T) {
	// Classic he/she/his/hers overlap: "ushers" contains she, he, hers.
	k, err := Compile([]string{`he`, `she`, `his`, `hers`}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := k.Match("ushers", nil)
	if want := []int{0, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Match(ushers) = %v, want %v", got, want)
	}
}

func TestKernelAlwaysRunPath(t *testing.T) {
	k, err := Compile([]string{`(?i)\bx\b`, `(?i)cache line`}, DefaultMinLiteral)
	if err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.AlwaysRun != 1 || st.Prefiltered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := k.Match("an x marks the spot", nil); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Match = %v", got)
	}
	if got := k.Match("a CACHE line boundary", nil); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Match = %v", got)
	}
	if got := k.Match("nothing here", nil); len(got) != 0 {
		t.Errorf("Match = %v, want empty", got)
	}
}

func TestCompileRejectsBadPattern(t *testing.T) {
	if _, err := Compile([]string{`(`}, 0); err == nil {
		t.Error("Compile should reject invalid patterns")
	}
	if _, err := New(nil, []string{"x"}, 0); err == nil {
		t.Error("New should reject mismatched lengths")
	}
}

// TestKernelEqualsNaiveRandomized is the kernel's own differential
// test: on random texts assembled from pattern fragments and noise,
// Match must return exactly the ids a full regex loop returns.
func TestKernelEqualsNaiveRandomized(t *testing.T) {
	sources := []string{
		`(?i)cache line boundary`,
		`(?i)\bstraddles\b`,
		`(?i)page boundary`,
		`(?i)\bfaults?\b`,
		`(?i)machine check exception is being delivered`,
		`(?i)\bmca\b`,
		`(?i)c6 power state|package c-state`,
		`(?i)\bqpi\b`,
		`(?i)\bx\b`, // always-run
		`(?i)read-modify-write`,
	}
	k, err := Compile(sources, DefaultMinLiteral)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{
		"cache", "line", "boundary", "straddles", "a", "page", "fault", "faults",
		"MCA", "machine", "check", "x", "c6", "power", "state", "QPI",
		"read-modify-write", "noise", "the", "K", "ſtraddles", "Straddles",
	}
	rng := rand.New(rand.NewSource(42))
	var buf []int
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(12)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		text := strings.Join(parts, " ")
		var want []int
		for id, src := range sources {
			if regexp.MustCompile(src).MatchString(text) {
				want = append(want, id)
			}
		}
		buf = k.Match(text, buf)
		if !reflect.DeepEqual(append([]int(nil), buf...), want) {
			t.Fatalf("text %q: kernel %v, naive %v", text, buf, want)
		}
	}
}

func TestKernelConcurrent(t *testing.T) {
	k, err := Compile([]string{`(?i)cache line`, `(?i)\bhang\b`, `(?i)page boundary`}, 0)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"the processor may hang",
		"an access that straddles a cache line",
		"crosses a page boundary",
		"nothing relevant",
	}
	want := make([][]int, len(texts))
	for i, s := range texts {
		want[i] = k.Match(s, nil)
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- true }()
			var buf []int
			for i := 0; i < 200; i++ {
				j := i % len(texts)
				buf = k.Match(texts[j], buf)
				if !reflect.DeepEqual(append([]int(nil), buf...), wantOrNil(want[j])) {
					t.Errorf("concurrent mismatch on %q", texts[j])
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func wantOrNil(v []int) []int {
	if len(v) == 0 {
		return nil
	}
	return v
}
