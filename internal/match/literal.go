package match

import (
	"regexp/syntax"
	"unicode/utf8"
)

// maxAlternatives bounds the number of literals one pattern may
// contribute: a pattern whose alternation fans out wider than this goes
// to the always-confirm path instead of bloating the automaton.
const maxAlternatives = 16

// requiredLiterals extracts a set of folded literals such that every
// match of the pattern is guaranteed to contain at least one of them.
// minRunes is the minimum useful literal length; shorter literals are
// rejected as unselective. ok is false when no such set exists (the
// pattern must then always be confirmed).
func requiredLiterals(pattern string, minRunes int) (lits []string, ok bool) {
	re, err := syntax.Parse(pattern, syntax.Perl)
	if err != nil {
		return nil, false
	}
	return literalAlts(re, minRunes)
}

// literalAlts walks the parse tree. The invariant is soundness: when ok
// is true, any text matched by re contains at least one returned
// literal in folded form. False negatives (ok=false for a pattern that
// does have a required literal) only cost performance, never
// correctness.
func literalAlts(re *syntax.Regexp, minRunes int) ([]string, bool) {
	switch re.Op {
	case syntax.OpLiteral:
		if len(re.Rune) < minRunes {
			return nil, false
		}
		// Fold the literal with the same canonicalization Fold applies
		// to the scanned text; this is exact for (?i) patterns (same
		// fold orbits) and sound for case-sensitive ones (folding can
		// only add candidate positions, which the regex then rejects).
		runes := make([]rune, len(re.Rune))
		for i, r := range re.Rune {
			runes[i] = foldRune(r)
		}
		return []string{string(runes)}, true
	case syntax.OpConcat:
		// Any required literal of any component is required for the
		// whole concatenation; pick the most selective component (the
		// one whose shortest alternative is longest).
		var best []string
		for _, sub := range re.Sub {
			lits, ok := literalAlts(sub, minRunes)
			if ok && (best == nil || shortest(lits) > shortest(best)) {
				best = lits
			}
		}
		return best, best != nil
	case syntax.OpAlternate:
		// Every branch must contribute, since a match may come from any
		// branch.
		var all []string
		for _, sub := range re.Sub {
			lits, ok := literalAlts(sub, minRunes)
			if !ok {
				return nil, false
			}
			all = append(all, lits...)
			if len(all) > maxAlternatives {
				return nil, false
			}
		}
		return all, true
	case syntax.OpCapture:
		return literalAlts(re.Sub[0], minRunes)
	case syntax.OpPlus:
		// x+ contains at least one x.
		return literalAlts(re.Sub[0], minRunes)
	case syntax.OpRepeat:
		if re.Min >= 1 {
			return literalAlts(re.Sub[0], minRunes)
		}
		return nil, false
	default:
		// Star, quest, char classes, any-char, anchors, word
		// boundaries: nothing is guaranteed to occur.
		return nil, false
	}
}

func shortest(lits []string) int {
	min := -1
	for _, l := range lits {
		if n := utf8.RuneCountInString(l); min < 0 || n < min {
			min = n
		}
	}
	return min
}
