package match

// automaton is a byte-level Aho-Corasick automaton with the goto
// function fully resolved: delta[state][b] is always a valid next
// state, so the scan loop is one table lookup per input byte with no
// failure-link chasing. out[state] lists the pattern ids of every
// literal ending at state (including those reached via suffix links,
// merged at build time). The automaton is immutable after build and
// safe for concurrent scans.
type automaton struct {
	delta [][256]int32
	out   [][]int32
}

// acLiteral associates one folded literal with the pattern it gates.
// The same pattern may register several literals (one per alternation
// branch); the same literal may gate several patterns.
type acLiteral struct {
	text string
	id   int32
}

func buildAutomaton(lits []acLiteral) *automaton {
	a := &automaton{}
	newState := func() int32 {
		var row [256]int32
		for i := range row {
			row[i] = -1
		}
		a.delta = append(a.delta, row)
		a.out = append(a.out, nil)
		return int32(len(a.delta) - 1)
	}
	root := newState()

	// Trie construction.
	for _, lit := range lits {
		s := root
		for i := 0; i < len(lit.text); i++ {
			b := lit.text[i]
			if a.delta[s][b] < 0 {
				a.delta[s][b] = newState()
			}
			s = a.delta[s][b]
		}
		a.out[s] = append(a.out[s], lit.id)
	}

	// BFS: compute failure links, merge suffix outputs, and resolve
	// missing edges so delta becomes total.
	fail := make([]int32, len(a.delta))
	var queue []int32
	for b := 0; b < 256; b++ {
		if v := a.delta[root][b]; v >= 0 {
			fail[v] = root
			queue = append(queue, v)
		} else {
			a.delta[root][b] = root
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		a.out[u] = append(a.out[u], a.out[fail[u]]...)
		for b := 0; b < 256; b++ {
			if v := a.delta[u][b]; v >= 0 {
				fail[v] = a.delta[fail[u]][b]
				queue = append(queue, v)
			} else {
				a.delta[u][b] = a.delta[fail[u]][b]
			}
		}
	}
	return a
}

// scan walks the folded text once and appends to dst the id of every
// pattern whose literal occurs, deduplicated via the caller's scratch.
func (a *automaton) scan(text string, dst []int, sc *scratch) []int {
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = a.delta[s][text[i]]
		for _, id := range a.out[s] {
			if sc.seen[id] != sc.epoch {
				sc.seen[id] = sc.epoch
				dst = append(dst, int(id))
			}
		}
	}
	return dst
}
