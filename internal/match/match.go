package match

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// DefaultMinLiteral is the minimum folded-literal length (in runes)
// worth indexing; shorter required literals are too unselective and the
// pattern goes to the always-confirm path instead.
const DefaultMinLiteral = 3

// Kernel is a compiled multi-pattern matcher over a fixed set of
// regular expressions, identified by their index in the slice passed to
// New. It is immutable after construction and safe for concurrent use.
type Kernel struct {
	regexes []*regexp.Regexp
	// always lists pattern ids with no extractable required literal;
	// they are candidates for every text. Sorted ascending.
	always []int
	ac     *automaton // nil when no pattern contributed a literal
	stats  Stats
	pool   sync.Pool // *scratch
}

// Stats describes how the kernel partitioned its patterns.
type Stats struct {
	// Patterns is the total number of patterns.
	Patterns int
	// Prefiltered is the number of patterns gated by at least one
	// automaton literal.
	Prefiltered int
	// AlwaysRun is the number of patterns on the slow path.
	AlwaysRun int
	// Literals is the number of automaton literals (a pattern with
	// alternation contributes one per branch).
	Literals int
}

// scratch is the per-scan deduplication state, pooled across calls.
// seen is epoch-stamped so it never needs clearing between scans.
type scratch struct {
	seen  []uint32
	epoch uint32
}

// New builds a kernel over pre-compiled regexes. sources[i] must be the
// pattern source regexes[i] was compiled from; literal extraction works
// on the source so callers can share one compiled regex set between the
// kernel and their own slow path.
func New(regexes []*regexp.Regexp, sources []string, minLiteral int) (*Kernel, error) {
	if len(regexes) != len(sources) {
		return nil, fmt.Errorf("match: %d regexes for %d sources", len(regexes), len(sources))
	}
	if minLiteral <= 0 {
		minLiteral = DefaultMinLiteral
	}
	k := &Kernel{regexes: regexes}
	var lits []acLiteral
	for id, src := range sources {
		alts, ok := requiredLiterals(src, minLiteral)
		if !ok {
			k.always = append(k.always, id)
			continue
		}
		for _, l := range alts {
			lits = append(lits, acLiteral{text: l, id: int32(id)})
		}
	}
	if len(lits) > 0 {
		k.ac = buildAutomaton(lits)
	}
	k.stats = Stats{
		Patterns:    len(regexes),
		Prefiltered: len(regexes) - len(k.always),
		AlwaysRun:   len(k.always),
		Literals:    len(lits),
	}
	n := len(regexes)
	k.pool.New = func() any { return &scratch{seen: make([]uint32, n)} }
	return k, nil
}

// Compile builds a kernel from pattern sources, compiling each with
// regexp.Compile.
func Compile(sources []string, minLiteral int) (*Kernel, error) {
	regexes := make([]*regexp.Regexp, len(sources))
	for i, src := range sources {
		re, err := regexp.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("match: pattern %d: %w", i, err)
		}
		regexes[i] = re
	}
	return New(regexes, sources, minLiteral)
}

// Len returns the number of patterns.
func (k *Kernel) Len() int { return len(k.regexes) }

// Pattern returns the compiled regex of one pattern id.
func (k *Kernel) Pattern(id int) *regexp.Regexp { return k.regexes[id] }

// Stats returns the build-time partition of the pattern set.
func (k *Kernel) Stats() Stats { return k.stats }

// Candidates appends to dst the ids of every pattern that may match
// text — the always-run patterns plus those whose required literal
// occurs in the folded text — and returns the result sorted ascending
// without duplicates. The guarantee is one-sided: every pattern that
// matches text is in the candidate set, but a candidate need not match.
func (k *Kernel) Candidates(text string, dst []int) []int {
	dst = append(dst[:0], k.always...)
	if k.ac != nil {
		sc := k.pool.Get().(*scratch)
		sc.epoch++
		if sc.epoch == 0 { // wrapped: stamp values are stale, reset
			for i := range sc.seen {
				sc.seen[i] = 0
			}
			sc.epoch = 1
		}
		dst = k.ac.scan(Fold(text), dst, sc)
		k.pool.Put(sc)
	}
	sort.Ints(dst)
	return dst
}

// Match appends to dst the ids of every pattern that matches text,
// sorted ascending. It is the candidate scan followed by regex
// confirmation, and returns exactly the set a loop over all patterns
// would.
func (k *Kernel) Match(text string, dst []int) []int {
	cands := k.Candidates(text, dst)
	confirmed := cands[:0]
	for _, id := range cands {
		if k.regexes[id].MatchString(text) {
			confirmed = append(confirmed, id)
		}
	}
	return confirmed
}
