// Package analysis implements the corpus studies of Sections IV-B and
// V-B of the paper: workaround and fix breakdowns, trigger/context/
// effect frequencies, trigger-count histograms, pairwise trigger
// correlation, trigger-class evolution across generations, per-vendor
// class representation, and MSR observation-point frequencies.
//
// All studies operate on unique (deduplicated) errata, as in the paper,
// unless stated otherwise. Deduplication and annotation must have run.
package analysis

import (
	"sort"

	"repro/internal/core"
	"repro/internal/taxonomy"
)

// CategoryCount is a category with its number of unique errata.
type CategoryCount struct {
	Category string
	Count    int
}

// sortCounts orders descending by count, then by category for stability.
func sortCounts(m map[string]int) []CategoryCount {
	out := make([]CategoryCount, 0, len(m))
	for c, n := range m {
		out = append(out, CategoryCount{Category: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// FrequentCategories counts, per vendor, how many unique errata carry
// each abstract category of the given kind (Figures 10, 17 and 18).
func FrequentCategories(db *core.Database, k taxonomy.Kind) map[core.Vendor][]CategoryCount {
	out := make(map[core.Vendor][]CategoryCount)
	for _, v := range core.Vendors {
		counts := make(map[string]int)
		for _, e := range db.UniqueVendor(v) {
			for _, cat := range e.Ann.Categories(k, db.Scheme) {
				counts[cat]++
			}
		}
		out[v] = sortCounts(counts)
	}
	return out
}

// Workarounds counts unique errata per workaround category and vendor
// (Figure 6).
func Workarounds(db *core.Database) map[core.Vendor]map[core.WorkaroundCategory]int {
	out := make(map[core.Vendor]map[core.WorkaroundCategory]int)
	for _, v := range core.Vendors {
		m := make(map[core.WorkaroundCategory]int)
		for _, e := range db.UniqueVendor(v) {
			m[e.WorkaroundCat]++
		}
		out[v] = m
	}
	return out
}

// FixCount summarizes the fix statuses of one document (Figure 7).
type FixCount struct {
	DocKey  string
	Label   string
	Vendor  core.Vendor
	Fixed   int
	Planned int
	Unfixed int
}

// Total returns the document's entry count.
func (f FixCount) Total() int { return f.Fixed + f.Planned + f.Unfixed }

// Fixes counts fixed vs unfixed bugs per document (Figure 7; all
// entries, since fixing is per design).
func Fixes(db *core.Database) []FixCount {
	var out []FixCount
	for _, d := range db.Documents() {
		fc := FixCount{DocKey: d.Key, Label: d.Label, Vendor: d.Vendor}
		for _, e := range d.Errata {
			switch e.Fix {
			case core.FixDone:
				fc.Fixed++
			case core.FixPlanned:
				fc.Planned++
			default:
				fc.Unfixed++
			}
		}
		out = append(out, fc)
	}
	return out
}

// TriggerCounts is the Figure 11 histogram.
type TriggerCounts struct {
	// PerCount[n] is the number of unique errata requiring exactly n
	// triggers (n >= 1).
	PerCount map[int]int
	// Excluded is the number of errata with no clear or only trivial
	// triggers (the paper excludes 14.4%).
	Excluded int
	// Total is the number of unique errata considered.
	Total int
	// Complex counts errata mentioning a "complex set of conditions".
	Complex int
}

// AtLeastTwoFraction is the fraction of non-excluded errata requiring at
// least two combined triggers (the paper reports 49%).
func (t TriggerCounts) AtLeastTwoFraction() float64 {
	considered, multi := 0, 0
	for n, c := range t.PerCount {
		considered += c
		if n >= 2 {
			multi += c
		}
	}
	if considered == 0 {
		return 0
	}
	return float64(multi) / float64(considered)
}

// ExcludedFraction is Excluded/Total.
func (t TriggerCounts) ExcludedFraction() float64 {
	if t.Total == 0 {
		return 0
	}
	return float64(t.Excluded) / float64(t.Total)
}

// TriggerCountHistogram computes Figure 11 over unique errata of both
// vendors combined; pass a single vendor via vendors to restrict.
func TriggerCountHistogram(db *core.Database, vendors ...core.Vendor) TriggerCounts {
	if len(vendors) == 0 {
		vendors = core.Vendors
	}
	tc := TriggerCounts{PerCount: make(map[int]int)}
	for _, v := range vendors {
		for _, e := range db.UniqueVendor(v) {
			tc.Total++
			if e.Ann.ComplexConditions {
				tc.Complex++
			}
			n := len(e.Ann.Categories(taxonomy.Trigger, db.Scheme))
			if e.Ann.TrivialTrigger || n == 0 {
				tc.Excluded++
				continue
			}
			tc.PerCount[n]++
		}
	}
	return tc
}

// Correlation is the pairwise trigger cross-correlation of Figure 12.
type Correlation struct {
	// Categories lists the abstract triggers in scheme order.
	Categories []string
	// Counts[i][j] is the number of unique errata requiring at least
	// both Categories[i] and Categories[j] (diagonal: errata requiring
	// the category at all).
	Counts [][]int
	index  map[string]int
}

// Pair returns the count for a pair of categories.
func (c *Correlation) Pair(a, b string) int {
	i, oki := c.index[a]
	j, okj := c.index[b]
	if !oki || !okj {
		return 0
	}
	return c.Counts[i][j]
}

// TopPairs returns the n strongest off-diagonal pairs.
func (c *Correlation) TopPairs(n int) []struct {
	A, B  string
	Count int
} {
	type pair struct {
		A, B  string
		Count int
	}
	var ps []pair
	for i := range c.Categories {
		for j := i + 1; j < len(c.Categories); j++ {
			if c.Counts[i][j] > 0 {
				ps = append(ps, pair{A: c.Categories[i], B: c.Categories[j], Count: c.Counts[i][j]})
			}
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Count != ps[j].Count {
			return ps[i].Count > ps[j].Count
		}
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	if n > 0 && len(ps) > n {
		ps = ps[:n]
	}
	out := make([]struct {
		A, B  string
		Count int
	}, len(ps))
	for i, p := range ps {
		out[i] = struct {
			A, B  string
			Count int
		}{p.A, p.B, p.Count}
	}
	return out
}

// TriggerCorrelation computes Figure 12 over the unique errata of both
// vendors.
func TriggerCorrelation(db *core.Database) *Correlation {
	cats := db.Scheme.CategoryIDs(taxonomy.Trigger)
	c := &Correlation{
		Categories: cats,
		Counts:     make([][]int, len(cats)),
		index:      make(map[string]int, len(cats)),
	}
	for i, cat := range cats {
		c.Counts[i] = make([]int, len(cats))
		c.index[cat] = i
	}
	for _, v := range core.Vendors {
		for _, e := range db.UniqueVendor(v) {
			present := e.Ann.Categories(taxonomy.Trigger, db.Scheme)
			for x := 0; x < len(present); x++ {
				i := c.index[present[x]]
				c.Counts[i][i]++
				for y := x + 1; y < len(present); y++ {
					j := c.index[present[y]]
					c.Counts[i][j]++
					c.Counts[j][i]++
				}
			}
		}
	}
	return c
}

// GenerationClasses is one row of Figure 13: the trigger-class counts of
// one Intel generation.
type GenerationClasses struct {
	DocKey   string
	Label    string
	GenIndex int
	// Classes maps a trigger class to the number of unique-in-document
	// errata whose annotation requires a trigger of that class.
	Classes map[string]int
	// Errata is the number of distinct keys in the document.
	Errata int
}

// ClassesOverGenerations computes Figure 13: trigger classes per Intel
// document.
func ClassesOverGenerations(db *core.Database) []GenerationClasses {
	var out []GenerationClasses
	for _, d := range db.VendorDocuments(core.Intel) {
		gc := GenerationClasses{
			DocKey: d.Key, Label: d.Label, GenIndex: d.GenIndex,
			Classes: make(map[string]int),
		}
		seen := make(map[string]bool)
		for _, e := range d.Errata {
			if e.Key == "" || seen[e.Key] {
				continue
			}
			seen[e.Key] = true
			gc.Errata++
			for _, cl := range e.Ann.Classes(taxonomy.Trigger, db.Scheme) {
				gc.Classes[cl]++
			}
		}
		out = append(out, gc)
	}
	return out
}

// ClassShare is a class with its share of all items of its kind.
type ClassShare struct {
	Class string
	Count int
	Share float64
}

// ClassRepresentation computes, per vendor, the share of each class
// among all annotated items of the kind (Figure 14 for triggers): the
// total number of triggers over all unique errata, grouped by class.
func ClassRepresentation(db *core.Database, k taxonomy.Kind) map[core.Vendor][]ClassShare {
	out := make(map[core.Vendor][]ClassShare)
	for _, v := range core.Vendors {
		counts := make(map[string]int)
		total := 0
		for _, e := range db.UniqueVendor(v) {
			for _, cat := range e.Ann.Categories(k, db.Scheme) {
				cl := db.Scheme.ClassOf(cat)
				counts[cl]++
				total++
			}
		}
		var shares []ClassShare
		for _, cl := range db.Scheme.ClassIDs(k) {
			s := ClassShare{Class: cl, Count: counts[cl]}
			if total > 0 {
				s.Share = float64(counts[cl]) / float64(total)
			}
			shares = append(shares, s)
		}
		out[v] = shares
	}
	return out
}

// CategoryShare is an abstract category with its share within a class.
type CategoryShare struct {
	Category string
	Count    int
	Share    float64
}

// ClassBreakdown computes, per vendor, the relative representation of
// the abstract categories inside one class (Figures 15 and 16 for
// Trg_EXT and Trg_FEA).
func ClassBreakdown(db *core.Database, classID string) map[core.Vendor][]CategoryShare {
	kind, _, _, err := taxonomy.Parse(classID)
	if err != nil {
		return nil
	}
	catIDs := db.Scheme.CategoriesOf(classID)
	out := make(map[core.Vendor][]CategoryShare)
	for _, v := range core.Vendors {
		counts := make(map[string]int)
		total := 0
		for _, e := range db.UniqueVendor(v) {
			for _, cat := range e.Ann.Categories(kind, db.Scheme) {
				if db.Scheme.ClassOf(cat) == classID {
					counts[cat]++
					total++
				}
			}
		}
		var shares []CategoryShare
		for _, cat := range catIDs {
			s := CategoryShare{Category: cat, Count: counts[cat]}
			if total > 0 {
				s.Share = float64(counts[cat]) / float64(total)
			}
			shares = append(shares, s)
		}
		out[v] = shares
	}
	return out
}

// MSRCount is one bar of Figure 19.
type MSRCount struct {
	MSR   string
	Count int
	// Share is the fraction of the vendor's unique errata naming this
	// register as an observation point.
	Share float64
}

// MSRFrequency computes Figure 19: the most frequent MSRs containing
// observable effects, per vendor, as a fraction of unique errata.
func MSRFrequency(db *core.Database) map[core.Vendor][]MSRCount {
	out := make(map[core.Vendor][]MSRCount)
	for _, v := range core.Vendors {
		unique := db.UniqueVendor(v)
		counts := make(map[string]int)
		for _, e := range unique {
			seen := make(map[string]bool)
			for _, m := range e.Ann.MSRs {
				if !seen[m] {
					seen[m] = true
					counts[m]++
				}
			}
		}
		var list []MSRCount
		for _, cc := range sortCounts(counts) {
			mc := MSRCount{MSR: cc.Category, Count: cc.Count}
			if len(unique) > 0 {
				mc.Share = float64(cc.Count) / float64(len(unique))
			}
			list = append(list, mc)
		}
		out[v] = list
	}
	return out
}
