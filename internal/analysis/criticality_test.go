package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/taxonomy"
)

func TestGrade(t *testing.T) {
	scheme := taxonomy.Base()
	mk := func(effects ...string) *core.Erratum {
		e := &core.Erratum{}
		for _, c := range effects {
			e.Ann.Effects = append(e.Ann.Effects, core.Item{Category: c})
		}
		return e
	}
	cases := []struct {
		effects []string
		want    Severity
	}{
		{[]string{"Eff_HNG_hng"}, SeverityFatal},
		{[]string{"Eff_CRP_prf"}, SeverityCorrupting},
		{[]string{"Eff_FLT_fsp"}, SeverityCorrupting},
		{[]string{"Eff_EXT_usb"}, SeverityDegrading},
		{[]string{"Eff_EXT_usb", "Eff_HNG_crh"}, SeverityFatal}, // conservative max
		{nil, SeverityUnknown},
	}
	for _, c := range cases {
		if got := Grade(mk(c.effects...), scheme); got != c.want {
			t.Errorf("Grade(%v) = %v, want %v", c.effects, got, c.want)
		}
	}
}

func TestSeverityStrings(t *testing.T) {
	for s, want := range map[Severity]string{
		SeverityUnknown: "Unknown", SeverityDegrading: "Degrading",
		SeverityCorrupting: "Corrupting", SeverityFatal: "Fatal",
	} {
		if s.String() != want {
			t.Errorf("severity %d = %q", s, s.String())
		}
	}
}

func TestSeveritiesAndMostCritical(t *testing.T) {
	db := buildDB(t)
	breakdowns := Severities(db)
	if len(breakdowns) != 2 {
		t.Fatalf("breakdowns = %d", len(breakdowns))
	}
	intel := breakdowns[0]
	if intel.Vendor != core.Intel {
		t.Fatalf("order wrong: %v", intel.Vendor)
	}
	// buildDB: K1 has Eff_CRP_reg (corrupting), K2 Eff_HNG_hng (fatal),
	// K3 Eff_HNG_unp (fatal).
	if intel.Counts[SeverityFatal] != 2 || intel.Counts[SeverityCorrupting] != 1 {
		t.Errorf("intel counts = %v", intel.Counts)
	}
	if intel.Total != 3 {
		t.Errorf("intel total = %d", intel.Total)
	}
	// AMD: one fatal, guest-reachable.
	amd := breakdowns[1]
	if amd.Counts[SeverityFatal] != 1 || amd.GuestReachableFatal != 1 {
		t.Errorf("amd breakdown = %+v", amd)
	}

	top := MostCritical(db, core.Intel, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if Grade(top[0], db.Scheme) != SeverityFatal {
		t.Errorf("top severity = %v", Grade(top[0], db.Scheme))
	}
	all := MostCritical(db, core.Intel, 0)
	if len(all) != 3 {
		t.Errorf("unlimited top = %d", len(all))
	}
}
