package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/taxonomy"
)

// buildDB builds a small annotated database with known statistics.
func buildDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	ann := func(trgs, ctxs, effs []string, msrs ...string) core.Annotation {
		var a core.Annotation
		for _, c := range trgs {
			a.Triggers = append(a.Triggers, core.Item{Category: c})
		}
		for _, c := range ctxs {
			a.Contexts = append(a.Contexts, core.Item{Category: c})
		}
		for _, c := range effs {
			a.Effects = append(a.Effects, core.Item{Category: c})
		}
		a.MSRs = msrs
		return a
	}
	intel := &core.Document{
		Key: "intel-06", Vendor: core.Intel, Label: "6", Order: 0, GenIndex: 6,
		Errata: []*core.Erratum{
			{DocKey: "intel-06", ID: "S1", Seq: 1, Key: "K1",
				Ann:           ann([]string{"Trg_CFG_wrg", "Trg_POW_tht"}, []string{"Ctx_PRV_vmg"}, []string{"Eff_CRP_reg"}, "MCx_STATUS"),
				WorkaroundCat: core.WorkaroundNone, Fix: core.FixNone},
			{DocKey: "intel-06", ID: "S2", Seq: 2, Key: "K2",
				Ann:           ann([]string{"Trg_POW_pwc"}, nil, []string{"Eff_HNG_hng"}),
				WorkaroundCat: core.WorkaroundBIOS, Fix: core.FixDone},
			{DocKey: "intel-06", ID: "S3", Seq: 3, Key: "K3",
				Ann:           func() core.Annotation { a := ann(nil, nil, []string{"Eff_HNG_unp"}); a.TrivialTrigger = true; return a }(),
				WorkaroundCat: core.WorkaroundSoftware, Fix: core.FixNone},
		},
	}
	intel2 := &core.Document{
		Key: "intel-07", Vendor: core.Intel, Label: "7/8", Order: 1, GenIndex: 7,
		Errata: []*core.Erratum{
			// Duplicate of K1: must not be double-counted in unique studies.
			{DocKey: "intel-07", ID: "T1", Seq: 1, Key: "K1",
				Ann:           ann([]string{"Trg_CFG_wrg", "Trg_POW_tht"}, []string{"Ctx_PRV_vmg"}, []string{"Eff_CRP_reg"}, "MCx_STATUS"),
				WorkaroundCat: core.WorkaroundNone, Fix: core.FixPlanned},
		},
	}
	amd := &core.Document{
		Key: "amd-19h-00", Vendor: core.AMD, Label: "19h 00-0F", Order: 0,
		Errata: []*core.Erratum{
			{DocKey: "amd-19h-00", ID: "1001", Seq: 1, Key: "A-1001",
				Ann:           ann([]string{"Trg_EXT_bus"}, []string{"Ctx_PRV_vmg"}, []string{"Eff_HNG_hng"}),
				WorkaroundCat: core.WorkaroundNone, Fix: core.FixNone},
		},
	}
	for _, d := range []*core.Document{intel, intel2, amd} {
		if err := db.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestFrequentCategories(t *testing.T) {
	db := buildDB(t)
	freq := FrequentCategories(db, taxonomy.Trigger)
	intel := freq[core.Intel]
	if len(intel) != 3 {
		t.Fatalf("intel triggers = %v", intel)
	}
	counts := map[string]int{}
	for _, cc := range intel {
		counts[cc.Category] = cc.Count
	}
	// K1 counted once despite the duplicate in intel-07.
	if counts["Trg_CFG_wrg"] != 1 || counts["Trg_POW_tht"] != 1 || counts["Trg_POW_pwc"] != 1 {
		t.Errorf("intel counts = %v", counts)
	}
	if len(freq[core.AMD]) != 1 || freq[core.AMD][0].Category != "Trg_EXT_bus" {
		t.Errorf("amd = %v", freq[core.AMD])
	}
	ctx := FrequentCategories(db, taxonomy.Context)
	if ctx[core.Intel][0].Category != "Ctx_PRV_vmg" || ctx[core.Intel][0].Count != 1 {
		t.Errorf("contexts = %v", ctx[core.Intel])
	}
}

func TestWorkarounds(t *testing.T) {
	db := buildDB(t)
	w := Workarounds(db)
	if w[core.Intel][core.WorkaroundNone] != 1 || w[core.Intel][core.WorkaroundBIOS] != 1 ||
		w[core.Intel][core.WorkaroundSoftware] != 1 {
		t.Errorf("intel workarounds = %v", w[core.Intel])
	}
	if w[core.AMD][core.WorkaroundNone] != 1 {
		t.Errorf("amd workarounds = %v", w[core.AMD])
	}
}

func TestFixes(t *testing.T) {
	db := buildDB(t)
	fixes := Fixes(db)
	if len(fixes) != 3 {
		t.Fatalf("fixes = %v", fixes)
	}
	byDoc := map[string]FixCount{}
	for _, f := range fixes {
		byDoc[f.DocKey] = f
	}
	f6 := byDoc["intel-06"]
	if f6.Fixed != 1 || f6.Unfixed != 2 || f6.Planned != 0 || f6.Total() != 3 {
		t.Errorf("intel-06 fixes = %+v", f6)
	}
	f7 := byDoc["intel-07"]
	if f7.Planned != 1 {
		t.Errorf("intel-07 fixes = %+v", f7)
	}
}

func TestTriggerCountHistogram(t *testing.T) {
	db := buildDB(t)
	tc := TriggerCountHistogram(db)
	if tc.Total != 4 {
		t.Errorf("total = %d, want 4 unique errata", tc.Total)
	}
	if tc.Excluded != 1 {
		t.Errorf("excluded = %d, want 1 (the trivial erratum)", tc.Excluded)
	}
	if tc.PerCount[1] != 2 || tc.PerCount[2] != 1 {
		t.Errorf("histogram = %v", tc.PerCount)
	}
	if f := tc.AtLeastTwoFraction(); math.Abs(f-1.0/3.0) > 1e-9 {
		t.Errorf("at-least-two = %v, want 1/3", f)
	}
	if f := tc.ExcludedFraction(); math.Abs(f-0.25) > 1e-9 {
		t.Errorf("excluded fraction = %v, want 0.25", f)
	}
	intelOnly := TriggerCountHistogram(db, core.Intel)
	if intelOnly.Total != 3 {
		t.Errorf("intel total = %d", intelOnly.Total)
	}
}

func TestTriggerCorrelation(t *testing.T) {
	db := buildDB(t)
	c := TriggerCorrelation(db)
	if c.Pair("Trg_CFG_wrg", "Trg_POW_tht") != 1 {
		t.Errorf("pair(wrg,tht) = %d", c.Pair("Trg_CFG_wrg", "Trg_POW_tht"))
	}
	if c.Pair("Trg_CFG_wrg", "Trg_CFG_wrg") != 1 {
		t.Errorf("diagonal(wrg) = %d", c.Pair("Trg_CFG_wrg", "Trg_CFG_wrg"))
	}
	if c.Pair("Trg_CFG_wrg", "Trg_POW_pwc") != 0 {
		t.Error("unrelated pair non-zero")
	}
	if c.Pair("bogus", "Trg_POW_pwc") != 0 {
		t.Error("unknown category should give 0")
	}
	top := c.TopPairs(5)
	if len(top) != 1 || top[0].A != "Trg_CFG_wrg" || top[0].B != "Trg_POW_tht" {
		t.Errorf("top pairs = %v", top)
	}
}

func TestClassesOverGenerations(t *testing.T) {
	db := buildDB(t)
	rows := ClassesOverGenerations(db)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	r6 := rows[0]
	if r6.DocKey != "intel-06" || r6.Errata != 3 {
		t.Errorf("row 6 = %+v", r6)
	}
	if r6.Classes["Trg_CFG"] != 1 || r6.Classes["Trg_POW"] != 2 {
		t.Errorf("row 6 classes = %v", r6.Classes)
	}
}

func TestClassRepresentation(t *testing.T) {
	db := buildDB(t)
	rep := ClassRepresentation(db, taxonomy.Trigger)
	intel := rep[core.Intel]
	shares := map[string]float64{}
	for _, s := range intel {
		shares[s.Class] = s.Share
	}
	// Intel unique triggers: wrg, tht, pwc -> CFG 1/3, POW 2/3.
	if math.Abs(shares["Trg_CFG"]-1.0/3.0) > 1e-9 || math.Abs(shares["Trg_POW"]-2.0/3.0) > 1e-9 {
		t.Errorf("intel shares = %v", shares)
	}
	amd := rep[core.AMD]
	for _, s := range amd {
		if s.Class == "Trg_EXT" && s.Share != 1 {
			t.Errorf("amd EXT share = %v", s.Share)
		}
	}
}

func TestClassBreakdown(t *testing.T) {
	db := buildDB(t)
	br := ClassBreakdown(db, "Trg_EXT")
	amd := br[core.AMD]
	found := false
	for _, s := range amd {
		if s.Category == "Trg_EXT_bus" {
			found = true
			if s.Share != 1 {
				t.Errorf("bus share = %v", s.Share)
			}
		}
	}
	if !found {
		t.Error("Trg_EXT_bus missing from breakdown")
	}
	if ClassBreakdown(db, "garbage") != nil {
		t.Error("bad class should give nil")
	}
}

func TestMSRFrequency(t *testing.T) {
	db := buildDB(t)
	freq := MSRFrequency(db)
	intel := freq[core.Intel]
	if len(intel) != 1 || intel[0].MSR != "MCx_STATUS" || intel[0].Count != 1 {
		t.Errorf("intel MSRs = %v", intel)
	}
	if math.Abs(intel[0].Share-1.0/3.0) > 1e-9 {
		t.Errorf("share = %v, want 1/3", intel[0].Share)
	}
	if len(freq[core.AMD]) != 0 {
		t.Errorf("amd MSRs = %v", freq[core.AMD])
	}
}
