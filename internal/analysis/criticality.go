package analysis

import (
	"sort"

	"repro/internal/core"
	"repro/internal/taxonomy"
	"repro/pkg/domain"
)

// Severity grades an erratum's worst-case impact. The paper argues for
// conservatism: "only a few bugs can be considered non-critical" —
// even wrong performance-counter values break security defenses that
// rely on counter integrity (Section V-A4).
type Severity int

const (
	// SeverityUnknown: no effects annotated (should not happen after
	// annotation).
	SeverityUnknown Severity = iota
	// SeverityDegrading: effects observable outside the core (PCIe,
	// USB, multimedia, DRAM interactions, power draw) — disruptive but
	// typically recoverable at the platform level.
	SeverityDegrading
	// SeverityCorrupting: wrong architectural or monitoring state
	// (registers, counters) and fault-delivery errors — silently wrong
	// results, and a security risk for counter-based defenses.
	SeverityCorrupting
	// SeverityFatal: hangs, crashes, boot failures and unpredictable
	// behavior — liveness is lost or nothing can be assumed anymore.
	SeverityFatal
)

// String returns the severity label.
func (s Severity) String() string {
	switch s {
	case SeverityDegrading:
		return "Degrading"
	case SeverityCorrupting:
		return "Corrupting"
	case SeverityFatal:
		return "Fatal"
	default:
		return "Unknown"
	}
}

// effectSeverity grades one effect class.
var effectSeverity = map[string]Severity{
	"Eff_HNG": SeverityFatal,
	"Eff_FLT": SeverityCorrupting,
	"Eff_CRP": SeverityCorrupting,
	"Eff_EXT": SeverityDegrading,
}

// Grade returns the conservative (maximum) severity over an erratum's
// effects.
func Grade(e *core.Erratum, scheme domain.Scheme) Severity {
	max := SeverityUnknown
	for _, it := range e.Ann.Effects {
		if s := effectSeverity[scheme.ClassOf(it.Category)]; s > max {
			max = s
		}
	}
	return max
}

// SeverityBreakdown is the per-vendor severity histogram with the
// user-mode security refinement.
type SeverityBreakdown struct {
	Vendor core.Vendor
	// Counts maps severities to unique-errata counts.
	Counts map[Severity]int
	// GuestReachableFatal counts fatal bugs triggerable from a virtual
	// machine guest — the population a cloud provider worries about.
	GuestReachableFatal int
	// Total is the number of unique errata graded.
	Total int
}

// Severities computes the conservative severity breakdown per vendor
// over unique errata.
func Severities(db *core.Database) []SeverityBreakdown {
	var out []SeverityBreakdown
	for _, v := range core.Vendors {
		b := SeverityBreakdown{Vendor: v, Counts: make(map[Severity]int)}
		for _, e := range db.UniqueVendor(v) {
			s := Grade(e, db.Scheme)
			b.Counts[s]++
			b.Total++
			if s == SeverityFatal && e.Ann.Has("Ctx_PRV_vmg") {
				b.GuestReachableFatal++
			}
		}
		out = append(out, b)
	}
	return out
}

// MostCritical returns the n most critical unique errata of a vendor:
// fatal first, then by the number of distinct effects (more ways to go
// wrong), stably by key.
func MostCritical(db *core.Database, v core.Vendor, n int) []*core.Erratum {
	errata := append([]*core.Erratum(nil), db.UniqueVendor(v)...)
	sort.SliceStable(errata, func(i, j int) bool {
		si, sj := Grade(errata[i], db.Scheme), Grade(errata[j], db.Scheme)
		if si != sj {
			return si > sj
		}
		ei := len(errata[i].Ann.Categories(taxonomy.Effect, db.Scheme))
		ej := len(errata[j].Ann.Categories(taxonomy.Effect, db.Scheme))
		if ei != ej {
			return ei > ej
		}
		return errata[i].Key < errata[j].Key
	})
	if n > 0 && len(errata) > n {
		errata = errata[:n]
	}
	return errata
}
