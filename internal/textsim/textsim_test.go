package textsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"X87 FDP Value May be Saved Incorrectly", "x87 fdp value may be saved incorrectly"},
		{"  Hello,   World!! ", "hello world"},
		{"(A/B) c-d", "a b c d"},
		{"", ""},
		{"!!!", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("The CPU, may hang!")
	want := []string{"the", "cpu", "may", "hang"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if Tokens("") != nil {
		t.Error("Tokens of empty string should be nil")
	}
}

func TestJaccardAndDice(t *testing.T) {
	if got := Jaccard("a b c", "a b c"); got != 1 {
		t.Errorf("identical Jaccard = %v", got)
	}
	if got := Jaccard("a b", "c d"); got != 0 {
		t.Errorf("disjoint Jaccard = %v", got)
	}
	if got := Jaccard("a b c d", "a b"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := Dice("a b c d", "a b"); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("Dice = %v, want 2/3", got)
	}
	if Jaccard("", "") != 1 || Dice("", "") != 1 {
		t.Error("empty-vs-empty should be 1")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"abc", "abc", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := LevenshteinSimilarity("abc", "abc"); got != 1 {
		t.Errorf("LevenshteinSimilarity identical = %v", got)
	}
	if got := LevenshteinSimilarity("", ""); got != 1 {
		t.Errorf("LevenshteinSimilarity empty = %v", got)
	}
}

// TestLevenshteinSimilarityPinned pins exact similarity scores so that
// refactorings of the edit-distance hot path (shared by the dedup
// candidate scoring) cannot silently change the ranking.
func TestLevenshteinSimilarityPinned(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"Processor May Hang During Power State Transitions Under Load", "Processor Might Hang During Power State Transitions", 0.75},
		{"X87 FDP Value May be Saved Incorrectly", "X87 FDP Value May be Stored Incorrectly", 0.92307692307692313},
		{"Counter May Report Wrong Values", "Counter Might Report Wrong Values", 0.87878787878787878},
		{"USB Controller Drops Packets", "Cache Line Eviction May Stall", 0.10344827586206895},
		{"  Hello,   World!! ", "hello world", 1},
		{"", "nonempty", 0},
	}
	for _, c := range cases {
		if got := LevenshteinSimilarity(c.a, c.b); got != c.want {
			t.Errorf("LevenshteinSimilarity(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
		// The similarity must stay consistent with the public distance.
		ra, rb := []rune(Normalize(c.a)), []rune(Normalize(c.b))
		maxLen := len(ra)
		if len(rb) > maxLen {
			maxLen = len(rb)
		}
		if maxLen > 0 {
			want := 1 - float64(Levenshtein(c.a, c.b))/float64(maxLen)
			if got := LevenshteinSimilarity(c.a, c.b); got != want {
				t.Errorf("LevenshteinSimilarity(%q,%q) = %v, inconsistent with Levenshtein (%v)", c.a, c.b, got, want)
			}
		}
	}
}

func TestShingles(t *testing.T) {
	sh := Shingles("a b c d", 2)
	for _, want := range []string{"a b", "b c", "c d"} {
		if _, ok := sh[want]; !ok {
			t.Errorf("missing shingle %q", want)
		}
	}
	if len(sh) != 3 {
		t.Errorf("shingle count = %d", len(sh))
	}
	// Fewer tokens than n: single shingle.
	sh = Shingles("a b", 5)
	if len(sh) != 1 {
		t.Errorf("short shingles = %v", sh)
	}
	if got := ShingleJaccard("a b c", "a b c", 2); got != 1 {
		t.Errorf("identical ShingleJaccard = %v", got)
	}
}

func TestCorpusCosine(t *testing.T) {
	c := NewCorpus([]string{
		"processor may hang during power transition",
		"processor may hang during power transition",
		"usb controller drops packets",
	})
	if got := c.Cosine(0, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical docs cosine = %v", got)
	}
	if got := c.Cosine(0, 2); got > 0.2 {
		t.Errorf("unrelated docs cosine = %v, want near 0", got)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestRankPairs(t *testing.T) {
	c := NewCorpus([]string{
		"alpha beta gamma",
		"alpha beta gamma",
		"alpha beta delta",
		"unrelated text entirely",
	})
	pairs := c.RankPairs(0.3)
	if len(pairs) == 0 {
		t.Fatal("no pairs found")
	}
	if pairs[0].I != 0 || pairs[0].J != 1 {
		t.Errorf("best pair = %+v, want (0,1)", pairs[0])
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Score > pairs[i-1].Score {
			t.Error("pairs not sorted by decreasing score")
		}
	}
	for _, p := range pairs {
		if p.I == 3 || p.J == 3 {
			if p.Score >= 0.3 {
				t.Errorf("unrelated doc scored %v", p.Score)
			}
		}
	}
}

func TestSimilarityDispatch(t *testing.T) {
	a, b := "processor hang", "processor hang"
	for _, m := range []Metric{MetricJaccard, MetricDice, MetricLevenshtein, MetricShingle2, Metric("unknown")} {
		if got := Similarity(m, a, b); got != 1 {
			t.Errorf("Similarity(%s) identical = %v", m, got)
		}
	}
}

// Properties of the similarity metrics.

func clip(s string) string {
	if len(s) > 64 {
		return s[:64]
	}
	return s
}

func TestPropertySymmetryAndRange(t *testing.T) {
	f := func(a, b string) bool {
		a, b = clip(a), clip(b)
		for _, m := range []Metric{MetricJaccard, MetricDice, MetricLevenshtein, MetricShingle2} {
			ab := Similarity(m, a, b)
			ba := Similarity(m, b, a)
			if math.Abs(ab-ba) > 1e-9 {
				return false
			}
			if ab < 0 || ab > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIdentity(t *testing.T) {
	f := func(a string) bool {
		a = clip(a)
		for _, m := range []Metric{MetricJaccard, MetricDice, MetricLevenshtein, MetricShingle2} {
			if Similarity(m, a, a) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		a, b, c = clip(a), clip(b), clip(c)
		ab := Levenshtein(a, b)
		bc := Levenshtein(b, c)
		ac := Levenshtein(a, c)
		return ac <= ab+bc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormalizeIdempotent(t *testing.T) {
	f := func(a string) bool {
		n := Normalize(clip(a))
		return Normalize(n) == n && !strings.Contains(n, "  ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkJaccard(b *testing.B) {
	x := "Processor May Hang During Power State Transitions Under Load"
	y := "Processor Might Hang During Power State Transitions"
	for i := 0; i < b.N; i++ {
		Jaccard(x, y)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	x := "Processor May Hang During Power State Transitions Under Load"
	y := "Processor Might Hang During Power State Transitions"
	for i := 0; i < b.N; i++ {
		Levenshtein(x, y)
	}
}

func BenchmarkMinHashSignature(b *testing.B) {
	m := NewMinHasher(64)
	x := "Processor May Hang During Power State Transitions Under Load"
	for i := 0; i < b.N; i++ {
		m.Signature(x)
	}
}
