package textsim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestMinHashSignature(t *testing.T) {
	m := NewMinHasher(128)
	a := m.Signature("processor may hang during power state transition")
	b := m.Signature("processor may hang during power state transition")
	if SignatureSimilarity(a, b) != 1 {
		t.Error("identical texts must have identical signatures")
	}
	c := m.Signature("usb controller drops packets entirely")
	if s := SignatureSimilarity(a, c); s > 0.2 {
		t.Errorf("unrelated signature similarity = %v", s)
	}
	if m.SignatureLen() != 128 {
		t.Errorf("signature length = %d", m.SignatureLen())
	}
	// Default length.
	if NewMinHasher(0).SignatureLen() != 64 {
		t.Error("default signature length wrong")
	}
	if SignatureSimilarity(a, a[:10]) != 0 {
		t.Error("mismatched lengths should give 0")
	}
}

// Property: the MinHash estimate approximates exact Jaccard within a
// generous tolerance at 256 permutations.
func TestPropertyMinHashApproximatesJaccard(t *testing.T) {
	m := NewMinHasher(256)
	f := func(seedA, seedB uint8) bool {
		// Construct overlapping token sets deterministically.
		a, b := "", ""
		for i := 0; i < 12; i++ {
			tok := fmt.Sprintf("tok%d", i)
			if i < int(seedA%13) {
				a += " " + tok
			}
			if i >= int(seedB%7) {
				b += " " + tok
			}
		}
		if Tokens(a) == nil || Tokens(b) == nil {
			return true
		}
		exact := Jaccard(a, b)
		est := SignatureSimilarity(m.Signature(a), m.Signature(b))
		return math.Abs(exact-est) < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLSHIndexFindsNearDuplicates(t *testing.T) {
	idx := NewLSHIndex(16, 4)
	titles := []string{
		"Processor May Hang During Power State Transitions",          // 0
		"Processor Might Hang During Power State Transitions",        // 1: near-dup of 0
		"Performance Counters May Report Incorrect Values",           // 2
		"Performance Counters May Report Incorrect Values Sometimes", // 3: near-dup of 2
		"USB Controller Drops Packets",                               // 4
		"Memory Training May Fail With Mixed Rank Configurations",    // 5
	}
	for _, title := range titles {
		idx.Add(title)
	}
	if idx.Len() != len(titles) {
		t.Fatalf("Len = %d", idx.Len())
	}
	pairs := idx.CandidatePairs(0.6)
	found := map[[2]int]bool{}
	for _, p := range pairs {
		found[[2]int{p.I, p.J}] = true
	}
	if !found[[2]int{0, 1}] {
		t.Error("missed near-duplicate pair (0,1)")
	}
	if !found[[2]int{2, 3}] {
		t.Error("missed near-duplicate pair (2,3)")
	}
	for p := range found {
		if p == [2]int{0, 1} || p == [2]int{2, 3} {
			continue
		}
		t.Errorf("false candidate pair %v", p)
	}
	// Sorted by decreasing score.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Score > pairs[i-1].Score {
			t.Error("pairs not sorted")
		}
	}
}

// TestLSHRecallAgainstExact measures recall of the LSH index against
// the exact O(n^2) scan on a synthetic population with planted
// near-duplicates.
func TestLSHRecallAgainstExact(t *testing.T) {
	var texts []string
	for i := 0; i < 300; i++ {
		texts = append(texts, fmt.Sprintf(
			"erratum number %d affecting subsystem %d with effect class %d observed rarely",
			i, i%17, i%5))
	}
	// Plant 40 near-duplicates (one-word variants).
	for i := 0; i < 40; i++ {
		texts = append(texts, fmt.Sprintf(
			"erratum number %d affecting subsystem %d with effect kind %d observed rarely",
			i, i%17, i%5))
	}
	const minSim = 0.7

	// Exact pairs.
	exact := map[[2]int]bool{}
	for i := range texts {
		for j := i + 1; j < len(texts); j++ {
			if Jaccard(texts[i], texts[j]) >= minSim {
				exact[[2]int{i, j}] = true
			}
		}
	}
	if len(exact) < 40 {
		t.Fatalf("planted pairs not found by exact scan: %d", len(exact))
	}

	idx := NewLSHIndex(16, 4)
	for _, s := range texts {
		idx.Add(s)
	}
	got := map[[2]int]bool{}
	for _, p := range idx.CandidatePairs(minSim) {
		got[[2]int{p.I, p.J}] = true
		if !exact[[2]int{p.I, p.J}] {
			t.Errorf("LSH produced a pair below the threshold: %v", p)
		}
	}
	recall := float64(len(got)) / float64(len(exact))
	if recall < 0.95 {
		t.Errorf("LSH recall = %.2f, want >= 0.95", recall)
	}
}
