package textsim

import (
	"hash/fnv"
	"sort"
)

// MinHash/LSH candidate generation for duplicate detection. The exact
// candidate scan of dedup is O(n^2) in the number of title clusters;
// that is fine at the paper's corpus size (~750 Intel clusters) but not
// at the scale the paper envisions when errata of more vendors and ISAs
// are folded in. The LSH index finds high-Jaccard candidate pairs in
// near-linear time, trading a small recall loss for scalability; the
// ablation benchmarks quantify the trade.

// MinHasher computes fixed-length MinHash signatures over token sets.
type MinHasher struct {
	seeds []uint64
}

// NewMinHasher creates a hasher with the given signature length.
func NewMinHasher(signatureLen int) *MinHasher {
	if signatureLen <= 0 {
		signatureLen = 64
	}
	seeds := make([]uint64, signatureLen)
	// Deterministic seed sequence (splitmix64).
	x := uint64(0x9E3779B97F4A7C15)
	for i := range seeds {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		seeds[i] = z ^ (z >> 31)
	}
	return &MinHasher{seeds: seeds}
}

// SignatureLen returns the signature length.
func (m *MinHasher) SignatureLen() int { return len(m.seeds) }

// Signature computes the MinHash signature of s's token set.
func (m *MinHasher) Signature(s string) []uint64 {
	sig := make([]uint64, len(m.seeds))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for tok := range tokenSet(s) {
		h := fnv.New64a()
		h.Write([]byte(tok))
		base := h.Sum64()
		for i, seed := range m.seeds {
			// One hash per permutation: mix the token hash with the seed.
			v := mix(base ^ seed)
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	return z ^ (z >> 33)
}

// SignatureSimilarity estimates Jaccard similarity from two signatures.
func SignatureSimilarity(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// LSHIndex buckets MinHash signatures into bands; two items collide in
// the index when they agree on all rows of at least one band, which
// happens with high probability iff their Jaccard similarity is high.
type LSHIndex struct {
	hasher *MinHasher
	bands  int
	rows   int
	texts  []string
	sigs   [][]uint64
	// buckets[band][bucketHash] = item indices
	buckets []map[uint64][]int
}

// NewLSHIndex creates an index with the given number of bands and rows
// per band (signature length = bands*rows). With b bands of r rows, the
// collision probability for similarity s is 1-(1-s^r)^b; b=16, r=4
// puts the threshold near s ~= 0.5.
func NewLSHIndex(bands, rows int) *LSHIndex {
	if bands <= 0 {
		bands = 16
	}
	if rows <= 0 {
		rows = 4
	}
	idx := &LSHIndex{
		hasher:  NewMinHasher(bands * rows),
		bands:   bands,
		rows:    rows,
		buckets: make([]map[uint64][]int, bands),
	}
	for i := range idx.buckets {
		idx.buckets[i] = make(map[uint64][]int)
	}
	return idx
}

// Add inserts a text and returns its item index.
func (x *LSHIndex) Add(text string) int {
	id := len(x.texts)
	x.texts = append(x.texts, text)
	sig := x.hasher.Signature(text)
	x.sigs = append(x.sigs, sig)
	for b := 0; b < x.bands; b++ {
		key := bandKey(sig[b*x.rows : (b+1)*x.rows])
		x.buckets[b][key] = append(x.buckets[b][key], id)
	}
	return id
}

func bandKey(rows []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range rows {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// Len returns the number of indexed items.
func (x *LSHIndex) Len() int { return len(x.texts) }

// CandidatePairs returns all item pairs (i<j) colliding in at least one
// band whose exact Jaccard similarity reaches min, sorted by decreasing
// similarity. Unlike Corpus.RankPairs, only colliding pairs are
// examined, so the cost scales with the number of collisions rather
// than n^2.
func (x *LSHIndex) CandidatePairs(min float64) []Pair {
	seen := make(map[[2]int]bool)
	var out []Pair
	for b := 0; b < x.bands; b++ {
		for _, ids := range x.buckets[b] {
			if len(ids) < 2 {
				continue
			}
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					a, c := ids[i], ids[j]
					if a > c {
						a, c = c, a
					}
					key := [2]int{a, c}
					if seen[key] {
						continue
					}
					seen[key] = true
					if s := Jaccard(x.texts[a], x.texts[c]); s >= min {
						out = append(out, Pair{I: a, J: c, Score: s})
					}
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].I != out[j].I {
			return out[i].I < out[j].I
		}
		return out[i].J < out[j].J
	})
	return out
}
